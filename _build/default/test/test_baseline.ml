let check_int = Alcotest.(check int)
let mesh = Gen.mesh44
let space8 = Reftrace.Data_space.matrix "A" 8

let test_row_wise_contiguous_blocks () =
  let p = Sched.Baseline.row_wise mesh space8 in
  (* 64 elements over 16 processors: 4 consecutive row-major ids each *)
  check_int "first block" 0 p.(0);
  check_int "still first" 0 p.(3);
  check_int "second block" 1 p.(4);
  check_int "last block" 15 p.(63)

let test_row_wise_balanced () =
  let p = Sched.Baseline.row_wise mesh space8 in
  check_int "max load" 4 (Sched.Baseline.max_load mesh p)

let test_column_wise_transposes () =
  let pr = Sched.Baseline.row_wise mesh space8 in
  let pc = Sched.Baseline.column_wise mesh space8 in
  (* A(0,1): row-major index 1 -> proc 0; column-major index 8 -> proc 2 *)
  let id = Reftrace.Data_space.id space8 ~array_name:"A" ~row:0 ~col:1 in
  check_int "row-wise" 0 pr.(id);
  check_int "column-wise" 2 pc.(id)

let test_block_2d_tiles () =
  let p = Sched.Baseline.block_2d mesh space8 in
  let id r c = Reftrace.Data_space.id space8 ~array_name:"A" ~row:r ~col:c in
  (* top-left 2x2 tile of the data belongs to processor (0,0) = rank 0 *)
  check_int "corner" 0 p.(id 0 0);
  check_int "corner tile" 0 p.(id 1 1);
  check_int "next tile right" 1 p.(id 0 2);
  check_int "bottom right" 15 p.(id 7 7);
  check_int "balanced" 4 (Sched.Baseline.max_load mesh p)

let test_cyclic () =
  let p = Sched.Baseline.cyclic mesh space8 in
  check_int "wraps" 0 p.(16);
  check_int "sequence" 5 p.(5);
  check_int "balanced" 4 (Sched.Baseline.max_load mesh p)

let test_random_deterministic_and_in_range () =
  let a = Sched.Baseline.random ~seed:7 mesh space8 in
  let b = Sched.Baseline.random ~seed:7 mesh space8 in
  Alcotest.(check (array int)) "same seed, same placement" a b;
  Array.iter
    (fun r -> Alcotest.(check bool) "in range" true (r >= 0 && r < 16))
    a;
  let c = Sched.Baseline.random ~seed:8 mesh space8 in
  Alcotest.(check bool) "different seed differs" true (a <> c)

let test_multi_array_distributed_independently () =
  let space =
    Reftrace.Data_space.create
      (Reftrace.Data_space.array_desc "A" ~rows:4 ~cols:4)
      [ Reftrace.Data_space.array_desc "C" ~rows:4 ~cols:4 ]
  in
  let p = Sched.Baseline.row_wise mesh space in
  (* each 16-element array is dealt one element per processor *)
  check_int "A(0,0)" 0 p.(0);
  check_int "C(0,0) restarts at 0" 0
    p.(Reftrace.Data_space.id space ~array_name:"C" ~row:0 ~col:0);
  check_int "max load" 2 (Sched.Baseline.max_load mesh p)

let test_schedule_wrapper_is_static () =
  let trace = Gen.trace mesh ~n_data:64 [ [ (0, 1, 1) ]; [ (0, 2, 1) ] ] in
  let space = Reftrace.Trace.space trace in
  let s = Sched.Baseline.schedule (Sched.Baseline.row_wise mesh space) mesh trace in
  check_int "no moves" 0 (Sched.Schedule.moves s)

let prop_baselines_respect_double_headroom =
  QCheck.Test.make ~name:"baselines respect the paper's 2x capacity rule"
    ~count:50
    QCheck.(int_range 4 40)
    (fun n ->
      let space = Reftrace.Data_space.matrix "A" n in
      let capacity =
        Pim.Memory.capacity_for ~data_count:(n * n) ~mesh ~headroom:2
      in
      List.for_all
        (fun placement -> Sched.Baseline.max_load mesh placement <= capacity)
        [
          Sched.Baseline.row_wise mesh space;
          Sched.Baseline.column_wise mesh space;
          Sched.Baseline.block_2d mesh space;
          Sched.Baseline.cyclic mesh space;
        ])

let suite =
  [
    Gen.case "row-wise contiguous blocks" test_row_wise_contiguous_blocks;
    Gen.case "row-wise balanced" test_row_wise_balanced;
    Gen.case "column-wise transposes" test_column_wise_transposes;
    Gen.case "block-2d tiles" test_block_2d_tiles;
    Gen.case "cyclic" test_cyclic;
    Gen.case "random deterministic" test_random_deterministic_and_in_range;
    Gen.case "multi-array independent" test_multi_array_distributed_independently;
    Gen.case "schedule wrapper static" test_schedule_wrapper_is_static;
    Gen.to_alcotest prop_baselines_respect_double_headroom;
  ]
