let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let profile_t = Alcotest.(list (pair int int))

let test_empty () =
  let w = Reftrace.Window.create ~n_data:4 in
  check_bool "empty" true (Reftrace.Window.is_empty w);
  check_int "total" 0 (Reftrace.Window.total_references w);
  Alcotest.(check (list int)) "no data" [] (Reftrace.Window.referenced_data w);
  check_int "max_proc" (-1) (Reftrace.Window.max_proc w)

let test_add_accumulates () =
  let w = Reftrace.Window.create ~n_data:2 in
  Reftrace.Window.add w ~data:0 ~proc:3 ~count:2;
  Reftrace.Window.add w ~data:0 ~proc:3 ~count:1;
  Reftrace.Window.add w ~data:0 ~proc:1 ~count:4;
  Alcotest.check profile_t "profile sorted by proc" [ (1, 4); (3, 3) ]
    (Reftrace.Window.profile w 0);
  check_int "references" 7 (Reftrace.Window.references w 0);
  check_int "other datum untouched" 0 (Reftrace.Window.references w 1)

let test_zero_count_noop () =
  let w = Reftrace.Window.create ~n_data:1 in
  Reftrace.Window.add w ~data:0 ~proc:0 ~count:0;
  check_bool "still empty" true (Reftrace.Window.is_empty w)

let test_validation () =
  let w = Reftrace.Window.create ~n_data:1 in
  Alcotest.check_raises "bad data"
    (Invalid_argument "Window: data id 5 out of range") (fun () ->
      Reftrace.Window.add w ~data:5 ~proc:0 ~count:1);
  Alcotest.check_raises "negative count"
    (Invalid_argument "Window.add: negative count") (fun () ->
      Reftrace.Window.add w ~data:0 ~proc:0 ~count:(-1))

let test_merge_sums () =
  let a = Gen.window ~n_data:2 [ (0, 1, 2); (1, 0, 1) ] in
  let b = Gen.window ~n_data:2 [ (0, 1, 3); (0, 2, 1) ] in
  let m = Reftrace.Window.merge a b in
  Alcotest.check profile_t "summed" [ (1, 5); (2, 1) ]
    (Reftrace.Window.profile m 0);
  Alcotest.check profile_t "carried" [ (0, 1) ] (Reftrace.Window.profile m 1);
  (* merge is non-destructive *)
  check_int "a untouched" 2 (Reftrace.Window.references a 0)

let test_merge_mismatched () =
  let a = Reftrace.Window.create ~n_data:1 in
  let b = Reftrace.Window.create ~n_data:2 in
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Window.merge: mismatched data spaces") (fun () ->
      ignore (Reftrace.Window.merge a b))

let test_merge_list () =
  let ws =
    List.init 3 (fun i -> Gen.window ~n_data:1 [ (0, i, i + 1) ])
  in
  let m = Reftrace.Window.merge_list ws in
  Alcotest.check profile_t "all merged" [ (0, 1); (1, 2); (2, 3) ]
    (Reftrace.Window.profile m 0)

let test_copy_independent () =
  let a = Gen.window ~n_data:1 [ (0, 0, 1) ] in
  let b = Reftrace.Window.copy a in
  Reftrace.Window.add b ~data:0 ~proc:0 ~count:5;
  check_int "original" 1 (Reftrace.Window.references a 0);
  check_int "copy" 6 (Reftrace.Window.references b 0)

let test_equal () =
  let a = Gen.window ~n_data:2 [ (0, 1, 2); (1, 3, 1) ] in
  let b = Gen.window ~n_data:2 [ (1, 3, 1); (0, 1, 2) ] in
  check_bool "order independent" true (Reftrace.Window.equal a b);
  Reftrace.Window.add b ~data:0 ~proc:1 ~count:1;
  check_bool "detects difference" false (Reftrace.Window.equal a b)

let prop_merge_commutative =
  let arb = Gen.single_datum_window_arbitrary ~max_count:5 () in
  QCheck.Test.make ~name:"merge is commutative" ~count:100 (QCheck.pair arb arb)
    (fun (a, b) ->
      Reftrace.Window.equal (Reftrace.Window.merge a b)
        (Reftrace.Window.merge b a))

let prop_merge_total_references_additive =
  let arb = Gen.single_datum_window_arbitrary ~max_count:5 () in
  QCheck.Test.make ~name:"merge adds reference counts" ~count:100
    (QCheck.pair arb arb) (fun (a, b) ->
      Reftrace.Window.total_references (Reftrace.Window.merge a b)
      = Reftrace.Window.total_references a
        + Reftrace.Window.total_references b)

let test_kinds_separate_profiles () =
  let w = Reftrace.Window.create ~n_data:1 in
  Reftrace.Window.add w ~data:0 ~proc:2 ~count:3;
  Reftrace.Window.add ~kind:Reftrace.Window.Write w ~data:0 ~proc:5 ~count:2;
  Alcotest.check profile_t "reads" [ (2, 3) ] (Reftrace.Window.read_profile w 0);
  Alcotest.check profile_t "writes" [ (5, 2) ]
    (Reftrace.Window.write_profile w 0);
  Alcotest.check profile_t "combined" [ (2, 3); (5, 2) ]
    (Reftrace.Window.profile w 0);
  check_int "references counts both" 5 (Reftrace.Window.references w 0);
  check_int "writes" 2 (Reftrace.Window.writes w 0)

let test_kinds_same_proc_combine () =
  let w = Reftrace.Window.create ~n_data:1 in
  Reftrace.Window.add w ~data:0 ~proc:4 ~count:1;
  Reftrace.Window.add ~kind:Reftrace.Window.Write w ~data:0 ~proc:4 ~count:2;
  Alcotest.check profile_t "summed at proc" [ (4, 3) ]
    (Reftrace.Window.profile w 0)

let test_equal_distinguishes_kinds () =
  let a = Reftrace.Window.create ~n_data:1 in
  Reftrace.Window.add a ~data:0 ~proc:1 ~count:1;
  let b = Reftrace.Window.create ~n_data:1 in
  Reftrace.Window.add ~kind:Reftrace.Window.Write b ~data:0 ~proc:1 ~count:1;
  check_bool "same combined, different kinds" false
    (Reftrace.Window.equal a b)

let test_merge_preserves_kinds () =
  let a = Reftrace.Window.create ~n_data:1 in
  Reftrace.Window.add ~kind:Reftrace.Window.Write a ~data:0 ~proc:3 ~count:1;
  let b = Reftrace.Window.create ~n_data:1 in
  Reftrace.Window.add b ~data:0 ~proc:3 ~count:1;
  let m = Reftrace.Window.merge a b in
  Alcotest.check profile_t "write kept" [ (3, 1) ]
    (Reftrace.Window.write_profile m 0);
  Alcotest.check profile_t "read kept" [ (3, 1) ]
    (Reftrace.Window.read_profile m 0)

let suite =
  [
    Gen.case "empty" test_empty;
    Gen.case "kinds separate profiles" test_kinds_separate_profiles;
    Gen.case "kinds same proc combine" test_kinds_same_proc_combine;
    Gen.case "equal distinguishes kinds" test_equal_distinguishes_kinds;
    Gen.case "merge preserves kinds" test_merge_preserves_kinds;
    Gen.case "add accumulates" test_add_accumulates;
    Gen.case "zero count noop" test_zero_count_noop;
    Gen.case "validation" test_validation;
    Gen.case "merge sums" test_merge_sums;
    Gen.case "merge mismatched" test_merge_mismatched;
    Gen.case "merge_list" test_merge_list;
    Gen.case "copy independent" test_copy_independent;
    Gen.case "equal" test_equal;
    Gen.to_alcotest prop_merge_commutative;
    Gen.to_alcotest prop_merge_total_references_additive;
  ]
