let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let mesh = Gen.mesh44

let test_create_validates () =
  Alcotest.check_raises "zero rows" (Invalid_argument
    "Mesh.create: dimensions must be positive (0x4)") (fun () ->
      ignore (Pim.Mesh.create ~rows:0 ~cols:4))

let test_shape () =
  let m = Pim.Mesh.create ~rows:2 ~cols:3 in
  check_int "rows" 2 (Pim.Mesh.rows m);
  check_int "cols" 3 (Pim.Mesh.cols m);
  check_int "size" 6 (Pim.Mesh.size m)

let test_rank_coord_roundtrip () =
  Pim.Mesh.iter_ranks mesh (fun r ->
      let c = Pim.Mesh.coord_of_rank mesh r in
      check_int "roundtrip" r (Pim.Mesh.rank_of_coord mesh c))

let test_rank_row_major () =
  (* rank = y * cols + x *)
  check_int "origin" 0
    (Pim.Mesh.rank_of_coord mesh (Pim.Coord.make ~x:0 ~y:0));
  check_int "(1,0)" 1 (Pim.Mesh.rank_of_coord mesh (Pim.Coord.make ~x:1 ~y:0));
  check_int "(0,1)" 4 (Pim.Mesh.rank_of_coord mesh (Pim.Coord.make ~x:0 ~y:1));
  check_int "(3,3)" 15 (Pim.Mesh.rank_of_coord mesh (Pim.Coord.make ~x:3 ~y:3))

let test_out_of_bounds () =
  Alcotest.check_raises "coord out of bounds"
    (Invalid_argument "Mesh.rank_of_coord: (4,0) out of bounds for 4x4 mesh")
    (fun () ->
      ignore (Pim.Mesh.rank_of_coord mesh (Pim.Coord.make ~x:4 ~y:0)));
  check_bool "in_bounds negative" false
    (Pim.Mesh.in_bounds mesh (Pim.Coord.make ~x:(-1) ~y:0))

let test_distance () =
  let r a b = Pim.Mesh.rank_of_coord mesh (Pim.Coord.make ~x:a ~y:b) in
  check_int "corner to corner" 6 (Pim.Mesh.distance mesh (r 0 0) (r 3 3));
  check_int "adjacent" 1 (Pim.Mesh.distance mesh (r 1 1) (r 2 1));
  check_int "self" 0 (Pim.Mesh.distance mesh (r 2 2) (r 2 2))

let test_xy_route_shape () =
  let r a b = Pim.Mesh.rank_of_coord mesh (Pim.Coord.make ~x:a ~y:b) in
  let path = Pim.Mesh.xy_route mesh ~src:(r 0 0) ~dst:(r 2 1) in
  (* x first, then y *)
  Alcotest.(check (list int)) "route" [ r 0 0; r 1 0; r 2 0; r 2 1 ] path

let test_xy_route_self () =
  Alcotest.(check (list int))
    "self route" [ 5 ]
    (Pim.Mesh.xy_route mesh ~src:5 ~dst:5)

let test_neighbours () =
  let r a b = Pim.Mesh.rank_of_coord mesh (Pim.Coord.make ~x:a ~y:b) in
  let sorted l = List.sort Int.compare l in
  Alcotest.(check (list int))
    "corner has two" (sorted [ r 1 0; r 0 1 ])
    (sorted (Pim.Mesh.neighbours mesh (r 0 0)));
  check_int "interior has four" 4
    (List.length (Pim.Mesh.neighbours mesh (r 1 1)))

let test_links_count () =
  (* 4x4 mesh: 2 * (2 * 4 * 3) = 48 directed links *)
  check_int "links" 48 (List.length (Pim.Mesh.links mesh))

let test_ranks_and_fold () =
  check_int "ranks" 16 (List.length (Pim.Mesh.ranks mesh));
  check_int "fold sum" 120
    (Pim.Mesh.fold_ranks mesh ~init:0 ~f:( + ))

let prop_route_length_is_distance =
  QCheck.Test.make ~name:"xy route length = distance + 1" ~count:300
    QCheck.(pair (int_bound 15) (int_bound 15))
    (fun (src, dst) ->
      let path = Pim.Mesh.xy_route mesh ~src ~dst in
      List.length path = Pim.Mesh.distance mesh src dst + 1)

let prop_route_steps_adjacent =
  QCheck.Test.make ~name:"xy route steps are mesh links" ~count:300
    QCheck.(pair (int_bound 15) (int_bound 15))
    (fun (src, dst) ->
      let path = Pim.Mesh.xy_route mesh ~src ~dst in
      let rec ok = function
        | a :: (b :: _ as rest) ->
            List.mem b (Pim.Mesh.neighbours mesh a) && ok rest
        | [ _ ] | [] -> true
      in
      ok path)

let prop_distance_symmetric =
  QCheck.Test.make ~name:"mesh distance symmetric" ~count:300
    QCheck.(pair (int_bound 15) (int_bound 15))
    (fun (a, b) -> Pim.Mesh.distance mesh a b = Pim.Mesh.distance mesh b a)

let suite =
  [
    Gen.case "create validates" test_create_validates;
    Gen.case "shape" test_shape;
    Gen.case "rank/coord roundtrip" test_rank_coord_roundtrip;
    Gen.case "row-major ranks" test_rank_row_major;
    Gen.case "out of bounds" test_out_of_bounds;
    Gen.case "distance" test_distance;
    Gen.case "xy route shape" test_xy_route_shape;
    Gen.case "xy route to self" test_xy_route_self;
    Gen.case "neighbours" test_neighbours;
    Gen.case "links count" test_links_count;
    Gen.case "ranks and fold" test_ranks_and_fold;
    Gen.to_alcotest prop_route_length_is_distance;
    Gen.to_alcotest prop_route_steps_adjacent;
    Gen.to_alcotest prop_distance_symmetric;
  ]
