let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_make_and_accessors () =
  let c = Pim.Coord.make ~x:3 ~y:1 in
  check_int "x" 3 c.Pim.Coord.x;
  check_int "y" 1 c.Pim.Coord.y

let test_manhattan_basics () =
  let a = Pim.Coord.make ~x:0 ~y:0 and b = Pim.Coord.make ~x:3 ~y:2 in
  check_int "distance" 5 (Pim.Coord.manhattan a b);
  check_int "self distance" 0 (Pim.Coord.manhattan a a)

let test_chebyshev () =
  let a = Pim.Coord.make ~x:0 ~y:0 and b = Pim.Coord.make ~x:3 ~y:2 in
  check_int "chebyshev" 3 (Pim.Coord.chebyshev a b)

let test_arithmetic () =
  let a = Pim.Coord.make ~x:1 ~y:2 and b = Pim.Coord.make ~x:3 ~y:5 in
  check_bool "add" true
    (Pim.Coord.equal (Pim.Coord.add a b) (Pim.Coord.make ~x:4 ~y:7));
  check_bool "sub" true
    (Pim.Coord.equal (Pim.Coord.sub b a) (Pim.Coord.make ~x:2 ~y:3))

let test_compare_total_order () =
  let a = Pim.Coord.make ~x:1 ~y:2 and b = Pim.Coord.make ~x:1 ~y:3 in
  check_bool "lt" true (Pim.Coord.compare a b < 0);
  check_bool "gt" true (Pim.Coord.compare b a > 0);
  check_int "eq" 0 (Pim.Coord.compare a a)

let test_to_string () =
  Alcotest.(check string)
    "render" "(2,3)"
    (Pim.Coord.to_string (Pim.Coord.make ~x:2 ~y:3))

let test_on_segment () =
  let src = Pim.Coord.make ~x:0 ~y:0 and dst = Pim.Coord.make ~x:3 ~y:3 in
  check_bool "inside" true
    (Pim.Coord.on_segment ~src ~dst (Pim.Coord.make ~x:1 ~y:2));
  check_bool "endpoint" true (Pim.Coord.on_segment ~src ~dst dst);
  check_bool "outside" false
    (Pim.Coord.on_segment ~src ~dst (Pim.Coord.make ~x:4 ~y:0));
  (* also works when src > dst component-wise *)
  check_bool "reversed rectangle" true
    (Pim.Coord.on_segment ~src:dst ~dst:src (Pim.Coord.make ~x:2 ~y:1))

let prop_manhattan_symmetric =
  QCheck.Test.make ~name:"manhattan is symmetric" ~count:200
    QCheck.(pair (pair small_int small_int) (pair small_int small_int))
    (fun ((ax, ay), (bx, by)) ->
      let a = Pim.Coord.make ~x:ax ~y:ay and b = Pim.Coord.make ~x:bx ~y:by in
      Pim.Coord.manhattan a b = Pim.Coord.manhattan b a)

let prop_manhattan_triangle =
  QCheck.Test.make ~name:"manhattan triangle inequality" ~count:200
    QCheck.(
      triple (pair small_int small_int) (pair small_int small_int)
        (pair small_int small_int))
    (fun ((ax, ay), (bx, by), (cx, cy)) ->
      let a = Pim.Coord.make ~x:ax ~y:ay
      and b = Pim.Coord.make ~x:bx ~y:by
      and c = Pim.Coord.make ~x:cx ~y:cy in
      Pim.Coord.manhattan a c
      <= Pim.Coord.manhattan a b + Pim.Coord.manhattan b c)

let prop_chebyshev_le_manhattan =
  QCheck.Test.make ~name:"chebyshev <= manhattan" ~count:200
    QCheck.(pair (pair small_int small_int) (pair small_int small_int))
    (fun ((ax, ay), (bx, by)) ->
      let a = Pim.Coord.make ~x:ax ~y:ay and b = Pim.Coord.make ~x:bx ~y:by in
      Pim.Coord.chebyshev a b <= Pim.Coord.manhattan a b)

let suite =
  [
    Gen.case "make and accessors" test_make_and_accessors;
    Gen.case "manhattan basics" test_manhattan_basics;
    Gen.case "chebyshev" test_chebyshev;
    Gen.case "arithmetic" test_arithmetic;
    Gen.case "compare total order" test_compare_total_order;
    Gen.case "to_string" test_to_string;
    Gen.case "on_segment" test_on_segment;
    Gen.to_alcotest prop_manhattan_symmetric;
    Gen.to_alcotest prop_manhattan_triangle;
    Gen.to_alcotest prop_chebyshev_le_manhattan;
  ]
