(* Tests for Pathgraph: Digraph, Topo, Shortest_path, Layered. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* -- Digraph ------------------------------------------------------------ *)

let test_digraph_basics () =
  let g = Pathgraph.Digraph.create ~n_nodes:3 in
  check_int "no edges" 0 (Pathgraph.Digraph.n_edges g);
  Pathgraph.Digraph.add_edge g ~src:0 ~dst:1 ~weight:5;
  Pathgraph.Digraph.add_edge g ~src:0 ~dst:2 ~weight:7;
  check_int "two edges" 2 (Pathgraph.Digraph.n_edges g);
  Alcotest.(check (list (pair int int)))
    "succ in insertion order"
    [ (1, 5); (2, 7) ]
    (Pathgraph.Digraph.succ g 0);
  Alcotest.(check (list int))
    "in degrees" [ 0; 1; 1 ]
    (Array.to_list (Pathgraph.Digraph.in_degrees g))

let test_digraph_validation () =
  Alcotest.check_raises "empty graph"
    (Invalid_argument "Digraph.create: n_nodes must be positive") (fun () ->
      ignore (Pathgraph.Digraph.create ~n_nodes:0));
  let g = Pathgraph.Digraph.create ~n_nodes:2 in
  Alcotest.check_raises "bad node"
    (Invalid_argument "Digraph: node 9 out of range") (fun () ->
      Pathgraph.Digraph.add_edge g ~src:0 ~dst:9 ~weight:1)

let test_digraph_negative_flag () =
  let g = Pathgraph.Digraph.create ~n_nodes:2 in
  check_bool "clean" false (Pathgraph.Digraph.has_negative_weight g);
  Pathgraph.Digraph.add_edge g ~src:0 ~dst:1 ~weight:(-1);
  check_bool "flagged" true (Pathgraph.Digraph.has_negative_weight g)

(* -- Topo ---------------------------------------------------------------- *)

let test_topo_sorts_dag () =
  let g = Pathgraph.Digraph.create ~n_nodes:4 in
  Pathgraph.Digraph.add_edge g ~src:2 ~dst:3 ~weight:0;
  Pathgraph.Digraph.add_edge g ~src:0 ~dst:2 ~weight:0;
  Pathgraph.Digraph.add_edge g ~src:1 ~dst:2 ~weight:0;
  match Pathgraph.Topo.sort g with
  | None -> Alcotest.fail "expected a DAG"
  | Some order ->
      let pos = Array.make 4 0 in
      List.iteri (fun i v -> pos.(v) <- i) order;
      check_bool "0 before 2" true (pos.(0) < pos.(2));
      check_bool "1 before 2" true (pos.(1) < pos.(2));
      check_bool "2 before 3" true (pos.(2) < pos.(3))

let test_topo_detects_cycle () =
  let g = Pathgraph.Digraph.create ~n_nodes:2 in
  Pathgraph.Digraph.add_edge g ~src:0 ~dst:1 ~weight:0;
  Pathgraph.Digraph.add_edge g ~src:1 ~dst:0 ~weight:0;
  check_bool "cyclic" false (Pathgraph.Topo.is_dag g);
  Alcotest.check_raises "sort_exn"
    (Invalid_argument "Topo.sort_exn: graph has a cycle") (fun () ->
      ignore (Pathgraph.Topo.sort_exn g))

(* -- Shortest_path ------------------------------------------------------- *)

let diamond () =
  (* 0 -> 1 (1), 0 -> 2 (4), 1 -> 2 (1), 1 -> 3 (5), 2 -> 3 (1) *)
  let g = Pathgraph.Digraph.create ~n_nodes:5 in
  Pathgraph.Digraph.add_edge g ~src:0 ~dst:1 ~weight:1;
  Pathgraph.Digraph.add_edge g ~src:0 ~dst:2 ~weight:4;
  Pathgraph.Digraph.add_edge g ~src:1 ~dst:2 ~weight:1;
  Pathgraph.Digraph.add_edge g ~src:1 ~dst:3 ~weight:5;
  Pathgraph.Digraph.add_edge g ~src:2 ~dst:3 ~weight:1;
  g

let test_dijkstra_diamond () =
  let r = Pathgraph.Shortest_path.dijkstra (diamond ()) ~source:0 in
  Alcotest.(check (option int))
    "dist to 3" (Some 3)
    (Pathgraph.Shortest_path.distance r ~target:3);
  Alcotest.(check (option (list int)))
    "path" (Some [ 0; 1; 2; 3 ])
    (Pathgraph.Shortest_path.path r ~target:3);
  Alcotest.(check (option int))
    "unreachable" None
    (Pathgraph.Shortest_path.distance r ~target:4)

let test_dag_matches_dijkstra () =
  let g = diamond () in
  let a = Pathgraph.Shortest_path.dijkstra g ~source:0 in
  let b = Pathgraph.Shortest_path.dag g ~source:0 in
  Alcotest.(check (list int))
    "same distances"
    (Array.to_list a.Pathgraph.Shortest_path.dist)
    (Array.to_list b.Pathgraph.Shortest_path.dist)

let test_dijkstra_rejects_negative () =
  let g = Pathgraph.Digraph.create ~n_nodes:2 in
  Pathgraph.Digraph.add_edge g ~src:0 ~dst:1 ~weight:(-2);
  Alcotest.check_raises "negative"
    (Invalid_argument "Shortest_path.dijkstra: negative edge weight")
    (fun () -> ignore (Pathgraph.Shortest_path.dijkstra g ~source:0))

let random_dag_arbitrary =
  (* Random DAG: edges only from lower to higher node ids. *)
  let gen =
    let open QCheck.Gen in
    int_range 2 12 >>= fun n ->
    list_size (int_range 0 (3 * n))
      (triple (int_range 0 (n - 1)) (int_range 0 (n - 1)) (int_range 0 9))
    >>= fun edges ->
    let g = Pathgraph.Digraph.create ~n_nodes:n in
    List.iter
      (fun (a, b, w) ->
        if a < b then Pathgraph.Digraph.add_edge g ~src:a ~dst:b ~weight:w)
      edges;
    return g
  in
  QCheck.make
    ~print:(fun g -> Format.asprintf "%a" Pathgraph.Digraph.pp g)
    gen

let prop_dag_equals_dijkstra =
  QCheck.Test.make ~name:"DAG relaxation = Dijkstra on random DAGs" ~count:100
    random_dag_arbitrary (fun g ->
      let a = Pathgraph.Shortest_path.dijkstra g ~source:0 in
      let b = Pathgraph.Shortest_path.dag g ~source:0 in
      a.Pathgraph.Shortest_path.dist = b.Pathgraph.Shortest_path.dist)

(* -- Layered ------------------------------------------------------------- *)

let small_problem =
  (* 3 layers x 2 nodes; costs favour switching to node 1 in layer 1. *)
  {
    Pathgraph.Layered.n_layers = 3;
    width = 2;
    enter_cost = (fun j -> if j = 0 then 0 else 10);
    step_cost =
      (fun ~layer j k ->
        let switch = if j <> k then 1 else 0 in
        let occupancy =
          match (layer, k) with 1, 1 -> 0 | 1, 0 -> 5 | _, _ -> 0
        in
        switch + occupancy);
  }

let test_layered_solve () =
  let cost, centers = Pathgraph.Layered.solve small_problem in
  (* enter node 0 free, pay the single switch into node 1 at layer 1, then
     stay: cheaper than the occupancy-5 of staying at node 0 *)
  check_int "cost" 1 cost;
  Alcotest.(check (list int))
    "witness" [ 0; 1; 1 ]
    (Array.to_list centers)

let test_layered_agrees_with_digraph () =
  let g, source, sink, _node_id =
    Pathgraph.Layered.to_digraph small_problem
  in
  let r = Pathgraph.Shortest_path.dag g ~source in
  let cost, _ = Pathgraph.Layered.solve small_problem in
  Alcotest.(check (option int))
    "same optimum" (Some cost)
    (Pathgraph.Shortest_path.distance r ~target:sink)

let test_layered_filtered () =
  (* forbid node 1 in layer 1: forced to pay the occupancy 5 *)
  let allowed ~layer j = not (layer = 1 && j = 1) in
  match Pathgraph.Layered.solve_filtered small_problem ~allowed with
  | None -> Alcotest.fail "feasible problem"
  | Some (cost, centers) ->
      check_int "cost" 5 cost;
      check_int "layer1 at node 0" 0 centers.(1)

let test_layered_infeasible () =
  let allowed ~layer j = not (layer = 1 && (j = 0 || j = 1)) in
  Alcotest.(check bool)
    "no path" true
    (Option.is_none
       (Pathgraph.Layered.solve_filtered small_problem ~allowed))

let test_layered_single_layer () =
  let p =
    {
      Pathgraph.Layered.n_layers = 1;
      width = 3;
      enter_cost = (fun j -> 5 - j);
      step_cost = (fun ~layer:_ _ _ -> assert false);
    }
  in
  let cost, centers = Pathgraph.Layered.solve p in
  check_int "picks cheapest" 3 cost;
  check_int "node 2" 2 centers.(0)

let layered_random_arbitrary =
  let gen =
    let open QCheck.Gen in
    triple (int_range 1 4) (int_range 1 4) (int_range 0 1000)
    >>= fun (n_layers, width, seed) ->
    return (n_layers, width, seed)
  in
  QCheck.make
    ~print:(fun (l, w, s) -> Printf.sprintf "layers=%d width=%d seed=%d" l w s)
    gen

let problem_of (n_layers, width, seed) =
  (* deterministic pseudo-random costs from the seed *)
  let cost a b c = 1 + ((seed + (31 * a) + (7 * b) + (3 * c)) mod 13) in
  {
    Pathgraph.Layered.n_layers;
    width;
    enter_cost = (fun j -> cost 0 0 j);
    step_cost = (fun ~layer j k -> cost layer j k);
  }

let prop_layered_dp_equals_explicit_graph =
  QCheck.Test.make ~name:"layered DP = explicit cost-graph shortest path"
    ~count:100 layered_random_arbitrary (fun spec ->
      let p = problem_of spec in
      let dp_cost, _ = Pathgraph.Layered.solve p in
      let g, source, sink, _ = Pathgraph.Layered.to_digraph p in
      let r = Pathgraph.Shortest_path.dag g ~source in
      Pathgraph.Shortest_path.distance r ~target:sink = Some dp_cost)

let suite =
  [
    Gen.case "digraph basics" test_digraph_basics;
    Gen.case "digraph validation" test_digraph_validation;
    Gen.case "digraph negative flag" test_digraph_negative_flag;
    Gen.case "topo sorts DAG" test_topo_sorts_dag;
    Gen.case "topo detects cycle" test_topo_detects_cycle;
    Gen.case "dijkstra diamond" test_dijkstra_diamond;
    Gen.case "dag matches dijkstra" test_dag_matches_dijkstra;
    Gen.case "dijkstra rejects negative" test_dijkstra_rejects_negative;
    Gen.to_alcotest prop_dag_equals_dijkstra;
    Gen.case "layered solve" test_layered_solve;
    Gen.case "layered agrees with digraph" test_layered_agrees_with_digraph;
    Gen.case "layered filtered" test_layered_filtered;
    Gen.case "layered infeasible" test_layered_infeasible;
    Gen.case "layered single layer" test_layered_single_layer;
    Gen.to_alcotest prop_layered_dp_equals_explicit_graph;
  ]
