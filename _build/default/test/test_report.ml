let rows =
  [
    {
      Sched.Report.benchmark = "1";
      size = "8x8";
      baseline = 100;
      entries = [ Sched.Report.entry ~baseline:100 50 ];
    };
    {
      Sched.Report.benchmark = "2";
      size = "16x16";
      baseline = 200;
      entries = [ Sched.Report.entry ~baseline:200 150 ];
    };
  ]

let test_entry_percentage () =
  let e = Sched.Report.entry ~baseline:100 75 in
  Alcotest.(check int) "cost" 75 e.Sched.Report.cost;
  Alcotest.(check (float 1e-9)) "percent" 25. e.Sched.Report.improvement

let test_average_improvements () =
  match Sched.Report.average_improvements rows with
  | [ avg ] -> Alcotest.(check (float 1e-9)) "mean of 50 and 25" 37.5 avg
  | _ -> Alcotest.fail "one column expected"

let test_average_empty () =
  Alcotest.(check (list (float 1e-9)))
    "empty" []
    (Sched.Report.average_improvements [])

let test_render_contains_data () =
  let s = Sched.Report.render ~title:"T" ~columns:[ "SCDS" ] rows in
  let mem needle =
    let n = String.length needle and h = String.length s in
    let rec go i = i + n <= h && (String.sub s i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "title" true (mem "T");
  Alcotest.(check bool) "benchmark column" true (mem "8x8");
  Alcotest.(check bool) "cost" true (mem "50");
  Alcotest.(check bool) "column header" true (mem "SCDS");
  Alcotest.(check bool) "average row" true (mem "Avg")

let test_render_rejects_ragged_rows () =
  Alcotest.check_raises "ragged"
    (Invalid_argument "Report.render: row width mismatch") (fun () ->
      ignore (Sched.Report.render ~title:"T" ~columns:[ "A"; "B" ] rows))

let suite =
  [
    Gen.case "entry percentage" test_entry_percentage;
    Gen.case "average improvements" test_average_improvements;
    Gen.case "average empty" test_average_empty;
    Gen.case "render contains data" test_render_contains_data;
    Gen.case "render rejects ragged rows" test_render_rejects_ragged_rows;
  ]
