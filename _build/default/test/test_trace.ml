let check_int = Alcotest.(check int)
let mesh = Gen.mesh44

let simple_trace () =
  Gen.trace mesh ~n_data:3
    [ [ (0, 1, 2); (1, 0, 1) ]; [ (2, 5, 3) ]; [ (0, 2, 1) ] ]

let test_basic_accessors () =
  let t = simple_trace () in
  check_int "windows" 3 (Reftrace.Trace.n_windows t);
  check_int "total references" 7 (Reftrace.Trace.total_references t);
  check_int "window 1 refs" 3
    (Reftrace.Window.total_references (Reftrace.Trace.window t 1))

let test_merged () =
  let t = simple_trace () in
  let m = Reftrace.Trace.merged t in
  Alcotest.(check (list (pair int int)))
    "datum 0 merged" [ (1, 2); (2, 1) ]
    (Reftrace.Window.profile m 0);
  check_int "merged total" (Reftrace.Trace.total_references t)
    (Reftrace.Window.total_references m)

let test_validate () =
  let t = simple_trace () in
  Reftrace.Trace.validate t mesh;
  let tiny = Pim.Mesh.square 2 in
  Alcotest.check_raises "rank 5 on 2x2"
    (Invalid_argument
       "Trace.validate: window 1 references rank 5 but mesh has 4 processors")
    (fun () -> Reftrace.Trace.validate t tiny)

let test_reversed () =
  let t = simple_trace () in
  let r = Reftrace.Trace.reversed t in
  Alcotest.(check bool)
    "last becomes first" true
    (Reftrace.Window.equal (Reftrace.Trace.window r 0)
       (Reftrace.Trace.window t 2));
  check_int "same total" (Reftrace.Trace.total_references t)
    (Reftrace.Trace.total_references r)

let test_append_shared_space () =
  let a = simple_trace () and b = simple_trace () in
  let ab = Reftrace.Trace.append a b in
  check_int "windows concatenated" 6 (Reftrace.Trace.n_windows ab);
  check_int "same data space size" 3
    (Reftrace.Data_space.size (Reftrace.Trace.space ab));
  check_int "references doubled"
    (2 * Reftrace.Trace.total_references a)
    (Reftrace.Trace.total_references ab)

let test_append_disjoint_space () =
  let a = simple_trace () in
  let space_b =
    Reftrace.Data_space.create
      (Reftrace.Data_space.array_desc "B" ~rows:1 ~cols:2)
      []
  in
  let wb = Reftrace.Window.create ~n_data:2 in
  Reftrace.Window.add wb ~data:1 ~proc:7 ~count:4;
  let b = Reftrace.Trace.create space_b [ wb ] in
  let ab = Reftrace.Trace.append a b in
  check_int "space grows" 5 (Reftrace.Data_space.size (Reftrace.Trace.space ab));
  (* B(0,1) is translated to id 3 + 1 = 4 *)
  check_int "translated refs" 4
    (Reftrace.Window.references (Reftrace.Trace.window ab 3) 4)

let test_drop_empty_windows () =
  let space = Reftrace.Data_space.matrix "A" 1 in
  let empty = Reftrace.Window.create ~n_data:1 in
  let full = Gen.window ~n_data:1 [ (0, 0, 1) ] in
  let t = Reftrace.Trace.create space [ empty; full; empty ] in
  let d = Reftrace.Trace.drop_empty_windows t in
  check_int "one window left" 1 (Reftrace.Trace.n_windows d);
  (* all-empty traces keep one window *)
  let t2 = Reftrace.Trace.create space [ empty; empty ] in
  check_int "degenerate keeps one" 1
    (Reftrace.Trace.n_windows (Reftrace.Trace.drop_empty_windows t2))

let test_create_validation () =
  let space = Reftrace.Data_space.matrix "A" 2 in
  Alcotest.check_raises "empty" (Invalid_argument "Trace.create: no windows")
    (fun () -> ignore (Reftrace.Trace.create space []));
  let wrong = Reftrace.Window.create ~n_data:3 in
  Alcotest.check_raises "size mismatch"
    (Invalid_argument "Trace.create: window over 3 data, space has 4 elements")
    (fun () -> ignore (Reftrace.Trace.create space [ wrong ]))

let prop_reverse_involution =
  let arb = Gen.trace_arbitrary ~max_data:5 ~max_windows:5 ~max_count:3 () in
  QCheck.Test.make ~name:"reverse twice is identity" ~count:50 arb (fun t ->
      let rr = Reftrace.Trace.reversed (Reftrace.Trace.reversed t) in
      List.for_all2 Reftrace.Window.equal (Reftrace.Trace.windows t)
        (Reftrace.Trace.windows rr))

let prop_merged_preserves_counts =
  let arb = Gen.trace_arbitrary ~max_data:5 ~max_windows:5 ~max_count:3 () in
  QCheck.Test.make ~name:"merged preserves total references" ~count:50 arb
    (fun t ->
      Reftrace.Window.total_references (Reftrace.Trace.merged t)
      = Reftrace.Trace.total_references t)

let suite =
  [
    Gen.case "basic accessors" test_basic_accessors;
    Gen.case "merged" test_merged;
    Gen.case "validate" test_validate;
    Gen.case "reversed" test_reversed;
    Gen.case "append shared space" test_append_shared_space;
    Gen.case "append disjoint space" test_append_disjoint_space;
    Gen.case "drop empty windows" test_drop_empty_windows;
    Gen.case "create validation" test_create_validation;
    Gen.to_alcotest prop_reverse_involution;
    Gen.to_alcotest prop_merged_preserves_counts;
  ]
