let coord = Alcotest.testable Pim.Coord.pp Pim.Coord.equal

let test_trace_shape () =
  Alcotest.(check int)
    "four windows" 4
    (Reftrace.Trace.n_windows Sched.Example.trace);
  Alcotest.(check int)
    "single datum" 1
    (Reftrace.Data_space.size (Reftrace.Trace.space Sched.Example.trace));
  Reftrace.Trace.validate Sched.Example.trace Sched.Example.mesh

let test_scds_is_static () =
  let o = Sched.Example.scds () in
  Alcotest.(check int) "no movement" 0 o.Sched.Example.movement;
  Alcotest.check coord "merged hot spot"
    (Pim.Coord.make ~x:1 ~y:0)
    o.Sched.Example.centers.(0)

let test_lomcds_chases_the_feint () =
  let o = Sched.Example.lomcds () in
  (* window 1's local optimum is the feint at (1,3) *)
  Alcotest.check coord "feint followed"
    (Pim.Coord.make ~x:1 ~y:3)
    o.Sched.Example.centers.(1);
  Alcotest.(check bool) "pays movement" true (o.Sched.Example.movement > 0)

let test_gomcds_ignores_the_feint () =
  let o = Sched.Example.gomcds () in
  Alcotest.check coord "stays near home"
    (Pim.Coord.make ~x:1 ~y:0)
    o.Sched.Example.centers.(1)

let test_cost_ordering_matches_paper () =
  let scds = Sched.Example.scds ()
  and lomcds = Sched.Example.lomcds ()
  and gomcds = Sched.Example.gomcds () in
  (* The paper's §3.3 ordering: GOMCDS < LOMCDS < SCDS on this example. *)
  Alcotest.(check bool)
    "gomcds strictly best" true
    (gomcds.Sched.Example.total < lomcds.Sched.Example.total);
  Alcotest.(check bool)
    "lomcds beats scds here" true
    (lomcds.Sched.Example.total < scds.Sched.Example.total)

let test_all_returns_three () =
  Alcotest.(check (list string))
    "order" [ "SCDS"; "LOMCDS"; "GOMCDS" ]
    (List.map (fun o -> o.Sched.Example.algorithm) (Sched.Example.all ()))

let test_outcome_totals_consistent () =
  List.iter
    (fun o ->
      Alcotest.(check int)
        (o.Sched.Example.algorithm ^ " total")
        (o.Sched.Example.reference + o.Sched.Example.movement)
        o.Sched.Example.total)
    (Sched.Example.all ())

let suite =
  [
    Gen.case "trace shape" test_trace_shape;
    Gen.case "scds static" test_scds_is_static;
    Gen.case "lomcds chases the feint" test_lomcds_chases_the_feint;
    Gen.case "gomcds ignores the feint" test_gomcds_ignores_the_feint;
    Gen.case "cost ordering matches paper" test_cost_ordering_matches_paper;
    Gen.case "all returns three" test_all_returns_three;
    Gen.case "outcome totals consistent" test_outcome_totals_consistent;
  ]
