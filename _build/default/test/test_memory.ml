let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let mesh = Gen.mesh44

let test_fresh_is_empty () =
  let m = Pim.Memory.create mesh ~capacity:3 in
  check_int "used" 0 (Pim.Memory.used m 0);
  check_int "free" 3 (Pim.Memory.free m 0);
  check_bool "not full" false (Pim.Memory.is_full m 0);
  check_int "total" 0 (Pim.Memory.total_used m)

let test_allocate_until_full () =
  let m = Pim.Memory.create mesh ~capacity:2 in
  check_bool "first" true (Pim.Memory.allocate m 5);
  check_bool "second" true (Pim.Memory.allocate m 5);
  check_bool "full now" true (Pim.Memory.is_full m 5);
  check_bool "third rejected" false (Pim.Memory.allocate m 5);
  check_int "used stays" 2 (Pim.Memory.used m 5)

let test_release () =
  let m = Pim.Memory.create mesh ~capacity:1 in
  ignore (Pim.Memory.allocate m 7);
  Pim.Memory.release m 7;
  check_int "released" 0 (Pim.Memory.used m 7);
  Alcotest.check_raises "double release"
    (Invalid_argument "Memory.release: rank 7 already empty") (fun () ->
      Pim.Memory.release m 7)

let test_zero_capacity () =
  let m = Pim.Memory.create mesh ~capacity:0 in
  check_bool "always full" true (Pim.Memory.is_full m 0);
  check_bool "allocate fails" false (Pim.Memory.allocate m 0)

let test_unbounded () =
  let m = Pim.Memory.unbounded mesh in
  for _ = 1 to 1000 do
    assert (Pim.Memory.allocate m 3)
  done;
  check_bool "never full" false (Pim.Memory.is_full m 3);
  check_int "used tracked" 1000 (Pim.Memory.used m 3);
  Alcotest.(check (option int)) "capacity none" None (Pim.Memory.capacity m)

let test_reset_and_copy () =
  let m = Pim.Memory.create mesh ~capacity:4 in
  ignore (Pim.Memory.allocate m 1);
  ignore (Pim.Memory.allocate m 2);
  let snapshot = Pim.Memory.copy m in
  Pim.Memory.reset m;
  check_int "reset clears" 0 (Pim.Memory.total_used m);
  check_int "copy unaffected" 2 (Pim.Memory.total_used snapshot)

let test_capacity_for_paper_rule () =
  (* Paper: 8x8 data on a 4x4 array with 2x headroom -> capacity 8. *)
  check_int "paper example" 8
    (Pim.Memory.capacity_for ~data_count:64 ~mesh ~headroom:2);
  check_int "rounds up" 2
    (Pim.Memory.capacity_for ~data_count:17 ~mesh ~headroom:1)

let test_invalid_arguments () =
  Alcotest.check_raises "negative capacity"
    (Invalid_argument "Memory.create: negative capacity -1") (fun () ->
      ignore (Pim.Memory.create mesh ~capacity:(-1)));
  Alcotest.check_raises "bad rank"
    (Invalid_argument "Memory: rank 99 out of bounds") (fun () ->
      ignore (Pim.Memory.used (Pim.Memory.create mesh ~capacity:1) 99))

let prop_allocation_conserves =
  QCheck.Test.make ~name:"total_used counts allocations" ~count:100
    QCheck.(small_list (int_bound 15))
    (fun ranks ->
      let m = Pim.Memory.unbounded mesh in
      List.iter (fun r -> assert (Pim.Memory.allocate m r)) ranks;
      Pim.Memory.total_used m = List.length ranks)

let suite =
  [
    Gen.case "fresh is empty" test_fresh_is_empty;
    Gen.case "allocate until full" test_allocate_until_full;
    Gen.case "release" test_release;
    Gen.case "zero capacity" test_zero_capacity;
    Gen.case "unbounded" test_unbounded;
    Gen.case "reset and copy" test_reset_and_copy;
    Gen.case "paper capacity rule" test_capacity_for_paper_rule;
    Gen.case "invalid arguments" test_invalid_arguments;
    Gen.to_alcotest prop_allocation_conserves;
  ]
