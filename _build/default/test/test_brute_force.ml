let check_int = Alcotest.(check int)
let mesh = Gen.mesh22

let test_single_window_optimum () =
  let t = Gen.trace mesh ~n_data:1 [ [ (0, 3, 4); (0, 0, 1) ] ] in
  let cost, seq = Sched.Brute_force.optimal_cost mesh t ~data:0 in
  (* rank 3 serves 4 refs locally; rank 0 ref costs 2 *)
  check_int "cost" 2 cost;
  check_int "center" 3 seq.(0)

let test_static_optimum () =
  let t = Gen.trace mesh ~n_data:1 [ [ (0, 0, 1) ]; [ (0, 3, 1) ] ] in
  let cost, center = Sched.Brute_force.optimal_static_cost mesh t ~data:0 in
  (* any rank: total distance to opposite corners = 2 *)
  check_int "cost" 2 cost;
  Alcotest.(check bool) "valid center" true (center >= 0 && center < 4)

let test_movement_beats_static_when_profitable () =
  let t = Gen.trace mesh ~n_data:1 [ [ (0, 0, 9) ]; [ (0, 3, 9) ] ] in
  let dynamic, _ = Sched.Brute_force.optimal_cost mesh t ~data:0 in
  let static, _ = Sched.Brute_force.optimal_static_cost mesh t ~data:0 in
  (* dynamic: serve both locally, pay one migration of distance 2 *)
  check_int "dynamic" 2 dynamic;
  check_int "static" 18 static

let test_total_optimal_cost_sums () =
  let t = Gen.trace mesh ~n_data:2 [ [ (0, 0, 2); (1, 3, 2) ] ] in
  check_int "both served locally" 0 (Sched.Brute_force.total_optimal_cost mesh t)

let test_refuses_large_instances () =
  let big = Gen.mesh44 in
  let specs = List.init 8 (fun _ -> [ (0, 0, 1) ]) in
  let t = Gen.trace big ~n_data:1 specs in
  Alcotest.check_raises "guard"
    (Invalid_argument "Brute_force.optimal_cost: instance too large")
    (fun () -> ignore (Sched.Brute_force.optimal_cost big t ~data:0))

let prop_pruning_is_safe =
  (* the branch-and-bound must agree with the DP, which is exhaustive in
     effect; this guards the pruning condition *)
  let arb =
    Gen.trace_arbitrary ~mesh:Gen.mesh22 ~max_data:2 ~max_windows:5
      ~max_count:3 ()
  in
  QCheck.Test.make ~name:"brute force = layered DP" ~count:100 arb (fun t ->
      let n = Reftrace.Data_space.size (Reftrace.Trace.space t) in
      let ok = ref true in
      for data = 0 to n - 1 do
        let bf, _ = Sched.Brute_force.optimal_cost Gen.mesh22 t ~data in
        let dp, _ = Sched.Gomcds.optimal_centers Gen.mesh22 t ~data in
        if bf <> dp then ok := false
      done;
      !ok)

let suite =
  [
    Gen.case "single window optimum" test_single_window_optimum;
    Gen.case "static optimum" test_static_optimum;
    Gen.case "movement beats static" test_movement_beats_static_when_profitable;
    Gen.case "total optimal cost" test_total_optimal_cost_sums;
    Gen.case "refuses large instances" test_refuses_large_instances;
    Gen.to_alcotest prop_pruning_is_safe;
  ]
