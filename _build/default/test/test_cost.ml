let check_int = Alcotest.(check int)
let mesh = Gen.mesh44

(* datum 0 referenced twice by rank 5 and once by rank 0 *)
let w = Gen.window ~n_data:2 [ (0, 5, 2); (0, 0, 1) ]

let test_reference_cost () =
  (* center rank 5 (=(1,1)): 0 for the local refs + dist(5,0)=2 for rank 0 *)
  check_int "at rank 5" 2 (Sched.Cost.reference_cost mesh w ~data:0 ~center:5);
  (* center rank 0: 2 refs * dist 2 + 0 *)
  check_int "at rank 0" 4 (Sched.Cost.reference_cost mesh w ~data:0 ~center:0)

let test_cost_vector_matches_pointwise () =
  let v = Sched.Cost.cost_vector mesh w ~data:0 in
  check_int "length" 16 (Array.length v);
  Array.iteri
    (fun center expected ->
      check_int
        (Printf.sprintf "center %d" center)
        expected
        (Sched.Cost.reference_cost mesh w ~data:0 ~center))
    v

let test_unreferenced_datum_is_free () =
  let v = Sched.Cost.cost_vector mesh w ~data:1 in
  Array.iter (fun c -> check_int "zero" 0 c) v;
  check_int "center defaults to 0" 0
    (Sched.Cost.local_optimal_center mesh w ~data:1)

let test_local_optimal_center () =
  check_int "rank 5 wins" 5 (Sched.Cost.local_optimal_center mesh w ~data:0)

let test_local_optimal_tie_breaks_low_rank () =
  (* two symmetric references: several centers tie; lowest rank wins *)
  let w = Gen.window ~n_data:1 [ (0, 0, 1); (0, 3, 1) ] in
  let v = Sched.Cost.cost_vector mesh w ~data:0 in
  let c = Sched.Cost.local_optimal_center mesh w ~data:0 in
  check_int "is argmin" v.(c)
    (Array.fold_left min max_int v);
  check_int "lowest tied rank" 0 c

let test_movement_cost () =
  check_int "corner to corner" 6 (Sched.Cost.movement_cost mesh ~from_:0 ~to_:15);
  check_int "self" 0 (Sched.Cost.movement_cost mesh ~from_:7 ~to_:7)

let test_path_cost () =
  let w1 = Gen.window ~n_data:1 [ (0, 0, 1) ] in
  let w2 = Gen.window ~n_data:1 [ (0, 15, 1) ] in
  (* stay at 0: ref 0 + ref 6 = 6; move to 15: ref 0 + move 6 + ref 0 = 6 *)
  check_int "stay" 6 (Sched.Cost.path_cost mesh [ (w1, 0); (w2, 0) ] ~data:0);
  check_int "move" 6 (Sched.Cost.path_cost mesh [ (w1, 0); (w2, 15) ] ~data:0);
  Alcotest.check_raises "empty"
    (Invalid_argument "Cost.path_cost: empty window list") (fun () ->
      ignore (Sched.Cost.path_cost mesh [] ~data:0))

let prop_center_is_argmin =
  let arb = Gen.single_datum_window_arbitrary ~max_count:5 () in
  QCheck.Test.make ~name:"local optimal center minimizes cost vector"
    ~count:200 arb (fun w ->
      let v = Sched.Cost.cost_vector mesh w ~data:0 in
      let c = Sched.Cost.local_optimal_center mesh w ~data:0 in
      Array.for_all (fun x -> v.(c) <= x) v)

let prop_cost_linear_in_merge =
  let arb = Gen.single_datum_window_arbitrary ~max_count:5 () in
  QCheck.Test.make ~name:"cost vectors add under window merge" ~count:200
    (QCheck.pair arb arb) (fun (a, b) ->
      let m = Reftrace.Window.merge a b in
      let va = Sched.Cost.cost_vector mesh a ~data:0 in
      let vb = Sched.Cost.cost_vector mesh b ~data:0 in
      let vm = Sched.Cost.cost_vector mesh m ~data:0 in
      Array.for_all2 (fun x y -> x = y) vm
        (Array.mapi (fun i x -> x + vb.(i)) va))

let suite =
  [
    Gen.case "reference cost" test_reference_cost;
    Gen.case "cost vector matches pointwise" test_cost_vector_matches_pointwise;
    Gen.case "unreferenced datum is free" test_unreferenced_datum_is_free;
    Gen.case "local optimal center" test_local_optimal_center;
    Gen.case "tie breaks to low rank" test_local_optimal_tie_breaks_low_rank;
    Gen.case "movement cost" test_movement_cost;
    Gen.case "path cost" test_path_cost;
    Gen.to_alcotest prop_center_is_argmin;
    Gen.to_alcotest prop_cost_linear_in_merge;
  ]
