test/test_link_stats.ml: Alcotest Gen List Pim
