test/test_brute_force.ml: Alcotest Array Gen List QCheck Reftrace Sched
