test/test_lomcds.ml: Alcotest Array Gen List Option Pim Printf QCheck Reftrace Sched
