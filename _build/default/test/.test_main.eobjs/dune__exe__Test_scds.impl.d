test/test_scds.ml: Alcotest Array Gen List Option Pim QCheck Reftrace Sched
