test/test_serial.ml: Alcotest Filename Fun Gen List QCheck Reftrace String Sys Workloads
