test/test_window.ml: Alcotest Gen List QCheck Reftrace
