test/test_router.ml: Alcotest Gen Pim QCheck
