test/test_memory.ml: Alcotest Gen List Pim QCheck
