test/test_processor_list.ml: Alcotest Fun Gen List Pim QCheck Sched
