test/test_adaptive_windows.ml: Alcotest Gen List QCheck Reftrace Sched Workloads
