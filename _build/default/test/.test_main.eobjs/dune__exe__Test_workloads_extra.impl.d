test/test_workloads_extra.ml: Alcotest Gen List Reftrace Sched String Workloads
