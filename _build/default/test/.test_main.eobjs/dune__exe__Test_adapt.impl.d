test/test_adapt.ml: Alcotest Array Gen Option Pim QCheck Reftrace Sched Workloads
