test/test_bounds.ml: Alcotest Gen List Pim QCheck Reftrace Sched Workloads
