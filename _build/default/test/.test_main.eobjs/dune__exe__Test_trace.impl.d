test/test_trace.ml: Alcotest Gen List Pim QCheck Reftrace
