test/test_online.ml: Alcotest Gen Option Pim QCheck Reftrace Sched Workloads
