test/test_window_builder.ml: Alcotest Gen List QCheck Reftrace
