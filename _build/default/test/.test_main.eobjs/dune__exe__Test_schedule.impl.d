test/test_schedule.ml: Alcotest Array Gen List Pim QCheck Sched
