test/test_volumes.ml: Alcotest Gen List Pim QCheck Reftrace Sched String
