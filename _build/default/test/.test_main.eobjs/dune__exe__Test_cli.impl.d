test/test_cli.ml: Alcotest Filename Fun Gen List Printf Sched String Sys
