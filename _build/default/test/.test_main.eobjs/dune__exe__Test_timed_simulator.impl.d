test/test_timed_simulator.ml: Alcotest Format Gen List Pim QCheck Sched String Workloads
