test/test_distributed_lu.ml: Alcotest Array Exec Gen List QCheck Sched Workloads
