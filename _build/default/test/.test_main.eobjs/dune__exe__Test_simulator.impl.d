test/test_simulator.ml: Alcotest Gen List Pim
