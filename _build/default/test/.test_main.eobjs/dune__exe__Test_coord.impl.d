test/test_coord.ml: Alcotest Gen Pim QCheck
