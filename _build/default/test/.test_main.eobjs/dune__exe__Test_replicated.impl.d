test/test_replicated.ml: Alcotest Gen List Option Pim QCheck Reftrace Sched Workloads
