test/test_integration.ml: Alcotest Gen List Pim Printf QCheck Reftrace Sched Workloads
