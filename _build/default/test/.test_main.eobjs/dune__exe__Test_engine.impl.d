test/test_engine.ml: Alcotest Array Atomic Gen List Pim Printf Reftrace Sched Workloads
