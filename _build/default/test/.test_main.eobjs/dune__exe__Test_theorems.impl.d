test/test_theorems.ml: Alcotest Array Gen List Pim QCheck Reftrace Sched
