test/test_workloads.ml: Alcotest Fun Gen List Pim QCheck Reftrace Sched Workloads
