test/test_data_space.ml: Alcotest Gen List Reftrace
