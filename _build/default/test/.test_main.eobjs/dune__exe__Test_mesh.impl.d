test/test_mesh.ml: Alcotest Gen Int List Pim QCheck
