test/test_cross_validation.ml: Array Format Gen List Option Pim QCheck Reftrace Sched
