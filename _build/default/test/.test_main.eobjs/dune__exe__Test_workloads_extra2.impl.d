test/test_workloads_extra2.ml: Alcotest Gen List Reftrace Sched Workloads
