test/test_grouping.ml: Alcotest Array Format Gen List Option Pim QCheck Reftrace Sched
