test/test_report.ml: Alcotest Gen Sched String
