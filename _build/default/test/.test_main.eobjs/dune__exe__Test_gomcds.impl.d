test/test_gomcds.ml: Alcotest Array Gen List Option Pathgraph Pim QCheck Reftrace Sched
