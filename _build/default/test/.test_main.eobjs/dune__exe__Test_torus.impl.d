test/test_torus.ml: Alcotest Gen List Pim QCheck Sched Workloads
