test/test_annealing.ml: Alcotest Gen Option Pim QCheck Reftrace Sched Workloads
