test/test_scheduler.ml: Alcotest Gen List QCheck Sched String
