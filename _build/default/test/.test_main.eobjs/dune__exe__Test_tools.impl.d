test/test_tools.ml: Alcotest Filename Fun Gen List Pim QCheck Sched String Sys Workloads
