test/test_refine.ml: Alcotest Gen List Option Pim QCheck Reftrace Sched Workloads
