test/gen.ml: Alcotest Format List Pim QCheck QCheck_alcotest Reftrace
