test/test_stats.ml: Alcotest Gen List QCheck Reftrace Sched Workloads
