test/test_baseline.ml: Alcotest Array Gen List Pim QCheck Reftrace Sched
