test/test_optimal_grouping.ml: Alcotest Array Gen List Option Pim QCheck Reftrace Sched Workloads
