test/test_example.ml: Alcotest Array Gen List Pim Reftrace Sched
