test/test_cost.ml: Alcotest Array Gen Printf QCheck Reftrace Sched
