test/test_graph.ml: Alcotest Array Format Gen List Option Pathgraph Printf QCheck
