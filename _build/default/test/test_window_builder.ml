let check_int = Alcotest.(check int)

let space = Reftrace.Data_space.matrix "A" 2
let ev step proc data = Reftrace.Trace.event ~step ~proc ~data ()

let events =
  [ ev 0 1 0; ev 0 1 0; ev 0 2 1; ev 5 0 2; ev 9 3 3; ev 9 3 3; ev 9 1 0 ]

let test_per_step () =
  let t = Reftrace.Window_builder.per_step space events in
  check_int "three distinct steps" 3 (Reftrace.Trace.n_windows t);
  check_int "window 0 counts" 2
    (Reftrace.Window.references (Reftrace.Trace.window t 0) 0);
  check_int "window 2 datum 3" 2
    (Reftrace.Window.references (Reftrace.Trace.window t 2) 3)

let test_fixed () =
  let t = Reftrace.Window_builder.fixed ~steps_per_window:2 space events in
  (* steps {0,5} then {9} *)
  check_int "two windows" 2 (Reftrace.Trace.n_windows t);
  check_int "first window refs" 4
    (Reftrace.Window.total_references (Reftrace.Trace.window t 0))

let test_fixed_one_equals_per_step () =
  let a = Reftrace.Window_builder.per_step space events in
  let b = Reftrace.Window_builder.fixed ~steps_per_window:1 space events in
  Alcotest.(check bool)
    "identical" true
    (List.for_all2 Reftrace.Window.equal (Reftrace.Trace.windows a)
       (Reftrace.Trace.windows b))

let test_fixed_large_merges_all () =
  let t = Reftrace.Window_builder.fixed ~steps_per_window:100 space events in
  check_int "one window" 1 (Reftrace.Trace.n_windows t);
  check_int "all refs" (List.length events)
    (Reftrace.Trace.total_references t)

let test_by_custom_map () =
  let t =
    Reftrace.Window_builder.by ~window_of_step:(fun s -> s / 6) space events
  in
  (* steps 0,5 -> window 0; step 9 -> window 1 *)
  check_int "two windows" 2 (Reftrace.Trace.n_windows t)

let test_validation () =
  Alcotest.check_raises "empty events"
    (Invalid_argument "Window_builder: empty event list") (fun () ->
      ignore (Reftrace.Window_builder.per_step space []));
  Alcotest.check_raises "bad steps_per_window"
    (Invalid_argument "Window_builder.fixed: steps_per_window must be positive")
    (fun () ->
      ignore (Reftrace.Window_builder.fixed ~steps_per_window:0 space events));
  Alcotest.check_raises "negative window index"
    (Invalid_argument "Window_builder: negative window index computed")
    (fun () ->
      ignore
        (Reftrace.Window_builder.by ~window_of_step:(fun _ -> -1) space events))

let test_events_roundtrip () =
  let t = Reftrace.Window_builder.per_step space events in
  let flattened = Reftrace.Window_builder.events_of_trace t in
  let t2 = Reftrace.Window_builder.per_step space flattened in
  Alcotest.(check bool)
    "roundtrip" true
    (List.for_all2 Reftrace.Window.equal (Reftrace.Trace.windows t)
       (Reftrace.Trace.windows t2))

let prop_builders_preserve_reference_count =
  let arb = Gen.trace_arbitrary ~max_data:4 ~max_windows:6 ~max_count:3 () in
  QCheck.Test.make ~name:"rebuilding preserves reference counts" ~count:50 arb
    (fun t ->
      let events = Reftrace.Window_builder.events_of_trace t in
      let rebuilt =
        Reftrace.Window_builder.per_step (Reftrace.Trace.space t) events
      in
      Reftrace.Trace.total_references rebuilt
      = Reftrace.Trace.total_references t)

let suite =
  [
    Gen.case "per_step" test_per_step;
    Gen.case "fixed" test_fixed;
    Gen.case "fixed(1) = per_step" test_fixed_one_equals_per_step;
    Gen.case "fixed(large) merges all" test_fixed_large_merges_all;
    Gen.case "by custom map" test_by_custom_map;
    Gen.case "validation" test_validation;
    Gen.case "events roundtrip" test_events_roundtrip;
    Gen.to_alcotest prop_builders_preserve_reference_count;
  ]
