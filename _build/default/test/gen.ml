(* Shared deterministic builders and QCheck generators for the test suite. *)

let mesh44 = Pim.Mesh.square 4
let mesh22 = Pim.Mesh.square 2

(* [window ~n_data specs] builds a window from [(data, proc, count)]
   triples. *)
let window ~n_data specs =
  let w = Reftrace.Window.create ~n_data in
  List.iter
    (fun (data, proc, count) -> Reftrace.Window.add w ~data ~proc ~count)
    specs;
  w

(* [trace mesh ~n_data window_specs] builds a trace; each element of
   [window_specs] is a [(data, proc, count)] list. *)
let trace _mesh ~n_data window_specs =
  let space =
    Reftrace.Data_space.create
      (Reftrace.Data_space.array_desc "A" ~rows:1 ~cols:n_data)
      []
  in
  Reftrace.Trace.create space (List.map (window ~n_data) window_specs)

(* QCheck generator for a random trace on [mesh]: every window references at
   least one datum so traces are never degenerate. *)
let trace_gen ?(mesh = mesh44) ~max_data ~max_windows ~max_count () =
  let open QCheck.Gen in
  let m = Pim.Mesh.size mesh in
  int_range 1 max_data >>= fun n_data ->
  int_range 1 max_windows >>= fun n_windows ->
  let ref_gen =
    triple (int_range 0 (n_data - 1)) (int_range 0 (m - 1))
      (int_range 1 max_count)
  in
  let window_gen =
    int_range 1 (2 * m) >>= fun n_refs -> list_size (return n_refs) ref_gen
  in
  list_size (return n_windows) window_gen >>= fun specs ->
  return (trace mesh ~n_data specs)

let trace_print t = Format.asprintf "%a" Reftrace.Trace.pp t

let trace_arbitrary ?mesh ~max_data ~max_windows ~max_count () =
  QCheck.make ~print:trace_print
    (trace_gen ?mesh ~max_data ~max_windows ~max_count ())

(* A window generator over a fixed mesh and single datum, for the theorem
   properties. *)
let single_datum_window_gen ?(mesh = mesh44) ~max_count () =
  let open QCheck.Gen in
  let m = Pim.Mesh.size mesh in
  int_range 1 (2 * m) >>= fun n_refs ->
  list_size (return n_refs)
    (pair (int_range 0 (m - 1)) (int_range 1 max_count))
  >>= fun refs ->
  return (window ~n_data:1 (List.map (fun (p, c) -> (0, p, c)) refs))

let window_print w = Format.asprintf "%a" Reftrace.Window.pp w

let single_datum_window_arbitrary ?mesh ~max_count () =
  QCheck.make ~print:window_print (single_datum_window_gen ?mesh ~max_count ())

let to_alcotest = QCheck_alcotest.to_alcotest

(* Shorthand for a plain unit test case. *)
let case name f = Alcotest.test_case name `Quick f
