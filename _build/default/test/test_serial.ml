let mesh = Gen.mesh44

let trace_equal a b =
  Reftrace.Data_space.arrays (Reftrace.Trace.space a)
  = Reftrace.Data_space.arrays (Reftrace.Trace.space b)
  && Reftrace.Trace.n_windows a = Reftrace.Trace.n_windows b
  && List.for_all2 Reftrace.Window.equal (Reftrace.Trace.windows a)
       (Reftrace.Trace.windows b)

let test_roundtrip_simple () =
  let t = Gen.trace mesh ~n_data:3 [ [ (0, 1, 2); (2, 5, 1) ]; [ (1, 3, 4) ] ] in
  let t' = Reftrace.Serial.of_string (Reftrace.Serial.to_string t) in
  Alcotest.(check bool) "equal" true (trace_equal t t')

let test_roundtrip_benchmark () =
  let t = Workloads.Benchmarks.trace Workloads.Benchmarks.B3 ~n:8 mesh in
  let t' = Reftrace.Serial.of_string (Reftrace.Serial.to_string t) in
  Alcotest.(check bool) "equal" true (trace_equal t t');
  Alcotest.(check int)
    "same references"
    (Reftrace.Trace.total_references t)
    (Reftrace.Trace.total_references t')

let test_format_shape () =
  let t = Gen.trace mesh ~n_data:2 [ [ (0, 1, 2) ] ] in
  let s = Reftrace.Serial.to_string t in
  Alcotest.(check bool) "header" true
    (String.length s > 20 && String.sub s 0 20 = "# pim-sched trace v1");
  Alcotest.(check bool) "has window line" true
    (List.mem "window 0" (String.split_on_char '\n' s));
  Alcotest.(check bool) "has ref line" true
    (List.mem "ref 0 1 2" (String.split_on_char '\n' s))

let test_comments_and_blanks_ignored () =
  let input =
    "# a comment\n\narray A 1 2\n# another\nwindow 0\n\nref 0 3 2\nref 1 0 1\n"
  in
  let t = Reftrace.Serial.of_string input in
  Alcotest.(check int) "one window" 1 (Reftrace.Trace.n_windows t);
  Alcotest.(check int) "datum 0 refs" 2
    (Reftrace.Window.references (Reftrace.Trace.window t 0) 0)

let check_fails input expected =
  Alcotest.check_raises "parse error" (Failure expected) (fun () ->
      ignore (Reftrace.Serial.of_string input))

let test_parse_errors () =
  check_fails "window 0\n"
    "Serial.of_string: line 1: no array declared before windows";
  check_fails "array A 1 1\nref 0 0 1\n"
    "Serial.of_string: line 2: ref before any window";
  check_fails "array A 1 1\nwindow 1\n"
    "Serial.of_string: line 2: expected window 0, got 1";
  check_fails "array A 1 1\nwindow 0\narray B 1 1\n"
    "Serial.of_string: line 3: array declarations must precede windows";
  check_fails "array A 1 1\nwindow 0\nwibble\n"
    "Serial.of_string: line 3: unrecognized line \"wibble\"";
  check_fails "array A x 1\n"
    "Serial.of_string: line 1: malformed array dimensions";
  check_fails "" "Serial.of_string: empty input";
  check_fails "array A 1 1\nwindow 0\nref 0 0 -1\n"
    "Serial.of_string: line 3: Window.add: negative count"

let test_out_of_range_data_rejected () =
  check_fails "array A 1 1\nwindow 0\nref 5 0 1\n"
    "Serial.of_string: line 3: Window: data id 5 out of range"

let test_file_roundtrip () =
  let t = Workloads.Lu.trace ~n:6 mesh in
  let path = Filename.temp_file "pimsched" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Reftrace.Serial.save t path;
      let t' = Reftrace.Serial.load path in
      Alcotest.(check bool) "equal" true (trace_equal t t'))

let prop_roundtrip_random =
  let arb = Gen.trace_arbitrary ~max_data:6 ~max_windows:5 ~max_count:4 () in
  QCheck.Test.make ~name:"serialize/parse roundtrip on random traces"
    ~count:100 arb (fun t ->
      trace_equal t (Reftrace.Serial.of_string (Reftrace.Serial.to_string t)))

let suite =
  [
    Gen.case "roundtrip simple" test_roundtrip_simple;
    Gen.case "roundtrip benchmark" test_roundtrip_benchmark;
    Gen.case "format shape" test_format_shape;
    Gen.case "comments and blanks" test_comments_and_blanks_ignored;
    Gen.case "parse errors" test_parse_errors;
    Gen.case "out-of-range data rejected" test_out_of_range_data_rejected;
    Gen.case "file roundtrip" test_file_roundtrip;
    Gen.to_alcotest prop_roundtrip_random;
  ]
