let check_int = Alcotest.(check int)

let space2 =
  Reftrace.Data_space.create
    (Reftrace.Data_space.array_desc "A" ~rows:2 ~cols:3)
    [ Reftrace.Data_space.array_desc "C" ~rows:2 ~cols:2 ]

let test_size () =
  check_int "single matrix" 16
    (Reftrace.Data_space.size (Reftrace.Data_space.matrix "A" 4));
  check_int "two arrays" 10 (Reftrace.Data_space.size space2)

let test_ids_dense_and_ordered () =
  check_int "A(0,0)" 0
    (Reftrace.Data_space.id space2 ~array_name:"A" ~row:0 ~col:0);
  check_int "A(1,2)" 5
    (Reftrace.Data_space.id space2 ~array_name:"A" ~row:1 ~col:2);
  check_int "C starts after A" 6
    (Reftrace.Data_space.id space2 ~array_name:"C" ~row:0 ~col:0);
  check_int "C(1,1)" 9
    (Reftrace.Data_space.id space2 ~array_name:"C" ~row:1 ~col:1)

let test_locate_roundtrip () =
  List.iter
    (fun i ->
      let d, r, c = Reftrace.Data_space.locate space2 i in
      check_int "roundtrip" i
        (Reftrace.Data_space.id space2 ~array_name:d.Reftrace.Data_space.name
           ~row:r ~col:c))
    (Reftrace.Data_space.ids space2)

let test_describe () =
  Alcotest.(check string)
    "describe" "C(1,0)"
    (Reftrace.Data_space.describe space2 8)

let test_validation () =
  Alcotest.check_raises "unknown array"
    (Invalid_argument "Data_space: unknown array B") (fun () ->
      ignore (Reftrace.Data_space.id space2 ~array_name:"B" ~row:0 ~col:0));
  Alcotest.check_raises "out of bounds"
    (Invalid_argument "Data_space.id: A(2,0) out of bounds") (fun () ->
      ignore (Reftrace.Data_space.id space2 ~array_name:"A" ~row:2 ~col:0));
  Alcotest.check_raises "duplicate names"
    (Invalid_argument "Data_space.create: duplicate array names") (fun () ->
      ignore
        (Reftrace.Data_space.create
           (Reftrace.Data_space.array_desc "A" ~rows:1 ~cols:1)
           [ Reftrace.Data_space.array_desc "A" ~rows:1 ~cols:1 ]))

let test_concat_shares_named_arrays () =
  let a = Reftrace.Data_space.matrix "A" 2 in
  let b =
    Reftrace.Data_space.create
      (Reftrace.Data_space.array_desc "A" ~rows:2 ~cols:2)
      [ Reftrace.Data_space.array_desc "B" ~rows:1 ~cols:2 ]
  in
  let merged, translate = Reftrace.Data_space.concat a b in
  check_int "A shared, B appended" 6 (Reftrace.Data_space.size merged);
  (* A's elements keep their ids through translation *)
  check_int "A(1,1) stable" 3 (translate 3);
  (* B's first element lands after A *)
  check_int "B(0,0)" 4 (translate 4)

let test_concat_shape_mismatch () =
  let a = Reftrace.Data_space.matrix "A" 2 in
  let b = Reftrace.Data_space.matrix "A" 3 in
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Data_space.concat: array A has shape 2x2 vs 3x3")
    (fun () -> ignore (Reftrace.Data_space.concat a b))

let suite =
  [
    Gen.case "size" test_size;
    Gen.case "ids dense and ordered" test_ids_dense_and_ordered;
    Gen.case "locate roundtrip" test_locate_roundtrip;
    Gen.case "describe" test_describe;
    Gen.case "validation" test_validation;
    Gen.case "concat shares named arrays" test_concat_shares_named_arrays;
    Gen.case "concat shape mismatch" test_concat_shape_mismatch;
  ]
