let check_int = Alcotest.(check int)
let mesh = Gen.mesh44
let msg = Pim.Router.message

let test_empty_rounds () =
  let report = Pim.Simulator.run mesh [] in
  check_int "total" 0 report.Pim.Simulator.total_cost;
  check_int "rounds" 0 (List.length report.Pim.Simulator.rounds)

let test_single_round_split () =
  let round =
    {
      Pim.Simulator.migrations = [ msg ~src:0 ~dst:1 ~volume:2 ];
      references = [ msg ~src:1 ~dst:3 ~volume:1 ];
    }
  in
  let report = Pim.Simulator.run mesh [ round ] in
  check_int "migration" 2 report.Pim.Simulator.total_migration;
  check_int "reference" 2 report.Pim.Simulator.total_reference;
  check_int "total" 4 report.Pim.Simulator.total_cost

let test_per_round_reports () =
  let r1 =
    { Pim.Simulator.migrations = []; references = [ msg ~src:0 ~dst:3 ~volume:1 ] }
  in
  let r2 =
    {
      Pim.Simulator.migrations = [ msg ~src:3 ~dst:0 ~volume:1 ];
      references = [];
    }
  in
  let report = Pim.Simulator.run mesh [ r1; r2 ] in
  match report.Pim.Simulator.rounds with
  | [ a; b ] ->
      check_int "round 0 idx" 0 a.Pim.Simulator.round;
      check_int "round 0 ref" 3 a.Pim.Simulator.reference_cost;
      check_int "round 1 migration" 3 b.Pim.Simulator.migration_cost;
      check_int "round 0 messages" 1 a.Pim.Simulator.messages
  | _ -> Alcotest.fail "expected two round reports"

let test_latency_bound_distance_dominates () =
  (* One long message: latency bound = its hop distance. *)
  let round =
    { Pim.Simulator.migrations = []; references = [ msg ~src:0 ~dst:15 ~volume:1 ] }
  in
  let report = Pim.Simulator.run mesh [ round ] in
  match report.Pim.Simulator.rounds with
  | [ r ] -> check_int "latency" 6 r.Pim.Simulator.latency_bound
  | _ -> Alcotest.fail "one round expected"

let test_latency_bound_congestion_dominates () =
  (* Many unit messages over the same link: bound = link load. *)
  let references = List.init 5 (fun _ -> msg ~src:0 ~dst:1 ~volume:1) in
  let round = { Pim.Simulator.migrations = []; references } in
  let report = Pim.Simulator.run mesh [ round ] in
  match report.Pim.Simulator.rounds with
  | [ r ] -> check_int "latency" 5 r.Pim.Simulator.latency_bound
  | _ -> Alcotest.fail "one round expected"

let test_local_messages_free () =
  let round =
    {
      Pim.Simulator.migrations = [ msg ~src:2 ~dst:2 ~volume:9 ];
      references = [ msg ~src:4 ~dst:4 ~volume:9 ];
    }
  in
  let report = Pim.Simulator.run mesh [ round ] in
  check_int "total" 0 report.Pim.Simulator.total_cost;
  match report.Pim.Simulator.rounds with
  | [ r ] -> check_int "no live messages" 0 r.Pim.Simulator.messages
  | _ -> Alcotest.fail "one round expected"

let test_cumulative_links () =
  let rounds =
    List.init 3 (fun _ ->
        { Pim.Simulator.migrations = []; references = [ msg ~src:0 ~dst:1 ~volume:1 ] })
  in
  let report = Pim.Simulator.run mesh rounds in
  check_int "cumulative" 3
    (Pim.Link_stats.total report.Pim.Simulator.link_stats)

let suite =
  [
    Gen.case "empty rounds" test_empty_rounds;
    Gen.case "single round split" test_single_round_split;
    Gen.case "per-round reports" test_per_round_reports;
    Gen.case "latency: distance dominates" test_latency_bound_distance_dominates;
    Gen.case "latency: congestion dominates"
      test_latency_bound_congestion_dominates;
    Gen.case "local messages free" test_local_messages_free;
    Gen.case "cumulative link stats" test_cumulative_links;
  ]
