let check_int = Alcotest.(check int)
let mesh = Gen.mesh44

let test_record_and_read () =
  let s = Pim.Link_stats.create mesh in
  Pim.Link_stats.record s ~src:0 ~dst:1 ~volume:5;
  Pim.Link_stats.record s ~src:0 ~dst:1 ~volume:2;
  check_int "accumulated" 7 (Pim.Link_stats.traffic s ~src:0 ~dst:1);
  check_int "other direction untouched" 0
    (Pim.Link_stats.traffic s ~src:1 ~dst:0);
  check_int "total" 7 (Pim.Link_stats.total s)

let test_non_adjacent_rejected () =
  let s = Pim.Link_stats.create mesh in
  Alcotest.check_raises "diagonal"
    (Invalid_argument "Link_stats.record: 0 -> 5 is not a mesh link")
    (fun () -> Pim.Link_stats.record s ~src:0 ~dst:5 ~volume:1)

let test_max_link () =
  let s = Pim.Link_stats.create mesh in
  Alcotest.(check (option (triple int int int)))
    "empty" None (Pim.Link_stats.max_link s);
  Pim.Link_stats.record s ~src:0 ~dst:1 ~volume:3;
  Pim.Link_stats.record s ~src:1 ~dst:2 ~volume:9;
  Alcotest.(check (option (triple int int int)))
    "heaviest" (Some (1, 2, 9)) (Pim.Link_stats.max_link s)

let test_nonzero_links_sorted () =
  let s = Pim.Link_stats.create mesh in
  Pim.Link_stats.record s ~src:0 ~dst:1 ~volume:1;
  Pim.Link_stats.record s ~src:1 ~dst:2 ~volume:5;
  Pim.Link_stats.record s ~src:2 ~dst:3 ~volume:3;
  let loads = List.map (fun (_, _, v) -> v) (Pim.Link_stats.nonzero_links s) in
  Alcotest.(check (list int)) "descending" [ 5; 3; 1 ] loads

let test_imbalance () =
  let s = Pim.Link_stats.create mesh in
  Alcotest.(check (float 1e-9)) "no traffic" 0. (Pim.Link_stats.imbalance s);
  Pim.Link_stats.record s ~src:0 ~dst:1 ~volume:4;
  Alcotest.(check (float 1e-9)) "single link" 1. (Pim.Link_stats.imbalance s);
  Pim.Link_stats.record s ~src:1 ~dst:2 ~volume:2;
  (* max 4, mean 3 *)
  Alcotest.(check (float 1e-9)) "two links" (4. /. 3.)
    (Pim.Link_stats.imbalance s)

let test_reset () =
  let s = Pim.Link_stats.create mesh in
  Pim.Link_stats.record s ~src:0 ~dst:1 ~volume:4;
  Pim.Link_stats.reset s;
  check_int "total cleared" 0 (Pim.Link_stats.total s);
  check_int "link cleared" 0 (Pim.Link_stats.traffic s ~src:0 ~dst:1)

let suite =
  [
    Gen.case "record and read" test_record_and_read;
    Gen.case "non-adjacent rejected" test_non_adjacent_rejected;
    Gen.case "max link" test_max_link;
    Gen.case "nonzero links sorted" test_nonzero_links_sorted;
    Gen.case "imbalance" test_imbalance;
    Gen.case "reset" test_reset;
  ]
