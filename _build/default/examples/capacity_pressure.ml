(* Capacity pressure: the processor-list fallback in action.

     dune exec examples/capacity_pressure.exe

   The paper assumes each processor holds a bounded number of data; when a
   datum's optimal center is full, it goes to the first free processor in
   its cost-sorted processor list. We squeeze the CODE kernel through
   shrinking memories and watch cost rise gracefully instead of failing. *)

let mesh = Pim.Mesh.square 4

let () =
  let n = 16 in
  let trace = Workloads.Code_kernel.trace ~n mesh in
  let data_count = Reftrace.Data_space.size (Reftrace.Trace.space trace) in
  let minimum = (data_count + Pim.Mesh.size mesh - 1) / Pim.Mesh.size mesh in
  Printf.printf
    "CODE kernel, %d data on 16 processors: minimum capacity %d each\n\n"
    data_count minimum;
  Printf.printf "%9s %9s | %8s %8s %8s | %s\n" "capacity" "slack" "SCDS"
    "LOMCDS" "GOMCDS" "max load (GOMCDS)";
  (* one base context; [with_policy] swaps the capacity while sharing the
     cached cost vectors across all three pressure levels *)
  let base = Sched.Problem.create mesh trace in
  List.iter
    (fun capacity ->
      let problem =
        Sched.Problem.with_policy base (Sched.Problem.Bounded capacity)
      in
      let run a = Sched.Scheduler.solve problem a in
      let total a = Sched.Schedule.total_cost (run a) trace in
      let g = run Sched.Scheduler.Gomcds in
      (* the tightest any window/processor actually gets *)
      let max_load = ref 0 in
      for w = 0 to Sched.Schedule.n_windows g - 1 do
        let load = Array.make (Pim.Mesh.size mesh) 0 in
        for d = 0 to Sched.Schedule.n_data g - 1 do
          let r = Sched.Schedule.center g ~window:w ~data:d in
          load.(r) <- load.(r) + 1
        done;
        Array.iter (fun l -> max_load := max !max_load l) load
      done;
      assert (Option.is_none (Sched.Schedule.check_capacity g ~capacity));
      Printf.printf "%9d %8dx | %8d %8d %8d | %d\n" capacity
        (capacity / minimum)
        (total Sched.Scheduler.Scds)
        (total Sched.Scheduler.Lomcds)
        (total Sched.Scheduler.Gomcds)
        !max_load)
    [ minimum; 2 * minimum; 4 * minimum ];
  let unconstrained =
    Sched.Schedule.total_cost
      (Sched.Scheduler.solve base Sched.Scheduler.Gomcds)
      trace
  in
  Printf.printf "%9s %9s | %8s %8s %8d |\n" "inf" "-" "-" "-" unconstrained;
  print_endline
    "\nAt exactly the minimum capacity every processor is packed solid and\n\
     data are pushed off their centers; at the paper's 2x rule the cost is\n\
     already close to the unconstrained optimum."
