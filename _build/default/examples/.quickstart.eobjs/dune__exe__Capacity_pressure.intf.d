examples/capacity_pressure.mli:
