examples/lu_scheduling.mli:
