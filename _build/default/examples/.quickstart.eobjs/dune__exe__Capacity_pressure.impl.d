examples/capacity_pressure.ml: Array List Option Pim Printf Reftrace Sched Workloads
