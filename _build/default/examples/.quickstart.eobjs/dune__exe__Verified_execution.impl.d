examples/verified_execution.ml: Exec Filename Pim Printf Sched Sys Workloads
