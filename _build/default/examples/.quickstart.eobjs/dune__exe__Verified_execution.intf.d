examples/verified_execution.mli:
