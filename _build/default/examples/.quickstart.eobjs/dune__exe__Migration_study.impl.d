examples/migration_study.ml: Format List Pim Printf Reftrace Sched
