examples/quickstart.mli:
