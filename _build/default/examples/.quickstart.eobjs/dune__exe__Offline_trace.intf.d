examples/offline_trace.mli:
