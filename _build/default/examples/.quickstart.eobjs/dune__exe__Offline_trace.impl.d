examples/offline_trace.ml: Filename List Pim Printf Reftrace Sched Sys Workloads
