examples/lu_scheduling.ml: Array Format List Pim Printf Reftrace Sched Workloads
