examples/migration_study.mli:
