examples/quickstart.ml: Array Format List Pim Printf Reftrace Sched
