examples/replication_study.ml: List Pim Printf Reftrace Sched String Workloads
