let header = "# pim-sched trace v1"

let to_string t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf header;
  Buffer.add_char buf '\n';
  let space = Trace.space t in
  List.iter
    (fun (d : Data_space.array_desc) ->
      Buffer.add_string buf
        (if d.volume = 1 then
           Printf.sprintf "array %s %d %d\n" d.name d.rows d.cols
         else
           Printf.sprintf "array %s %d %d %d\n" d.name d.rows d.cols
             d.volume))
    (Data_space.arrays space);
  List.iteri
    (fun i w ->
      Buffer.add_string buf (Printf.sprintf "window %d\n" i);
      List.iter
        (fun data ->
          List.iter
            (fun (proc, count) ->
              Buffer.add_string buf
                (Printf.sprintf "ref %d %d %d\n" data proc count))
            (Window.read_profile w data);
          List.iter
            (fun (proc, count) ->
              Buffer.add_string buf
                (Printf.sprintf "write %d %d %d\n" data proc count))
            (Window.write_profile w data))
        (Window.referenced_data w))
    (Trace.windows t);
  Buffer.contents buf

type parse_state = {
  mutable arrays : Data_space.array_desc list; (* reversed *)
  mutable space : Data_space.t option;
  mutable windows : Window.t list; (* reversed *)
  mutable current : Window.t option;
}

let fail lineno msg =
  failwith (Printf.sprintf "Serial.of_string: line %d: %s" lineno msg)

let finish_window st =
  match st.current with
  | Some w ->
      st.windows <- w :: st.windows;
      st.current <- None
  | None -> ()

let ensure_space st lineno =
  match st.space with
  | Some s -> s
  | None -> (
      match List.rev st.arrays with
      | [] -> fail lineno "no array declared before windows"
      | first :: rest ->
          let s = Data_space.create first rest in
          st.space <- Some s;
          s)

let parse_line st lineno line =
  match String.split_on_char ' ' (String.trim line) with
  | [ "" ] -> ()
  | word :: _ when String.length word > 0 && word.[0] = '#' -> ()
  | "array" :: name :: rows :: cols :: rest -> (
      if st.space <> None then
        fail lineno "array declarations must precede windows";
      let volume =
        match rest with
        | [] -> Some 1
        | [ v ] -> int_of_string_opt v
        | _ -> None
      in
      match (int_of_string_opt rows, int_of_string_opt cols, volume) with
      | Some rows, Some cols, Some volume when volume > 0 ->
          st.arrays <-
            Data_space.array_desc ~volume name ~rows ~cols :: st.arrays
      | _ -> fail lineno "malformed array dimensions")
  | [ "window"; idx ] -> (
      let space = ensure_space st lineno in
      match int_of_string_opt idx with
      | Some i ->
          finish_window st;
          if i <> List.length st.windows then
            fail lineno
              (Printf.sprintf "expected window %d, got %d"
                 (List.length st.windows) i);
          st.current <- Some (Window.create ~n_data:(Data_space.size space))
      | None -> fail lineno "malformed window index")
  | [ ("ref" | "write") as word; data; proc; count ] -> (
      let kind = if word = "ref" then Window.Read else Window.Write in
      match
        ( st.current,
          int_of_string_opt data,
          int_of_string_opt proc,
          int_of_string_opt count )
      with
      | None, _, _, _ -> fail lineno "ref before any window"
      | Some w, Some data, Some proc, Some count -> (
          try Window.add w ~kind ~data ~proc ~count
          with Invalid_argument msg -> fail lineno msg)
      | Some _, _, _, _ -> fail lineno "malformed ref line")
  | _ -> fail lineno (Printf.sprintf "unrecognized line %S" line)

let of_string s =
  let st = { arrays = []; space = None; windows = []; current = None } in
  List.iteri
    (fun i line -> parse_line st (i + 1) line)
    (String.split_on_char '\n' s);
  finish_window st;
  match (st.space, List.rev st.windows) with
  | None, _ -> failwith "Serial.of_string: empty input"
  | Some _, [] -> failwith "Serial.of_string: no windows"
  | Some space, windows -> Trace.create space windows

let save t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string t))

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      of_string (really_input_string ic n))
