(** Workload characterization metrics.

    These quantify {e why} a reference trace does or does not benefit from
    multi-center scheduling, and are reported alongside the benches:

    - {e drift}: how far each datum's reference centroid moves between
      consecutive windows that use it — the hot-spot motion that gives
      LOMCDS/GOMCDS their edge (0 for a stationary pattern);
    - {e entropy}: how spread out a window's references are over the
      processor array (0 = one processor, [log2 P] = uniform) — high
      entropy limits what any single placement can do;
    - {e sharing degree}: mean number of distinct processors touching a
      referenced datum within a window — high sharing is where replication
      pays;
    - {e reuse}: fraction of per-window datum uses that also used the datum
      in an earlier window — low reuse means placement decisions have
      nothing to amortize against. *)

type profile = {
  drift : float;  (** mean centroid displacement, reference-weighted *)
  entropy : float;  (** mean per-window processor entropy, in bits *)
  sharing_degree : float;
  reuse : float;  (** in [0, 1] *)
  windows : int;
  references : int;
}

(** [centroid mesh window ~data] is the reference-count-weighted mean
    coordinate of the datum's readers; [None] when unreferenced. *)
val centroid : Pim.Mesh.t -> Window.t -> data:int -> (float * float) option

(** [window_entropy mesh window] is the Shannon entropy (bits) of the
    window's reference distribution over processors; [0.] for an empty
    window. *)
val window_entropy : Pim.Mesh.t -> Window.t -> float

(** [profile mesh trace] computes every metric in one pass. *)
val profile : Pim.Mesh.t -> Trace.t -> profile

val pp_profile : Format.formatter -> profile -> unit
