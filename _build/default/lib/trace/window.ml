type kind = Read | Write

type t = {
  n_data : int;
  (* per datum, per kind: processor rank -> reference count *)
  reads : (int, int) Hashtbl.t array;
  writes_ : (int, int) Hashtbl.t array;
}

let create ~n_data =
  if n_data <= 0 then invalid_arg "Window.create: n_data must be positive";
  {
    n_data;
    reads = Array.init n_data (fun _ -> Hashtbl.create 4);
    writes_ = Array.init n_data (fun _ -> Hashtbl.create 1);
  }

let n_data t = t.n_data

let check_data t data =
  if data < 0 || data >= t.n_data then
    invalid_arg (Printf.sprintf "Window: data id %d out of range" data)

let table t kind data =
  match kind with Read -> t.reads.(data) | Write -> t.writes_.(data)

let add ?(kind = Read) t ~data ~proc ~count =
  check_data t data;
  if proc < 0 then invalid_arg "Window.add: negative processor rank";
  if count < 0 then invalid_arg "Window.add: negative count";
  if count > 0 then begin
    let tbl = table t kind data in
    match Hashtbl.find_opt tbl proc with
    | Some c -> Hashtbl.replace tbl proc (c + count)
    | None -> Hashtbl.add tbl proc count
  end

let profile_of_table tbl =
  Hashtbl.fold
    (fun proc count acc -> if count > 0 then (proc, count) :: acc else acc)
    tbl []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let read_profile t data =
  check_data t data;
  profile_of_table t.reads.(data)

let write_profile t data =
  check_data t data;
  profile_of_table t.writes_.(data)

let profile t data =
  check_data t data;
  let combined = Hashtbl.copy t.reads.(data) in
  Hashtbl.iter
    (fun proc count ->
      match Hashtbl.find_opt combined proc with
      | Some c -> Hashtbl.replace combined proc (c + count)
      | None -> Hashtbl.add combined proc count)
    t.writes_.(data);
  profile_of_table combined

let count_table tbl = Hashtbl.fold (fun _ c acc -> acc + c) tbl 0

let references t data =
  check_data t data;
  count_table t.reads.(data) + count_table t.writes_.(data)

let writes t data =
  check_data t data;
  count_table t.writes_.(data)

let total_references t =
  let acc = ref 0 in
  Array.iter (fun tbl -> acc := !acc + count_table tbl) t.reads;
  Array.iter (fun tbl -> acc := !acc + count_table tbl) t.writes_;
  !acc

let referenced_data t =
  let acc = ref [] in
  for data = t.n_data - 1 downto 0 do
    if references t data > 0 then acc := data :: !acc
  done;
  !acc

let is_empty t = referenced_data t = []

let pour ~into src =
  Array.iteri
    (fun data tbl ->
      Hashtbl.iter
        (fun proc count -> add into ~kind:Read ~data ~proc ~count)
        tbl)
    src.reads;
  Array.iteri
    (fun data tbl ->
      Hashtbl.iter
        (fun proc count -> add into ~kind:Write ~data ~proc ~count)
        tbl)
    src.writes_

let merge a b =
  if a.n_data <> b.n_data then
    invalid_arg "Window.merge: mismatched data spaces";
  let m = create ~n_data:a.n_data in
  pour ~into:m a;
  pour ~into:m b;
  m

let copy t =
  let c = create ~n_data:t.n_data in
  pour ~into:c t;
  c

let merge_list = function
  | [] -> invalid_arg "Window.merge_list: empty list"
  | w :: ws -> List.fold_left merge (copy w) ws

let equal a b =
  a.n_data = b.n_data
  && begin
       let ok = ref true in
       for data = 0 to a.n_data - 1 do
         if
           read_profile a data <> read_profile b data
           || write_profile a data <> write_profile b data
         then ok := false
       done;
       !ok
     end

let max_proc t =
  let mx = ref (-1) in
  let scan tbl =
    Hashtbl.iter (fun proc count -> if count > 0 then mx := max !mx proc) tbl
  in
  Array.iter scan t.reads;
  Array.iter scan t.writes_;
  !mx

let pp fmt t =
  let data = referenced_data t in
  Format.fprintf fmt "@[<v>window (%d data referenced, %d refs total)"
    (List.length data) (total_references t);
  List.iter
    (fun d ->
      Format.fprintf fmt "@ data %d:" d;
      List.iter
        (fun (p, c) -> Format.fprintf fmt " p%d x%d" p c)
        (profile t d);
      match write_profile t d with
      | [] -> ()
      | ws ->
          Format.fprintf fmt " (writes:";
          List.iter (fun (p, c) -> Format.fprintf fmt " p%d x%d" p c) ws;
          Format.fprintf fmt ")")
    data;
  Format.fprintf fmt "@]"
