(** The set of data elements an application schedules.

    A data space is an ordered collection of named 2-D arrays (e.g. the
    matrix [A] of an LU factorization, or [A] and [C] of a matrix product).
    Every element gets a dense integer id; schedulers treat ids opaquely, and
    this module maps ids back to [(array, row, col)] for reporting and for
    the row-wise/column-wise straight-forward distributions. *)

type array_desc = {
  name : string;
  rows : int;
  cols : int;
  volume : int;
      (** size of one element in abstract volume units; the paper's cost
          model weights every hop by "the data volume transferred", and
          memories hold a bounded number of volume units. Use
          {!array_desc} (the smart constructor) for the common
          [volume = 1]. *)
}

(** [array_desc ?volume name ~rows ~cols] builds a descriptor;
    [volume] defaults to [1]. @raise Invalid_argument if [volume <= 0]. *)
val array_desc : ?volume:int -> string -> rows:int -> cols:int -> array_desc

type t

(** [create arrays] lays the arrays out with contiguous ids, in list order.
    @raise Invalid_argument on empty list, duplicate names, or non-positive
    dimensions. *)
val create : array_desc -> array_desc list -> t

(** [matrix ?volume name n] is the common case of a single [n] × [n]
    array of unit-volume elements. *)
val matrix : ?volume:int -> string -> int -> t

(** [size t] is the total number of data elements. *)
val size : t -> int

val arrays : t -> array_desc list

(** [id t ~array_name ~row ~col] is the dense id of that element.
    @raise Invalid_argument if the name is unknown or indices are out of
    bounds. *)
val id : t -> array_name:string -> row:int -> col:int -> int

(** [locate t id] is [(desc, row, col)] for a dense id.
    @raise Invalid_argument if [id] is out of range. *)
val locate : t -> int -> array_desc * int * int

(** [describe t id] renders e.g. ["A(3,1)"]. *)
val describe : t -> int -> string

(** [ids t] is [[0; ...; size t - 1]]. *)
val ids : t -> int list

(** [volume_of t id] is the element volume of a datum.
    @raise Invalid_argument if [id] is out of range. *)
val volume_of : t -> int -> int

(** [total_volume t] is Σ element volumes over the whole space. *)
val total_volume : t -> int

(** [concat a b] merges two spaces; arrays sharing a name must have equal
    shapes and are identified (the combined benchmarks of the paper reuse
    the same matrix across phases). Ids of [a] are preserved; genuinely new
    arrays of [b] are appended. Also returns the id-translation function for
    ids of [b]. *)
val concat : t -> t -> t * (int -> int)

val pp : Format.formatter -> t -> unit
