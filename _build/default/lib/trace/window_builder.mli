(** Cutting a flat reference stream into execution windows.

    The paper leaves window formation to the compiler ("a sequence of
    parallel execution steps are grouped into an execution window"); these
    builders implement the natural policies: one window per step, a fixed
    number of steps per window, or an arbitrary step→window map. The
    window-size ablation (A1 in DESIGN.md) sweeps [steps_per_window]. *)

(** [per_step space events] makes one window per distinct [step] value, in
    ascending step order. @raise Invalid_argument on an empty event list. *)
val per_step : Data_space.t -> Trace.event list -> Trace.t

(** [fixed ~steps_per_window space events] groups [steps_per_window]
    consecutive distinct steps into each window.
    @raise Invalid_argument if [steps_per_window <= 0] or no events. *)
val fixed : steps_per_window:int -> Data_space.t -> Trace.event list -> Trace.t

(** [by ~window_of_step space events] assigns step [s] to window
    [window_of_step s]; window indices must be dense non-negative once
    computed (gaps become empty windows and are dropped).
    @raise Invalid_argument if any computed index is negative or no events. *)
val by :
  window_of_step:(int -> int) -> Data_space.t -> Trace.event list -> Trace.t

(** [adaptive ?threshold space events] detects phase changes instead of
    cutting at a fixed stride: steps are appended to the current window
    while their processor-activity histogram stays within total-variation
    distance [threshold] (in [0, 1], default [0.25]) of the window's
    running average, and a new window starts when the pattern shifts. A
    uniform workload (e.g. a stencil) collapses to one window; a
    phase-shifting workload is cut at its phase boundaries.
    @raise Invalid_argument if [threshold] is outside [0, 1] or no
    events. *)
val adaptive :
  ?threshold:float -> Data_space.t -> Trace.event list -> Trace.t

(** [events_of_trace t] flattens a trace back to events (one event per
    reference count unit, step = window index); [per_step] on the result
    rebuilds an equal trace, a round-trip the tests check. *)
val events_of_trace : Trace.t -> Trace.event list
