(** Textual serialization of traces.

    A small line-oriented format so traces can be saved, shipped and
    re-loaded (e.g. recorded from an instrumented application and scheduled
    offline by the CLI). The format is human-editable:

    {v
    # pim-sched trace v1
    array A 8 8
    array C 8 8
    window 0
    ref <data-id> <proc-rank> <count>
    ref ...
    window 1
    ...
    v}

    Blank lines and [#] comments are ignored. Arrays must precede windows;
    window headers must carry consecutive indices starting at 0; [ref]
    lines attach to the most recent window. *)

(** [to_string t] renders the trace. [of_string (to_string t)] rebuilds an
    equal trace. *)
val to_string : Trace.t -> string

(** [of_string s] parses a trace.
    @raise Failure with a line-numbered message on malformed input. *)
val of_string : string -> Trace.t

(** [save t path] / [load path] — file convenience wrappers.
    @raise Sys_error on I/O failure, [Failure] on parse errors. *)
val save : Trace.t -> string -> unit

val load : string -> Trace.t
