(** Application traces: a data space plus a sequence of execution windows.

    A trace is what the data schedulers consume. It can be produced directly
    by a workload generator ({!Workloads}), or from a flat stream of
    reference {!event}s via {!Window_builder}. *)

type event = {
  step : int;  (** logical execution step the reference occurs at *)
  proc : int;  (** processor rank issuing the reference *)
  data : int;  (** dense data id (see {!Data_space}) *)
  kind : Window.kind;  (** read or write; the cost model treats both alike *)
}

(** [event ?kind ~step ~proc ~data ()] builds an event; [kind] defaults to
    [Read]. *)
val event : ?kind:Window.kind -> step:int -> proc:int -> data:int -> unit -> event

type t

(** [create space windows] packages windows in execution order.
    @raise Invalid_argument if any window's [n_data] differs from
    [Data_space.size space], or if the list is empty. *)
val create : Data_space.t -> Window.t list -> t

val space : t -> Data_space.t
val n_windows : t -> int

(** [window t i] is the [i]-th window. @raise Invalid_argument when out of
    range. *)
val window : t -> int -> Window.t

val windows : t -> Window.t list

(** [total_references t] sums reference counts over all windows. *)
val total_references : t -> int

(** [merged t] is the single window containing every reference of the trace
    — what SCDS schedules against. *)
val merged : t -> Window.t

(** [validate t mesh] checks that every referenced processor rank exists on
    [mesh]. @raise Invalid_argument otherwise. *)
val validate : t -> Pim.Mesh.t -> unit

(** [append a b] runs [b] after [a]: data spaces are merged per
    {!Data_space.concat} (shared array names are identified) and [b]'s
    windows are remapped onto the merged ids. Used for the paper's combined
    benchmarks 3–5. *)
val append : t -> t -> t

(** [reversed t] executes the windows in reverse order (paper benchmark 5
    runs CODE followed by CODE "in the reverse execution order"). *)
val reversed : t -> t

(** [drop_empty_windows t] removes windows with no references, keeping at
    least one window. *)
val drop_empty_windows : t -> t

val pp : Format.formatter -> t -> unit
