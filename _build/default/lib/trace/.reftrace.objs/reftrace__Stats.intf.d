lib/trace/stats.mli: Format Pim Trace Window
