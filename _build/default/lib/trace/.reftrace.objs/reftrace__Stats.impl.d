lib/trace/stats.ml: Array Data_space Float Format List Option Pim Trace Window
