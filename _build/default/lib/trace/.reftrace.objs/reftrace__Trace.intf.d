lib/trace/trace.mli: Data_space Format Pim Window
