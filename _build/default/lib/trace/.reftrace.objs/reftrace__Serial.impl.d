lib/trace/serial.ml: Buffer Data_space Fun List Printf String Trace Window
