lib/trace/data_space.mli: Format
