lib/trace/serial.mli: Trace
