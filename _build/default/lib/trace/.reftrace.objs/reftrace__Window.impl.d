lib/trace/window.ml: Array Format Hashtbl Int List Printf
