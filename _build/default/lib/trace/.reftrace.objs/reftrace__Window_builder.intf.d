lib/trace/window_builder.mli: Data_space Trace
