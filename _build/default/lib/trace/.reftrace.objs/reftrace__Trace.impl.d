lib/trace/trace.ml: Array Data_space Format Fun List Pim Printf Window
