lib/trace/window.mli: Format
