lib/trace/window_builder.ml: Array Data_space Hashtbl Int List Trace Window
