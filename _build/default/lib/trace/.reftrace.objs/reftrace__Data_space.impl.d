lib/trace/data_space.ml: Format Fun List Printf String
