type array_desc = { name : string; rows : int; cols : int; volume : int }

let array_desc ?(volume = 1) name ~rows ~cols =
  if volume <= 0 then
    invalid_arg
      (Printf.sprintf "Data_space.array_desc: volume must be positive (%d)"
         volume);
  { name; rows; cols; volume }

type t = {
  descs : array_desc list;
  offsets : (string * int) list; (* array name -> first id *)
  size : int;
}

let elements d = d.rows * d.cols

let validate d =
  if d.rows <= 0 || d.cols <= 0 then
    invalid_arg
      (Printf.sprintf "Data_space: array %s has non-positive shape %dx%d"
         d.name d.rows d.cols);
  if d.volume <= 0 then
    invalid_arg
      (Printf.sprintf "Data_space: array %s has non-positive volume %d"
         d.name d.volume)

let create first rest =
  let descs = first :: rest in
  List.iter validate descs;
  let names = List.map (fun d -> d.name) descs in
  let distinct = List.sort_uniq String.compare names in
  if List.length distinct <> List.length names then
    invalid_arg "Data_space.create: duplicate array names";
  let _, offsets =
    List.fold_left
      (fun (off, acc) d -> (off + elements d, (d.name, off) :: acc))
      (0, []) descs
  in
  {
    descs;
    offsets = List.rev offsets;
    size = List.fold_left (fun acc d -> acc + elements d) 0 descs;
  }

let matrix ?volume name n = create (array_desc ?volume name ~rows:n ~cols:n) []
let size t = t.size
let arrays t = t.descs

let find_desc t name =
  match List.find_opt (fun d -> d.name = name) t.descs with
  | Some d -> d
  | None -> invalid_arg (Printf.sprintf "Data_space: unknown array %s" name)

let id t ~array_name ~row ~col =
  let d = find_desc t array_name in
  if row < 0 || row >= d.rows || col < 0 || col >= d.cols then
    invalid_arg
      (Printf.sprintf "Data_space.id: %s(%d,%d) out of bounds" array_name row
         col);
  List.assoc array_name t.offsets + (row * d.cols) + col

let locate t i =
  if i < 0 || i >= t.size then
    invalid_arg (Printf.sprintf "Data_space.locate: id %d out of range" i);
  let rec go descs offsets =
    match (descs, offsets) with
    | d :: descs', (_, off) :: offsets' ->
        if i < off + elements d then
          let local = i - off in
          (d, local / d.cols, local mod d.cols)
        else go descs' offsets'
    | _ -> assert false
  in
  go t.descs t.offsets

let describe t i =
  let d, r, c = locate t i in
  Printf.sprintf "%s(%d,%d)" d.name r c

let ids t = List.init t.size Fun.id

let volume_of t i =
  let d, _, _ = locate t i in
  d.volume

let total_volume t =
  List.fold_left (fun acc d -> acc + (elements d * d.volume)) 0 t.descs

let concat a b =
  (* Arrays of [b] whose names occur in [a] must match shape and map onto the
     existing ids; new arrays are appended after [a]. *)
  let shared, fresh =
    List.partition (fun d -> List.mem_assoc d.name a.offsets) b.descs
  in
  List.iter
    (fun (d : array_desc) ->
      let da = find_desc a d.name in
      if da.rows <> d.rows || da.cols <> d.cols || da.volume <> d.volume
      then
        invalid_arg
          (Printf.sprintf
             "Data_space.concat: array %s has shape %dx%d vs %dx%d" d.name
             da.rows da.cols d.rows d.cols))
    shared;
  let merged =
    match a.descs @ fresh with
    | first :: rest -> create first rest
    | [] -> assert false
  in
  let translate i =
    let d, r, c = locate b i in
    id merged ~array_name:d.name ~row:r ~col:c
  in
  (merged, translate)

let pp fmt t =
  Format.fprintf fmt "@[<h>data space {%a} (%d elements)@]"
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
       (fun fmt d -> Format.fprintf fmt "%s:%dx%d" d.name d.rows d.cols))
    t.descs t.size
