(** X-y message routing over the mesh, with traffic accounting.

    [route] charges every hop of the dimension-ordered path to a
    {!Link_stats.t}, so the accumulated {!Link_stats.total} of a batch of
    messages equals the analytic Σ volume·distance cost the schedulers
    compute — the identity the simulator's integration tests rely on. *)

type message = {
  src : int;  (** rank holding the data *)
  dst : int;  (** rank that needs it (or receives the migrating datum) *)
  volume : int;  (** data volume in unit elements *)
}

(** [message ~src ~dst ~volume] builds a message.
    @raise Invalid_argument if [volume < 0]. *)
val message : src:int -> dst:int -> volume:int -> message

(** [cost mesh msg] is the analytic cost [volume * distance src dst]. *)
val cost : Mesh.t -> message -> int

(** [route mesh stats msg] walks the x-y path of [msg], recording [volume]
    units on every traversed link into [stats], and returns the hop·volume
    cost (equal to [cost mesh msg]). A self-message costs [0]. *)
val route : Mesh.t -> Link_stats.t -> message -> int

(** [route_all mesh stats msgs] routes a batch and returns the summed cost. *)
val route_all : Mesh.t -> Link_stats.t -> message list -> int

val pp_message : Format.formatter -> message -> unit
