type params = { per_hop : float; leak : float }

let default = { per_hop = 10.; leak = 0.05 }

let breakdown ?(params = default) mesh (report : Timed_simulator.report) =
  let transport =
    params.per_hop *. float_of_int report.Timed_simulator.total_volume_hops
  in
  let leakage =
    params.leak
    *. float_of_int (Mesh.size mesh)
    *. float_of_int report.Timed_simulator.total_cycles
  in
  (transport, leakage)

let of_report ?params mesh report =
  let transport, leakage = breakdown ?params mesh report in
  transport +. leakage
