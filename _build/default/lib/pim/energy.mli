(** Communication-energy model.

    The PetaFlop PIM argument was as much about energy as about time:
    moving a word across chips costs orders of magnitude more than a local
    access, and idle processors still leak. This module prices a timed
    traffic report with the standard two-term model

    [energy = per_hop · Σ volume·hops  +  leak · processors · cycles]

    so schedules can be compared on joules as well as hop counts. The
    parameters are abstract units; {!default} sets the transport term to
    dominate (hop ≫ leak), the PIM-era regime. *)

type params = {
  per_hop : float;  (** energy of one volume unit crossing one link *)
  leak : float;  (** static energy of one processor for one cycle *)
}

val default : params

(** [of_report ?params mesh report] prices a {!Timed_simulator} report:
    transport energy from its volume·hops, leakage from its total cycles
    and the mesh size. *)
val of_report : ?params:params -> Mesh.t -> Timed_simulator.report -> float

(** [breakdown ?params mesh report] is [(transport, leakage)];
    [of_report] is their sum. *)
val breakdown :
  ?params:params -> Mesh.t -> Timed_simulator.report -> float * float
