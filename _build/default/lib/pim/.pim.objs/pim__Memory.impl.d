lib/pim/memory.ml: Array Format Mesh Printf
