lib/pim/timed_simulator.ml: Array Format Hashtbl Int List Mesh Queue Router Simulator
