lib/pim/energy.ml: Mesh Timed_simulator
