lib/pim/simulator.ml: Format Link_stats List Mesh Router
