lib/pim/memory.mli: Format Mesh
