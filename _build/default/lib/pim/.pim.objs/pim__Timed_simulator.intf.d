lib/pim/timed_simulator.mli: Format Mesh Router Simulator
