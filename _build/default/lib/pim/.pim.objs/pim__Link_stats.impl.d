lib/pim/link_stats.ml: Format Hashtbl Int List Mesh Printf
