lib/pim/router.ml: Format Link_stats List Mesh
