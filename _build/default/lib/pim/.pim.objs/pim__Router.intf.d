lib/pim/router.mli: Format Link_stats Mesh
