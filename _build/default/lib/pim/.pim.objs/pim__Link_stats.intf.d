lib/pim/link_stats.mli: Format Mesh
