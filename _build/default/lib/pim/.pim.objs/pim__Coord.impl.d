lib/pim/coord.ml: Format Int Printf
