lib/pim/energy.mli: Mesh Timed_simulator
