lib/pim/mesh.ml: Array Coord Format Fun Int List Printf
