lib/pim/mesh.ml: Coord Format Fun Int List Printf
