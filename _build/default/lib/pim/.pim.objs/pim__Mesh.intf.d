lib/pim/mesh.mli: Coord Format
