lib/pim/simulator.mli: Format Link_stats Mesh Router
