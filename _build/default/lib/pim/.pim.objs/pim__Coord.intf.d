lib/pim/coord.mli: Format
