(** Two-dimensional processor coordinates on a PIM grid.

    The paper models the PIM array as a 2-D grid with x-y routing; the
    communication cost between two processors is their Manhattan distance
    weighted by the transferred data volume. Coordinates are [(x, y)] where
    [x] is the column and [y] the row, matching the paper's Figure 1 axes. *)

type t = { x : int; y : int }

(** [make ~x ~y] builds a coordinate. Negative components are allowed at this
    level (meshes enforce bounds); they are useful for vector arithmetic. *)
val make : x:int -> y:int -> t

val origin : t

(** [manhattan a b] is [|a.x - b.x| + |a.y - b.y|] — the x-y routing hop
    count between processors [a] and [b]. *)
val manhattan : t -> t -> int

(** [chebyshev a b] is [max |dx| |dy|]; exposed for alternative cost models
    in ablation studies. *)
val chebyshev : t -> t -> int

(** [add a b] is component-wise sum. *)
val add : t -> t -> t

(** [sub a b] is component-wise difference. *)
val sub : t -> t -> t

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

(** [to_string c] renders as ["(x,y)"]. *)
val to_string : t -> string

val pp : Format.formatter -> t -> unit

(** [on_segment ~src ~dst c] is [true] iff [c] lies on some shortest x-y
    path from [src] to [dst], i.e. inside the bounding rectangle. *)
val on_segment : src:t -> dst:t -> t -> bool
