type t = { x : int; y : int }

let make ~x ~y = { x; y }
let origin = { x = 0; y = 0 }
let manhattan a b = abs (a.x - b.x) + abs (a.y - b.y)
let chebyshev a b = max (abs (a.x - b.x)) (abs (a.y - b.y))
let add a b = { x = a.x + b.x; y = a.y + b.y }
let sub a b = { x = a.x - b.x; y = a.y - b.y }
let equal a b = a.x = b.x && a.y = b.y

let compare a b =
  let c = Int.compare a.x b.x in
  if c <> 0 then c else Int.compare a.y b.y

let hash { x; y } = (x * 0x9e3779b1) lxor y
let to_string { x; y } = Printf.sprintf "(%d,%d)" x y
let pp fmt { x; y } = Format.fprintf fmt "(%d,%d)" x y

let between lo hi v =
  let lo, hi = if lo <= hi then (lo, hi) else (hi, lo) in
  lo <= v && v <= hi

let on_segment ~src ~dst c = between src.x dst.x c.x && between src.y dst.y c.y
