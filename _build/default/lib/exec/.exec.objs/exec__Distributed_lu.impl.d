lib/exec/distributed_lu.ml: Array Float List Pim Reftrace Sched Workloads
