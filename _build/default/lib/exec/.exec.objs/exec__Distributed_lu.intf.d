lib/exec/distributed_lu.mli: Pim Sched
