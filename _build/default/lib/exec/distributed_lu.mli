(** Numerically executing LU factorization under a data schedule.

    The schedulers optimize traffic for a {e reference string}; this module
    closes the loop by actually computing with it: an [n] × [n] matrix is
    factored in place on the simulated PIM array, with every operand
    fetched from wherever the schedule says the datum lives during that
    elimination step, every fetch and migration recorded as real messages,
    and the final factors compared against a sequential reference
    factorization. If the trace generator, the schedule semantics, or the
    lowering to messages were wrong, the numbers would be too.

    Window [k] of {!Workloads.Lu.trace} is elimination step [k], and the
    executor mirrors it exactly: scaling [a(i,k) /= a(k,k)] then the
    trailing update [a(i,j) -= a(i,k) * a(k,j)], each operation performed
    "at" the owner of the iteration with operands fetched from their
    scheduled centers. *)

type result = {
  factors : float array array;  (** in-place LU factors, row-major *)
  traffic : int;  (** messages' hop·volume measured by the simulator *)
  analytic : int;  (** the schedule's analytic cost for the same trace *)
  max_error : float;
      (** max |distributed - sequential| over all matrix entries *)
}

(** [reference_lu a] factors a copy of [a] sequentially (no pivoting) and
    returns it; raises [Failure] on a zero pivot. *)
val reference_lu : float array array -> float array array

(** [random_matrix ~seed n] is a well-conditioned random [n] × [n] matrix
    (diagonally dominant, so pivoting-free LU is stable). *)
val random_matrix : seed:int -> int -> float array array

(** [run mesh ~matrix schedule] executes the factorization under
    [schedule], which must have been computed for [Workloads.Lu.trace] of
    the same size on the same mesh.
    @raise Invalid_argument if shapes disagree. *)
val run : Pim.Mesh.t -> matrix:float array array -> Sched.Schedule.t -> result
