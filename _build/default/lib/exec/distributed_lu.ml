let reference_lu a =
  let n = Array.length a in
  let m = Array.map Array.copy a in
  for k = 0 to n - 2 do
    if Float.abs m.(k).(k) < 1e-12 then
      failwith "Distributed_lu.reference_lu: zero pivot";
    for i = k + 1 to n - 1 do
      m.(i).(k) <- m.(i).(k) /. m.(k).(k)
    done;
    for i = k + 1 to n - 1 do
      for j = k + 1 to n - 1 do
        m.(i).(j) <- m.(i).(j) -. (m.(i).(k) *. m.(k).(j))
      done
    done
  done;
  m

let random_matrix ~seed n =
  let state = ref (if seed = 0 then 0xACE5 else seed) in
  let next () =
    let x = !state in
    let x = x lxor (x lsl 13) in
    let x = x lxor (x lsr 7) in
    let x = x lxor (x lsl 17) in
    state := x land max_int;
    float_of_int (!state mod 1000) /. 1000.
  in
  Array.init n (fun i ->
      Array.init n (fun j ->
          (* diagonal dominance keeps pivot-free LU stable *)
          if i = j then float_of_int n +. next () else next ()))

type result = {
  factors : float array array;
  traffic : int;
  analytic : int;
  max_error : float;
}

let run mesh ~matrix schedule =
  let n = Array.length matrix in
  if n < 2 || Array.exists (fun row -> Array.length row <> n) matrix then
    invalid_arg "Distributed_lu.run: matrix must be square, n >= 2";
  let trace = Workloads.Lu.trace ~n mesh in
  if
    Sched.Schedule.n_windows schedule <> Reftrace.Trace.n_windows trace
    || Sched.Schedule.n_data schedule
       <> Reftrace.Data_space.size (Reftrace.Trace.space trace)
  then
    invalid_arg
      "Distributed_lu.run: schedule does not match the LU trace shape";
  let space = Reftrace.Trace.space trace in
  let id row col = Reftrace.Data_space.id space ~array_name:"A" ~row ~col in
  let owner i j =
    Workloads.Iteration_space.owner Workloads.Iteration_space.Block_2d mesh
      ~extent_i:n ~extent_j:n ~i ~j
  in
  (* flat value store indexed by datum id; locations only matter for the
     message accounting *)
  let values = Array.make (n * n) 0. in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      values.(id i j) <- matrix.(i).(j)
    done
  done;
  let rounds = ref [] in
  let n_data = Sched.Schedule.n_data schedule in
  for k = 0 to n - 2 do
    let references = ref [] in
    (* fetching a datum into the iteration's owner is one unit message from
       its scheduled center, exactly as the trace counts it *)
    let touch proc data =
      let src = Sched.Schedule.center schedule ~window:k ~data in
      if src <> proc then
        references := Pim.Router.message ~src ~dst:proc ~volume:1 :: !references
    in
    let pivot = values.(id k k) in
    if Float.abs pivot < 1e-12 then
      failwith "Distributed_lu.run: zero pivot";
    for i = k + 1 to n - 1 do
      let p = owner i k in
      touch p (id i k);
      touch p (id k k);
      values.(id i k) <- values.(id i k) /. pivot
    done;
    for i = k + 1 to n - 1 do
      for j = k + 1 to n - 1 do
        let p = owner i j in
        touch p (id i j);
        touch p (id i k);
        touch p (id k j);
        values.(id i j) <-
          values.(id i j) -. (values.(id i k) *. values.(id k j))
      done
    done;
    let migrations =
      if k = 0 then []
      else begin
        let acc = ref [] in
        for data = 0 to n_data - 1 do
          let src = Sched.Schedule.center schedule ~window:(k - 1) ~data in
          let dst = Sched.Schedule.center schedule ~window:k ~data in
          if src <> dst then
            acc := Pim.Router.message ~src ~dst ~volume:1 :: !acc
        done;
        !acc
      end
    in
    rounds :=
      { Pim.Simulator.migrations; references = List.rev !references }
      :: !rounds
  done;
  let report = Pim.Simulator.run mesh (List.rev !rounds) in
  let factors =
    Array.init n (fun i -> Array.init n (fun j -> values.(id i j)))
  in
  let reference = reference_lu matrix in
  let max_error = ref 0. in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      max_error :=
        Float.max !max_error
          (Float.abs (factors.(i).(j) -. reference.(i).(j)))
    done
  done;
  {
    factors;
    traffic = report.Pim.Simulator.total_cost;
    analytic = Sched.Schedule.total_cost schedule trace;
    max_error = !max_error;
  }
