(** Matrix squaring reference-string generator (paper benchmark 2).

    [C = A · A] on [n] × [n] matrices. The [k] loop is outermost and forms
    the execution windows: during window [k], iteration [(i, j)] —
    owner-computes over the given partition — references [A(i,k)], [A(k,j)]
    and accumulates into [C(i,j)]. Row [k] and column [k] of [A] are the
    hot data of window [k] and sweep across the matrix as [k] advances. *)

(** [trace ?partition ~n mesh] generates the [n]-window trace over the data
    space [{A, C}]. @raise Invalid_argument if [n < 1]. *)
val trace :
  ?partition:Iteration_space.partition ->
  n:int ->
  Pim.Mesh.t ->
  Reftrace.Trace.t
