let xorshift state =
  let x = !state in
  let x = x lxor (x lsl 13) in
  let x = x lxor (x lsr 7) in
  let x = x lxor (x lsl 17) in
  state := x land max_int;
  !state

let trace ?(partition = Iteration_space.Block_2d) ?(seed = 0x5EED) ~n mesh =
  if n < 4 then invalid_arg "Code_kernel.trace: n must be at least 4";
  let space = Reftrace.Data_space.matrix "A" n in
  let id row col = Reftrace.Data_space.id space ~array_name:"A" ~row ~col in
  let owner i j =
    Iteration_space.owner partition mesh ~extent_i:n ~extent_j:n ~i ~j
  in
  let state = ref (if seed = 0 then 0x5EED else seed) in
  let events = ref [] in
  let emit ?kind step proc data =
    events := Reftrace.Trace.event ?kind ~step ~proc ~data () :: !events
  in
  let wr = Reftrace.Window.Write in
  let t_max = n / 2 in
  for t = 0 to t_max - 1 do
    let front = t * n / t_max in
    let band_hi = min (n - 1) (front + (n / t_max)) in
    (* sweeping front: band rows update themselves, read the front row of
       their column and the transposed element *)
    for i = front to band_hi do
      for j = 0 to n - 1 do
        let p = owner i j in
        emit ~kind:wr t p (id i j);
        emit t p (id front j);
        emit t p (id j i)
      done
    done;
    (* counter-sweeping column gather *)
    let col = (t_max - 1 - t) * n / t_max in
    for i = 0 to n - 1 do
      let p = owner i col in
      emit t p (id i col);
      emit t p (id col i)
    done;
    (* seeded jitter: n irregular references *)
    for _ = 1 to n do
      let i = xorshift state mod n and j = xorshift state mod n in
      let oi = xorshift state mod n and oj = xorshift state mod n in
      emit t (owner oi oj) (id i j)
    done
  done;
  Reftrace.Window_builder.per_step space (List.rev !events)
