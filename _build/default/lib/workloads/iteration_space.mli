(** Iteration partitioning: mapping loop iterations onto the PIM array.

    The paper prepares two stages before execution — the iteration partition
    and the data scheduling — and studies only the latter. We still need the
    former to generate processor reference strings: the processor that owns
    an iteration is the one that references the iteration's operands.
    Owner-computes block mapping over the 2-D iteration space is the
    default; alternatives are provided for sensitivity studies. *)

type partition =
  | Block_2d  (** tile the iteration rectangle over the processor grid *)
  | Row_blocks  (** contiguous row bands dealt over all processors *)
  | Col_blocks  (** contiguous column bands *)
  | Cyclic_2d  (** round-robin in both dimensions *)

val all : partition list
val name : partition -> string

(** [owner partition mesh ~extent_i ~extent_j ~i ~j] is the rank executing
    iteration [(i, j)] of an [extent_i] × [extent_j] iteration space.
    @raise Invalid_argument if the iteration is out of bounds. *)
val owner :
  partition ->
  Pim.Mesh.t ->
  extent_i:int ->
  extent_j:int ->
  i:int ->
  j:int ->
  int
