type partition = Block_2d | Row_blocks | Col_blocks | Cyclic_2d

let all = [ Block_2d; Row_blocks; Col_blocks; Cyclic_2d ]

let name = function
  | Block_2d -> "block-2d"
  | Row_blocks -> "row-blocks"
  | Col_blocks -> "col-blocks"
  | Cyclic_2d -> "cyclic-2d"

let owner partition mesh ~extent_i ~extent_j ~i ~j =
  if i < 0 || i >= extent_i || j < 0 || j >= extent_j then
    invalid_arg
      (Printf.sprintf "Iteration_space.owner: (%d,%d) outside %dx%d" i j
         extent_i extent_j);
  let rows = Pim.Mesh.rows mesh and cols = Pim.Mesh.cols mesh in
  let p = Pim.Mesh.size mesh in
  match partition with
  | Block_2d ->
      let gr = min (i * rows / extent_i) (rows - 1) in
      let gc = min (j * cols / extent_j) (cols - 1) in
      Pim.Mesh.rank_of_coord mesh (Pim.Coord.make ~x:gc ~y:gr)
  | Row_blocks ->
      let idx = (i * extent_j) + j in
      min (idx * p / (extent_i * extent_j)) (p - 1)
  | Col_blocks ->
      let idx = (j * extent_i) + i in
      min (idx * p / (extent_i * extent_j)) (p - 1)
  | Cyclic_2d ->
      let gr = i mod rows and gc = j mod cols in
      Pim.Mesh.rank_of_coord mesh (Pim.Coord.make ~x:gc ~y:gr)
