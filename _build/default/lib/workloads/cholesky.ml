let trace ?(partition = Iteration_space.Block_2d) ~n mesh =
  if n < 2 then invalid_arg "Cholesky.trace: n must be at least 2";
  let space = Reftrace.Data_space.matrix "A" n in
  let id row col = Reftrace.Data_space.id space ~array_name:"A" ~row ~col in
  let owner i j =
    Iteration_space.owner partition mesh ~extent_i:n ~extent_j:n ~i ~j
  in
  let events = ref [] in
  let emit ?kind step proc data =
    events := Reftrace.Trace.event ?kind ~step ~proc ~data () :: !events
  in
  let wr = Reftrace.Window.Write in
  for k = 0 to n - 2 do
    (* column scaling below the pivot: a(i,k) /= sqrt(a(k,k)) *)
    for i = k + 1 to n - 1 do
      let p = owner i k in
      emit ~kind:wr k p (id i k);
      emit k p (id k k)
    done;
    (* lower-triangular trailing update: a(i,j) -= a(i,k) * a(j,k) *)
    for i = k + 1 to n - 1 do
      for j = k + 1 to i do
        let p = owner i j in
        emit ~kind:wr k p (id i j);
        emit k p (id i k);
        emit k p (id j k)
      done
    done
  done;
  Reftrace.Window_builder.per_step space (List.rev !events)
