let trace ?(partition = Iteration_space.Block_2d) ~n mesh =
  if n < 1 then invalid_arg "Transitive_closure.trace: n must be at least 1";
  let space = Reftrace.Data_space.matrix "D" n in
  let id row col = Reftrace.Data_space.id space ~array_name:"D" ~row ~col in
  let owner i j =
    Iteration_space.owner partition mesh ~extent_i:n ~extent_j:n ~i ~j
  in
  let events = ref [] in
  let emit ?kind step proc data =
    events := Reftrace.Trace.event ?kind ~step ~proc ~data () :: !events
  in
  let wr = Reftrace.Window.Write in
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        let p = owner i j in
        emit ~kind:wr k p (id i j);
        emit k p (id i k);
        emit k p (id k j)
      done
    done
  done;
  Reftrace.Window_builder.per_step space (List.rev !events)
