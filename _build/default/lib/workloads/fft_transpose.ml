let is_power_of_two n = n > 0 && n land (n - 1) = 0

let log2 n =
  let rec go acc v = if v <= 1 then acc else go (acc + 1) (v / 2) in
  go 0 n

let trace ?(partition = Iteration_space.Block_2d) ~n mesh =
  if n < 2 || not (is_power_of_two n) then
    invalid_arg "Fft_transpose.trace: n must be a power of two >= 2";
  let space = Reftrace.Data_space.matrix "X" n in
  let id row col = Reftrace.Data_space.id space ~array_name:"X" ~row ~col in
  let owner i j =
    Iteration_space.owner partition mesh ~extent_i:n ~extent_j:n ~i ~j
  in
  let events = ref [] in
  let emit ?kind step proc data =
    events := Reftrace.Trace.event ?kind ~step ~proc ~data () :: !events
  in
  let wr = Reftrace.Window.Write in
  let stages = log2 n in
  let row_ffts step =
    (* each element of a row participates in [log n] butterflies, executed
       by the owner of its position *)
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        let p = owner i j in
        for _ = 1 to stages do
          emit ~kind:wr step p (id i j)
        done
      done
    done
  in
  row_ffts 0;
  (* transpose: the owner of (i, j) reads X(j, i) and writes X(i, j) *)
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let p = owner i j in
      emit 1 p (id j i);
      emit ~kind:wr 1 p (id i j)
    done
  done;
  row_ffts 2;
  Reftrace.Window_builder.per_step space (List.rev !events)
