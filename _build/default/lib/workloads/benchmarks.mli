(** The paper's five benchmarks (§5).

    1. LU factorization;
    2. matrix squaring (C = A·A);
    3. benchmark 2 followed by CODE;
    4. benchmark 1 followed by CODE;
    5. CODE followed by CODE in reverse execution order.

    Combined benchmarks share the matrix [A] across phases (the data keep
    their placements between phases, so inter-phase movement is where the
    multi-center schedulers earn their keep). *)

type t = B1 | B2 | B3 | B4 | B5

val all : t list

(** ["1"] .. ["5"], matching the paper's "B." column. *)
val label : t -> string

(** A one-line description for documentation and CLIs. *)
val description : t -> string

(** [of_label s] parses ["1"] .. ["5"].
    @raise Invalid_argument on anything else. *)
val of_label : string -> t

(** [trace ?partition t ~n mesh] builds the benchmark's trace for an
    [n] × [n] data size. @raise Invalid_argument for [n < 4]. *)
val trace :
  ?partition:Iteration_space.partition ->
  t ->
  n:int ->
  Pim.Mesh.t ->
  Reftrace.Trace.t

(** [capacity t ~n mesh] is the paper's memory rule for this benchmark
    instance: twice the minimum per-processor requirement
    ({!Pim.Memory.capacity_for} with headroom 2). *)
val capacity : t -> n:int -> Pim.Mesh.t -> int
