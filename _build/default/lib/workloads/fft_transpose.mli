(** Two-dimensional FFT by row–column decomposition.

    Another classic communication-bound kernel (beyond the paper's set):
    phase 1 runs 1-D FFTs along rows (each row's owner sweeps its row
    [log n] times), phase 2 is the transpose (iteration [(i, j)] reads
    [X(j, i)] and writes [X(i, j)] — the all-to-all that dominates
    distributed FFTs), phase 3 runs 1-D FFTs along rows again. Each phase is
    a separate execution window, so a good data schedule re-homes the matrix
    around the transpose. *)

(** [trace ?partition ~n mesh] generates the 3-window trace over the matrix
    [X]. [n] must be a power of two for the butterfly count to be honest.
    @raise Invalid_argument if [n < 2] or [n] is not a power of two. *)
val trace :
  ?partition:Iteration_space.partition ->
  n:int ->
  Pim.Mesh.t ->
  Reftrace.Trace.t
