let trace ?(partition = Iteration_space.Block_2d) ?diags_per_window ~n mesh =
  if n < 3 then invalid_arg "Wavefront.trace: n must be at least 3";
  let band =
    match diags_per_window with
    | Some d when d < 1 ->
        invalid_arg "Wavefront.trace: diags_per_window must be positive"
    | Some d -> d
    | None -> max 1 (n / 4)
  in
  let space = Reftrace.Data_space.matrix "U" n in
  let id row col = Reftrace.Data_space.id space ~array_name:"U" ~row ~col in
  let owner i j =
    Iteration_space.owner partition mesh ~extent_i:n ~extent_j:n ~i ~j
  in
  let events = ref [] in
  let emit ?kind step proc data =
    events := Reftrace.Trace.event ?kind ~step ~proc ~data () :: !events
  in
  let wr = Reftrace.Window.Write in
  (* anti-diagonal d holds cells with i + j = d; interior cells only *)
  for d = 2 to (2 * (n - 2)) do
    let step = (d - 2) / band in
    for i = max 1 (d - (n - 2)) to min (n - 2) (d - 1) do
      let j = d - i in
      if j >= 1 && j <= n - 2 then begin
        let p = owner i j in
        emit ~kind:wr step p (id i j);
        emit step p (id (i - 1) j);
        emit step p (id i (j - 1));
        emit step p (id (i + 1) j);
        emit step p (id i (j + 1))
      end
    done
  done;
  Reftrace.Window_builder.per_step space (List.rev !events)
