let xorshift state =
  let x = !state in
  let x = x lxor (x lsl 13) in
  let x = x lxor (x lsr 7) in
  let x = x lxor (x lsl 17) in
  state := x land max_int;
  !state

let trace ?(partition = Iteration_space.Block_2d) ?(seed = 0xD1CE) ~n ~bins
    mesh =
  if n < 4 then invalid_arg "Reduction.trace: n must be at least 4";
  if bins < 1 then invalid_arg "Reduction.trace: bins must be positive";
  let space =
    Reftrace.Data_space.create
      (Reftrace.Data_space.array_desc "X" ~rows:n ~cols:n)
      [ Reftrace.Data_space.array_desc "H" ~rows:1 ~cols:bins ]
  in
  let x row col = Reftrace.Data_space.id space ~array_name:"X" ~row ~col in
  let h bin = Reftrace.Data_space.id space ~array_name:"H" ~row:0 ~col:bin in
  let owner i j =
    Iteration_space.owner partition mesh ~extent_i:n ~extent_j:n ~i ~j
  in
  let state = ref (if seed = 0 then 0xD1CE else seed) in
  let events = ref [] in
  let emit ?kind step proc data =
    events := Reftrace.Trace.event ?kind ~step ~proc ~data () :: !events
  in
  let wr = Reftrace.Window.Write in
  let bands = Pim.Mesh.rows mesh in
  for band = 0 to bands - 1 do
    let lo = band * n / bands and hi = ((band + 1) * n / bands) - 1 in
    for i = lo to hi do
      for j = 0 to n - 1 do
        let p = owner i j in
        emit band p (x i j);
        emit ~kind:wr band p (h (xorshift state mod bins))
      done
    done
  done;
  Reftrace.Window_builder.per_step space (List.rev !events)
