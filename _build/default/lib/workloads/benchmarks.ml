type t = B1 | B2 | B3 | B4 | B5

let all = [ B1; B2; B3; B4; B5 ]

let label = function
  | B1 -> "1"
  | B2 -> "2"
  | B3 -> "3"
  | B4 -> "4"
  | B5 -> "5"

let description = function
  | B1 -> "LU factorization"
  | B2 -> "matrix squaring (C = A*A)"
  | B3 -> "matrix squaring followed by CODE"
  | B4 -> "LU factorization followed by CODE"
  | B5 -> "CODE followed by CODE in reverse order"

let of_label = function
  | "1" -> B1
  | "2" -> B2
  | "3" -> B3
  | "4" -> B4
  | "5" -> B5
  | s -> invalid_arg (Printf.sprintf "Benchmarks.of_label: unknown %S" s)

let trace ?partition t ~n mesh =
  let lu () = Lu.trace ?partition ~n mesh in
  let mm () = Matmul.trace ?partition ~n mesh in
  let code () = Code_kernel.trace ?partition ~n mesh in
  match t with
  | B1 -> lu ()
  | B2 -> mm ()
  | B3 -> Reftrace.Trace.append (mm ()) (code ())
  | B4 -> Reftrace.Trace.append (lu ()) (code ())
  | B5 -> Reftrace.Trace.append (code ()) (Reftrace.Trace.reversed (code ()))

let capacity t ~n mesh =
  (* B2/B3 schedule both A and C; the others only the matrix A. *)
  let data_count = match t with B2 | B3 -> 2 * n * n | B1 | B4 | B5 -> n * n in
  Pim.Memory.capacity_for ~data_count ~mesh ~headroom:2
