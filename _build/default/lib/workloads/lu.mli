(** LU factorization reference-string generator (paper benchmark 1).

    In-place LU without pivoting on an [n] × [n] matrix [A]. Elimination
    step [k] forms one execution window: the column scaling
    [a(i,k) /= a(k,k)] references [A(i,k)] and [A(k,k)], and the trailing
    update [a(i,j) -= a(i,k) * a(k,j)] references [A(i,j)], [A(i,k)] and
    [A(k,j)]. Iterations are owned per the given {!Iteration_space}
    partition, so the pivot row and column of each step are hot, shifting
    data — exactly the non-uniform pattern the paper targets. *)

(** [trace ?partition ~n mesh] generates the trace with one window per
    elimination step ([n - 1] windows; the trivial last step is dropped).
    [partition] defaults to [Block_2d]. @raise Invalid_argument if
    [n < 2]. *)
val trace :
  ?partition:Iteration_space.partition ->
  n:int ->
  Pim.Mesh.t ->
  Reftrace.Trace.t
