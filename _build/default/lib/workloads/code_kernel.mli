(** The synthetic "CODE" kernel.

    The paper's third workload ("the code in [5]", Notre Dame CSE TR 97-09)
    is not retrievable; per DESIGN.md §4 we substitute a deterministic
    irregular kernel engineered to have the property the paper exploits: a
    complicated, non-uniform reference pattern whose hot region moves
    between execution windows, so multi-center scheduling has headroom over
    any single placement.

    Window [t] of [T = n/2] windows combines three access modes on an
    [n] × [n] matrix [A]:
    - a {e sweeping front}: a band of rows around [r_t = t·n/T] is updated;
      each owned iteration references its own element, the front row
      element of its column, and the transposed element;
    - a {e counter-sweeping column gather}: column [c_t = (T-1-t)·n/T] is
      read together with its transposed row;
    - seeded {e jitter}: a few extra references at xorshift-random
      positions, making the pattern irregular without breaking
      reproducibility. *)

(** [trace ?partition ?seed ~n mesh] generates the [n/2]-window trace.
    [seed] defaults to [0x5EED]; [partition] to [Block_2d].
    @raise Invalid_argument if [n < 4]. *)
val trace :
  ?partition:Iteration_space.partition ->
  ?seed:int ->
  n:int ->
  Pim.Mesh.t ->
  Reftrace.Trace.t
