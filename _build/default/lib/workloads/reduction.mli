(** Histogram reduction — a many-writers kernel.

    Every processor scans its block of an [n] × [n] input matrix [X]
    (local reads) and accumulates into a small shared histogram [H] of
    [bins] cells (remote {e writes}). Which bin an element hits is a
    deterministic seeded hash, so bins are written by processors all over
    the array — the inverse of the broadcast pattern: one datum, many
    writers. Each window processes a band of rows, so the set of active
    writers shifts between windows. A good schedule centers each bin among
    its writers; replication cannot help at all (every access is a write),
    which makes this the adversarial workload for {!Sched.Replicated}. *)

(** [trace ?partition ?seed ~n ~bins mesh] generates the trace with one
    window per row band (one band per mesh row).
    @raise Invalid_argument if [n < 4] or [bins < 1]. *)
val trace :
  ?partition:Iteration_space.partition ->
  ?seed:int ->
  n:int ->
  bins:int ->
  Pim.Mesh.t ->
  Reftrace.Trace.t
