lib/workloads/reduction.ml: Iteration_space List Pim Reftrace
