lib/workloads/benchmarks.mli: Iteration_space Pim Reftrace
