lib/workloads/transitive_closure.ml: Iteration_space List Reftrace
