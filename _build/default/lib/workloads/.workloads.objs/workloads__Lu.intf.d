lib/workloads/lu.mli: Iteration_space Pim Reftrace
