lib/workloads/cholesky.mli: Iteration_space Pim Reftrace
