lib/workloads/transitive_closure.mli: Iteration_space Pim Reftrace
