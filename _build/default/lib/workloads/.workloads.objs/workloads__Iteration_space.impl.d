lib/workloads/iteration_space.ml: Pim Printf
