lib/workloads/stencil.mli: Iteration_space Pim Reftrace
