lib/workloads/reduction.mli: Iteration_space Pim Reftrace
