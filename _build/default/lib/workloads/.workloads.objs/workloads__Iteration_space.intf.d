lib/workloads/iteration_space.mli: Pim
