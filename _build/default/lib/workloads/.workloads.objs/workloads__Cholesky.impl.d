lib/workloads/cholesky.ml: Iteration_space List Reftrace
