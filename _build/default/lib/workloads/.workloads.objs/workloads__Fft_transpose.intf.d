lib/workloads/fft_transpose.mli: Iteration_space Pim Reftrace
