lib/workloads/matmul.ml: Iteration_space List Reftrace
