lib/workloads/fft_transpose.ml: Iteration_space List Reftrace
