lib/workloads/code_kernel.ml: Iteration_space List Reftrace
