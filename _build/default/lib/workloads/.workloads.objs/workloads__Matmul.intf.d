lib/workloads/matmul.mli: Iteration_space Pim Reftrace
