lib/workloads/benchmarks.ml: Code_kernel Lu Matmul Pim Printf Reftrace
