lib/workloads/stencil.ml: Iteration_space List Reftrace
