lib/workloads/code_kernel.mli: Iteration_space Pim Reftrace
