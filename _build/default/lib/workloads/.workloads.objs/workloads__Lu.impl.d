lib/workloads/lu.ml: Iteration_space List Reftrace
