lib/workloads/wavefront.ml: Iteration_space List Reftrace
