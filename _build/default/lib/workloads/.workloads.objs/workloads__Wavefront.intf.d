lib/workloads/wavefront.mli: Iteration_space Pim Reftrace
