let trace ?(partition = Iteration_space.Block_2d) ~n mesh =
  if n < 1 then invalid_arg "Matmul.trace: n must be at least 1";
  let space =
    Reftrace.Data_space.create
      (Reftrace.Data_space.array_desc "A" ~rows:n ~cols:n)
      [ Reftrace.Data_space.array_desc "C" ~rows:n ~cols:n ]
  in
  let a row col = Reftrace.Data_space.id space ~array_name:"A" ~row ~col in
  let c row col = Reftrace.Data_space.id space ~array_name:"C" ~row ~col in
  let owner i j =
    Iteration_space.owner partition mesh ~extent_i:n ~extent_j:n ~i ~j
  in
  let events = ref [] in
  let emit ?kind step proc data =
    events := Reftrace.Trace.event ?kind ~step ~proc ~data () :: !events
  in
  let wr = Reftrace.Window.Write in
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        let p = owner i j in
        emit k p (a i k);
        emit k p (a k j);
        emit ~kind:wr k p (c i j)
      done
    done
  done;
  Reftrace.Window_builder.per_step space (List.rev !events)
