let trace ?(partition = Iteration_space.Block_2d) ~n ~sweeps mesh =
  if n < 3 then invalid_arg "Stencil.trace: n must be at least 3";
  if sweeps < 1 then invalid_arg "Stencil.trace: sweeps must be positive";
  let space = Reftrace.Data_space.matrix "U" n in
  let id row col = Reftrace.Data_space.id space ~array_name:"U" ~row ~col in
  let owner i j =
    Iteration_space.owner partition mesh ~extent_i:n ~extent_j:n ~i ~j
  in
  let events = ref [] in
  let emit ?kind step proc data =
    events := Reftrace.Trace.event ?kind ~step ~proc ~data () :: !events
  in
  let wr = Reftrace.Window.Write in
  for t = 0 to sweeps - 1 do
    for i = 1 to n - 2 do
      for j = 1 to n - 2 do
        let p = owner i j in
        emit ~kind:wr t p (id i j);
        emit t p (id (i - 1) j);
        emit t p (id (i + 1) j);
        emit t p (id i (j - 1));
        emit t p (id i (j + 1))
      done
    done
  done;
  Reftrace.Window_builder.per_step space (List.rev !events)
