(** Floyd–Warshall transitive closure / all-pairs shortest paths.

    A classic PIM-era kernel we add beyond the paper's benchmark set: the
    [k] loop forms the execution windows and iteration [(i, j)] of window
    [k] references [D(i,j)], [D(i,k)] and [D(k,j)] {e in place} on a single
    matrix. The access pattern matches matrix squaring's hot row/column
    sweep, but with half the data (no separate output array) — a useful
    contrast when studying how memory pressure scales. *)

(** [trace ?partition ~n mesh] generates the [n]-window trace over the
    single matrix [D]. @raise Invalid_argument if [n < 1]. *)
val trace :
  ?partition:Iteration_space.partition ->
  n:int ->
  Pim.Mesh.t ->
  Reftrace.Trace.t
