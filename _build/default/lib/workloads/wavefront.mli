(** Gauss–Seidel wavefront sweep.

    Solving with immediate updates creates a dependence wavefront along the
    anti-diagonals: cell [(i, j)] needs the {e new} values of its west and
    north neighbours, so the computation advances as a diagonal front from
    the top-left corner to the bottom-right. Each execution window is a
    band of consecutive anti-diagonals — the textbook moving-hot-spot
    pattern, and the workload where the window-grouping trade-off (few big
    moves vs many small ones) is sharpest. *)

(** [trace ?partition ?diags_per_window ~n mesh] generates the trace;
    [diags_per_window] defaults to [n / 4] (at least 1).
    @raise Invalid_argument if [n < 3] or [diags_per_window < 1]. *)
val trace :
  ?partition:Iteration_space.partition ->
  ?diags_per_window:int ->
  n:int ->
  Pim.Mesh.t ->
  Reftrace.Trace.t
