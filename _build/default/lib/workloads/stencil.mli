(** Five-point Jacobi stencil — a {e uniform} workload used as a contrast in
    our ablations (not in the paper's tables).

    Each sweep is one execution window: every interior element's owner
    references the element and its four neighbours. The pattern is
    time-invariant, so multi-center scheduling should buy (almost) nothing
    over a good single placement — a useful negative control for the
    schedulers. *)

(** [trace ?partition ~n ~sweeps mesh] generates [sweeps] identical windows
    over an [n] × [n] grid. @raise Invalid_argument if [n < 3] or
    [sweeps < 1]. *)
val trace :
  ?partition:Iteration_space.partition ->
  n:int ->
  sweeps:int ->
  Pim.Mesh.t ->
  Reftrace.Trace.t
