(** Cholesky factorization (right-looking, lower triangle).

    A structurally richer cousin of LU: step [k] reads the pivot diagonal
    [A(k,k)], scales column [k] below the diagonal, and updates only the
    lower-triangular trailing submatrix — iteration [(i, j)] with
    [k < j <= i] writes [A(i,j)] and reads [A(i,k)], [A(j,k)]. The live
    region shrinks triangularly, so hot data drift toward the bottom-right
    corner faster than LU's square trailing updates. Only the lower
    triangle is ever touched; the upper half of [A] stays cold, making this
    the benchmark where capacity headroom matters least. *)

(** [trace ?partition ~n mesh] generates the [n - 1]-window trace.
    @raise Invalid_argument if [n < 2]. *)
val trace :
  ?partition:Iteration_space.partition ->
  n:int ->
  Pim.Mesh.t ->
  Reftrace.Trace.t
