let reference_cost mesh window ~data ~center =
  List.fold_left
    (fun acc (proc, count) ->
      acc + (count * Pim.Mesh.distance mesh center proc))
    0
    (Reftrace.Window.profile window data)

let cost_vector mesh window ~data =
  let m = Pim.Mesh.size mesh in
  let v = Array.make m 0 in
  let profile = Reftrace.Window.profile window data in
  for center = 0 to m - 1 do
    v.(center) <-
      List.fold_left
        (fun acc (proc, count) ->
          acc + (count * Pim.Mesh.distance mesh center proc))
        0 profile
  done;
  v

let local_optimal_center mesh window ~data =
  let v = cost_vector mesh window ~data in
  let best = ref 0 in
  for center = 1 to Array.length v - 1 do
    if v.(center) < v.(!best) then best := center
  done;
  !best

let movement_cost mesh ~from_ ~to_ = Pim.Mesh.distance mesh from_ to_

let path_cost mesh pairs ~data =
  if pairs = [] then invalid_arg "Cost.path_cost: empty window list";
  let rec go prev acc = function
    | [] -> acc
    | (window, center) :: rest ->
        let refc = reference_cost mesh window ~data ~center in
        let move =
          match prev with
          | None -> 0
          | Some p -> movement_cost mesh ~from_:p ~to_:center
        in
        go (Some center) (acc + refc + move) rest
  in
  go None 0 pairs
