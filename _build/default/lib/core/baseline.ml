let per_array_placement mesh space ~index_of =
  let p = Pim.Mesh.size mesh in
  let placement =
    Array.make (Reftrace.Data_space.size space) 0
  in
  List.iter
    (fun (d : Reftrace.Data_space.array_desc) ->
      let e = d.rows * d.cols in
      for r = 0 to d.rows - 1 do
        for c = 0 to d.cols - 1 do
          let id =
            Reftrace.Data_space.id space ~array_name:d.name ~row:r ~col:c
          in
          placement.(id) <- index_of ~desc:d ~row:r ~col:c ~elements:e ~p
        done
      done)
    (Reftrace.Data_space.arrays space);
  placement

let row_wise mesh space =
  per_array_placement mesh space
    ~index_of:(fun ~desc ~row ~col ~elements ~p ->
      let i = (row * desc.cols) + col in
      i * p / elements)

let column_wise mesh space =
  per_array_placement mesh space
    ~index_of:(fun ~desc ~row ~col ~elements ~p ->
      let i = (col * desc.rows) + row in
      i * p / elements)

let block_2d mesh space =
  let rows = Pim.Mesh.rows mesh and cols = Pim.Mesh.cols mesh in
  per_array_placement mesh space
    ~index_of:(fun ~desc ~row ~col ~elements:_ ~p:_ ->
      let grid_row = row * rows / desc.rows in
      let grid_col = col * cols / desc.cols in
      let grid_row = min grid_row (rows - 1)
      and grid_col = min grid_col (cols - 1) in
      Pim.Mesh.rank_of_coord mesh (Pim.Coord.make ~x:grid_col ~y:grid_row))

let cyclic mesh space =
  per_array_placement mesh space
    ~index_of:(fun ~desc ~row ~col ~elements:_ ~p ->
      ((row * desc.cols) + col) mod p)

(* A private xorshift generator keeps the baseline reproducible without
   touching the global Random state. *)
let random ~seed mesh space =
  let state = ref (if seed = 0 then 0x2545F491 else seed) in
  let next () =
    let x = !state in
    let x = x lxor (x lsl 13) in
    let x = x lxor (x lsr 7) in
    let x = x lxor (x lsl 17) in
    state := x land max_int;
    !state
  in
  let p = Pim.Mesh.size mesh in
  Array.init (Reftrace.Data_space.size space) (fun _ -> next () mod p)

let schedule placement mesh trace =
  Schedule.constant mesh
    ~n_windows:(Reftrace.Trace.n_windows trace)
    placement

let max_load mesh placement =
  let load = Array.make (Pim.Mesh.size mesh) 0 in
  Array.iter (fun rank -> load.(rank) <- load.(rank) + 1) placement;
  Array.fold_left max 0 load
