let check_feasible ?capacity mesh ~n_data =
  match capacity with
  | None -> ()
  | Some c ->
      if c * Pim.Mesh.size mesh < n_data then
        invalid_arg
          (Printf.sprintf
             "Scds.run: %d data cannot fit in %d processors of capacity %d"
             n_data (Pim.Mesh.size mesh) c)

let placement ?capacity mesh trace =
  let n_data = Reftrace.Data_space.size (Reftrace.Trace.space trace) in
  check_feasible ?capacity mesh ~n_data;
  let merged = Reftrace.Trace.merged trace in
  let memory =
    match capacity with
    | None -> Pim.Memory.unbounded mesh
    | Some c -> Pim.Memory.create mesh ~capacity:c
  in
  let placement = Array.make n_data 0 in
  List.iter
    (fun data ->
      let candidates = Processor_list.for_data mesh merged ~data in
      placement.(data) <- Processor_list.assign memory candidates)
    (Ordering.by_total_references trace);
  placement

let run ?capacity mesh trace =
  Schedule.constant mesh
    ~n_windows:(Reftrace.Trace.n_windows trace)
    (placement ?capacity mesh trace)

let center_of ?capacity mesh trace ~data =
  (placement ?capacity mesh trace).(data)
