let placement problem =
  Problem.check_feasible problem ~who:"Scds.run";
  (* parallel phase: merged-window processor lists, one row per datum *)
  Problem.prefetch_merged problem;
  (* serial phase: heaviest-first allocation, identical at any jobs count *)
  let memory = Problem.fresh_memory problem in
  let result = Array.make (Problem.n_data problem) 0 in
  List.iter
    (fun data ->
      result.(data) <-
        Processor_list.assign memory (Problem.merged_candidates problem ~data))
    (Problem.by_total_references problem);
  result

let schedule problem =
  Schedule.constant (Problem.mesh problem)
    ~n_windows:(Problem.n_windows problem)
    (placement problem)

let run ?capacity mesh trace =
  schedule (Problem.of_capacity ?capacity mesh trace)

let center_of ?capacity mesh trace ~data =
  (placement (Problem.of_capacity ?capacity mesh trace)).(data)
