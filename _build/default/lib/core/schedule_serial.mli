(** Textual serialization of schedules.

    The counterpart of {!Reftrace.Serial} for scheduler {e output}: a
    computed schedule can be saved, inspected, diffed, and later re-loaded
    and executed (e.g. by an offline planner feeding a runtime). Format:

    {v
    # pim-sched schedule v1
    mesh 4 4
    shape <n_windows> <n_data>
    w 0 <rank> <rank> ... (n_data ranks)
    w 1 ...
    v}

    A torus writes [torus 4 4] instead of [mesh 4 4]. Blank lines and [#]
    comments are ignored. *)

(** [to_string schedule] renders it. *)
val to_string : Schedule.t -> string

(** [of_string s] parses a schedule (mesh shape included in the format).
    @raise Failure with a line-numbered message on malformed input,
    out-of-range ranks, or missing windows. *)
val of_string : string -> Schedule.t

(** [save schedule path] / [load path] — file wrappers.
    @raise Sys_error on I/O failure, [Failure] on parse errors. *)
val save : Schedule.t -> string -> unit

val load : string -> Schedule.t
