(** Exhaustive reference schedulers, for validating the fast algorithms.

    These enumerate center sequences outright — O(mⁿ) per datum — so they
    are only usable on tiny instances, which is exactly their job: the test
    suite checks GOMCDS (shortest path) against {!optimal_cost}, and SCDS
    against {!optimal_static_cost}, on small random traces. *)

(** [optimal_cost mesh trace ~data] is the cheapest total (reference +
    movement) cost of any per-window center sequence for [data], together
    with one optimal sequence.
    @raise Invalid_argument if [size mesh ^ n_windows > 10_000_000]
    (refusing to melt the machine). *)
val optimal_cost : Pim.Mesh.t -> Reftrace.Trace.t -> data:int -> int * int array

(** [optimal_static_cost mesh trace ~data] is the cheapest cost achievable
    without movement — the best single center. *)
val optimal_static_cost : Pim.Mesh.t -> Reftrace.Trace.t -> data:int -> int * int

(** [total_optimal_cost mesh trace] sums {!optimal_cost} over all data: the
    true capacity-free optimum of the whole instance. *)
val total_optimal_cost : Pim.Mesh.t -> Reftrace.Trace.t -> int
