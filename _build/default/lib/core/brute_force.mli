(** Exhaustive reference schedulers, for validating the fast algorithms.

    These enumerate center sequences outright — O(mⁿ) per datum — so they
    are only usable on tiny instances, which is exactly their job: the test
    suite checks GOMCDS (shortest path) against {!optimal_cost}, and SCDS
    against {!optimal_static_cost}, on small random traces. *)

(** [optimal_cost mesh trace ~data] is the cheapest total (reference +
    movement) cost of any per-window center sequence for [data], together
    with one optimal sequence.
    @raise Invalid_argument if [size mesh ^ n_windows > 10_000_000]
    (refusing to melt the machine). *)
val optimal_cost : Pim.Mesh.t -> Reftrace.Trace.t -> data:int -> int * int array

(** [optimal_cost_in problem ~data] is {!optimal_cost} reading the
    context's cached cost vectors and distance table. *)
val optimal_cost_in : Problem.t -> data:int -> int * int array

(** [optimal_static_cost mesh trace ~data] is the cheapest cost achievable
    without movement — the best single center. *)
val optimal_static_cost : Pim.Mesh.t -> Reftrace.Trace.t -> data:int -> int * int

(** [total_optimal_cost_in problem] sums {!optimal_cost_in} over all data —
    the true capacity-free optimum of the whole instance — enumerating data
    concurrently on the context's domain pool (the sum is merged by datum
    index, so it is deterministic). *)
val total_optimal_cost_in : Problem.t -> int

(** @deprecated [total_optimal_cost mesh trace] is
    {!total_optimal_cost_in} on a throwaway serial context. *)
val total_optimal_cost : Pim.Mesh.t -> Reftrace.Trace.t -> int
