type entry = { cost : int; improvement : float }

type row = {
  benchmark : string;
  size : string;
  baseline : int;
  entries : entry list;
}

let entry ~baseline cost =
  { cost; improvement = Scheduler.improvement ~baseline ~cost }

let average_improvements rows =
  match rows with
  | [] -> []
  | first :: _ ->
      let n_cols = List.length first.entries in
      let sums = Array.make n_cols 0. in
      List.iter
        (fun r ->
          List.iteri
            (fun i e -> sums.(i) <- sums.(i) +. e.improvement)
            r.entries)
        rows;
      let n = float_of_int (List.length rows) in
      Array.to_list (Array.map (fun s -> s /. n) sums)

let render ~title ~columns rows =
  let n_cols = List.length columns in
  List.iter
    (fun r ->
      if List.length r.entries <> n_cols then
        invalid_arg "Report.render: row width mismatch")
    rows;
  let buf = Buffer.create 1024 in
  let cell_w = 9 in
  let label_w = 6 and size_w = 8 and base_w = 9 in
  let line () =
    Buffer.add_string buf
      (String.make (label_w + size_w + base_w + (n_cols * 2 * cell_w) + 8) '-');
    Buffer.add_char buf '\n'
  in
  Buffer.add_string buf title;
  Buffer.add_char buf '\n';
  line ();
  Buffer.add_string buf
    (Printf.sprintf "%-*s %-*s %*s " label_w "B." size_w "Size" base_w "S.F.");
  List.iter
    (fun c ->
      Buffer.add_string buf
        (Printf.sprintf "| %*s %*s " cell_w (c ^ " Comm.") (cell_w - 2) "%"))
    columns;
  Buffer.add_char buf '\n';
  line ();
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "%-*s %-*s %*d " label_w r.benchmark size_w r.size
           base_w r.baseline);
      List.iter
        (fun e ->
          Buffer.add_string buf
            (Printf.sprintf "| %*d %*.1f " cell_w e.cost (cell_w - 2)
               e.improvement))
        r.entries;
      Buffer.add_char buf '\n')
    rows;
  line ();
  Buffer.add_string buf
    (Printf.sprintf "%-*s %-*s %*s " label_w "Avg" size_w "" base_w "");
  List.iter
    (fun avg ->
      Buffer.add_string buf
        (Printf.sprintf "| %*s %*.1f " cell_w "" (cell_w - 2) avg))
    (average_improvements rows);
  Buffer.add_char buf '\n';
  line ();
  Buffer.contents buf
