(** Single-Center Data Scheduling (paper Algorithm 1).

    All execution windows are merged into one; each datum is placed at the
    processor minimizing its total communication cost over the whole
    execution and never moves. With bounded memory, the per-datum processor
    list supplies the first available fallback. *)

(** [run ?capacity mesh trace] computes the SCDS schedule. When [capacity]
    is given, each processor holds at most that many data (the schedule is
    static, so one window's constraint is every window's constraint).
    @raise Invalid_argument if [capacity * size mesh < n_data] (infeasible). *)
val run : ?capacity:int -> Pim.Mesh.t -> Reftrace.Trace.t -> Schedule.t

(** [center_of ?capacity mesh trace ~data] is just the chosen center of one
    datum — rank of the first processor in its (capacity-respecting)
    processor list. Exposed for the worked example and tests. *)
val center_of :
  ?capacity:int -> Pim.Mesh.t -> Reftrace.Trace.t -> data:int -> int
