type t = {
  mesh : Pim.Mesh.t;
  centers : int array array; (* centers.(window).(data) = rank *)
}

let create mesh ~n_windows ~n_data =
  if n_windows <= 0 then
    invalid_arg "Schedule.create: n_windows must be positive";
  if n_data <= 0 then invalid_arg "Schedule.create: n_data must be positive";
  { mesh; centers = Array.make_matrix n_windows n_data 0 }

let constant mesh ~n_windows placement =
  let size = Pim.Mesh.size mesh in
  Array.iteri
    (fun d rank ->
      if rank < 0 || rank >= size then
        invalid_arg
          (Printf.sprintf "Schedule.constant: datum %d at invalid rank %d" d
             rank))
    placement;
  let t = create mesh ~n_windows ~n_data:(Array.length placement) in
  Array.iter (fun row -> Array.blit placement 0 row 0 (Array.length placement))
    t.centers;
  t

let mesh t = t.mesh
let n_windows t = Array.length t.centers
let n_data t = Array.length t.centers.(0)

let check t ~window ~data =
  if window < 0 || window >= n_windows t then
    invalid_arg (Printf.sprintf "Schedule: window %d out of range" window);
  if data < 0 || data >= n_data t then
    invalid_arg (Printf.sprintf "Schedule: data %d out of range" data)

let center t ~window ~data =
  check t ~window ~data;
  t.centers.(window).(data)

let set_center t ~window ~data rank =
  check t ~window ~data;
  if rank < 0 || rank >= Pim.Mesh.size t.mesh then
    invalid_arg (Printf.sprintf "Schedule.set_center: invalid rank %d" rank);
  t.centers.(window).(data) <- rank

let centers_of_data t ~data =
  check t ~window:0 ~data;
  Array.map (fun row -> row.(data)) t.centers

let is_static t ~data =
  let cs = centers_of_data t ~data in
  Array.for_all (fun c -> c = cs.(0)) cs

let moves t =
  let count = ref 0 in
  for w = 1 to n_windows t - 1 do
    for d = 0 to n_data t - 1 do
      if t.centers.(w).(d) <> t.centers.(w - 1).(d) then incr count
    done
  done;
  !count

type cost_breakdown = { reference : int; movement : int; total : int }

let check_trace t trace =
  if Reftrace.Trace.n_windows trace <> n_windows t then
    invalid_arg
      (Printf.sprintf "Schedule: trace has %d windows, schedule has %d"
         (Reftrace.Trace.n_windows trace)
         (n_windows t));
  let trace_data = Reftrace.Data_space.size (Reftrace.Trace.space trace) in
  if trace_data <> n_data t then
    invalid_arg
      (Printf.sprintf "Schedule: trace has %d data, schedule has %d"
         trace_data (n_data t))

let cost t trace =
  check_trace t trace;
  let space = Reftrace.Trace.space trace in
  let volume data = Reftrace.Data_space.volume_of space data in
  let reference = ref 0 and movement = ref 0 in
  List.iteri
    (fun w window ->
      List.iter
        (fun data ->
          reference :=
            !reference
            + volume data
              * Cost.reference_cost t.mesh window ~data
                  ~center:t.centers.(w).(data))
        (Reftrace.Window.referenced_data window);
      if w > 0 then
        for data = 0 to n_data t - 1 do
          movement :=
            !movement
            + volume data
              * Cost.movement_cost t.mesh
                  ~from_:t.centers.(w - 1).(data)
                  ~to_:t.centers.(w).(data)
        done)
    (Reftrace.Trace.windows trace);
  { reference = !reference; movement = !movement;
    total = !reference + !movement }

let total_cost t trace = (cost t trace).total

let check_capacity t ~capacity =
  let size = Pim.Mesh.size t.mesh in
  let violation = ref None in
  (try
     for w = 0 to n_windows t - 1 do
       let load = Array.make size 0 in
       Array.iter (fun rank -> load.(rank) <- load.(rank) + 1) t.centers.(w);
       for rank = 0 to size - 1 do
         if load.(rank) > capacity then begin
           violation := Some (w, rank, load.(rank));
           raise Exit
         end
       done
     done
   with Exit -> ());
  !violation

let to_rounds ?(prefetch = false) t trace =
  check_trace t trace;
  let space = Reftrace.Trace.space trace in
  let volume data = Reftrace.Data_space.volume_of space data in
  (* migration messages feeding window [target] *)
  let migrations_into target =
    if target <= 0 || target >= n_windows t then []
    else begin
      let acc = ref [] in
      for data = n_data t - 1 downto 0 do
        let src = t.centers.(target - 1).(data)
        and dst = t.centers.(target).(data) in
        if src <> dst then
          acc := Pim.Router.message ~src ~dst ~volume:(volume data) :: !acc
      done;
      !acc
    end
  in
  List.mapi
    (fun w window ->
      let migrations =
        if prefetch then migrations_into (w + 1) else migrations_into w
      in
      let references =
        List.concat_map
          (fun data ->
            let src = t.centers.(w).(data) in
            List.filter_map
              (fun (proc, count) ->
                if proc = src then None
                else
                  Some
                    (Pim.Router.message ~src ~dst:proc
                       ~volume:(count * volume data)))
              (Reftrace.Window.profile window data))
          (Reftrace.Window.referenced_data window)
      in
      { Pim.Simulator.migrations; references })
    (Reftrace.Trace.windows trace)

let copy t = { t with centers = Array.map Array.copy t.centers }

let equal a b =
  n_windows a = n_windows b
  && n_data a = n_data b
  && a.centers = b.centers

let pp fmt t =
  Format.fprintf fmt "schedule(%a, %d windows, %d data, %d moves)"
    Pim.Mesh.pp t.mesh (n_windows t) (n_data t) (moves t)
