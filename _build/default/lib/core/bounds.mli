(** Lower bounds on total communication cost.

    With unbounded memory the data are independent, so the sum of per-datum
    shortest-path optima (GOMCDS's DP) is a true lower bound on {e any}
    schedule of the instance — capacity-constrained or not. Benches report
    each scheduler's gap to this bound, which turns "A beats B" comparisons
    into absolute statements about remaining headroom. *)

(** [lower_bound mesh trace] is Σ over data of the unconstrained optimal
    per-datum cost. Memoize the call if used repeatedly: it runs one DP per
    datum. *)
val lower_bound : Pim.Mesh.t -> Reftrace.Trace.t -> int

(** [static_lower_bound mesh trace] is the same bound restricted to
    movement-free schedules — the best cost SCDS could possibly achieve. *)
val static_lower_bound : Pim.Mesh.t -> Reftrace.Trace.t -> int

(** [gap ~bound ~cost] is [(cost - bound) / bound * 100.]; [0.] when the
    bound is zero. *)
val gap : bound:int -> cost:int -> float
