(** Run-time adaptation from an imposed initial placement (our extension).

    The paper's schedulers choose the initial placement themselves. In
    practice the initial distribution is often dictated — the data arrive
    row-wise from the host, or a previous program phase left them somewhere
    — and only run-time movement can adapt. This module answers "how much
    of the scheduling gain survives when the start is fixed?": the same
    per-datum shortest-path DP as GOMCDS, except the pseudo source is the
    datum's imposed location, so the migration {e into} window 0's center
    is charged too.

    Staying put is always a feasible path, so the adaptive schedule never
    costs more than running the imposed placement statically; and it can
    never beat free-choice GOMCDS. Both facts are property-tested. *)

(** [run ?capacity ~initial mesh trace] computes the adaptive schedule.
    [initial.(d)] is the imposed rank of datum [d] before execution starts.
    @raise Invalid_argument if [initial] has the wrong length, contains an
    invalid rank, or capacity is infeasible. *)
val run :
  ?capacity:int ->
  initial:int array ->
  Pim.Mesh.t ->
  Reftrace.Trace.t ->
  Schedule.t

(** [from_row_wise ?capacity mesh trace] is {!run} seeded with the paper's
    straight-forward row-wise distribution. *)
val from_row_wise :
  ?capacity:int -> Pim.Mesh.t -> Reftrace.Trace.t -> Schedule.t

type recovery = {
  imposed_static : int;  (** cost of never moving off the imposed placement *)
  adaptive : int;  (** cost of the adaptive schedule *)
  free_optimal : int;  (** unconstrained per-datum lower bound *)
  recovered : float;
      (** fraction of the (static − optimal) headroom that adaptation
          recovers, in [0, 1]; [1.] when there is no headroom *)
}

(** [recovery ?capacity ~initial mesh trace] quantifies how much of the gap
    between the imposed static placement and the free optimum run-time
    movement wins back. *)
val recovery :
  ?capacity:int ->
  initial:int array ->
  Pim.Mesh.t ->
  Reftrace.Trace.t ->
  recovery
