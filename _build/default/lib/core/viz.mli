(** ASCII visualizations for traces and schedules.

    Small, dependency-free renderers used by the CLI's [show] command and
    the examples: reference-count heatmaps over the processor grid, per-
    window data-load maps, and datum trajectories. Grid renderers return
    strings ending in a newline; {!trajectory} is a single line. *)

(** [window_heatmap mesh window ~data] draws the processor grid with the
    reference count of [data] in each cell — the same picture as the
    paper's Figure 1. *)
val window_heatmap : Pim.Mesh.t -> Reftrace.Window.t -> data:int -> string

(** [total_heatmap mesh window] draws the grid with each processor's total
    reference count over all data. *)
val total_heatmap : Pim.Mesh.t -> Reftrace.Window.t -> string

(** [load_map mesh schedule ~window] draws the grid with the number of data
    homed at each processor during [window]. *)
val load_map : Pim.Mesh.t -> Schedule.t -> window:int -> string

(** [trajectory mesh schedule ~data] renders the datum's center per window,
    e.g. ["(1,0) -> (1,0) -> (1,1)"], collapsing nothing. *)
val trajectory : Pim.Mesh.t -> Schedule.t -> data:int -> string
