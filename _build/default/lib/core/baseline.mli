(** Straight-forward data distributions — the paper's comparison points.

    These place data once, by array geometry alone, ignoring the reference
    string. The paper's "S.F." column is {!row_wise}; the others are common
    HPF-style defaults we include for broader comparison. All are static
    (no movement). Distribution is per array of the data space, so combined
    benchmarks distribute each matrix independently. *)

(** [row_wise mesh space] deals each array's elements, in row-major order,
    into [size mesh] equal contiguous chunks: element [i] of an [e]-element
    array goes to rank [i * p / e]. This is the paper's default
    distribution. *)
val row_wise : Pim.Mesh.t -> Reftrace.Data_space.t -> int array

(** [column_wise mesh space] is {!row_wise} with column-major order. *)
val column_wise : Pim.Mesh.t -> Reftrace.Data_space.t -> int array

(** [block_2d mesh space] tiles each array over the processor grid: element
    (r, c) of an [rows]×[cols] array goes to the processor at grid position
    ([r·R/rows], [c·C/cols]). *)
val block_2d : Pim.Mesh.t -> Reftrace.Data_space.t -> int array

(** [cyclic mesh space] deals elements round-robin: element [i] to rank
    [i mod p]. *)
val cyclic : Pim.Mesh.t -> Reftrace.Data_space.t -> int array

(** [random ~seed mesh space] places each element uniformly at random with a
    private deterministic generator. *)
val random : seed:int -> Pim.Mesh.t -> Reftrace.Data_space.t -> int array

(** [schedule placement mesh trace] wraps a static placement for [trace]. *)
val schedule : int array -> Pim.Mesh.t -> Reftrace.Trace.t -> Schedule.t

(** [max_load mesh placement] is the heaviest processor's datum count —
    used to confirm the baselines respect the paper's capacity rule. *)
val max_load : Pim.Mesh.t -> int array -> int
