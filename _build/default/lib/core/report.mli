(** Rendering of the paper's result tables.

    Tables 1 and 2 have the shape: benchmark, data size, the
    straight-forward cost, then for each scheduler its cost and its
    percentage improvement over the straight-forward cost. *)

type entry = { cost : int; improvement : float }

type row = {
  benchmark : string;  (** "1" .. "5" in the paper *)
  size : string;  (** e.g. "8x8" *)
  baseline : int;  (** the S.F. column *)
  entries : entry list;  (** one per scheduler column *)
}

(** [entry ~baseline cost] computes the "%" column. *)
val entry : baseline:int -> int -> entry

(** [render ~title ~columns rows] pretty-prints the table; [columns] names
    the scheduler columns (each expands to "Comm." and "%" sub-columns).
    A final row reports each column's average improvement, as the paper
    discusses. @raise Invalid_argument if some row has a different number
    of entries than [columns]. *)
val render : title:string -> columns:string list -> row list -> string

(** [average_improvements rows] is the per-column mean of the "%" values. *)
val average_improvements : row list -> float list
