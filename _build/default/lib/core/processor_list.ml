let of_cost_vector v =
  let ranks = List.init (Array.length v) Fun.id in
  List.sort
    (fun a b ->
      let c = Int.compare v.(a) v.(b) in
      if c <> 0 then c else Int.compare a b)
    ranks

let for_data mesh window ~data =
  of_cost_vector (Cost.cost_vector mesh window ~data)

let first_available memory list =
  List.find_opt (fun rank -> not (Pim.Memory.is_full memory rank)) list

let assign memory list =
  match first_available memory list with
  | Some rank ->
      let ok = Pim.Memory.allocate memory rank in
      assert ok;
      rank
  | None -> failwith "Processor_list.assign: all candidate processors full"
