type stats = { sweeps : int; improved : int; saved : int }

let trajectory_cost (p : Pathgraph.Layered.problem) traj =
  let cost = ref (p.enter_cost traj.(0)) in
  for layer = 1 to p.n_layers - 1 do
    cost := !cost + p.step_cost ~layer traj.(layer - 1) traj.(layer)
  done;
  !cost

let run ?capacity ?(max_sweeps = 8) mesh trace schedule =
  let n_data = Reftrace.Data_space.size (Reftrace.Trace.space trace) in
  let n_windows = Reftrace.Trace.n_windows trace in
  if
    Schedule.n_data schedule <> n_data
    || Schedule.n_windows schedule <> n_windows
  then invalid_arg "Refine.run: schedule and trace shapes disagree";
  (match capacity with
  | Some c -> (
      match Schedule.check_capacity schedule ~capacity:c with
      | Some (w, rank, load) ->
          invalid_arg
            (Printf.sprintf
               "Refine.run: input schedule already violates capacity \
                (window %d, rank %d, load %d > %d)"
               w rank load c)
      | None -> ())
  | None -> ());
  let sched = Schedule.copy schedule in
  let m = Pim.Mesh.size mesh in
  let loads = Array.make_matrix n_windows m 0 in
  for w = 0 to n_windows - 1 do
    for d = 0 to n_data - 1 do
      let r = Schedule.center sched ~window:w ~data:d in
      loads.(w).(r) <- loads.(w).(r) + 1
    done
  done;
  let allowed =
    match capacity with
    | None -> fun ~layer:_ _ -> true
    | Some c -> fun ~layer j -> loads.(layer).(j) < c
  in
  let sweeps = ref 0 and improved = ref 0 and saved = ref 0 in
  let space = Reftrace.Trace.space trace in
  let order = Ordering.by_total_references trace in
  let progress = ref true in
  while !progress && !sweeps < max_sweeps do
    incr sweeps;
    progress := false;
    List.iter
      (fun data ->
        let problem = Gomcds.cost_problem mesh trace ~data in
        let traj = Schedule.centers_of_data sched ~data in
        Array.iteri
          (fun w r -> loads.(w).(r) <- loads.(w).(r) - 1)
          traj;
        let current = trajectory_cost problem traj in
        let adopted =
          match Pathgraph.Layered.solve_filtered problem ~allowed with
          | Some (cost, centers) when cost < current ->
              Array.iteri
                (fun w rank ->
                  Schedule.set_center sched ~window:w ~data rank;
                  loads.(w).(rank) <- loads.(w).(rank) + 1)
                centers;
              saved :=
                !saved
                + (Reftrace.Data_space.volume_of space data
                  * (current - cost));
              incr improved;
              progress := true;
              true
          | Some _ | None -> false
        in
        if not adopted then
          Array.iteri (fun w r -> loads.(w).(r) <- loads.(w).(r) + 1) traj)
      order
  done;
  (sched, { sweeps = !sweeps; improved = !improved; saved = !saved })

let gomcds_refined ?capacity mesh trace =
  let base = Gomcds.run ?capacity mesh trace in
  fst (run ?capacity mesh trace base)

let best ?capacity mesh trace =
  let seeds =
    [
      Gomcds.run ?capacity mesh trace;
      Lomcds.run ?capacity mesh trace;
      Grouping.run ?capacity ~centers:`Local mesh trace;
      Grouping.run ?capacity ~centers:`Global mesh trace;
    ]
  in
  let refined = List.map (fun s -> fst (run ?capacity mesh trace s)) seeds in
  match refined with
  | [] -> assert false
  | first :: rest ->
      List.fold_left
        (fun acc s ->
          if Schedule.total_cost s trace < Schedule.total_cost acc trace then
            s
          else acc)
        first rest
