type row = {
  workload : string;
  algorithm : string;
  total : int;
  reference : int;
  movement : int;
  moves : int;
  improvement : float;
  gap : float;
}

let run ?(headroom = 2) ?(jobs = 1) mesh instances algorithms =
  List.concat_map
    (fun (workload, trace) ->
      let policy =
        if headroom = 0 then Problem.Unbounded
        else
          Problem.Bounded
            (Pim.Memory.capacity_for
               ~data_count:
                 (Reftrace.Data_space.size (Reftrace.Trace.space trace))
               ~mesh ~headroom)
      in
      (* one context per instance: the lower bound, the baseline and every
         algorithm share its cost-vector cache *)
      let problem = Problem.create ~policy ~jobs mesh trace in
      let bound = Bounds.lower_bound_in problem in
      let baseline =
        Schedule.total_cost (Scheduler.solve problem Scheduler.Row_wise) trace
      in
      List.map
        (fun algorithm ->
          let schedule = Scheduler.solve problem algorithm in
          let cost = Schedule.cost schedule trace in
          {
            workload;
            algorithm = Scheduler.name algorithm;
            total = cost.Schedule.total;
            reference = cost.Schedule.reference;
            movement = cost.Schedule.movement;
            moves = Schedule.moves schedule;
            improvement =
              Scheduler.improvement ~baseline ~cost:cost.Schedule.total;
            gap = Bounds.gap ~bound ~cost:cost.Schedule.total;
          })
        algorithms)
    instances

let to_csv rows =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "workload,algorithm,total,reference,movement,moves,improvement_pct,gap_pct\n";
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "%s,%s,%d,%d,%d,%d,%.1f,%.1f\n" r.workload
           r.algorithm r.total r.reference r.movement r.moves r.improvement
           r.gap))
    rows;
  Buffer.contents buf
