let problem mesh trace ~data =
  let windows = Array.of_list (Reftrace.Trace.windows trace) in
  let vectors =
    Array.map (fun w -> Cost.cost_vector mesh w ~data) windows
  in
  {
    Pathgraph.Layered.n_layers = Array.length windows;
    width = Pim.Mesh.size mesh;
    enter_cost = (fun j -> vectors.(0).(j));
    step_cost =
      (fun ~layer j k -> Pim.Mesh.distance mesh j k + vectors.(layer).(k));
  }

let cost_problem = problem

let optimal_centers mesh trace ~data =
  Pathgraph.Layered.solve (problem mesh trace ~data)

let cost_graph mesh trace ~data =
  Pathgraph.Layered.to_digraph (problem mesh trace ~data)

let run ?capacity mesh trace =
  let n_data = Reftrace.Data_space.size (Reftrace.Trace.space trace) in
  let n_windows = Reftrace.Trace.n_windows trace in
  let schedule = Schedule.create mesh ~n_windows ~n_data in
  let memories =
    match capacity with
    | None -> None
    | Some c ->
        if c * Pim.Mesh.size mesh < n_data then
          invalid_arg
            (Printf.sprintf
               "Gomcds.run: %d data cannot fit in %d processors of capacity \
                %d"
               n_data (Pim.Mesh.size mesh) c);
        Some (Array.init n_windows (fun _ -> Pim.Memory.create mesh ~capacity:c))
  in
  List.iter
    (fun data ->
      let p = problem mesh trace ~data in
      let centers =
        match memories with
        | None -> snd (Pathgraph.Layered.solve p)
        | Some mems ->
            let allowed ~layer j = not (Pim.Memory.is_full mems.(layer) j) in
            (* Placing data one at a time into capacity c with
               n_data <= c * processors means every layer always retains a
               free slot, so a feasible path exists. *)
            let result = Pathgraph.Layered.solve_filtered p ~allowed in
            let _, centers = Option.get result in
            Array.iteri
              (fun layer rank ->
                let ok = Pim.Memory.allocate mems.(layer) rank in
                assert ok)
              centers;
            centers
      in
      Array.iteri
        (fun w rank -> Schedule.set_center schedule ~window:w ~data rank)
        centers)
    (Ordering.by_total_references trace);
  schedule
