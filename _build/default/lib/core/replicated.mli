(** Data scheduling with read replication (our extension).

    The paper fixes "one copy of data is allowed in a system" — an explicit
    simplification. This module relaxes it for read-mostly data: a datum may
    have several copies in a window, reads fetch from the nearest copy, and
    creating a copy costs the distance from the nearest existing one (copies
    persist across windows for free and are dropped for free; every live
    copy occupies a memory slot).

    Coherence is write-invalidate: in any window where a datum is written
    ({!Reftrace.Window.write_profile}), it is pinned to its primary copy —
    no secondaries may live there — and every write is charged the distance
    from the writer to the primary. Read-only windows replicate freely.

    The scheduler keeps the paper's machinery as its backbone: the {e
    primary} copy follows the exact GOMCDS shortest-path trajectory; then,
    per window, {e secondary} copies are added greedily — best rank first —
    as long as each strictly reduces the window's (creation + read) cost,
    at most [max_copies] live copies per datum, and capacity permitting.
    Because every addition strictly pays for itself, the replicated
    schedule never costs more than plain GOMCDS, and with [max_copies = 1]
    it {e is} plain GOMCDS; both facts are property-tested. On
    broadcast-heavy windows (a pivot row read by every processor) it beats
    the single-copy optimum — the quantity {!Bounds.lower_bound} cannot go
    below. *)

type t

val n_windows : t -> int
val n_data : t -> int

(** [copies t ~window ~data] is the datum's copy set during [window],
    primary first; always non-empty. *)
val copies : t -> window:int -> data:int -> int list

(** [run ?capacity ?max_copies mesh trace] builds the replicated schedule.
    [max_copies] defaults to 2. @raise Invalid_argument if
    [max_copies < 1] or capacity is infeasible for the primaries. *)
val run :
  ?capacity:int -> ?max_copies:int -> Pim.Mesh.t -> Reftrace.Trace.t -> t

type cost_breakdown = {
  reads : int;  (** Σ count · distance-to-nearest-copy *)
  primary_movement : int;  (** GOMCDS-style migration of the primary *)
  creation : int;  (** Σ distance from nearest existing copy *)
  total : int;
}

(** [cost t mesh trace] prices the replicated schedule. *)
val cost : t -> Pim.Mesh.t -> Reftrace.Trace.t -> cost_breakdown

(** [to_rounds t mesh trace] lowers to simulator traffic: primary
    migrations, then copy-creation messages, then one read message per
    profile entry from its nearest copy. Routing it reproduces
    [cost t mesh trace].total exactly (tested). *)
val to_rounds : t -> Pim.Mesh.t -> Reftrace.Trace.t -> Pim.Simulator.round list

(** [max_live_copies t ~data] is the largest copy-set size the datum ever
    has. *)
val max_live_copies : t -> data:int -> int

(** [check_capacity t ~capacity] verifies that no window packs more than
    [capacity] copies on one processor; first violation or [None]. *)
val check_capacity : t -> capacity:int -> (int * int * int) option
