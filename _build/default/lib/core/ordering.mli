(** Deterministic data-scheduling orders.

    When memory is bounded, the order in which data are assigned to
    processors matters. The paper does not pin an order down; we schedule
    heavier data first (descending reference volume) so the data that care
    most about their center get first pick, breaking ties on ascending id
    for reproducibility. *)

(** [by_window_references window] orders referenced data of [window] by
    descending reference count, then ascending id; unreferenced data are
    omitted. *)
val by_window_references : Reftrace.Window.t -> int list

(** [by_total_references trace] orders {e all} data ids (including
    unreferenced ones, which come last) by descending whole-trace reference
    volume, then ascending id. *)
val by_total_references : Reftrace.Trace.t -> int list
