(** Unified front-end over every scheduling algorithm in the library. *)

type algorithm =
  | Row_wise  (** the paper's straight-forward baseline *)
  | Column_wise
  | Block_2d
  | Cyclic
  | Random of int  (** seeded random static placement *)
  | Scds
  | Lomcds
  | Gomcds
  | Lomcds_grouped  (** Algorithm 3 with local centers — Table 2 *)
  | Gomcds_grouped  (** Algorithm 3 followed by shortest-path centers *)
  | Gomcds_refined
      (** GOMCDS followed by the {!Refine} fixed-point pass — repairs
          greedy capacity commitments (our extension) *)
  | Best_refined
      (** portfolio: refine GOMCDS, LOMCDS and both grouping variants to a
          fixed point and keep the cheapest (our extension) *)

(** Every algorithm, in presentation order. *)
val all : algorithm list

val name : algorithm -> string

(** [of_name s] parses the CLI spelling produced by {!name}.
    @raise Invalid_argument on unknown names. *)
val of_name : string -> algorithm

(** [run ?capacity algorithm mesh trace] dispatches to the implementation.
    Static baselines ignore [capacity] (their placements respect the
    paper's 2× headroom rule by construction; see {!Baseline.max_load}). *)
val run :
  ?capacity:int -> algorithm -> Pim.Mesh.t -> Reftrace.Trace.t -> Schedule.t

(** [evaluate ?capacity algorithm mesh trace] runs and prices the schedule. *)
val evaluate :
  ?capacity:int ->
  algorithm ->
  Pim.Mesh.t ->
  Reftrace.Trace.t ->
  Schedule.t * Schedule.cost_breakdown

(** [improvement ~baseline ~cost] is the paper's "%" column:
    [(baseline - cost) / baseline * 100.]; [0.] when [baseline] is 0. *)
val improvement : baseline:int -> cost:int -> float
