(** Data schedules: where every datum lives in every execution window.

    A schedule is the output of every algorithm in this library. It fixes,
    for each execution window of a trace, the processor (center) holding
    each datum. Cost accounting, feasibility checking against bounded
    memories, and lowering to simulator traffic all live here. *)

type t

(** [create mesh ~n_windows ~n_data] starts with every datum at rank 0 in
    every window. @raise Invalid_argument on non-positive sizes. *)
val create : Pim.Mesh.t -> n_windows:int -> n_data:int -> t

(** [constant mesh ~n_windows placement] pins datum [d] at [placement.(d)]
    for the whole execution (SCDS and the straight-forward baselines).
    @raise Invalid_argument if any rank is out of mesh bounds. *)
val constant : Pim.Mesh.t -> n_windows:int -> int array -> t

val mesh : t -> Pim.Mesh.t
val n_windows : t -> int
val n_data : t -> int

(** [center t ~window ~data] is where [data] lives during [window]. *)
val center : t -> window:int -> data:int -> int

(** [set_center t ~window ~data rank] places [data] at [rank] in [window].
    @raise Invalid_argument on out-of-range arguments. *)
val set_center : t -> window:int -> data:int -> int -> unit

(** [centers_of_data t ~data] is the datum's trajectory across windows. *)
val centers_of_data : t -> data:int -> int array

(** [is_static t ~data] is [true] iff the datum never moves. *)
val is_static : t -> data:int -> bool

(** [moves t] counts inter-window migrations over all data. *)
val moves : t -> int

type cost_breakdown = {
  reference : int;  (** Σ window reference cost *)
  movement : int;  (** Σ inter-window migration cost *)
  total : int;
}

(** [cost t trace] evaluates the paper's total communication cost of [t] on
    [trace]. @raise Invalid_argument if shapes disagree. *)
val cost : t -> Reftrace.Trace.t -> cost_breakdown

(** [total_cost t trace] is [(cost t trace).total]. *)
val total_cost : t -> Reftrace.Trace.t -> int

(** [check_capacity t ~capacity] verifies that no window packs more than
    [capacity] data on one processor; returns the first violation as
    [(window, rank, load)] or [None] when feasible. *)
val check_capacity : t -> capacity:int -> (int * int * int) option

(** [to_rounds ?prefetch t trace] lowers the schedule to simulator
    traffic: per window, migration messages (from the previous window's
    center, volume = element volume) then one message per reference
    profile entry (volume = count × element volume). Initial placement is
    free, as in the paper (every method pays it alike).

    With [prefetch] (default [false]), the migration into window [w] is
    issued during window [w - 1] instead — the total hop·volume is
    unchanged, but the timed simulator can overlap movement with the
    previous window's reference traffic, shrinking makespan. *)
val to_rounds :
  ?prefetch:bool -> t -> Reftrace.Trace.t -> Pim.Simulator.round list

(** [copy t] is an independent duplicate. *)
val copy : t -> t

(** [equal a b] holds when both have identical shapes and centers. *)
val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
