lib/core/example.mli: Format Pim Reftrace
