lib/core/brute_force.ml: Array Cost Pim Reftrace
