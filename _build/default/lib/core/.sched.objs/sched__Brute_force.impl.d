lib/core/brute_force.ml: Array Cost Engine Pim Problem Reftrace
