lib/core/online.mli: Pim Reftrace Schedule
