lib/core/ordering.ml: Fun Int List Reftrace
