lib/core/sweep.mli: Pim Reftrace Scheduler
