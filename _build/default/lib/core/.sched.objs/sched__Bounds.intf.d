lib/core/bounds.mli: Pim Reftrace
