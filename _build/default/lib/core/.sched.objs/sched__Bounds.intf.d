lib/core/bounds.mli: Pim Problem Reftrace
