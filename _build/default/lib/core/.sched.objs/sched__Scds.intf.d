lib/core/scds.mli: Pim Problem Reftrace Schedule
