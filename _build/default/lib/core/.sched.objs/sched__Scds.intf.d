lib/core/scds.mli: Pim Reftrace Schedule
