lib/core/cost.ml: Array List Pim Reftrace
