lib/core/bounds.ml: Array Cost Gomcds Reftrace
