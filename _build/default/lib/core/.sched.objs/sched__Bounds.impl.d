lib/core/bounds.ml: Array Engine Pathgraph Problem Reftrace
