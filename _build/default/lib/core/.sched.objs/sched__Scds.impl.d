lib/core/scds.ml: Array List Problem Processor_list Schedule
