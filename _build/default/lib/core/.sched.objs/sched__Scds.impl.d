lib/core/scds.ml: Array List Ordering Pim Printf Processor_list Reftrace Schedule
