lib/core/sweep.ml: Bounds Buffer List Pim Printf Reftrace Schedule Scheduler
