lib/core/sweep.ml: Bounds Buffer List Pim Printf Problem Reftrace Schedule Scheduler
