lib/core/adapt.mli: Pim Reftrace Schedule
