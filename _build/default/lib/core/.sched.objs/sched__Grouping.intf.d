lib/core/grouping.mli: Pim Reftrace Schedule
