lib/core/grouping.mli: Pim Problem Reftrace Schedule
