lib/core/baseline.ml: Array List Pim Reftrace Schedule
