lib/core/replicated.ml: Array Gomcds Hashtbl List Ordering Pim Reftrace Schedule
