lib/core/schedule.ml: Array Cost Format List Pim Printf Reftrace
