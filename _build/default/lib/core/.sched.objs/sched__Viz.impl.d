lib/core/viz.ml: Array Buffer List Pim Printf Reftrace Schedule String
