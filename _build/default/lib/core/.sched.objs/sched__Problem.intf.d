lib/core/problem.mli: Pathgraph Pim Reftrace
