lib/core/replicated.mli: Pim Reftrace
