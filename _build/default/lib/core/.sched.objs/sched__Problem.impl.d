lib/core/problem.ml: Array Engine Fun Int List Pathgraph Pim Printf Processor_list Reftrace
