lib/core/annealing.mli: Pim Reftrace Schedule
