lib/core/gomcds.mli: Pathgraph Pim Reftrace Schedule
