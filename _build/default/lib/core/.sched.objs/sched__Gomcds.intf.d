lib/core/gomcds.mli: Pathgraph Pim Problem Reftrace Schedule
