lib/core/refine.mli: Pim Problem Reftrace Schedule
