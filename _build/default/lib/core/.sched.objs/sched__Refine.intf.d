lib/core/refine.mli: Pim Reftrace Schedule
