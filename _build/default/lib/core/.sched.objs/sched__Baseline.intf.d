lib/core/baseline.mli: Pim Reftrace Schedule
