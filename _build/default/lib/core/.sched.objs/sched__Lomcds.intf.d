lib/core/lomcds.mli: Pim Reftrace Schedule
