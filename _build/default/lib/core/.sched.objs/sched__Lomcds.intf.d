lib/core/lomcds.mli: Pim Problem Reftrace Schedule
