lib/core/schedule.mli: Format Pim Reftrace
