lib/core/report.mli:
