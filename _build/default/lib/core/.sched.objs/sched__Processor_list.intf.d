lib/core/processor_list.mli: Pim Reftrace
