lib/core/example.ml: Array Format Gomcds List Lomcds Pim Reftrace Scds Schedule
