lib/core/ordering.mli: Reftrace
