lib/core/annealing.ml: Array Baseline Cost Float Pim Reftrace Schedule
