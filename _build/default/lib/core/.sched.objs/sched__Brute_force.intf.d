lib/core/brute_force.mli: Pim Reftrace
