lib/core/brute_force.mli: Pim Problem Reftrace
