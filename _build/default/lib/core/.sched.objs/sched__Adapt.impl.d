lib/core/adapt.ml: Array Baseline Bounds Cost Gomcds List Option Ordering Pathgraph Pim Printf Reftrace Schedule
