lib/core/schedule_serial.mli: Schedule
