lib/core/lomcds.ml: Array Cost Fun Int List Ordering Pim Problem Processor_list Reftrace Schedule
