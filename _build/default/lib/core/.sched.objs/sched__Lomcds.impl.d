lib/core/lomcds.ml: Array Cost Fun Int List Ordering Pim Printf Processor_list Reftrace Schedule
