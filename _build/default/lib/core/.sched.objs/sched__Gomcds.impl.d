lib/core/gomcds.ml: Array Cost Engine List Option Pathgraph Pim Problem Reftrace Schedule
