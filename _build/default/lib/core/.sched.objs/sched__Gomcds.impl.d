lib/core/gomcds.ml: Array Cost List Option Ordering Pathgraph Pim Printf Reftrace Schedule
