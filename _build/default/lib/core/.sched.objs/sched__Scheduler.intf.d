lib/core/scheduler.mli: Pim Reftrace Schedule
