lib/core/scheduler.mli: Pim Problem Reftrace Schedule
