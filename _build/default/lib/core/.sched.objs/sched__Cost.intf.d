lib/core/cost.mli: Pim Reftrace
