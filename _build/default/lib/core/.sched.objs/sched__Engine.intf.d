lib/core/engine.mli:
