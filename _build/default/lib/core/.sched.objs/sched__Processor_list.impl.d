lib/core/processor_list.ml: Array Cost Fun Int List Pim
