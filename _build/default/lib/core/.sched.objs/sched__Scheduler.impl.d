lib/core/scheduler.ml: Baseline Gomcds Grouping List Lomcds Printf Problem Refine Scds Schedule String
