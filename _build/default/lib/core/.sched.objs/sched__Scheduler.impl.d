lib/core/scheduler.ml: Baseline Gomcds Grouping Lomcds Printf Refine Reftrace Scds Schedule
