lib/core/online.ml: Array Baseline Cost List Ordering Pim Printf Processor_list Reftrace Schedule
