lib/core/viz.mli: Pim Reftrace Schedule
