lib/core/report.ml: Array Buffer List Printf Scheduler String
