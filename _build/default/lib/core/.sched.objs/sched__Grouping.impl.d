lib/core/grouping.ml: Array Engine Fun Int List Pathgraph Problem Processor_list Reftrace Schedule
