lib/core/grouping.ml: Array Cost Fun Int List Pathgraph Pim Printf Processor_list Reftrace Schedule
