lib/core/engine.ml: Array Atomic Condition Domain List Mutex
