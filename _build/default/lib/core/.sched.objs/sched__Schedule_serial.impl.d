lib/core/schedule_serial.ml: Buffer Fun List Pim Printf Schedule String
