lib/core/refine.ml: Array Gomcds Grouping List Lomcds Ordering Pathgraph Pim Printf Reftrace Schedule
