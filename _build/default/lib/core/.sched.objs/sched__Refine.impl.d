lib/core/refine.ml: Array Gomcds Grouping List Lomcds Pathgraph Pim Printf Problem Reftrace Schedule
