let pow base exp =
  let rec go acc = function 0 -> acc | e -> go (acc * base) (e - 1) in
  go 1 exp

let optimal_cost mesh trace ~data =
  let windows = Array.of_list (Reftrace.Trace.windows trace) in
  let n = Array.length windows in
  let m = Pim.Mesh.size mesh in
  if pow m n > 10_000_000 then
    invalid_arg "Brute_force.optimal_cost: instance too large";
  let vectors = Array.map (fun w -> Cost.cost_vector mesh w ~data) windows in
  let best_cost = ref max_int in
  let best_seq = ref [||] in
  let seq = Array.make n 0 in
  let rec explore w acc =
    if acc >= !best_cost then () (* prune: costs only grow *)
    else if w = n then begin
      best_cost := acc;
      best_seq := Array.copy seq
    end
    else
      for rank = 0 to m - 1 do
        seq.(w) <- rank;
        let move =
          if w = 0 then 0 else Pim.Mesh.distance mesh seq.(w - 1) rank
        in
        explore (w + 1) (acc + move + vectors.(w).(rank))
      done
  in
  explore 0 0;
  (!best_cost, !best_seq)

let optimal_static_cost mesh trace ~data =
  let merged = Reftrace.Trace.merged trace in
  let v = Cost.cost_vector mesh merged ~data in
  let best = ref 0 in
  for rank = 1 to Array.length v - 1 do
    if v.(rank) < v.(!best) then best := rank
  done;
  (v.(!best), !best)

let total_optimal_cost mesh trace =
  let space = Reftrace.Trace.space trace in
  let n = Reftrace.Data_space.size space in
  let total = ref 0 in
  for data = 0 to n - 1 do
    total :=
      !total
      + Reftrace.Data_space.volume_of space data
        * fst (optimal_cost mesh trace ~data)
  done;
  !total
