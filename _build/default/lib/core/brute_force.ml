let pow base exp =
  let rec go acc = function 0 -> acc | e -> go (acc * base) (e - 1) in
  go 1 exp

let optimal_cost_of ~vectors ~dist ~m ~n =
  if pow m n > 10_000_000 then
    invalid_arg "Brute_force.optimal_cost: instance too large";
  let best_cost = ref max_int in
  let best_seq = ref [||] in
  let seq = Array.make n 0 in
  let rec explore w acc =
    if acc >= !best_cost then () (* prune: costs only grow *)
    else if w = n then begin
      best_cost := acc;
      best_seq := Array.copy seq
    end
    else
      for rank = 0 to m - 1 do
        seq.(w) <- rank;
        let move = if w = 0 then 0 else dist seq.(w - 1) rank in
        explore (w + 1) (acc + move + vectors.(w).(rank))
      done
  in
  explore 0 0;
  (!best_cost, !best_seq)

let optimal_cost mesh trace ~data =
  let windows = Array.of_list (Reftrace.Trace.windows trace) in
  let vectors = Array.map (fun w -> Cost.cost_vector mesh w ~data) windows in
  optimal_cost_of ~vectors ~dist:(Pim.Mesh.distance mesh)
    ~m:(Pim.Mesh.size mesh) ~n:(Array.length windows)

let optimal_cost_in problem ~data =
  Problem.prefetch_data problem ~data;
  let n = Problem.n_windows problem in
  let vectors =
    Array.init n (fun w -> Problem.cost_vector problem ~window:w ~data)
  in
  optimal_cost_of ~vectors
    ~dist:(Problem.distance problem)
    ~m:(Pim.Mesh.size (Problem.mesh problem))
    ~n

let optimal_static_cost mesh trace ~data =
  let merged = Reftrace.Trace.merged trace in
  let v = Cost.cost_vector mesh merged ~data in
  let best = ref 0 in
  for rank = 1 to Array.length v - 1 do
    if v.(rank) < v.(!best) then best := rank
  done;
  (v.(!best), !best)

let total_optimal_cost_in problem =
  let space = Problem.space problem in
  (* per-datum enumerations are independent: fan out, merge by index *)
  let costs =
    Engine.map
      ~jobs:(Problem.jobs problem)
      (Problem.n_data problem)
      (fun data ->
        Reftrace.Data_space.volume_of space data
        * fst (optimal_cost_in problem ~data))
  in
  Array.fold_left ( + ) 0 costs

let total_optimal_cost mesh trace =
  total_optimal_cost_in (Problem.create mesh trace)
