let run ?capacity ?(theta = 2.) ?initial mesh trace =
  if theta <= 0. then invalid_arg "Online.run: theta must be positive";
  let space = Reftrace.Trace.space trace in
  let n_data = Reftrace.Data_space.size space in
  let n_windows = Reftrace.Trace.n_windows trace in
  let initial =
    match initial with
    | Some p ->
        if Array.length p <> n_data then
          invalid_arg "Online.run: initial placement has the wrong length";
        Array.iteri
          (fun d rank ->
            if rank < 0 || rank >= Pim.Mesh.size mesh then
              invalid_arg
                (Printf.sprintf "Online.run: datum %d at invalid rank %d" d
                   rank))
          p;
        Array.copy p
    | None -> Baseline.row_wise mesh space
  in
  (match capacity with
  | Some c ->
      if c * Pim.Mesh.size mesh < n_data then
        invalid_arg
          (Printf.sprintf
             "Online.run: %d data cannot fit in %d processors of capacity %d"
             n_data (Pim.Mesh.size mesh) c);
      (* the imposed layout itself must fit *)
      let load = Array.make (Pim.Mesh.size mesh) 0 in
      Array.iter (fun r -> load.(r) <- load.(r) + 1) initial;
      Array.iteri
        (fun rank l ->
          if l > c then
            invalid_arg
              (Printf.sprintf
                 "Online.run: initial placement packs %d > %d data at rank %d"
                 l c rank))
        load
  | None -> ());
  let schedule = Schedule.create mesh ~n_windows ~n_data in
  let current = Array.copy initial in
  List.iteri
    (fun w window ->
      if w > 0 then begin
        (* one fresh memory per window, pre-filled with the carried data *)
        let memory =
          match capacity with
          | None -> Pim.Memory.unbounded mesh
          | Some c -> Pim.Memory.create mesh ~capacity:c
        in
        Array.iter
          (fun rank ->
            let ok = Pim.Memory.allocate memory rank in
            assert ok)
          current;
        List.iter
          (fun data ->
            let here = current.(data) in
            let stay = Cost.reference_cost mesh window ~data ~center:here in
            Pim.Memory.release memory here;
            let candidates = Processor_list.for_data mesh window ~data in
            let best =
              match Processor_list.first_available memory candidates with
              | Some rank -> rank
              | None -> here
            in
            let go = Cost.reference_cost mesh window ~data ~center:best in
            let move = Pim.Mesh.distance mesh here best in
            let chosen =
              if
                best <> here
                && float_of_int (stay - go) *. theta > float_of_int move
              then best
              else here
            in
            let ok = Pim.Memory.allocate memory chosen in
            assert ok;
            current.(data) <- chosen)
          (Ordering.by_window_references window)
      end;
      Array.iteri
        (fun data rank -> Schedule.set_center schedule ~window:w ~data rank)
        current)
    (Reftrace.Trace.windows trace);
  schedule
