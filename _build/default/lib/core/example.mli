(** The paper's Section 3.3 worked example, rebuilt.

    Figure 1 of the paper shows one datum [D] on a 4×4 array over four
    execution windows whose hot region drifts; SCDS pins D at one processor,
    LOMCDS chases each window's local optimum, and GOMCDS finds the cheaper
    middle course. The OCR of the paper loses the numeric reference counts,
    so this module rebuilds an example with the same qualitative structure
    (see DESIGN.md §4) and exposes the three center sequences and costs. *)

(** The 4×4 mesh of the example. *)
val mesh : Pim.Mesh.t

(** The single-datum, four-window trace. *)
val trace : Reftrace.Trace.t

(** Id of the datum [D]. *)
val data : int

type outcome = {
  algorithm : string;
  centers : Pim.Coord.t array;  (** per-window location of [D] *)
  reference : int;
  movement : int;
  total : int;
}

(** [scds ()], [lomcds ()], [gomcds ()] — the three schedules of §3.3. *)
val scds : unit -> outcome

val lomcds : unit -> outcome
val gomcds : unit -> outcome

(** [all ()] is the three outcomes in the paper's order. *)
val all : unit -> outcome list

val pp_outcome : Format.formatter -> outcome -> unit
