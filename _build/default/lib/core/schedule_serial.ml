let header = "# pim-sched schedule v1"

let to_string schedule =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf header;
  Buffer.add_char buf '\n';
  let mesh = Schedule.mesh schedule in
  Buffer.add_string buf
    (Printf.sprintf "%s %d %d\n"
       (if Pim.Mesh.wraps mesh then "torus" else "mesh")
       (Pim.Mesh.rows mesh) (Pim.Mesh.cols mesh));
  Buffer.add_string buf
    (Printf.sprintf "shape %d %d\n"
       (Schedule.n_windows schedule)
       (Schedule.n_data schedule));
  for w = 0 to Schedule.n_windows schedule - 1 do
    Buffer.add_string buf (Printf.sprintf "w %d" w);
    for data = 0 to Schedule.n_data schedule - 1 do
      Buffer.add_char buf ' ';
      Buffer.add_string buf
        (string_of_int (Schedule.center schedule ~window:w ~data))
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

type state = {
  mutable mesh : Pim.Mesh.t option;
  mutable schedule : Schedule.t option;
  mutable seen : int;
}

let fail lineno msg =
  failwith (Printf.sprintf "Schedule_serial.of_string: line %d: %s" lineno msg)

let parse_line st lineno line =
  match String.split_on_char ' ' (String.trim line) with
  | [ "" ] -> ()
  | word :: _ when String.length word > 0 && word.[0] = '#' -> ()
  | [ ("mesh" | "torus") as kind; rows; cols ] -> (
      if st.mesh <> None then fail lineno "duplicate mesh declaration";
      match (int_of_string_opt rows, int_of_string_opt cols) with
      | Some rows, Some cols when rows > 0 && cols > 0 ->
          st.mesh <-
            Some
              (if kind = "torus" then Pim.Mesh.torus ~rows ~cols
               else Pim.Mesh.create ~rows ~cols)
      | _ -> fail lineno "malformed mesh dimensions")
  | [ "shape"; windows; data ] -> (
      match (st.mesh, int_of_string_opt windows, int_of_string_opt data) with
      | None, _, _ -> fail lineno "shape before mesh"
      | Some mesh, Some n_windows, Some n_data
        when n_windows > 0 && n_data > 0 ->
          st.schedule <- Some (Schedule.create mesh ~n_windows ~n_data)
      | _ -> fail lineno "malformed shape")
  | "w" :: index :: ranks -> (
      match (st.schedule, int_of_string_opt index) with
      | None, _ -> fail lineno "window row before shape"
      | Some schedule, Some w ->
          if w <> st.seen then
            fail lineno (Printf.sprintf "expected window %d, got %d" st.seen w);
          if List.length ranks <> Schedule.n_data schedule then
            fail lineno
              (Printf.sprintf "expected %d ranks, got %d"
                 (Schedule.n_data schedule)
                 (List.length ranks));
          List.iteri
            (fun data rank ->
              match int_of_string_opt rank with
              | Some rank -> (
                  try Schedule.set_center schedule ~window:w ~data rank
                  with Invalid_argument msg -> fail lineno msg)
              | None -> fail lineno "malformed rank")
            ranks;
          st.seen <- st.seen + 1
      | Some _, None -> fail lineno "malformed window index")
  | _ -> fail lineno (Printf.sprintf "unrecognized line %S" line)

let of_string s =
  let st = { mesh = None; schedule = None; seen = 0 } in
  List.iteri (fun i line -> parse_line st (i + 1) line)
    (String.split_on_char '\n' s);
  match st.schedule with
  | None -> failwith "Schedule_serial.of_string: no schedule found"
  | Some schedule ->
      if st.seen <> Schedule.n_windows schedule then
        failwith
          (Printf.sprintf
             "Schedule_serial.of_string: %d of %d windows present" st.seen
             (Schedule.n_windows schedule));
      schedule

let save schedule path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string schedule))

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      of_string (really_input_string ic n))
