(** The paper's communication cost model.

    The cost of a processor's reference to a datum stored at [center] is the
    x-y routing distance between them; the total communication cost of a
    datum in a window is Σ count(p) · dist(center, p) over the window's
    processor reference string. Moving a datum between two consecutive
    windows' centers costs their distance (unit data volume — the paper
    keeps one copy of each datum and charges one time unit per hop). *)

(** [reference_cost mesh window ~data ~center] is the total cost of serving
    every reference to [data] in [window] from [center]. *)
val reference_cost :
  Pim.Mesh.t -> Reftrace.Window.t -> data:int -> center:int -> int

(** [cost_vector mesh window ~data] tabulates {!reference_cost} for every
    candidate center; index = processor rank. *)
val cost_vector : Pim.Mesh.t -> Reftrace.Window.t -> data:int -> int array

(** [local_optimal_center mesh window ~data] is the paper's Definition 4:
    the minimum-cost center for [data] in [window] (smallest rank on ties,
    for determinism). For a datum with no references every processor costs 0
    and rank 0 is returned. *)
val local_optimal_center :
  Pim.Mesh.t -> Reftrace.Window.t -> data:int -> int

(** [movement_cost mesh ~from_ ~to_] is the cost of migrating one datum. *)
val movement_cost : Pim.Mesh.t -> from_:int -> to_:int -> int

(** [path_cost mesh window_profiles centers] is the full per-datum schedule
    cost: reference cost of each window (paired with its center) plus
    movement between consecutive centers. [window_profiles] and [centers]
    must have equal length. Used by grouping and the brute-force optimum.
    @raise Invalid_argument on length mismatch or empty input. *)
val path_cost :
  Pim.Mesh.t -> (Reftrace.Window.t * int) list -> data:int -> int
