let lower_bound mesh trace =
  let space = Reftrace.Trace.space trace in
  let n = Reftrace.Data_space.size space in
  let total = ref 0 in
  for data = 0 to n - 1 do
    total :=
      !total
      + Reftrace.Data_space.volume_of space data
        * fst (Gomcds.optimal_centers mesh trace ~data)
  done;
  !total

let static_lower_bound mesh trace =
  let merged = Reftrace.Trace.merged trace in
  let space = Reftrace.Trace.space trace in
  let n = Reftrace.Data_space.size space in
  let total = ref 0 in
  for data = 0 to n - 1 do
    let v = Cost.cost_vector mesh merged ~data in
    total :=
      !total
      + Reftrace.Data_space.volume_of space data
        * Array.fold_left min max_int v
  done;
  !total

let gap ~bound ~cost =
  if bound = 0 then 0.
  else float_of_int (cost - bound) /. float_of_int bound *. 100.
