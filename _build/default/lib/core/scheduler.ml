type algorithm =
  | Row_wise
  | Column_wise
  | Block_2d
  | Cyclic
  | Random of int
  | Scds
  | Lomcds
  | Gomcds
  | Lomcds_grouped
  | Gomcds_grouped
  | Gomcds_refined
  | Best_refined

let all =
  [
    Row_wise;
    Column_wise;
    Block_2d;
    Cyclic;
    Random 42;
    Scds;
    Lomcds;
    Gomcds;
    Lomcds_grouped;
    Gomcds_grouped;
    Gomcds_refined;
    Best_refined;
  ]

let name = function
  | Row_wise -> "row-wise"
  | Column_wise -> "column-wise"
  | Block_2d -> "block-2d"
  | Cyclic -> "cyclic"
  | Random _ -> "random"
  | Scds -> "scds"
  | Lomcds -> "lomcds"
  | Gomcds -> "gomcds"
  | Lomcds_grouped -> "lomcds-grouped"
  | Gomcds_grouped -> "gomcds-grouped"
  | Gomcds_refined -> "gomcds-refined"
  | Best_refined -> "best-refined"

let of_name = function
  | "row-wise" -> Row_wise
  | "column-wise" -> Column_wise
  | "block-2d" -> Block_2d
  | "cyclic" -> Cyclic
  | "random" -> Random 42
  | "scds" -> Scds
  | "lomcds" -> Lomcds
  | "gomcds" -> Gomcds
  | "lomcds-grouped" -> Lomcds_grouped
  | "gomcds-grouped" -> Gomcds_grouped
  | "gomcds-refined" -> Gomcds_refined
  | "best-refined" -> Best_refined
  | s -> invalid_arg (Printf.sprintf "Scheduler.of_name: unknown %S" s)

let run ?capacity algorithm mesh trace =
  let space = Reftrace.Trace.space trace in
  let static placement = Baseline.schedule placement mesh trace in
  match algorithm with
  | Row_wise -> static (Baseline.row_wise mesh space)
  | Column_wise -> static (Baseline.column_wise mesh space)
  | Block_2d -> static (Baseline.block_2d mesh space)
  | Cyclic -> static (Baseline.cyclic mesh space)
  | Random seed -> static (Baseline.random ~seed mesh space)
  | Scds -> Scds.run ?capacity mesh trace
  | Lomcds -> Lomcds.run ?capacity mesh trace
  | Gomcds -> Gomcds.run ?capacity mesh trace
  | Lomcds_grouped -> Grouping.run ?capacity ~centers:`Local mesh trace
  | Gomcds_grouped -> Grouping.run ?capacity ~centers:`Global mesh trace
  | Gomcds_refined -> Refine.gomcds_refined ?capacity mesh trace
  | Best_refined -> Refine.best ?capacity mesh trace

let evaluate ?capacity algorithm mesh trace =
  let schedule = run ?capacity algorithm mesh trace in
  (schedule, Schedule.cost schedule trace)

let improvement ~baseline ~cost =
  if baseline = 0 then 0.
  else float_of_int (baseline - cost) /. float_of_int baseline *. 100.
