let sort_desc weights ids =
  List.sort
    (fun a b ->
      let c = Int.compare (weights b) (weights a) in
      if c <> 0 then c else Int.compare a b)
    ids

let by_window_references window =
  Reftrace.Window.referenced_data window
  |> sort_desc (fun d -> Reftrace.Window.references window d)

let by_total_references trace =
  let merged = Reftrace.Trace.merged trace in
  let space = Reftrace.Trace.space trace in
  let n = Reftrace.Data_space.size space in
  List.init n Fun.id
  |> sort_desc (fun d ->
         Reftrace.Data_space.volume_of space d
         * Reftrace.Window.references merged d)
