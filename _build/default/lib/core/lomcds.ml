let local_centers mesh trace ~data =
  Reftrace.Trace.windows trace
  |> List.map (fun window ->
         if Reftrace.Window.references window data > 0 then
           Some (Cost.local_optimal_center mesh window ~data)
         else None)
  |> Array.of_list

(* First window in which each datum is referenced; [n_windows] if never. *)
let first_reference_window trace ~n_data =
  let first = Array.make n_data (Reftrace.Trace.n_windows trace) in
  List.iteri
    (fun w window ->
      List.iter
        (fun data -> if first.(data) > w then first.(data) <- w)
        (Reftrace.Window.referenced_data window))
    (Reftrace.Trace.windows trace);
  first

let fresh_memory ?capacity mesh ~n_data =
  match capacity with
  | None -> Pim.Memory.unbounded mesh
  | Some c ->
      if c * Pim.Mesh.size mesh < n_data then
        invalid_arg
          (Printf.sprintf
             "Lomcds.run: %d data cannot fit in %d processors of capacity %d"
             n_data (Pim.Mesh.size mesh) c);
      Pim.Memory.create mesh ~capacity:c

let run ?capacity mesh trace =
  let n_data = Reftrace.Data_space.size (Reftrace.Trace.space trace) in
  let n_windows = Reftrace.Trace.n_windows trace in
  let schedule = Schedule.create mesh ~n_windows ~n_data in
  let first = first_reference_window trace ~n_data in
  (* Initial placement: each datum goes where its first referencing window
     wants it; data never referenced fall back to the merged profile (all
     zeros -> lowest ranks, spread by capacity). Assignment order: earlier
     first window, then heavier in that window. *)
  let initial = Array.make n_data 0 in
  let init_memory = fresh_memory ?capacity mesh ~n_data in
  let merged = Reftrace.Trace.merged trace in
  let init_order =
    List.init n_data Fun.id
    |> List.sort (fun a b ->
           let c = Int.compare first.(a) first.(b) in
           if c <> 0 then c
           else
             let window w d =
               if w >= n_windows then Reftrace.Window.references merged d
               else
                 Reftrace.Window.references (Reftrace.Trace.window trace w) d
             in
             let c = Int.compare (window first.(b) b) (window first.(a) a) in
             if c <> 0 then c else Int.compare a b)
  in
  List.iter
    (fun data ->
      let window =
        if first.(data) >= n_windows then merged
        else Reftrace.Trace.window trace first.(data)
      in
      let candidates = Processor_list.for_data mesh window ~data in
      initial.(data) <- Processor_list.assign init_memory candidates)
    init_order;
  (* Walk the windows. [current.(d)] is where datum [d] sits entering the
     window; referenced data are reassigned to (as close as possible to)
     their local optimal center. *)
  let current = Array.copy initial in
  List.iteri
    (fun w window ->
      let memory = fresh_memory ?capacity mesh ~n_data in
      Array.iter
        (fun rank ->
          let ok = Pim.Memory.allocate memory rank in
          assert ok)
        current;
      List.iter
        (fun data ->
          Pim.Memory.release memory current.(data);
          let candidates = Processor_list.for_data mesh window ~data in
          current.(data) <- Processor_list.assign memory candidates)
        (Ordering.by_window_references window);
      Array.iteri
        (fun data rank -> Schedule.set_center schedule ~window:w ~data rank)
        current)
    (Reftrace.Trace.windows trace);
  schedule
