(** Topological ordering of directed graphs (Kahn's algorithm). *)

(** [sort g] is [Some order] — every edge goes forward in [order] — or
    [None] when [g] contains a cycle. *)
val sort : Digraph.t -> int list option

(** [sort_exn g] is like {!sort}. @raise Invalid_argument on a cycle. *)
val sort_exn : Digraph.t -> int list

(** [is_dag g] is [true] iff [g] is acyclic. *)
val is_dag : Digraph.t -> bool
