(** Directed graphs with integer nodes and integer edge weights.

    A small adjacency-list representation, sufficient for the GOMCDS
    cost-graph (a layered DAG of [n_windows * n_processors + 2] nodes) and
    for the generic shortest-path algorithms in {!Shortest_path}. *)

type t

(** [create ~n_nodes] is an edgeless graph over nodes [0 .. n_nodes - 1].
    @raise Invalid_argument if [n_nodes <= 0]. *)
val create : n_nodes:int -> t

val n_nodes : t -> int
val n_edges : t -> int

(** [add_edge t ~src ~dst ~weight] appends a directed edge. Parallel edges
    are permitted. @raise Invalid_argument on out-of-range endpoints. *)
val add_edge : t -> src:int -> dst:int -> weight:int -> unit

(** [succ t v] is the list of [(dst, weight)] out-edges of [v], in insertion
    order. *)
val succ : t -> int -> (int * int) list

(** [iter_succ t v f] applies [f dst weight] to every out-edge of [v]. *)
val iter_succ : t -> int -> (int -> int -> unit) -> unit

(** [in_degrees t] is the in-degree of every node. *)
val in_degrees : t -> int array

(** [has_negative_weight t] is [true] if any edge weight is negative. *)
val has_negative_weight : t -> bool

val pp : Format.formatter -> t -> unit
