let sort g =
  let n = Digraph.n_nodes g in
  let deg = Digraph.in_degrees g in
  let queue = Queue.create () in
  Array.iteri (fun v d -> if d = 0 then Queue.add v queue) deg;
  let order = ref [] in
  let visited = ref 0 in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    order := v :: !order;
    incr visited;
    Digraph.iter_succ g v (fun dst _ ->
        deg.(dst) <- deg.(dst) - 1;
        if deg.(dst) = 0 then Queue.add dst queue)
  done;
  if !visited = n then Some (List.rev !order) else None

let sort_exn g =
  match sort g with
  | Some order -> order
  | None -> invalid_arg "Topo.sort_exn: graph has a cycle"

let is_dag g = Option.is_some (sort g)
