type t = {
  adj : (int * int) list array; (* reversed insertion order; succ reverses *)
  mutable n_edges : int;
  mutable negative : bool;
}

let create ~n_nodes =
  if n_nodes <= 0 then invalid_arg "Digraph.create: n_nodes must be positive";
  { adj = Array.make n_nodes []; n_edges = 0; negative = false }

let n_nodes t = Array.length t.adj
let n_edges t = t.n_edges

let check t v =
  if v < 0 || v >= n_nodes t then
    invalid_arg (Printf.sprintf "Digraph: node %d out of range" v)

let add_edge t ~src ~dst ~weight =
  check t src;
  check t dst;
  t.adj.(src) <- (dst, weight) :: t.adj.(src);
  t.n_edges <- t.n_edges + 1;
  if weight < 0 then t.negative <- true

let succ t v =
  check t v;
  List.rev t.adj.(v)

let iter_succ t v f =
  check t v;
  List.iter (fun (dst, w) -> f dst w) t.adj.(v)

let in_degrees t =
  let deg = Array.make (n_nodes t) 0 in
  Array.iter
    (fun edges -> List.iter (fun (dst, _) -> deg.(dst) <- deg.(dst) + 1) edges)
    t.adj;
  deg

let has_negative_weight t = t.negative

let pp fmt t =
  Format.fprintf fmt "digraph(%d nodes, %d edges)" (n_nodes t) (n_edges t)
