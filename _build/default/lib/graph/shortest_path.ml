type result = { dist : int array; pred : int array }

(* A simple binary min-heap of (priority, node) pairs. Stale entries are
   skipped at pop time (lazy deletion), the standard trick for Dijkstra
   without a decrease-key operation. *)
module Heap = struct
  type t = {
    mutable arr : (int * int) array;
    mutable len : int;
  }

  let create () = { arr = Array.make 16 (0, 0); len = 0 }

  let swap h i j =
    let t = h.arr.(i) in
    h.arr.(i) <- h.arr.(j);
    h.arr.(j) <- t

  let push h prio node =
    if h.len = Array.length h.arr then begin
      let bigger = Array.make (2 * h.len) (0, 0) in
      Array.blit h.arr 0 bigger 0 h.len;
      h.arr <- bigger
    end;
    h.arr.(h.len) <- (prio, node);
    h.len <- h.len + 1;
    let i = ref (h.len - 1) in
    while !i > 0 && fst h.arr.((!i - 1) / 2) > fst h.arr.(!i) do
      swap h ((!i - 1) / 2) !i;
      i := (!i - 1) / 2
    done

  let pop h =
    if h.len = 0 then None
    else begin
      let top = h.arr.(0) in
      h.len <- h.len - 1;
      h.arr.(0) <- h.arr.(h.len);
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < h.len && fst h.arr.(l) < fst h.arr.(!smallest) then
          smallest := l;
        if r < h.len && fst h.arr.(r) < fst h.arr.(!smallest) then
          smallest := r;
        if !smallest <> !i then begin
          swap h !i !smallest;
          i := !smallest
        end
        else continue := false
      done;
      Some top
    end
end

let check_source g source =
  if source < 0 || source >= Digraph.n_nodes g then
    invalid_arg "Shortest_path: source out of range"

let dijkstra g ~source =
  check_source g source;
  if Digraph.has_negative_weight g then
    invalid_arg "Shortest_path.dijkstra: negative edge weight";
  let n = Digraph.n_nodes g in
  let dist = Array.make n max_int in
  let pred = Array.make n (-1) in
  let settled = Array.make n false in
  let heap = Heap.create () in
  dist.(source) <- 0;
  Heap.push heap 0 source;
  let rec loop () =
    match Heap.pop heap with
    | None -> ()
    | Some (d, v) ->
        if not settled.(v) then begin
          settled.(v) <- true;
          assert (d = dist.(v));
          Digraph.iter_succ g v (fun dst w ->
              if (not settled.(dst)) && dist.(v) + w < dist.(dst) then begin
                dist.(dst) <- dist.(v) + w;
                pred.(dst) <- v;
                Heap.push heap dist.(dst) dst
              end)
        end;
        loop ()
  in
  loop ();
  { dist; pred }

let dag g ~source =
  check_source g source;
  let order = Topo.sort_exn g in
  let n = Digraph.n_nodes g in
  let dist = Array.make n max_int in
  let pred = Array.make n (-1) in
  dist.(source) <- 0;
  List.iter
    (fun v ->
      if dist.(v) <> max_int then
        Digraph.iter_succ g v (fun dst w ->
            if dist.(v) + w < dist.(dst) then begin
              dist.(dst) <- dist.(v) + w;
              pred.(dst) <- v
            end))
    order;
  { dist; pred }

let distance r ~target =
  if target < 0 || target >= Array.length r.dist then
    invalid_arg "Shortest_path.distance: target out of range";
  if r.dist.(target) = max_int then None else Some r.dist.(target)

let path r ~target =
  match distance r ~target with
  | None -> None
  | Some _ ->
      let rec walk v acc =
        if r.pred.(v) = -1 then v :: acc else walk r.pred.(v) (v :: acc)
      in
      Some (walk target [])
