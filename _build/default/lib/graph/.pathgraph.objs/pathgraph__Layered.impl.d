lib/graph/layered.ml: Array Digraph
