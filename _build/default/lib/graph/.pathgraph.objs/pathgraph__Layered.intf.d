lib/graph/layered.mli: Digraph
