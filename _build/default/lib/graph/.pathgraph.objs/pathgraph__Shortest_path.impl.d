lib/graph/shortest_path.ml: Array Digraph List Topo
