lib/graph/topo.ml: Array Digraph List Option Queue
