(** Single-source shortest paths.

    Two engines: Dijkstra (non-negative weights, binary-heap based) and a
    linear-time DAG relaxation over a topological order. The GOMCDS
    cost-graph is a DAG with non-negative weights, so both apply — the test
    suite uses their agreement as a cross-check. *)

type result = {
  dist : int array;  (** [dist.(v)] = shortest distance, [max_int] if
                         unreachable *)
  pred : int array;  (** predecessor on a shortest path, [-1] at the source
                         and for unreachable nodes *)
}

(** [dijkstra g ~source] computes shortest distances from [source].
    @raise Invalid_argument if [g] has a negative edge weight or [source] is
    out of range. *)
val dijkstra : Digraph.t -> source:int -> result

(** [dag g ~source] relaxes edges in topological order.
    @raise Invalid_argument if [g] is cyclic or [source] out of range. *)
val dag : Digraph.t -> source:int -> result

(** [path r ~target] reconstructs the node list from the source to [target]
    (inclusive); [None] if [target] is unreachable. *)
val path : result -> target:int -> int list option

(** [distance r ~target] is [Some d] or [None] when unreachable. *)
val distance : result -> target:int -> int option
