(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Tables 1 and 2, the Section 3.3 / Figure 1 worked example),
   characterizes the workloads, runs the ablations documented in DESIGN.md
   (A1 window granularity, A2 memory headroom, A3 mesh size, A5 topology,
   A4 refinement + lower-bound gap, A6 imposed-placement adaptation,
   A7 read replication, A8 structure vs search, A9 online hysteresis,
   A10 iteration partition, plus the congestion/makespan/energy study),
   and times the schedulers with Bechamel. *)

let mesh = Pim.Mesh.square 4
let sizes = [ 8; 16; 32 ]

(* Quick mode (--quick or BENCH_QUICK=1): the worked example plus the
   machine-readable snapshot only — the CI smoke path. *)
let quick =
  Array.exists (fun a -> a = "--quick") Sys.argv
  || Sys.getenv_opt "BENCH_QUICK" <> None

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let total ?capacity algorithm mesh trace =
  Sched.Schedule.total_cost
    (Sched.Scheduler.run ?capacity algorithm mesh trace)
    trace

(* ------------------------------------------------------------------ *)
(* Figure 1 / Section 3.3 worked example                                *)
(* ------------------------------------------------------------------ *)

let figure1 () =
  section "Figure 1 / Section 3.3: worked example (one datum, 4x4 array)";
  Format.printf "%a@." Reftrace.Trace.pp Sched.Example.trace;
  List.iteri
    (fun i window ->
      Printf.printf "references to D in execution window %d:\n" i;
      print_string
        (Sched.Viz.window_heatmap Sched.Example.mesh window ~data:0))
    (Reftrace.Trace.windows Sched.Example.trace);
  List.iter
    (fun o -> Format.printf "%a@." Sched.Example.pp_outcome o)
    (Sched.Example.all ());
  print_endline
    "(paper: SCDS stays put, LOMCDS chases each window's optimum, GOMCDS\n\
    \ pays one small move and wins -- same structure as the original figure)"

(* ------------------------------------------------------------------ *)
(* Tables 1 and 2                                                      *)
(* ------------------------------------------------------------------ *)

let table_rows ~algos =
  List.concat_map
    (fun bench ->
      List.map
        (fun n ->
          let trace = Workloads.Benchmarks.trace bench ~n mesh in
          let capacity = Workloads.Benchmarks.capacity bench ~n mesh in
          (* one context per instance: baseline and every column share its
             cost-vector cache *)
          let problem =
            Sched.Problem.create
              ~policy:(Sched.Problem.Bounded capacity) mesh trace
          in
          let cost a =
            Sched.Schedule.total_cost (Sched.Scheduler.solve problem a) trace
          in
          let baseline = cost Sched.Scheduler.Row_wise in
          {
            Sched.Report.benchmark = Workloads.Benchmarks.label bench;
            size = Printf.sprintf "%dx%d" n n;
            baseline;
            entries = List.map (fun a -> Sched.Report.entry ~baseline (cost a)) algos;
          })
        sizes)
    Workloads.Benchmarks.all

let tables () =
  section "Table 1: total communication cost before grouping";
  print_string
    (Sched.Report.render
       ~title:
         "Processor array = 4x4, memory = 2x minimum, S.F. = row-wise \
          distribution"
       ~columns:[ "SCDS"; "LOMCDS"; "GOMCDS" ]
       (table_rows ~algos:Sched.Scheduler.[ Scds; Lomcds; Gomcds ]));
  section "Table 2: total communication cost after grouping (Algorithm 3)";
  print_string
    (Sched.Report.render
       ~title:
         "Grouping computed per datum; LOMCDS/GOMCDS columns use grouped \
          windows (SCDS is grouping-invariant)"
       ~columns:[ "SCDS"; "LOMCDS"; "GOMCDS" ]
       (table_rows
          ~algos:Sched.Scheduler.[ Scds; Lomcds_grouped; Gomcds_grouped ]))

(* ------------------------------------------------------------------ *)
(* Workload characterization                                           *)
(* ------------------------------------------------------------------ *)

let characterization () =
  section "Workload characterization (16x16 data, 4x4 array)";
  Printf.printf "%-9s %8s %9s %9s %7s | %9s %9s\n" "workload" "drift"
    "entropy" "sharing" "reuse" "G vs SF" "G vs SCDS";
  let show label trace =
    let p = Reftrace.Stats.profile mesh trace in
    let capacity =
      Pim.Memory.capacity_for
        ~data_count:(Reftrace.Data_space.size (Reftrace.Trace.space trace))
        ~mesh ~headroom:2
    in
    let sf = total ~capacity Sched.Scheduler.Row_wise mesh trace in
    let scds = total ~capacity Sched.Scheduler.Scds mesh trace in
    let g = total ~capacity Sched.Scheduler.Gomcds mesh trace in
    Printf.printf "%-9s %8.2f %8.2fb %9.2f %7.2f | %8.1f%% %8.1f%%\n" label
      p.Reftrace.Stats.drift p.Reftrace.Stats.entropy
      p.Reftrace.Stats.sharing_degree p.Reftrace.Stats.reuse
      (Sched.Scheduler.improvement ~baseline:sf ~cost:g)
      (Sched.Scheduler.improvement ~baseline:scds ~cost:g)
  in
  List.iter
    (fun b ->
      show
        ("bench " ^ Workloads.Benchmarks.label b)
        (Workloads.Benchmarks.trace b ~n:16 mesh))
    Workloads.Benchmarks.all;
  show "stencil" (Workloads.Stencil.trace ~n:16 ~sweeps:8 mesh);
  show "tc" (Workloads.Transitive_closure.trace ~n:16 mesh);
  show "fft" (Workloads.Fft_transpose.trace ~n:16 mesh);
  show "cholesky" (Workloads.Cholesky.trace ~n:16 mesh);
  show "reduce" (Workloads.Reduction.trace ~n:16 ~bins:16 mesh);
  show "wavefront" (Workloads.Wavefront.trace ~n:16 mesh);
  print_endline
    "(drift = mean hot-spot displacement between windows; entropy = spread\n\
    \ of references over processors. \"G vs SCDS\" isolates the movement\n\
    \ benefit: zero-drift workloads gain nothing over a good static\n\
    \ placement)"

(* ------------------------------------------------------------------ *)
(* Ablation A1: execution-window granularity                           *)
(* ------------------------------------------------------------------ *)

let ablation_window_size () =
  section "Ablation A1: window granularity (LU 16x16, 4x4 array)";
  let t = Workloads.Lu.trace ~n:16 mesh in
  let events = Reftrace.Window_builder.events_of_trace t in
  let space = Reftrace.Trace.space t in
  let capacity =
    Workloads.Benchmarks.capacity Workloads.Benchmarks.B1 ~n:16 mesh
  in
  Printf.printf "%8s %8s %10s %10s %10s\n" "steps/w" "windows" "SCDS" "LOMCDS"
    "GOMCDS";
  List.iter
    (fun k ->
      let coarse =
        Reftrace.Window_builder.fixed ~steps_per_window:k space events
      in
      Printf.printf "%8d %8d %10d %10d %10d\n" k
        (Reftrace.Trace.n_windows coarse)
        (total ~capacity Sched.Scheduler.Scds mesh coarse)
        (total ~capacity Sched.Scheduler.Lomcds mesh coarse)
        (total ~capacity Sched.Scheduler.Gomcds mesh coarse))
    [ 1; 2; 4; 8; 15 ];
  print_endline
    "(fine windows expose more movement opportunities; one giant window\n\
    \ collapses every scheduler onto SCDS)"

(* ------------------------------------------------------------------ *)
(* Ablation A2: memory headroom                                        *)
(* ------------------------------------------------------------------ *)

let ablation_headroom () =
  section "Ablation A2: memory headroom (matrix squaring 16x16)";
  let t = Workloads.Matmul.trace ~n:16 mesh in
  let data_count = Reftrace.Data_space.size (Reftrace.Trace.space t) in
  Printf.printf "%9s %9s %10s %10s %10s\n" "headroom" "capacity" "SCDS"
    "LOMCDS" "GOMCDS";
  List.iter
    (fun headroom ->
      let capacity = Pim.Memory.capacity_for ~data_count ~mesh ~headroom in
      Printf.printf "%9d %9d %10d %10d %10d\n" headroom capacity
        (total ~capacity Sched.Scheduler.Scds mesh t)
        (total ~capacity Sched.Scheduler.Lomcds mesh t)
        (total ~capacity Sched.Scheduler.Gomcds mesh t))
    [ 1; 2; 3; 4 ];
  Printf.printf "%9s %9s %10d %10d %10d\n" "inf" "-"
    (total Sched.Scheduler.Scds mesh t)
    (total Sched.Scheduler.Lomcds mesh t)
    (total Sched.Scheduler.Gomcds mesh t);
  print_endline
    "(tight memories push data off their optimal centers; the paper's 2x\n\
    \ rule is close to the unconstrained optimum)"

(* ------------------------------------------------------------------ *)
(* Ablation A3: mesh size                                              *)
(* ------------------------------------------------------------------ *)

let ablation_mesh_size () =
  section "Ablation A3: processor array size (CODE 16x16)";
  Printf.printf "%6s %10s %10s %10s %10s %8s\n" "mesh" "S.F." "SCDS" "LOMCDS"
    "GOMCDS" "G %";
  List.iter
    (fun side ->
      let m = Pim.Mesh.square side in
      let t = Workloads.Code_kernel.trace ~n:16 m in
      let capacity =
        Pim.Memory.capacity_for ~data_count:256 ~mesh:m ~headroom:2
      in
      let sf = total ~capacity Sched.Scheduler.Row_wise m t in
      let g = total ~capacity Sched.Scheduler.Gomcds m t in
      Printf.printf "%6s %10d %10d %10d %10d %7.1f%%\n"
        (Printf.sprintf "%dx%d" side side)
        sf
        (total ~capacity Sched.Scheduler.Scds m t)
        (total ~capacity Sched.Scheduler.Lomcds m t)
        g
        (Sched.Scheduler.improvement ~baseline:sf ~cost:g))
    [ 2; 4; 8 ];
  print_endline
    "(bigger arrays mean longer routes and more scheduling headroom)"

(* ------------------------------------------------------------------ *)
(* Ablation A5: mesh vs torus topology                                 *)
(* ------------------------------------------------------------------ *)

let ablation_topology () =
  section "Ablation A5: mesh vs torus (16x16 data, 4x4 array)";
  Printf.printf "%-4s %-6s %10s %10s %10s %10s\n" "B." "topo" "S.F." "SCDS"
    "LOMCDS" "GOMCDS";
  List.iter
    (fun bench ->
      List.iter
        (fun (label, m) ->
          let t = Workloads.Benchmarks.trace bench ~n:16 m in
          let capacity = Workloads.Benchmarks.capacity bench ~n:16 m in
          Printf.printf "%-4s %-6s %10d %10d %10d %10d\n"
            (Workloads.Benchmarks.label bench)
            label
            (total ~capacity Sched.Scheduler.Row_wise m t)
            (total ~capacity Sched.Scheduler.Scds m t)
            (total ~capacity Sched.Scheduler.Lomcds m t)
            (total ~capacity Sched.Scheduler.Gomcds m t))
        [ ("mesh", Pim.Mesh.square 4); ("torus", Pim.Mesh.square ~wrap:true 4) ])
    Workloads.Benchmarks.[ B1; B2; B5 ];
  print_endline
    "(wrap-around links shorten worst-case routes; the scheduling gains\n\
    \ persist on both topologies)"

(* ------------------------------------------------------------------ *)
(* Ablation A4: refinement ladder and gap to the lower bound           *)
(* ------------------------------------------------------------------ *)

let ablation_refinement () =
  section "Ablation A4: fixed-point refinement and gap to lower bound (16x16)";
  Printf.printf "%-4s %10s | %10s %8s | %10s %8s | %10s %8s\n" "B."
    "low. bound" "GOMCDS" "gap" "LOM+grp" "gap" "best-ref" "gap";
  List.iter
    (fun bench ->
      let n = 16 in
      let trace = Workloads.Benchmarks.trace bench ~n mesh in
      let capacity = Workloads.Benchmarks.capacity bench ~n mesh in
      let bound = Sched.Bounds.lower_bound_in (Sched.Problem.create mesh trace) in
      let cost a = total ~capacity a mesh trace in
      let g = cost Sched.Scheduler.Gomcds in
      let lg = cost Sched.Scheduler.Lomcds_grouped in
      let br = cost Sched.Scheduler.Best_refined in
      Printf.printf "%-4s %10d | %10d %7.1f%% | %10d %7.1f%% | %10d %7.1f%%\n"
        (Workloads.Benchmarks.label bench)
        bound g
        (Sched.Bounds.gap ~bound ~cost:g)
        lg
        (Sched.Bounds.gap ~bound ~cost:lg)
        br
        (Sched.Bounds.gap ~bound ~cost:br))
    Workloads.Benchmarks.all;
  print_endline
    "(lower bound = sum of per-datum unconstrained optima; best-ref =\n\
    \ portfolio of all constructive schedulers, each refined to a fixed\n\
    \ point under the paper's 2x memory rule)"

(* ------------------------------------------------------------------ *)
(* Ablation A6: run-time adaptation from an imposed placement          *)
(* ------------------------------------------------------------------ *)

let ablation_adaptation () =
  section "Ablation A6: adaptation from an imposed row-wise placement (16x16)";
  Printf.printf "%-4s %12s %10s %10s %11s\n" "B." "imposed-stat" "adaptive"
    "free opt" "recovered";
  List.iter
    (fun bench ->
      let trace = Workloads.Benchmarks.trace bench ~n:16 mesh in
      let initial =
        Sched.Baseline.row_wise mesh (Reftrace.Trace.space trace)
      in
      let r = Sched.Adapt.recovery ~initial mesh trace in
      Printf.printf "%-4s %12d %10d %10d %10.1f%%\n"
        (Workloads.Benchmarks.label bench)
        r.Sched.Adapt.imposed_static r.Sched.Adapt.adaptive
        r.Sched.Adapt.free_optimal
        (100. *. r.Sched.Adapt.recovered))
    Workloads.Benchmarks.all;
  print_endline
    "(even when the initial distribution is dictated by the host, run-time\n\
    \ movement recovers most of the headroom between the imposed placement\n\
    \ and the free optimum — the paper's motivation, quantified)"

(* ------------------------------------------------------------------ *)
(* Ablation A7: read replication (relaxing "one copy of data")         *)
(* ------------------------------------------------------------------ *)

let ablation_replication () =
  section "Ablation A7: read replication (16x16, paper capacity)";
  Printf.printf "%-4s %12s | %10s %10s %10s %10s\n" "B." "1-copy bound"
    "k=1" "k=2" "k=4" "k=8";
  List.iter
    (fun bench ->
      let trace = Workloads.Benchmarks.trace bench ~n:16 mesh in
      let capacity = Workloads.Benchmarks.capacity bench ~n:16 mesh in
      let cost k =
        let r = Sched.Replicated.run ~capacity ~max_copies:k mesh trace in
        (Sched.Replicated.cost r mesh trace).Sched.Replicated.total
      in
      Printf.printf "%-4s %12d | %10d %10d %10d %10d\n"
        (Workloads.Benchmarks.label bench)
        (Sched.Bounds.lower_bound_in (Sched.Problem.create mesh trace))
        (cost 1) (cost 2) (cost 4) (cost 8))
    Workloads.Benchmarks.all;
  print_endline
    "(k = copies allowed per datum; k=1 is plain GOMCDS; replication can\n\
    \ undercut the single-copy lower bound on broadcast-heavy windows,\n\
    \ relaxing the paper's one-copy simplification)"

(* ------------------------------------------------------------------ *)
(* Ablation A8: structure vs search (annealing comparator)             *)
(* ------------------------------------------------------------------ *)

let ablation_annealing () =
  section "Ablation A8: structured DP vs simulated annealing (16x16)";
  Printf.printf "%-4s %10s | %12s %12s %12s | %10s\n" "B." "S.F." "SA 10k"
    "SA 100k" "SA 400k" "GOMCDS";
  List.iter
    (fun bench ->
      let trace = Workloads.Benchmarks.trace bench ~n:16 mesh in
      let capacity = Workloads.Benchmarks.capacity bench ~n:16 mesh in
      let sa iterations =
        let _, stats =
          Sched.Annealing.run ~capacity ~iterations mesh trace
        in
        stats.Sched.Annealing.final_cost
      in
      Printf.printf "%-4s %10d | %12d %12d %12d | %10d\n"
        (Workloads.Benchmarks.label bench)
        (total ~capacity Sched.Scheduler.Row_wise mesh trace)
        (sa 10_000) (sa 100_000) (sa 400_000)
        (total ~capacity Sched.Scheduler.Gomcds mesh trace))
    Workloads.Benchmarks.[ B1; B2; B5 ];
  print_endline
    "(a structure-blind metaheuristic needs orders of magnitude more work\n\
    \ and still trails the shortest-path scheduler -- the cost-graph\n\
    \ structure is doing real work)"

(* ------------------------------------------------------------------ *)
(* Ablation A10: iteration-partition sensitivity                       *)
(* ------------------------------------------------------------------ *)

let ablation_partition () =
  section "Ablation A10: iteration partition (LU 16x16, 4x4 array)";
  Printf.printf "%-12s %10s %10s %10s %10s
" "partition" "S.F." "SCDS"
    "LOMCDS" "GOMCDS";
  List.iter
    (fun partition ->
      let t = Workloads.Lu.trace ~partition ~n:16 mesh in
      let capacity =
        Workloads.Benchmarks.capacity Workloads.Benchmarks.B1 ~n:16 mesh
      in
      Printf.printf "%-12s %10d %10d %10d %10d
"
        (Workloads.Iteration_space.name partition)
        (total ~capacity Sched.Scheduler.Row_wise mesh t)
        (total ~capacity Sched.Scheduler.Scds mesh t)
        (total ~capacity Sched.Scheduler.Lomcds mesh t)
        (total ~capacity Sched.Scheduler.Gomcds mesh t))
    Workloads.Iteration_space.all;
  print_endline
    "(the paper's other pre-stage: how iterations map to processors. The\n\
    \ straight-forward layout is hostage to the partition (3800-9988),\n\
    \ while the data schedulers equalize it away (~2700-3200): good data\n\
    \ scheduling compensates for a bad iteration partition)"

(* ------------------------------------------------------------------ *)
(* Ablation A9: online scheduling with hysteresis                      *)
(* ------------------------------------------------------------------ *)

let ablation_online () =
  section "Ablation A9: online hysteresis vs offline optimum (16x16)";
  Printf.printf "%-4s %10s | %10s %10s %10s %10s | %10s\n" "B." "static"
    "th=0.5" "th=1" "th=2" "th=8" "offline";
  List.iter
    (fun bench ->
      let trace = Workloads.Benchmarks.trace bench ~n:16 mesh in
      let initial =
        Sched.Baseline.row_wise mesh (Reftrace.Trace.space trace)
      in
      let online theta =
        Sched.Schedule.total_cost
          (Sched.Online.run ~theta ~initial mesh trace)
          trace
      in
      let r = Sched.Adapt.recovery ~initial mesh trace in
      Printf.printf "%-4s %10d | %10d %10d %10d %10d | %10d\n"
        (Workloads.Benchmarks.label bench)
        r.Sched.Adapt.imposed_static (online 0.5) (online 1.) (online 2.)
        (online 8.) r.Sched.Adapt.adaptive)
    Workloads.Benchmarks.all;
  print_endline
    "(online sees each window only as it executes; theta = assumed\n\
    \ persistence of the current pattern. Moderate hysteresis lands within\n\
    \ a small factor of the clairvoyant offline schedule)"

(* ------------------------------------------------------------------ *)
(* Congestion study (simulator-measured)                               *)
(* ------------------------------------------------------------------ *)

let congestion () =
  section "Congestion study: simulator-measured traffic (CODE 16x16, 4x4)";
  let t = Workloads.Code_kernel.trace ~n:16 mesh in
  let capacity = Pim.Memory.capacity_for ~data_count:256 ~mesh ~headroom:2 in
  Printf.printf "%-16s %10s %10s %12s %10s %10s %10s\n" "algorithm" "total"
    "max link" "imbalance" "lat.bound" "makespan" "energy";
  List.iter
    (fun algo ->
      let s = Sched.Scheduler.run ~capacity algo mesh t in
      let rounds = Sched.Schedule.to_rounds s t in
      let report = Pim.Simulator.run mesh rounds in
      let timed = Pim.Timed_simulator.run mesh rounds in
      let max_link =
        match Pim.Link_stats.max_link report.Pim.Simulator.link_stats with
        | Some (_, _, v) -> v
        | None -> 0
      in
      let latency =
        List.fold_left
          (fun acc r -> acc + r.Pim.Simulator.latency_bound)
          0 report.Pim.Simulator.rounds
      in
      Printf.printf "%-16s %10d %10d %12.2f %10d %10d %10.0f\n"
        (Sched.Scheduler.name algo)
        report.Pim.Simulator.total_cost max_link
        (Pim.Link_stats.imbalance report.Pim.Simulator.link_stats)
        latency timed.Pim.Timed_simulator.total_cycles
        (Pim.Energy.of_report mesh timed))
    Sched.Scheduler.[ Row_wise; Scds; Lomcds; Gomcds; Lomcds_grouped ];
  print_endline
    "(lat.bound = per-window max(per-link load, max hop count), a lower\n\
    \ bound; makespan = store-and-forward cycles under FIFO contention;\n\
    \ energy = 10/hop transport + 0.05/proc/cycle leakage)";
  (* negative result, kept honest: in a purely communication-bound model,
     issuing migrations one window early does not shorten the makespan --
     it only congests the previous window's reference traffic *)
  let s = Sched.Scheduler.run ~capacity Sched.Scheduler.Gomcds mesh t in
  let span prefetch =
    (Pim.Timed_simulator.run mesh (Sched.Schedule.to_rounds ~prefetch s t))
      .Pim.Timed_simulator.total_cycles
  in
  Printf.printf
    "prefetching migrations one window early: makespan %d -> %d (no\n\
     compute phase to hide the movement behind)\n"
    (span false) (span true)

(* ------------------------------------------------------------------ *)
(* Scheduler timing (Bechamel)                                         *)
(* ------------------------------------------------------------------ *)

let timing () =
  section "Scheduler timing (Bechamel, LU 16x16 on 4x4)";
  let open Bechamel in
  let t = Workloads.Lu.trace ~n:16 mesh in
  let capacity =
    Workloads.Benchmarks.capacity Workloads.Benchmarks.B1 ~n:16 mesh
  in
  let stage algo =
    Test.make
      ~name:(Sched.Scheduler.name algo)
      (Staged.stage (fun () ->
           ignore (Sched.Scheduler.run ~capacity algo mesh t)))
  in
  let tests =
    Test.make_grouped ~name:"schedulers"
      (List.map stage
         Sched.Scheduler.
           [ Row_wise; Scds; Lomcds; Gomcds; Lomcds_grouped; Gomcds_grouped ])
  in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) () in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0
      ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name result acc ->
        let ns =
          match Analyze.OLS.estimates result with
          | Some [ est ] -> est
          | Some _ | None -> nan
        in
        (name, ns) :: acc)
      results []
    |> List.sort (fun (_, a) (_, b) -> Float.compare a b)
  in
  Printf.printf "%-32s %14s\n" "scheduler" "time/run";
  List.iter
    (fun (name, ns) ->
      let pretty =
        if Float.is_nan ns then "n/a"
        else if ns >= 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
        else Printf.sprintf "%.1f us" (ns /. 1e3)
      in
      Printf.printf "%-32s %14s\n" name pretty)
    rows

(* ------------------------------------------------------------------ *)
(* Engine scaling                                                      *)
(* ------------------------------------------------------------------ *)

(* Regenerates the LU 16x16 rows of Tables 1 and 2 (row-wise baseline,
   SCDS, LOMCDS, GOMCDS, both grouped variants, plus the lower bound)
   two ways:

   - legacy: each algorithm through the deprecated [Scheduler.run] shim,
     i.e. a throwaway context per run, recomputing every (datum, window)
     cost vector and per-datum DP from scratch each time;
   - engine: one [Problem.t] shared by all runs at jobs in {1, 2, 4}.

   The shared cache wins even on one core (each cost vector is computed
   once instead of once per algorithm); extra domains then scale the
   cache fill and the per-datum DPs on multi-core hosts. *)
let engine_scaling () =
  section "Engine scaling (Table 1 + 2 rows, LU 16x16 on 4x4)";
  let t = Workloads.Lu.trace ~n:16 mesh in
  let capacity =
    Workloads.Benchmarks.capacity Workloads.Benchmarks.B1 ~n:16 mesh
  in
  let algos =
    Sched.Scheduler.
      [ Row_wise; Scds; Lomcds; Gomcds; Lomcds_grouped; Gomcds_grouped ]
  in
  let legacy () =
    List.iter (fun a -> ignore (Sched.Scheduler.run ~capacity a mesh t)) algos;
    ignore (Sched.Bounds.lower_bound_in (Sched.Problem.create mesh t))
  in
  let engine jobs () =
    let problem =
      Sched.Problem.create ~policy:(Sched.Problem.Bounded capacity) ~jobs mesh
        t
    in
    List.iter (fun a -> ignore (Sched.Scheduler.solve problem a)) algos;
    ignore (Sched.Bounds.lower_bound_in problem)
  in
  let time f =
    let reps = if quick then 3 else 5 in
    let best = ref infinity in
    for _ = 1 to reps do
      let t0 = Unix.gettimeofday () in
      f ();
      best := Float.min !best (Unix.gettimeofday () -. t0)
    done;
    !best
  in
  let baseline = time legacy in
  Printf.printf "%-28s %10.1f ms  %8s\n" "legacy (context per run)"
    (baseline *. 1e3) "1.00x";
  (* jobs=4 vs jobs=1 is the CI gate (>= 0.95x, serve_bench retry idiom):
     the engine claims chunks of ~n/(k*8) indices, so on a host whose
     effective pool is one domain the two settings run identical work and
     differ only by timer noise, while a real pool must not regress *)
  let t1 = ref (time (engine 1)) and t4 = ref (time (engine 4)) in
  let t2 = time (engine 2) in
  let attempts = ref 1 in
  while (!t1 < !t4 *. 0.95) && !attempts < 8 do
    incr attempts;
    t1 := Float.min !t1 (time (engine 1));
    t4 := Float.min !t4 (time (engine 4))
  done;
  List.iter
    (fun (jobs, s) ->
      Printf.printf "%-28s %10.1f ms  %7.2fx\n"
        (Printf.sprintf "shared Problem.t, jobs=%d" jobs)
        (s *. 1e3) (baseline /. s))
    [ (1, !t1); (2, t2); (4, !t4) ];
  Printf.printf
    "jobs=4/jobs=1 %.2fx (best of %d attempt(s))\n\
     (speedup vs. the legacy path: the shared context computes each\n\
    \ (datum, window) cost vector once for all algorithms and the bound)\n"
    (!t1 /. !t4) !attempts;
  if !t1 < !t4 *. 0.95 then begin
    Printf.eprintf
      "FAIL: engine at jobs=4 fell behind jobs=1 on LU 16x16 (%.1f ms vs \
       %.1f ms)\n"
      (!t4 *. 1e3) (!t1 *. 1e3);
    exit 1
  end;
  Obs.Json.Obj
    [
      ("workload", Obs.Json.String "lu-16x16");
      ("mesh", Obs.Json.String "4x4");
      ("legacy_ms", Obs.Json.Float (baseline *. 1e3));
      ("jobs1_ms", Obs.Json.Float (!t1 *. 1e3));
      ("jobs2_ms", Obs.Json.Float (t2 *. 1e3));
      ("jobs4_ms", Obs.Json.Float (!t4 *. 1e3));
      ("speedup_vs_legacy", Obs.Json.Float (baseline /. !t1));
      ("jobs4_vs_jobs1", Obs.Json.Float (!t1 /. !t4));
      ("attempts", Obs.Json.Int !attempts);
    ]

(* ------------------------------------------------------------------ *)
(* Kernel dimension: separable vs naive cost-vector construction       *)
(* ------------------------------------------------------------------ *)

(* Three comparisons of the cost-arena fast paths on the LU 16x16 workload
   mapped onto a 16x16 array -- the size where the naive O(P x refs) walk
   actually hurts (the separable kernel is O(refs + rows + cols + P) per
   vector, so its edge grows with the reference density and with P). Run
   once on the plain mesh and once on the torus, so the circular-prefix-sum
   path has its own perf trail in BENCH_<rev>.json:

   - cost-vector construction: every referenced (window, datum) vector
     built directly through [Cost.Naive.cost_vector] (the pre-refactor
     profile-fold, one coordinate decode per (center, reference) term)
     vs [Cost.cost_vector] (marginals + per-axis prefix sums). Gated:
     separable must not be slower.
   - end-to-end [Problem.prefetch_all] (jobs=1, fresh context per rep):
     the same fill through the context layer, where the naive path reads
     its private distance table and both kernels share the flat-arena
     fill and cache bookkeeping -- a smaller, honest ratio.
   - [Problem.prefetch_all] vs the retired PR 3 fill: one heap array per
     (window, datum) pair -- zero-reference pairs included -- assembled
     through [Cost.cost_vector] and parked in an option matrix, plus the
     lazy O(P^2) rank-to-rank distance table the old solve pipeline
     forced before any layered DP could run. The arena skips
     zero-reference fills (they share one zero row), allocates one flat
     uninitialized buffer per datum, and the DP reads the per-axis
     tables, so no P^2 table exists at all. Gated: >= 3x on the mesh.
     On the torus the gate is >= 2x: the arena only fills referenced
     rows (1495 of 3840 pairs on this workload), so the fill-work ratio
     alone tops out near 2.6x and the rest of the margin comes from the
     retired table and allocation churn -- the torus typically clears
     3x too, but its pricier circular prefix sums leave less headroom,
     so its CI gate keeps a noise allowance.

   Runs in quick mode too: these are the CI perf gates -- the process
   exits nonzero on either regression, on both topologies. *)
let kernel_bench_on ~topology kmesh =
  section
    (Printf.sprintf
       "Kernel: separable vs naive cost-vector construction (LU 16x16 on \
        16x16 %s)"
       topology);
  let trace = Workloads.Lu.trace ~n:16 kmesh in
  let windows = Reftrace.Trace.windows trace in
  let n_windows = Reftrace.Trace.n_windows trace in
  let n_data = Reftrace.Data_space.size (Reftrace.Trace.space trace) in
  let reps = if quick then 3 else 5 in
  let time f =
    let best = ref infinity in
    for _ = 1 to reps do
      let t0 = Unix.gettimeofday () in
      f ();
      best := Float.min !best (Unix.gettimeofday () -. t0)
    done;
    !best
  in
  let n_vectors = ref 0 in
  let build vector_of () =
    n_vectors := 0;
    List.iter
      (fun w ->
        List.iter
          (fun data ->
            incr n_vectors;
            ignore (vector_of w ~data : int array))
          (Reftrace.Window.referenced_data w))
      windows
  in
  let naive =
    time (build (fun w ~data -> Sched.Cost.Naive.cost_vector kmesh w ~data))
  in
  let separable =
    time (build (fun w ~data -> Sched.Cost.cost_vector kmesh w ~data))
  in
  let speedup = naive /. separable in
  let capacity =
    Pim.Memory.capacity_for ~data_count:n_data ~mesh:kmesh ~headroom:2
  in
  let prefetch ?fault kernel =
    let best = ref infinity in
    for _ = 1 to reps do
      (* context creation (incl. the naive kernel's eager distance table)
         stays outside the timer, and so does collecting the previous
         rep's garbage -- GC slices inside the timed region otherwise
         charge one rep's allocation to the next rep's clock *)
      let problem =
        Sched.Problem.create ~policy:(Sched.Problem.Bounded capacity)
          ~jobs:1 ~kernel ?fault kmesh trace
      in
      Gc.full_major ();
      let t0 = Unix.gettimeofday () in
      Sched.Problem.prefetch_all problem;
      best := Float.min !best (Unix.gettimeofday () -. t0)
    done;
    !best
  in
  let pf_naive = prefetch `Naive in
  let pf_separable = prefetch `Separable in
  (* Fault.none zero-overhead: a context carrying the explicit healthy
     fault must take the exact same fill path. The timing row is
     informational (wall clocks are noise-prone in CI); the gate is
     byte-identical arena rows. *)
  let pf_fault_none = prefetch ~fault:Pim.Fault.none `Separable in
  let healthy =
    Sched.Problem.create ~policy:(Sched.Problem.Bounded capacity) ~jobs:1
      ~kernel:`Separable kmesh trace
  and fault_none =
    Sched.Problem.create ~policy:(Sched.Problem.Bounded capacity) ~jobs:1
      ~kernel:`Separable ~fault:Pim.Fault.none kmesh trace
  in
  List.iteri
    (fun w window ->
      List.iter
        (fun data ->
          if
            Sched.Problem.cost_vector healthy ~window:w ~data
            <> Sched.Problem.cost_vector fault_none ~window:w ~data
          then begin
            Printf.eprintf
              "FAIL: Fault.none arena row differs from healthy (window %d, \
               datum %d, %s)\n"
              w data topology;
            exit 1
          end)
        (Reftrace.Window.referenced_data window))
    windows;
  (* the PR 3 context fill this repo shipped before the arena: one heap
     vector per (window, datum) pair, zero-reference pairs included,
     plus the O(P^2) rank-to-rank distance table the layered DP consumed
     (built lazily by the old context, but unavoidable before any solve,
     so it belongs to the fill bill). Same GC hygiene as above. *)
  let windows_arr = Array.of_list windows in
  let size = Pim.Mesh.size kmesh in
  let pf_legacy =
    let best = ref infinity in
    for _ = 1 to reps do
      Gc.full_major ();
      let t0 = Unix.gettimeofday () in
      let store = Array.make_matrix n_data n_windows None in
      for data = 0 to n_data - 1 do
        for w = 0 to n_windows - 1 do
          store.(data).(w) <-
            Some (Sched.Cost.cost_vector kmesh windows_arr.(w) ~data)
        done
      done;
      let dist =
        Array.init size (fun a ->
            Array.init size (fun b -> Pim.Mesh.distance kmesh a b))
      in
      ignore (store : int array option array array);
      ignore (dist : int array array);
      best := Float.min !best (Unix.gettimeofday () -. t0)
    done;
    !best
  in
  let arena_speedup = pf_legacy /. pf_separable in
  Printf.printf "%d cost vectors (%d windows, %d data, %d processors)\n"
    !n_vectors n_windows n_data (Pim.Mesh.size kmesh);
  Printf.printf "%-34s %10.3f ms\n%-34s %10.3f ms\n%-34s %9.1fx\n"
    "construction, naive" (naive *. 1e3) "construction, separable"
    (separable *. 1e3) "construction speedup" speedup;
  Printf.printf
    "%-34s %10.3f ms\n%-34s %10.3f ms\n%-34s %10.3f ms\n%-34s %9.1fx\n%-34s \
     %9.1fx\n"
    "prefetch_all, naive (table)" (pf_naive *. 1e3)
    "prefetch_all, separable" (pf_separable *. 1e3)
    "per-vector fill (pre-arena)" (pf_legacy *. 1e3) "prefetch_all speedup"
    (pf_naive /. pf_separable) "arena speedup vs per-vector"
    arena_speedup;
  Printf.printf "%-34s %10.3f ms  (rows gated byte-identical)\n"
    "prefetch_all, Fault.none" (pf_fault_none *. 1e3);
  if separable > naive then begin
    Printf.eprintf
      "FAIL: separable kernel slower than naive on LU 16x16 %s (%.3f ms vs \
       %.3f ms)\n"
      topology (separable *. 1e3) (naive *. 1e3);
    exit 1
  end;
  (* mesh: 3x over the full PR 3 bill (vectors + table). torus: the
     referenced-rows-only fill caps the work ratio near 2.6x (see the
     header comment), so the gate is 2x there. *)
  let gate = if topology = "torus" then 2. else 3. in
  if arena_speedup < gate then begin
    Printf.eprintf
      "FAIL: arena prefetch_all under %.0fx the PR 3 per-vector fill on LU \
       16x16 %s (%.3f ms vs %.3f ms, %.1fx)\n"
      gate topology (pf_separable *. 1e3) (pf_legacy *. 1e3) arena_speedup;
    exit 1
  end;
  Obs.Json.Obj
    [
      ("workload", Obs.Json.String "lu-16x16");
      ("mesh", Obs.Json.String "16x16");
      ("topology", Obs.Json.String topology);
      ("metric", Obs.Json.String "cost_vector_build_wall");
      ("vectors", Obs.Json.Int !n_vectors);
      ("naive_ms", Obs.Json.Float (naive *. 1e3));
      ("separable_ms", Obs.Json.Float (separable *. 1e3));
      ("speedup", Obs.Json.Float speedup);
      ("prefetch_naive_ms", Obs.Json.Float (pf_naive *. 1e3));
      ("prefetch_separable_ms", Obs.Json.Float (pf_separable *. 1e3));
      ("prefetch_speedup", Obs.Json.Float (pf_naive /. pf_separable));
      ("prefetch_legacy_ms", Obs.Json.Float (pf_legacy *. 1e3));
      ("prefetch_fault_none_ms", Obs.Json.Float (pf_fault_none *. 1e3));
      ("arena_speedup_vs_per_vector", Obs.Json.Float arena_speedup);
    ]

let kernel_bench () =
  (* bind in order: list elements evaluate right-to-left in OCaml *)
  let mesh_row = kernel_bench_on ~topology:"mesh" (Pim.Mesh.square 16) in
  let torus_row =
    kernel_bench_on ~topology:"torus" (Pim.Mesh.square ~wrap:true 16)
  in
  Obs.Json.List [ mesh_row; torus_row ]

(* ------------------------------------------------------------------ *)
(* Serve throughput (pimsched serve daemon path)                       *)
(* ------------------------------------------------------------------ *)

(* One wave of requests cycling the five schedulers on LU 16x16 through
   [Serve.Server.process_batch], memo off so every request actually
   solves. Throughput is requests/sec over the wave's wall time; p50/p99
   come from the per-request solve latencies the server reports. Measured
   at jobs=1 and jobs=4 -- the two settings run identical deterministic
   work per request, so per-request latency should be flat and the
   jobs=4 wave must not fall behind (gate: >= 0.95x, best-of attempts,
   because on a host the engine caps to one domain they differ only by
   timer noise). *)
let serve_bench () =
  section "Serve throughput (pimsched serve, LU 16x16 on 16x16)";
  let serve_mesh = "16x16" in
  let algos =
    [ "scds"; "lomcds"; "gomcds"; "lomcds-grouped"; "gomcds-grouped" ]
  in
  let n_requests = if quick then 20 else 40 in
  let lines =
    List.init n_requests (fun i ->
        Printf.sprintf
          {|{"id":%d,"workload":"1","size":16,"mesh":{"rows":16,"cols":16},"algorithm":"%s"}|}
          i
          (List.nth algos (i mod List.length algos)))
  in
  let measure jobs =
    let default = Serve.Server.default_config () in
    let server =
      Serve.Server.create
        ~config:
          { default with Serve.Server.jobs; batch = n_requests; memo = false }
        ()
    in
    (* warm the shared context (axis tables, merged window) outside the
       timer; a daemon pays that once per instance, not per request *)
    ignore (Serve.Server.process_batch server [ List.hd lines ]);
    Gc.full_major ();
    let t0 = Obs.Clock.now_s () in
    let results = Serve.Server.process_batch server lines in
    let wall = Obs.Clock.now_s () -. t0 in
    let durs =
      Array.of_list (List.sort Float.compare (List.map snd results))
    in
    let pct p =
      durs.(min (Array.length durs - 1)
              (int_of_float (p *. float_of_int (Array.length durs))))
    in
    (float_of_int n_requests /. wall, pct 0.50, pct 0.99)
  in
  let thr (t, _, _) = t in
  let best1 = ref (measure 1) and best4 = ref (measure 4) in
  let update r m = if thr m > thr !r then r := m in
  let attempts = ref 1 in
  while thr !best4 < thr !best1 && !attempts < 8 do
    incr attempts;
    update best1 (measure 1);
    update best4 (measure 4)
  done;
  let row jobs (t, p50, p99) =
    Printf.printf
      "jobs=%d  %8.1f req/s   p50 %7.3f ms   p99 %7.3f ms\n" jobs t
      (p50 *. 1e3) (p99 *. 1e3);
    Obs.Json.Obj
      [
        ("jobs", Obs.Json.Int jobs);
        ("mesh", Obs.Json.String serve_mesh);
        ("requests", Obs.Json.Int n_requests);
        ("requests_per_sec", Obs.Json.Float t);
        ("p50_ms", Obs.Json.Float (p50 *. 1e3));
        ("p99_ms", Obs.Json.Float (p99 *. 1e3));
      ]
  in
  let r1 = row 1 !best1 in
  let r4 = row 4 !best4 in
  let rows = [ r1; r4 ] in
  Printf.printf "best of %d attempt(s); jobs=4/jobs=1 throughput %.2fx\n"
    !attempts
    (thr !best4 /. thr !best1);
  if thr !best4 < 0.95 *. thr !best1 then begin
    Printf.printf
      "FAIL: serve wave at jobs=4 fell behind jobs=1 (%.1f vs %.1f req/s)\n"
      (thr !best4) (thr !best1);
    exit 1
  end;
  (* the chaos hooks are compiled into the serve path unconditionally;
     armed-but-idle (registry enabled, every site Off) must stay within
     1.10x the disabled p50 -- failpoints may not tax production
     latency. Best-of retries absorb timer noise on millisecond p50s. *)
  let p50_of (_, p, _) = p in
  let rec fp_gate attempt =
    let base = measure 1 in
    Obs.Failpoint.configure "";
    let armed =
      Fun.protect ~finally:Obs.Failpoint.clear (fun () -> measure 1)
    in
    let ratio = p50_of armed /. p50_of base in
    if ratio > 1.10 && attempt < 8 then fp_gate (attempt + 1) else ratio
  in
  let fp_ratio = fp_gate 1 in
  Printf.printf "failpoints armed-but-idle p50 ratio %.2fx (gate 1.10x)\n"
    fp_ratio;
  if fp_ratio > 1.10 then begin
    Printf.printf
      "FAIL: armed-but-idle failpoints tax serve p50 %.2fx (> 1.10x)\n"
      fp_ratio;
    exit 1
  end;
  Obs.Json.Obj
    [
      ("workload", Obs.Json.String "lu-16x16");
      ("mesh", Obs.Json.String serve_mesh);
      ("algorithms", Obs.Json.List (List.map (fun a -> Obs.Json.String a) algos));
      ("failpoint_idle_p50_ratio", Obs.Json.Float fp_ratio);
      ("runs", Obs.Json.List rows);
    ]

(* ------------------------------------------------------------------ *)
(* Multi-array scheduling (Array_group tier)                           *)
(* ------------------------------------------------------------------ *)

(* Two facts about the group tier, the first gated:

   - degenerate overhead: solving LU 16x16 through a 1-member group must
     not regress the plain single-mesh solve. The group path delegates
     wholesale ([Group_solver] hands the member session to
     [Sched.Scheduler.solve]), so the only admissible cost is
     [Group_problem.create]'s thin wrapper. Gate: group wall <= 1.15x
     plain wall, best-of reps with the serve_bench retry loop to damp
     timer noise; the lifted schedule must also be identical, because a
     timing gate on a different answer proves nothing.
   - 2x2of8x8 info rows: the migration DP (gomcds) and the static
     two-level path (scds) on LU 16x16 laid out on the group's virtual
     mesh, against the group-metric lower bound. Not gated; the numbers
     are the regression trail for the cross-array machinery. *)
let multi_bench () =
  section "Multi-array scheduling (Array_group tier, LU 16x16)";
  let n = 16 in
  let big = Pim.Mesh.square n in
  let trace = Workloads.Lu.trace ~n big in
  let capacity =
    Pim.Memory.capacity_for
      ~data_count:(Reftrace.Data_space.size (Reftrace.Trace.space trace))
      ~mesh:big ~headroom:2
  in
  let policy = Sched.Problem.Bounded capacity in
  let reps = if quick then 3 else 5 in
  let time f =
    let best = ref infinity in
    for _ = 1 to reps do
      Gc.full_major ();
      let t0 = Unix.gettimeofday () in
      f ();
      best := Float.min !best (Unix.gettimeofday () -. t0)
    done;
    !best
  in
  let plain () =
    let problem = Sched.Problem.create ~policy big trace in
    ignore (Sched.Scheduler.solve problem Sched.Scheduler.Gomcds)
  in
  let group1 = Multi.Array_group.line [ big ] in
  let grouped () =
    let gp = Multi.Group_problem.create ~policy group1 trace in
    ignore (Multi.Group_solver.solve gp Sched.Scheduler.Gomcds)
  in
  let plain_sched =
    Sched.Scheduler.solve
      (Sched.Problem.create ~policy big trace)
      Sched.Scheduler.Gomcds
  in
  let lifted =
    Multi.Group_solver.solve
      (Multi.Group_problem.create ~policy group1 trace)
      Sched.Scheduler.Gomcds
  in
  (match Multi.Group_schedule.to_mesh_schedule lifted with
  | Some s when Sched.Schedule.equal s plain_sched -> ()
  | _ ->
      Printf.eprintf
        "FAIL: degenerate 1-array group schedule differs from the plain \
         mesh schedule\n";
      exit 1);
  let t_plain = ref (time plain) and t_group = ref (time grouped) in
  let attempts = ref 1 in
  while !t_group > 1.15 *. !t_plain && !attempts < 8 do
    incr attempts;
    t_plain := Float.min !t_plain (time plain);
    t_group := Float.min !t_group (time grouped)
  done;
  let overhead = !t_group /. !t_plain in
  Printf.printf
    "degenerate 1-array: plain %.2f ms, group %.2f ms (%.2fx, best of %d \
     attempt(s))\n"
    (!t_plain *. 1e3) (!t_group *. 1e3) overhead !attempts;
  if !t_group > 1.15 *. !t_plain then begin
    Printf.eprintf
      "FAIL: degenerate group solve regressed the plain solve (%.2f ms vs \
       %.2f ms, %.2fx > 1.15x)\n"
      (!t_group *. 1e3) (!t_plain *. 1e3) overhead;
    exit 1
  end;
  let spec = "2x2of8x8" in
  let group = Multi.Array_group.of_spec spec in
  let gtrace =
    Multi.Array_group.remap_virtual_trace group
      (Workloads.Lu.trace ~n (Multi.Array_group.virtual_mesh group))
  in
  let gp = Multi.Group_problem.create group gtrace in
  let run algo =
    let t0 = Unix.gettimeofday () in
    let plan, breakdown = Multi.Group_solver.evaluate gp algo in
    (plan, breakdown, Unix.gettimeofday () -. t0)
  in
  let dp_plan, dp_cost, dp_wall = run Sched.Scheduler.Gomcds in
  let _, st_cost, st_wall = run Sched.Scheduler.Scds in
  let bound =
    Option.value ~default:0 (Multi.Group_solver.lower_bound gp)
  in
  Printf.printf
    "%s (inter-cost 10): gomcds total=%d, %d array move(s), %.1f ms; scds \
     total=%d, %.1f ms; lower bound %d\n"
    spec dp_cost.Multi.Group_schedule.total
    (Multi.Group_schedule.array_moves dp_plan)
    (dp_wall *. 1e3) st_cost.Multi.Group_schedule.total (st_wall *. 1e3)
    bound;
  Obs.Json.Obj
    [
      ("workload", Obs.Json.String "lu-16x16");
      ( "degenerate",
        Obs.Json.Obj
          [
            ("plain_ms", Obs.Json.Float (!t_plain *. 1e3));
            ("group_ms", Obs.Json.Float (!t_group *. 1e3));
            ("overhead", Obs.Json.Float overhead);
            ("attempts", Obs.Json.Int !attempts);
          ] );
      ( "group",
        Obs.Json.Obj
          [
            ("arrays", Obs.Json.String spec);
            ("inter_cost", Obs.Json.Int 10);
            ("gomcds_total", Obs.Json.Int dp_cost.Multi.Group_schedule.total);
            ( "gomcds_array_moves",
              Obs.Json.Int (Multi.Group_schedule.array_moves dp_plan) );
            ("gomcds_ms", Obs.Json.Float (dp_wall *. 1e3));
            ("scds_total", Obs.Json.Int st_cost.Multi.Group_schedule.total);
            ("scds_ms", Obs.Json.Float (st_wall *. 1e3));
            ("lower_bound", Obs.Json.Int bound);
          ] );
    ]

(* ------------------------------------------------------------------ *)
(* Incremental re-solve (warm sessions, dirty rows, batched fills)     *)
(* ------------------------------------------------------------------ *)

(* Three facts about the incremental core on LU 16x16, the first two CI
   gates on both topologies (the process exits nonzero on regression):

   - warm re-solve: patching a running session to a node fault
     ([Problem.with_fault_patch] + [prefetch_all]) must prepare in
     <= 0.5x the wall of a cold [of_context] + [prefetch_all] under the
     same fault — a pure node fault reprices no slab row, so the patch
     carries every filled byte over. The patched session's gomcds plan
     is checked byte-identical to the cold session's first (a faster
     wrong answer proves nothing).
   - batched fills: assembling each window's slab rows through
     [Cost.fill_window_batch] (axis-cost and prefix-sum scratch shared
     across the window) must not lose to the per-row
     [Cost.fill_slab_of_marginals] loop it replaced.
   - window edit (info rows): [Problem.invalidate] after an in-place
     [Window.add] edit, then re-prefetch. Not wall-gated — the refill
     set depends on the edit — but the edited session's plan is checked
     byte-identical to a cold session over the same edited context. *)
let incremental_bench_on ~topology kmesh =
  section
    (Printf.sprintf "Incremental re-solve (LU 16x16 on 16x16 %s)" topology);
  let trace = Workloads.Lu.trace ~n:16 kmesh in
  let n_data = Reftrace.Data_space.size (Reftrace.Trace.space trace) in
  let capacity =
    Pim.Memory.capacity_for ~data_count:n_data ~mesh:kmesh ~headroom:2
  in
  let policy = Sched.Problem.Bounded capacity in
  let ctx = Sched.Context.create ~policy kmesh trace in
  let fault = Pim.Fault.create ~dead_nodes:[ 17; 100; 203 ] () in
  let reps = if quick then 3 else 5 in
  let time f =
    let best = ref infinity in
    for _ = 1 to reps do
      Gc.full_major ();
      let t0 = Unix.gettimeofday () in
      f ();
      best := Float.min !best (Unix.gettimeofday () -. t0)
    done;
    !best
  in
  let plan_of problem =
    Sched.Schedule_serial.to_string
      (Sched.Scheduler.solve problem Sched.Scheduler.Gomcds)
  in
  (* byte-identity first: the warm session must answer like the cold one *)
  let base = Sched.Problem.of_context ctx in
  Sched.Problem.prefetch_all base;
  let cold_session = Sched.Problem.of_context ~fault ctx in
  if plan_of (Sched.Problem.with_fault_patch base fault) <> plan_of cold_session
  then begin
    Printf.eprintf
      "FAIL: patched warm session plan differs from cold rebuild (%s)\n"
      topology;
    exit 1
  end;
  let cold () =
    Sched.Problem.prefetch_all (Sched.Problem.of_context ~fault ctx)
  in
  let warm () =
    Sched.Problem.prefetch_all (Sched.Problem.with_fault_patch base fault)
  in
  let cold_t = ref (time cold) and warm_t = ref (time warm) in
  let attempts = ref 1 in
  while !warm_t > 0.5 *. !cold_t && !attempts < 8 do
    incr attempts;
    cold_t := Float.min !cold_t (time cold);
    warm_t := Float.min !warm_t (time warm)
  done;
  Printf.printf
    "%-34s %10.3f ms\n%-34s %10.3f ms\n%-34s %9.1fx  (best of %d attempt(s))\n"
    "cold of_context + prefetch_all" (!cold_t *. 1e3)
    "warm with_fault_patch + prefetch" (!warm_t *. 1e3) "warm speedup"
    (!cold_t /. !warm_t) !attempts;
  if !warm_t > 0.5 *. !cold_t then begin
    Printf.eprintf
      "FAIL: warm fault re-solve over 0.5x the cold session on LU 16x16 %s \
       (%.3f ms vs %.3f ms)\n"
      topology (!warm_t *. 1e3) (!cold_t *. 1e3);
    exit 1
  end;
  (* window edit: private trace so the shared [ctx] stays pristine *)
  let edit_trace = Workloads.Lu.trace ~n:16 kmesh in
  let edit_ctx = Sched.Context.create ~policy kmesh edit_trace in
  let session = Sched.Problem.of_context edit_ctx in
  Sched.Problem.prefetch_all session;
  Reftrace.Window.add
    (Reftrace.Trace.window edit_trace 3)
    ~data:0 ~proc:5 ~count:2;
  Sched.Problem.invalidate session ~window:3;
  Gc.full_major ();
  let t0 = Unix.gettimeofday () in
  Sched.Problem.prefetch_all session;
  let edit_warm = Unix.gettimeofday () -. t0 in
  let edit_cold =
    time (fun () ->
        Sched.Problem.prefetch_all (Sched.Problem.of_context edit_ctx))
  in
  if plan_of session <> plan_of (Sched.Problem.of_context edit_ctx) then begin
    Printf.eprintf
      "FAIL: invalidated session plan differs from cold rebuild over the \
       edited context (%s)\n"
      topology;
    exit 1
  end;
  Printf.printf "%-34s %10.3f ms\n%-34s %10.3f ms\n"
    "edit: cold rebuild + prefetch" (edit_cold *. 1e3)
    "edit: invalidate + re-prefetch" (edit_warm *. 1e3);
  (* batch vs per-row fill over the same marginals and slab *)
  let windows = Reftrace.Trace.windows trace in
  let cols = Pim.Mesh.cols kmesh
  and rows = Pim.Mesh.rows kmesh
  and wrap = Pim.Mesh.wraps kmesh
  and size = Pim.Mesh.size kmesh in
  let batches =
    List.map
      (fun w ->
        List.map
          (fun data -> Reftrace.Window.marginals w ~data ~cols ~rows)
          (Reftrace.Window.referenced_data w))
      windows
  in
  let n_rows = List.fold_left (fun a b -> a + List.length b) 0 batches in
  let slab =
    Bigarray.Array1.create Bigarray.Int Bigarray.C_layout (n_rows * size)
  in
  let per_row () =
    let off = ref 0 in
    List.iter
      (List.iter (fun m ->
           Sched.Cost.fill_slab_of_marginals ~wrap ~cols ~rows m ~dst:slab
             ~off:!off;
           off := !off + size))
      batches
  in
  let batched () =
    let off = ref 0 in
    List.iter
      (fun ms ->
        let items =
          List.map
            (fun m ->
              let o = !off in
              off := o + size;
              (m, (slab, o)))
            ms
        in
        Sched.Cost.fill_window_batch ~wrap ~cols ~rows items)
      batches
  in
  let row_t = ref (time per_row) and batch_t = ref (time batched) in
  let fill_attempts = ref 1 in
  while !batch_t > !row_t && !fill_attempts < 8 do
    incr fill_attempts;
    row_t := Float.min !row_t (time per_row);
    batch_t := Float.min !batch_t (time batched)
  done;
  Printf.printf
    "%-34s %10.3f ms\n%-34s %10.3f ms\n%-34s %9.2fx  (%d rows, best of %d \
     attempt(s))\n"
    "fill, per-row" (!row_t *. 1e3) "fill, window batch" (!batch_t *. 1e3)
    "batch speedup" (!row_t /. !batch_t) n_rows !fill_attempts;
  if !batch_t > !row_t then begin
    Printf.eprintf
      "FAIL: window-batched fill slower than per-row fill on LU 16x16 %s \
       (%.3f ms vs %.3f ms)\n"
      topology (!batch_t *. 1e3) (!row_t *. 1e3);
    exit 1
  end;
  Obs.Json.Obj
    [
      ("workload", Obs.Json.String "lu-16x16");
      ("mesh", Obs.Json.String "16x16");
      ("topology", Obs.Json.String topology);
      ("cold_ms", Obs.Json.Float (!cold_t *. 1e3));
      ("warm_ms", Obs.Json.Float (!warm_t *. 1e3));
      ("warm_speedup", Obs.Json.Float (!cold_t /. !warm_t));
      ("edit_cold_ms", Obs.Json.Float (edit_cold *. 1e3));
      ("edit_warm_ms", Obs.Json.Float (edit_warm *. 1e3));
      ("fill_rows", Obs.Json.Int n_rows);
      ("fill_per_row_ms", Obs.Json.Float (!row_t *. 1e3));
      ("fill_batch_ms", Obs.Json.Float (!batch_t *. 1e3));
      ("fill_batch_speedup", Obs.Json.Float (!row_t /. !batch_t));
    ]

let incremental_bench () =
  (* bind in order: list elements evaluate right-to-left in OCaml *)
  let mesh_row = incremental_bench_on ~topology:"mesh" (Pim.Mesh.square 16) in
  let torus_row =
    incremental_bench_on ~topology:"torus" (Pim.Mesh.square ~wrap:true 16)
  in
  Obs.Json.List [ mesh_row; torus_row ]

(* ------------------------------------------------------------------ *)
(* Timed backend (cycle-honest simulator)                              *)
(* ------------------------------------------------------------------ *)

(* Two facts about the parameterized timed backend, both gated:

   - degenerate honesty: under the degenerate model (unit bandwidth,
     store-and-forward, unbounded queues, zero compute) the live engine
     must reproduce the pinned pre-model [Timed_simulator.Reference]
     report field-for-field, and must not cost wall time for it —
     gate: live <= 1.05x Reference, best-of reps with the serve_bench
     retry loop to damp timer noise. The identity check runs first,
     because a timing gate on a different answer proves nothing.
   - ranking honesty: across the benchmark zoo at n=16 on the paper's
     4x4 mesh, at least one workload must rank some scheduler
     differently by simulated cycles than by the hop-volume scalar.
     That disagreement is the reason the timed backend exists; if every
     ranking agrees, the cycle model has collapsed into hop-volume and
     the gate fails. *)
let timed_bench () =
  section "Timed backend (cycle-honest vs hop-volume)";
  let reps = if quick then 3 else 5 in
  let kmesh = Pim.Mesh.square 16 in
  let trace = Workloads.Lu.trace ~n:16 kmesh in
  let capacity =
    Pim.Memory.capacity_for
      ~data_count:(Reftrace.Data_space.size (Reftrace.Trace.space trace))
      ~mesh:kmesh ~headroom:2
  in
  let problem =
    Sched.Problem.create ~policy:(Sched.Problem.Bounded capacity) kmesh trace
  in
  let schedule = Sched.Scheduler.solve problem Sched.Scheduler.Gomcds in
  let rounds = Sched.Schedule.to_rounds schedule trace in
  let reference = Pim.Timed_simulator.Reference.run kmesh rounds in
  let live = Pim.Timed_simulator.run kmesh rounds in
  let identical =
    reference.Pim.Timed_simulator.Reference.total_cycles
      = live.Pim.Timed_simulator.total_cycles
    && reference.Pim.Timed_simulator.Reference.total_volume_hops
       = live.Pim.Timed_simulator.total_volume_hops
    && List.length reference.Pim.Timed_simulator.Reference.rounds
       = List.length live.Pim.Timed_simulator.rounds
    && List.for_all2
         (fun (a : Pim.Timed_simulator.Reference.round_report)
              (b : Pim.Timed_simulator.round_report) ->
           a.Pim.Timed_simulator.Reference.cycles
             = b.Pim.Timed_simulator.cycles
           && a.Pim.Timed_simulator.Reference.messages
              = b.Pim.Timed_simulator.messages
           && a.Pim.Timed_simulator.Reference.volume_hops
              = b.Pim.Timed_simulator.volume_hops
           && Float.equal a.Pim.Timed_simulator.Reference.utilization
                b.Pim.Timed_simulator.utilization)
         reference.Pim.Timed_simulator.Reference.rounds
         live.Pim.Timed_simulator.rounds
  in
  if not identical then begin
    Printf.eprintf
      "FAIL: degenerate timed engine diverges from the pinned Reference \
       report on LU 16x16 (%d vs %d cycles)\n"
      live.Pim.Timed_simulator.total_cycles
      reference.Pim.Timed_simulator.Reference.total_cycles;
    exit 1
  end;
  let wall run =
    let best = ref infinity in
    for _ = 1 to reps do
      Gc.full_major ();
      let t0 = Unix.gettimeofday () in
      run ();
      best := Float.min !best (Unix.gettimeofday () -. t0)
    done;
    !best
  in
  let measure_ref () =
    wall (fun () -> ignore (Pim.Timed_simulator.Reference.run kmesh rounds))
  in
  let measure_live () =
    wall (fun () -> ignore (Pim.Timed_simulator.run kmesh rounds))
  in
  let best_ref = ref (measure_ref ()) and best_live = ref (measure_live ()) in
  let attempts = ref 1 in
  while !best_live > 1.05 *. !best_ref && !attempts < 8 do
    incr attempts;
    best_ref := Float.min !best_ref (measure_ref ());
    best_live := Float.min !best_live (measure_live ())
  done;
  let overhead = !best_live /. !best_ref in
  Printf.printf
    "%-34s %10.3f ms\n%-34s %10.3f ms\n%-34s %9.2fx  (gate <= 1.05x, best \
     of %d attempt(s))\n"
    "degenerate replay, Reference" (!best_ref *. 1e3)
    "degenerate replay, live engine" (!best_live *. 1e3)
    "live/Reference wall" overhead !attempts;
  Printf.printf "%-34s %10s\n" "degenerate report identity" "ok";
  if overhead > 1.05 then begin
    Printf.eprintf
      "FAIL: degenerate timed engine over 1.05x the Reference wall on LU \
       16x16 (%.3f ms vs %.3f ms, %.2fx)\n"
      (!best_live *. 1e3) (!best_ref *. 1e3) overhead;
    exit 1
  end;
  (* ranking sweep: hop-volume rank vs cycle rank, degenerate model *)
  let ranks values =
    List.map
      (fun v -> 1 + List.length (List.filter (fun w -> w < v) values))
      values
  in
  let zoo =
    List.map
      (fun b ->
        ( "b" ^ Workloads.Benchmarks.label b,
          Workloads.Benchmarks.trace b ~n:16 mesh ))
      Workloads.Benchmarks.all
    @ [ ("code-16x16", Workloads.Code_kernel.trace ~n:16 mesh) ]
  in
  let sweep =
    List.map
      (fun (wl, trace) ->
        let capacity =
          Pim.Memory.capacity_for
            ~data_count:
              (Reftrace.Data_space.size (Reftrace.Trace.space trace))
            ~mesh ~headroom:2
        in
        let problem =
          Sched.Problem.create ~policy:(Sched.Problem.Bounded capacity) mesh
            trace
        in
        let measured =
          List.map
            (fun algo ->
              let s = Sched.Scheduler.solve problem algo in
              ( Sched.Schedule.total_cost s trace,
                (Pim.Timed_simulator.run mesh (Sched.Schedule.to_rounds s trace))
                  .Pim.Timed_simulator.total_cycles ))
            Sched.Scheduler.all
        in
        let hop_ranks = ranks (List.map fst measured) in
        let cycle_ranks = ranks (List.map snd measured) in
        let disagreements =
          List.fold_left2
            (fun acc h c -> if h <> c then acc + 1 else acc)
            0 hop_ranks cycle_ranks
        in
        Printf.printf
          "%-12s %2d/%d schedulers ranked differently by cycles\n" wl
          disagreements (List.length measured);
        (wl, disagreements, List.length measured))
      zoo
  in
  let total = List.fold_left (fun acc (_, d, _) -> acc + d) 0 sweep in
  if total = 0 then begin
    Printf.eprintf
      "FAIL: no scheduler ranked differently by cycles than by hop-volume \
       on any zoo workload -- the timed model is not adding information\n";
    exit 1
  end;
  Obs.Json.Obj
    [
      ( "degenerate",
        Obs.Json.Obj
          [
            ("workload", Obs.Json.String "lu-16x16");
            ("mesh", Obs.Json.String "16x16");
            ("identical", Obs.Json.Bool identical);
            ("reference_ms", Obs.Json.Float (!best_ref *. 1e3));
            ("live_ms", Obs.Json.Float (!best_live *. 1e3));
            ("overhead", Obs.Json.Float overhead);
            ("attempts", Obs.Json.Int !attempts);
          ] );
      ( "ranking",
        Obs.Json.List
          (List.map
             (fun (wl, d, n) ->
               Obs.Json.Obj
                 [
                   ("workload", Obs.Json.String wl);
                   ("disagreements", Obs.Json.Int d);
                   ("schedulers", Obs.Json.Int n);
                 ])
             sweep) );
    ]

(* ------------------------------------------------------------------ *)
(* Machine-readable snapshot (BENCH_<rev>.json)                        *)
(* ------------------------------------------------------------------ *)

(* One JSON snapshot per bench run, keyed workload x scheduler x jobs:
   wall times (obs off, best of [reps]), speedup vs jobs=1, total cost,
   and the scheduler counters from one instrumented run. This is the
   regression trail future perf PRs diff against. *)

let git_rev () =
  match Sys.getenv_opt "BENCH_REV" with
  | Some r -> r
  | None -> (
      try
        let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
        let line = try input_line ic with End_of_file -> "" in
        match Unix.close_process_in ic with
        | Unix.WEXITED 0 when line <> "" -> line
        | _ -> "local"
      with _ -> "local")

let json_snapshot ~kernel ~serve ~multi ~engine ~incremental ~timed () =
  section "Machine-readable snapshot";
  let n = if quick then 8 else 16 in
  let reps = if quick then 1 else 3 in
  let workloads =
    [
      (Printf.sprintf "lu-%dx%d" n n, Workloads.Lu.trace ~n mesh);
      (Printf.sprintf "code-%dx%d" n n, Workloads.Code_kernel.trace ~n mesh);
    ]
  in
  let algos =
    Sched.Scheduler.[ Scds; Lomcds; Gomcds; Lomcds_grouped; Gomcds_grouped ]
  in
  let jobs_list = [ 1; 4 ] in
  let entries = ref [] in
  List.iter
    (fun (wl, trace) ->
      let capacity =
        Pim.Memory.capacity_for
          ~data_count:(Reftrace.Data_space.size (Reftrace.Trace.space trace))
          ~mesh ~headroom:2
      in
      let policy = Sched.Problem.Bounded capacity in
      List.iter
        (fun algo ->
          let walls =
            List.map
              (fun jobs ->
                (* fresh context per run so cache fills are timed too *)
                let run () =
                  let problem =
                    Sched.Problem.create ~policy ~jobs mesh trace
                  in
                  Sched.Schedule.total_cost
                    (Sched.Scheduler.solve problem algo)
                    trace
                in
                let best = ref infinity in
                let cost = ref 0 in
                for _ = 1 to reps do
                  let t0 = Unix.gettimeofday () in
                  cost := run ();
                  best := Float.min !best (Unix.gettimeofday () -. t0)
                done;
                (jobs, !best, !cost))
              jobs_list
          in
          let _, wall1, _ =
            List.find (fun (jobs, _, _) -> jobs = 1) walls
          in
          List.iter
            (fun (jobs, wall, cost) ->
              let counters =
                Obs.with_enabled (fun () ->
                    Obs.reset ();
                    let problem =
                      Sched.Problem.create ~policy ~jobs mesh trace
                    in
                    ignore (Sched.Scheduler.solve problem algo);
                    let snap = Obs.Metrics.snapshot () in
                    Obs.reset ();
                    snap.Obs.Metrics.counters)
              in
              entries :=
                Obs.Json.Obj
                  [
                    ("workload", Obs.Json.String wl);
                    ( "scheduler",
                      Obs.Json.String (Sched.Scheduler.name algo) );
                    ("kernel", Obs.Json.String "separable");
                    ("jobs", Obs.Json.Int jobs);
                    ("wall_ms", Obs.Json.Float (wall *. 1e3));
                    ("speedup_vs_jobs1", Obs.Json.Float (wall1 /. wall));
                    ("total_cost", Obs.Json.Int cost);
                    ( "counters",
                      Obs.Json.Obj
                        (List.map
                           (fun (k, v) -> (k, Obs.Json.Int v))
                           counters) );
                  ]
                :: !entries)
            walls)
        algos)
    workloads;
  let rev = git_rev () in
  let path = Printf.sprintf "BENCH_%s.json" rev in
  Obs.Json.write_file path
    (Obs.Json.Obj
       [
         ("schema", Obs.Json.String "pim-sched-bench/2");
         ("rev", Obs.Json.String rev);
         ("quick", Obs.Json.Bool quick);
         ("mesh", Obs.Json.String "4x4");
         ("kernel_bench", kernel);
         ("serve_bench", serve);
         ("multi_bench", multi);
         ("engine_scaling", engine);
         ("incremental_bench", incremental);
         ("timed_bench", timed);
         ("entries", Obs.Json.List (List.rev !entries));
       ]);
  Printf.printf "wrote %d entries to %s\n" (List.length !entries) path

let () =
  print_endline
    "Reproduction benches: Tian, Sha, Chantrapornchai, Kogge -- \"Optimizing\n\
     Data Scheduling on Processor-In-Memory Arrays\" (IPPS 1998)";
  if quick then begin
    figure1 ();
    let engine = engine_scaling () in
    let kernel = kernel_bench () in
    let serve = serve_bench () in
    let multi = multi_bench () in
    let incremental = incremental_bench () in
    let timed = timed_bench () in
    json_snapshot ~kernel ~serve ~multi ~engine ~incremental ~timed ();
    print_endline "\nQuick benches complete."
  end
  else begin
    figure1 ();
    tables ();
    characterization ();
    ablation_window_size ();
    ablation_headroom ();
    ablation_mesh_size ();
    ablation_topology ();
    ablation_refinement ();
    ablation_adaptation ();
    ablation_replication ();
    ablation_annealing ();
    ablation_online ();
    ablation_partition ();
    congestion ();
    timing ();
    let engine = engine_scaling () in
    let kernel = kernel_bench () in
    let serve = serve_bench () in
    let multi = multi_bench () in
    let incremental = incremental_bench () in
    let timed = timed_bench () in
    json_snapshot ~kernel ~serve ~multi ~engine ~incremental ~timed ();
    print_endline "\nAll benches complete."
  end
