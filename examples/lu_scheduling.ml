(* LU factorization scheduling walk-through (the paper's benchmark 1).

     dune exec examples/lu_scheduling.exe

   Generates the LU reference trace for a 16x16 matrix on a 4x4 PIM array,
   schedules it under the paper's memory rule (2x minimum), and shows why
   data movement helps: the pivot row and column of elimination step k are
   the hot data of window k, and they sweep down the matrix as k grows. *)

let () =
  let mesh = Pim.Mesh.square 4 in
  let n = 16 in
  let trace = Workloads.Lu.trace ~n mesh in
  let space = Reftrace.Trace.space trace in
  let capacity =
    Pim.Memory.capacity_for ~data_count:(n * n) ~mesh ~headroom:2
  in
  Printf.printf
    "LU factorization, %dx%d matrix on 4x4 array, capacity %d per processor\n\
     %d execution windows (one per elimination step), %d references\n\n"
    n n capacity
    (Reftrace.Trace.n_windows trace)
    (Reftrace.Trace.total_references trace);

  (* One context under the paper's memory rule; every scheduler below
     shares its cost-vector cache. *)
  let problem =
    Sched.Problem.create ~policy:(Sched.Problem.Bounded capacity) mesh trace
  in

  (* The straight-forward row-wise distribution vs. the three schedulers. *)
  let baseline =
    Sched.Schedule.total_cost
      (Sched.Scheduler.solve problem Sched.Scheduler.Row_wise)
      trace
  in
  List.iter
    (fun algo ->
      let s = Sched.Scheduler.solve problem algo in
      let total = Sched.Schedule.total_cost s trace in
      Printf.printf "%-16s comm = %6d   improvement = %5.1f%%   moves = %d\n"
        (Sched.Scheduler.name algo)
        total
        (Sched.Scheduler.improvement ~baseline ~cost:total)
        (Sched.Schedule.moves s))
    Sched.Scheduler.
      [ Row_wise; Column_wise; Scds; Lomcds; Gomcds; Lomcds_grouped ];

  (* Follow one interesting datum: the middle diagonal element A(8,8). It is
     in the trailing submatrix for k < 8, is the pivot at k = 8, and is dead
     afterwards — watch GOMCDS park it once it no longer matters. *)
  let a88 = Reftrace.Data_space.id space ~array_name:"A" ~row:8 ~col:8 in
  let gomcds = Sched.Scheduler.solve problem Sched.Scheduler.Gomcds in
  Printf.printf "\nGOMCDS trajectory of %s (pivot at window 8):\n "
    (Reftrace.Data_space.describe space a88);
  Array.iteri
    (fun w r ->
      Format.printf " w%d:%a" w Pim.Coord.pp (Pim.Mesh.coord_of_rank mesh r))
    (Sched.Schedule.centers_of_data gomcds ~data:a88);
  print_newline ();

  (* Windows where the datum is referenced at all: *)
  let referenced =
    List.filteri
      (fun _ w -> Reftrace.Window.references w a88 > 0)
      (Reftrace.Trace.windows trace)
    |> List.length
  in
  Printf.printf "(referenced in %d of %d windows)\n" referenced
    (Reftrace.Trace.n_windows trace)
