(* Migration study: when does moving data pay off?

     dune exec examples/migration_study.exe

   Rebuilds the paper's Section 3.3 situation at adjustable intensity: a
   datum whose consumers sit at one corner for a while, then at the opposite
   corner. We sweep the strength of the second phase and print the
   crossover: LOMCDS always migrates, GOMCDS migrates only once the pull is
   strong enough to amortize the move — exactly the trade-off the cost-graph
   shortest path resolves. *)

let mesh = Pim.Mesh.square 4

let trace_with_pull pull =
  let space = Reftrace.Data_space.matrix "D" 1 in
  let corner_a = Pim.Mesh.rank_of_coord mesh (Pim.Coord.make ~x:0 ~y:0) in
  let corner_b = Pim.Mesh.rank_of_coord mesh (Pim.Coord.make ~x:3 ~y:3) in
  let w specs =
    let w = Reftrace.Window.create ~n_data:1 in
    List.iter
      (fun (proc, count) -> Reftrace.Window.add w ~data:0 ~proc ~count)
      specs;
    w
  in
  Reftrace.Trace.create space
    [
      w [ (corner_a, 6) ];
      w [ (corner_b, pull) ];
      w [ (corner_a, 6) ];
    ]

let () =
  print_endline
    "datum D: 6 references at (0,0), then P references at (3,3), then 6 at\n\
     (0,0) again. One round trip costs 12 hops; serving (3,3) remotely costs\n\
     6 per reference.\n";
  Printf.printf "%4s | %7s %7s %7s | %s\n" "P" "SCDS" "LOMCDS" "GOMCDS"
    "GOMCDS window-1 position";
  List.iter
    (fun pull ->
      let t = trace_with_pull pull in
      let problem = Sched.Problem.create mesh t in
      let run a = Sched.Scheduler.solve problem a in
      let total a = Sched.Schedule.total_cost (run a) t in
      let g = run Sched.Scheduler.Gomcds in
      let where =
        Pim.Mesh.coord_of_rank mesh (Sched.Schedule.center g ~window:1 ~data:0)
      in
      Format.printf "%4d | %7d %7d %7d | %a%s@." pull
        (total Sched.Scheduler.Scds)
        (total Sched.Scheduler.Lomcds)
        (total Sched.Scheduler.Gomcds)
        Pim.Coord.pp where
        (if Pim.Coord.equal where (Pim.Coord.make ~x:3 ~y:3) then "  <- migrated"
         else "");
      (* GOMCDS is optimal by construction; double-check against brute force *)
      let bf, _ = Sched.Brute_force.optimal_cost mesh t ~data:0 in
      assert (total Sched.Scheduler.Gomcds = bf))
    [ 1; 2; 3; 4; 6; 8; 12 ];
  print_endline
    "\nLOMCDS pays the round trip whatever P is; GOMCDS serves weak pulls\n\
     remotely and only migrates once P is large enough to repay the move.\n\
     (asserted optimal against exhaustive search at every P)"
