(* Quickstart: build a reference trace by hand, schedule it three ways, and
   compare communication costs.

     dune exec examples/quickstart.exe

   The scenario: one 4x4 PIM array, three data elements, three execution
   windows. Datum 0's consumers drift from the top-left corner to the
   bottom-right; data 1 and 2 have stable homes. *)

let () =
  (* 1. The machine: a 4x4 grid of processors-in-memory. *)
  let mesh = Pim.Mesh.square 4 in

  (* 2. The data: one tiny 1x3 array called "v". *)
  let space =
    Reftrace.Data_space.create
      (Reftrace.Data_space.array_desc "v" ~rows:1 ~cols:3)
      []
  in

  (* 3. The reference trace: who touches what, window by window. A window
     records (processor rank, reference count) per datum. *)
  let rank x y = Pim.Mesh.rank_of_coord mesh (Pim.Coord.make ~x ~y) in
  let window specs =
    let w = Reftrace.Window.create ~n_data:(Reftrace.Data_space.size space) in
    List.iter
      (fun (data, x, y, count) ->
        Reftrace.Window.add w ~data ~proc:(rank x y) ~count)
      specs;
    w
  in
  let trace =
    Reftrace.Trace.create space
      [
        window [ (0, 0, 0, 4); (1, 3, 0, 2); (2, 0, 3, 2) ];
        window [ (0, 2, 2, 3); (1, 3, 0, 2); (2, 0, 3, 2) ];
        window [ (0, 3, 3, 4); (1, 3, 0, 2); (2, 0, 3, 2) ];
      ]
  in
  Format.printf "trace: %a@.@." Reftrace.Trace.pp trace;

  (* 4. Build the problem context — mesh + trace + capacity policy — then
     schedule it. All algorithms run against the same context share its
     cached cost vectors; every algorithm returns a Schedule.t mapping
     each datum to a processor per window. *)
  let problem = Sched.Problem.create mesh trace in
  List.iter
    (fun algo ->
      let schedule = Sched.Scheduler.solve problem algo in
      let cost = Sched.Schedule.cost schedule trace in
      Printf.printf "%-10s total=%3d (reference %3d + movement %3d)\n"
        (Sched.Scheduler.name algo)
        cost.Sched.Schedule.total cost.Sched.Schedule.reference
        cost.Sched.Schedule.movement)
    Sched.Scheduler.[ Row_wise; Scds; Lomcds; Gomcds ];

  (* 5. Inspect where the drifting datum lives under GOMCDS. *)
  let gomcds = Sched.Scheduler.solve problem Sched.Scheduler.Gomcds in
  print_string "\nGOMCDS trajectory of datum v(0,0):";
  Array.iter
    (fun r ->
      Format.printf " %a" Pim.Coord.pp (Pim.Mesh.coord_of_rank mesh r))
    (Sched.Schedule.centers_of_data gomcds ~data:0);
  print_newline ();

  (* 6. Execute the schedule on the message-level simulator: the measured
     traffic equals the analytic cost. *)
  let report =
    Pim.Simulator.run mesh (Sched.Schedule.to_rounds gomcds trace)
  in
  Format.printf "%a@." Pim.Simulator.pp_report report;
  assert (
    report.Pim.Simulator.total_cost = Sched.Schedule.total_cost gomcds trace);
  print_endline "simulated traffic matches the analytic cost. done."
