(* Replication study: relaxing the paper's "one copy of data" rule.

     dune exec examples/replication_study.exe

   Matrix squaring broadcasts row k and column k of A to every processor in
   window k — a single copy of each pivot element is a bottleneck no
   placement can fix. Read replication shatters that floor. Coherence is
   write-invalidate, so the written output C never replicates; compare LU,
   where almost everything is written every window and replication barely
   helps. *)

let mesh = Pim.Mesh.square 4

let study name trace =
  let bound = Sched.Bounds.lower_bound_in (Sched.Problem.create mesh trace) in
  Printf.printf "\n%s: single-copy lower bound = %d\n" name bound;
  Printf.printf "%10s %10s %12s %10s %10s\n" "copies" "total" "reads"
    "creation" "movement";
  List.iter
    (fun k ->
      let r = Sched.Replicated.run ~max_copies:k mesh trace in
      let c = Sched.Replicated.cost r mesh trace in
      Printf.printf "%10d %10d %12d %10d %10d%s\n" k c.Sched.Replicated.total
        c.Sched.Replicated.reads c.Sched.Replicated.creation
        c.Sched.Replicated.primary_movement
        (if c.Sched.Replicated.total < bound then
           "   <- beats the one-copy floor"
         else "");
      (* the simulator measures exactly the analytic cost *)
      let measured =
        (Pim.Simulator.run mesh (Sched.Replicated.to_rounds r mesh trace))
          .Pim.Simulator.total_cost
      in
      assert (measured = c.Sched.Replicated.total))
    [ 1; 2; 4; 8 ]

let () =
  let n = 12 in
  study "matrix squaring (A read-only, C written)"
    (Workloads.Matmul.trace ~n mesh);
  study "LU factorization (matrix written every window)"
    (Workloads.Lu.trace ~n mesh);
  print_endline
    "\nwrite-invalidate coherence is why LU barely moves: a datum written\n\
     in a window is pinned to its primary copy there, and LU writes the\n\
     whole trailing submatrix every elimination step.";

  (* peek at one pivot element's copy sets across windows *)
  let trace = Workloads.Matmul.trace ~n mesh in
  let space = Reftrace.Trace.space trace in
  let a03 = Reftrace.Data_space.id space ~array_name:"A" ~row:0 ~col:3 in
  let r = Sched.Replicated.run ~max_copies:4 mesh trace in
  Printf.printf "\ncopy sets of A(0,3) (hot in window 3):\n";
  for w = 0 to min 5 (Sched.Replicated.n_windows r - 1) do
    Printf.printf "  window %d: %s\n" w
      (String.concat " "
         (List.map
            (fun rank ->
              Pim.Coord.to_string (Pim.Mesh.coord_of_rank mesh rank))
            (Sched.Replicated.copies r ~window:w ~data:a03)))
  done
