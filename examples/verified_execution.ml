(* Verified execution: from schedule plan to numerically checked result.

     dune exec examples/verified_execution.exe

   The full production path: generate the LU trace, compute a schedule,
   serialize it to a plan file, re-load the plan (as a runtime would), and
   execute the factorization on the simulated PIM array with every operand
   fetched from its scheduled location. The distributed factors are
   compared against a sequential reference — and the measured traffic
   against the plan's analytic cost. *)

let mesh = Pim.Mesh.square 4

let () =
  let n = 16 in
  let trace = Workloads.Lu.trace ~n mesh in
  let capacity =
    Pim.Memory.capacity_for ~data_count:(n * n) ~mesh ~headroom:2
  in

  let problem =
    Sched.Problem.create ~policy:(Sched.Problem.Bounded capacity) mesh trace
  in

  (* 1. Plan: compute and serialize the schedule. *)
  let schedule = Sched.Scheduler.solve problem Sched.Scheduler.Best_refined in
  let plan = Filename.temp_file "lu" ".plan" in
  Sched.Schedule_serial.save schedule plan;
  Printf.printf "plan: %d windows, %d data, %d migrations -> %s\n"
    (Sched.Schedule.n_windows schedule)
    (Sched.Schedule.n_data schedule)
    (Sched.Schedule.moves schedule)
    plan;

  (* 2. Load the plan back, as a separate runtime would. *)
  let loaded = Sched.Schedule_serial.load plan in
  Sys.remove plan;
  assert (Sched.Schedule.equal schedule loaded);

  (* 3. Execute a real factorization under the loaded plan. *)
  let matrix = Exec.Distributed_lu.random_matrix ~seed:2026 n in
  let r = Exec.Distributed_lu.run mesh ~matrix loaded in
  Printf.printf "distributed LU of a %dx%d matrix:\n" n n;
  Printf.printf "  max |distributed - sequential| = %.3e\n"
    r.Exec.Distributed_lu.max_error;
  Printf.printf "  measured traffic = %d hop-units (analytic: %d)\n"
    r.Exec.Distributed_lu.traffic r.Exec.Distributed_lu.analytic;
  assert (r.Exec.Distributed_lu.max_error < 1e-9);
  assert (r.Exec.Distributed_lu.traffic = r.Exec.Distributed_lu.analytic);

  (* 4. Same computation under the straight-forward layout, for contrast. *)
  let sf = Sched.Scheduler.solve problem Sched.Scheduler.Row_wise in
  let r_sf = Exec.Distributed_lu.run mesh ~matrix sf in
  Printf.printf
    "row-wise layout moves %d hop-units for the same answer (%.1fx more)\n"
    r_sf.Exec.Distributed_lu.traffic
    (float_of_int r_sf.Exec.Distributed_lu.traffic
    /. float_of_int r.Exec.Distributed_lu.traffic);
  print_endline "verified: same numbers, a fraction of the communication."
