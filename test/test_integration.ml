(* Cross-module integration: the analytic cost model, the schedulers, the
   workload generators and the message-level simulator must all agree. *)

let check_int = Alcotest.(check int)
let mesh = Gen.mesh44

let simulated_cost schedule trace =
  let rounds = Sched.Schedule.to_rounds schedule trace in
  (Pim.Simulator.run mesh rounds).Pim.Simulator.total_cost

let test_simulator_agrees_on_benchmark () =
  let t = Workloads.Benchmarks.trace Workloads.Benchmarks.B1 ~n:8 mesh in
  List.iter
    (fun algo ->
      let s = Sched.Scheduler.run algo mesh t in
      check_int
        (Sched.Scheduler.name algo ^ ": simulated = analytic")
        (Sched.Schedule.total_cost s t)
        (simulated_cost s t))
    Sched.Scheduler.all

let test_simulator_splits_movement_and_reference () =
  let t = Workloads.Code_kernel.trace ~n:8 mesh in
  let s = Sched.Scheduler.run Sched.Scheduler.Gomcds mesh t in
  let b = Sched.Schedule.cost s t in
  let report = Pim.Simulator.run mesh (Sched.Schedule.to_rounds s t) in
  check_int "migration" b.Sched.Schedule.movement
    report.Pim.Simulator.total_migration;
  check_int "reference" b.Sched.Schedule.reference
    report.Pim.Simulator.total_reference

let prop_simulator_agrees_on_random_traces =
  let arb = Gen.trace_arbitrary ~max_data:6 ~max_windows:5 ~max_count:4 () in
  QCheck.Test.make ~name:"simulated cost = analytic cost (all algorithms)"
    ~count:50 arb (fun t ->
      List.for_all
        (fun algo ->
          let s = Sched.Scheduler.run algo mesh t in
          Sched.Schedule.total_cost s t = simulated_cost s t)
        Sched.Scheduler.all)

let test_paper_capacity_respected_end_to_end () =
  List.iter
    (fun b ->
      let n = 8 in
      let t = Workloads.Benchmarks.trace b ~n mesh in
      let capacity = Workloads.Benchmarks.capacity b ~n mesh in
      List.iter
        (fun algo ->
          let s = Sched.Scheduler.run ~capacity algo mesh t in
          match Sched.Schedule.check_capacity s ~capacity with
          | None -> ()
          | Some (w, rank, load) ->
              Alcotest.failf "%s on b%s: window %d rank %d load %d > %d"
                (Sched.Scheduler.name algo)
                (Workloads.Benchmarks.label b)
                w rank load capacity)
        Sched.Scheduler.
          [ Row_wise; Column_wise; Scds; Lomcds; Gomcds; Lomcds_grouped ])
    Workloads.Benchmarks.all

let test_hierarchy_on_paper_benchmarks_unbounded () =
  List.iter
    (fun b ->
      let t = Workloads.Benchmarks.trace b ~n:8 mesh in
      let total algo =
        Sched.Schedule.total_cost (Sched.Scheduler.run algo mesh t) t
      in
      let label = Workloads.Benchmarks.label b in
      let sf = total Sched.Scheduler.Row_wise in
      let scds = total Sched.Scheduler.Scds in
      let lomcds = total Sched.Scheduler.Lomcds in
      let gomcds = total Sched.Scheduler.Gomcds in
      Alcotest.(check bool) ("b" ^ label ^ ": scds <= sf") true (scds <= sf);
      Alcotest.(check bool)
        ("b" ^ label ^ ": lomcds <= scds")
        true (lomcds <= scds);
      Alcotest.(check bool)
        ("b" ^ label ^ ": gomcds <= lomcds")
        true (gomcds <= lomcds))
    Workloads.Benchmarks.all

let test_gomcds_equals_per_datum_optimum_on_lu () =
  (* whole-schedule total must equal the sum of per-datum DP optima *)
  let t = Workloads.Lu.trace ~n:6 mesh in
  let s = Sched.Gomcds.schedule (Sched.Problem.create mesh t) in
  let n = Reftrace.Data_space.size (Reftrace.Trace.space t) in
  let expected = ref 0 in
  for data = 0 to n - 1 do
    expected := !expected + fst (Sched.Gomcds.optimal_centers mesh t ~data)
  done;
  check_int "sum of optima" !expected (Sched.Schedule.total_cost s t)

let test_window_granularity_tradeoff_runs () =
  (* the ablation path: rebuilding LU with coarser windows must preserve
     total references and never crash the schedulers *)
  let t = Workloads.Lu.trace ~n:8 mesh in
  let events = Reftrace.Window_builder.events_of_trace t in
  let space = Reftrace.Trace.space t in
  List.iter
    (fun k ->
      let coarse = Reftrace.Window_builder.fixed ~steps_per_window:k space events in
      check_int
        (Printf.sprintf "refs preserved at k=%d" k)
        (Reftrace.Trace.total_references t)
        (Reftrace.Trace.total_references coarse);
      let s = Sched.Gomcds.schedule (Sched.Problem.create mesh coarse) in
      Alcotest.(check bool)
        "cost non-negative" true
        (Sched.Schedule.total_cost s coarse >= 0))
    [ 1; 2; 3; 7 ]

let test_single_window_trace_degenerates_gracefully () =
  let t = Gen.trace mesh ~n_data:3 [ [ (0, 5, 2); (1, 3, 1); (2, 3, 1) ] ] in
  List.iter
    (fun algo ->
      let s = Sched.Scheduler.run algo mesh t in
      check_int (Sched.Scheduler.name algo ^ " no moves") 0
        (Sched.Schedule.moves s))
    Sched.Scheduler.all

let test_scale_smoke_8x8_mesh () =
  (* a larger instance end-to-end: 32x32 data on an 8x8 array *)
  let big = Pim.Mesh.square 8 in
  let t = Workloads.Lu.trace ~n:32 big in
  let capacity =
    Pim.Memory.capacity_for ~data_count:(32 * 32) ~mesh:big ~headroom:2
  in
  let s = Sched.Scheduler.run ~capacity Sched.Scheduler.Gomcds big t in
  let total = Sched.Schedule.total_cost s t in
  Alcotest.(check bool) "nontrivial cost" true (total > 0);
  Alcotest.(check (option (triple int int int)))
    "capacity respected" None
    (Sched.Schedule.check_capacity s ~capacity);
  let baseline =
    Sched.Schedule.total_cost
      (Sched.Scheduler.run ~capacity Sched.Scheduler.Row_wise big t)
      t
  in
  Alcotest.(check bool) "halves the baseline" true (2 * total < baseline)

let suite =
  [
    Gen.case "scale smoke: 32x32 on 8x8" test_scale_smoke_8x8_mesh;
    Gen.case "simulator agrees on benchmark" test_simulator_agrees_on_benchmark;
    Gen.case "simulator splits move/ref" test_simulator_splits_movement_and_reference;
    Gen.to_alcotest prop_simulator_agrees_on_random_traces;
    Gen.case "paper capacity end-to-end" test_paper_capacity_respected_end_to_end;
    Gen.case "hierarchy on paper benchmarks" test_hierarchy_on_paper_benchmarks_unbounded;
    Gen.case "gomcds = per-datum optima on LU" test_gomcds_equals_per_datum_optimum_on_lu;
    Gen.case "window granularity ablation" test_window_granularity_tradeoff_runs;
    Gen.case "single-window degenerate" test_single_window_trace_degenerates_gracefully;
  ]
