(* Heterogeneous element volumes: the paper's cost model weights every hop
   by "the data volume transferred". *)

let mesh = Gen.mesh44
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let weighted_trace ~volume specs =
  let space =
    Reftrace.Data_space.create
      (Reftrace.Data_space.array_desc ~volume "A" ~rows:1 ~cols:4)
      []
  in
  Reftrace.Trace.create space (List.map (Gen.window ~n_data:4) specs)

let test_descriptor_validation () =
  Alcotest.check_raises "zero volume"
    (Invalid_argument "Data_space.array_desc: volume must be positive (0)")
    (fun () ->
      ignore (Reftrace.Data_space.array_desc ~volume:0 "A" ~rows:1 ~cols:1))

let test_volume_accessors () =
  let space =
    Reftrace.Data_space.create
      (Reftrace.Data_space.array_desc ~volume:3 "A" ~rows:2 ~cols:2)
      [ Reftrace.Data_space.array_desc "B" ~rows:1 ~cols:2 ]
  in
  check_int "A element" 3 (Reftrace.Data_space.volume_of space 0);
  check_int "B element" 1 (Reftrace.Data_space.volume_of space 4);
  check_int "total" ((4 * 3) + 2) (Reftrace.Data_space.total_volume space)

let test_cost_scales_linearly () =
  let specs = [ [ (0, 5, 2); (1, 0, 1) ]; [ (0, 9, 3) ] ] in
  let unit = weighted_trace ~volume:1 specs in
  let heavy = weighted_trace ~volume:5 specs in
  List.iter
    (fun algo ->
      let cost t = Sched.Schedule.total_cost (Sched.Scheduler.run algo mesh t) t in
      check_int
        (Sched.Scheduler.name algo ^ " scales by 5")
        (5 * cost unit) (cost heavy))
    Sched.Scheduler.[ Row_wise; Scds; Lomcds; Gomcds ]

let test_mixed_volumes_weighted_correctly () =
  (* A (volume 4) and B (volume 1), each referenced once at distance 2 from
     a pinned placement *)
  let space =
    Reftrace.Data_space.create
      (Reftrace.Data_space.array_desc ~volume:4 "A" ~rows:1 ~cols:1)
      [ Reftrace.Data_space.array_desc "B" ~rows:1 ~cols:1 ]
  in
  let w = Reftrace.Window.create ~n_data:2 in
  Reftrace.Window.add w ~data:0 ~proc:2 ~count:1;
  Reftrace.Window.add w ~data:1 ~proc:2 ~count:1;
  let t = Reftrace.Trace.create space [ w ] in
  let s = Sched.Schedule.constant mesh ~n_windows:1 [| 0; 0 |] in
  (* dist(0, 2) = 2: A costs 8, B costs 2 *)
  check_int "weighted total" 10 (Sched.Schedule.total_cost s t)

let test_movement_weighted () =
  let t = weighted_trace ~volume:3 [ [ (0, 0, 9) ]; [ (0, 15, 9) ] ] in
  let s = Sched.Gomcds.schedule (Sched.Problem.create mesh t) in
  let b = Sched.Schedule.cost s t in
  (* corner-to-corner migration of a volume-3 datum: 6 hops * 3 *)
  check_int "movement" 18 b.Sched.Schedule.movement

let test_simulator_identity_with_volumes () =
  let t = weighted_trace ~volume:7 [ [ (0, 5, 2); (2, 1, 1) ]; [ (0, 12, 3) ] ] in
  List.iter
    (fun algo ->
      let s = Sched.Scheduler.run algo mesh t in
      let report = Pim.Simulator.run mesh (Sched.Schedule.to_rounds s t) in
      check_int
        (Sched.Scheduler.name algo ^ " measured = analytic")
        (Sched.Schedule.total_cost s t)
        report.Pim.Simulator.total_cost)
    Sched.Scheduler.[ Row_wise; Scds; Lomcds; Gomcds; Lomcds_grouped ]

let test_serial_roundtrip_preserves_volume () =
  let t = weighted_trace ~volume:6 [ [ (0, 1, 2) ] ] in
  let s = Reftrace.Serial.to_string t in
  check_bool "volume in format" true
    (List.mem "array A 1 4 6" (String.split_on_char '\n' s));
  let t' = Reftrace.Serial.of_string s in
  check_int "volume restored" 6
    (Reftrace.Data_space.volume_of (Reftrace.Trace.space t') 0);
  (* unit volumes keep the legacy format *)
  let u = weighted_trace ~volume:1 [ [ (0, 1, 2) ] ] in
  check_bool "legacy line" true
    (List.mem "array A 1 4"
       (String.split_on_char '\n' (Reftrace.Serial.to_string u)))

let test_concat_volume_mismatch_rejected () =
  let a =
    Reftrace.Data_space.create
      (Reftrace.Data_space.array_desc ~volume:2 "A" ~rows:1 ~cols:1)
      []
  in
  let b = Reftrace.Data_space.matrix "A" 1 in
  check_bool "raises" true
    (try
       ignore (Reftrace.Data_space.concat a b);
       false
     with Invalid_argument _ -> true)

let test_heavy_data_win_contended_slots () =
  (* two data want rank 5 under capacity 1; the volume-heavy one (fewer raw
     references but more volume-weighted traffic) must get it *)
  let space =
    Reftrace.Data_space.create
      (Reftrace.Data_space.array_desc ~volume:10 "H" ~rows:1 ~cols:1)
      [ Reftrace.Data_space.array_desc "L" ~rows:1 ~cols:1 ]
  in
  let w = Reftrace.Window.create ~n_data:2 in
  Reftrace.Window.add w ~data:0 ~proc:5 ~count:2;
  (* heavy: 2 refs x vol 10 *)
  Reftrace.Window.add w ~data:1 ~proc:5 ~count:5;
  (* light: 5 refs x vol 1 *)
  let t = Reftrace.Trace.create space [ w ] in
  let s = Sched.Scds.schedule (Sched.Problem.of_capacity ~capacity:1 mesh t) in
  check_int "heavy datum keeps the hot slot" 5
    (Sched.Schedule.center s ~window:0 ~data:0)

let test_bounds_weighted () =
  let t = weighted_trace ~volume:4 [ [ (0, 0, 1) ]; [ (0, 15, 1) ] ] in
  let unit = weighted_trace ~volume:1 [ [ (0, 0, 1) ]; [ (0, 15, 1) ] ] in
  check_int "bound scales" (4 * Sched.Bounds.lower_bound_in (Sched.Problem.create mesh unit))
    (Sched.Bounds.lower_bound_in (Sched.Problem.create mesh t))

let prop_scaling_preserves_decisions =
  let arb = Gen.trace_arbitrary ~max_data:4 ~max_windows:4 ~max_count:4 () in
  QCheck.Test.make
    ~name:"uniform volume scaling leaves unconstrained schedules unchanged"
    ~count:50 arb (fun t ->
      (* rebuild the same reference pattern with volume 3 *)
      let n = Reftrace.Data_space.size (Reftrace.Trace.space t) in
      let space =
        Reftrace.Data_space.create
          (Reftrace.Data_space.array_desc ~volume:3 "A" ~rows:1 ~cols:n)
          []
      in
      let windows =
        List.map
          (fun w ->
            let c = Reftrace.Window.create ~n_data:n in
            List.iter
              (fun d ->
                List.iter
                  (fun (proc, count) ->
                    Reftrace.Window.add c ~data:d ~proc ~count)
                  (Reftrace.Window.profile w d))
              (Reftrace.Window.referenced_data w);
            c)
          (Reftrace.Trace.windows t)
      in
      let heavy = Reftrace.Trace.create space windows in
      let a = Sched.Gomcds.schedule (Sched.Problem.create mesh t) in
      let b = Sched.Gomcds.schedule (Sched.Problem.create mesh heavy) in
      Sched.Schedule.equal a b
      && Sched.Schedule.total_cost b heavy
         = 3 * Sched.Schedule.total_cost a t)

let suite =
  [
    Gen.case "descriptor validation" test_descriptor_validation;
    Gen.case "volume accessors" test_volume_accessors;
    Gen.case "cost scales linearly" test_cost_scales_linearly;
    Gen.case "mixed volumes weighted" test_mixed_volumes_weighted_correctly;
    Gen.case "movement weighted" test_movement_weighted;
    Gen.case "simulator identity with volumes" test_simulator_identity_with_volumes;
    Gen.case "serial roundtrip preserves volume" test_serial_roundtrip_preserves_volume;
    Gen.case "concat volume mismatch" test_concat_volume_mismatch_rejected;
    Gen.case "heavy data win contended slots" test_heavy_data_win_contended_slots;
    Gen.case "bounds weighted" test_bounds_weighted;
    Gen.to_alcotest prop_scaling_preserves_decisions;
  ]
