(* Differential test-bed for the parameterized cycle-honest backend.

   Four pillars:
   - the degenerate Link_model (bandwidth 1, store-and-forward, unbounded
     queues, free compute) is pinned byte-identical to the retained
     pre-model engine (Timed_simulator.Reference) — field by field,
     including the legacy utilization float — across every scheduler,
     both topologies, healthy and faulty arrays, and both cost kernels
     (the suite honours PIMSCHED_TEST_KERNEL=naive);
   - QCheck invariants over random models and traffic: flit conservation,
     cycles >= ceil(load/bw) of the most loaded link and >= the longest
     single-packet serialized path, monotonicity in bandwidth and queue
     depth on shared routes, and energy additivity across rounds;
   - closed-form oracles: a lone message and 1-3 contending messages on a
     shared route are exactly the permutation flow-shop recurrence
     C(j,i) = max(C(j-1,i), C(j,i-1)) + ceil(v_j/bw) over their
     fragments, plus hand-checked crossing-traffic pins on tiny meshes;
   - backpressure under faults: detoured routes squeezed through a
     bottleneck link with depth-1 queues stall but never deadlock (the
     watchdog Deadlock exception must not fire). *)

let kernel =
  match Sys.getenv_opt "PIMSCHED_TEST_KERNEL" with
  | Some "naive" -> `Naive
  | _ -> `Separable

module T = Pim.Timed_simulator
module LM = Pim.Link_model

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 0.))
let mesh44 = Gen.mesh44
let torus35 = Pim.Mesh.torus ~rows:3 ~cols:5
let msg = Pim.Router.message

(* Connected degradations, same shapes as test_fault's faulty_cases. *)
let fault_mesh =
  Pim.Fault.create ~dead_nodes:[ 10 ] ~dead_links:[ (0, 1); (5, 6) ] ()

let fault_torus =
  Pim.Fault.create ~dead_nodes:[ 7 ] ~dead_links:[ (0, 1); (0, 5); (11, 12) ] ()

let topo_cases =
  [
    ("mesh", mesh44, Pim.Fault.none);
    ("mesh faulty", mesh44, fault_mesh);
    ("torus", torus35, Pim.Fault.none);
    ("torus faulty", torus35, fault_torus);
  ]

(* ------------------------------------------------------------------ *)
(* Differential: degenerate model byte-identical to Reference          *)
(* ------------------------------------------------------------------ *)

let matches_reference ?fault mesh rounds =
  let n = T.run ?fault ~model:LM.degenerate mesh rounds in
  let o = T.Reference.run ?fault mesh rounds in
  n.T.total_cycles = o.T.Reference.total_cycles
  && n.T.total_volume_hops = o.T.Reference.total_volume_hops
  && List.length n.T.rounds = List.length o.T.Reference.rounds
  && List.for_all2
       (fun (nr : T.round_report) (orr : T.Reference.round_report) ->
         nr.round = orr.round && nr.cycles = orr.cycles
         && nr.messages = orr.messages
         && nr.volume_hops = orr.volume_hops
         (* byte-identical float: same formula over identical ints *)
         && Float.equal nr.utilization orr.utilization
         (* degenerate config: one flit per message, no backpressure *)
         && nr.flits = nr.messages
         && nr.queue_stall_cycles = 0
         && nr.compute_idle = 0)
       n.T.rounds o.T.Reference.rounds

(* A fixed multi-window trace that fits both topologies (ranks <= 14). *)
let fixed_trace mesh =
  Gen.trace mesh ~n_data:6
    [
      [ (0, 1, 2); (1, 5, 1); (2, 9, 3); (3, 12, 1); (0, 14, 2) ];
      [ (1, 3, 1); (4, 8, 2); (2, 2, 1); (5, 13, 2) ];
      [ (0, 0, 2); (3, 7, 1); (1, 11, 1); (4, 14, 3) ];
    ]

let test_differential_every_scheduler () =
  List.iter
    (fun (label, mesh, fault) ->
      let trace = fixed_trace mesh in
      let problem = Sched.Problem.create ~kernel ~fault mesh trace in
      List.iter
        (fun algo ->
          let schedule = Sched.Scheduler.solve problem algo in
          let rounds = Sched.Schedule.to_rounds schedule trace in
          check_bool
            (Printf.sprintf "degenerate = reference: %s, %s" label
               (Sched.Scheduler.name algo))
            true
            (matches_reference ~fault mesh rounds))
        Sched.Scheduler.all)
    topo_cases

let prop_differential_random_traces (label, mesh, fault) =
  let arb =
    Gen.trace_arbitrary ~mesh ~max_data:6 ~max_windows:4 ~max_count:3 ()
  in
  QCheck.Test.make
    ~name:("degenerate model = reference engine, random traces, " ^ label)
    ~count:20 arb
    (fun trace ->
      let problem = Sched.Problem.create ~kernel ~fault mesh trace in
      let schedule = Sched.Scheduler.solve problem Sched.Scheduler.Gomcds in
      let rounds = Sched.Schedule.to_rounds schedule trace in
      matches_reference ~fault mesh rounds)

let random_messages_arbitrary =
  let gen =
    let open QCheck.Gen in
    list_size (int_range 1 12)
      (triple (int_bound 15) (int_bound 15) (int_range 1 4))
    >>= fun specs ->
    return (List.map (fun (src, dst, volume) -> msg ~src ~dst ~volume) specs)
  in
  QCheck.make
    ~print:(fun msgs ->
      String.concat "; "
        (List.map (Format.asprintf "%a" Pim.Router.pp_message) msgs))
    gen

let prop_differential_raw_batches =
  QCheck.Test.make
    ~name:"degenerate round_makespan = reference, raw message batches"
    ~count:100 random_messages_arbitrary (fun msgs ->
      T.round_makespan ~model:LM.degenerate mesh44 msgs
      = T.Reference.round_makespan mesh44 msgs)

(* ------------------------------------------------------------------ *)
(* Link_model generators and pure invariants                           *)
(* ------------------------------------------------------------------ *)

let model_gen ?queue_depth () =
  let open QCheck.Gen in
  int_range 1 4 >>= fun bandwidth ->
  int_range 1 4 >>= fun flit ->
  bool >>= fun wormhole ->
  (match queue_depth with
  | Some _ -> return queue_depth
  | None -> oneof [ return None; int_range 1 4 >>= fun d -> return (Some d) ])
  >>= fun queue_depth ->
  int_range 0 2 >>= fun compute_cycles ->
  return
    (LM.create ~bandwidth ~flit ~wormhole ?queue_depth ~compute_cycles ())

let model_print = Format.asprintf "%a" LM.pp
let model_arbitrary ?queue_depth () = QCheck.make ~print:model_print (model_gen ?queue_depth ())

let prop_flit_conservation =
  QCheck.Test.make ~name:"fragments: conserve volume, sized within flit"
    ~count:200
    QCheck.(pair (model_arbitrary ()) (int_bound 40))
    (fun (model, volume) ->
      let frags = LM.fragments model ~volume in
      List.fold_left ( + ) 0 frags = volume
      && List.for_all
           (fun f -> f >= 1 && f <= max model.LM.flit volume)
           frags
      && ((not model.LM.wormhole) || volume = 0
         || List.for_all (fun f -> f <= model.LM.flit) frags))

(* ------------------------------------------------------------------ *)
(* Flow-shop oracle                                                    *)
(* ------------------------------------------------------------------ *)

(* Permutation flow-shop makespan: fragments (jobs) cross [hops] links
   (machines) in FIFO order, job j holding every machine for [times_j]
   cycles: C(j,i) = max(C(j-1,i), C(j,i-1)) + times_j. Exact for any
   number of messages sharing one route with unbounded queues, because
   fragments cannot overtake. *)
let flow_shop ~hops times =
  let c = Array.make (hops + 1) 0 in
  List.iter
    (fun p ->
      for i = 1 to hops do
        c.(i) <- max c.(i) c.(i - 1) + p
      done)
    times;
  c.(hops)

let fragment_times model volume =
  List.map (LM.hop_cycles model) (LM.fragments model ~volume)

(* Single-packet serialized path: what a message would take alone. *)
let alone_cycles model mesh (m : Pim.Router.message) =
  flow_shop
    ~hops:(Pim.Mesh.distance mesh m.src m.dst)
    (fragment_times model m.volume)

let live_of msgs =
  List.filter
    (fun (m : Pim.Router.message) -> m.src <> m.dst && m.volume > 0)
    msgs

(* ------------------------------------------------------------------ *)
(* QCheck invariants over random models and traffic                    *)
(* ------------------------------------------------------------------ *)

let model_and_messages = QCheck.pair (model_arbitrary ()) random_messages_arbitrary

let prop_volume_hops_invariant =
  QCheck.Test.make
    ~name:"volume_hops = analytic cost and flits = fragment count, any model"
    ~count:100 model_and_messages (fun (model, msgs) ->
      let r = T.round_stats ~model mesh44 msgs in
      let live = live_of msgs in
      r.T.volume_hops
      = List.fold_left
          (fun acc (m : Pim.Router.message) ->
            acc + (m.volume * Pim.Mesh.distance mesh44 m.src m.dst))
          0 live
      && r.T.flits
         = List.fold_left
             (fun acc (m : Pim.Router.message) ->
               acc + List.length (LM.fragments model ~volume:m.volume))
             0 live)

let prop_cycles_lower_bounds =
  QCheck.Test.make
    ~name:
      "cycles >= ceil(link load / bw) and >= longest serialized path, any \
       model" ~count:100 model_and_messages (fun (model, msgs) ->
      let span = T.round_makespan ~model mesh44 msgs in
      let stats = Pim.Link_stats.create mesh44 in
      ignore (Pim.Router.route_all mesh44 stats msgs);
      let link_bound =
        match Pim.Link_stats.max_link stats with
        | Some (_, _, v) -> LM.hop_cycles model v
        | None -> 0
      in
      let path_bound =
        List.fold_left
          (fun acc m -> max acc (alone_cycles model mesh44 m))
          0 (live_of msgs)
      in
      span >= link_bound && span >= path_bound)

(* Shared-route batches: every message src -> dst over one route. General
   FIFO networks admit scheduling anomalies, but a shared route is a
   tandem of queues, where more bandwidth and deeper buffers can only
   help; the properties below are theorems there. *)
let shared_route_arbitrary =
  let gen =
    let open QCheck.Gen in
    int_bound 15 >>= fun src ->
    int_bound 15 >>= fun dst ->
    list_size (int_range 1 5) (int_range 1 4) >>= fun volumes ->
    return (List.map (fun volume -> msg ~src ~dst ~volume) volumes)
  in
  QCheck.make
    ~print:(fun msgs ->
      String.concat "; "
        (List.map (Format.asprintf "%a" Pim.Router.pp_message) msgs))
    gen

let prop_monotone_in_bandwidth =
  QCheck.Test.make
    ~name:"shared route: cycles non-increasing in bandwidth" ~count:100
    QCheck.(
      triple shared_route_arbitrary (int_range 1 3) (model_arbitrary ()))
    (fun (msgs, extra, model) ->
      let at bandwidth =
        T.round_makespan ~model:{ model with LM.bandwidth } mesh44 msgs
      in
      at (model.LM.bandwidth + extra) <= at model.LM.bandwidth)

let prop_monotone_in_queue_depth =
  QCheck.Test.make
    ~name:"shared route: cycles non-increasing in queue depth" ~count:100
    QCheck.(
      triple shared_route_arbitrary (int_range 1 3)
        (model_arbitrary ~queue_depth:1 ()))
    (fun (msgs, d, model) ->
      let at queue_depth =
        T.round_makespan
          ~model:{ model with LM.queue_depth }
          mesh44 msgs
      in
      let bounded_shallow = at (Some 1) in
      let bounded_deep = at (Some (1 + d)) in
      let unbounded = at None in
      bounded_deep <= bounded_shallow && unbounded <= bounded_deep)

let rounds_of_batches batches =
  List.map
    (fun batch -> { Pim.Simulator.migrations = []; references = batch })
    batches

let batches_arbitrary =
  let gen =
    let open QCheck.Gen in
    list_size (int_range 1 4)
      (list_size (int_range 1 6)
         (triple (int_bound 15) (int_bound 15) (int_range 1 4)))
    >>= fun rounds ->
    return
      (List.map
         (List.map (fun (src, dst, volume) -> msg ~src ~dst ~volume))
         rounds)
  in
  QCheck.make gen

let close a b =
  Float.abs (a -. b) <= 1e-6 *. Float.max 1. (Float.max (Float.abs a) (Float.abs b))

let prop_energy_additivity =
  QCheck.Test.make
    ~name:"energy and counters additive across rounds, any model" ~count:60
    QCheck.(pair (model_arbitrary ()) batches_arbitrary)
    (fun (model, batches) ->
      let whole = T.run ~model mesh44 (rounds_of_batches batches) in
      let parts =
        List.map
          (fun b -> T.run ~model mesh44 (rounds_of_batches [ b ]))
          batches
      in
      let sum f = List.fold_left (fun acc p -> acc + f p) 0 parts in
      let sumf f = List.fold_left (fun acc p -> acc +. f p) 0. parts in
      whole.T.total_cycles = sum (fun p -> p.T.total_cycles)
      && whole.T.total_volume_hops = sum (fun p -> p.T.total_volume_hops)
      && whole.T.queue_stall_cycles = sum (fun p -> p.T.queue_stall_cycles)
      && whole.T.bandwidth_idle = sum (fun p -> p.T.bandwidth_idle)
      && whole.T.compute_idle = sum (fun p -> p.T.compute_idle)
      && close whole.T.energy (sumf (fun p -> p.T.energy))
      && close whole.T.energy_transport
           (sumf (fun p -> p.T.energy_transport))
      && close whole.T.energy_leakage (sumf (fun p -> p.T.energy_leakage)))

(* The report's own energy fields must agree with the Energy module
   (same expressions, default parameters). *)
let test_energy_matches_energy_module () =
  let trace = fixed_trace mesh44 in
  let problem = Sched.Problem.create ~kernel mesh44 trace in
  let schedule = Sched.Scheduler.solve problem Sched.Scheduler.Gomcds in
  let rounds = Sched.Schedule.to_rounds schedule trace in
  let report = T.run mesh44 rounds in
  check_float "energy = Energy.of_report" (Pim.Energy.of_report mesh44 report)
    report.T.energy;
  let transport, leakage = Pim.Energy.breakdown mesh44 report in
  check_float "transport term" transport report.T.energy_transport;
  check_float "leakage term" leakage report.T.energy_leakage

(* ------------------------------------------------------------------ *)
(* Closed-form oracles                                                 *)
(* ------------------------------------------------------------------ *)

let prop_lone_message_exact =
  QCheck.Test.make
    ~name:"lone message = flow-shop over its fragments (exact)" ~count:200
    QCheck.(
      quad (int_bound 15) (int_bound 15) (int_range 1 12) (model_arbitrary ()))
    (fun (src, dst, volume, model) ->
      (* bounded queues make a lone message's own fragments block each
         other (a blocking flow shop); the closed form is the unbounded
         recurrence. round_stats charges the destination compute_cycles
         per unit, and the source injects freely, so the compute axis
         only adds a max against the destination's execution time. *)
      let model = { model with LM.queue_depth = None } in
      let work = model.LM.compute_cycles * volume in
      T.round_makespan ~model mesh44 [ msg ~src ~dst ~volume ]
      = if src = dst then work
        else
          max work
            (flow_shop
               ~hops:(Pim.Mesh.distance mesh44 src dst)
               (fragment_times model volume)))

let prop_shared_route_exact =
  QCheck.Test.make
    ~name:"1-3 contending messages on one route = flow-shop (exact)"
    ~count:200
    QCheck.(
      quad (int_bound 15) (int_bound 15)
        (list_of_size (Gen.int_range 1 3) (int_range 1 5))
        (model_arbitrary ()))
    (fun (src, dst, volumes, model) ->
      let model = { model with LM.queue_depth = None } in
      let msgs = List.map (fun volume -> msg ~src ~dst ~volume) volumes in
      let times =
        List.concat_map (fun v -> fragment_times model v) volumes
      in
      let work =
        model.LM.compute_cycles * List.fold_left ( + ) 0 volumes
      in
      T.round_makespan ~model mesh44 msgs
      = if src = dst then work
        else
          max work (flow_shop ~hops:(Pim.Mesh.distance mesh44 src dst) times))

let test_crossing_traffic_pins () =
  (* two volume-2 messages sharing middle link (1,2) of the top row:
     0->2 rides 0,1,2 and 1->3 rides 1,2,3; the second's only conflict
     resolves by FIFO order: both deliver by cycle 4 *)
  check_int "crossing, shared middle link" 4
    (T.round_makespan mesh44
       [ msg ~src:0 ~dst:2 ~volume:2; msg ~src:1 ~dst:3 ~volume:2 ]);
  (* staggered: 0->3 behind 1->3 never waits, pure pipeline *)
  check_int "staggered, no wait" 3
    (T.round_makespan mesh44
       [ msg ~src:0 ~dst:3 ~volume:1; msg ~src:1 ~dst:3 ~volume:1 ]);
  (* bandwidth 2 halves (ceil) each hop: 2 + 1 + 1 on one link *)
  check_int "bandwidth-2 serialization" 4
    (T.round_makespan
       ~model:(LM.create ~bandwidth:2 ())
       mesh44
       [
         msg ~src:0 ~dst:1 ~volume:3;
         msg ~src:0 ~dst:1 ~volume:2;
         msg ~src:0 ~dst:1 ~volume:1;
       ]);
  (* wormhole pipelines the 6-hop volume-3 message the store-and-forward
     model ships in 18 cycles: three unit flits take hops + flits - 1 *)
  check_int "wormhole pipelining" 8
    (T.round_makespan
       ~model:(LM.create ~wormhole:true ~flit:1 ())
       mesh44
       [ msg ~src:0 ~dst:15 ~volume:3 ]);
  check_int "store-and-forward reference" 18
    (T.round_makespan mesh44 [ msg ~src:0 ~dst:15 ~volume:3 ])

let test_queue_depth_backpressure_pin () =
  (* one slow packet on the second link, two fast ones behind it: with a
     depth-1 queue the third finishes its first hop into a full queue and
     must block in place, holding link (0,1) *)
  let msgs =
    [
      msg ~src:0 ~dst:3 ~volume:4;
      msg ~src:0 ~dst:3 ~volume:1;
      msg ~src:0 ~dst:3 ~volume:1;
    ]
  in
  let unbounded = T.round_stats mesh44 msgs in
  let bounded =
    T.round_stats ~model:(LM.create ~queue_depth:1 ()) mesh44 msgs
  in
  check_int "unbounded = flow shop" (flow_shop ~hops:3 [ 4; 1; 1 ])
    unbounded.T.cycles;
  check_int "unbounded never stalls" 0 unbounded.T.queue_stall_cycles;
  check_bool "depth-1 stalls" true (bounded.T.queue_stall_cycles > 0);
  check_bool "backpressure never speeds up" true
    (bounded.T.cycles >= unbounded.T.cycles)

(* ------------------------------------------------------------------ *)
(* Compute occupancy                                                   *)
(* ------------------------------------------------------------------ *)

let test_compute_occupancy_delays_injection () =
  (* rank 0 sinks 3 reference units: at 2 cycles per unit it is busy
     until cycle 6, so its own migration cannot start before then *)
  let rounds =
    [
      {
        Pim.Simulator.migrations = [ msg ~src:0 ~dst:1 ~volume:1 ];
        references = [ msg ~src:4 ~dst:0 ~volume:3 ];
      };
    ]
  in
  let free = T.run mesh44 rounds in
  let busy =
    T.run ~model:(LM.create ~compute_cycles:2 ()) mesh44 rounds
  in
  check_int "free compute: both packets overlap" 3 free.T.total_cycles;
  (* reference 4->0 lands in 3 cycles; migration waits out rank 0's six
     busy cycles and ships on cycle 7 *)
  check_int "occupied source injects late" 7 busy.T.total_cycles;
  check_bool "waiting ranks accounted" true (busy.T.compute_idle > 0);
  (* an all-local round still pays the execution time *)
  let local =
    [
      {
        Pim.Simulator.migrations = [];
        references = [ msg ~src:5 ~dst:5 ~volume:4 ];
      };
    ]
  in
  check_int "local round, free compute" 0 (T.run mesh44 local).T.total_cycles;
  check_int "local round, occupied" 8
    (T.run ~model:(LM.create ~compute_cycles:2 ()) mesh44 local).T.total_cycles

(* ------------------------------------------------------------------ *)
(* Faults × queue depth: stall, never deadlock                         *)
(* ------------------------------------------------------------------ *)

(* Dead links (1,2), (5,6), (9,10) leave row 3 as the only crossing from
   the west columns to the east: three row messages all detour through
   the (13,14) bottleneck. *)
let bottleneck_fault =
  Pim.Fault.create ~dead_links:[ (1, 2); (5, 6); (9, 10) ] ()

let test_fault_detour_stalls_no_deadlock () =
  (* a slow packet occupies the bottleneck link (13,14) from cycle 0
     while two fast detoured packets converge on it; with depth-1 queues
     the second one in line finishes hop (9,13) into a full queue and
     must block in place *)
  let msgs =
    [
      msg ~src:13 ~dst:15 ~volume:4;
      msg ~src:8 ~dst:11 ~volume:1;
      msg ~src:4 ~dst:7 ~volume:1;
    ]
  in
  let free = T.round_stats ~fault:bottleneck_fault mesh44 msgs in
  let squeezed =
    T.round_stats ~fault:bottleneck_fault
      ~model:(LM.create ~queue_depth:1 ())
      mesh44 msgs
  in
  check_int "detours pay the long way round" free.T.volume_hops
    squeezed.T.volume_hops;
  check_bool "depth-1 through the bottleneck stalls" true
    (squeezed.T.queue_stall_cycles > 0);
  check_bool "backpressure never speeds up" true
    (squeezed.T.cycles >= free.T.cycles)

let prop_faulty_bounded_queues_terminate (label, mesh, fault) =
  let arb =
    Gen.trace_arbitrary ~mesh ~max_data:5 ~max_windows:3 ~max_count:3 ()
  in
  QCheck.Test.make
    ~name:("bounded queues on faulty " ^ label ^ ": stall, never deadlock")
    ~count:20 arb
    (fun trace ->
      let problem = Sched.Problem.create ~kernel ~fault mesh trace in
      let schedule = Sched.Scheduler.solve problem Sched.Scheduler.Gomcds in
      let rounds = Sched.Schedule.to_rounds schedule trace in
      let free = T.run ~fault mesh rounds in
      (* raises Deadlock (failing the test) if backpressure ever wedges *)
      let squeezed =
        T.run ~fault ~model:(LM.create ~queue_depth:1 ()) mesh rounds
      in
      squeezed.T.total_cycles >= free.T.total_cycles
      && squeezed.T.total_volume_hops = free.T.total_volume_hops)

let faulty_bounded_cases =
  [ ("mesh", mesh44, fault_mesh); ("torus", torus35, fault_torus) ]

(* ------------------------------------------------------------------ *)
(* Honest stats sanity                                                 *)
(* ------------------------------------------------------------------ *)

let prop_honest_stats_sane =
  QCheck.Test.make
    ~name:"link_utilization in [0,1], bandwidth_idle >= 0, any model"
    ~count:100 model_and_messages (fun (model, msgs) ->
      let r = T.round_stats ~model mesh44 msgs in
      r.T.link_utilization >= 0.
      && r.T.link_utilization <= 1.
      && r.T.bandwidth_idle >= 0
      && r.T.queue_stall_cycles >= 0
      && r.T.compute_idle >= 0)

let suite =
  [
    Gen.case "differential: every scheduler, every topo x fault"
      test_differential_every_scheduler;
    Gen.to_alcotest (prop_differential_random_traces (List.nth topo_cases 0));
    Gen.to_alcotest (prop_differential_random_traces (List.nth topo_cases 1));
    Gen.to_alcotest (prop_differential_random_traces (List.nth topo_cases 2));
    Gen.to_alcotest (prop_differential_random_traces (List.nth topo_cases 3));
    Gen.to_alcotest prop_differential_raw_batches;
    Gen.to_alcotest prop_flit_conservation;
    Gen.to_alcotest prop_volume_hops_invariant;
    Gen.to_alcotest prop_cycles_lower_bounds;
    Gen.to_alcotest prop_monotone_in_bandwidth;
    Gen.to_alcotest prop_monotone_in_queue_depth;
    Gen.to_alcotest prop_energy_additivity;
    Gen.case "energy fields match Energy module"
      test_energy_matches_energy_module;
    Gen.to_alcotest prop_lone_message_exact;
    Gen.to_alcotest prop_shared_route_exact;
    Gen.case "crossing-traffic pins" test_crossing_traffic_pins;
    Gen.case "queue-depth backpressure pin" test_queue_depth_backpressure_pin;
    Gen.case "compute occupancy delays injection"
      test_compute_occupancy_delays_injection;
    Gen.case "fault detour through bottleneck stalls, no deadlock"
      test_fault_detour_stalls_no_deadlock;
    Gen.to_alcotest
      (prop_faulty_bounded_queues_terminate (List.nth faulty_bounded_cases 0));
    Gen.to_alcotest
      (prop_faulty_bounded_queues_terminate (List.nth faulty_bounded_cases 1));
    Gen.to_alcotest prop_honest_stats_sane;
  ]
