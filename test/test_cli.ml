(* End-to-end tests of the pimsched command-line interface: each subcommand
   is executed as a real process against the built binary. *)

let binary =
  (* tests run in _build/default/test; the CLI is built alongside *)
  Filename.concat (Filename.concat Filename.parent_dir_name "bin")
    "pimsched.exe"

let run_cli args =
  let out = Filename.temp_file "pimsched_cli" ".out" in
  Fun.protect
    ~finally:(fun () -> Sys.remove out)
    (fun () ->
      let cmd =
        Printf.sprintf "%s %s > %s 2>&1" (Filename.quote binary) args
          (Filename.quote out)
      in
      let code = Sys.command cmd in
      let ic = open_in out in
      let text =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      (code, text))

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let check_ok name args expects =
  let code, text = run_cli args in
  Alcotest.(check int) (name ^ ": exit code") 0 code;
  List.iter
    (fun needle ->
      if not (contains text needle) then
        Alcotest.failf "%s: output missing %S in:\n%s" name needle text)
    expects

let test_binary_exists () =
  Alcotest.(check bool) "built" true (Sys.file_exists binary)

let test_compare () =
  check_ok "compare" "compare -b 1 -n 8"
    [ "gomcds"; "lower-bound"; "improvement" ]

let test_schedule_simulate () =
  check_ok "schedule" "schedule -b 2 -n 8 -a lomcds --simulate"
    [ "lomcds"; "simulated" ]

let test_example () =
  check_ok "example" "example" [ "GOMCDS"; "window 3" ]

let test_table () =
  check_ok "table" "table --which 1 --sizes 8" [ "Table 1"; "8x8"; "Avg" ]

let test_show () =
  check_ok "show" "show -b 1 -n 8 -w 2 -d 0 -a gomcds"
    [ "total references in window 2"; "trajectory of datum 0" ]

let test_replicate () =
  check_ok "replicate" "replicate -b 2 -n 8 -k 4"
    [ "single-copy lower bound"; "max_copies=4" ]

let test_sweep_stdout () =
  check_ok "sweep" "sweep --sizes 8" [ "workload,algorithm,total"; "b5-8x8" ]

let test_export_and_reimport () =
  let path = Filename.temp_file "pimsched_cli" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      check_ok "export" (Printf.sprintf "export-trace -b tc -n 8 -o %s" path)
        [ "wrote tc" ];
      check_ok "reimport"
        (Printf.sprintf "compare --trace-file %s" path)
        [ "gomcds" ])

let test_plan_roundtrip () =
  let path = Filename.temp_file "pimsched_cli" ".plan" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      check_ok "plan-out"
        (Printf.sprintf "schedule -b 1 -n 8 -a gomcds --plan-out %s" path)
        [ "plan written" ];
      let plan = Sched.Schedule_serial.load path in
      Alcotest.(check int) "plan windows" 7 (Sched.Schedule.n_windows plan))

(* Drive `pimsched serve` as a real daemon over a pipe. *)
let run_serve_cli flags requests =
  let infile = Filename.temp_file "pimsched_serve" ".in" in
  let out = Filename.temp_file "pimsched_serve" ".out" in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove infile;
      Sys.remove out)
    (fun () ->
      let oc = open_out infile in
      List.iter
        (fun l ->
          output_string oc l;
          output_char oc '\n')
        requests;
      close_out oc;
      let cmd =
        Printf.sprintf "%s serve %s < %s > %s 2>&1" (Filename.quote binary)
          flags (Filename.quote infile) (Filename.quote out)
      in
      let code = Sys.command cmd in
      let ic = open_in out in
      let text =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      (code, String.split_on_char '\n' (String.trim text)))

let test_serve_smoke () =
  let code, lines =
    run_serve_cli "--jobs 2 --batch 4"
      [
        {|{"id":1,"op":"ping"}|};
        {|{"id":2,"workload":"1","size":8,"algorithm":"gomcds"}|};
        {|{"id":3,"op":"stats"}|};
        {|{"id":4,"op":"shutdown"}|};
      ]
  in
  Alcotest.(check int) "exit code" 0 code;
  Alcotest.(check int) "one response per request" 4 (List.length lines);
  Alcotest.(check string)
    "ping" {|{"id":1,"ok":true,"result":{"protocol":"pim-sched-serve/1"}}|}
    (List.nth lines 0);
  List.iter
    (fun (i, needle) ->
      if not (contains (List.nth lines i) needle) then
        Alcotest.failf "response %d missing %S in:\n%s" i needle
          (List.nth lines i))
    [
      (1, {|"ok":true|});
      (1, {|"algorithm":"gomcds"|});
      (2, {|"requests":3|});
      (3, {|"stopping":true|});
    ]

(* The served plan must be byte-identical to what the one-shot CLI writes
   with --plan-out for the same instance. *)
let test_serve_matches_plan_out () =
  let path = Filename.temp_file "pimsched_cli" ".plan" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      check_ok "plan-out"
        (Printf.sprintf "schedule -b 1 -n 8 -a gomcds --plan-out %s" path)
        [ "plan written" ];
      let ic = open_in_bin path in
      let file_plan =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      let code, lines =
        run_serve_cli ""
          [ {|{"id":1,"workload":"1","size":8,"algorithm":"gomcds"}|} ]
      in
      Alcotest.(check int) "exit code" 0 code;
      match Obs.Json.parse (List.nth lines 0) with
      | Ok (Obs.Json.Obj fields) -> (
          match List.assoc_opt "result" fields with
          | Some (Obs.Json.Obj r) -> (
              match List.assoc_opt "plan" r with
              | Some (Obs.Json.String served_plan) ->
                  Alcotest.(check string)
                    "served plan = --plan-out bytes" file_plan served_plan
              | _ -> Alcotest.fail "no plan in served result")
          | _ -> Alcotest.fail "no result in served response")
      | _ -> Alcotest.failf "unparseable response: %s" (List.nth lines 0))

let test_serve_rejects_over_budget () =
  let code, lines =
    run_serve_cli "--max-arena-mb 0"
      [ {|{"id":1,"workload":"1","size":8}|}; {|{"id":2,"op":"shutdown"}|} ]
  in
  Alcotest.(check int) "exit code" 0 code;
  if not (contains (List.nth lines 0) {|"code":"over-budget"|}) then
    Alcotest.failf "expected over-budget rejection, got:\n%s"
      (List.nth lines 0)

let test_torus_flag () =
  check_ok "torus" "schedule -b 1 -n 8 -a gomcds --torus" [ "torus" ]

let test_stats () =
  check_ok "stats" "stats -b 5 -n 8" [ "drift="; "entropy" ]

let test_profile () =
  check_ok "profile" "profile gomcds -b 1 -n 8"
    [
      "scheduler.gomcds";
      "layered.solve";
      "layered.nodes_expanded";
      "problem.vector_hit";
      "counters:";
    ]

let test_metrics_json () =
  let path = Filename.temp_file "pimsched_cli" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      check_ok "schedule metrics"
        (Printf.sprintf "schedule -b 1 -n 8 -a gomcds --metrics-json %s" path)
        [ "gomcds" ];
      let ic = open_in path in
      let text =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      List.iter
        (fun needle ->
          if not (contains text needle) then
            Alcotest.failf "metrics json missing %S in:\n%s" needle text)
        [
          {|"schema":"pim-sched-metrics/1"|};
          {|"command":"schedule"|};
          {|"layered.nodes_expanded"|};
        ])

let test_profile_chrome_trace () =
  let path = Filename.temp_file "pimsched_cli" ".trace.json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      check_ok "profile chrome"
        (Printf.sprintf "profile gomcds -b 1 -n 8 --chrome-out %s" path)
        [ "scheduler.gomcds" ];
      let ic = open_in path in
      let text =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      List.iter
        (fun needle ->
          if not (contains text needle) then
            Alcotest.failf "chrome trace missing %S in:\n%s" needle text)
        [ {|"traceEvents"|}; {|"ph":"X"|}; {|"name":"layered.solve"|} ])

let test_bad_arguments_fail () =
  let code, _ = run_cli "schedule -b 9" in
  Alcotest.(check bool) "rejects unknown benchmark" true (code <> 0);
  let code, _ = run_cli "schedule -a wizardry" in
  Alcotest.(check bool) "rejects unknown algorithm" true (code <> 0)

let test_jobs_and_kernel_validated () =
  List.iter
    (fun (name, args, needle) ->
      let code, text = run_cli args in
      Alcotest.(check bool) (name ^ ": nonzero exit") true (code <> 0);
      if not (contains text needle) then
        Alcotest.failf "%s: missing %S in:\n%s" name needle text)
    [
      ("jobs 0", "schedule -b 1 -n 8 --jobs 0", "expected N >= 1");
      ("jobs negative", "compare -b 1 -n 8 --jobs=-3", "expected N >= 1");
      ("unknown kernel", "schedule -b 1 -n 8 --kernel wizardry",
       "unknown kernel");
    ]

let test_faults () =
  check_ok "faults"
    "faults gomcds --seed 42 -b 1 -n 8 --rates 0.0,0.2,0.4"
    [ "degradation ablation"; "rescheduled"; "no-resched" ]

let test_faults_json () =
  let path = Filename.temp_file "pimsched_cli" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      check_ok "faults json"
        (Printf.sprintf
           "faults gomcds --seed 42 -b 1 -n 8 --rates 0.0,0.3 --link-rate \
            0.1 --json-out %s"
           path)
        [ "ablation written" ];
      let ic = open_in path in
      let text =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      List.iter
        (fun needle ->
          if not (contains text needle) then
            Alcotest.failf "faults json missing %S in:\n%s" needle text)
        [
          {|"schema":"pim-sched-faults/1"|};
          {|"paid_rescheduled"|};
          {|"paid_no_reschedule"|};
          {|"dead_nodes"|};
        ])

(* The headline acceptance run: rescheduling must never lose to riding
   out the repaired plan, at any injected rate, and cost must not improve
   as the array degrades. *)
let test_faults_reschedule_beats () =
  let path = Filename.temp_file "pimsched_cli" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      check_ok "faults sweep"
        (Printf.sprintf
           "faults gomcds --seed 42 -b 3 -n 16 --mesh 8x8 --rates \
            0.0,0.1,0.2,0.3 --json-out %s"
           path)
        [ "degradation ablation" ];
      let ic = open_in path in
      let text =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      (* pull every "field":int occurrence, in row order *)
      let ints field =
        let key = Printf.sprintf "%S:" field in
        let out = ref [] in
        let rec go i =
          if i + String.length key <= String.length text then
            if String.sub text i (String.length key) = key then begin
              let j = ref (i + String.length key) in
              let start = !j in
              while
                !j < String.length text
                && (match text.[!j] with '0' .. '9' | '-' -> true | _ -> false)
              do
                incr j
              done;
              out := int_of_string (String.sub text start (!j - start)) :: !out;
              go !j
            end
            else go (i + 1)
        in
        go 0;
        List.rev !out
      in
      let resched = ints "paid_rescheduled" in
      let keep = ints "paid_no_reschedule" in
      Alcotest.(check int) "four rows" 4 (List.length resched);
      List.iter2
        (fun r k ->
          Alcotest.(check bool) "reschedule never loses" true (r <= k))
        resched keep;
      let rec monotone = function
        | a :: (b :: _ as rest) -> a <= b && monotone rest
        | _ -> true
      in
      Alcotest.(check bool) "cost monotone in fault rate" true
        (monotone resched);
      Alcotest.(check bool) "rescheduling wins somewhere in the sweep" true
        (List.exists2 (fun r k -> r < k) resched keep))

(* --jobs must not change any reported number: capture each command's
   output serial and at 4 domains and compare byte-for-byte. *)
let test_jobs_flag_deterministic () =
  List.iter
    (fun (name, args) ->
      let code1, serial = run_cli (args ^ " --jobs 1") in
      let code4, parallel = run_cli (args ^ " -j 4") in
      Alcotest.(check int) (name ^ ": jobs=1 exit") 0 code1;
      Alcotest.(check int) (name ^ ": jobs=4 exit") 0 code4;
      Alcotest.(check string) (name ^ ": identical output") serial parallel)
    [
      ("schedule", "schedule -b 1 -n 8 -a best-refined");
      ("compare", "compare -b 3 -n 8");
      ("table", "table --which 2 --sizes 8");
      ("sweep", "sweep --sizes 8");
    ]

let suite =
  [
    Gen.case "binary exists" test_binary_exists;
    Gen.case "compare" test_compare;
    Gen.case "schedule --simulate" test_schedule_simulate;
    Gen.case "example" test_example;
    Gen.case "table" test_table;
    Gen.case "show" test_show;
    Gen.case "replicate" test_replicate;
    Gen.case "sweep to stdout" test_sweep_stdout;
    Gen.case "export and reimport" test_export_and_reimport;
    Gen.case "plan roundtrip" test_plan_roundtrip;
    Gen.case "torus flag" test_torus_flag;
    Gen.case "stats" test_stats;
    Gen.case "profile" test_profile;
    Gen.case "schedule --metrics-json" test_metrics_json;
    Gen.case "profile --chrome-out" test_profile_chrome_trace;
    Gen.case "bad arguments fail" test_bad_arguments_fail;
    Gen.case "--jobs/--kernel validated" test_jobs_and_kernel_validated;
    Gen.case "faults" test_faults;
    Gen.case "faults --json-out" test_faults_json;
    Gen.case "faults: reschedule beats, monotone" test_faults_reschedule_beats;
    Gen.case "--jobs is output-invariant" test_jobs_flag_deterministic;
    Gen.case "serve smoke over a pipe" test_serve_smoke;
    Gen.case "serve plan = --plan-out bytes" test_serve_matches_plan_out;
    Gen.case "serve --max-arena-mb rejects" test_serve_rejects_over_budget;
  ]
