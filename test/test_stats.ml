let mesh = Gen.mesh44
let check_float = Alcotest.(check (float 1e-6))
let check_bool = Alcotest.(check bool)

let test_centroid () =
  let w = Gen.window ~n_data:1 [ (0, 0, 1); (0, 3, 1) ] in
  (* ranks 0=(0,0) and 3=(3,0), equal weight *)
  (match Reftrace.Stats.centroid mesh w ~data:0 with
  | Some (x, y) ->
      check_float "x" 1.5 x;
      check_float "y" 0. y
  | None -> Alcotest.fail "centroid expected");
  Alcotest.(check (option (pair (float 1e-6) (float 1e-6))))
    "unreferenced" None
    (Reftrace.Stats.centroid mesh (Reftrace.Window.create ~n_data:1) ~data:0)

let test_centroid_weighted () =
  let w = Gen.window ~n_data:1 [ (0, 0, 3); (0, 3, 1) ] in
  match Reftrace.Stats.centroid mesh w ~data:0 with
  | Some (x, _) -> check_float "weighted x" 0.75 x
  | None -> Alcotest.fail "centroid expected"

let test_entropy_extremes () =
  let single = Gen.window ~n_data:1 [ (0, 5, 9) ] in
  check_float "one processor" 0. (Reftrace.Stats.window_entropy mesh single);
  let uniform =
    Gen.window ~n_data:1 (List.init 16 (fun p -> (0, p, 1)))
  in
  check_float "uniform over 16" 4. (Reftrace.Stats.window_entropy mesh uniform);
  check_float "empty" 0.
    (Reftrace.Stats.window_entropy mesh (Reftrace.Window.create ~n_data:1))

let test_stencil_profile_is_stationary () =
  let t = Workloads.Stencil.trace ~n:8 ~sweeps:4 mesh in
  let p = Reftrace.Stats.profile mesh t in
  check_float "no drift" 0. p.Reftrace.Stats.drift;
  check_bool "full reuse after first sweep" true (p.Reftrace.Stats.reuse > 0.7)

let test_code_kernel_drifts () =
  let t = Workloads.Code_kernel.trace ~n:16 mesh in
  let p = Reftrace.Stats.profile mesh t in
  check_bool "hot spot moves" true (p.Reftrace.Stats.drift > 0.3)

let test_matmul_high_sharing () =
  let t = Workloads.Matmul.trace ~n:8 mesh in
  let p = Reftrace.Stats.profile mesh t in
  (* row/column broadcast: each A element of the pivot row is read by a
     whole row of the processor grid *)
  check_bool "shared" true (p.Reftrace.Stats.sharing_degree > 1.5)

let test_profile_counts () =
  let t = Workloads.Lu.trace ~n:8 mesh in
  let p = Reftrace.Stats.profile mesh t in
  Alcotest.(check int) "windows" (Reftrace.Trace.n_windows t) p.Reftrace.Stats.windows;
  Alcotest.(check int)
    "references"
    (Reftrace.Trace.total_references t)
    p.Reftrace.Stats.references

let prop_metrics_in_range =
  let arb = Gen.trace_arbitrary ~max_data:5 ~max_windows:5 ~max_count:4 () in
  QCheck.Test.make ~name:"metrics stay in their ranges" ~count:100 arb
    (fun t ->
      let p = Reftrace.Stats.profile mesh t in
      p.Reftrace.Stats.drift >= 0.
      && p.Reftrace.Stats.entropy >= 0.
      && p.Reftrace.Stats.entropy <= 4. +. 1e-9
      && p.Reftrace.Stats.reuse >= 0.
      && p.Reftrace.Stats.reuse <= 1.
      && p.Reftrace.Stats.sharing_degree >= 0.)

let prop_single_window_traces_are_stationary =
  (* one window: drift is 0 by definition and movement cannot help *)
  let arb = Gen.trace_arbitrary ~max_data:4 ~max_windows:1 ~max_count:4 () in
  QCheck.Test.make
    ~name:"single-window traces: drift 0 and GOMCDS = SCDS cost" ~count:100
    arb (fun t ->
      let p = Reftrace.Stats.profile mesh t in
      p.Reftrace.Stats.drift = 0.
      && Sched.Schedule.total_cost (Sched.Gomcds.schedule (Sched.Problem.create mesh t)) t
         = Sched.Schedule.total_cost (Sched.Scds.schedule (Sched.Problem.create mesh t)) t)

let suite =
  [
    Gen.case "centroid" test_centroid;
    Gen.case "centroid weighted" test_centroid_weighted;
    Gen.case "entropy extremes" test_entropy_extremes;
    Gen.case "stencil stationary" test_stencil_profile_is_stationary;
    Gen.case "code kernel drifts" test_code_kernel_drifts;
    Gen.case "matmul high sharing" test_matmul_high_sharing;
    Gen.case "profile counts" test_profile_counts;
    Gen.to_alcotest prop_metrics_in_range;
    Gen.to_alcotest prop_single_window_traces_are_stationary;
  ]
