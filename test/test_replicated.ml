let mesh = Gen.mesh44
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let total ?capacity ?max_copies trace =
  let r = Sched.Replicated.run ?capacity ?max_copies mesh trace in
  (Sched.Replicated.cost r mesh trace).Sched.Replicated.total

let test_single_copy_equals_gomcds () =
  let t = Workloads.Code_kernel.trace ~n:8 mesh in
  check_int "max_copies=1 is GOMCDS"
    (Sched.Schedule.total_cost (Sched.Gomcds.schedule (Sched.Problem.create mesh t)) t)
    (total ~max_copies:1 t)

let test_broadcast_window_replicates () =
  (* one datum read by all four corners, heavily: copies pay off *)
  let t =
    Gen.trace mesh ~n_data:1
      [ [ (0, 0, 6); (0, 3, 6); (0, 12, 6); (0, 15, 6) ] ]
  in
  let r = Sched.Replicated.run ~max_copies:4 mesh t in
  check_bool "replicated" true (Sched.Replicated.max_live_copies r ~data:0 > 1);
  check_bool "beats single-copy optimum" true
    (total ~max_copies:4 t < Sched.Bounds.lower_bound_in (Sched.Problem.create mesh t))

let test_no_benefit_no_copies () =
  (* all reads at one processor: a second copy can never pay *)
  let t = Gen.trace mesh ~n_data:1 [ [ (0, 5, 9) ]; [ (0, 5, 9) ] ] in
  let r = Sched.Replicated.run ~max_copies:4 mesh t in
  check_int "one copy" 1 (Sched.Replicated.max_live_copies r ~data:0)

let test_carried_copy_is_free () =
  (* same broadcast pattern twice: copies created in window 0 are carried
     into window 1 with no second creation charge *)
  let spec = [ (0, 0, 6); (0, 15, 6) ] in
  let t = Gen.trace mesh ~n_data:1 [ spec; spec ] in
  let r = Sched.Replicated.run ~max_copies:2 mesh t in
  let b = Sched.Replicated.cost r mesh t in
  check_int "copies in both windows" 2
    (List.length (Sched.Replicated.copies r ~window:1 ~data:0));
  (* creation charged once: at most one transfer across the whole run *)
  check_bool "single creation" true (b.Sched.Replicated.creation <= 6)

let test_rejects_zero_copies () =
  let t = Gen.trace mesh ~n_data:1 [ [ (0, 0, 1) ] ] in
  Alcotest.check_raises "zero"
    (Invalid_argument "Replicated.run: max_copies must be at least 1")
    (fun () -> ignore (Sched.Replicated.run ~max_copies:0 mesh t))

let prop_never_worse_than_gomcds =
  let arb = Gen.trace_arbitrary ~max_data:5 ~max_windows:4 ~max_count:5 () in
  QCheck.Test.make ~name:"replication never costs more than GOMCDS"
    ~count:100 arb (fun t ->
      let gomcds = Sched.Schedule.total_cost (Sched.Gomcds.schedule (Sched.Problem.create mesh t)) t in
      total ~max_copies:3 t <= gomcds)

let prop_simulated_equals_analytic =
  let arb = Gen.trace_arbitrary ~max_data:5 ~max_windows:4 ~max_count:4 () in
  QCheck.Test.make
    ~name:"replicated schedule: simulated traffic = analytic cost" ~count:60
    arb (fun t ->
      let r = Sched.Replicated.run ~max_copies:3 mesh t in
      let analytic = (Sched.Replicated.cost r mesh t).Sched.Replicated.total in
      let report =
        Pim.Simulator.run mesh (Sched.Replicated.to_rounds r mesh t)
      in
      report.Pim.Simulator.total_cost = analytic)

let prop_capacity_respected_with_copies =
  let arb = Gen.trace_arbitrary ~max_data:12 ~max_windows:4 ~max_count:4 () in
  QCheck.Test.make ~name:"copies never exceed memory capacity" ~count:60 arb
    (fun t ->
      let n = Reftrace.Data_space.size (Reftrace.Trace.space t) in
      let capacity = Pim.Memory.capacity_for ~data_count:n ~mesh ~headroom:2 in
      let r = Sched.Replicated.run ~capacity ~max_copies:4 mesh t in
      Option.is_none (Sched.Replicated.check_capacity r ~capacity))

let prop_more_copies_never_fewer_wins =
  (* not monotone in general, but k copies can always mimic k=1 per window;
     our greedy guarantees <= the GOMCDS baseline for every k *)
  let arb = Gen.trace_arbitrary ~max_data:4 ~max_windows:4 ~max_count:5 () in
  QCheck.Test.make
    ~name:"every max_copies stays below the single-copy GOMCDS cost"
    ~count:60 arb (fun t ->
      let baseline = total ~max_copies:1 t in
      List.for_all (fun k -> total ~max_copies:k t <= baseline) [ 2; 3; 4 ])

let test_matmul_pivot_row_benefits () =
  (* window k of C = A*A broadcasts row/column k of A: replication should
     strictly beat single-copy scheduling *)
  let t = Workloads.Matmul.trace ~n:8 mesh in
  let single = Sched.Schedule.total_cost (Sched.Gomcds.schedule (Sched.Problem.create mesh t)) t in
  let replicated = total ~max_copies:4 t in
  check_bool "strict win" true (replicated < single)

let test_written_datum_stays_single_copy () =
  (* same broadcast pull as the replication test, but the datum is written:
     coherence pins it to one copy *)
  let space = Reftrace.Data_space.matrix "A" 1 in
  let w = Reftrace.Window.create ~n_data:1 in
  List.iter
    (fun proc -> Reftrace.Window.add w ~data:0 ~proc ~count:6)
    [ 0; 3; 12; 15 ];
  Reftrace.Window.add ~kind:Reftrace.Window.Write w ~data:0 ~proc:0 ~count:1;
  let t = Reftrace.Trace.create space [ w ] in
  let r = Sched.Replicated.run ~max_copies:4 mesh t in
  Alcotest.(check int)
    "pinned" 1
    (Sched.Replicated.max_live_copies r ~data:0)

let test_write_traffic_charged_to_primary () =
  let space = Reftrace.Data_space.matrix "A" 1 in
  let w = Reftrace.Window.create ~n_data:1 in
  Reftrace.Window.add ~kind:Reftrace.Window.Write w ~data:0 ~proc:15 ~count:2;
  Reftrace.Window.add w ~data:0 ~proc:15 ~count:1;
  let t = Reftrace.Trace.create space [ w ] in
  let r = Sched.Replicated.run mesh t in
  (* all activity at rank 15: primary sits there, everything local *)
  Alcotest.(check int)
    "free" 0
    (Sched.Replicated.cost r mesh t).Sched.Replicated.total

let test_coherent_simulation_matches () =
  (* mixed reads and writes across windows: identity must still hold *)
  let space =
    Reftrace.Data_space.create
      (Reftrace.Data_space.array_desc "A" ~rows:1 ~cols:4)
      []
  in
  let w0 = Reftrace.Window.create ~n_data:4 in
  List.iter
    (fun proc -> Reftrace.Window.add w0 ~data:0 ~proc ~count:4)
    [ 0; 15 ];
  Reftrace.Window.add ~kind:Reftrace.Window.Write w0 ~data:1 ~proc:3 ~count:2;
  let w1 = Reftrace.Window.create ~n_data:4 in
  Reftrace.Window.add ~kind:Reftrace.Window.Write w1 ~data:0 ~proc:5 ~count:1;
  Reftrace.Window.add w1 ~data:1 ~proc:9 ~count:3;
  let t = Reftrace.Trace.create space [ w0; w1 ] in
  let r = Sched.Replicated.run ~max_copies:3 mesh t in
  let analytic = (Sched.Replicated.cost r mesh t).Sched.Replicated.total in
  let report = Pim.Simulator.run mesh (Sched.Replicated.to_rounds r mesh t) in
  Alcotest.(check int) "identity" analytic report.Pim.Simulator.total_cost

let test_lu_replication_limited_by_writes () =
  (* LU writes most touched elements every window; replication should gain
     far less than on the read-only matmul inputs *)
  let lu = Workloads.Lu.trace ~n:8 mesh in
  let single = Sched.Schedule.total_cost (Sched.Gomcds.schedule (Sched.Problem.create mesh lu)) lu in
  let r = Sched.Replicated.run ~max_copies:8 mesh lu in
  let replicated = (Sched.Replicated.cost r mesh lu).Sched.Replicated.total in
  Alcotest.(check bool) "still helps a bit" true (replicated <= single);
  Alcotest.(check bool)
    "but writes cap the win" true
    (float_of_int replicated > 0.5 *. float_of_int single)

(* Differential oracle for the greedy pricing rewrite: the pre-rewrite
   [run] re-priced the whole read profile with [read_cost] for every
   candidate rank; the current one prices each candidate from per-axis
   distance tables and a per-round base array. Both must pick identical
   copy sets and charge identical creation transfers, so we keep the old
   greedy verbatim (modulo using only exported APIs) and replay it. *)
module Pricing_oracle = struct
  let nearest mesh set proc =
    match set with
    | [] -> invalid_arg "nearest: empty copy set"
    | first :: rest ->
        List.fold_left
          (fun best r ->
            let db = Pim.Mesh.distance mesh best proc
            and dr = Pim.Mesh.distance mesh r proc in
            if dr < db || (dr = db && r < best) then r else best)
          first rest

  let read_cost mesh set profile =
    List.fold_left
      (fun acc (proc, count) ->
        acc + (count * Pim.Mesh.distance mesh (nearest mesh set proc) proc))
      0 profile

  (* copy sets and total creation charge of the pre-rewrite greedy *)
  let run ?capacity ?(max_copies = 2) mesh trace =
    let n_data = Reftrace.Data_space.size (Reftrace.Trace.space trace) in
    let n_windows = Reftrace.Trace.n_windows trace in
    let m = Pim.Mesh.size mesh in
    let windows = Array.of_list (Reftrace.Trace.windows trace) in
    let primary = Sched.Gomcds.schedule (Sched.Problem.of_capacity ?capacity mesh trace) in
    let loads = Array.make_matrix n_windows m 0 in
    for w = 0 to n_windows - 1 do
      for d = 0 to n_data - 1 do
        let r = Sched.Schedule.center primary ~window:w ~data:d in
        loads.(w).(r) <- loads.(w).(r) + 1
      done
    done;
    let has_room w r =
      match capacity with None -> true | Some c -> loads.(w).(r) < c
    in
    let copies = Array.make_matrix n_windows n_data [] in
    let creation_total = ref 0 in
    List.iter
      (fun data ->
        let prev_set = ref [] in
        for w = 0 to n_windows - 1 do
          let home = Sched.Schedule.center primary ~window:w ~data in
          let set = ref [ home ] in
          let written = Reftrace.Window.writes windows.(w) data > 0 in
          let profile = Reftrace.Window.read_profile windows.(w) data in
          if profile <> [] && not written then begin
            let continue = ref true in
            while !continue && List.length !set < max_copies do
              let current = read_cost mesh !set profile in
              let sources = !set @ !prev_set in
              let best = ref None in
              for r = 0 to m - 1 do
                if (not (List.mem r !set)) && has_room w r then begin
                  let creation =
                    if List.mem r !prev_set then 0
                    else Pim.Mesh.distance mesh (nearest mesh sources r) r
                  in
                  let gain = current - read_cost mesh (r :: !set) profile in
                  let net = gain - creation in
                  let better =
                    match !best with
                    | None -> net > 0
                    | Some (_, _, best_net) -> net > best_net
                  in
                  if better then best := Some (r, creation, net)
                end
              done;
              match !best with
              | Some (r, creation, net) when net > 0 ->
                  creation_total := !creation_total + creation;
                  set := !set @ [ r ];
                  loads.(w).(r) <- loads.(w).(r) + 1
              | Some _ | None -> continue := false
            done
          end;
          copies.(w).(data) <- !set;
          prev_set := !set
        done)
      (Sched.Ordering.by_total_references trace);
    (copies, !creation_total)
end

let prop_pricing_matches_old_oracle =
  let arb = Gen.trace_arbitrary ~max_data:5 ~max_windows:4 ~max_count:4 () in
  QCheck.Test.make
    ~name:"axis-table greedy pricing equals the old read_cost greedy"
    ~count:50 arb (fun t ->
      let n = Reftrace.Data_space.size (Reftrace.Trace.space t) in
      let n_windows = Reftrace.Trace.n_windows t in
      let tight = Pim.Memory.capacity_for ~data_count:n ~mesh ~headroom:2 in
      List.for_all
        (fun (capacity, max_copies) ->
          let r = Sched.Replicated.run ?capacity ~max_copies mesh t in
          let oracle_copies, oracle_creation =
            Pricing_oracle.run ?capacity ~max_copies mesh t
          in
          (Sched.Replicated.cost r mesh t).Sched.Replicated.creation
          = oracle_creation
          && List.for_all
               (fun w ->
                 List.for_all
                   (fun data ->
                     Sched.Replicated.copies r ~window:w ~data
                     = oracle_copies.(w).(data))
                   (List.init n Fun.id))
               (List.init n_windows Fun.id))
        [ (None, 1); (None, 3); (None, 4); (Some tight, 4) ])

let suite =
  [
    Gen.to_alcotest prop_pricing_matches_old_oracle;
    Gen.case "single copy equals gomcds" test_single_copy_equals_gomcds;
    Gen.case "written datum stays single copy" test_written_datum_stays_single_copy;
    Gen.case "write traffic to primary" test_write_traffic_charged_to_primary;
    Gen.case "coherent simulation matches" test_coherent_simulation_matches;
    Gen.case "LU replication limited by writes" test_lu_replication_limited_by_writes;
    Gen.case "broadcast window replicates" test_broadcast_window_replicates;
    Gen.case "no benefit, no copies" test_no_benefit_no_copies;
    Gen.case "carried copy is free" test_carried_copy_is_free;
    Gen.case "rejects zero copies" test_rejects_zero_copies;
    Gen.to_alcotest prop_never_worse_than_gomcds;
    Gen.to_alcotest prop_simulated_equals_analytic;
    Gen.to_alcotest prop_capacity_respected_with_copies;
    Gen.to_alcotest prop_more_copies_never_fewer_wins;
    Gen.case "matmul pivot row benefits" test_matmul_pivot_row_benefits;
  ]
