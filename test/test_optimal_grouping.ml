let mesh = Gen.mesh44

let partition_cost mesh trace ~data groups =
  (* evaluate a per-datum partition the way the schedulers price it *)
  let windows = Array.of_list (Reftrace.Trace.windows trace) in
  let rec go prev acc = function
    | [] -> acc
    | (g : Sched.Grouping.group) :: rest ->
        let refc = ref 0 in
        for w = g.Sched.Grouping.first to g.Sched.Grouping.last do
          refc :=
            !refc
            + Sched.Cost.reference_cost mesh windows.(w) ~data
                ~center:g.Sched.Grouping.center
        done;
        let move =
          match prev with
          | None -> 0
          | Some p -> Pim.Mesh.distance mesh p g.Sched.Grouping.center
        in
        go (Some g.Sched.Grouping.center) (acc + !refc + move) rest
  in
  go None 0 groups

let test_single_window_trivial () =
  let t = Gen.trace mesh ~n_data:1 [ [ (0, 9, 3) ] ] in
  match Sched.Grouping.optimal_groups (Sched.Problem.create mesh t) ~data:0 with
  | [ g ] ->
      Alcotest.(check int) "covers window" 0 g.Sched.Grouping.first;
      Alcotest.(check int) "center" 9 g.Sched.Grouping.center
  | _ -> Alcotest.fail "one group expected"

let test_unreferenced_empty () =
  let t = Gen.trace mesh ~n_data:2 [ [ (0, 1, 1) ] ] in
  Alcotest.(check int)
    "empty" 0
    (List.length (Sched.Grouping.optimal_groups (Sched.Problem.create mesh t) ~data:1))

let prop_optimal_equals_gomcds_per_datum =
  (* the structural fact from the interface: optimal grouping attains the
     per-datum GOMCDS optimum exactly *)
  let arb = Gen.trace_arbitrary ~max_data:4 ~max_windows:6 ~max_count:5 () in
  QCheck.Test.make ~name:"optimal grouping cost = GOMCDS optimum per datum"
    ~count:100 arb (fun t ->
      let n = Reftrace.Data_space.size (Reftrace.Trace.space t) in
      let ok = ref true in
      for data = 0 to n - 1 do
        let groups = Sched.Grouping.optimal_groups (Sched.Problem.create mesh t) ~data in
        if groups <> [] then begin
          let dp_cost, _ = Sched.Gomcds.optimal_centers mesh t ~data in
          if partition_cost mesh t ~data groups <> dp_cost then ok := false
        end
      done;
      !ok)

let prop_optimal_never_worse_than_greedy =
  let arb = Gen.trace_arbitrary ~max_data:4 ~max_windows:6 ~max_count:5 () in
  QCheck.Test.make ~name:"optimal grouping <= greedy Algorithm 3 per datum"
    ~count:100 arb (fun t ->
      let n = Reftrace.Data_space.size (Reftrace.Trace.space t) in
      let ok = ref true in
      for data = 0 to n - 1 do
        let optimal = Sched.Grouping.optimal_groups (Sched.Problem.create mesh t) ~data in
        let greedy = Sched.Grouping.groups (Sched.Problem.create mesh t) ~data ~centers:`Local in
        match (optimal, greedy) with
        | [], [] -> ()
        | o, g ->
            if
              partition_cost mesh t ~data o > partition_cost mesh t ~data g
            then ok := false
      done;
      !ok)

let prop_groups_well_formed =
  let arb = Gen.trace_arbitrary ~max_data:3 ~max_windows:6 ~max_count:4 () in
  QCheck.Test.make ~name:"optimal groups are ordered and disjoint" ~count:100
    arb (fun t ->
      let n = Reftrace.Data_space.size (Reftrace.Trace.space t) in
      let ok = ref true in
      for data = 0 to n - 1 do
        let rec check prev = function
          | [] -> ()
          | (g : Sched.Grouping.group) :: rest ->
              if g.Sched.Grouping.first <= prev then ok := false;
              if g.Sched.Grouping.last < g.Sched.Grouping.first then
                ok := false;
              check g.Sched.Grouping.last rest
        in
        check (-1) (Sched.Grouping.optimal_groups (Sched.Problem.create mesh t) ~data)
      done;
      !ok)

let test_optimal_run_matches_gomcds_unbounded () =
  let t = Workloads.Code_kernel.trace ~n:8 mesh in
  Alcotest.(check int)
    "whole-schedule equality"
    (Sched.Schedule.total_cost (Sched.Gomcds.schedule (Sched.Problem.create mesh t)) t)
    (Sched.Schedule.total_cost (Sched.Grouping.optimal_schedule (Sched.Problem.create mesh t)) t)

let prop_optimal_run_capacity_respected =
  let arb = Gen.trace_arbitrary ~max_data:12 ~max_windows:4 ~max_count:3 () in
  QCheck.Test.make ~name:"optimal_run respects capacity" ~count:50 arb
    (fun t ->
      let n = Reftrace.Data_space.size (Reftrace.Trace.space t) in
      let capacity = Pim.Memory.capacity_for ~data_count:n ~mesh ~headroom:2 in
      let s = Sched.Grouping.optimal_schedule (Sched.Problem.of_capacity ~capacity mesh t) in
      Option.is_none (Sched.Schedule.check_capacity s ~capacity))

let suite =
  [
    Gen.case "single window trivial" test_single_window_trivial;
    Gen.case "unreferenced empty" test_unreferenced_empty;
    Gen.to_alcotest prop_optimal_equals_gomcds_per_datum;
    Gen.to_alcotest prop_optimal_never_worse_than_greedy;
    Gen.to_alcotest prop_groups_well_formed;
    Gen.case "optimal_run = gomcds unbounded" test_optimal_run_matches_gomcds_unbounded;
    Gen.to_alcotest prop_optimal_run_capacity_respected;
  ]
