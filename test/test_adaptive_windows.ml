let mesh = Gen.mesh44
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_uniform_collapses_to_one_window () =
  let t = Workloads.Stencil.trace ~n:8 ~sweeps:6 mesh in
  let events = Reftrace.Window_builder.events_of_trace t in
  let adaptive =
    Reftrace.Window_builder.adaptive (Reftrace.Trace.space t) events
  in
  check_int "one window" 1 (Reftrace.Trace.n_windows adaptive)

let test_phase_shift_detected () =
  (* two clearly distinct phases: all activity at rank 0, then all at 15 *)
  let space = Reftrace.Data_space.matrix "A" 2 in
  let ev step proc data = Reftrace.Trace.event ~step ~proc ~data () in
  let events =
    List.init 10 (fun i -> ev i 0 0)
    @ List.init 10 (fun i -> ev (10 + i) 15 1)
  in
  let t = Reftrace.Window_builder.adaptive space events in
  check_int "two phases" 2 (Reftrace.Trace.n_windows t);
  check_int "first phase refs" 10
    (Reftrace.Window.total_references (Reftrace.Trace.window t 0))

let test_threshold_one_never_splits () =
  let t = Workloads.Code_kernel.trace ~n:8 mesh in
  let events = Reftrace.Window_builder.events_of_trace t in
  let adaptive =
    Reftrace.Window_builder.adaptive ~threshold:1.
      (Reftrace.Trace.space t) events
  in
  check_int "single window" 1 (Reftrace.Trace.n_windows adaptive)

let test_threshold_zero_splits_on_any_change () =
  let space = Reftrace.Data_space.matrix "A" 2 in
  let ev step proc data = Reftrace.Trace.event ~step ~proc ~data () in
  let events = [ ev 0 0 0; ev 1 1 0; ev 2 1 1 ] in
  let t = Reftrace.Window_builder.adaptive ~threshold:0. space events in
  (* step 2 has the same processor histogram as step 1: merged *)
  check_int "splits only on histogram change" 2 (Reftrace.Trace.n_windows t)

let test_preserves_references () =
  let t = Workloads.Code_kernel.trace ~n:16 mesh in
  let events = Reftrace.Window_builder.events_of_trace t in
  let adaptive =
    Reftrace.Window_builder.adaptive (Reftrace.Trace.space t) events
  in
  check_int "same total"
    (Reftrace.Trace.total_references t)
    (Reftrace.Trace.total_references adaptive)

let test_validates_threshold () =
  let space = Reftrace.Data_space.matrix "A" 1 in
  let events = [ Reftrace.Trace.event ~step:0 ~proc:0 ~data:0 () ] in
  Alcotest.check_raises "threshold > 1"
    (Invalid_argument "Window_builder.adaptive: threshold must be in [0, 1]")
    (fun () ->
      ignore (Reftrace.Window_builder.adaptive ~threshold:1.5 space events))

let prop_window_count_bounded_by_extremes =
  (* threshold 0 fragments maximally (a window holds only identical
     consecutive histograms, and identical steps never split at any
     threshold); threshold 1 always yields one window *)
  let arb = Gen.trace_arbitrary ~max_data:4 ~max_windows:6 ~max_count:4 () in
  QCheck.Test.make
    ~name:"adaptive window count lies between the threshold extremes"
    ~count:60 arb (fun t ->
      let events = Reftrace.Window_builder.events_of_trace t in
      let space = Reftrace.Trace.space t in
      let count th =
        Reftrace.Trace.n_windows
          (Reftrace.Window_builder.adaptive ~threshold:th space events)
      in
      let finest = count 0. in
      List.for_all (fun th -> 1 <= count th && count th <= finest)
        [ 0.1; 0.25; 0.5; 0.9 ]
      && count 1. = 1)

let prop_preserves_counts_random =
  let arb = Gen.trace_arbitrary ~max_data:5 ~max_windows:6 ~max_count:4 () in
  QCheck.Test.make ~name:"adaptive rebuild preserves reference counts"
    ~count:60 arb (fun t ->
      let events = Reftrace.Window_builder.events_of_trace t in
      let adaptive =
        Reftrace.Window_builder.adaptive (Reftrace.Trace.space t) events
      in
      Reftrace.Trace.total_references adaptive
      = Reftrace.Trace.total_references t)

let test_schedulers_accept_adaptive_windows () =
  let t = Workloads.Code_kernel.trace ~n:16 mesh in
  let events = Reftrace.Window_builder.events_of_trace t in
  let adaptive =
    Reftrace.Window_builder.adaptive ~threshold:0.15
      (Reftrace.Trace.space t) events
  in
  let cost =
    Sched.Schedule.total_cost (Sched.Gomcds.schedule (Sched.Problem.create mesh adaptive)) adaptive
  in
  check_bool "schedulable" true (cost > 0)

let suite =
  [
    Gen.case "uniform collapses" test_uniform_collapses_to_one_window;
    Gen.case "phase shift detected" test_phase_shift_detected;
    Gen.case "threshold 1 never splits" test_threshold_one_never_splits;
    Gen.case "threshold 0 splits on change" test_threshold_zero_splits_on_any_change;
    Gen.case "preserves references" test_preserves_references;
    Gen.case "validates threshold" test_validates_threshold;
    Gen.to_alcotest prop_window_count_bounded_by_extremes;
    Gen.to_alcotest prop_preserves_counts_random;
    Gen.case "schedulers accept adaptive windows" test_schedulers_accept_adaptive_windows;
  ]
