let check_int = Alcotest.(check int)
let mesh = Gen.mesh44

let test_of_cost_vector_sorted () =
  let list = Sched.Processor_list.of_cost_vector [| 5; 1; 3; 1 |] in
  Alcotest.(check (list int)) "sorted, ties by rank" [ 1; 3; 2; 0 ] list

let test_for_data_head_is_center () =
  let w = Gen.window ~n_data:1 [ (0, 9, 3); (0, 2, 1) ] in
  match Sched.Processor_list.for_data mesh w ~data:0 with
  | head :: _ ->
      check_int "head = local optimal center"
        (Sched.Cost.local_optimal_center mesh w ~data:0)
        head
  | [] -> Alcotest.fail "non-empty list expected"

let test_first_available_skips_full () =
  let memory = Pim.Memory.create mesh ~capacity:1 in
  ignore (Pim.Memory.allocate memory 4);
  Alcotest.(check (option int))
    "skips full head" (Some 7)
    (Sched.Processor_list.first_available memory [ 4; 7; 2 ]);
  Alcotest.(check (option int))
    "none" None
    (Sched.Processor_list.first_available memory [ 4 ])

let test_assign_allocates () =
  let memory = Pim.Memory.create mesh ~capacity:1 in
  check_int "first" 4 (Sched.Processor_list.assign memory [ 4; 7 ]);
  check_int "then next" 7 (Sched.Processor_list.assign memory [ 4; 7 ]);
  Alcotest.check_raises "exhausted"
    (Failure "Processor_list.assign: all candidate processors full")
    (fun () -> ignore (Sched.Processor_list.assign memory [ 4; 7 ]))

let prop_full_list_always_assignable =
  QCheck.Test.make ~name:"complete list always assigns under headroom"
    ~count:100
    QCheck.(int_range 1 32)
    (fun n_data ->
      let capacity = Pim.Memory.capacity_for ~data_count:n_data ~mesh ~headroom:1 in
      let memory = Pim.Memory.create mesh ~capacity in
      let complete = List.init (Pim.Mesh.size mesh) Fun.id in
      (* every datum finds a slot when capacity * procs >= n_data *)
      List.for_all
        (fun _ ->
          match Sched.Processor_list.first_available memory complete with
          | Some rank -> Pim.Memory.allocate memory rank
          | None -> false)
        (List.init n_data Fun.id))

(* The counting pass must reproduce the comparison sort exactly, ties
   included; costs beyond the density threshold exercise the fallback. *)
let reference_of_costs ~n cost =
  List.sort
    (fun a b ->
      let c = Int.compare (cost a) (cost b) in
      if c <> 0 then c else Int.compare a b)
    (List.init n Fun.id)

let prop_of_costs_matches_comparison_sort =
  QCheck.Test.make
    ~name:"of_costs: counting pass = comparison sort, ties pinned"
    ~count:300
    QCheck.(
      pair (int_range 0 2)
        (list_of_size
           (Gen.int_range 1 64)
           (int_range 0 1_000_000)))
    (fun (mode, vals) ->
      (* mode 0: tie-heavy; 1: dense; 2: sparse (comparison fallback) *)
      let squash =
        match mode with 0 -> 4 | 1 -> 201 | _ -> 1_000_001
      in
      let costs = Array.of_list (List.map (fun v -> v mod squash) vals) in
      let n = Array.length costs in
      let cost = Array.get costs in
      Sched.Processor_list.of_costs ~n cost = reference_of_costs ~n cost)

let suite =
  [
    Gen.case "of_cost_vector sorted" test_of_cost_vector_sorted;
    Gen.to_alcotest prop_of_costs_matches_comparison_sort;
    Gen.case "for_data head is center" test_for_data_head_is_center;
    Gen.case "first_available skips full" test_first_available_skips_full;
    Gen.case "assign allocates" test_assign_allocates;
    Gen.to_alcotest prop_full_list_always_assignable;
  ]
