let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let torus = Pim.Mesh.square ~wrap:true 4
let mesh = Gen.mesh44

let rank m x y = Pim.Mesh.rank_of_coord m (Pim.Coord.make ~x ~y)

let test_wraps_flag () =
  check_bool "torus" true (Pim.Mesh.wraps torus);
  check_bool "mesh" false (Pim.Mesh.wraps mesh)

let test_wrap_distance () =
  (* opposite corners are 2 hops apart on a 4x4 torus *)
  check_int "corner to corner" 2
    (Pim.Mesh.distance torus (rank torus 0 0) (rank torus 3 3));
  check_int "half way is the diameter" 4
    (Pim.Mesh.distance torus (rank torus 0 0) (rank torus 2 2));
  (* torus distance never exceeds mesh distance *)
  Pim.Mesh.iter_ranks torus (fun a ->
      Pim.Mesh.iter_ranks torus (fun b ->
          check_bool "never longer" true
            (Pim.Mesh.distance torus a b <= Pim.Mesh.distance mesh a b)))

let test_wrap_route_goes_short_way () =
  let path =
    Pim.Mesh.xy_route torus ~src:(rank torus 0 0) ~dst:(rank torus 3 0)
  in
  Alcotest.(check (list int))
    "one wrap hop"
    [ rank torus 0 0; rank torus 3 0 ]
    path

let test_wrap_neighbours () =
  let ns = Pim.Mesh.neighbours torus (rank torus 0 0) in
  check_int "four neighbours at a corner" 4 (List.length ns);
  check_bool "wrap west" true (List.mem (rank torus 3 0) ns);
  check_bool "wrap north" true (List.mem (rank torus 0 3) ns)

let test_wrap_links_count () =
  (* every node has degree 4 on a 4x4 torus: 16 * 4 directed links *)
  check_int "links" 64 (List.length (Pim.Mesh.links torus))

let test_degenerate_two_wide () =
  let t2 = Pim.Mesh.square ~wrap:true 2 in
  (* both directions coincide: degree 2, no duplicate neighbours *)
  check_int "degree 2" 2 (List.length (Pim.Mesh.neighbours t2 0));
  check_int "distance" 2 (Pim.Mesh.distance t2 0 3)

let prop_route_length_is_distance =
  QCheck.Test.make ~name:"torus route length = distance + 1" ~count:300
    QCheck.(pair (int_bound 15) (int_bound 15))
    (fun (src, dst) ->
      List.length (Pim.Mesh.xy_route torus ~src ~dst)
      = Pim.Mesh.distance torus src dst + 1)

let prop_route_steps_are_links =
  QCheck.Test.make ~name:"torus route steps are links" ~count:300
    QCheck.(pair (int_bound 15) (int_bound 15))
    (fun (src, dst) ->
      let rec ok = function
        | a :: (b :: _ as rest) ->
            List.mem b (Pim.Mesh.neighbours torus a) && ok rest
        | [ _ ] | [] -> true
      in
      ok (Pim.Mesh.xy_route torus ~src ~dst))

let prop_torus_triangle_inequality =
  QCheck.Test.make ~name:"torus distance triangle inequality" ~count:300
    QCheck.(triple (int_bound 15) (int_bound 15) (int_bound 15))
    (fun (a, b, c) ->
      Pim.Mesh.distance torus a c
      <= Pim.Mesh.distance torus a b + Pim.Mesh.distance torus b c)

let prop_schedulers_work_on_torus =
  let arb =
    Gen.trace_arbitrary ~mesh:torus ~max_data:6 ~max_windows:4 ~max_count:4 ()
  in
  QCheck.Test.make ~name:"scheduler hierarchy holds on the torus" ~count:50
    arb (fun t ->
      let total a =
        Sched.Schedule.total_cost (Sched.Scheduler.run a torus t) t
      in
      let g = total Sched.Scheduler.Gomcds in
      g <= total Sched.Scheduler.Lomcds && g <= total Sched.Scheduler.Scds)

let prop_torus_simulation_matches_analytic =
  let arb =
    Gen.trace_arbitrary ~mesh:torus ~max_data:5 ~max_windows:4 ~max_count:3 ()
  in
  QCheck.Test.make ~name:"torus simulated cost = analytic cost" ~count:50 arb
    (fun t ->
      let s = Sched.Scheduler.run Sched.Scheduler.Gomcds torus t in
      let report =
        Pim.Simulator.run torus (Sched.Schedule.to_rounds s t)
      in
      report.Pim.Simulator.total_cost = Sched.Schedule.total_cost s t)

let test_torus_never_costs_more_than_mesh () =
  let t = Workloads.Code_kernel.trace ~n:8 mesh in
  let on m = Sched.Schedule.total_cost (Sched.Gomcds.schedule (Sched.Problem.create m t)) t in
  check_bool "wrap links can only help" true (on torus <= on mesh)

let suite =
  [
    Gen.case "wraps flag" test_wraps_flag;
    Gen.case "wrap distance" test_wrap_distance;
    Gen.case "route goes short way" test_wrap_route_goes_short_way;
    Gen.case "wrap neighbours" test_wrap_neighbours;
    Gen.case "wrap links count" test_wrap_links_count;
    Gen.case "degenerate 2-wide torus" test_degenerate_two_wide;
    Gen.to_alcotest prop_route_length_is_distance;
    Gen.to_alcotest prop_route_steps_are_links;
    Gen.to_alcotest prop_torus_triangle_inequality;
    Gen.to_alcotest prop_schedulers_work_on_torus;
    Gen.to_alcotest prop_torus_simulation_matches_analytic;
    Gen.case "torus <= mesh cost" test_torus_never_costs_more_than_mesh;
  ]
