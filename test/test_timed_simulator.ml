let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let mesh = Gen.mesh44
let msg = Pim.Router.message

let makespan msgs = Pim.Timed_simulator.round_makespan mesh msgs

let test_empty_round () =
  check_int "no packets" 0 (makespan []);
  check_int "local only" 0 (makespan [ msg ~src:3 ~dst:3 ~volume:5 ])

let test_single_message_store_and_forward () =
  (* volume v over d hops: v cycles per hop *)
  check_int "1 hop, v=1" 1 (makespan [ msg ~src:0 ~dst:1 ~volume:1 ]);
  check_int "1 hop, v=4" 4 (makespan [ msg ~src:0 ~dst:1 ~volume:4 ]);
  check_int "6 hops, v=1" 6 (makespan [ msg ~src:0 ~dst:15 ~volume:1 ]);
  check_int "6 hops, v=3" 18 (makespan [ msg ~src:0 ~dst:15 ~volume:3 ])

let test_contention_serializes () =
  (* two packets over the same single link *)
  check_int "serialized" 5
    (makespan [ msg ~src:0 ~dst:1 ~volume:2; msg ~src:0 ~dst:1 ~volume:3 ])

let test_disjoint_messages_parallel () =
  (* opposite corners, non-overlapping routes *)
  let a = msg ~src:0 ~dst:1 ~volume:4 in
  let b = msg ~src:15 ~dst:14 ~volume:2 in
  check_int "parallel" 4 (makespan [ a; b ])

let test_fifo_determinism () =
  let msgs =
    [ msg ~src:0 ~dst:2 ~volume:1; msg ~src:1 ~dst:3 ~volume:1 ]
  in
  check_int "stable result" (makespan msgs) (makespan msgs)

(* The hash-set rewrite of the active-link bookkeeping must not perturb
   grant order: two runs of a contended batch agree on the entire report
   (every stat, including the floats), not just the makespan. *)
let test_repeat_run_reports_identical () =
  let rounds =
    [
      {
        Pim.Simulator.migrations = [ msg ~src:0 ~dst:15 ~volume:3 ];
        references =
          [
            msg ~src:5 ~dst:6 ~volume:2;
            msg ~src:1 ~dst:13 ~volume:1;
            msg ~src:12 ~dst:3 ~volume:2;
            msg ~src:2 ~dst:14 ~volume:1;
          ];
      };
      {
        Pim.Simulator.migrations = [];
        references = [ msg ~src:4 ~dst:7 ~volume:2; msg ~src:7 ~dst:4 ~volume:2 ];
      };
    ]
  in
  let model = Pim.Link_model.create ~bandwidth:2 ~queue_depth:1 () in
  check_bool "degenerate reports identical" true
    (Pim.Timed_simulator.run mesh rounds = Pim.Timed_simulator.run mesh rounds);
  check_bool "bounded-queue reports identical" true
    (Pim.Timed_simulator.run ~model mesh rounds
    = Pim.Timed_simulator.run ~model mesh rounds)

(* The legacy utilization field divides volume-hops by links ever active
   times the makespan (documented in the .mli): a lone single-hop message
   scores exactly 1.0, and a lone h-hop message scores 1/h because every
   link of the route is charged for the full makespan. The honest
   per-cycle figure, link_utilization, is 1.0 for any lone message. *)
let test_utilization_definition () =
  let check_util = Alcotest.(check (float 1e-12)) in
  let single_hop = Pim.Timed_simulator.round_stats mesh [ msg ~src:0 ~dst:1 ~volume:3 ] in
  check_util "single message, single hop: utilization = 1.0" 1.0
    single_hop.Pim.Timed_simulator.utilization;
  check_util "lone single-hop message: link_utilization = 1.0" 1.0
    single_hop.Pim.Timed_simulator.link_utilization;
  let six_hops = Pim.Timed_simulator.round_stats mesh [ msg ~src:0 ~dst:15 ~volume:3 ] in
  check_util "lone 6-hop message: legacy utilization = 1/6" (1. /. 6.)
    six_hops.Pim.Timed_simulator.utilization;
  check_util "lone 6-hop message: link_utilization = 1.0" 1.0
    six_hops.Pim.Timed_simulator.link_utilization

let test_pipeline_overlap () =
  (* two unit packets over the same 2-hop route: the second starts on link 1
     while the first is on link 2 -> 3 cycles, not 4 *)
  let msgs = [ msg ~src:0 ~dst:2 ~volume:1; msg ~src:0 ~dst:2 ~volume:1 ] in
  check_int "pipelined" 3 (makespan msgs)

let test_run_aggregates_rounds () =
  let r1 =
    { Pim.Simulator.migrations = []; references = [ msg ~src:0 ~dst:1 ~volume:2 ] }
  in
  let r2 =
    { Pim.Simulator.migrations = [ msg ~src:1 ~dst:0 ~volume:1 ]; references = [] }
  in
  let report = Pim.Timed_simulator.run mesh [ r1; r2 ] in
  check_int "total cycles" 3 report.Pim.Timed_simulator.total_cycles;
  check_int "volume hops" 3 report.Pim.Timed_simulator.total_volume_hops;
  match report.Pim.Timed_simulator.rounds with
  | [ a; b ] ->
      check_int "round 0" 2 a.Pim.Timed_simulator.cycles;
      check_int "round 1" 1 b.Pim.Timed_simulator.cycles;
      check_bool "utilization positive" true
        (a.Pim.Timed_simulator.utilization > 0.)
  | _ -> Alcotest.fail "two rounds expected"

let test_volume_hops_match_analytic () =
  let t = Workloads.Code_kernel.trace ~n:8 mesh in
  let s = Sched.Gomcds.schedule (Sched.Problem.create mesh t) in
  let rounds = Sched.Schedule.to_rounds s t in
  let timed = Pim.Timed_simulator.run mesh rounds in
  check_int "analytic cost recovered"
    (Sched.Schedule.total_cost s t)
    timed.Pim.Timed_simulator.total_volume_hops

let random_messages_arbitrary =
  let gen =
    let open QCheck.Gen in
    list_size (int_range 1 12)
      (triple (int_bound 15) (int_bound 15) (int_range 1 4))
    >>= fun specs ->
    return
      (List.map (fun (src, dst, volume) -> msg ~src ~dst ~volume) specs)
  in
  QCheck.make
    ~print:(fun msgs ->
      String.concat "; "
        (List.map (Format.asprintf "%a" Pim.Router.pp_message) msgs))
    gen

let prop_makespan_respects_lower_bounds =
  QCheck.Test.make ~name:"makespan >= max(volume*hops) and max link load"
    ~count:100 random_messages_arbitrary (fun msgs ->
      let span = makespan msgs in
      let live =
        List.filter
          (fun (m : Pim.Router.message) -> m.src <> m.dst && m.volume > 0)
          msgs
      in
      let message_bound =
        List.fold_left
          (fun acc (m : Pim.Router.message) ->
            max acc (m.volume * Pim.Mesh.distance mesh m.src m.dst))
          0 live
      in
      let stats = Pim.Link_stats.create mesh in
      ignore (Pim.Router.route_all mesh stats msgs);
      let link_bound =
        match Pim.Link_stats.max_link stats with
        | Some (_, _, v) -> v
        | None -> 0
      in
      span >= message_bound && span >= link_bound)

let prop_makespan_at_most_serialized =
  QCheck.Test.make ~name:"makespan <= fully serialized execution" ~count:100
    random_messages_arbitrary (fun msgs ->
      let span = makespan msgs in
      let serial =
        List.fold_left
          (fun acc (m : Pim.Router.message) ->
            acc + (m.volume * Pim.Mesh.distance mesh m.src m.dst))
          0 msgs
      in
      span <= serial || (span = 0 && serial = 0))

let test_schedules_cut_makespan () =
  let t = Workloads.Code_kernel.trace ~n:16 mesh in
  let cycles algo =
    let s = Sched.Scheduler.run algo mesh t in
    (Pim.Timed_simulator.run mesh (Sched.Schedule.to_rounds s t))
      .Pim.Timed_simulator.total_cycles
  in
  check_bool "gomcds faster than row-wise under contention" true
    (cycles Sched.Scheduler.Gomcds < cycles Sched.Scheduler.Row_wise)

let suite =
  [
    Gen.case "empty round" test_empty_round;
    Gen.case "store and forward" test_single_message_store_and_forward;
    Gen.case "contention serializes" test_contention_serializes;
    Gen.case "disjoint parallel" test_disjoint_messages_parallel;
    Gen.case "fifo determinism" test_fifo_determinism;
    Gen.case "repeat-run reports identical" test_repeat_run_reports_identical;
    Gen.case "utilization definition" test_utilization_definition;
    Gen.case "pipeline overlap" test_pipeline_overlap;
    Gen.case "run aggregates rounds" test_run_aggregates_rounds;
    Gen.case "volume-hops match analytic" test_volume_hops_match_analytic;
    Gen.to_alcotest prop_makespan_respects_lower_bounds;
    Gen.to_alcotest prop_makespan_at_most_serialized;
    Gen.case "schedules cut makespan" test_schedules_cut_makespan;
  ]
