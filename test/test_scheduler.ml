let mesh = Gen.mesh44

let test_name_roundtrip () =
  List.iter
    (fun a ->
      Alcotest.(check string)
        "roundtrip"
        (Sched.Scheduler.name a)
        (Sched.Scheduler.name
           (Sched.Scheduler.of_name (Sched.Scheduler.name a))))
    Sched.Scheduler.all

let test_of_name_rejects_unknown () =
  match Sched.Scheduler.of_name "fancy" with
  | _ -> Alcotest.fail "of_name accepted an unknown name"
  | exception Invalid_argument msg ->
      let contains needle =
        let n = String.length needle and m = String.length msg in
        let rec go i = i + n <= m && (String.sub msg i n = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "names the offender" true (contains "\"fancy\"");
      (* the error should teach the valid spellings *)
      List.iter
        (fun valid ->
          Alcotest.(check bool) ("lists " ^ valid) true (contains valid))
        Sched.Scheduler.valid_names

let test_of_name_case_insensitive () =
  List.iter
    (fun a ->
      let n = Sched.Scheduler.name a in
      Alcotest.(check bool)
        (n ^ " uppercase") true
        (Sched.Scheduler.of_name (String.uppercase_ascii n) = a);
      Alcotest.(check bool)
        (n ^ " padded") true
        (Sched.Scheduler.of_name ("  " ^ n ^ "\t") = a))
    Sched.Scheduler.all

let prop_of_name_inverts_name =
  let arb = QCheck.oneofl ~print:Sched.Scheduler.name Sched.Scheduler.all in
  QCheck.Test.make ~name:"of_name (name a) = a for every algorithm" ~count:100
    arb (fun a -> Sched.Scheduler.of_name (Sched.Scheduler.name a) = a)

let test_improvement () =
  Alcotest.(check (float 1e-9))
    "half" 50.
    (Sched.Scheduler.improvement ~baseline:100 ~cost:50);
  Alcotest.(check (float 1e-9))
    "worse is negative" (-25.)
    (Sched.Scheduler.improvement ~baseline:100 ~cost:125);
  Alcotest.(check (float 1e-9))
    "zero baseline" 0.
    (Sched.Scheduler.improvement ~baseline:0 ~cost:10)

let test_dispatch_all () =
  let t = Gen.trace mesh ~n_data:4 [ [ (0, 5, 2); (1, 3, 1) ]; [ (2, 9, 1) ] ] in
  List.iter
    (fun a ->
      let s, breakdown = Sched.Scheduler.evaluate a mesh t in
      Alcotest.(check int)
        (Sched.Scheduler.name a ^ " consistent")
        breakdown.Sched.Schedule.total
        (Sched.Schedule.total_cost s t))
    Sched.Scheduler.all

let prop_scheduler_hierarchy_unbounded =
  let arb = Gen.trace_arbitrary ~max_data:6 ~max_windows:5 ~max_count:4 () in
  QCheck.Test.make
    ~name:"unbounded: gomcds dominates; grouping never hurts lomcds"
    ~count:100 arb (fun t ->
      (* NB: lomcds <= scds is NOT a theorem — chasing local optima can pay
         more in movement than it saves — so it is not asserted here. *)
      let total a =
        Sched.Schedule.total_cost (Sched.Scheduler.run a mesh t) t
      in
      let scds = total Sched.Scheduler.Scds in
      let lomcds = total Sched.Scheduler.Lomcds in
      let gomcds = total Sched.Scheduler.Gomcds in
      let lg = total Sched.Scheduler.Lomcds_grouped in
      let gg = total Sched.Scheduler.Gomcds_grouped in
      gomcds <= lomcds && gomcds <= scds && lg <= lomcds && gg <= lg
      && gomcds <= gg)

let prop_static_baselines_never_move =
  let arb = Gen.trace_arbitrary ~max_data:6 ~max_windows:5 ~max_count:3 () in
  QCheck.Test.make ~name:"baselines and SCDS never move data" ~count:50 arb
    (fun t ->
      List.for_all
        (fun a ->
          Sched.Schedule.moves (Sched.Scheduler.run a mesh t) = 0)
        Sched.Scheduler.
          [ Row_wise; Column_wise; Block_2d; Cyclic; Random 1; Scds ])

let suite =
  [
    Gen.case "name roundtrip" test_name_roundtrip;
    Gen.case "of_name rejects unknown" test_of_name_rejects_unknown;
    Gen.case "of_name is case-insensitive" test_of_name_case_insensitive;
    Gen.to_alcotest prop_of_name_inverts_name;
    Gen.case "improvement" test_improvement;
    Gen.case "dispatch all" test_dispatch_all;
    Gen.to_alcotest prop_scheduler_hierarchy_unbounded;
    Gen.to_alcotest prop_static_baselines_never_move;
  ]
