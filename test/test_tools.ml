(* Tests for Schedule_serial, Sweep and Energy. *)

let mesh = Gen.mesh44
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* -- Schedule_serial ------------------------------------------------------ *)

let test_schedule_roundtrip () =
  let t = Workloads.Code_kernel.trace ~n:8 mesh in
  let s = Sched.Gomcds.schedule (Sched.Problem.create mesh t) in
  let s' = Sched.Schedule_serial.of_string (Sched.Schedule_serial.to_string s) in
  check_bool "equal" true (Sched.Schedule.equal s s');
  check_int "same cost" (Sched.Schedule.total_cost s t)
    (Sched.Schedule.total_cost s' t)

let test_schedule_roundtrip_torus () =
  let torus = Pim.Mesh.square ~wrap:true 4 in
  let t = Workloads.Code_kernel.trace ~n:8 torus in
  let s = Sched.Gomcds.schedule (Sched.Problem.create torus t) in
  let s' = Sched.Schedule_serial.of_string (Sched.Schedule_serial.to_string s) in
  check_bool "torus preserved" true
    (Pim.Mesh.wraps (Sched.Schedule.mesh s'));
  check_bool "equal" true (Sched.Schedule.equal s s')

let test_schedule_file_roundtrip () =
  let t = Workloads.Lu.trace ~n:6 mesh in
  let s = Sched.Lomcds.schedule (Sched.Problem.create mesh t) in
  let path = Filename.temp_file "pimsched" ".plan" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Sched.Schedule_serial.save s path;
      check_bool "equal" true
        (Sched.Schedule.equal s (Sched.Schedule_serial.load path)))

let check_fails input expected =
  Alcotest.check_raises "parse error" (Failure expected) (fun () ->
      ignore (Sched.Schedule_serial.of_string input))

let test_schedule_parse_errors () =
  check_fails "shape 1 1\n"
    "Schedule_serial.of_string: line 1: shape before mesh";
  check_fails "mesh 4 4\nw 0 0\n"
    "Schedule_serial.of_string: line 2: window row before shape";
  check_fails "mesh 4 4\nshape 1 2\nw 0 3\n"
    "Schedule_serial.of_string: line 3: expected 2 ranks, got 1";
  check_fails "mesh 4 4\nshape 1 1\nw 0 99\n"
    "Schedule_serial.of_string: line 3: Schedule.set_center: invalid rank 99";
  check_fails "mesh 4 4\nshape 2 1\nw 0 0\n"
    "Schedule_serial.of_string: 1 of 2 windows present";
  check_fails "mesh 4 4\nshape 1 1\nw 1 0\n"
    "Schedule_serial.of_string: line 3: expected window 0, got 1"

let prop_schedule_roundtrip_random =
  let arb = Gen.trace_arbitrary ~max_data:6 ~max_windows:4 ~max_count:3 () in
  QCheck.Test.make ~name:"schedule serialization roundtrip" ~count:50 arb
    (fun t ->
      let s = Sched.Lomcds.schedule (Sched.Problem.create mesh t) in
      Sched.Schedule.equal s
        (Sched.Schedule_serial.of_string (Sched.Schedule_serial.to_string s)))

(* -- Sweep ----------------------------------------------------------------- *)

let test_sweep_shape_and_csv () =
  let instances =
    [
      ("lu8", Workloads.Lu.trace ~n:8 mesh);
      ("code8", Workloads.Code_kernel.trace ~n:8 mesh);
    ]
  in
  let algos = Sched.Scheduler.[ Row_wise; Scds; Gomcds ] in
  let rows = Sched.Sweep.run mesh instances algos in
  check_int "rows" 6 (List.length rows);
  let csv = Sched.Sweep.to_csv rows in
  let lines = String.split_on_char '\n' csv in
  check_int "header + 6 + trailing" 8 (List.length lines);
  check_bool "header" true
    (List.hd lines
    = "workload,algorithm,total,reference,movement,moves,improvement_pct,gap_pct");
  (* row-wise improvement is 0 by definition *)
  List.iter
    (fun r ->
      if r.Sched.Sweep.algorithm = "row-wise" then
        Alcotest.(check (float 1e-9)) "baseline" 0. r.Sched.Sweep.improvement)
    rows

let test_sweep_gap_nonnegative () =
  let rows =
    Sched.Sweep.run mesh
      [ ("lu", Workloads.Lu.trace ~n:8 mesh) ]
      Sched.Scheduler.[ Scds; Lomcds; Gomcds; Best_refined ]
  in
  List.iter
    (fun r ->
      check_bool (r.Sched.Sweep.algorithm ^ " gap >= 0") true
        (r.Sched.Sweep.gap >= -1e-9))
    rows

let test_sweep_unbounded_headroom () =
  let rows =
    Sched.Sweep.run ~headroom:0 mesh
      [ ("lu", Workloads.Lu.trace ~n:8 mesh) ]
      [ Sched.Scheduler.Gomcds ]
  in
  match rows with
  | [ r ] ->
      (* unbounded GOMCDS hits the lower bound exactly *)
      Alcotest.(check (float 1e-9)) "zero gap" 0. r.Sched.Sweep.gap
  | _ -> Alcotest.fail "one row expected"

(* -- Energy ----------------------------------------------------------------- *)

let test_energy_arithmetic () =
  let report =
    Pim.Timed_simulator.run mesh
      [
        {
          Pim.Simulator.migrations = [];
          references = [ Pim.Router.message ~src:0 ~dst:1 ~volume:2 ];
        };
      ]
  in
  (* 2 volume-hops, 2 cycles *)
  let params = { Pim.Energy.per_hop = 10.; leak = 0.05 } in
  let transport, leakage = Pim.Energy.breakdown ~params mesh report in
  Alcotest.(check (float 1e-9)) "transport" 20. transport;
  Alcotest.(check (float 1e-9)) "leakage" (0.05 *. 16. *. 2.) leakage;
  Alcotest.(check (float 1e-9))
    "sum" (transport +. leakage)
    (Pim.Energy.of_report ~params mesh report)

let test_energy_prefers_good_schedules () =
  let t = Workloads.Code_kernel.trace ~n:16 mesh in
  let energy algo =
    let s = Sched.Scheduler.run algo mesh t in
    Pim.Energy.of_report mesh
      (Pim.Timed_simulator.run mesh (Sched.Schedule.to_rounds s t))
  in
  check_bool "gomcds cheaper in joules" true
    (energy Sched.Scheduler.Gomcds < energy Sched.Scheduler.Row_wise)

let suite =
  [
    Gen.case "schedule roundtrip" test_schedule_roundtrip;
    Gen.case "schedule roundtrip torus" test_schedule_roundtrip_torus;
    Gen.case "schedule file roundtrip" test_schedule_file_roundtrip;
    Gen.case "schedule parse errors" test_schedule_parse_errors;
    Gen.to_alcotest prop_schedule_roundtrip_random;
    Gen.case "sweep shape and csv" test_sweep_shape_and_csv;
    Gen.case "sweep gap nonnegative" test_sweep_gap_nonnegative;
    Gen.case "sweep unbounded headroom" test_sweep_unbounded_headroom;
    Gen.case "energy arithmetic" test_energy_arithmetic;
    Gen.case "energy prefers good schedules" test_energy_prefers_good_schedules;
  ]
