(* Differential suite for the incremental scheduling core: a session
   reached by patching ([Problem.with_fault_patch]) or by in-place window
   editing ([Problem.invalidate]) must answer every scheduler
   byte-for-byte like a freshly built session — across mesh and torus,
   both cost kernels, serial and parallel pools, node and link faults,
   and the serve daemon's warm-session pool. *)

let plan s = Sched.Schedule_serial.to_string s

(* Solve outcome as a comparable string: schedules compare by serialized
   plan, and a rejected instance must be rejected identically. *)
let solve_repr problem alg =
  match Sched.Scheduler.solve problem alg with
  | s -> "ok:" ^ plan s
  | exception Invalid_argument m -> "invalid:" ^ m
  | exception Assert_failure (file, line, _) ->
      (* Online's initial row-wise placement can land on a dead rank;
         what matters here is that warm and fresh sessions fail alike *)
      Printf.sprintf "assert:%s:%d" file line

let check_equiv name algs fresh warm =
  List.iter
    (fun alg ->
      Alcotest.(check string)
        (Printf.sprintf "%s/%s" name (Sched.Scheduler.name alg))
        (solve_repr fresh alg) (solve_repr warm alg))
    algs

(* Every dispatchable algorithm, including the two excluded from
   [Scheduler.all] (seeded so runs are reproducible). *)
let algorithms =
  Sched.Scheduler.all
  @ [ Sched.Scheduler.Annealing 0x5EED; Sched.Scheduler.Online 2.0 ]

(* The quick subset for QCheck properties: the three paper schedulers
   (bounded candidate consumers included), a merged-window consumer and
   the online heuristic. *)
let quick_algs =
  [
    Sched.Scheduler.Scds;
    Sched.Scheduler.Lomcds;
    Sched.Scheduler.Gomcds;
    Sched.Scheduler.Gomcds_grouped;
    Sched.Scheduler.Online 2.0;
  ]

let meshes =
  [ ("mesh", Pim.Mesh.square 4); ("torus", Pim.Mesh.torus ~rows:4 ~cols:4) ]

let kernels = [ ("sep", `Separable); ("naive", `Naive) ]
let lu mesh = Workloads.Benchmarks.trace Workloads.Benchmarks.B1 ~n:6 mesh
let node_fault = Pim.Fault.create ~dead_nodes:[ 5 ] ()

let link_fault =
  Pim.Fault.create ~dead_nodes:[ 5 ] ~dead_links:[ (0, 1); (9, 10) ] ()

(* ---- fault patches: the full scheduler x topology x kernel x jobs
   matrix on the LU benchmark ---- *)

let test_patch_matrix () =
  List.iter
    (fun (mname, mesh) ->
      let trace = lu mesh in
      List.iter
        (fun (kname, kernel) ->
          List.iter
            (fun jobs ->
              let ctx = Sched.Context.create ~jobs ~kernel mesh trace in
              let base = Sched.Problem.of_context ctx in
              (* warm the caches the patch will carry over *)
              Sched.Problem.prefetch_all base;
              ignore (Sched.Scheduler.solve base Sched.Scheduler.Gomcds);
              let tag f = Printf.sprintf "%s/%s/j%d/%s" mname kname jobs f in
              (* healthy -> node fault: monotone, reprices no row *)
              let p1 = Sched.Problem.with_fault_patch base node_fault in
              check_equiv (tag "node") algorithms
                (Sched.Problem.of_context ~fault:node_fault ctx)
                p1;
              (* node fault -> node+link fault: monotone, BFS repricing *)
              let p2 = Sched.Problem.with_fault_patch p1 link_fault in
              check_equiv (tag "link") algorithms
                (Sched.Problem.of_context ~fault:link_fault ctx)
                p2;
              (* back to healthy: non-monotone, argmins and candidate
                 lists must all drop *)
              let p3 = Sched.Problem.with_fault_patch p2 Pim.Fault.none in
              check_equiv (tag "heal") algorithms
                (Sched.Problem.of_context ctx)
                p3)
            [ 1; 4 ])
        kernels)
    meshes

(* ---- fault patches under a Bounded policy: the candidate lists the
   bounded schedulers consume come from the fill-skipping path when the
   session is healthy and separable, and from slab rows otherwise — both
   must survive a patch ---- *)

let test_patch_bounded () =
  List.iter
    (fun (mname, mesh) ->
      let trace = lu mesh in
      let capacity =
        Workloads.Benchmarks.capacity Workloads.Benchmarks.B1 ~n:6 mesh
      in
      List.iter
        (fun (kname, kernel) ->
          let ctx =
            Sched.Context.create
              ~policy:(Sched.Problem.Bounded capacity)
              ~kernel mesh trace
          in
          let base = Sched.Problem.of_context ctx in
          (* no prefetch: bounded solves on a healthy separable session
             exercise the fill-skipping candidates path *)
          ignore (Sched.Scheduler.solve base Sched.Scheduler.Lomcds);
          ignore (Sched.Scheduler.solve base Sched.Scheduler.Scds);
          let p1 = Sched.Problem.with_fault_patch base node_fault in
          check_equiv
            (Printf.sprintf "%s/%s/bounded" mname kname)
            algorithms
            (Sched.Problem.of_context ~fault:node_fault ctx)
            p1)
        kernels)
    meshes

(* ---- window edits: a datum gaining its first reference in the edited
   window exercises the arena-drop path (its zero-width row layout is
   stale) ---- *)

let test_invalidate_new_datum () =
  let trace =
    Gen.trace Gen.mesh44 ~n_data:3
      [ [ (0, 0, 2); (1, 5, 1); (2, 3, 1) ]; [ (0, 1, 1); (1, 2, 4) ] ]
  in
  let ctx = Sched.Context.create Gen.mesh44 trace in
  let session = Sched.Problem.of_context ctx in
  Sched.Problem.prefetch_all session;
  ignore (Sched.Scheduler.solve session Sched.Scheduler.Gomcds);
  let w1 = Reftrace.Trace.window trace 1 in
  Reftrace.Window.add w1 ~data:2 ~proc:9 ~count:3;
  Sched.Problem.invalidate session ~window:1;
  check_equiv "new-datum edit" algorithms
    (Sched.Problem.of_context ctx)
    session

(* a pure node-fault patch dirties no row: the second prefetch over the
   patched session must refill nothing *)
let test_node_patch_refills_nothing () =
  Obs.enabled := true;
  Obs.reset ();
  Fun.protect
    ~finally:(fun () -> Obs.enabled := false)
    (fun () ->
      let trace = lu (Pim.Mesh.square 4) in
      let ctx = Sched.Context.create (Pim.Mesh.square 4) trace in
      let base = Sched.Problem.of_context ctx in
      Sched.Problem.prefetch_all base;
      let p1 = Sched.Problem.with_fault_patch base node_fault in
      Obs.reset ();
      Sched.Problem.prefetch_all p1;
      let snap = Obs.Metrics.snapshot () in
      Alcotest.(check int)
        "no rows refilled" 0
        (Obs.Metrics.counter snap "problem.rows_refilled");
      Alcotest.(check int)
        "no rows invalidated" 0
        (Obs.Metrics.counter snap "problem.rows_invalidated"))

(* ---- QCheck: random traces, random fault chains ---- *)

(* links of the 4x4 mesh (ascending endpoints, mix of axes) *)
let links44 = [ (0, 1); (1, 2); (4, 5); (5, 9); (10, 11); (2, 6); (14, 15) ]

let fault_gen =
  let open QCheck.Gen in
  list_size (int_range 0 3) (int_range 0 15) >>= fun nodes ->
  list_size (int_range 0 2) (oneofl links44) >>= fun links ->
  return
    (Pim.Fault.create
       ~dead_nodes:(List.sort_uniq compare nodes)
       ~dead_links:(List.sort_uniq compare links)
       ())

let fault_print f = Format.asprintf "%a" Pim.Fault.pp f

let prop_patch_equiv =
  QCheck.Test.make ~count:40
    ~name:"with_fault_patch = fresh session (random trace, fault chain)"
    (QCheck.make
       ~print:(fun (t, f1, f2) ->
         Printf.sprintf "%s / %s / %s" (Gen.trace_print t) (fault_print f1)
           (fault_print f2))
       QCheck.Gen.(
         triple
           (Gen.trace_gen ~max_data:10 ~max_windows:5 ~max_count:3 ())
           fault_gen fault_gen))
    (fun (trace, f1, f2) ->
      QCheck.assume (Pim.Fault.alive_count f1 Gen.mesh44 > 0);
      QCheck.assume (Pim.Fault.alive_count f2 Gen.mesh44 > 0);
      let ctx = Sched.Context.create Gen.mesh44 trace in
      let base = Sched.Problem.of_context ctx in
      ignore (Sched.Scheduler.solve base Sched.Scheduler.Gomcds);
      (* chain two arbitrary (not necessarily monotone) patches *)
      let p1 = Sched.Problem.with_fault_patch base f1 in
      let p2 = Sched.Problem.with_fault_patch p1 f2 in
      let fresh1 = Sched.Problem.of_context ~fault:f1 ctx in
      let fresh2 = Sched.Problem.of_context ~fault:f2 ctx in
      List.for_all
        (fun alg ->
          solve_repr p1 alg = solve_repr fresh1 alg
          && solve_repr p2 alg = solve_repr fresh2 alg)
        quick_algs)

let prop_invalidate_equiv =
  QCheck.Test.make ~count:40
    ~name:"invalidate = fresh session (random in-place window edit)"
    (QCheck.make
       ~print:(fun (t, _, _) -> Gen.trace_print t)
       QCheck.Gen.(
         triple
           (Gen.trace_gen ~max_data:10 ~max_windows:5 ~max_count:3 ())
           (int_range 0 1000)
           (list_size (int_range 1 6)
              (triple (int_range 0 1000) (int_range 0 15) (int_range 1 3)))))
    (fun (trace, wpick, edits) ->
      let ctx = Sched.Context.create Gen.mesh44 trace in
      let session = Sched.Problem.of_context ctx in
      Sched.Problem.prefetch_all session;
      ignore (Sched.Scheduler.solve session Sched.Scheduler.Gomcds);
      let nd = Reftrace.Data_space.size (Reftrace.Trace.space trace) in
      let w = wpick mod Reftrace.Trace.n_windows trace in
      let window = Reftrace.Trace.window trace w in
      List.iter
        (fun (d, proc, count) ->
          Reftrace.Window.add window ~data:(d mod nd) ~proc ~count)
        edits;
      Sched.Problem.invalidate session ~window:w;
      (* the oracle is a session built fresh over the same (now edited)
         context — both see the same memoized merged window *)
      let fresh = Sched.Problem.of_context ctx in
      List.for_all
        (fun alg -> solve_repr session alg = solve_repr fresh alg)
        quick_algs)

(* ---- serve: warm-session checkout answers byte-identically ---- *)

let test_serve_warm_reuse () =
  let config =
    { (Serve.Server.default_config ()) with Serve.Server.memo = false; jobs = 1 }
  in
  let t = Serve.Server.create ~config () in
  let healthy = {|{"id":1,"workload":"1","size":8,"algorithm":"gomcds"}|} in
  let faulted =
    {|{"id":1,"workload":"1","size":8,"algorithm":"gomcds","fault":{"dead_nodes":[5]}}|}
  in
  let r1 = Serve.Server.handle_line t healthy in
  let r2 = Serve.Server.handle_line t healthy in
  (* warm repeat *)
  let r3 = Serve.Server.handle_line t faulted in
  (* warm session patched to the fault *)
  let r4 = Serve.Server.handle_line t healthy in
  (* patched back to healthy *)
  Alcotest.(check string) "warm repeat identical" r1 r2;
  Alcotest.(check string) "healed warm identical" r1 r4;
  let cold = Serve.Server.create ~config () in
  Alcotest.(check string)
    "patched = cold rebuild"
    (Serve.Server.handle_line cold faulted)
    r3;
  match Serve.Server.stats_json t with
  | Obs.Json.Obj fields ->
      Alcotest.(check bool)
        "three warm checkouts" true
        (List.assoc_opt "warm_sessions" fields = Some (Obs.Json.Int 3));
      Alcotest.(check bool)
        "one warm entry parked" true
        (List.assoc_opt "warm_entries" fields = Some (Obs.Json.Int 1))
  | _ -> Alcotest.fail "stats is not an object"

let suite =
  [
    Gen.case "fault patch matrix (all schedulers)" test_patch_matrix;
    Gen.case "fault patch under Bounded policy" test_patch_bounded;
    Gen.case "invalidate: datum gains first reference" test_invalidate_new_datum;
    Gen.case "node patch refills no row" test_node_patch_refills_nothing;
    Gen.to_alcotest prop_patch_equiv;
    Gen.to_alcotest prop_invalidate_equiv;
    Gen.case "serve warm-session reuse" test_serve_warm_reuse;
  ]
