let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let mesh = Gen.mesh44

(* -- Iteration_space ----------------------------------------------------- *)

let test_owner_block_2d () =
  let owner i j =
    Workloads.Iteration_space.owner Workloads.Iteration_space.Block_2d mesh
      ~extent_i:8 ~extent_j:8 ~i ~j
  in
  check_int "top left" 0 (owner 0 0);
  check_int "same tile" 0 (owner 1 1);
  check_int "bottom right" 15 (owner 7 7)

let test_owner_cyclic () =
  let owner i j =
    Workloads.Iteration_space.owner Workloads.Iteration_space.Cyclic_2d mesh
      ~extent_i:8 ~extent_j:8 ~i ~j
  in
  check_int "wraps rows" (owner 0 0) (owner 4 0);
  check_int "wraps cols" (owner 0 0) (owner 0 4)

let test_owner_bounds () =
  Alcotest.check_raises "out of bounds"
    (Invalid_argument "Iteration_space.owner: (8,0) outside 8x8") (fun () ->
      ignore
        (Workloads.Iteration_space.owner Workloads.Iteration_space.Block_2d
           mesh ~extent_i:8 ~extent_j:8 ~i:8 ~j:0))

let prop_owner_always_on_mesh =
  QCheck.Test.make ~name:"owners are valid ranks for all partitions"
    ~count:200
    QCheck.(triple (int_range 1 20) (int_bound 19) (int_bound 19))
    (fun (n, i, j) ->
      let i = i mod n and j = j mod n in
      List.for_all
        (fun p ->
          let r =
            Workloads.Iteration_space.owner p mesh ~extent_i:n ~extent_j:n ~i
              ~j
          in
          r >= 0 && r < Pim.Mesh.size mesh)
        Workloads.Iteration_space.all)

(* -- LU ------------------------------------------------------------------ *)

let test_lu_shape () =
  let t = Workloads.Lu.trace ~n:8 mesh in
  check_int "n-1 windows" 7 (Reftrace.Trace.n_windows t);
  check_int "data = n^2" 64
    (Reftrace.Data_space.size (Reftrace.Trace.space t));
  Reftrace.Trace.validate t mesh

let test_lu_reference_count () =
  (* step k: 2(n-1-k) scaling refs + 3(n-1-k)^2 update refs *)
  let n = 6 in
  let t = Workloads.Lu.trace ~n mesh in
  let expected = ref 0 in
  for k = 0 to n - 2 do
    let r = n - 1 - k in
    expected := !expected + (2 * r) + (3 * r * r)
  done;
  check_int "total refs" !expected (Reftrace.Trace.total_references t)

let test_lu_pivot_is_hot () =
  let n = 8 in
  let t = Workloads.Lu.trace ~n mesh in
  let space = Reftrace.Trace.space t in
  let w0 = Reftrace.Trace.window t 0 in
  let pivot = Reftrace.Data_space.id space ~array_name:"A" ~row:0 ~col:0 in
  let corner = Reftrace.Data_space.id space ~array_name:"A" ~row:7 ~col:7 in
  check_bool "pivot referenced more than corner" true
    (Reftrace.Window.references w0 pivot
    > Reftrace.Window.references w0 corner)

let test_lu_validates_n () =
  Alcotest.check_raises "n too small"
    (Invalid_argument "Lu.trace: n must be at least 2") (fun () ->
      ignore (Workloads.Lu.trace ~n:1 mesh))

(* -- Matmul --------------------------------------------------------------- *)

let test_matmul_shape () =
  let t = Workloads.Matmul.trace ~n:8 mesh in
  check_int "n windows" 8 (Reftrace.Trace.n_windows t);
  check_int "A and C" 128 (Reftrace.Data_space.size (Reftrace.Trace.space t));
  check_int "3 n^3 references" (3 * 8 * 8 * 8)
    (Reftrace.Trace.total_references t)

let test_matmul_window_k_touches_row_and_col_k () =
  let n = 8 in
  let t = Workloads.Matmul.trace ~n mesh in
  let space = Reftrace.Trace.space t in
  let w3 = Reftrace.Trace.window t 3 in
  let a r c = Reftrace.Data_space.id space ~array_name:"A" ~row:r ~col:c in
  (* every iteration of window 3 reads A(i,3) and A(3,j) *)
  check_int "A(0,3) read n times" n (Reftrace.Window.references w3 (a 0 3));
  check_int "A(3,0) read n times" n (Reftrace.Window.references w3 (a 3 0));
  check_int "A(0,0) not read" 0 (Reftrace.Window.references w3 (a 0 0))

(* -- Code_kernel ---------------------------------------------------------- *)

let test_code_shape_and_determinism () =
  let a = Workloads.Code_kernel.trace ~n:8 mesh in
  let b = Workloads.Code_kernel.trace ~n:8 mesh in
  check_int "n/2 windows" 4 (Reftrace.Trace.n_windows a);
  check_bool "deterministic" true
    (List.for_all2 Reftrace.Window.equal (Reftrace.Trace.windows a)
       (Reftrace.Trace.windows b));
  let c = Workloads.Code_kernel.trace ~seed:99 ~n:8 mesh in
  check_bool "seed changes the jitter" false
    (List.for_all2 Reftrace.Window.equal (Reftrace.Trace.windows a)
       (Reftrace.Trace.windows c))

let test_code_is_time_varying () =
  let t = Workloads.Code_kernel.trace ~n:16 mesh in
  let w0 = Reftrace.Trace.window t 0
  and w_last =
    Reftrace.Trace.window t (Reftrace.Trace.n_windows t - 1)
  in
  check_bool "windows differ" false (Reftrace.Window.equal w0 w_last)

let test_code_rewards_movement () =
  (* the defining property of the substitute kernel: multi-center scheduling
     strictly beats the best static scheduling *)
  let t = Workloads.Code_kernel.trace ~n:16 mesh in
  let static = Sched.Schedule.total_cost (Sched.Scds.schedule (Sched.Problem.create mesh t)) t in
  let dynamic = Sched.Schedule.total_cost (Sched.Gomcds.schedule (Sched.Problem.create mesh t)) t in
  check_bool "movement pays off" true (dynamic < static)

(* -- Stencil -------------------------------------------------------------- *)

let test_stencil_shape () =
  let t = Workloads.Stencil.trace ~n:8 ~sweeps:3 mesh in
  check_int "sweeps" 3 (Reftrace.Trace.n_windows t);
  check_int "5 refs per interior point" (3 * 5 * 6 * 6)
    (Reftrace.Trace.total_references t)

let test_stencil_is_uniform () =
  let t = Workloads.Stencil.trace ~n:8 ~sweeps:3 mesh in
  let ws = Reftrace.Trace.windows t in
  check_bool "all windows equal" true
    (List.for_all (Reftrace.Window.equal (List.hd ws)) ws)

let test_stencil_movement_buys_nothing () =
  let t = Workloads.Stencil.trace ~n:8 ~sweeps:3 mesh in
  let static = Sched.Schedule.total_cost (Sched.Scds.schedule (Sched.Problem.create mesh t)) t in
  let dynamic = Sched.Schedule.total_cost (Sched.Gomcds.schedule (Sched.Problem.create mesh t)) t in
  check_int "equal cost" static dynamic

(* -- Benchmarks ----------------------------------------------------------- *)

let test_benchmark_labels () =
  Alcotest.(check (list string))
    "labels" [ "1"; "2"; "3"; "4"; "5" ]
    (List.map Workloads.Benchmarks.label Workloads.Benchmarks.all);
  Alcotest.check_raises "bad label"
    (Invalid_argument "Benchmarks.of_label: unknown \"7\"") (fun () ->
      ignore (Workloads.Benchmarks.of_label "7"))

let test_benchmark_composition () =
  let n = 8 in
  let b2 = Workloads.Benchmarks.trace Workloads.Benchmarks.B2 ~n mesh in
  let b3 = Workloads.Benchmarks.trace Workloads.Benchmarks.B3 ~n mesh in
  let code = Workloads.Code_kernel.trace ~n mesh in
  check_int "b3 windows = b2 + code"
    (Reftrace.Trace.n_windows b2 + Reftrace.Trace.n_windows code)
    (Reftrace.Trace.n_windows b3);
  (* b3 shares A between matmul and CODE: space stays {A, C} *)
  check_int "b3 data space" (2 * n * n)
    (Reftrace.Data_space.size (Reftrace.Trace.space b3))

let test_benchmark_b5_palindrome () =
  let n = 8 in
  let b5 = Workloads.Benchmarks.trace Workloads.Benchmarks.B5 ~n mesh in
  let k = Reftrace.Trace.n_windows b5 in
  check_int "even windows" 0 (k mod 2);
  (* window i equals window (k-1-i): CODE then reversed CODE *)
  check_bool "palindrome" true
    (List.for_all
       (fun i ->
         Reftrace.Window.equal
           (Reftrace.Trace.window b5 i)
           (Reftrace.Trace.window b5 (k - 1 - i)))
       (List.init k Fun.id))

let test_benchmark_capacity_rule () =
  check_int "b1 8x8 on 4x4 = paper's example" 8
    (Workloads.Benchmarks.capacity Workloads.Benchmarks.B1 ~n:8 mesh);
  check_int "b2 doubles data" 16
    (Workloads.Benchmarks.capacity Workloads.Benchmarks.B2 ~n:8 mesh)

let prop_all_benchmarks_validate =
  QCheck.Test.make ~name:"every benchmark trace validates on the mesh"
    ~count:10
    (QCheck.make ~print:string_of_int QCheck.Gen.(int_range 4 10))
    (fun n ->
      List.for_all
        (fun b ->
          let t = Workloads.Benchmarks.trace b ~n mesh in
          Reftrace.Trace.validate t mesh;
          Reftrace.Trace.total_references t > 0)
        Workloads.Benchmarks.all)

let suite =
  [
    Gen.case "owner block-2d" test_owner_block_2d;
    Gen.case "owner cyclic" test_owner_cyclic;
    Gen.case "owner bounds" test_owner_bounds;
    Gen.to_alcotest prop_owner_always_on_mesh;
    Gen.case "lu shape" test_lu_shape;
    Gen.case "lu reference count" test_lu_reference_count;
    Gen.case "lu pivot is hot" test_lu_pivot_is_hot;
    Gen.case "lu validates n" test_lu_validates_n;
    Gen.case "matmul shape" test_matmul_shape;
    Gen.case "matmul window k hot row/col" test_matmul_window_k_touches_row_and_col_k;
    Gen.case "code shape and determinism" test_code_shape_and_determinism;
    Gen.case "code is time-varying" test_code_is_time_varying;
    Gen.case "code rewards movement" test_code_rewards_movement;
    Gen.case "stencil shape" test_stencil_shape;
    Gen.case "stencil is uniform" test_stencil_is_uniform;
    Gen.case "stencil movement buys nothing" test_stencil_movement_buys_nothing;
    Gen.case "benchmark labels" test_benchmark_labels;
    Gen.case "benchmark composition" test_benchmark_composition;
    Gen.case "benchmark b5 palindrome" test_benchmark_b5_palindrome;
    Gen.case "benchmark capacity rule" test_benchmark_capacity_rule;
    Gen.to_alcotest prop_all_benchmarks_validate;
  ]
