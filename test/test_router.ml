let check_int = Alcotest.(check int)
let mesh = Gen.mesh44

let test_message_cost () =
  let msg = Pim.Router.message ~src:0 ~dst:15 ~volume:3 in
  check_int "cost = volume * distance" 18 (Pim.Router.cost mesh msg)

let test_route_matches_cost () =
  let stats = Pim.Link_stats.create mesh in
  let msg = Pim.Router.message ~src:0 ~dst:15 ~volume:3 in
  check_int "routed cost" 18 (Pim.Router.route mesh stats msg);
  check_int "stats total" 18 (Pim.Link_stats.total stats)

let test_self_message_free () =
  let stats = Pim.Link_stats.create mesh in
  let msg = Pim.Router.message ~src:4 ~dst:4 ~volume:7 in
  check_int "self" 0 (Pim.Router.route mesh stats msg);
  check_int "no traffic" 0 (Pim.Link_stats.total stats)

let test_zero_volume () =
  let stats = Pim.Link_stats.create mesh in
  let msg = Pim.Router.message ~src:0 ~dst:3 ~volume:0 in
  check_int "zero volume" 0 (Pim.Router.route mesh stats msg)

let test_negative_volume_rejected () =
  Alcotest.check_raises "negative"
    (Invalid_argument "Router.message: negative volume") (fun () ->
      ignore (Pim.Router.message ~src:0 ~dst:1 ~volume:(-1)))

let test_route_all () =
  let stats = Pim.Link_stats.create mesh in
  let msgs =
    [
      Pim.Router.message ~src:0 ~dst:1 ~volume:2;
      Pim.Router.message ~src:1 ~dst:0 ~volume:1;
    ]
  in
  check_int "sum" 3 (Pim.Router.route_all mesh stats msgs)

let test_xy_traffic_lands_on_x_first () =
  (* 0 -> rank(2,1): x-first means links 0->1, 1->2, 2->rank(2,1). *)
  let r a b = Pim.Mesh.rank_of_coord mesh (Pim.Coord.make ~x:a ~y:b) in
  let stats = Pim.Link_stats.create mesh in
  ignore
    (Pim.Router.route mesh stats
       (Pim.Router.message ~src:(r 0 0) ~dst:(r 2 1) ~volume:1));
  check_int "x leg first" 1
    (Pim.Link_stats.traffic stats ~src:(r 0 0) ~dst:(r 1 0));
  check_int "y leg last" 1
    (Pim.Link_stats.traffic stats ~src:(r 2 0) ~dst:(r 2 1));
  check_int "not y first" 0
    (Pim.Link_stats.traffic stats ~src:(r 0 0) ~dst:(r 0 1))

let prop_route_cost_equals_analytic =
  QCheck.Test.make ~name:"routed cost = volume * distance" ~count:300
    QCheck.(triple (int_bound 15) (int_bound 15) (int_bound 9))
    (fun (src, dst, volume) ->
      let stats = Pim.Link_stats.create mesh in
      let msg = Pim.Router.message ~src ~dst ~volume in
      Pim.Router.route mesh stats msg = Pim.Router.cost mesh msg)

(* Ranks are validated at routing time — a message carries no mesh, so
   construction cannot check them. *)
let test_out_of_range_ranks_rejected () =
  let stats = Pim.Link_stats.create mesh in
  List.iter
    (fun (name, src, dst) ->
      let msg = Pim.Router.message ~src ~dst ~volume:1 in
      let rejected f =
        try
          ignore (f ());
          false
        with Invalid_argument _ -> true
      in
      Alcotest.(check bool)
        (name ^ ": cost rejects") true
        (rejected (fun () -> Pim.Router.cost mesh msg));
      Alcotest.(check bool)
        (name ^ ": route rejects") true
        (rejected (fun () -> Pim.Router.route mesh stats msg)))
    [
      ("negative src", -1, 0);
      ("src past size", 16, 0);
      ("negative dst", 0, -1);
      ("dst past size", 0, 16);
    ]

let suite =
  [
    Gen.case "message cost" test_message_cost;
    Gen.case "out-of-range ranks rejected" test_out_of_range_ranks_rejected;
    Gen.case "route matches cost" test_route_matches_cost;
    Gen.case "self message free" test_self_message_free;
    Gen.case "zero volume" test_zero_volume;
    Gen.case "negative volume rejected" test_negative_volume_rejected;
    Gen.case "route_all" test_route_all;
    Gen.case "x-first dimension order" test_xy_traffic_lands_on_x_first;
    Gen.to_alcotest prop_route_cost_equals_analytic;
  ]
