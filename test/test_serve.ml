(* The scheduling daemon: protocol goldens, differential byte-identity
   against one-shot solves, admission control and batch semantics. *)

open Serve

let fresh ?(jobs = 1) ?(batch = 16) ?max_arena_bytes ?(memo = true)
    ?max_cache_bytes ?max_queue () =
  let d = Server.default_config () in
  Server.create
    ~config:
      {
        Server.jobs;
        batch;
        max_arena_bytes;
        memo;
        max_cache_bytes =
          Option.value max_cache_bytes ~default:d.Server.max_cache_bytes;
        max_line_bytes = d.Server.max_line_bytes;
        max_queue = Option.value max_queue ~default:d.Server.max_queue;
        write_timeout_ms = d.Server.write_timeout_ms;
      }
    ()

(* Pull a field out of a response line. *)
let parse_response line =
  match Obs.Json.parse line with
  | Ok (Obs.Json.Obj fields) -> fields
  | Ok _ -> Alcotest.failf "response is not an object: %s" line
  | Error e ->
      Alcotest.failf "response is not JSON (%s): %s"
        (Obs.Json.error_to_string e) line

let result_field line k =
  match List.assoc_opt "result" (parse_response line) with
  | Some (Obs.Json.Obj r) -> List.assoc_opt k r
  | _ -> Alcotest.failf "response has no result object: %s" line

let error_code line =
  match List.assoc_opt "error" (parse_response line) with
  | Some (Obs.Json.Obj e) -> (
      match List.assoc_opt "code" e with
      | Some (Obs.Json.String c) -> c
      | _ -> Alcotest.failf "error without code: %s" line)
  | _ -> Alcotest.failf "response has no error object: %s" line

let is_ok line =
  match List.assoc_opt "ok" (parse_response line) with
  | Some (Obs.Json.Bool b) -> b
  | _ -> Alcotest.failf "response has no ok field: %s" line

(* ---- protocol goldens ---- *)

let test_ping () =
  let t = fresh () in
  Alcotest.(check string)
    "ping golden"
    {|{"id":1,"ok":true,"result":{"protocol":"pim-sched-serve/1"}}|}
    (Server.handle_line t {|{"id":1,"op":"ping"}|})

let test_parse_error () =
  let t = fresh () in
  let r = Server.handle_line t "{bad json" in
  Alcotest.(check bool) "not ok" false (is_ok r);
  Alcotest.(check string) "code" "parse-error" (error_code r);
  (match List.assoc_opt "error" (parse_response r) with
  | Some (Obs.Json.Obj e) ->
      Alcotest.(check bool)
        "offset present" true
        (List.assoc_opt "offset" e <> None)
  | _ -> Alcotest.fail "no error object");
  (* id is still correlated when the line is valid JSON but a bad request *)
  let r = Server.handle_line t {|{"id":7,"op":"launch-missiles"}|} in
  Alcotest.(check string) "unknown op" "bad-request" (error_code r);
  Alcotest.(check bool)
    "id echoed" true
    (List.assoc_opt "id" (parse_response r) = Some (Obs.Json.Int 7))

let test_bad_requests () =
  let t = fresh () in
  let check_code name line expected =
    let r = Server.handle_line t line in
    Alcotest.(check string) name expected (error_code r)
  in
  check_code "non-object" {|[1,2]|} "bad-request";
  check_code "unknown workload" {|{"id":1,"workload":"lu"}|} "bad-request";
  check_code "unknown algorithm"
    {|{"id":2,"workload":"1","algorithm":"magic"}|}
    "bad-request";
  check_code "unknown partition"
    {|{"id":3,"workload":"1","partition":"diagonal"}|}
    "bad-request";
  check_code "bad mesh" {|{"id":4,"mesh":{"rows":0}}|} "bad-request";
  check_code "bad fault node"
    {|{"id":5,"workload":"1","fault":{"dead_nodes":[99]}}|}
    "bad-request";
  check_code "typed field" {|{"id":6,"size":"big"}|} "bad-request"

let test_shutdown () =
  let t = fresh () in
  Alcotest.(check bool) "not stopping" false (Server.stopping t);
  let r = Server.handle_line t {|{"id":1,"op":"shutdown"}|} in
  Alcotest.(check string)
    "shutdown golden" {|{"id":1,"ok":true,"result":{"stopping":true}}|} r;
  Alcotest.(check bool) "stopping" true (Server.stopping t)

let test_solve_response_shape () =
  let t = fresh () in
  let r =
    Server.handle_line t
      {|{"id":42,"workload":"1","size":8,"algorithm":"scds"}|}
  in
  Alcotest.(check bool) "ok" true (is_ok r);
  Alcotest.(check bool)
    "algorithm" true
    (result_field r "algorithm" = Some (Obs.Json.String "scds"));
  List.iter
    (fun k ->
      match result_field r k with
      | Some (Obs.Json.Int _) -> ()
      | _ -> Alcotest.failf "result field %s missing or not an int" k)
    [ "total"; "reference"; "movement"; "moves" ];
  match result_field r "plan" with
  | Some (Obs.Json.String plan) ->
      (* the plan is a loadable Schedule_serial v1 text *)
      let s = Sched.Schedule_serial.of_string plan in
      Alcotest.(check int) "plan data" 64 (Sched.Schedule.n_data s)
  | _ -> Alcotest.fail "result has no plan string"

(* ---- differential byte-identity vs one-shot solves ---- *)

(* The served plan and cost must equal what a direct in-process solve of
   the same instance produces, for both kernels, with and without faults,
   and independently of the server's jobs setting. *)
let test_differential () =
  let mesh = Pim.Mesh.create ~rows:4 ~cols:4 in
  let trace =
    Workloads.Benchmarks.trace
      ~partition:Workloads.Iteration_space.Block_2d Workloads.Benchmarks.B1
      ~n:8 mesh
  in
  let policy =
    Sched.Problem.Bounded
      (Pim.Memory.capacity_for
         ~data_count:(Reftrace.Data_space.size (Reftrace.Trace.space trace))
         ~mesh ~headroom:2)
  in
  let dead_nodes = [ 5 ] in
  List.iter
    (fun (kernel, kernel_name) ->
      List.iter
        (fun faulty ->
          List.iter
            (fun alg_name ->
              let fault_json =
                if faulty then {|,"fault":{"dead_nodes":[5]}|} else ""
              in
              let line =
                Printf.sprintf
                  {|{"id":1,"workload":"1","size":8,"algorithm":"%s","kernel":"%s"%s}|}
                  alg_name kernel_name fault_json
              in
              let responses =
                List.map
                  (fun jobs -> Server.handle_line (fresh ~jobs ()) line)
                  [ 1; 4 ]
              in
              (match responses with
              | [ r1; r4 ] ->
                  Alcotest.(check string)
                    (Printf.sprintf "%s/%s/fault=%b: jobs-independent"
                       alg_name kernel_name faulty)
                    r1 r4
              | _ -> assert false);
              let r = List.hd responses in
              let fault =
                if faulty then
                  Pim.Fault.create ~dead_nodes ~dead_links:[] ()
                else Pim.Fault.none
              in
              let problem =
                Sched.Problem.create ~policy ~kernel ~fault mesh trace
              in
              let schedule =
                Sched.Scheduler.solve problem
                  (Sched.Scheduler.of_name alg_name)
              in
              let expect_plan = Sched.Schedule_serial.to_string schedule in
              let breakdown = Sched.Schedule.cost schedule trace in
              Alcotest.(check bool)
                (Printf.sprintf "%s/%s/fault=%b: plan bytes" alg_name
                   kernel_name faulty)
                true
                (result_field r "plan"
                = Some (Obs.Json.String expect_plan));
              Alcotest.(check bool)
                (Printf.sprintf "%s/%s/fault=%b: total" alg_name kernel_name
                   faulty)
                true
                (result_field r "total"
                = Some (Obs.Json.Int breakdown.Sched.Schedule.total)))
            [ "scds"; "gomcds" ])
        [ false; true ])
    [ (`Separable, "separable"); (`Naive, "naive") ]

(* An inline serialized trace must solve identically to the generated
   workload it came from. *)
let test_inline_trace () =
  let mesh = Pim.Mesh.create ~rows:4 ~cols:4 in
  let trace =
    Workloads.Stencil.trace ~partition:Workloads.Iteration_space.Block_2d
      ~n:8 ~sweeps:8 mesh
  in
  let text = Reftrace.Serial.to_string trace in
  let line =
    Obs.Json.to_string
      (Obs.Json.Obj
         [
           ("id", Obs.Json.Int 1);
           ("trace", Obs.Json.String text);
           ("algorithm", Obs.Json.String "lomcds");
         ])
  in
  let r = Server.handle_line (fresh ()) line in
  let generated =
    Server.handle_line (fresh ())
      {|{"id":1,"workload":"stencil","size":8,"algorithm":"lomcds"}|}
  in
  Alcotest.(check bool) "ok" true (is_ok r);
  Alcotest.(check bool)
    "inline plan = generated plan" true
    (result_field r "plan" = result_field generated "plan")

(* ---- timed replay ---- *)

(* A "timed":true solve must carry a timed object whose figures equal a
   direct in-process replay of the same schedule through the
   cycle-honest simulator, and the link_model knobs must reach it. *)
let test_timed_solve () =
  let mesh = Pim.Mesh.create ~rows:4 ~cols:4 in
  let trace =
    Workloads.Benchmarks.trace
      ~partition:Workloads.Iteration_space.Block_2d Workloads.Benchmarks.B1
      ~n:8 mesh
  in
  let policy =
    Sched.Problem.Bounded
      (Pim.Memory.capacity_for
         ~data_count:(Reftrace.Data_space.size (Reftrace.Trace.space trace))
         ~mesh ~headroom:2)
  in
  let schedule =
    Sched.Scheduler.solve
      (Sched.Problem.create ~policy mesh trace)
      Sched.Scheduler.Gomcds
  in
  let rounds = Sched.Schedule.to_rounds schedule trace in
  let timed_field r k =
    match result_field r k with
    | Some (Obs.Json.Obj timed) -> timed
    | _ -> Alcotest.failf "result has no timed object: %s" r
  in
  (* degenerate model: "timed":true with no link_model object *)
  let r =
    Server.handle_line (fresh ())
      {|{"id":1,"workload":"1","size":8,"algorithm":"gomcds","timed":true}|}
  in
  Alcotest.(check bool) "ok" true (is_ok r);
  let direct = Pim.Timed_simulator.run mesh rounds in
  let timed = timed_field r "timed" in
  Alcotest.(check bool)
    "cycles match direct replay" true
    (List.assoc_opt "cycles" timed
    = Some (Obs.Json.Int direct.Pim.Timed_simulator.total_cycles));
  Alcotest.(check bool)
    "volume_hops match direct replay" true
    (List.assoc_opt "volume_hops" timed
    = Some (Obs.Json.Int direct.Pim.Timed_simulator.total_volume_hops));
  Alcotest.(check bool)
    "energy match direct replay" true
    (List.assoc_opt "energy" timed
    = Some (Obs.Json.Float direct.Pim.Timed_simulator.energy));
  (* parameterized model: the knobs must reach the simulator *)
  let r2 =
    Server.handle_line (fresh ())
      {|{"id":2,"workload":"1","size":8,"algorithm":"gomcds","timed":true,"link_model":{"bandwidth":2,"queue_depth":1}}|}
  in
  Alcotest.(check bool) "parameterized ok" true (is_ok r2);
  let model = Pim.Link_model.create ~bandwidth:2 ~queue_depth:1 () in
  let direct2 = Pim.Timed_simulator.run ~model mesh rounds in
  let timed2 = timed_field r2 "timed" in
  Alcotest.(check bool)
    "parameterized cycles match" true
    (List.assoc_opt "cycles" timed2
    = Some (Obs.Json.Int direct2.Pim.Timed_simulator.total_cycles));
  Alcotest.(check bool)
    "parameterized stalls match" true
    (List.assoc_opt "queue_stall_cycles" timed2
    = Some (Obs.Json.Int direct2.Pim.Timed_simulator.queue_stall_cycles));
  (* an untimed solve must not carry the object *)
  let r3 =
    Server.handle_line (fresh ())
      {|{"id":3,"workload":"1","size":8,"algorithm":"gomcds"}|}
  in
  Alcotest.(check bool)
    "no timed object without the flag" true
    (result_field r3 "timed" = None)

let test_timed_rejections () =
  let t = fresh () in
  let check_code name line expected =
    let r = Server.handle_line t line in
    Alcotest.(check bool) (name ^ ": not ok") false (is_ok r);
    Alcotest.(check string) name expected (error_code r)
  in
  check_code "invalid link model"
    {|{"id":1,"workload":"1","timed":true,"link_model":{"bandwidth":0}}|}
    "bad-request";
  check_code "wormhole needs a flit width"
    {|{"id":2,"workload":"1","timed":true,"link_model":{"wormhole":true,"flit":0}}|}
    "bad-request";
  check_code "timed is single-mesh only"
    {|{"id":3,"workload":"1","size":8,"arrays":"2x2of4x4","timed":true}|}
    "bad-request";
  (* "timed":false is the same as absent, even with a link_model object *)
  Alcotest.(check bool)
    "timed:false ignored" true
    (is_ok
       (Server.handle_line t
          {|{"id":4,"workload":"1","size":8,"timed":false,"link_model":{"bandwidth":0}}|}))

(* ---- admission control ---- *)

let test_admission () =
  let t = fresh ~max_arena_bytes:64 () in
  let r = Server.handle_line t {|{"id":1,"workload":"1","size":8}|} in
  Alcotest.(check bool) "rejected" false (is_ok r);
  Alcotest.(check string) "code" "over-budget" (error_code r);
  (* non-solve ops are never admission-controlled *)
  Alcotest.(check bool)
    "ping still fine" true
    (is_ok (Server.handle_line t {|{"id":2,"op":"ping"}|}));
  (match Server.stats_json t with
  | Obs.Json.Obj fields ->
      Alcotest.(check bool)
        "rejected counter" true
        (List.assoc_opt "rejected" fields = Some (Obs.Json.Int 1))
  | _ -> Alcotest.fail "stats is not an object");
  (* a generous budget admits the same request *)
  let t = fresh ~max_arena_bytes:(1 lsl 30) () in
  Alcotest.(check bool)
    "admitted" true
    (is_ok (Server.handle_line t {|{"id":1,"workload":"1","size":8}|}))

(* ---- batching ---- *)

(* One wave with mixed compatible/incompatible requests answers in request
   order, each response byte-identical to a lone solve on a fresh server. *)
let test_batch_order_and_identity () =
  let lines =
    [
      {|{"id":"a","workload":"1","size":8,"algorithm":"scds"}|};
      {|{"id":"b","op":"ping"}|};
      {|{"id":"c","workload":"1","size":8,"algorithm":"gomcds"}|};
      {|{"id":"d","workload":"stencil","size":8,"algorithm":"scds"}|};
      {|{"id":"e","workload":"1","size":8,"algorithm":"scds"}|};
    ]
  in
  let batched =
    List.map fst (Server.process_batch (fresh ~jobs:4 ()) lines)
  in
  let lone = List.map (fun l -> Server.handle_line (fresh ()) l) lines in
  List.iteri
    (fun i (b, l) ->
      Alcotest.(check string) (Printf.sprintf "request %d" i) l b)
    (List.combine batched lone);
  (* responses come back in request order: ids are echoed in sequence *)
  List.iteri
    (fun i r ->
      let expect = String.make 1 (Char.chr (Char.code 'a' + i)) in
      Alcotest.(check bool)
        (Printf.sprintf "order %d" i)
        true
        (List.assoc_opt "id" (parse_response r)
        = Some (Obs.Json.String expect)))
    batched

let test_memo_and_context_reuse () =
  let t = fresh () in
  let line = {|{"id":1,"workload":"1","size":8,"algorithm":"gomcds"}|} in
  let r1 = Server.handle_line t line in
  let r2 = Server.handle_line t line in
  Alcotest.(check string) "memoized repeat" r1 r2;
  (match Server.stats_json t with
  | Obs.Json.Obj fields ->
      Alcotest.(check bool)
        "memo hit" true
        (List.assoc_opt "memo_hits" fields = Some (Obs.Json.Int 1));
      Alcotest.(check bool)
        "one context" true
        (List.assoc_opt "contexts" fields = Some (Obs.Json.Int 1))
  | _ -> Alcotest.fail "stats is not an object");
  (* same instance, different algorithm: context is shared, memo is not *)
  let r3 =
    Server.handle_line t {|{"id":1,"workload":"1","size":8,"algorithm":"scds"}|}
  in
  Alcotest.(check bool) "different algorithm solves" true (is_ok r3);
  match Server.stats_json t with
  | Obs.Json.Obj fields ->
      Alcotest.(check bool)
        "still one context" true
        (List.assoc_opt "contexts" fields = Some (Obs.Json.Int 1))
  | _ -> Alcotest.fail "stats is not an object"

(* memo off: repeats recompute but must still answer identically *)
let test_no_memo () =
  let t = fresh ~memo:false () in
  let line = {|{"id":1,"workload":"1","size":8,"algorithm":"scds"}|} in
  let r1 = Server.handle_line t line in
  let r2 = Server.handle_line t line in
  Alcotest.(check string) "deterministic without memo" r1 r2;
  match Server.stats_json t with
  | Obs.Json.Obj fields ->
      Alcotest.(check bool)
        "no memo hits" true
        (List.assoc_opt "memo_hits" fields = Some (Obs.Json.Int 0))
  | _ -> Alcotest.fail "stats is not an object"

(* ---- LRU ---- *)

let kv = Alcotest.(list (pair string int))

let test_lru () =
  let l = Lru.create ~budget:10 in
  Alcotest.(check int) "budget" 10 (Lru.budget l);
  Alcotest.check kv "no evictions" [] (Lru.add l "a" 1 ~bytes:4);
  ignore (Lru.add l "b" 2 ~bytes:4);
  Alcotest.(check int) "byte accounting" 8 (Lru.used_bytes l);
  (* touch a so b becomes the LRU victim *)
  Alcotest.(check (option int)) "find" (Some 1) (Lru.find l "a");
  Alcotest.check kv "b evicted" [ ("b", 2) ] (Lru.add l "c" 3 ~bytes:4);
  Alcotest.(check bool) "a survives" true (Lru.mem l "a");
  Alcotest.(check int) "eviction counted" 1 (Lru.evictions l);
  (* replacement re-weighs and is not an eviction *)
  ignore (Lru.add l "a" 9 ~bytes:2);
  Alcotest.(check int) "used after replace" 6 (Lru.used_bytes l);
  Alcotest.(check int) "replace not counted" 1 (Lru.evictions l);
  (* an entry heavier than the whole budget is not cached *)
  Alcotest.check kv "oversized not cached" [] (Lru.add l "huge" 0 ~bytes:11);
  Alcotest.(check bool) "huge absent" false (Lru.mem l "huge");
  Alcotest.(check int) "used unchanged" 6 (Lru.used_bytes l);
  Lru.remove l "c";
  Alcotest.(check int) "remove drops bytes" 2 (Lru.used_bytes l);
  Alcotest.check_raises "negative weight"
    (Invalid_argument "Lru.add: negative byte weight") (fun () ->
      ignore (Lru.add l "x" 0 ~bytes:(-1)));
  (* multi-eviction comes back least-recently-used first *)
  let l2 = Lru.create ~budget:10 in
  ignore (Lru.add l2 "x" 1 ~bytes:3);
  ignore (Lru.add l2 "y" 2 ~bytes:3);
  ignore (Lru.add l2 "z" 3 ~bytes:3);
  Alcotest.check kv "LRU-first order"
    [ ("x", 1); ("y", 2) ]
    (Lru.add l2 "w" 4 ~bytes:7)

(* ---- cancellation tokens ---- *)

let test_cancel_token () =
  Alcotest.(check bool)
    "none never expires" false
    (Sched.Cancel.expired Sched.Cancel.none);
  Alcotest.(check bool)
    "zero budget is born expired" true
    (Sched.Cancel.expired (Sched.Cancel.after ~budget_ms:0.));
  let c = Sched.Cancel.after ~budget_ms:600_000. in
  Alcotest.(check bool) "generous budget lives" false (Sched.Cancel.expired c);
  Sched.Cancel.cancel c;
  Alcotest.(check bool) "manual abort expires" true (Sched.Cancel.expired c);
  Alcotest.check_raises "check raises" Sched.Cancel.Expired (fun () ->
      Sched.Cancel.check c);
  Alcotest.check_raises "the none token cannot be cancelled"
    (Invalid_argument "Cancel.cancel: the none token") (fun () ->
      Sched.Cancel.cancel Sched.Cancel.none)

(* ---- deadlines ---- *)

let test_deadline () =
  let t = fresh () in
  (* a zero budget expires at admission, deterministically *)
  let r =
    Server.handle_line t {|{"id":1,"workload":"1","size":8,"deadline_ms":0}|}
  in
  Alcotest.(check bool) "not ok" false (is_ok r);
  Alcotest.(check string) "typed" "deadline-exceeded" (error_code r);
  (* a generous budget answers byte-identically to no deadline at all *)
  let plain =
    Server.handle_line (fresh ()) {|{"id":2,"workload":"1","size":8}|}
  in
  let budgeted =
    Server.handle_line (fresh ())
      {|{"id":2,"workload":"1","size":8,"deadline_ms":600000}|}
  in
  Alcotest.(check string) "deadline-blind answer" plain budgeted;
  (* expiry is counted, and the server keeps serving *)
  (match Server.stats_json t with
  | Obs.Json.Obj fields ->
      Alcotest.(check bool)
        "counter" true
        (List.assoc_opt "deadline_exceeded" fields = Some (Obs.Json.Int 1))
  | _ -> Alcotest.fail "stats is not an object");
  Alcotest.(check bool)
    "still serving" true
    (is_ok (Server.handle_line t {|{"id":3,"workload":"1","size":8}|}));
  (* malformed budgets are rejected as bad requests *)
  Alcotest.(check string)
    "negative" "bad-request"
    (error_code
       (Server.handle_line t {|{"id":4,"workload":"1","deadline_ms":-5}|}));
  (* group instances honor deadlines too *)
  Alcotest.(check string)
    "group deadline" "deadline-exceeded"
    (error_code
       (Server.handle_line t
          {|{"id":5,"workload":"1","size":8,"arrays":"2x2of4x4","deadline_ms":0}|}))

let test_deadline_mid_solve () =
  let t = fresh () in
  (* warm the context so admission is instant, then burn the budget with
     an injected pre-solve delay: expiry fires at a poll point inside
     the solve, and the daemon survives it *)
  ignore (Server.handle_line t {|{"id":0,"workload":"1","size":8}|});
  Obs.Failpoint.clear ();
  Obs.Failpoint.configure "serve.solve=delay:30";
  (Fun.protect ~finally:Obs.Failpoint.clear @@ fun () ->
   let r =
     Server.handle_line t
       {|{"id":1,"workload":"1","size":8,"deadline_ms":5}|}
   in
   Alcotest.(check string) "expired in flight" "deadline-exceeded"
     (error_code r));
  (* the discarded session did not poison the warm pool *)
  let r =
    Server.handle_line t
      {|{"id":2,"workload":"1","size":8,"algorithm":"scds"}|}
  in
  Alcotest.(check bool) "solves after expiry" true (is_ok r)

(* ---- fuzzing: hostile bytes must never crash the daemon ---- *)

let typed_codes =
  [
    "parse-error";
    "bad-request";
    "over-budget";
    "solve-error";
    "deadline-exceeded";
    "overloaded";
    "internal-error";
  ]

(* One long-lived server across the whole fuzz: survival means it keeps
   answering after every piece of garbage. *)
let fuzz_server = lazy (fresh ())

let survives line =
  let t = Lazy.force fuzz_server in
  let r = Server.handle_line t line in
  (match List.assoc_opt "ok" (parse_response r) with
  | Some (Obs.Json.Bool true) -> ()
  | Some (Obs.Json.Bool false) ->
      let c = error_code r in
      if not (List.mem c typed_codes) then
        Alcotest.failf "untyped error code %S for %S" c line
  | _ -> Alcotest.failf "response without ok field: %s" r);
  (* and the next request still works *)
  Server.handle_line t {|{"id":"probe","op":"ping"}|}
  = {|{"id":"probe","ok":true,"result":{"protocol":"pim-sched-serve/1"}}|}

let fuzz_garbage =
  QCheck.Test.make ~count:300 ~name:"serve fuzz: random bytes"
    (QCheck.string_gen_of_size QCheck.Gen.(int_range 0 160) QCheck.Gen.char)
    survives

let fuzz_truncation =
  QCheck.Test.make ~count:80 ~name:"serve fuzz: truncated requests"
    QCheck.(int_range 0 80)
    (fun k ->
      (* multi-byte characters make some cuts land mid-UTF-8-sequence *)
      let line =
        {|{"id":"héllo€","workload":"1","size":8,"algorithm":"gomcds"}|}
      in
      survives (String.sub line 0 (min k (String.length line))))

let fuzz_nesting =
  QCheck.Test.make ~count:20 ~name:"serve fuzz: pathological nesting"
    QCheck.(int_range 1 4096)
    (fun depth ->
      survives (String.make depth '[')
      && survives (String.make depth '{')
      && survives ({|{"id":|} ^ String.make depth '[' ^ "1"))

(* ---- failpoint matrix: every site x raise/delay ---- *)

(* Under an n=1 injection the faulted request is answered (typed or
   clean), the fault burns its budget, and a retry of the same request
   answers byte-identically to a failpoint-free server. *)
let test_failpoint_matrix () =
  let line = {|{"id":1,"workload":"1","size":8,"algorithm":"gomcds"}|} in
  Obs.Failpoint.clear ();
  let expected = Server.handle_line (fresh ()) line in
  List.iter
    (fun site ->
      List.iter
        (fun action ->
          let label = Printf.sprintf "%s=%s" site action in
          Obs.Failpoint.clear ();
          Obs.Failpoint.configure (Printf.sprintf "%s=%s,n=1" site action);
          Fun.protect ~finally:Obs.Failpoint.clear @@ fun () ->
          let t = fresh () in
          let first = Server.handle_line t line in
          (if is_ok first then
             Alcotest.(check string) (label ^ ": clean first") expected first
           else
             Alcotest.(check bool)
               (label ^ ": typed first") true
               (List.mem (error_code first) typed_codes));
          let second = Server.handle_line t line in
          Alcotest.(check string) (label ^ ": retry identical") expected second)
        [ "raise"; "delay:1" ])
    [ "serve.decode"; "serve.solve"; "engine.task" ]

(* ---- crash isolation inside one wave ---- *)

let test_crash_isolation_in_batch () =
  let lines =
    List.map
      (fun a ->
        Printf.sprintf {|{"id":"%s","workload":"1","size":8,"algorithm":"%s"}|}
          a a)
      [ "scds"; "lomcds"; "gomcds"; "lomcds-grouped" ]
  in
  Obs.Failpoint.clear ();
  let expected = List.map (fun l -> Server.handle_line (fresh ()) l) lines in
  Obs.Failpoint.configure "serve.solve=raise,n=1";
  let t = fresh ~jobs:4 () in
  let got =
    Fun.protect ~finally:Obs.Failpoint.clear @@ fun () ->
    List.map fst (Server.process_batch t lines)
  in
  let diffs =
    List.filter (fun (g, e) -> g <> e) (List.combine got expected)
  in
  (* exactly one request absorbed the crash; its wave-mates are
     byte-identical to their lone solves *)
  Alcotest.(check int) "one casualty" 1 (List.length diffs);
  List.iter
    (fun (g, _) ->
      Alcotest.(check string) "typed internal-error" "internal-error"
        (error_code g))
    diffs;
  (match Server.stats_json t with
  | Obs.Json.Obj fields ->
      Alcotest.(check bool)
        "task_crashes counted" true
        (List.assoc_opt "task_crashes" fields = Some (Obs.Json.Int 1))
  | _ -> Alcotest.fail "stats is not an object");
  (* the wave did not poison the server *)
  Alcotest.(check bool)
    "serves on" true
    (is_ok (Server.handle_line t (List.hd lines)))

(* ---- bounded caches ---- *)

let test_cache_pressure () =
  let budget = 32 * 1024 in
  let t = fresh ~max_cache_bytes:budget () in
  let lines =
    List.init 12 (fun i ->
        Printf.sprintf
          {|{"id":%d,"workload":"1","size":%d,"algorithm":"scds"}|} i
          (6 + (2 * (i mod 4))))
  in
  let expected = List.map (fun l -> Server.handle_line (fresh ()) l) lines in
  let got = List.map (fun l -> Server.handle_line t l) lines in
  List.iter2
    (fun g e -> Alcotest.(check string) "identical under pressure" e g)
    got expected;
  match Server.stats_json t with
  | Obs.Json.Obj fields ->
      let geti k =
        match List.assoc_opt k fields with
        | Some (Obs.Json.Int i) -> i
        | _ -> -1
      in
      Alcotest.(check bool)
        "within budget" true
        (geti "cache_bytes" <= budget);
      Alcotest.(check bool) "evictions happened" true (geti "cache_evictions" > 0)
  | _ -> Alcotest.fail "stats is not an object"

let test_zero_cache_budget () =
  let t = fresh ~max_cache_bytes:0 () in
  let line = {|{"id":1,"workload":"1","size":8,"algorithm":"scds"}|} in
  let r1 = Server.handle_line t line in
  let r2 = Server.handle_line t line in
  Alcotest.(check string) "cacheless is still deterministic" r1 r2;
  Alcotest.(check string)
    "and identical to a cached server" r1
    (Server.handle_line (fresh ()) line);
  match Server.stats_json t with
  | Obs.Json.Obj fields ->
      Alcotest.(check bool)
        "nothing cached" true
        (List.assoc_opt "cache_bytes" fields = Some (Obs.Json.Int 0))
  | _ -> Alcotest.fail "stats is not an object"

(* ---- the daemon loop over real pipes: line cap and overload ---- *)

let write_fd_all fd s =
  let b = Bytes.unsafe_of_string s in
  let rec go off =
    if off < Bytes.length b then
      go (off + Unix.write fd b off (Bytes.length b - off))
  in
  go 0

let test_run_line_cap_and_overload () =
  let d = Server.default_config () in
  let config =
    { d with Server.jobs = 1; batch = 2; max_queue = 2; max_line_bytes = 512 }
  in
  let t = Server.create ~config () in
  let solves =
    List.init 10 (fun i ->
        Printf.sprintf {|{"id":%d,"workload":"1","size":8,"algorithm":"scds"}|}
          i)
  in
  let input =
    String.concat ""
      (List.map (fun l -> l ^ "\n") solves @ [ String.make 1024 'x' ^ "\n" ])
  in
  let req_r, req_w = Unix.pipe () in
  let resp_r, resp_w = Unix.pipe () in
  (* pre-buffer the whole flood so the backlog the server sees — and so
     the shedding schedule — is deterministic: wave {0,1}, shed {2..8},
     wave {9, oversized} *)
  write_fd_all req_w input;
  Unix.close req_w;
  let srv =
    Domain.spawn (fun () ->
        Server.run t ~input:req_r ~output:resp_w;
        Unix.close resp_w;
        Unix.close req_r)
  in
  let ic = Unix.in_channel_of_descr resp_r in
  let responses = ref [] in
  (try
     while true do
       responses := input_line ic :: !responses
     done
   with End_of_file -> ());
  Domain.join srv;
  Unix.close resp_r;
  let responses = Array.of_list (List.rev !responses) in
  Alcotest.(check int) "every request answered" 11 (Array.length responses);
  Alcotest.(check bool) "first wave solved" true (is_ok responses.(0));
  for i = 2 to 8 do
    Alcotest.(check string)
      (Printf.sprintf "backlog line %d shed" i)
      "overloaded"
      (error_code responses.(i));
    (* shed responses still correlate ids and carry a retry hint *)
    match List.assoc_opt "error" (parse_response responses.(i)) with
    | Some (Obs.Json.Obj e) ->
        Alcotest.(check bool)
          "retry_after_ms" true
          (match List.assoc_opt "retry_after_ms" e with
          | Some (Obs.Json.Int ms) -> ms >= 1
          | _ -> false);
        Alcotest.(check bool)
          "id echoed" true
          (List.assoc_opt "id" (parse_response responses.(i))
          = Some (Obs.Json.Int i))
    | _ -> Alcotest.fail "no error object"
  done;
  Alcotest.(check bool) "tail of the queue solved" true (is_ok responses.(9));
  Alcotest.(check string)
    "oversized line typed" "parse-error"
    (error_code responses.(10));
  match Server.stats_json t with
  | Obs.Json.Obj fields ->
      Alcotest.(check bool)
        "line_overflows" true
        (List.assoc_opt "line_overflows" fields = Some (Obs.Json.Int 1));
      Alcotest.(check bool)
        "overloaded count" true
        (List.assoc_opt "overloaded" fields = Some (Obs.Json.Int 7))
  | _ -> Alcotest.fail "stats is not an object"

(* ---- chaos smoke (library-level, small instances) ---- *)

let test_chaos_small () =
  let script =
    List.init 6 (fun i ->
        Printf.sprintf {|{"id":%d,"workload":"1","size":8,"algorithm":"%s"}|} i
          (List.nth [ "scds"; "gomcds"; "lomcds" ] (i mod 3)))
  in
  let pass, report = Chaos.run ~seed:11 ~jobs:2 ~requests:8 ~script () in
  (if not pass then
     match report with
     | Obs.Json.Obj _ -> Alcotest.failf "chaos failed: %s" (Obs.Json.to_string report)
     | _ -> Alcotest.fail "chaos failed");
  match report with
  | Obs.Json.Obj fields -> (
      match List.assoc_opt "episodes" fields with
      | Some (Obs.Json.List eps) ->
          Alcotest.(check int) "all episodes ran" 10 (List.length eps)
      | _ -> Alcotest.fail "report without episodes")
  | _ -> Alcotest.fail "report is not an object"

let suite =
  [
    Gen.case "ping golden" test_ping;
    Gen.case "parse and op errors" test_parse_error;
    Gen.case "bad requests" test_bad_requests;
    Gen.case "shutdown" test_shutdown;
    Gen.case "solve response shape" test_solve_response_shape;
    Gen.case "differential vs one-shot (kernels x faults x jobs)"
      test_differential;
    Gen.case "inline trace matches generated" test_inline_trace;
    Gen.case "timed replay matches direct simulation" test_timed_solve;
    Gen.case "timed replay rejections" test_timed_rejections;
    Gen.case "admission control" test_admission;
    Gen.case "batch order and identity" test_batch_order_and_identity;
    Gen.case "memo and context reuse" test_memo_and_context_reuse;
    Gen.case "no-memo determinism" test_no_memo;
    Gen.case "lru cache" test_lru;
    Gen.case "cancellation tokens" test_cancel_token;
    Gen.case "deadlines" test_deadline;
    Gen.case "deadline expires mid-solve" test_deadline_mid_solve;
    Gen.to_alcotest fuzz_garbage;
    Gen.to_alcotest fuzz_truncation;
    Gen.to_alcotest fuzz_nesting;
    Gen.case "failpoint matrix (site x action)" test_failpoint_matrix;
    Gen.case "crash isolation inside a wave" test_crash_isolation_in_batch;
    Gen.case "bounded caches under pressure" test_cache_pressure;
    Gen.case "zero cache budget" test_zero_cache_budget;
    Gen.case "daemon loop: line cap and overload shedding"
      test_run_line_cap_and_overload;
    Gen.case "chaos episodes (small script)" test_chaos_small;
  ]
