(* The scheduling daemon: protocol goldens, differential byte-identity
   against one-shot solves, admission control and batch semantics. *)

open Serve

let fresh ?(jobs = 1) ?(batch = 16) ?max_arena_bytes ?(memo = true) () =
  Server.create
    ~config:{ Server.jobs; batch; max_arena_bytes; memo }
    ()

(* Pull a field out of a response line. *)
let parse_response line =
  match Obs.Json.parse line with
  | Ok (Obs.Json.Obj fields) -> fields
  | Ok _ -> Alcotest.failf "response is not an object: %s" line
  | Error e ->
      Alcotest.failf "response is not JSON (%s): %s"
        (Obs.Json.error_to_string e) line

let result_field line k =
  match List.assoc_opt "result" (parse_response line) with
  | Some (Obs.Json.Obj r) -> List.assoc_opt k r
  | _ -> Alcotest.failf "response has no result object: %s" line

let error_code line =
  match List.assoc_opt "error" (parse_response line) with
  | Some (Obs.Json.Obj e) -> (
      match List.assoc_opt "code" e with
      | Some (Obs.Json.String c) -> c
      | _ -> Alcotest.failf "error without code: %s" line)
  | _ -> Alcotest.failf "response has no error object: %s" line

let is_ok line =
  match List.assoc_opt "ok" (parse_response line) with
  | Some (Obs.Json.Bool b) -> b
  | _ -> Alcotest.failf "response has no ok field: %s" line

(* ---- protocol goldens ---- *)

let test_ping () =
  let t = fresh () in
  Alcotest.(check string)
    "ping golden"
    {|{"id":1,"ok":true,"result":{"protocol":"pim-sched-serve/1"}}|}
    (Server.handle_line t {|{"id":1,"op":"ping"}|})

let test_parse_error () =
  let t = fresh () in
  let r = Server.handle_line t "{bad json" in
  Alcotest.(check bool) "not ok" false (is_ok r);
  Alcotest.(check string) "code" "parse-error" (error_code r);
  (match List.assoc_opt "error" (parse_response r) with
  | Some (Obs.Json.Obj e) ->
      Alcotest.(check bool)
        "offset present" true
        (List.assoc_opt "offset" e <> None)
  | _ -> Alcotest.fail "no error object");
  (* id is still correlated when the line is valid JSON but a bad request *)
  let r = Server.handle_line t {|{"id":7,"op":"launch-missiles"}|} in
  Alcotest.(check string) "unknown op" "bad-request" (error_code r);
  Alcotest.(check bool)
    "id echoed" true
    (List.assoc_opt "id" (parse_response r) = Some (Obs.Json.Int 7))

let test_bad_requests () =
  let t = fresh () in
  let check_code name line expected =
    let r = Server.handle_line t line in
    Alcotest.(check string) name expected (error_code r)
  in
  check_code "non-object" {|[1,2]|} "bad-request";
  check_code "unknown workload" {|{"id":1,"workload":"lu"}|} "bad-request";
  check_code "unknown algorithm"
    {|{"id":2,"workload":"1","algorithm":"magic"}|}
    "bad-request";
  check_code "unknown partition"
    {|{"id":3,"workload":"1","partition":"diagonal"}|}
    "bad-request";
  check_code "bad mesh" {|{"id":4,"mesh":{"rows":0}}|} "bad-request";
  check_code "bad fault node"
    {|{"id":5,"workload":"1","fault":{"dead_nodes":[99]}}|}
    "bad-request";
  check_code "typed field" {|{"id":6,"size":"big"}|} "bad-request"

let test_shutdown () =
  let t = fresh () in
  Alcotest.(check bool) "not stopping" false (Server.stopping t);
  let r = Server.handle_line t {|{"id":1,"op":"shutdown"}|} in
  Alcotest.(check string)
    "shutdown golden" {|{"id":1,"ok":true,"result":{"stopping":true}}|} r;
  Alcotest.(check bool) "stopping" true (Server.stopping t)

let test_solve_response_shape () =
  let t = fresh () in
  let r =
    Server.handle_line t
      {|{"id":42,"workload":"1","size":8,"algorithm":"scds"}|}
  in
  Alcotest.(check bool) "ok" true (is_ok r);
  Alcotest.(check bool)
    "algorithm" true
    (result_field r "algorithm" = Some (Obs.Json.String "scds"));
  List.iter
    (fun k ->
      match result_field r k with
      | Some (Obs.Json.Int _) -> ()
      | _ -> Alcotest.failf "result field %s missing or not an int" k)
    [ "total"; "reference"; "movement"; "moves" ];
  match result_field r "plan" with
  | Some (Obs.Json.String plan) ->
      (* the plan is a loadable Schedule_serial v1 text *)
      let s = Sched.Schedule_serial.of_string plan in
      Alcotest.(check int) "plan data" 64 (Sched.Schedule.n_data s)
  | _ -> Alcotest.fail "result has no plan string"

(* ---- differential byte-identity vs one-shot solves ---- *)

(* The served plan and cost must equal what a direct in-process solve of
   the same instance produces, for both kernels, with and without faults,
   and independently of the server's jobs setting. *)
let test_differential () =
  let mesh = Pim.Mesh.create ~rows:4 ~cols:4 in
  let trace =
    Workloads.Benchmarks.trace
      ~partition:Workloads.Iteration_space.Block_2d Workloads.Benchmarks.B1
      ~n:8 mesh
  in
  let policy =
    Sched.Problem.Bounded
      (Pim.Memory.capacity_for
         ~data_count:(Reftrace.Data_space.size (Reftrace.Trace.space trace))
         ~mesh ~headroom:2)
  in
  let dead_nodes = [ 5 ] in
  List.iter
    (fun (kernel, kernel_name) ->
      List.iter
        (fun faulty ->
          List.iter
            (fun alg_name ->
              let fault_json =
                if faulty then {|,"fault":{"dead_nodes":[5]}|} else ""
              in
              let line =
                Printf.sprintf
                  {|{"id":1,"workload":"1","size":8,"algorithm":"%s","kernel":"%s"%s}|}
                  alg_name kernel_name fault_json
              in
              let responses =
                List.map
                  (fun jobs -> Server.handle_line (fresh ~jobs ()) line)
                  [ 1; 4 ]
              in
              (match responses with
              | [ r1; r4 ] ->
                  Alcotest.(check string)
                    (Printf.sprintf "%s/%s/fault=%b: jobs-independent"
                       alg_name kernel_name faulty)
                    r1 r4
              | _ -> assert false);
              let r = List.hd responses in
              let fault =
                if faulty then
                  Pim.Fault.create ~dead_nodes ~dead_links:[] ()
                else Pim.Fault.none
              in
              let problem =
                Sched.Problem.create ~policy ~kernel ~fault mesh trace
              in
              let schedule =
                Sched.Scheduler.solve problem
                  (Sched.Scheduler.of_name alg_name)
              in
              let expect_plan = Sched.Schedule_serial.to_string schedule in
              let breakdown = Sched.Schedule.cost schedule trace in
              Alcotest.(check bool)
                (Printf.sprintf "%s/%s/fault=%b: plan bytes" alg_name
                   kernel_name faulty)
                true
                (result_field r "plan"
                = Some (Obs.Json.String expect_plan));
              Alcotest.(check bool)
                (Printf.sprintf "%s/%s/fault=%b: total" alg_name kernel_name
                   faulty)
                true
                (result_field r "total"
                = Some (Obs.Json.Int breakdown.Sched.Schedule.total)))
            [ "scds"; "gomcds" ])
        [ false; true ])
    [ (`Separable, "separable"); (`Naive, "naive") ]

(* An inline serialized trace must solve identically to the generated
   workload it came from. *)
let test_inline_trace () =
  let mesh = Pim.Mesh.create ~rows:4 ~cols:4 in
  let trace =
    Workloads.Stencil.trace ~partition:Workloads.Iteration_space.Block_2d
      ~n:8 ~sweeps:8 mesh
  in
  let text = Reftrace.Serial.to_string trace in
  let line =
    Obs.Json.to_string
      (Obs.Json.Obj
         [
           ("id", Obs.Json.Int 1);
           ("trace", Obs.Json.String text);
           ("algorithm", Obs.Json.String "lomcds");
         ])
  in
  let r = Server.handle_line (fresh ()) line in
  let generated =
    Server.handle_line (fresh ())
      {|{"id":1,"workload":"stencil","size":8,"algorithm":"lomcds"}|}
  in
  Alcotest.(check bool) "ok" true (is_ok r);
  Alcotest.(check bool)
    "inline plan = generated plan" true
    (result_field r "plan" = result_field generated "plan")

(* ---- timed replay ---- *)

(* A "timed":true solve must carry a timed object whose figures equal a
   direct in-process replay of the same schedule through the
   cycle-honest simulator, and the link_model knobs must reach it. *)
let test_timed_solve () =
  let mesh = Pim.Mesh.create ~rows:4 ~cols:4 in
  let trace =
    Workloads.Benchmarks.trace
      ~partition:Workloads.Iteration_space.Block_2d Workloads.Benchmarks.B1
      ~n:8 mesh
  in
  let policy =
    Sched.Problem.Bounded
      (Pim.Memory.capacity_for
         ~data_count:(Reftrace.Data_space.size (Reftrace.Trace.space trace))
         ~mesh ~headroom:2)
  in
  let schedule =
    Sched.Scheduler.solve
      (Sched.Problem.create ~policy mesh trace)
      Sched.Scheduler.Gomcds
  in
  let rounds = Sched.Schedule.to_rounds schedule trace in
  let timed_field r k =
    match result_field r k with
    | Some (Obs.Json.Obj timed) -> timed
    | _ -> Alcotest.failf "result has no timed object: %s" r
  in
  (* degenerate model: "timed":true with no link_model object *)
  let r =
    Server.handle_line (fresh ())
      {|{"id":1,"workload":"1","size":8,"algorithm":"gomcds","timed":true}|}
  in
  Alcotest.(check bool) "ok" true (is_ok r);
  let direct = Pim.Timed_simulator.run mesh rounds in
  let timed = timed_field r "timed" in
  Alcotest.(check bool)
    "cycles match direct replay" true
    (List.assoc_opt "cycles" timed
    = Some (Obs.Json.Int direct.Pim.Timed_simulator.total_cycles));
  Alcotest.(check bool)
    "volume_hops match direct replay" true
    (List.assoc_opt "volume_hops" timed
    = Some (Obs.Json.Int direct.Pim.Timed_simulator.total_volume_hops));
  Alcotest.(check bool)
    "energy match direct replay" true
    (List.assoc_opt "energy" timed
    = Some (Obs.Json.Float direct.Pim.Timed_simulator.energy));
  (* parameterized model: the knobs must reach the simulator *)
  let r2 =
    Server.handle_line (fresh ())
      {|{"id":2,"workload":"1","size":8,"algorithm":"gomcds","timed":true,"link_model":{"bandwidth":2,"queue_depth":1}}|}
  in
  Alcotest.(check bool) "parameterized ok" true (is_ok r2);
  let model = Pim.Link_model.create ~bandwidth:2 ~queue_depth:1 () in
  let direct2 = Pim.Timed_simulator.run ~model mesh rounds in
  let timed2 = timed_field r2 "timed" in
  Alcotest.(check bool)
    "parameterized cycles match" true
    (List.assoc_opt "cycles" timed2
    = Some (Obs.Json.Int direct2.Pim.Timed_simulator.total_cycles));
  Alcotest.(check bool)
    "parameterized stalls match" true
    (List.assoc_opt "queue_stall_cycles" timed2
    = Some (Obs.Json.Int direct2.Pim.Timed_simulator.queue_stall_cycles));
  (* an untimed solve must not carry the object *)
  let r3 =
    Server.handle_line (fresh ())
      {|{"id":3,"workload":"1","size":8,"algorithm":"gomcds"}|}
  in
  Alcotest.(check bool)
    "no timed object without the flag" true
    (result_field r3 "timed" = None)

let test_timed_rejections () =
  let t = fresh () in
  let check_code name line expected =
    let r = Server.handle_line t line in
    Alcotest.(check bool) (name ^ ": not ok") false (is_ok r);
    Alcotest.(check string) name expected (error_code r)
  in
  check_code "invalid link model"
    {|{"id":1,"workload":"1","timed":true,"link_model":{"bandwidth":0}}|}
    "bad-request";
  check_code "wormhole needs a flit width"
    {|{"id":2,"workload":"1","timed":true,"link_model":{"wormhole":true,"flit":0}}|}
    "bad-request";
  check_code "timed is single-mesh only"
    {|{"id":3,"workload":"1","size":8,"arrays":"2x2of4x4","timed":true}|}
    "bad-request";
  (* "timed":false is the same as absent, even with a link_model object *)
  Alcotest.(check bool)
    "timed:false ignored" true
    (is_ok
       (Server.handle_line t
          {|{"id":4,"workload":"1","size":8,"timed":false,"link_model":{"bandwidth":0}}|}))

(* ---- admission control ---- *)

let test_admission () =
  let t = fresh ~max_arena_bytes:64 () in
  let r = Server.handle_line t {|{"id":1,"workload":"1","size":8}|} in
  Alcotest.(check bool) "rejected" false (is_ok r);
  Alcotest.(check string) "code" "over-budget" (error_code r);
  (* non-solve ops are never admission-controlled *)
  Alcotest.(check bool)
    "ping still fine" true
    (is_ok (Server.handle_line t {|{"id":2,"op":"ping"}|}));
  (match Server.stats_json t with
  | Obs.Json.Obj fields ->
      Alcotest.(check bool)
        "rejected counter" true
        (List.assoc_opt "rejected" fields = Some (Obs.Json.Int 1))
  | _ -> Alcotest.fail "stats is not an object");
  (* a generous budget admits the same request *)
  let t = fresh ~max_arena_bytes:(1 lsl 30) () in
  Alcotest.(check bool)
    "admitted" true
    (is_ok (Server.handle_line t {|{"id":1,"workload":"1","size":8}|}))

(* ---- batching ---- *)

(* One wave with mixed compatible/incompatible requests answers in request
   order, each response byte-identical to a lone solve on a fresh server. *)
let test_batch_order_and_identity () =
  let lines =
    [
      {|{"id":"a","workload":"1","size":8,"algorithm":"scds"}|};
      {|{"id":"b","op":"ping"}|};
      {|{"id":"c","workload":"1","size":8,"algorithm":"gomcds"}|};
      {|{"id":"d","workload":"stencil","size":8,"algorithm":"scds"}|};
      {|{"id":"e","workload":"1","size":8,"algorithm":"scds"}|};
    ]
  in
  let batched =
    List.map fst (Server.process_batch (fresh ~jobs:4 ()) lines)
  in
  let lone = List.map (fun l -> Server.handle_line (fresh ()) l) lines in
  List.iteri
    (fun i (b, l) ->
      Alcotest.(check string) (Printf.sprintf "request %d" i) l b)
    (List.combine batched lone);
  (* responses come back in request order: ids are echoed in sequence *)
  List.iteri
    (fun i r ->
      let expect = String.make 1 (Char.chr (Char.code 'a' + i)) in
      Alcotest.(check bool)
        (Printf.sprintf "order %d" i)
        true
        (List.assoc_opt "id" (parse_response r)
        = Some (Obs.Json.String expect)))
    batched

let test_memo_and_context_reuse () =
  let t = fresh () in
  let line = {|{"id":1,"workload":"1","size":8,"algorithm":"gomcds"}|} in
  let r1 = Server.handle_line t line in
  let r2 = Server.handle_line t line in
  Alcotest.(check string) "memoized repeat" r1 r2;
  (match Server.stats_json t with
  | Obs.Json.Obj fields ->
      Alcotest.(check bool)
        "memo hit" true
        (List.assoc_opt "memo_hits" fields = Some (Obs.Json.Int 1));
      Alcotest.(check bool)
        "one context" true
        (List.assoc_opt "contexts" fields = Some (Obs.Json.Int 1))
  | _ -> Alcotest.fail "stats is not an object");
  (* same instance, different algorithm: context is shared, memo is not *)
  let r3 =
    Server.handle_line t {|{"id":1,"workload":"1","size":8,"algorithm":"scds"}|}
  in
  Alcotest.(check bool) "different algorithm solves" true (is_ok r3);
  match Server.stats_json t with
  | Obs.Json.Obj fields ->
      Alcotest.(check bool)
        "still one context" true
        (List.assoc_opt "contexts" fields = Some (Obs.Json.Int 1))
  | _ -> Alcotest.fail "stats is not an object"

(* memo off: repeats recompute but must still answer identically *)
let test_no_memo () =
  let t = fresh ~memo:false () in
  let line = {|{"id":1,"workload":"1","size":8,"algorithm":"scds"}|} in
  let r1 = Server.handle_line t line in
  let r2 = Server.handle_line t line in
  Alcotest.(check string) "deterministic without memo" r1 r2;
  match Server.stats_json t with
  | Obs.Json.Obj fields ->
      Alcotest.(check bool)
        "no memo hits" true
        (List.assoc_opt "memo_hits" fields = Some (Obs.Json.Int 0))
  | _ -> Alcotest.fail "stats is not an object"

let suite =
  [
    Gen.case "ping golden" test_ping;
    Gen.case "parse and op errors" test_parse_error;
    Gen.case "bad requests" test_bad_requests;
    Gen.case "shutdown" test_shutdown;
    Gen.case "solve response shape" test_solve_response_shape;
    Gen.case "differential vs one-shot (kernels x faults x jobs)"
      test_differential;
    Gen.case "inline trace matches generated" test_inline_trace;
    Gen.case "timed replay matches direct simulation" test_timed_solve;
    Gen.case "timed replay rejections" test_timed_rejections;
    Gen.case "admission control" test_admission;
    Gen.case "batch order and identity" test_batch_order_and_identity;
    Gen.case "memo and context reuse" test_memo_and_context_reuse;
    Gen.case "no-memo determinism" test_no_memo;
  ]
