let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let mesh = Gen.mesh44

let trace2 =
  (* window 0: datum 0 at rank 5 twice; window 1: datum 0 at rank 0 once,
     datum 1 at rank 15 once *)
  Gen.trace mesh ~n_data:2 [ [ (0, 5, 2) ]; [ (0, 0, 1); (1, 15, 1) ] ]

let test_create_defaults_to_rank0 () =
  let s = Sched.Schedule.create mesh ~n_windows:2 ~n_data:3 in
  check_int "default" 0 (Sched.Schedule.center s ~window:1 ~data:2);
  check_int "windows" 2 (Sched.Schedule.n_windows s);
  check_int "data" 3 (Sched.Schedule.n_data s)

let test_constant () =
  let s = Sched.Schedule.constant mesh ~n_windows:3 [| 4; 9 |] in
  check_int "datum 0" 4 (Sched.Schedule.center s ~window:2 ~data:0);
  check_bool "static" true (Sched.Schedule.is_static s ~data:1);
  check_int "no moves" 0 (Sched.Schedule.moves s);
  Alcotest.check_raises "invalid rank"
    (Invalid_argument "Schedule.constant: datum 0 at invalid rank 99")
    (fun () -> ignore (Sched.Schedule.constant mesh ~n_windows:1 [| 99 |]))

let test_set_center_and_moves () =
  let s = Sched.Schedule.create mesh ~n_windows:3 ~n_data:1 in
  Sched.Schedule.set_center s ~window:1 ~data:0 5;
  Sched.Schedule.set_center s ~window:2 ~data:0 5;
  check_int "one move" 1 (Sched.Schedule.moves s);
  Alcotest.(check (list int))
    "trajectory" [ 0; 5; 5 ]
    (Array.to_list (Sched.Schedule.centers_of_data s ~data:0));
  check_bool "not static" false (Sched.Schedule.is_static s ~data:0)

let test_cost_breakdown () =
  (* place datum 0 at 5 in w0, at 0 in w1; datum 1 stays at 15 *)
  let s = Sched.Schedule.create mesh ~n_windows:2 ~n_data:2 in
  Sched.Schedule.set_center s ~window:0 ~data:0 5;
  Sched.Schedule.set_center s ~window:1 ~data:0 0;
  Sched.Schedule.set_center s ~window:0 ~data:1 15;
  Sched.Schedule.set_center s ~window:1 ~data:1 15;
  let b = Sched.Schedule.cost s trace2 in
  (* references: w0 datum0 local (0), w1 datum0 local (0), datum1 local (0) *)
  check_int "reference" 0 b.Sched.Schedule.reference;
  (* movement: datum0 rank5 -> rank0 = 2 *)
  check_int "movement" 2 b.Sched.Schedule.movement;
  check_int "total" 2 b.Sched.Schedule.total

let test_cost_counts_remote_references () =
  let s = Sched.Schedule.constant mesh ~n_windows:2 [| 0; 0 |] in
  let b = Sched.Schedule.cost s trace2 in
  (* w0: datum0 2 refs from rank5 at dist 2 = 4; w1: datum0 local 0,
     datum1 from rank15 at dist 6 = 6 *)
  check_int "reference" 10 b.Sched.Schedule.reference;
  check_int "movement" 0 b.Sched.Schedule.movement

let test_cost_shape_mismatch () =
  let s = Sched.Schedule.create mesh ~n_windows:3 ~n_data:2 in
  Alcotest.check_raises "window mismatch"
    (Invalid_argument "Schedule: trace has 2 windows, schedule has 3")
    (fun () -> ignore (Sched.Schedule.cost s trace2))

let test_check_capacity () =
  let s = Sched.Schedule.constant mesh ~n_windows:1 [| 3; 3; 3 |] in
  Alcotest.(check (option (triple int int int)))
    "violation" (Some (0, 3, 3))
    (Sched.Schedule.check_capacity s ~capacity:2);
  Alcotest.(check (option (triple int int int)))
    "feasible" None
    (Sched.Schedule.check_capacity s ~capacity:3)

let test_to_rounds_structure () =
  let s = Sched.Schedule.create mesh ~n_windows:2 ~n_data:2 in
  Sched.Schedule.set_center s ~window:0 ~data:0 5;
  Sched.Schedule.set_center s ~window:1 ~data:0 0;
  Sched.Schedule.set_center s ~window:0 ~data:1 15;
  Sched.Schedule.set_center s ~window:1 ~data:1 15;
  match Sched.Schedule.to_rounds s trace2 with
  | [ r0; r1 ] ->
      check_int "no migrations into window 0" 0
        (List.length r0.Pim.Simulator.migrations);
      (* datum 0 served locally in w0 -> no reference messages *)
      check_int "w0 references local" 0
        (List.length r0.Pim.Simulator.references);
      check_int "w1 one migration" 1
        (List.length r1.Pim.Simulator.migrations);
      check_int "w1 references local" 0
        (List.length r1.Pim.Simulator.references)
  | _ -> Alcotest.fail "expected two rounds"

let test_equal () =
  let a = Sched.Schedule.constant mesh ~n_windows:2 [| 1; 2 |] in
  let b = Sched.Schedule.constant mesh ~n_windows:2 [| 1; 2 |] in
  check_bool "equal" true (Sched.Schedule.equal a b);
  Sched.Schedule.set_center b ~window:1 ~data:0 3;
  check_bool "different" false (Sched.Schedule.equal a b)

let test_prefetch_preserves_volume () =
  let s = Sched.Schedule.create mesh ~n_windows:2 ~n_data:2 in
  Sched.Schedule.set_center s ~window:0 ~data:0 5;
  Sched.Schedule.set_center s ~window:1 ~data:0 0;
  Sched.Schedule.set_center s ~window:0 ~data:1 15;
  Sched.Schedule.set_center s ~window:1 ~data:1 15;
  let total prefetch =
    (Pim.Simulator.run mesh (Sched.Schedule.to_rounds ~prefetch s trace2))
      .Pim.Simulator.total_cost
  in
  check_int "same hop-volume either way" (total false) (total true);
  (* the migration moved one round earlier *)
  match Sched.Schedule.to_rounds ~prefetch:true s trace2 with
  | [ r0; r1 ] ->
      check_int "migration in round 0" 1
        (List.length r0.Pim.Simulator.migrations);
      check_int "round 1 empty of migrations" 0
        (List.length r1.Pim.Simulator.migrations)
  | _ -> Alcotest.fail "two rounds expected"

let prop_prefetch_cost_identity =
  let arb = Gen.trace_arbitrary ~max_data:5 ~max_windows:5 ~max_count:4 () in
  QCheck.Test.make
    ~name:"prefetch lowering carries identical hop-volume" ~count:60 arb
    (fun t ->
      let s = Sched.Lomcds.schedule (Sched.Problem.create mesh t) in
      let total prefetch =
        (Pim.Simulator.run mesh (Sched.Schedule.to_rounds ~prefetch s t))
          .Pim.Simulator.total_cost
      in
      total true = total false && total false = Sched.Schedule.total_cost s t)

let suite =
  [
    Gen.case "create defaults" test_create_defaults_to_rank0;
    Gen.case "prefetch preserves volume" test_prefetch_preserves_volume;
    Gen.to_alcotest prop_prefetch_cost_identity;
    Gen.case "constant" test_constant;
    Gen.case "set_center and moves" test_set_center_and_moves;
    Gen.case "cost breakdown" test_cost_breakdown;
    Gen.case "remote references priced" test_cost_counts_remote_references;
    Gen.case "cost shape mismatch" test_cost_shape_mismatch;
    Gen.case "check capacity" test_check_capacity;
    Gen.case "to_rounds structure" test_to_rounds_structure;
    Gen.case "equal" test_equal;
  ]
