let mesh = Gen.mesh44
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let adaptive_total ~initial trace schedule =
  (* include the charged entry migration like Adapt.recovery does *)
  let base = Sched.Schedule.total_cost schedule trace in
  let entry = ref 0 in
  for data = 0 to Sched.Schedule.n_data schedule - 1 do
    entry :=
      !entry
      + Pim.Mesh.distance mesh initial.(data)
          (Sched.Schedule.center schedule ~window:0 ~data)
  done;
  base + !entry

let test_stays_when_already_optimal () =
  (* datum referenced only at its imposed home: no movement at all *)
  let t = Gen.trace mesh ~n_data:1 [ [ (0, 7, 3) ]; [ (0, 7, 2) ] ] in
  let s = Sched.Adapt.run ~initial:[| 7 |] mesh t in
  Alcotest.(check (list int))
    "parked" [ 7; 7 ]
    (Array.to_list (Sched.Schedule.centers_of_data s ~data:0))

let test_entry_migration_weighed () =
  (* one weak reference far from home: cheaper to serve remotely than to
     migrate; strong pull: migrate immediately *)
  let weak = Gen.trace mesh ~n_data:1 [ [ (0, 15, 1) ] ] in
  let s = Sched.Adapt.run ~initial:[| 0 |] mesh weak in
  check_int "serves remotely" 0 (Sched.Schedule.center s ~window:0 ~data:0);
  let strong = Gen.trace mesh ~n_data:1 [ [ (0, 15, 9) ] ] in
  let s = Sched.Adapt.run ~initial:[| 0 |] mesh strong in
  check_int "migrates" 15 (Sched.Schedule.center s ~window:0 ~data:0)

let test_validates_initial () =
  let t = Gen.trace mesh ~n_data:2 [ [ (0, 0, 1) ] ] in
  Alcotest.check_raises "wrong length"
    (Invalid_argument "Adapt: initial placement has 1 entries for 2 data")
    (fun () -> ignore (Sched.Adapt.run ~initial:[| 0 |] mesh t));
  Alcotest.check_raises "bad rank"
    (Invalid_argument "Adapt: datum 1 starts at invalid rank 99") (fun () ->
      ignore (Sched.Adapt.run ~initial:[| 0; 99 |] mesh t))

let test_recovery_fields_consistent () =
  let t = Workloads.Lu.trace ~n:8 mesh in
  let initial = Sched.Baseline.row_wise mesh (Reftrace.Trace.space t) in
  let r = Sched.Adapt.recovery ~initial mesh t in
  check_bool "adaptive <= static" true (r.Sched.Adapt.adaptive <= r.Sched.Adapt.imposed_static);
  check_bool "optimal <= adaptive" true (r.Sched.Adapt.free_optimal <= r.Sched.Adapt.adaptive);
  check_bool "recovered in [0,1]" true
    (r.Sched.Adapt.recovered >= 0. && r.Sched.Adapt.recovered <= 1.);
  (* LU's drifting pivots leave real headroom and adaptation recovers most *)
  check_bool "meaningful recovery" true (r.Sched.Adapt.recovered > 0.5)

let test_no_headroom_counts_as_full_recovery () =
  (* imposed placement already optimal: headroom 0 -> recovered = 1 *)
  let t = Gen.trace mesh ~n_data:1 [ [ (0, 4, 2) ] ] in
  let r = Sched.Adapt.recovery ~initial:[| 4 |] mesh t in
  check_int "no gap" r.Sched.Adapt.imposed_static r.Sched.Adapt.free_optimal;
  Alcotest.(check (float 1e-9)) "full" 1. r.Sched.Adapt.recovered

let prop_sandwiched_between_static_and_optimal =
  let arb = Gen.trace_arbitrary ~max_data:6 ~max_windows:5 ~max_count:4 () in
  QCheck.Test.make
    ~name:"adaptive cost between free optimum and imposed static" ~count:100
    arb (fun t ->
      let space = Reftrace.Trace.space t in
      let initial = Sched.Baseline.row_wise mesh space in
      let s = Sched.Adapt.run ~initial mesh t in
      let adaptive = adaptive_total ~initial t s in
      let static =
        Sched.Schedule.total_cost
          (Sched.Baseline.schedule initial mesh t)
          t
      in
      let optimal = Sched.Bounds.lower_bound_in (Sched.Problem.create mesh t) in
      optimal <= adaptive && adaptive <= static)

let prop_capacity_respected =
  let arb = Gen.trace_arbitrary ~max_data:16 ~max_windows:4 ~max_count:3 () in
  QCheck.Test.make ~name:"adaptive schedules respect capacity" ~count:60 arb
    (fun t ->
      let n = Reftrace.Data_space.size (Reftrace.Trace.space t) in
      let capacity = Pim.Memory.capacity_for ~data_count:n ~mesh ~headroom:2 in
      let s = Sched.Adapt.from_row_wise ~capacity mesh t in
      Option.is_none (Sched.Schedule.check_capacity s ~capacity))

let prop_free_gomcds_never_worse =
  let arb = Gen.trace_arbitrary ~max_data:5 ~max_windows:4 ~max_count:4 () in
  QCheck.Test.make
    ~name:"free-choice GOMCDS <= adaptive (entry migration charged)"
    ~count:100 arb (fun t ->
      let initial = Sched.Baseline.row_wise mesh (Reftrace.Trace.space t) in
      let adaptive =
        adaptive_total ~initial t (Sched.Adapt.run ~initial mesh t)
      in
      Sched.Schedule.total_cost (Sched.Gomcds.schedule (Sched.Problem.create mesh t)) t <= adaptive)

let suite =
  [
    Gen.case "stays when already optimal" test_stays_when_already_optimal;
    Gen.case "entry migration weighed" test_entry_migration_weighed;
    Gen.case "validates initial" test_validates_initial;
    Gen.case "recovery fields consistent" test_recovery_fields_consistent;
    Gen.case "no headroom = full recovery" test_no_headroom_counts_as_full_recovery;
    Gen.to_alcotest prop_sandwiched_between_static_and_optimal;
    Gen.to_alcotest prop_capacity_respected;
    Gen.to_alcotest prop_free_gomcds_never_worse;
  ]
