(* The Engine domain pool and the Problem context: parallel runs must be
   byte-identical to serial ones, and the caches must agree with the
   uncached reference implementations. *)

let mesh8 = Pim.Mesh.square 8

(* -- Engine ------------------------------------------------------------- *)

let test_map_matches_serial () =
  let f i = (i * 7919) mod 257 in
  let serial = Array.init 100 f in
  List.iter
    (fun jobs ->
      Alcotest.(check (array int))
        (Printf.sprintf "jobs=%d" jobs)
        serial
        (Sched.Engine.map ~jobs 100 f))
    [ 1; 2; 4; 16 ]

let test_map_empty_and_tiny () =
  Alcotest.(check (array int)) "empty" [||] (Sched.Engine.map ~jobs:4 0 (fun i -> i));
  Alcotest.(check (array int)) "single" [| 0 |] (Sched.Engine.map ~jobs:4 1 (fun i -> i))

let test_iter_covers_every_index_once () =
  let n = 64 in
  let hits = Array.init n (fun _ -> Atomic.make 0) in
  Sched.Engine.iter ~jobs:4 n (fun i -> Atomic.incr hits.(i));
  Array.iteri
    (fun i a ->
      Alcotest.(check int) (Printf.sprintf "index %d" i) 1 (Atomic.get a))
    hits

let test_exceptions_propagate () =
  List.iter
    (fun jobs ->
      match Sched.Engine.map ~jobs 32 (fun i -> if i = 17 then failwith "boom" else i) with
      | _ -> Alcotest.fail "exception swallowed"
      | exception Failure msg -> Alcotest.(check string) "message" "boom" msg)
    [ 1; 4 ]

let test_default_jobs_positive () =
  Alcotest.(check bool) "positive" true (Sched.Engine.default_jobs () >= 1)

(* -- Problem caches vs. reference implementations ----------------------- *)

let bench_instances =
  List.map
    (fun b ->
      ( Workloads.Benchmarks.label b,
        Workloads.Benchmarks.trace b ~n:8 mesh8,
        Workloads.Benchmarks.capacity b ~n:8 mesh8 ))
    Workloads.Benchmarks.all

let test_cost_vectors_match_cost_module () =
  List.iter
    (fun (label, trace, _) ->
      let problem = Sched.Problem.create mesh8 trace in
      let n_data = Sched.Problem.n_data problem in
      List.iteri
        (fun w window ->
          for data = 0 to n_data - 1 do
            Alcotest.(check (array int))
              (Printf.sprintf "B%s w%d d%d" label w data)
              (Sched.Cost.cost_vector mesh8 window ~data)
              (Sched.Problem.cost_vector problem ~window:w ~data)
          done)
        (Reftrace.Trace.windows trace))
    bench_instances

let test_distance_matches_mesh () =
  let problem =
    let _, trace, _ = List.hd bench_instances in
    Sched.Problem.create mesh8 trace
  in
  let n = Pim.Mesh.size mesh8 in
  for a = 0 to n - 1 do
    for b = 0 to n - 1 do
      Alcotest.(check int)
        (Printf.sprintf "%d-%d" a b)
        (Pim.Mesh.distance mesh8 a b)
        (Sched.Problem.distance problem a b)
    done
  done

let test_bounds_agree () =
  List.iter
    (fun (label, trace, _) ->
      let problem = Sched.Problem.create ~jobs:4 mesh8 trace in
      Alcotest.(check int)
        ("lower bound B" ^ label)
        (Sched.Bounds.lower_bound_in (Sched.Problem.create mesh8 trace))
        (Sched.Bounds.lower_bound_in problem);
      Alcotest.(check int)
        ("static lower bound B" ^ label)
        (Sched.Bounds.static_lower_bound_in (Sched.Problem.create mesh8 trace))
        (Sched.Bounds.static_lower_bound_in problem))
    bench_instances

(* -- Serial/parallel equivalence ---------------------------------------- *)

(* The issue's acceptance bar: every algorithm on benchmarks 1-5, capacity
   per the paper's rule, must produce the identical schedule and cost
   breakdown at jobs = 1 and jobs = 4. *)
let test_parallel_equals_serial () =
  List.iter
    (fun (label, trace, capacity) ->
      let serial =
        Sched.Problem.create ~policy:(Sched.Problem.Bounded capacity) ~jobs:1
          mesh8 trace
      in
      let parallel = Sched.Problem.with_jobs serial 4 in
      List.iter
        (fun a ->
          let id = Printf.sprintf "B%s %s" label (Sched.Scheduler.name a) in
          let s1, c1 = Sched.Scheduler.evaluate_in serial a in
          let s4, c4 = Sched.Scheduler.evaluate_in parallel a in
          Alcotest.(check bool) (id ^ " schedule") true (Sched.Schedule.equal s1 s4);
          Alcotest.(check int) (id ^ " total") c1.Sched.Schedule.total c4.Sched.Schedule.total;
          Alcotest.(check int)
            (id ^ " reference") c1.Sched.Schedule.reference c4.Sched.Schedule.reference;
          Alcotest.(check int)
            (id ^ " movement") c1.Sched.Schedule.movement c4.Sched.Schedule.movement)
        Sched.Scheduler.all)
    bench_instances

let test_unbounded_parallel_equals_serial () =
  List.iter
    (fun (label, trace, _) ->
      let serial = Sched.Problem.create ~jobs:1 mesh8 trace in
      let parallel = Sched.Problem.with_jobs serial 4 in
      List.iter
        (fun a ->
          let id = Printf.sprintf "B%s %s unbounded" label (Sched.Scheduler.name a) in
          Alcotest.(check bool)
            id true
            (Sched.Schedule.equal
               (Sched.Scheduler.solve serial a)
               (Sched.Scheduler.solve parallel a)))
        Sched.Scheduler.all)
    bench_instances

(* -- Metrics determinism across the domain pool ------------------------- *)

(* Algorithmic counters (DP nodes expanded, cache hits, merges accepted)
   count work, not scheduling: after merging the per-domain shards the
   totals must be identical at jobs = 1 and jobs = 4. Counters under
   "engine." describe the pool itself (task claims, busy time) and are
   legitimately jobs-dependent, so they are excluded. *)
let test_metrics_merge_jobs_invariant () =
  let label, trace, capacity = List.hd bench_instances in
  let algorithmic_counters jobs =
    Obs.with_enabled (fun () ->
        Obs.reset ();
        let problem =
          Sched.Problem.create ~policy:(Sched.Problem.Bounded capacity) ~jobs
            mesh8 trace
        in
        List.iter
          (fun a -> ignore (Sched.Scheduler.solve problem a))
          Sched.Scheduler.[ Gomcds; Gomcds_grouped ];
        let snap = Obs.Metrics.snapshot () in
        Obs.reset ();
        List.filter
          (fun (name, _) ->
            not (String.length name >= 7 && String.sub name 0 7 = "engine."))
          snap.Obs.Metrics.counters)
  in
  let serial = algorithmic_counters 1 in
  let parallel = algorithmic_counters 4 in
  Alcotest.(check (list (pair string int)))
    ("B" ^ label ^ " merged counters jobs=4 = jobs=1")
    serial parallel;
  Alcotest.(check bool)
    "instrumented something" true
    (List.exists (fun (n, v) -> n = "layered.nodes_expanded" && v > 0) serial)

(* -- Problem policy plumbing -------------------------------------------- *)

let test_policy_accessors () =
  let _, trace, _ = List.hd bench_instances in
  let p = Sched.Problem.create mesh8 trace in
  Alcotest.(check (option int)) "unbounded" None (Sched.Problem.capacity p);
  let b = Sched.Problem.with_policy p (Sched.Problem.Bounded 3) in
  Alcotest.(check (option int)) "bounded" (Some 3) (Sched.Problem.capacity b);
  Alcotest.(check int) "jobs default" 1 (Sched.Problem.jobs p);
  Alcotest.(check int) "with_jobs" 4 (Sched.Problem.jobs (Sched.Problem.with_jobs p 4))

let test_create_rejects_bad_arguments () =
  let _, trace, _ = List.hd bench_instances in
  Alcotest.(check bool) "jobs = 0" true
    (match Sched.Problem.create ~jobs:0 mesh8 trace with
    | _ -> false
    | exception Invalid_argument _ -> true);
  Alcotest.(check bool) "negative capacity" true
    (match
       Sched.Problem.create ~policy:(Sched.Problem.Bounded (-1)) mesh8 trace
     with
    | _ -> false
    | exception Invalid_argument _ -> true)

let suite =
  [
    Gen.case "Engine.map matches serial" test_map_matches_serial;
    Gen.case "Engine.map edge sizes" test_map_empty_and_tiny;
    Gen.case "Engine.iter covers indices once" test_iter_covers_every_index_once;
    Gen.case "Engine exceptions propagate" test_exceptions_propagate;
    Gen.case "Engine.default_jobs positive" test_default_jobs_positive;
    Gen.case "cached cost vectors match Cost" test_cost_vectors_match_cost_module;
    Gen.case "cached distances match Mesh" test_distance_matches_mesh;
    Gen.case "bounds agree with legacy entry points" test_bounds_agree;
    Gen.case "jobs=4 equals jobs=1 (paper capacity)" test_parallel_equals_serial;
    Gen.case "jobs=4 equals jobs=1 (unbounded)" test_unbounded_parallel_equals_serial;
    Gen.case "merged metrics jobs-invariant" test_metrics_merge_jobs_invariant;
    Gen.case "policy accessors" test_policy_accessors;
    Gen.case "create rejects bad arguments" test_create_rejects_bad_arguments;
  ]
