(* Multi-array scheduling: the Array_group tier.

   Pillars:
   - group geometry: spec parsing, rank addressing, the two-level flat
     metric, and the virtual-mesh embedding;
   - the migration DP is pinned to a dense oracle: per datum, the full
     group distance matrix + full per-window cost vectors fed to
     [Layered.solve_dense] must price exactly what [Group_solver] pays
     under Gomcds — slab projection, cross-array constants and the
     scalar fabric edges all have to agree with the flat metric;
   - single-array degeneracy: a 1-member group is byte-identical to the
     plain Mesh path across every scheduler, mesh and torus, bounded and
     unbounded, jobs 1 and 4 (the suite honours PIMSCHED_TEST_KERNEL=naive
     so CI covers both cost kernels);
   - whole-array faults: injection is deterministic and monotone, dead
     arrays never host data, and reschedule-on-failure never loses to
     riding out the repaired plan;
   - plan serialization round-trips heterogeneous groups. *)

let kernel =
  match Sys.getenv_opt "PIMSCHED_TEST_KERNEL" with
  | Some "naive" -> `Naive
  | _ -> `Separable

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let group_2x2of4x4 ?(inter_cost = 10) () =
  Multi.Array_group.of_spec ~inter_cost "2x2of4x4"

let hetero ?(inter_cost = 10) () =
  Multi.Array_group.line ~inter_cost
    [ Pim.Mesh.square 2; Pim.Mesh.create ~rows:3 ~cols:2 ]

(* ------------------------------------------------------------------ *)
(* Array_group geometry                                                *)
(* ------------------------------------------------------------------ *)

let test_spec_grid () =
  let g = group_2x2of4x4 () in
  check_int "members" 4 (Multi.Array_group.n_members g);
  check_int "size" 64 (Multi.Array_group.size g);
  check_int "base 2" 32 (Multi.Array_group.base g 2);
  check_int "inter cost" 10 (Multi.Array_group.inter_cost g);
  let m, local = Multi.Array_group.local_of_rank g 37 in
  check_int "owner of 37" 2 m;
  check_int "local of 37" 5 local;
  check_int "global back" 37 (Multi.Array_group.global_rank g ~member:2 5)

let test_spec_list () =
  let g = Multi.Array_group.of_spec ~inter_cost:5 "2x2,3x2,1x3" in
  check_int "members" 3 (Multi.Array_group.n_members g);
  check_int "size" (4 + 6 + 3) (Multi.Array_group.size g);
  (* line interconnect: member 0 to member 2 is 2 fabric hops *)
  check_int "move cost 0->2" 10 (Multi.Array_group.move_cost g 0 2);
  check_int "move cost 1->1" 0 (Multi.Array_group.move_cost g 1 1)

let test_spec_rejects () =
  List.iter
    (fun spec ->
      check_bool
        (Printf.sprintf "spec %S rejected" spec)
        true
        (try
           ignore (Multi.Array_group.of_spec spec);
           false
         with Invalid_argument _ -> true))
    [ ""; "4"; "2x"; "x4"; "0x4"; "2x2of"; "of4x4"; "2x2of0x3"; "4x4,," ]

let test_metric () =
  let g = group_2x2of4x4 ~inter_cost:7 () in
  (* same member: the member's own mesh distance *)
  check_int "intra" 3
    (Multi.Array_group.distance g 0 (* (0,0) of member 0 *) 6 (* (1,2) *));
  (* cross member: flat inter_cost x inter-mesh hops, no local part *)
  check_int "cross adjacent" 7 (Multi.Array_group.distance g 3 16);
  check_int "cross diagonal" 14 (Multi.Array_group.distance g 0 63);
  (* torus members honour the wrap intra-member *)
  let gt = Multi.Array_group.of_spec ~torus:true "1x2of4x4" in
  let m = Multi.Array_group.member gt 0 in
  check_bool "member wraps" true (Pim.Mesh.wraps m);
  check_int "intra wrap" 1 (Multi.Array_group.distance gt 0 3)

let test_virtual_embedding () =
  let g = group_2x2of4x4 () in
  let vm = Multi.Array_group.virtual_mesh g in
  check_int "virtual rows" 8 (Pim.Mesh.rows vm);
  check_int "virtual cols" 8 (Pim.Mesh.cols vm);
  (* virtual (0,0) -> member 0 local (0,0); (0,4) -> member 1 local (0,0);
     (5,6) -> member 3 local (1,2) *)
  check_int "v(0,0)" 0 (Multi.Array_group.of_virtual_rank g 0);
  check_int "v(0,4)" 16 (Multi.Array_group.of_virtual_rank g 4);
  check_int "v(5,6)"
    (48 + (1 * 4) + 2)
    (Multi.Array_group.of_virtual_rank g ((5 * 8) + 6));
  (* heterogeneous line: clamping past a smaller member's edge *)
  let h = hetero () in
  let vh = Multi.Array_group.virtual_mesh h in
  check_int "hetero virtual rows" 3 (Pim.Mesh.rows vh);
  check_int "hetero virtual cols" 4 (Pim.Mesh.cols vh);
  (* virtual (2,0) is below member 0 (2x2): clamps to its last row *)
  check_int "clamped" 2 (Multi.Array_group.of_virtual_rank h (2 * 4));
  (* degenerate group: virtual mesh IS the member, remap is the identity *)
  let d = Multi.Array_group.of_spec "4x4" in
  check_bool "degenerate virtual identity" true
    (Multi.Array_group.virtual_mesh d == Multi.Array_group.member d 0);
  let tr = Gen.trace Gen.mesh44 ~n_data:3 [ [ (0, 5, 2); (2, 9, 1) ] ] in
  check_bool "degenerate trace identity" true
    (Multi.Array_group.remap_virtual_trace d tr == tr)

(* ------------------------------------------------------------------ *)
(* Migration DP vs dense oracle                                        *)
(* ------------------------------------------------------------------ *)

(* Random trace over the group's global ranks. *)
let group_trace_gen group ~max_data ~max_windows ~max_count =
  let open QCheck.Gen in
  let sz = Multi.Array_group.size group in
  int_range 1 max_data >>= fun n_data ->
  int_range 1 max_windows >>= fun n_windows ->
  let ref_gen =
    triple (int_range 0 (n_data - 1)) (int_range 0 (sz - 1))
      (int_range 1 max_count)
  in
  let window_gen =
    int_range 1 (2 * sz) >>= fun n -> list_size (return n) ref_gen
  in
  list_size (return n_windows) window_gen >>= fun specs ->
  return (Gen.trace Gen.mesh44 ~n_data specs)

let group_trace_arbitrary group ~max_data ~max_windows ~max_count =
  QCheck.make ~print:Gen.trace_print
    (group_trace_gen group ~max_data ~max_windows ~max_count)

(* Per-datum optimum over the group metric, the direct way: full
   distance matrix + full per-window vectors into the dense DP. *)
let dense_group_optimum group trace d =
  let sz = Multi.Array_group.size group in
  let nw = Reftrace.Trace.n_windows trace in
  let dist =
    Array.init sz (fun a ->
        Array.init sz (fun b -> Multi.Array_group.distance group a b))
  in
  let vectors =
    Array.init nw (fun w ->
        let win = Reftrace.Trace.window trace w in
        Array.init sz (fun g ->
            List.fold_left
              (fun acc (proc, count) ->
                acc + (count * Multi.Array_group.distance group proc g))
              0
              (Reftrace.Window.profile win d)))
  in
  Pathgraph.Layered.solve_dense ~dist ~vectors

let prop_dp_matches_dense_oracle =
  let group = hetero ~inter_cost:4 () in
  QCheck.Test.make
    ~name:"group Gomcds total = sum of dense per-datum group optima" ~count:30
    (group_trace_arbitrary group ~max_data:5 ~max_windows:4 ~max_count:3)
    (fun trace ->
      let gp = Multi.Group_problem.create ~kernel group trace in
      let plan, breakdown =
        Multi.Group_solver.evaluate gp Sched.Scheduler.Gomcds
      in
      let nd = Reftrace.Data_space.size (Reftrace.Trace.space trace) in
      let oracle = ref 0 in
      for d = 0 to nd - 1 do
        let cost, _ = dense_group_optimum group trace d in
        oracle := !oracle + cost
      done;
      (* the DP is per-datum optimal, and the schedule's priced total
         must agree with the DP's own accounting *)
      breakdown.Multi.Group_schedule.total = !oracle
      && Multi.Group_solver.lower_bound gp = Some !oracle
      && Multi.Group_schedule.total_cost plan trace = !oracle)

let prop_dp_beats_static =
  let group = group_2x2of4x4 ~inter_cost:6 () in
  QCheck.Test.make
    ~name:"migration DP never costs more than any static two-level answer"
    ~count:20
    (group_trace_arbitrary group ~max_data:6 ~max_windows:4 ~max_count:3)
    (fun trace ->
      let gp = Multi.Group_problem.create ~kernel group trace in
      let _, dp = Multi.Group_solver.evaluate gp Sched.Scheduler.Gomcds in
      List.for_all
        (fun algo ->
          let _, st = Multi.Group_solver.evaluate gp algo in
          dp.Multi.Group_schedule.total <= st.Multi.Group_schedule.total)
        Sched.Scheduler.[ Scds; Lomcds; Row_wise; Gomcds_grouped ])

let prop_jobs_invariance =
  let group = hetero ~inter_cost:3 () in
  QCheck.Test.make ~name:"group solves are byte-identical at jobs 1 and 4"
    ~count:15
    (group_trace_arbitrary group ~max_data:5 ~max_windows:3 ~max_count:3)
    (fun trace ->
      List.for_all
        (fun algo ->
          let s1 =
            Multi.Group_solver.solve
              (Multi.Group_problem.create ~jobs:1 ~kernel group trace)
              algo
          in
          let s4 =
            Multi.Group_solver.solve
              (Multi.Group_problem.create ~jobs:4 ~kernel group trace)
              algo
          in
          Multi.Group_schedule.equal s1 s4)
        Sched.Scheduler.[ Gomcds; Scds; Lomcds_grouped ])

let test_migration_economics () =
  (* datum 0: heavy window-0 traffic in member 0, then window-1 traffic
     from member 1. At fabric price 50 a single remote reference ties
     with migrating (50 each) and the DP must stay (intra wins ties);
     doubling the remote traffic makes migration strictly cheaper. *)
  let group =
    Multi.Array_group.line ~inter_cost:50
      [ Pim.Mesh.square 4; Pim.Mesh.square 4 ]
  in
  let run w1_count =
    let trace =
      Gen.trace Gen.mesh44 ~n_data:1
        [ [ (0, 5, 9) ]; [ (0, 16 + 3, w1_count) ] ]
    in
    let gp = Multi.Group_problem.create ~kernel group trace in
    let plan = Multi.Group_solver.solve gp Sched.Scheduler.Gomcds in
    ( Multi.Group_schedule.array_moves plan,
      Multi.Group_schedule.total_cost plan trace )
  in
  let moves_tie, cost_tie = run 1 in
  check_int "tie stays home" 0 moves_tie;
  check_int "tie cost = one remote reference" 50 cost_tie;
  let moves_pay, cost_pay = run 2 in
  check_int "paying traffic migrates" 1 moves_pay;
  check_int "migration cost = one fabric move" 50 cost_pay

(* ------------------------------------------------------------------ *)
(* Single-array degeneracy (satellite): 1-member group == plain Mesh   *)
(* ------------------------------------------------------------------ *)

let degenerate_property mesh trace =
  let cap =
    let n_data = Reftrace.Data_space.size (Reftrace.Trace.space trace) in
    Pim.Memory.capacity_for ~data_count:n_data ~mesh ~headroom:2
  in
  let group = Multi.Array_group.line [ mesh ] in
  List.for_all
    (fun policy ->
      List.for_all
        (fun jobs ->
          let problem =
            Sched.Problem.create ~policy ~jobs ~kernel mesh trace
          in
          let gp =
            Multi.Group_problem.create ~policy ~jobs ~kernel group trace
          in
          List.for_all
            (fun algo ->
              let plain = Sched.Scheduler.solve problem algo in
              let lifted = Multi.Group_solver.solve gp algo in
              match Multi.Group_schedule.to_mesh_schedule lifted with
              | None -> false
              | Some s ->
                  Sched.Schedule.equal plain s
                  && Multi.Group_schedule.total_cost lifted trace
                     = Sched.Schedule.total_cost plain trace)
            Sched.Scheduler.all)
        [ 1; 4 ])
    [ Sched.Problem.Unbounded; Sched.Problem.Bounded cap ]

let prop_degenerate_mesh =
  QCheck.Test.make
    ~name:
      "1-member group == plain mesh (all schedulers x policies x jobs 1,4)"
    ~count:8
    (Gen.trace_arbitrary ~max_data:6 ~max_windows:4 ~max_count:3 ())
    (fun trace -> degenerate_property Gen.mesh44 trace)

let prop_degenerate_torus =
  let torus35 = Pim.Mesh.torus ~rows:3 ~cols:5 in
  QCheck.Test.make
    ~name:
      "1-member group == plain torus (all schedulers x policies x jobs 1,4)"
    ~count:8
    (Gen.trace_arbitrary ~mesh:torus35 ~max_data:6 ~max_windows:4 ~max_count:3
       ())
    (fun trace -> degenerate_property torus35 trace)

(* ------------------------------------------------------------------ *)
(* Group faults                                                        *)
(* ------------------------------------------------------------------ *)

let test_inject_deterministic_monotone () =
  let g = group_2x2of4x4 () in
  let f1 =
    Multi.Group_fault.inject ~seed:11 ~array_rate:0.3 ~node_rate:0.2
      ~link_rate:0.1 g
  in
  let f2 =
    Multi.Group_fault.inject ~seed:11 ~array_rate:0.3 ~node_rate:0.2
      ~link_rate:0.1 g
  in
  Alcotest.(check (list int))
    "same seed, same arrays"
    (Multi.Group_fault.dead_arrays f1)
    (Multi.Group_fault.dead_arrays f2);
  let lo =
    Multi.Group_fault.inject ~seed:11 ~array_rate:0.1 ~node_rate:0.1
      ~link_rate:0.0 g
  in
  let hi =
    Multi.Group_fault.inject ~seed:11 ~array_rate:0.5 ~node_rate:0.4
      ~link_rate:0.0 g
  in
  check_bool "arrays monotone" true
    (List.for_all
       (fun a -> List.mem a (Multi.Group_fault.dead_arrays hi))
       (Multi.Group_fault.dead_arrays lo));
  check_bool "nodes monotone" true
    (List.for_all
       (fun n ->
         List.mem n (Pim.Fault.dead_nodes (Multi.Group_fault.node_fault hi)))
       (Pim.Fault.dead_nodes (Multi.Group_fault.node_fault lo)))

let test_inject_resurrection () =
  let g = group_2x2of4x4 () in
  let f =
    Multi.Group_fault.inject ~seed:5 ~array_rate:1.0 ~node_rate:1.0
      ~link_rate:0.0 g
  in
  check_int "one array survives at rate 1" 3
    (List.length (Multi.Group_fault.dead_arrays f));
  check_int "one member hosts data" 1
    (List.length (Multi.Group_fault.alive_members f g))

let test_fault_validate () =
  let g = group_2x2of4x4 () in
  check_bool "cross-member link rejected" true
    (try
       Multi.Group_fault.validate
         (Multi.Group_fault.create ~dead_links:[ (3, 16) ] ())
         g;
       false
     with Invalid_argument _ -> true);
  check_bool "member link accepted" true
    (Multi.Group_fault.validate
       (Multi.Group_fault.create ~dead_links:[ (0, 1) ] ())
       g;
     true);
  check_bool "all arrays dead rejected" true
    (try
       Multi.Group_fault.validate
         (Multi.Group_fault.create ~dead_arrays:[ 0; 1; 2; 3 ] ())
         g;
       false
     with Invalid_argument _ -> true)

let test_member_fault_localizes () =
  let g = group_2x2of4x4 () in
  let f =
    Multi.Group_fault.create ~dead_arrays:[ 3 ]
      ~dead_nodes:[ 2; 17; 20 ]
      ~dead_links:[ (16, 17) ]
      ()
  in
  Multi.Group_fault.validate f g;
  Alcotest.(check (list int))
    "member 0 slice" [ 2 ]
    (Pim.Fault.dead_nodes (Multi.Group_fault.member_fault f g 0));
  Alcotest.(check (list int))
    "member 1 slice, localized" [ 1; 4 ]
    (Pim.Fault.dead_nodes (Multi.Group_fault.member_fault f g 1));
  Alcotest.(check (list (pair int int)))
    "member 1 links localized"
    [ (0, 1) ]
    (Pim.Fault.dead_links (Multi.Group_fault.member_fault f g 1));
  check_bool "dead array lowers to a healthy member problem" true
    (Pim.Fault.is_none (Multi.Group_fault.member_fault f g 3));
  check_bool "rank in dead array is not alive" false
    (Multi.Group_fault.rank_alive f g 50)

let dead_member_hosts_nothing plan gp =
  let group = Multi.Group_problem.group gp in
  let dead = Multi.Group_fault.dead_arrays (Multi.Group_problem.fault gp) in
  let ok = ref true in
  for w = 0 to Multi.Group_schedule.n_windows plan - 1 do
    for d = 0 to Multi.Group_schedule.n_data plan - 1 do
      let m =
        Multi.Array_group.member_of_rank group
          (Multi.Group_schedule.center plan ~window:w ~data:d)
      in
      if List.mem m dead then ok := false
    done
  done;
  !ok

let prop_dead_array_excluded =
  let group = group_2x2of4x4 ~inter_cost:3 () in
  QCheck.Test.make ~name:"dead arrays never host data (DP and static paths)"
    ~count:15
    (group_trace_arbitrary group ~max_data:6 ~max_windows:3 ~max_count:3)
    (fun trace ->
      let fault = Multi.Group_fault.create ~dead_arrays:[ 1 ] () in
      let gp = Multi.Group_problem.create ~kernel ~fault group trace in
      List.for_all
        (fun algo ->
          let plan = Multi.Group_solver.solve gp algo in
          dead_member_hosts_nothing plan gp)
        Sched.Scheduler.[ Gomcds; Scds; Lomcds ])

(* ------------------------------------------------------------------ *)
(* Resilience                                                          *)
(* ------------------------------------------------------------------ *)

let prop_reschedule_never_loses =
  let group = group_2x2of4x4 ~inter_cost:5 () in
  QCheck.Test.make
    ~name:"rescheduling never pays more than riding out (single event)"
    ~count:20
    (QCheck.pair
       (group_trace_arbitrary group ~max_data:5 ~max_windows:4 ~max_count:3)
       (QCheck.make QCheck.Gen.(pair (int_range 0 3) (int_range 0 3))))
    (fun (trace, (dead_array, wpick)) ->
      let nw = Reftrace.Trace.n_windows trace in
      let window = wpick mod nw in
      let events =
        [
          {
            Multi.Group_resilience.window;
            fault = Multi.Group_fault.create ~dead_arrays:[ dead_array ] ();
          };
        ]
      in
      let gp = Multi.Group_problem.create ~kernel group trace in
      List.for_all
        (fun algo ->
          let ride =
            Multi.Group_resilience.run ~reschedule:false ~events gp algo
          in
          let resched =
            Multi.Group_resilience.run ~reschedule:true ~events gp algo
          in
          resched.Multi.Group_resilience.paid_cost
          <= ride.Multi.Group_resilience.paid_cost
          && ride.planned_cost = resched.planned_cost)
        Sched.Scheduler.[ Gomcds; Scds ])

let test_no_events_pays_planned () =
  let group = hetero ~inter_cost:4 () in
  let trace =
    Gen.trace Gen.mesh44 ~n_data:3
      [ [ (0, 1, 2); (1, 6, 1) ]; [ (2, 8, 3); (0, 3, 1) ] ]
  in
  let gp = Multi.Group_problem.create ~kernel group trace in
  let r = Multi.Group_resilience.run gp Sched.Scheduler.Gomcds in
  check_int "paid = planned with no events" r.planned_cost r.paid_cost;
  check_int "no evictions" 0 r.evicted;
  check_int "no reschedules" 0 r.reschedules

let test_eviction_accounted () =
  (* pin everything to member 0, then kill it at window 1: every datum
     must evict and the movement is accounted *)
  let group =
    Multi.Array_group.line ~inter_cost:2
      [ Pim.Mesh.square 2; Pim.Mesh.square 2 ]
  in
  let trace =
    Gen.trace Gen.mesh44 ~n_data:2
      [ [ (0, 0, 5); (1, 3, 5) ]; [ (0, 0, 1); (1, 3, 1) ] ]
  in
  let gp = Multi.Group_problem.create ~kernel group trace in
  let events =
    [
      {
        Multi.Group_resilience.window = 1;
        fault = Multi.Group_fault.create ~dead_arrays:[ 0 ] ();
      };
    ]
  in
  let r =
    Multi.Group_resilience.run ~reschedule:false ~events gp
      Sched.Scheduler.Gomcds
  in
  check_int "both data evicted" 2 r.evicted;
  check_bool "eviction movement charged" true (r.evicted_cost > 0);
  check_bool "paid exceeds planned" true (r.paid_cost > r.planned_cost)

(* ------------------------------------------------------------------ *)
(* Capacity, serialization                                             *)
(* ------------------------------------------------------------------ *)

let test_bounded_assignment_spreads () =
  let group =
    Multi.Array_group.line ~inter_cost:2
      [ Pim.Mesh.square 2; Pim.Mesh.square 2 ]
  in
  (* 16 data, capacity 2 per processor: each member holds at most 8 *)
  let refs = List.init 16 (fun d -> (d, d mod 4, 1)) in
  let trace = Gen.trace Gen.mesh44 ~n_data:16 [ refs ] in
  let gp =
    Multi.Group_problem.create ~policy:(Sched.Problem.Bounded 2) ~kernel group
      trace
  in
  let asn = Multi.Group_problem.assignment gp in
  let in_m m =
    Array.fold_left (fun acc x -> if x = m then acc + 1 else acc) 0 asn
  in
  check_int "member 0 full" 8 (in_m 0);
  check_int "member 1 takes the rest" 8 (in_m 1);
  let plan = Multi.Group_solver.solve gp Sched.Scheduler.Gomcds in
  check_bool "bounded plan respects capacity" true
    (let load = Hashtbl.create 16 in
     let ok = ref true in
     for w = 0 to Multi.Group_schedule.n_windows plan - 1 do
       Hashtbl.reset load;
       for d = 0 to 15 do
         let c = Multi.Group_schedule.center plan ~window:w ~data:d in
         let cur = Option.value ~default:0 (Hashtbl.find_opt load c) in
         Hashtbl.replace load c (cur + 1);
         if cur + 1 > 2 then ok := false
       done
     done;
     !ok);
  (* and an infeasible instance is refused with the historical message *)
  check_bool "infeasible refused" true
    (try
       Multi.Group_problem.check_feasible
         (Multi.Group_problem.create ~policy:(Sched.Problem.Bounded 1) ~kernel
            group
            (Gen.trace Gen.mesh44 ~n_data:9
               [ List.init 9 (fun d -> (d, 0, 1)) ]))
         ~who:"test";
       false
     with Invalid_argument _ -> true)

let test_serial_roundtrip () =
  let group =
    Multi.Array_group.create ~inter_cost:9
      ~inter:(Pim.Mesh.create ~rows:1 ~cols:2)
      [| Pim.Mesh.square 2; Pim.Mesh.torus ~rows:3 ~cols:2 |]
  in
  let trace =
    Gen.trace Gen.mesh44 ~n_data:3
      [ [ (0, 1, 2); (1, 7, 1) ]; [ (2, 4, 3) ] ]
  in
  let gp = Multi.Group_problem.create ~kernel group trace in
  let plan = Multi.Group_solver.solve gp Sched.Scheduler.Gomcds in
  let text = Multi.Group_serial.to_string plan in
  check_bool "header" true
    (String.length text > 0
    && String.sub text 0 25 = "# pim-sched group-plan v1");
  let back = Multi.Group_serial.of_string text in
  check_bool "round trip" true (Multi.Group_schedule.equal plan back);
  check_bool "garbage rejected" true
    (try
       ignore (Multi.Group_serial.of_string "# pim-sched group-plan v1\nnope");
       false
     with Failure _ -> true)

let suite =
  [
    Gen.case "spec: grid form" test_spec_grid;
    Gen.case "spec: heterogeneous list form" test_spec_list;
    Gen.case "spec: malformed rejected" test_spec_rejects;
    Gen.case "two-level flat metric" test_metric;
    Gen.case "virtual-mesh embedding" test_virtual_embedding;
    Gen.to_alcotest prop_dp_matches_dense_oracle;
    Gen.to_alcotest prop_dp_beats_static;
    Gen.to_alcotest prop_jobs_invariance;
    Gen.case "migration economics at the fabric price" test_migration_economics;
    Gen.to_alcotest prop_degenerate_mesh;
    Gen.to_alcotest prop_degenerate_torus;
    Gen.case "inject: deterministic and monotone"
      test_inject_deterministic_monotone;
    Gen.case "inject: resurrection keeps the group solvable"
      test_inject_resurrection;
    Gen.case "fault validation" test_fault_validate;
    Gen.case "member_fault localizes global failures"
      test_member_fault_localizes;
    Gen.to_alcotest prop_dead_array_excluded;
    Gen.to_alcotest prop_reschedule_never_loses;
    Gen.case "no events pays the planned cost" test_no_events_pays_planned;
    Gen.case "whole-array eviction is accounted" test_eviction_accounted;
    Gen.case "bounded assignment spreads across members"
      test_bounded_assignment_spreads;
    Gen.case "group-plan serialization round-trips" test_serial_roundtrip;
  ]
