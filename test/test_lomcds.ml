let check_int = Alcotest.(check int)
let mesh = Gen.mesh44

let test_chases_local_optima () =
  let t = Gen.trace mesh ~n_data:1 [ [ (0, 0, 5) ]; [ (0, 15, 5) ] ] in
  let s = Sched.Lomcds.schedule (Sched.Problem.create mesh t) in
  check_int "w0 center" 0 (Sched.Schedule.center s ~window:0 ~data:0);
  check_int "w1 center" 15 (Sched.Schedule.center s ~window:1 ~data:0)

let test_unreferenced_window_keeps_position () =
  let t =
    Gen.trace mesh ~n_data:2
      [ [ (0, 9, 2) ]; [ (1, 3, 1) ]; [ (0, 9, 2) ] ]
  in
  let s = Sched.Lomcds.schedule (Sched.Problem.create mesh t) in
  Alcotest.(check (list int))
    "datum 0 stays through idle window" [ 9; 9; 9 ]
    (Array.to_list (Sched.Schedule.centers_of_data s ~data:0))

let test_late_datum_preplaced () =
  (* datum 0 first referenced in window 1: it should sit at that window's
     center from the start, paying no movement. *)
  let t = Gen.trace mesh ~n_data:2 [ [ (1, 0, 1) ]; [ (0, 12, 3) ] ] in
  let s = Sched.Lomcds.schedule (Sched.Problem.create mesh t) in
  Alcotest.(check (list int))
    "pre-placed at its first center" [ 12; 12 ]
    (Array.to_list (Sched.Schedule.centers_of_data s ~data:0))

let test_local_centers_accessor () =
  let t = Gen.trace mesh ~n_data:1 [ [ (0, 4, 1) ]; [ (0, 4, 0) ] ] in
  (* second window has a 0-count add: datum effectively unreferenced *)
  let cs = Sched.Lomcds.local_centers mesh t ~data:0 in
  Alcotest.(check (array (option int))) "centers" [| Some 4; None |] cs

let test_example_matches_paper_structure () =
  let o =
    Sched.Lomcds.schedule
      (Sched.Problem.create Sched.Example.mesh Sched.Example.trace)
  in
  (* LOMCDS must pick each window's local optimum for D *)
  List.iteri
    (fun w window ->
      check_int
        (Printf.sprintf "window %d local center" w)
        (Sched.Cost.local_optimal_center Sched.Example.mesh window ~data:0)
        (Sched.Schedule.center o ~window:w ~data:0))
    (Reftrace.Trace.windows Sched.Example.trace)

let prop_reference_cost_is_pointwise_minimal =
  let arb = Gen.trace_arbitrary ~max_data:3 ~max_windows:4 ~max_count:4 () in
  QCheck.Test.make
    ~name:"LOMCDS pays minimal reference cost in every window (unbounded)"
    ~count:100 arb (fun t ->
      let s = Sched.Lomcds.schedule (Sched.Problem.create mesh t) in
      let ok = ref true in
      List.iteri
        (fun w window ->
          List.iter
            (fun data ->
              let center = Sched.Schedule.center s ~window:w ~data in
              let actual =
                Sched.Cost.reference_cost mesh window ~data ~center
              in
              let best =
                Sched.Cost.reference_cost mesh window ~data
                  ~center:(Sched.Cost.local_optimal_center mesh window ~data)
              in
              if actual <> best then ok := false)
            (Reftrace.Window.referenced_data window))
        (Reftrace.Trace.windows t);
      !ok)

let prop_capacity_never_violated =
  let arb = Gen.trace_arbitrary ~max_data:16 ~max_windows:5 ~max_count:4 () in
  QCheck.Test.make ~name:"LOMCDS respects capacity" ~count:100 arb (fun t ->
      let n = Reftrace.Data_space.size (Reftrace.Trace.space t) in
      let capacity = Pim.Memory.capacity_for ~data_count:n ~mesh ~headroom:2 in
      let s = Sched.Lomcds.schedule (Sched.Problem.of_capacity ~capacity mesh t) in
      Option.is_none (Sched.Schedule.check_capacity s ~capacity))

let prop_no_gratuitous_movement =
  let arb = Gen.trace_arbitrary ~max_data:4 ~max_windows:5 ~max_count:4 () in
  QCheck.Test.make
    ~name:"LOMCDS only moves data into windows that reference them"
    ~count:100 arb (fun t ->
      let s = Sched.Lomcds.schedule (Sched.Problem.create mesh t) in
      let n = Reftrace.Data_space.size (Reftrace.Trace.space t) in
      let ok = ref true in
      List.iteri
        (fun w window ->
          if w > 0 then
            for data = 0 to n - 1 do
              let here = Sched.Schedule.center s ~window:w ~data in
              let before = Sched.Schedule.center s ~window:(w - 1) ~data in
              if
                here <> before
                && Reftrace.Window.references window data = 0
              then ok := false
            done)
        (Reftrace.Trace.windows t);
      !ok)

let suite =
  [
    Gen.case "chases local optima" test_chases_local_optima;
    Gen.case "idle window keeps position" test_unreferenced_window_keeps_position;
    Gen.case "late datum pre-placed" test_late_datum_preplaced;
    Gen.case "local_centers accessor" test_local_centers_accessor;
    Gen.case "worked example" test_example_matches_paper_structure;
    Gen.to_alcotest prop_reference_cost_is_pointwise_minimal;
    Gen.to_alcotest prop_capacity_never_violated;
    Gen.to_alcotest prop_no_gratuitous_movement;
  ]
