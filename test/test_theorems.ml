(* Properties encoding the paper's Lemma 1, Theorem 2 and Theorem 3: with
   two consecutive execution windows whose local optimal centers are a
   closest pair, the reference cost grows strictly monotonically along a
   shortest path between the centers, and grouping the two windows cannot
   reduce the total communication cost. *)

let mesh = Gen.mesh44
let mesh1d = Pim.Mesh.create ~rows:1 ~cols:8

(* All minimizers of a cost vector. *)
let optimal_set v =
  let best = Array.fold_left min max_int v in
  Array.to_list v
  |> List.mapi (fun i c -> (i, c))
  |> List.filter_map (fun (i, c) -> if c = best then Some i else None)

let closest_pair mesh s0 s1 =
  let best = ref None in
  List.iter
    (fun p ->
      List.iter
        (fun q ->
          let d = Pim.Mesh.distance mesh p q in
          match !best with
          | Some (_, _, d') when d' <= d -> ()
          | _ -> best := Some (p, q, d))
        s1)
    s0;
  match !best with Some (p, q, _) -> (p, q) | None -> assert false

let strictly_increasing = function
  | [] | [ _ ] -> true
  | l ->
      let rec go = function
        | a :: (b :: _ as rest) -> a < b && go rest
        | [ _ ] | [] -> true
      in
      go l

let window_pair_arbitrary m =
  QCheck.pair
    (Gen.single_datum_window_arbitrary ~mesh:m ~max_count:5 ())
    (Gen.single_datum_window_arbitrary ~mesh:m ~max_count:5 ())

let monotone_along_path m (w0, w1) =
  let v0 = Sched.Cost.cost_vector m w0 ~data:0 in
  let v1 = Sched.Cost.cost_vector m w1 ~data:0 in
  let p, q = closest_pair m (optimal_set v0) (optimal_set v1) in
  let path = Pim.Mesh.xy_route m ~src:p ~dst:q in
  strictly_increasing (List.map (fun r -> v0.(r)) path)

let prop_lemma1_1d_monotonicity =
  QCheck.Test.make
    ~name:"Lemma 1: 1-D cost strictly increases towards the other center"
    ~count:300 (window_pair_arbitrary mesh1d)
    (fun pair -> monotone_along_path mesh1d pair)

let prop_theorem2_2d_monotonicity =
  QCheck.Test.make
    ~name:"Theorem 2: 2-D cost strictly increases along a shortest path"
    ~count:300 (window_pair_arbitrary mesh)
    (fun pair -> monotone_along_path mesh pair)

let grouping_cannot_win m (w0, w1) =
  let v0 = Sched.Cost.cost_vector m w0 ~data:0 in
  let v1 = Sched.Cost.cost_vector m w1 ~data:0 in
  let p, q = closest_pair m (optimal_set v0) (optimal_set v1) in
  let ungrouped = v0.(p) + v1.(q) + Pim.Mesh.distance m p q in
  let merged = Reftrace.Window.merge w0 w1 in
  let vm = Sched.Cost.cost_vector m merged ~data:0 in
  let grouped = Array.fold_left min max_int vm in
  grouped >= ungrouped

let prop_theorem3_pairwise_grouping =
  QCheck.Test.make
    ~name:"Theorem 3: grouping two windows cannot beat closest-pair centers"
    ~count:300 (window_pair_arbitrary mesh)
    (fun pair -> grouping_cannot_win mesh pair)

let prop_theorem3_via_grouping_module =
  (* On a two-window trace, grouping can only tie or repair a bad tie-break
     of LOMCDS — by Theorem 3 it can never beat the best ungrouped
     two-center assignment, which GOMCDS computes. So the grouped total is
     sandwiched between GOMCDS and LOMCDS. (Exact equality with LOMCDS
     needs the closest-pair center selection of the theorem statement; our
     deterministic lowest-rank tie-break can differ.) *)
  let arb = Gen.trace_arbitrary ~max_data:4 ~max_windows:2 ~max_count:5 () in
  QCheck.Test.make
    ~name:"Theorem 3: two-window grouping between GOMCDS and LOMCDS"
    ~count:200 arb (fun t ->
      QCheck.assume (Reftrace.Trace.n_windows t = 2);
      let total s = Sched.Schedule.total_cost s t in
      let grouped = total (Sched.Grouping.schedule (Sched.Problem.create mesh t)) in
      let plain = total (Sched.Lomcds.schedule (Sched.Problem.create mesh t)) in
      let optimal = total (Sched.Gomcds.schedule (Sched.Problem.create mesh t)) in
      optimal <= grouped && grouped <= plain)

let test_monotonicity_concrete () =
  (* hand-checkable 1-D instance: optima at cell 1 (w0) and cell 6 (w1) *)
  let w0 = Gen.window ~n_data:1 [ (0, 1, 3) ] in
  let w1 = Gen.window ~n_data:1 [ (0, 6, 2) ] in
  Alcotest.(check bool)
    "monotone" true
    (monotone_along_path mesh1d (w0, w1));
  let v0 = Sched.Cost.cost_vector mesh1d w0 ~data:0 in
  Alcotest.(check (list int))
    "costs along path"
    [ 0; 3; 6; 9; 12; 15 ]
    (List.map (fun r -> v0.(r)) (Pim.Mesh.xy_route mesh1d ~src:1 ~dst:6))

let suite =
  [
    Gen.case "monotonicity concrete" test_monotonicity_concrete;
    Gen.to_alcotest prop_lemma1_1d_monotonicity;
    Gen.to_alcotest prop_theorem2_2d_monotonicity;
    Gen.to_alcotest prop_theorem3_pairwise_grouping;
    Gen.to_alcotest prop_theorem3_via_grouping_module;
  ]
