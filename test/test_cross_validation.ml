(* Heavy randomized cross-validation across feature combinations: torus x
   volumes x writes x every scheduler. Each property stacks several of the
   identities the individual suites check in isolation. *)

let meshes =
  [ Gen.mesh44; Pim.Mesh.square ~wrap:true 4; Pim.Mesh.create ~rows:2 ~cols:8 ]

(* A generator over mixed-kind, mixed-volume traces. *)
let rich_trace_gen mesh =
  let open QCheck.Gen in
  let m = Pim.Mesh.size mesh in
  int_range 2 8 >>= fun n_data ->
  int_range 1 5 >>= fun n_windows ->
  int_range 1 4 >>= fun volume ->
  let ref_gen =
    QCheck.Gen.quad
      (int_range 0 (n_data - 1))
      (int_range 0 (m - 1))
      (int_range 1 4) bool
  in
  list_size (int_range n_windows (3 * n_windows)) (pair (int_range 0 (n_windows - 1)) ref_gen)
  >>= fun refs ->
  let space =
    Reftrace.Data_space.create
      (Reftrace.Data_space.array_desc ~volume "A" ~rows:1 ~cols:n_data)
      []
  in
  let windows =
    Array.init n_windows (fun _ -> Reftrace.Window.create ~n_data)
  in
  (* guarantee non-empty windows *)
  Array.iter
    (fun w -> Reftrace.Window.add w ~data:0 ~proc:0 ~count:1)
    windows;
  List.iter
    (fun (w, (data, proc, count, is_write)) ->
      let kind =
        if is_write then Reftrace.Window.Write else Reftrace.Window.Read
      in
      Reftrace.Window.add ~kind windows.(w) ~data ~proc ~count)
    refs;
  return (Reftrace.Trace.create space (Array.to_list windows))

let rich_arbitrary mesh =
  QCheck.make
    ~print:(fun t -> Format.asprintf "%a" Reftrace.Trace.pp t)
    (rich_trace_gen mesh)

let capacity_for mesh t =
  Pim.Memory.capacity_for
    ~data_count:(Reftrace.Data_space.size (Reftrace.Trace.space t))
    ~mesh ~headroom:2

let prop_everything_agrees mesh =
  QCheck.Test.make
    ~name:
      (Format.asprintf "all invariants on %a (volumes+writes)" Pim.Mesh.pp
         mesh)
    ~count:40 (rich_arbitrary mesh)
    (fun t ->
      let capacity = capacity_for mesh t in
      let bound = Sched.Bounds.lower_bound_in (Sched.Problem.create mesh t) in
      List.for_all
        (fun algo ->
          let s = Sched.Scheduler.run ~capacity algo mesh t in
          let total = Sched.Schedule.total_cost s t in
          (* 1. simulated traffic = analytic cost *)
          let simulated =
            (Pim.Simulator.run mesh (Sched.Schedule.to_rounds s t))
              .Pim.Simulator.total_cost
          in
          (* 2. never below the lower bound *)
          (* 3. capacity respected *)
          (* 4. timed makespan >= max per-link load *)
          let timed = Pim.Timed_simulator.run mesh (Sched.Schedule.to_rounds s t) in
          simulated = total && total >= bound
          && Option.is_none (Sched.Schedule.check_capacity s ~capacity)
          && timed.Pim.Timed_simulator.total_volume_hops = total)
        Sched.Scheduler.
          [ Row_wise; Cyclic; Scds; Lomcds; Gomcds; Lomcds_grouped;
            Gomcds_refined ])

let prop_serialization_composes mesh =
  QCheck.Test.make
    ~name:
      (Format.asprintf "trace+schedule serialization composes on %a"
         Pim.Mesh.pp mesh)
    ~count:30 (rich_arbitrary mesh)
    (fun t ->
      (* round-trip the trace, schedule the copy, round-trip the schedule,
         and price everything against the original *)
      let t' = Reftrace.Serial.of_string (Reftrace.Serial.to_string t) in
      let s = Sched.Gomcds.schedule (Sched.Problem.create mesh t') in
      let s' =
        Sched.Schedule_serial.of_string (Sched.Schedule_serial.to_string s)
      in
      Sched.Schedule.total_cost s' t = Sched.Schedule.total_cost s t')

let prop_composition_reversal mesh =
  QCheck.Test.make
    ~name:
      (Format.asprintf "append/reverse keep costs consistent on %a"
         Pim.Mesh.pp mesh)
    ~count:30 (rich_arbitrary mesh)
    (fun t ->
      (* b5-style palindrome: scheduling t ++ reverse t costs the same as
         scheduling reverse t ++ t, by symmetry of the construction *)
      let ab = Reftrace.Trace.append t (Reftrace.Trace.reversed t) in
      let ba = Reftrace.Trace.append (Reftrace.Trace.reversed t) t in
      Sched.Schedule.total_cost (Sched.Gomcds.schedule (Sched.Problem.create mesh ab)) ab
      = Sched.Schedule.total_cost (Sched.Gomcds.schedule (Sched.Problem.create mesh ba)) ba)

let suite =
  List.concat_map
    (fun mesh ->
      [
        Gen.to_alcotest (prop_everything_agrees mesh);
        Gen.to_alcotest (prop_serialization_composes mesh);
        Gen.to_alcotest (prop_composition_reversal mesh);
      ])
    meshes
