(* Tests for the extension workloads (transitive closure, FFT transpose)
   and the Viz renderers. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let mesh = Gen.mesh44

(* -- Transitive closure --------------------------------------------------- *)

let test_tc_shape () =
  let t = Workloads.Transitive_closure.trace ~n:8 mesh in
  check_int "n windows" 8 (Reftrace.Trace.n_windows t);
  check_int "single matrix" 64
    (Reftrace.Data_space.size (Reftrace.Trace.space t));
  check_int "3 n^3 refs" (3 * 8 * 8 * 8) (Reftrace.Trace.total_references t)

let test_tc_hot_row_col () =
  let n = 8 in
  let t = Workloads.Transitive_closure.trace ~n mesh in
  let space = Reftrace.Trace.space t in
  let d r c = Reftrace.Data_space.id space ~array_name:"D" ~row:r ~col:c in
  let w5 = Reftrace.Trace.window t 5 in
  (* D(i,5) and D(5,j) are read by a whole row/column of iterations;
     D(5,5) is doubly hot (it is both D(i,k) for i=5 and D(k,j) for j=5,
     plus its own in-place update) *)
  check_bool "pivot row hot" true
    (Reftrace.Window.references w5 (d 0 5)
    > Reftrace.Window.references w5 (d 0 4));
  check_int "pivot element hottest" (n + n + 1)
    (Reftrace.Window.references w5 (d 5 5))

let test_tc_movement_helps () =
  let t = Workloads.Transitive_closure.trace ~n:16 mesh in
  let static = Sched.Schedule.total_cost (Sched.Scds.schedule (Sched.Problem.create mesh t)) t in
  let dynamic = Sched.Schedule.total_cost (Sched.Gomcds.schedule (Sched.Problem.create mesh t)) t in
  check_bool "multi-center wins" true (dynamic < static)

(* -- FFT transpose -------------------------------------------------------- *)

let test_fft_shape () =
  let t = Workloads.Fft_transpose.trace ~n:8 mesh in
  check_int "three phases" 3 (Reftrace.Trace.n_windows t);
  (* rows: 64 * log2 8 = 192 refs per FFT phase; transpose: 128 *)
  check_int "total refs" ((2 * 192) + 128) (Reftrace.Trace.total_references t)

let test_fft_rejects_non_power_of_two () =
  Alcotest.check_raises "n=6"
    (Invalid_argument "Fft_transpose.trace: n must be a power of two >= 2")
    (fun () -> ignore (Workloads.Fft_transpose.trace ~n:6 mesh))

let test_fft_transpose_window_is_symmetric () =
  let n = 8 in
  let t = Workloads.Fft_transpose.trace ~n mesh in
  let space = Reftrace.Trace.space t in
  let x r c = Reftrace.Data_space.id space ~array_name:"X" ~row:r ~col:c in
  let w1 = Reftrace.Trace.window t 1 in
  (* in the transpose window, X(i,j) is touched by owner(i,j) (write) and
     owner(j,i) (read): 2 references for every element *)
  check_int "two refs" 2 (Reftrace.Window.references w1 (x 2 5));
  check_int "diagonal also two" 2 (Reftrace.Window.references w1 (x 3 3))

let test_fft_fft_phases_local_under_block_partition () =
  (* with block-2d owner-computes, phase 0 references are all local to the
     owner, so a good schedule pays only for the transpose *)
  let t = Workloads.Fft_transpose.trace ~n:8 mesh in
  let s = Sched.Gomcds.schedule (Sched.Problem.create mesh t) in
  let breakdown = Sched.Schedule.cost s t in
  check_bool "cost dominated by transpose+movement" true
    (breakdown.Sched.Schedule.total
    < Sched.Schedule.total_cost
        (Sched.Scheduler.run Sched.Scheduler.Row_wise mesh t)
        t)

(* -- Viz ------------------------------------------------------------------ *)

let test_window_heatmap_renders_counts () =
  let w = Gen.window ~n_data:1 [ (0, 0, 7); (0, 5, 12) ] in
  let s = Sched.Viz.window_heatmap mesh w ~data:0 in
  let lines = String.split_on_char '\n' s in
  (* 4 rows + 5 rules + trailing empty *)
  Alcotest.(check int) "line count" 10 (List.length lines);
  let mem needle =
    let n = String.length needle and h = String.length s in
    let rec go i = i + n <= h && (String.sub s i n = needle || go (i + 1)) in
    go 0
  in
  check_bool "shows 12" true (mem "12");
  check_bool "shows 7" true (mem " 7")

let test_total_heatmap_sums () =
  let w = Gen.window ~n_data:2 [ (0, 0, 3); (1, 0, 4) ] in
  let s = Sched.Viz.total_heatmap mesh w in
  check_bool "summed cell" true
    (String.length s > 0
    &&
    let mem needle =
      let n = String.length needle and h = String.length s in
      let rec go i = i + n <= h && (String.sub s i n = needle || go (i + 1)) in
      go 0
    in
    mem "7")

let test_load_map_counts_data () =
  let s = Sched.Schedule.constant mesh ~n_windows:1 [| 3; 3; 0 |] in
  let rendered = Sched.Viz.load_map mesh s ~window:0 in
  let mem needle =
    let n = String.length needle and h = String.length rendered in
    let rec go i =
      i + n <= h && (String.sub rendered i n = needle || go (i + 1))
    in
    go 0
  in
  check_bool "two at rank 3" true (mem "2");
  check_bool "one at rank 0" true (mem "1")

let test_trajectory_renders_arrows () =
  let s = Sched.Schedule.create mesh ~n_windows:3 ~n_data:1 in
  Sched.Schedule.set_center s ~window:1 ~data:0 5;
  Sched.Schedule.set_center s ~window:2 ~data:0 5;
  Alcotest.(check string)
    "arrows" "(0,0) -> (1,1) -> (1,1)"
    (Sched.Viz.trajectory mesh s ~data:0)

let suite =
  [
    Gen.case "transitive closure shape" test_tc_shape;
    Gen.case "transitive closure hot row/col" test_tc_hot_row_col;
    Gen.case "transitive closure movement helps" test_tc_movement_helps;
    Gen.case "fft shape" test_fft_shape;
    Gen.case "fft rejects non-power-of-two" test_fft_rejects_non_power_of_two;
    Gen.case "fft transpose symmetric" test_fft_transpose_window_is_symmetric;
    Gen.case "fft beats row-wise" test_fft_fft_phases_local_under_block_partition;
    Gen.case "viz window heatmap" test_window_heatmap_renders_counts;
    Gen.case "viz total heatmap" test_total_heatmap_sums;
    Gen.case "viz load map" test_load_map_counts_data;
    Gen.case "viz trajectory" test_trajectory_renders_arrows;
  ]
