let mesh = Gen.mesh44
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_zero_iterations_is_identity () =
  let t = Workloads.Code_kernel.trace ~n:8 mesh in
  let s, stats = Sched.Annealing.run ~iterations:0 mesh t in
  check_int "unchanged" stats.Sched.Annealing.initial_cost
    (Sched.Schedule.total_cost s t);
  check_int "no acceptances" 0 stats.Sched.Annealing.accepted

let test_improves_row_wise () =
  let t = Workloads.Code_kernel.trace ~n:8 mesh in
  let _, stats = Sched.Annealing.run ~iterations:20_000 mesh t in
  check_bool "improved" true
    (stats.Sched.Annealing.final_cost < stats.Sched.Annealing.initial_cost)

let test_deterministic_per_seed () =
  let t = Workloads.Lu.trace ~n:8 mesh in
  let a, sa = Sched.Annealing.run ~seed:7 ~iterations:5_000 mesh t in
  let b, sb = Sched.Annealing.run ~seed:7 ~iterations:5_000 mesh t in
  check_bool "same schedule" true (Sched.Schedule.equal a b);
  check_int "same cost" sa.Sched.Annealing.final_cost
    sb.Sched.Annealing.final_cost;
  let c, _ = Sched.Annealing.run ~seed:8 ~iterations:5_000 mesh t in
  check_bool "different seed explores differently" false
    (Sched.Schedule.equal a c)

let test_final_cost_consistent () =
  let t = Workloads.Matmul.trace ~n:8 mesh in
  let s, stats = Sched.Annealing.run ~iterations:10_000 mesh t in
  check_int "incremental accounting exact" stats.Sched.Annealing.final_cost
    (Sched.Schedule.total_cost s t)

let test_initial_shape_checked () =
  let t = Gen.trace mesh ~n_data:2 [ [ (0, 0, 1) ] ] in
  let bad = Sched.Schedule.create mesh ~n_windows:2 ~n_data:2 in
  Alcotest.check_raises "shape"
    (Invalid_argument "Annealing.run: initial schedule shape mismatch")
    (fun () -> ignore (Sched.Annealing.run ~initial:bad mesh t))

let prop_capacity_respected =
  let arb = Gen.trace_arbitrary ~max_data:12 ~max_windows:4 ~max_count:3 () in
  QCheck.Test.make ~name:"annealing never violates capacity" ~count:30 arb
    (fun t ->
      let n = Reftrace.Data_space.size (Reftrace.Trace.space t) in
      let capacity = Pim.Memory.capacity_for ~data_count:n ~mesh ~headroom:2 in
      let s, _ = Sched.Annealing.run ~capacity ~iterations:3_000 mesh t in
      Option.is_none (Sched.Schedule.check_capacity s ~capacity))

let prop_respects_lower_bound =
  let arb = Gen.trace_arbitrary ~max_data:5 ~max_windows:4 ~max_count:4 () in
  QCheck.Test.make ~name:"annealed cost >= lower bound" ~count:30 arb
    (fun t ->
      let s, _ = Sched.Annealing.run ~iterations:3_000 mesh t in
      Sched.Schedule.total_cost s t >= Sched.Bounds.lower_bound_in (Sched.Problem.create mesh t))

let test_gomcds_beats_annealing_on_lu () =
  let t = Workloads.Lu.trace ~n:12 mesh in
  let _, stats = Sched.Annealing.run ~iterations:60_000 mesh t in
  let gomcds = Sched.Schedule.total_cost (Sched.Gomcds.schedule (Sched.Problem.create mesh t)) t in
  check_bool "structure beats search" true
    (gomcds <= stats.Sched.Annealing.final_cost)

let suite =
  [
    Gen.case "zero iterations identity" test_zero_iterations_is_identity;
    Gen.case "improves row-wise" test_improves_row_wise;
    Gen.case "deterministic per seed" test_deterministic_per_seed;
    Gen.case "final cost consistent" test_final_cost_consistent;
    Gen.case "initial shape checked" test_initial_shape_checked;
    Gen.to_alcotest prop_capacity_respected;
    Gen.to_alcotest prop_respects_lower_bound;
    Gen.case "gomcds beats annealing on LU" test_gomcds_beats_annealing_on_lu;
  ]
