(* Differential harness for the flat-arena / argmin / axis-table fast
   paths: every rewritten layer is pinned byte-identical to the surviving
   oracle it replaced.

   - arena-backed vectors vs per-array [Cost.cost_vector] builds;
   - [Cost.argmin_of_marginals] vs the full-vector ascending argmin, on
     meshes and tori (circular prefix sums);
   - [Layered.solve_axes(_filtered)] vs the pre-rewrite full-table dense
     DP ([Layered.solve_dense(_filtered)], kept exported as the oracle);
   - the [Problem.t]-ported [Annealing]/[Online] vs verbatim copies of
     their pre-port standalone implementations, at fixed seeds, serial
     and at jobs = 4;
   - [Window.merge]'s direct row summation vs replaying every reference.

   The whole suite honours PIMSCHED_TEST_KERNEL=naive so CI exercises the
   oracle pairing under both cost kernels ([Problem]-level comparisons
   only — the kernels themselves are cross-checked in test_kernel.ml). *)

let kernel =
  match Sys.getenv_opt "PIMSCHED_TEST_KERNEL" with
  | Some "naive" -> `Naive
  | _ -> `Separable

let torus44 = Pim.Mesh.torus ~rows:4 ~cols:4
let torus35 = Pim.Mesh.torus ~rows:3 ~cols:5

(* one mesh and one torus, even and odd extents *)
let meshes = [ Gen.mesh44; torus35 ]

let problem_of ?policy ?(jobs = 1) mesh trace =
  Sched.Problem.create ?policy ~jobs ~kernel mesh trace

(* ------------------------------------------------------------------ *)
(* (a) arena rows vs per-array vectors                                 *)
(* ------------------------------------------------------------------ *)

let oracle_vector mesh window ~data =
  match kernel with
  | `Separable -> Sched.Cost.cost_vector mesh window ~data
  | `Naive -> Sched.Cost.Naive.cost_vector mesh window ~data

let prop_arena_matches_per_array_vectors mesh label =
  let arb = Gen.trace_arbitrary ~mesh ~max_data:5 ~max_windows:4 ~max_count:3 () in
  QCheck.Test.make
    ~name:("arena rows equal per-array vectors, " ^ label)
    ~count:40 arb (fun trace ->
      let problem = problem_of mesh trace in
      let m = Pim.Mesh.size mesh in
      let windows = Reftrace.Trace.windows trace in
      List.for_all
        (fun data ->
          let slab, offs = Sched.Problem.layer_slab problem ~data in
          List.mapi (fun w window -> (w, window)) windows
          |> List.for_all (fun (w, window) ->
                 let oracle = oracle_vector mesh window ~data in
                 let copy =
                   Sched.Problem.cost_vector problem ~window:w ~data
                 in
                 (* non-referencing windows must share the zero row *)
                 (Reftrace.Window.references window data > 0
                 || offs.(w) = 0)
                 && oracle = copy
                 && Array.for_all Fun.id
                      (Array.init m (fun c ->
                           slab.{offs.(w) + c} = oracle.(c)
                           && Sched.Problem.cost_entry problem ~window:w
                                ~data c
                              = oracle.(c)))
                 && Sched.Problem.candidates problem ~window:w ~data
                    = Sched.Processor_list.of_cost_vector oracle))
        (List.init (Sched.Problem.n_data problem) Fun.id))

(* ------------------------------------------------------------------ *)
(* (b) argmin_of_marginals vs full-vector argmin                       *)
(* ------------------------------------------------------------------ *)

let vector_argmin v =
  let best = ref 0 in
  for i = 1 to Array.length v - 1 do
    if v.(i) < v.(!best) then best := i
  done;
  !best

let prop_argmin_matches_vector mesh label =
  let arb = Gen.single_datum_window_arbitrary ~mesh ~max_count:3 () in
  QCheck.Test.make
    ~name:("argmin_of_marginals equals vector argmin, " ^ label)
    ~count:100 arb (fun window ->
      let wrap = Pim.Mesh.wraps mesh
      and cols = Pim.Mesh.cols mesh
      and rows = Pim.Mesh.rows mesh in
      let m =
        Reftrace.Window.marginals window ~data:0 ~cols ~rows
      in
      let center, cost = Sched.Cost.argmin_of_marginals ~wrap ~cols ~rows m in
      let v = Sched.Cost.cost_vector mesh window ~data:0 in
      center = vector_argmin v && cost = v.(center))

let prop_problem_centers_match_vector mesh label =
  let arb = Gen.trace_arbitrary ~mesh ~max_data:5 ~max_windows:4 ~max_count:3 () in
  QCheck.Test.make
    ~name:("Problem.optimal_center equals vector argmin, " ^ label)
    ~count:40 arb (fun trace ->
      let problem = problem_of mesh trace in
      let n_windows = Sched.Problem.n_windows problem in
      List.for_all
        (fun data ->
          Sched.Problem.merged_optimal_center problem ~data
          = vector_argmin (Sched.Problem.merged_vector problem ~data)
          && List.for_all
               (fun w ->
                 Sched.Problem.optimal_center problem ~window:w ~data
                 = vector_argmin
                     (Sched.Problem.cost_vector problem ~window:w ~data))
               (List.init n_windows Fun.id))
        (List.init (Sched.Problem.n_data problem) Fun.id))

(* ------------------------------------------------------------------ *)
(* (c) axis-table layered DP vs the full-table dense oracle            *)
(* ------------------------------------------------------------------ *)

(* random layered instance over a real mesh: vectors plus, for the
   filtered variant, a per-(layer, node) mask (not forced feasible — an
   infeasible instance must yield None on both sides) *)
let layered_instance_gen mesh =
  let open QCheck.Gen in
  let m = Pim.Mesh.size mesh in
  int_range 1 4 >>= fun n_layers ->
  array_size (return (n_layers * m)) (int_range 0 20) >>= fun flat ->
  array_size (return (n_layers * m)) (frequencyl [ (4, true); (1, false) ])
  >>= fun mask -> return (n_layers, flat, mask)

let layered_print (n_layers, flat, mask) =
  Format.asprintf "%d layers, vectors [|%s|], mask [|%s|]" n_layers
    (String.concat ";" (Array.to_list (Array.map string_of_int flat)))
    (String.concat ";"
       (Array.to_list (Array.map (fun b -> if b then "1" else "0") mask)))

let prop_solve_axes_matches_dense mesh label =
  let arb = QCheck.make ~print:layered_print (layered_instance_gen mesh) in
  QCheck.Test.make
    ~name:("solve_axes equals full-table solve_dense, " ^ label)
    ~count:60 arb (fun (n_layers, flat, mask) ->
      let m = Pim.Mesh.size mesh in
      let dist = Pim.Mesh.distance_table mesh in
      let xdist = Pim.Mesh.x_distance_table mesh
      and ydist = Pim.Mesh.y_distance_table mesh in
      let vectors =
        Array.init n_layers (fun w -> Array.sub flat (w * m) m)
      in
      let allowed ~layer j = mask.((layer * m) + j) in
      let buffer_of a =
        Bigarray.Array1.of_array Bigarray.Int Bigarray.C_layout a
      in
      let dense = Pathgraph.Layered.solve_dense ~dist ~vectors in
      let unfiltered_equal =
        Pathgraph.Layered.solve_axes ~xdist ~ydist
          ~vectors:(buffer_of flat) ~width:m ~n_layers ()
        = dense
      in
      let filtered_equal =
        Pathgraph.Layered.solve_axes_filtered ~xdist ~ydist
          ~vectors:(buffer_of flat) ~width:m ~n_layers ~allowed ()
        = Pathgraph.Layered.solve_dense_filtered ~dist ~vectors ~allowed
      in
      (* explicit offsets: store the layer rows in reverse order and point
         offsets.(w) at the right one — the compact-arena access pattern *)
      let rev = Array.make (n_layers * m) 0 in
      let offsets =
        Array.init n_layers (fun w -> (n_layers - 1 - w) * m)
      in
      Array.iteri
        (fun w off -> Array.blit flat (w * m) rev off m)
        offsets;
      let offsets_equal =
        Pathgraph.Layered.solve_axes ~offsets ~xdist ~ydist
          ~vectors:(buffer_of rev) ~width:m ~n_layers ()
        = dense
      in
      unfiltered_equal && filtered_equal && offsets_equal)

(* ------------------------------------------------------------------ *)
(* (d) ported Annealing / Online vs their pre-port implementations     *)
(* ------------------------------------------------------------------ *)

(* Verbatim copies of the standalone implementations as they stood before
   the port onto Problem.t — the oracles the ported code must reproduce
   byte-for-byte. They intentionally bypass Problem and price everything
   through Cost directly. *)
module Oracle = struct
  let make_rng seed =
    let state = ref (if seed = 0 then 0xBEEF else seed) in
    fun bound ->
      let x = !state in
      let x = x lxor (x lsl 13) in
      let x = x lxor (x lsr 7) in
      let x = x lxor (x lsl 17) in
      state := x land max_int;
      !state mod bound

  let anneal ?capacity ?(seed = 0xBEEF) ?(iterations = 50_000) mesh trace =
    let space = Reftrace.Trace.space trace in
    let n_data = Reftrace.Data_space.size space in
    let n_windows = Reftrace.Trace.n_windows trace in
    let m = Pim.Mesh.size mesh in
    let sched =
      Sched.Baseline.schedule (Sched.Baseline.row_wise mesh space) mesh trace
    in
    let windows = Array.of_list (Reftrace.Trace.windows trace) in
    let volume = Array.init n_data (Reftrace.Data_space.volume_of space) in
    let loads = Array.make_matrix n_windows m 0 in
    for w = 0 to n_windows - 1 do
      for d = 0 to n_data - 1 do
        let r = Sched.Schedule.center sched ~window:w ~data:d in
        loads.(w).(r) <- loads.(w).(r) + 1
      done
    done;
    let rng = make_rng seed in
    let dist = Pim.Mesh.distance mesh in
    let delta w d r r' =
      let refs =
        Sched.Cost.reference_cost mesh windows.(w) ~data:d ~center:r'
        - Sched.Cost.reference_cost mesh windows.(w) ~data:d ~center:r
      in
      let edge w' =
        let other = Sched.Schedule.center sched ~window:w' ~data:d in
        dist r' other - dist r other
      in
      let moves =
        (if w > 0 then edge (w - 1) else 0)
        + if w < n_windows - 1 then edge (w + 1) else 0
      in
      volume.(d) * (refs + moves)
    in
    let initial_cost = Sched.Schedule.total_cost sched trace in
    let current = ref initial_cost in
    let temp =
      ref (float_of_int (max 1 (initial_cost / max 1 (n_data * 4))))
    in
    let cooling =
      if iterations = 0 then 1.
      else Float.exp (Float.log 0.001 /. float_of_int iterations)
    in
    for _ = 1 to iterations do
      let w = rng n_windows and d = rng n_data and r' = rng m in
      let r = Sched.Schedule.center sched ~window:w ~data:d in
      let room =
        match capacity with None -> true | Some c -> loads.(w).(r') < c
      in
      if r' <> r && room then begin
        let dl = delta w d r r' in
        let accept =
          dl <= 0
          ||
          let u = float_of_int (1 + rng 1_000_000) /. 1_000_000. in
          u < Float.exp (-.float_of_int dl /. !temp)
        in
        if accept then begin
          Sched.Schedule.set_center sched ~window:w ~data:d r';
          loads.(w).(r) <- loads.(w).(r) - 1;
          loads.(w).(r') <- loads.(w).(r') + 1;
          current := !current + dl
        end
      end;
      temp := Float.max 1e-6 (!temp *. cooling)
    done;
    sched

  let online ?capacity ?(theta = 2.) mesh trace =
    let space = Reftrace.Trace.space trace in
    let n_data = Reftrace.Data_space.size space in
    let n_windows = Reftrace.Trace.n_windows trace in
    let initial = Sched.Baseline.row_wise mesh space in
    let schedule = Sched.Schedule.create mesh ~n_windows ~n_data in
    let current = Array.copy initial in
    List.iteri
      (fun w window ->
        if w > 0 then begin
          let memory =
            match capacity with
            | None -> Pim.Memory.unbounded mesh
            | Some c -> Pim.Memory.create mesh ~capacity:c
          in
          Array.iter
            (fun rank ->
              let ok = Pim.Memory.allocate memory rank in
              assert ok)
            current;
          List.iter
            (fun data ->
              let here = current.(data) in
              let stay =
                Sched.Cost.reference_cost mesh window ~data ~center:here
              in
              Pim.Memory.release memory here;
              let candidates =
                Sched.Processor_list.for_data mesh window ~data
              in
              let best =
                match
                  Sched.Processor_list.first_available memory candidates
                with
                | Some rank -> rank
                | None -> here
              in
              let go = Sched.Cost.reference_cost mesh window ~data ~center:best in
              let move = Pim.Mesh.distance mesh here best in
              let chosen =
                if
                  best <> here
                  && float_of_int (stay - go) *. theta > float_of_int move
                then best
                else here
              in
              let ok = Pim.Memory.allocate memory chosen in
              assert ok;
              current.(data) <- chosen)
            (Sched.Ordering.by_window_references window)
        end;
        Array.iteri
          (fun data rank ->
            Sched.Schedule.set_center schedule ~window:w ~data rank)
          current)
      (Reftrace.Trace.windows trace);
    schedule
end

let capacity_of mesh trace =
  Pim.Memory.capacity_for
    ~data_count:(Reftrace.Data_space.size (Reftrace.Trace.space trace))
    ~mesh ~headroom:2

let policies mesh trace =
  [ (None, Sched.Problem.Unbounded);
    (Some (capacity_of mesh trace), Sched.Problem.Bounded (capacity_of mesh trace)) ]

let prop_annealing_port_matches mesh label =
  let arb = Gen.trace_arbitrary ~mesh ~max_data:5 ~max_windows:4 ~max_count:3 () in
  QCheck.Test.make
    ~name:("ported Annealing equals pre-port oracle, " ^ label)
    ~count:15 arb (fun trace ->
      List.for_all
        (fun (capacity, policy) ->
          List.for_all
            (fun jobs ->
              let problem = problem_of ~policy ~jobs mesh trace in
              let ported, _ =
                Sched.Annealing.anneal ~seed:7 ~iterations:400 problem
              in
              let oracle =
                Oracle.anneal ?capacity ~seed:7 ~iterations:400 mesh trace
              in
              Sched.Schedule.equal ported oracle)
            [ 1; 4 ])
        (policies mesh trace))

let prop_online_port_matches mesh label =
  let arb = Gen.trace_arbitrary ~mesh ~max_data:5 ~max_windows:4 ~max_count:3 () in
  QCheck.Test.make
    ~name:("ported Online equals pre-port oracle, " ^ label)
    ~count:25 arb (fun trace ->
      List.for_all
        (fun (capacity, policy) ->
          List.for_all
            (fun jobs ->
              let problem = problem_of ~policy ~jobs mesh trace in
              let ported = Sched.Online.schedule ~theta:1.5 problem in
              let oracle = Oracle.online ?capacity ~theta:1.5 mesh trace in
              Sched.Schedule.equal ported oracle)
            [ 1; 4 ])
        (policies mesh trace))

(* The unbounded Scds/Lomcds argmin fast paths vs the candidate-list
   route they replaced (forced by a Bounded policy with enough headroom
   to never bind: capacity >= n_data makes every allocation succeed at
   the list head, i.e. the argmin). *)
let prop_unbounded_fast_paths_match mesh label =
  let arb = Gen.trace_arbitrary ~mesh ~max_data:5 ~max_windows:4 ~max_count:3 () in
  QCheck.Test.make
    ~name:("unbounded argmin fast paths equal list walks, " ^ label)
    ~count:25 arb (fun trace ->
      let n_data = Reftrace.Data_space.size (Reftrace.Trace.space trace) in
      let slack = Sched.Problem.Bounded n_data in
      List.for_all
        (fun jobs ->
          let fast = problem_of ~jobs mesh trace in
          let slow = problem_of ~policy:slack ~jobs mesh trace in
          Sched.Schedule.equal (Sched.Scds.schedule fast)
            (Sched.Scds.schedule slow)
          && Sched.Schedule.equal
               (Sched.Lomcds.schedule fast)
               (Sched.Lomcds.schedule slow))
        [ 1; 4 ])

(* ------------------------------------------------------------------ *)
(* Window.merge direct summation vs replaying every reference          *)
(* ------------------------------------------------------------------ *)

let window_pair_gen =
  let open QCheck.Gen in
  let one =
    int_range 1 24 >>= fun n_refs ->
    list_size (return n_refs)
      (pair
         (triple (int_range 0 3) (int_range 0 15) (int_range 1 3))
         bool)
  in
  pair one one

let window_of specs =
  let w = Reftrace.Window.create ~n_data:4 in
  List.iter
    (fun ((data, proc, count), write) ->
      let kind =
        if write then Reftrace.Window.Write else Reftrace.Window.Read
      in
      Reftrace.Window.add w ~kind ~data ~proc ~count)
    specs;
  w

let replay ~into src =
  for data = 0 to Reftrace.Window.n_data src - 1 do
    List.iter
      (fun (proc, count) ->
        Reftrace.Window.add into ~kind:Reftrace.Window.Read ~data ~proc
          ~count)
      (Reftrace.Window.read_profile src data);
    List.iter
      (fun (proc, count) ->
        Reftrace.Window.add into ~kind:Reftrace.Window.Write ~data ~proc
          ~count)
      (Reftrace.Window.write_profile src data)
  done

let prop_merge_equals_replay =
  QCheck.Test.make ~name:"Window.merge equals replaying every reference"
    ~count:100
    (QCheck.make window_pair_gen)
    (fun (sa, sb) ->
      let a = window_of sa and b = window_of sb in
      let merged = Reftrace.Window.merge a b in
      let replayed = Reftrace.Window.create ~n_data:4 in
      replay ~into:replayed a;
      replay ~into:replayed b;
      Reftrace.Window.equal merged replayed
      && List.for_all
           (fun data ->
             Reftrace.Window.profile merged data
             = Reftrace.Window.profile replayed data
             && Reftrace.Window.references merged data
                = Reftrace.Window.references replayed data
             && Reftrace.Window.marginals merged ~data ~cols:4 ~rows:4
                = Reftrace.Window.marginals replayed ~data ~cols:4 ~rows:4)
           [ 0; 1; 2; 3 ])

(* ------------------------------------------------------------------ *)
(* Compact-slab structure                                              *)
(* ------------------------------------------------------------------ *)

(* The arena invariants [Problem.layer_slab] promises: one row per
   referencing window plus the shared zero row; non-referencing windows
   all point at offset 0; referencing rows are laid out back-to-back in
   window order; the zero row really is all zeros. *)
let prop_layer_slab_compact mesh label =
  let arb = Gen.trace_arbitrary ~mesh ~max_data:5 ~max_windows:4 ~max_count:3 () in
  QCheck.Test.make
    ~name:("layer_slab is compact with a shared zero row, " ^ label)
    ~count:40 arb (fun trace ->
      let problem = problem_of mesh trace in
      let m = Pim.Mesh.size mesh in
      let windows = Array.of_list (Reftrace.Trace.windows trace) in
      List.for_all
        (fun data ->
          let slab, offs = Sched.Problem.layer_slab problem ~data in
          let referencing =
            List.filter
              (fun w -> Reftrace.Window.references windows.(w) data > 0)
              (List.init (Array.length windows) Fun.id)
          in
          Bigarray.Array1.dim slab = (1 + List.length referencing) * m
          && Array.for_all Fun.id
               (Array.init m (fun i -> slab.{i} = 0))
          && List.for_all2
               (fun w slot -> offs.(w) = slot * m)
               referencing
               (List.init (List.length referencing) (fun s -> s + 1))
          && Array.for_all Fun.id
               (Array.mapi
                  (fun w off ->
                    Reftrace.Window.references windows.(w) data > 0
                    || off = 0)
                  offs))
        (List.init (Sched.Problem.n_data problem) Fun.id))

(* ------------------------------------------------------------------ *)
(* Arena-backed path / trajectory costs vs the Cost-module oracle      *)
(* ------------------------------------------------------------------ *)

let oracle_path_cost mesh profiles ~data =
  match kernel with
  | `Separable -> Sched.Cost.path_cost mesh profiles ~data
  | `Naive -> Sched.Cost.Naive.path_cost mesh profiles ~data

let prop_path_cost_matches mesh label =
  let arb = Gen.trace_arbitrary ~mesh ~max_data:5 ~max_windows:4 ~max_count:3 () in
  QCheck.Test.make
    ~name:("Problem.path/trajectory_cost equal Cost.path_cost, " ^ label)
    ~count:40 arb (fun trace ->
      let problem = problem_of mesh trace in
      let m = Pim.Mesh.size mesh in
      let windows = Array.of_list (Reftrace.Trace.windows trace) in
      let n_windows = Array.length windows in
      List.for_all
        (fun data ->
          (* deterministic pseudo-random centers; equality is what counts *)
          let center w = ((data * 7) + (w * 13) + 5) mod m in
          let centers = Array.init n_windows center in
          let pairs = List.init n_windows (fun w -> (w, center w)) in
          let profiles =
            List.map (fun (w, c) -> (windows.(w), c)) pairs
          in
          Sched.Problem.trajectory_cost problem ~data centers
          = oracle_path_cost mesh profiles ~data
          && Sched.Problem.path_cost problem ~data [ (0, center 0) ]
             = oracle_path_cost mesh [ (windows.(0), center 0) ] ~data)
        (List.init (Sched.Problem.n_data problem) Fun.id))

(* ------------------------------------------------------------------ *)
(* Merged-window caches vs the merge_list oracle                       *)
(* ------------------------------------------------------------------ *)

let prop_merged_matches mesh label =
  let arb = Gen.trace_arbitrary ~mesh ~max_data:5 ~max_windows:4 ~max_count:3 () in
  QCheck.Test.make
    ~name:("merged vector/center/candidates equal merge_list oracle, " ^ label)
    ~count:40 arb (fun trace ->
      let problem = problem_of mesh trace in
      let merged =
        Reftrace.Window.merge_list (Reftrace.Trace.windows trace)
      in
      List.for_all
        (fun data ->
          let oracle = oracle_vector mesh merged ~data in
          Sched.Problem.merged_vector problem ~data = oracle
          && Sched.Problem.merged_optimal_center problem ~data
             = vector_argmin oracle
          && Sched.Problem.merged_candidates problem ~data
             = Sched.Processor_list.of_cost_vector oracle)
        (List.init (Sched.Problem.n_data problem) Fun.id))

(* ------------------------------------------------------------------ *)
(* Window.marginals vs a direct per-reference projection               *)
(* ------------------------------------------------------------------ *)

(* The incremental (x, y) walk in [Window.marginals] vs projecting each
   profile entry with div/mod — the obvious spec it replaced. *)
let prop_marginals_oracle mesh label =
  let arb = Gen.single_datum_window_arbitrary ~mesh ~max_count:3 () in
  QCheck.Test.make
    ~name:("Window.marginals equals per-reference projection, " ^ label)
    ~count:100 arb (fun window ->
      let cols = Pim.Mesh.cols mesh and rows = Pim.Mesh.rows mesh in
      let mx = Array.make cols 0 and my = Array.make rows 0 in
      List.iter
        (fun (proc, count) ->
          mx.(proc mod cols) <- mx.(proc mod cols) + count;
          my.(proc / cols) <- my.(proc / cols) + count)
        (Reftrace.Window.profile window 0);
      Reftrace.Window.marginals window ~data:0 ~cols ~rows = (mx, my))

(* ------------------------------------------------------------------ *)
(* axis_cost vs the O(E^2) definition                                  *)
(* ------------------------------------------------------------------ *)

let axis_gen =
  let open QCheck.Gen in
  int_range 1 12 >>= fun e ->
  array_size (return e) (int_range 0 9)

let prop_axis_cost_oracle ~wrap label =
  QCheck.Test.make
    ~name:("axis_cost equals the O(E^2) definition, " ^ label)
    ~count:100
    (QCheck.make
       ~print:(fun m ->
         String.concat ";" (Array.to_list (Array.map string_of_int m)))
       axis_gen)
    (fun m ->
      let e = Array.length m in
      let d1 i j =
        let d = abs (i - j) in
        if wrap then min d (e - d) else d
      in
      let oracle =
        Array.init e (fun i ->
            Array.to_list m
            |> List.mapi (fun j w -> w * d1 i j)
            |> List.fold_left ( + ) 0)
      in
      Sched.Cost.axis_cost ~wrap m = oracle)

(* ------------------------------------------------------------------ *)
(* solve_axes input validation and Problem.merged memoization          *)
(* ------------------------------------------------------------------ *)

let solve_axes_validation_cases =
  let xdist = Pim.Mesh.x_distance_table Gen.mesh44
  and ydist = Pim.Mesh.y_distance_table Gen.mesh44 in
  let m = Pim.Mesh.size Gen.mesh44 in
  let buffer n =
    Bigarray.Array1.of_array Bigarray.Int Bigarray.C_layout
      (Array.make n 1)
  in
  let rejects name f = Gen.case name (fun () ->
      match f () with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail (name ^ ": expected Invalid_argument"))
  in
  [
    rejects "solve_axes rejects a short flat buffer" (fun () ->
        Pathgraph.Layered.solve_axes ~xdist ~ydist
          ~vectors:(buffer ((2 * m) - 1)) ~width:m ~n_layers:2 ());
    rejects "solve_axes rejects a short offset table" (fun () ->
        Pathgraph.Layered.solve_axes ~offsets:[| 0 |] ~xdist ~ydist
          ~vectors:(buffer (2 * m)) ~width:m ~n_layers:2 ());
    rejects "solve_axes rejects an out-of-range offset" (fun () ->
        Pathgraph.Layered.solve_axes ~offsets:[| 0; (m * 2) - 1 |] ~xdist
          ~ydist ~vectors:(buffer (2 * m)) ~width:m ~n_layers:2 ());
  ]

let merged_memo_case =
  Gen.case "Problem.merged is computed once and shared" (fun () ->
      let trace =
        Gen.trace Gen.mesh44 ~n_data:2
          [ [ (0, 1, 2); (1, 3, 1) ]; [ (0, 5, 1) ] ]
      in
      let problem = problem_of Gen.mesh44 trace in
      let a = Sched.Problem.merged problem in
      let b = Sched.Problem.merged problem in
      Alcotest.(check bool) "same window value" true (a == b);
      Alcotest.(check bool) "equals merge_list" true
        (Reftrace.Window.equal a
           (Reftrace.Window.merge_list (Reftrace.Trace.windows trace))))

let unreferenced_datum_case =
  Gen.case "unreferenced datum slab is just the zero row" (fun () ->
      (* datum 1 is never referenced: its compact slab must be a single
         shared zero row with every window offset pointing at it *)
      let trace =
        Gen.trace Gen.mesh44 ~n_data:2 [ [ (0, 1, 2) ]; [ (0, 5, 1) ] ]
      in
      let problem = problem_of Gen.mesh44 trace in
      let slab, offs = Sched.Problem.layer_slab problem ~data:1 in
      Alcotest.(check int) "slab is one row"
        (Pim.Mesh.size Gen.mesh44)
        (Bigarray.Array1.dim slab);
      Alcotest.(check (array int)) "all offsets zero" (Array.make 2 0) offs;
      for i = 0 to Bigarray.Array1.dim slab - 1 do
        Alcotest.(check int) "zero row" 0 slab.{i}
      done)

let per_mesh f = List.concat_map (fun (mesh, label) -> f mesh label)
    [ (Gen.mesh44, "mesh"); (torus44, "torus"); (torus35, "odd torus") ]

(* degenerate extents for the argmin fast path: single-row meshes and a
   1-high ring, where one axis marginal has a single cell (and on the
   ring a zero wrap distance) *)
let edge_meshes =
  [
    (Pim.Mesh.create ~rows:1 ~cols:8, "1x8 mesh");
    (Pim.Mesh.create ~rows:8 ~cols:1, "8x1 mesh");
    (Pim.Mesh.torus ~rows:1 ~cols:6, "1x6 ring");
  ]

let suite =
  List.map Gen.to_alcotest
    (List.concat
       [
         List.concat_map
           (fun mesh ->
             let label =
               if Pim.Mesh.wraps mesh then "torus" else "mesh"
             in
             [
               prop_arena_matches_per_array_vectors mesh label;
               prop_problem_centers_match_vector mesh label;
               prop_solve_axes_matches_dense mesh label;
               prop_annealing_port_matches mesh label;
               prop_online_port_matches mesh label;
               prop_unbounded_fast_paths_match mesh label;
               prop_layer_slab_compact mesh label;
               prop_path_cost_matches mesh label;
               prop_merged_matches mesh label;
             ])
           meshes;
         per_mesh (fun mesh label ->
             [
               prop_argmin_matches_vector mesh label;
               prop_marginals_oracle mesh label;
             ]);
         List.map
           (fun (mesh, label) -> prop_argmin_matches_vector mesh label)
           edge_meshes;
         [
           prop_axis_cost_oracle ~wrap:false "line";
           prop_axis_cost_oracle ~wrap:true "circle";
           prop_merge_equals_replay;
         ];
       ])
  @ solve_axes_validation_cases
  @ [ merged_memo_case; unreferenced_datum_case ]
