let mesh = Gen.mesh44
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_window0_serves_from_initial () =
  let t = Gen.trace mesh ~n_data:2 [ [ (0, 15, 9) ]; [ (0, 15, 9) ] ] in
  let s = Sched.Online.run ~initial:[| 0; 0 |] mesh t in
  check_int "w0 at initial" 0 (Sched.Schedule.center s ~window:0 ~data:0);
  (* strong persistent pull: moves at w1 *)
  check_int "w1 migrated" 15 (Sched.Schedule.center s ~window:1 ~data:0)

let test_theta_zero_limit_never_moves () =
  let t = Workloads.Code_kernel.trace ~n:8 mesh in
  let initial = Sched.Baseline.row_wise mesh (Reftrace.Trace.space t) in
  let s = Sched.Online.run ~theta:1e-9 ~initial mesh t in
  check_int "static" 0 (Sched.Schedule.moves s);
  check_int "equals initial static cost"
    (Sched.Schedule.total_cost (Sched.Baseline.schedule initial mesh t) t)
    (Sched.Schedule.total_cost s t)

let test_weak_pull_ignored () =
  (* one weak far reference: hysteresis keeps the datum home *)
  let t = Gen.trace mesh ~n_data:1 [ [ (0, 0, 5) ]; [ (0, 15, 1) ] ] in
  let s = Sched.Online.run ~theta:1. ~initial:[| 0 |] mesh t in
  check_int "stays" 0 (Sched.Schedule.center s ~window:1 ~data:0)

let test_theta_validation () =
  let t = Gen.trace mesh ~n_data:1 [ [ (0, 0, 1) ] ] in
  Alcotest.check_raises "bad theta"
    (Invalid_argument "Online.run: theta must be positive") (fun () ->
      ignore (Sched.Online.run ~theta:0. mesh t));
  Alcotest.check_raises "bad initial"
    (Invalid_argument "Online.run: initial placement has the wrong length")
    (fun () -> ignore (Sched.Online.run ~initial:[| 0; 0 |] mesh t))

let test_overpacked_initial_rejected () =
  let t = Gen.trace mesh ~n_data:3 [ [ (0, 0, 1) ] ] in
  Alcotest.check_raises "overpacked"
    (Invalid_argument
       "Online.run: initial placement packs 3 > 1 data at rank 0") (fun () ->
      ignore (Sched.Online.run ~capacity:1 ~initial:[| 0; 0; 0 |] mesh t))

let prop_offline_adapt_is_lower_bound =
  let arb = Gen.trace_arbitrary ~max_data:5 ~max_windows:5 ~max_count:4 () in
  QCheck.Test.make
    ~name:"offline Adapt from the same initial never costs more" ~count:60
    arb (fun t ->
      let initial = Sched.Baseline.row_wise mesh (Reftrace.Trace.space t) in
      let online =
        Sched.Schedule.total_cost (Sched.Online.run ~initial mesh t) t
      in
      let r = Sched.Adapt.recovery ~initial mesh t in
      r.Sched.Adapt.adaptive <= online)

let prop_capacity_respected =
  let arb = Gen.trace_arbitrary ~max_data:16 ~max_windows:4 ~max_count:3 () in
  QCheck.Test.make ~name:"online schedules respect capacity" ~count:60 arb
    (fun t ->
      let n = Reftrace.Data_space.size (Reftrace.Trace.space t) in
      let capacity = Pim.Memory.capacity_for ~data_count:n ~mesh ~headroom:2 in
      let s = Sched.Online.run ~capacity mesh t in
      Option.is_none (Sched.Schedule.check_capacity s ~capacity))

let prop_above_global_lower_bound =
  let arb = Gen.trace_arbitrary ~max_data:5 ~max_windows:4 ~max_count:4 () in
  QCheck.Test.make ~name:"online cost >= per-datum lower bound" ~count:60 arb
    (fun t ->
      Sched.Schedule.total_cost (Sched.Online.run mesh t) t
      >= Sched.Bounds.lower_bound_in (Sched.Problem.create mesh t))

let test_hysteresis_monotone_on_drifting_workload () =
  (* on the CODE kernel, too little theta under-moves and huge theta
     over-chases; theta = 2 should beat both extremes *)
  let t = Workloads.Code_kernel.trace ~n:16 mesh in
  let cost theta =
    Sched.Schedule.total_cost (Sched.Online.run ~theta mesh t) t
  in
  check_bool "moving helps at all" true (cost 2. < cost 1e-9)

let suite =
  [
    Gen.case "window 0 serves from initial" test_window0_serves_from_initial;
    Gen.case "theta->0 never moves" test_theta_zero_limit_never_moves;
    Gen.case "weak pull ignored" test_weak_pull_ignored;
    Gen.case "theta validation" test_theta_validation;
    Gen.case "overpacked initial rejected" test_overpacked_initial_rejected;
    Gen.to_alcotest prop_offline_adapt_is_lower_bound;
    Gen.to_alcotest prop_capacity_respected;
    Gen.to_alcotest prop_above_global_lower_bound;
    Gen.case "hysteresis helps on drift" test_hysteresis_monotone_on_drifting_workload;
  ]
