(* The lib/obs observability subsystem: metric semantics, histogram
   bucketing, span nesting (including unwinding on exceptions), JSON
   printing, and the Chrome trace export golden. Every case starts from
   a clean registry via [scoped]. *)

let scoped f =
  Obs.with_enabled (fun () ->
      Obs.reset ();
      Fun.protect ~finally:Obs.reset f)

(* -- switch -------------------------------------------------------------- *)

let test_disabled_is_noop () =
  Obs.enabled := false;
  Obs.reset ();
  Obs.Metrics.incr "noop.counter";
  Obs.Metrics.gauge "noop.gauge" 42;
  Obs.Metrics.observe "noop.hist" 3;
  let r = Obs.Span.with_ ~name:"noop.span" (fun () -> 17) in
  Alcotest.(check int) "body still runs" 17 r;
  let snap = Obs.Metrics.snapshot () in
  Alcotest.(check int) "no counters" 0 (List.length snap.Obs.Metrics.counters);
  Alcotest.(check int) "no gauges" 0 (List.length snap.Obs.Metrics.gauges);
  Alcotest.(check int) "no histograms" 0
    (List.length snap.Obs.Metrics.histograms);
  Alcotest.(check int) "no spans" 0 (List.length (Obs.Span.spans ()))

let test_with_enabled_restores () =
  Obs.enabled := false;
  (try Obs.with_enabled (fun () -> failwith "boom") with Failure _ -> ());
  Alcotest.(check bool) "restored after raise" false !Obs.enabled

(* -- counters and gauges ------------------------------------------------- *)

let test_counter_accumulates () =
  scoped (fun () ->
      Obs.Metrics.incr "c";
      Obs.Metrics.incr "c";
      Obs.Metrics.add "c" 5;
      let snap = Obs.Metrics.snapshot () in
      Alcotest.(check int) "sum" 7 (Obs.Metrics.counter snap "c");
      Alcotest.(check int) "absent reads zero" 0
        (Obs.Metrics.counter snap "missing"))

let test_gauge_last_write_wins_in_shard () =
  scoped (fun () ->
      Obs.Metrics.gauge "g" 3;
      Obs.Metrics.gauge "g" 7;
      Obs.Metrics.gauge "g" 5;
      let snap = Obs.Metrics.snapshot () in
      Alcotest.(check (list (pair string int)))
        "last write" [ ("g", 5) ] snap.Obs.Metrics.gauges)

let test_registry_reset_between_cases () =
  scoped (fun () ->
      Obs.Metrics.incr "leftover";
      Obs.Span.with_ ~name:"leftover" ignore);
  (* [scoped] resets on the way out: a fresh scope must see nothing *)
  scoped (fun () ->
      let snap = Obs.Metrics.snapshot () in
      Alcotest.(check int) "counters cleared" 0
        (Obs.Metrics.counter snap "leftover");
      Alcotest.(check int) "spans cleared" 0 (List.length (Obs.Span.spans ())))

(* -- histograms ---------------------------------------------------------- *)

let test_histogram_bucket_boundaries () =
  scoped (fun () ->
      let bounds = [| 1; 2; 4 |] in
      List.iter (Obs.Metrics.observe ~bounds "h") [ 0; 1; 2; 3; 4; 5 ];
      let snap = Obs.Metrics.snapshot () in
      let h = List.assoc "h" snap.Obs.Metrics.histograms in
      (* bounds are inclusive upper bounds: 0,1 -> le1; 2 -> le2;
         3,4 -> le4; 5 -> overflow *)
      Alcotest.(check (array int)) "counts" [| 2; 1; 2; 1 |] h.Obs.Metrics.counts;
      Alcotest.(check (array int)) "bounds kept" bounds h.Obs.Metrics.bounds;
      Alcotest.(check int) "sum" 15 h.Obs.Metrics.sum;
      Alcotest.(check int) "count" 6 h.Obs.Metrics.count)

let test_histogram_default_bounds () =
  scoped (fun () ->
      Obs.Metrics.observe "d" 3;
      let snap = Obs.Metrics.snapshot () in
      let h = List.assoc "d" snap.Obs.Metrics.histograms in
      Alcotest.(check int) "overflow slot present"
        (Array.length Obs.Metrics.default_bounds + 1)
        (Array.length h.Obs.Metrics.counts))

(* -- spans --------------------------------------------------------------- *)

let test_span_nesting () =
  scoped (fun () ->
      Obs.Span.with_ ~name:"outer" (fun () ->
          Obs.Span.with_ ~name:"inner" ignore);
      match Obs.Span.spans () with
      | [ inner; outer ] ->
          (* completion order: inner closes first *)
          Alcotest.(check string) "inner name" "inner" inner.Obs.Span.name;
          Alcotest.(check string) "outer name" "outer" outer.Obs.Span.name;
          Alcotest.(check int) "outer is root" (-1) outer.Obs.Span.parent;
          Alcotest.(check int) "inner nests under outer" outer.Obs.Span.id
            inner.Obs.Span.parent;
          Alcotest.(check bool) "durations non-negative" true
            (inner.Obs.Span.dur_us >= 0. && outer.Obs.Span.dur_us >= 0.)
      | spans -> Alcotest.failf "expected 2 spans, got %d" (List.length spans))

let test_span_unwinds_on_exception () =
  scoped (fun () ->
      (try
         Obs.Span.with_ ~name:"raises" (fun () -> failwith "boom")
       with Failure _ -> ());
      (* the raising span was still recorded... *)
      (match Obs.Span.spans () with
      | [ s ] -> Alcotest.(check string) "recorded" "raises" s.Obs.Span.name
      | spans -> Alcotest.failf "expected 1 span, got %d" (List.length spans));
      (* ...and the stack unwound: a following span is a fresh root *)
      Obs.Span.with_ ~name:"after" ignore;
      match Obs.Span.spans () with
      | [ _; after ] ->
          Alcotest.(check int) "not nested under the dead span" (-1)
            after.Obs.Span.parent
      | spans -> Alcotest.failf "expected 2 spans, got %d" (List.length spans))

(* -- JSON printer -------------------------------------------------------- *)

let test_json_escaping () =
  let open Obs.Json in
  Alcotest.(check string)
    "escapes" {|"a\"b\\c\nd\te"|}
    (to_string (String "a\"b\\c\nd\te"));
  Alcotest.(check string)
    "control chars" {|"\u0001"|}
    (to_string (String "\001"));
  Alcotest.(check string) "null" "null" (to_string Null);
  Alcotest.(check string) "nan is null" "null" (to_string (Float Float.nan));
  Alcotest.(check string) "integer float" "100" (to_string (Float 100.));
  Alcotest.(check string)
    "nested" {|{"a":[1,true,"x"],"b":{}}|}
    (to_string (Obj [ ("a", List [ Int 1; Bool true; String "x" ]); ("b", Obj []) ]))

(* -- exports ------------------------------------------------------------- *)

let golden_spans =
  Obs.Span.
    [
      { id = 1; parent = -1; name = "root"; domain = 0; start_us = 1000.; dur_us = 500. };
      { id = 2; parent = 1; name = "child"; domain = 0; start_us = 1100.; dur_us = 50. };
    ]

let test_chrome_trace_golden () =
  Alcotest.(check string) "golden"
    ({|{"traceEvents":[|}
    ^ {|{"name":"root","ph":"X","ts":0,"dur":500,"pid":0,"tid":0,"args":{"id":1,"parent":-1}},|}
    ^ {|{"name":"child","ph":"X","ts":100,"dur":50,"pid":0,"tid":0,"args":{"id":2,"parent":1}}|}
    ^ {|],"displayTimeUnit":"ms"}|})
    (Obs.Json.to_string (Obs.Export.chrome_trace golden_spans))

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let test_flame_summary_nests () =
  let text = Obs.Export.flame_summary golden_spans in
  Alcotest.(check bool) "root listed" true (contains text "root");
  Alcotest.(check bool) "child indented" true (contains text "  child")

let test_metrics_json_shape () =
  scoped (fun () ->
      Obs.Metrics.add "x" 3;
      let j =
        Obs.Export.metrics_json
          ~extra:[ ("note", Obs.Json.String "t") ]
          (Obs.Metrics.snapshot ())
      in
      let s = Obs.Json.to_string j in
      Alcotest.(check bool) "schema tag" true
        (contains s {|"schema":"pim-sched-metrics/1"|});
      Alcotest.(check bool) "extra spliced" true (contains s {|"note":"t"|});
      Alcotest.(check bool) "counter present" true (contains s {|"x":3|}))

(* ---- monotonic clock ---- *)

let test_clock_monotonic () =
  let prev = ref (Obs.Clock.now_s ()) in
  for _ = 1 to 1000 do
    let t = Obs.Clock.now_s () in
    Alcotest.(check bool) "never steps back" true (t >= !prev);
    prev := t
  done;
  (* the microsecond view is the same clock, scaled *)
  let s = Obs.Clock.now_s () in
  let us = Obs.Clock.now_us () in
  Alcotest.(check bool) "us within a second of s * 1e6" true
    (Float.abs (us -. (s *. 1e6)) < 1e6)

(* ---- failpoints ---- *)

let test_failpoint_disabled_noop () =
  Obs.Failpoint.clear ();
  let s = Obs.Failpoint.site "test.fp.noop" in
  Obs.Failpoint.hit s;
  Alcotest.(check int) "clamp passes through" 4096 (Obs.Failpoint.clamp s 4096);
  Alcotest.(check int) "nothing fired" 0 (Obs.Failpoint.fired s)

let test_failpoint_countdown () =
  Obs.Failpoint.clear ();
  Fun.protect ~finally:Obs.Failpoint.clear @@ fun () ->
  Obs.Failpoint.configure "test.fp.count=raise,n=2";
  let s = Obs.Failpoint.site "test.fp.count" in
  let raised = ref 0 in
  for _ = 1 to 5 do
    match Obs.Failpoint.hit s with
    | () -> ()
    | exception Obs.Failpoint.Injected name ->
        Alcotest.(check string) "payload is the site name" "test.fp.count" name;
        incr raised
  done;
  Alcotest.(check int) "n=2 fires exactly twice" 2 !raised;
  Alcotest.(check int) "fired counter" 2 (Obs.Failpoint.fired s)

let test_failpoint_clamp_actions () =
  Obs.Failpoint.clear ();
  Fun.protect ~finally:Obs.Failpoint.clear @@ fun () ->
  Obs.Failpoint.configure "test.fp.sr=short_read;test.fp.pw=partial_write";
  let sr = Obs.Failpoint.site "test.fp.sr" in
  let pw = Obs.Failpoint.site "test.fp.pw" in
  Alcotest.(check int) "short read truncates to 1" 1
    (Obs.Failpoint.clamp sr 4096);
  Alcotest.(check int) "partial write halves" 2048
    (Obs.Failpoint.clamp pw 4096);
  Alcotest.(check int) "halving never reaches zero" 1
    (Obs.Failpoint.clamp pw 1)

let test_failpoint_seeded_schedule () =
  (* a fixed seed yields a fixed firing schedule on a serial path *)
  let schedule () =
    Obs.Failpoint.clear ();
    Fun.protect ~finally:Obs.Failpoint.clear @@ fun () ->
    Obs.Failpoint.configure "test.fp.seeded=raise,p=0.5,seed=9";
    let s = Obs.Failpoint.site "test.fp.seeded" in
    List.init 64 (fun _ ->
        match Obs.Failpoint.hit s with
        | () -> false
        | exception Obs.Failpoint.Injected _ -> true)
  in
  let a = schedule () and b = schedule () in
  Alcotest.(check (list bool)) "replayable" a b;
  Alcotest.(check bool) "probabilistic: some fire, some don't" true
    (List.mem true a && List.mem false a)

let test_failpoint_bad_spec () =
  Obs.Failpoint.clear ();
  List.iter
    (fun spec ->
      match Obs.Failpoint.configure spec with
      | () -> Alcotest.failf "spec %S should be rejected" spec
      | exception Invalid_argument _ ->
          (* a rejected spec must not half-arm the registry *)
          Alcotest.(check bool)
            (Printf.sprintf "%S leaves failpoints dark" spec)
            false !Obs.Failpoint.enabled)
    [ "x=explode"; "x=raise,p=2.0"; "x=raise,n=-1"; "noequals"; "=raise" ]

let suite =
  [
    Gen.case "disabled is a no-op" test_disabled_is_noop;
    Gen.case "monotonic clock" test_clock_monotonic;
    Gen.case "failpoint: disabled no-op" test_failpoint_disabled_noop;
    Gen.case "failpoint: n-countdown" test_failpoint_countdown;
    Gen.case "failpoint: clamp actions" test_failpoint_clamp_actions;
    Gen.case "failpoint: seeded schedule replays" test_failpoint_seeded_schedule;
    Gen.case "failpoint: bad specs rejected atomically" test_failpoint_bad_spec;
    Gen.case "with_enabled restores on raise" test_with_enabled_restores;
    Gen.case "counters accumulate" test_counter_accumulates;
    Gen.case "gauge keeps last write" test_gauge_last_write_wins_in_shard;
    Gen.case "reset clears registry and spans" test_registry_reset_between_cases;
    Gen.case "histogram bucket boundaries" test_histogram_bucket_boundaries;
    Gen.case "histogram default bounds" test_histogram_default_bounds;
    Gen.case "span nesting" test_span_nesting;
    Gen.case "span unwinds on exception" test_span_unwinds_on_exception;
    Gen.case "JSON escaping" test_json_escaping;
    Gen.case "chrome trace golden" test_chrome_trace_golden;
    Gen.case "flame summary nests children" test_flame_summary_nests;
    Gen.case "metrics json shape" test_metrics_json_shape;
  ]
