(* Cross-checks of the separable cost kernel against the [Cost.Naive]
   oracle: byte-identical cost vectors, local optima (including tie order)
   and path costs on random meshes and tori, plus the Problem-level kernel
   switch, cache-sharing and build-counter contracts. *)

let check_int = Alcotest.(check int)

(* Random instance: a mesh or torus of arbitrary small shape plus a trace
   over it. Non-square shapes matter (they catch x/y transpositions);
   extent 1 and 2 exercise the circular prefix sums' edge cases. *)
let instance_gen =
  let open QCheck.Gen in
  int_range 1 4 >>= fun rows ->
  int_range 1 4 >>= fun cols ->
  bool >>= fun wrap ->
  let mesh =
    if wrap then Pim.Mesh.torus ~rows ~cols
    else Pim.Mesh.create ~rows ~cols
  in
  Gen.trace_gen ~mesh ~max_data:4 ~max_windows:4 ~max_count:3 ()
  >>= fun trace -> return (mesh, trace)

let instance_print (mesh, trace) =
  Format.asprintf "%a / %a" Pim.Mesh.pp mesh Reftrace.Trace.pp trace

let instance_arbitrary = QCheck.make ~print:instance_print instance_gen

let for_all_pairs (mesh, trace) f =
  let n = Reftrace.Data_space.size (Reftrace.Trace.space trace) in
  let ok = ref true in
  List.iter
    (fun w ->
      for data = 0 to n - 1 do
        if not (f mesh w ~data) then ok := false
      done)
    (Reftrace.Trace.windows trace);
  !ok

let prop_cost_vectors_equal =
  QCheck.Test.make ~name:"separable cost_vector = Naive cost_vector"
    ~count:200 instance_arbitrary (fun inst ->
      for_all_pairs inst (fun mesh w ~data ->
          Sched.Cost.cost_vector mesh w ~data
          = Sched.Cost.Naive.cost_vector mesh w ~data))

let prop_reference_cost_equals_vector_entry =
  QCheck.Test.make
    ~name:"separable reference_cost = its cost_vector entry, every center"
    ~count:100 instance_arbitrary (fun inst ->
      for_all_pairs inst (fun mesh w ~data ->
          let v = Sched.Cost.Naive.cost_vector mesh w ~data in
          let ok = ref true in
          for center = 0 to Array.length v - 1 do
            if Sched.Cost.reference_cost mesh w ~data ~center <> v.(center)
            then ok := false
          done;
          !ok))

let prop_local_optima_equal =
  QCheck.Test.make
    ~name:"separable local_optimal_center = Naive (same tie order)"
    ~count:200 instance_arbitrary (fun inst ->
      for_all_pairs inst (fun mesh w ~data ->
          Sched.Cost.local_optimal_center mesh w ~data
          = Sched.Cost.Naive.local_optimal_center mesh w ~data))

let prop_path_costs_equal =
  QCheck.Test.make ~name:"separable path_cost = Naive path_cost" ~count:100
    instance_arbitrary (fun (mesh, trace) ->
      let n = Reftrace.Data_space.size (Reftrace.Trace.space trace) in
      let windows = Reftrace.Trace.windows trace in
      let ok = ref true in
      for data = 0 to n - 1 do
        (* two trajectories: the per-window local optima, and all-zero *)
        let optima =
          List.map
            (fun w -> (w, Sched.Cost.Naive.local_optimal_center mesh w ~data))
            windows
        in
        let home = List.map (fun w -> (w, 0)) windows in
        List.iter
          (fun pairs ->
            if
              Sched.Cost.path_cost mesh pairs ~data
              <> Sched.Cost.Naive.path_cost mesh pairs ~data
            then ok := false)
          [ optima; home ]
      done;
      !ok)

let prop_marginals_conserve_mass =
  QCheck.Test.make ~name:"Window.marginals sum to the reference total"
    ~count:100 instance_arbitrary (fun inst ->
      for_all_pairs inst (fun mesh w ~data ->
          let mx, my =
            Reftrace.Window.marginals w ~data ~cols:(Pim.Mesh.cols mesh)
              ~rows:(Pim.Mesh.rows mesh)
          in
          let sum = Array.fold_left ( + ) 0 in
          sum mx = Reftrace.Window.references w data && sum mx = sum my))

(* The kernel switch must be invisible in results: identical cached vectors
   and identical schedules from every algorithm that prices merges or
   trajectories. *)
let prop_problem_kernels_agree =
  QCheck.Test.make ~name:"Problem kernel=naive and separable agree"
    ~count:50 instance_arbitrary (fun (mesh, trace) ->
      let sep = Sched.Problem.create ~kernel:`Separable mesh trace in
      let nai = Sched.Problem.create ~kernel:`Naive mesh trace in
      let n = Sched.Problem.n_data sep in
      let vectors_ok = ref true in
      for data = 0 to n - 1 do
        for w = 0 to Sched.Problem.n_windows sep - 1 do
          if
            Sched.Problem.cost_vector sep ~window:w ~data
            <> Sched.Problem.cost_vector nai ~window:w ~data
          then vectors_ok := false
        done;
        if
          Sched.Problem.merged_vector sep ~data
          <> Sched.Problem.merged_vector nai ~data
        then vectors_ok := false
      done;
      let schedules_ok =
        List.for_all
          (fun algo ->
            Sched.Schedule.equal
              (Sched.Scheduler.solve sep algo)
              (Sched.Scheduler.solve nai algo))
          Sched.Scheduler.
            [ Scds; Lomcds; Gomcds; Lomcds_grouped; Gomcds_grouped ]
      in
      !vectors_ok && schedules_ok)

let prop_problem_kernels_agree_bounded =
  QCheck.Test.make
    ~name:"Problem kernels agree under a bounded capacity policy" ~count:30
    instance_arbitrary (fun (mesh, trace) ->
      let n = Reftrace.Data_space.size (Reftrace.Trace.space trace) in
      let capacity =
        Pim.Memory.capacity_for ~data_count:n ~mesh ~headroom:2
      in
      let policy = Sched.Problem.Bounded capacity in
      let sep = Sched.Problem.create ~policy ~kernel:`Separable mesh trace in
      let nai = Sched.Problem.create ~policy ~kernel:`Naive mesh trace in
      List.for_all
        (fun algo ->
          Sched.Schedule.equal
            (Sched.Scheduler.solve sep algo)
            (Sched.Scheduler.solve nai algo))
        Sched.Scheduler.[ Gomcds; Lomcds_grouped; Gomcds_grouped ])

let prop_problem_path_cost_matches_cost =
  QCheck.Test.make
    ~name:"Problem.path_cost / trajectory_cost = Cost.path_cost" ~count:100
    instance_arbitrary (fun (mesh, trace) ->
      let problem = Sched.Problem.create mesh trace in
      let n = Sched.Problem.n_data problem in
      let windows = Reftrace.Trace.windows trace in
      let ok = ref true in
      for data = 0 to n - 1 do
        let centers =
          List.mapi
            (fun w window ->
              (w, window, Sched.Cost.local_optimal_center mesh window ~data))
            windows
        in
        let by_index = List.map (fun (w, _, c) -> (w, c)) centers in
        let by_window = List.map (fun (_, win, c) -> (win, c)) centers in
        if
          Sched.Problem.path_cost problem ~data by_index
          <> Sched.Cost.path_cost mesh by_window ~data
        then ok := false;
        let traj =
          Array.of_list (List.map (fun (_, _, c) -> c) centers)
        in
        if
          Sched.Problem.trajectory_cost problem ~data traj
          <> Sched.Cost.path_cost mesh by_window ~data
        then ok := false
      done;
      !ok)

(* -------------------------------------------------------------- *)
(* Axis-cost unit cases (hand-checked)                             *)
(* -------------------------------------------------------------- *)

let test_axis_cost_line () =
  Alcotest.(check (array int))
    "E=2" [| 3; 2 |]
    (Sched.Cost.axis_cost ~wrap:false [| 2; 3 |]);
  Alcotest.(check (array int))
    "E=4" [| 11; 7; 7; 7 |]
    (* m = [1;2;0;3]: cost(c) = Σ m(j)·|c-j| *)
    (Sched.Cost.axis_cost ~wrap:false [| 1; 2; 0; 3 |])

let test_axis_cost_circle () =
  Alcotest.(check (array int))
    "E=2 ring" [| 3; 2 |]
    (Sched.Cost.axis_cost ~wrap:true [| 2; 3 |]);
  Alcotest.(check (array int))
    "E=4 ring" [| 1; 3; 3; 1 |]
    (Sched.Cost.axis_cost ~wrap:true [| 1; 0; 0; 1 |]);
  Alcotest.(check (array int))
    "E=3 ring" [| 2; 2; 2 |]
    (* m = [1;1;1]: every center sees the other two points at distance 1 *)
    (Sched.Cost.axis_cost ~wrap:true [| 1; 1; 1 |])

let test_vector_of_marginals_layout () =
  (* 2x3 mesh (rows=2, cols=3), weight at (x=2, y=1) = rank 5 *)
  let v =
    Sched.Cost.vector_of_marginals ~wrap:false ~cols:3 ~rows:2
      ([| 0; 0; 1 |], [| 0; 1 |])
  in
  Alcotest.(check (array int)) "row-major assembly" [| 3; 2; 1; 2; 1; 0 |] v

(* -------------------------------------------------------------- *)
(* Cache-sharing and counter regressions                           *)
(* -------------------------------------------------------------- *)

let shared_trace () =
  Gen.trace Gen.mesh44 ~n_data:2
    [ [ (0, 3, 2); (1, 7, 1) ]; [ (0, 12, 4) ]; [ (1, 0, 1) ] ]

let test_with_policy_and_jobs_share_caches () =
  let problem = Sched.Problem.create Gen.mesh44 (shared_trace ()) in
  (* cost_vector copies out of the shared arena, so physical sharing is
     observed through the candidate-list cache and the slab itself *)
  let l = Sched.Problem.candidates problem ~window:0 ~data:0 in
  let slab = fst (Sched.Problem.layer_slab problem ~data:0) in
  let bounded =
    Sched.Problem.with_policy problem (Sched.Problem.Bounded 2)
  in
  let jobs2 = Sched.Problem.with_jobs problem 2 in
  Alcotest.(check bool)
    "with_policy serves the same cached list" true
    (l == Sched.Problem.candidates bounded ~window:0 ~data:0);
  Alcotest.(check bool)
    "with_policy serves the same arena slab" true
    (slab == fst (Sched.Problem.layer_slab bounded ~data:0));
  Alcotest.(check bool)
    "with_jobs serves the same cached list" true
    (l == Sched.Problem.candidates jobs2 ~window:0 ~data:0);
  Alcotest.(check bool)
    "with_jobs serves the same arena slab" true
    (slab == fst (Sched.Problem.layer_slab jobs2 ~data:0))

let test_with_kernel_rebuilds () =
  let problem = Sched.Problem.create Gen.mesh44 (shared_trace ()) in
  let v = Sched.Problem.cost_vector problem ~window:0 ~data:0 in
  let nai = Sched.Problem.with_kernel problem `Naive in
  let v' = Sched.Problem.cost_vector nai ~window:0 ~data:0 in
  Alcotest.(check bool) "same kernel is a no-op" true
    (problem == Sched.Problem.with_kernel problem `Separable);
  Alcotest.(check bool) "fresh caches across kernels" true (not (v == v'));
  Alcotest.(check (array int)) "identical values across kernels" v v'

let metric name snapshot = Obs.Metrics.counter snapshot name

let test_build_counters () =
  Obs.enabled := true;
  Obs.reset ();
  Fun.protect
    ~finally:(fun () -> Obs.enabled := false)
    (fun () ->
      let trace = shared_trace () in
      let sep = Sched.Problem.create Gen.mesh44 trace in
      Sched.Problem.prefetch_all sep;
      Sched.Problem.prefetch_all sep;
      let snap = Obs.Metrics.snapshot () in
      (* 4 of the 2 data x 3 window pairs carry references; the other two
         keep the arena's zero fill and charge no build. Each is built
         exactly once despite the second prefetch. *)
      check_int "separable builds" 4 (metric "cost.separable_builds" snap);
      check_int "no naive builds" 0 (metric "cost.naive_builds" snap);
      check_int "marginal misses" 4 (metric "problem.marginals_miss" snap);
      check_int "arena bytes"
        (8 * 2 * 3 * 16)
        (metric "problem.arena_bytes" snap);
      Obs.reset ();
      let nai = Sched.Problem.create ~kernel:`Naive Gen.mesh44 trace in
      Sched.Problem.prefetch_all nai;
      let snap = Obs.Metrics.snapshot () in
      check_int "naive builds" 4 (metric "cost.naive_builds" snap);
      check_int "no separable builds" 0
        (metric "cost.separable_builds" snap))

let suite =
  [
    Gen.case "axis cost, line" test_axis_cost_line;
    Gen.case "axis cost, ring" test_axis_cost_circle;
    Gen.case "vector assembly layout" test_vector_of_marginals_layout;
    Gen.case "with_policy/with_jobs share caches"
      test_with_policy_and_jobs_share_caches;
    Gen.case "with_kernel rebuilds caches" test_with_kernel_rebuilds;
    Gen.case "kernel build counters" test_build_counters;
    Gen.to_alcotest prop_cost_vectors_equal;
    Gen.to_alcotest prop_reference_cost_equals_vector_entry;
    Gen.to_alcotest prop_local_optima_equal;
    Gen.to_alcotest prop_path_costs_equal;
    Gen.to_alcotest prop_marginals_conserve_mass;
    Gen.to_alcotest prop_problem_kernels_agree;
    Gen.to_alcotest prop_problem_kernels_agree_bounded;
    Gen.to_alcotest prop_problem_path_cost_matches_cost;
  ]
