let mesh = Gen.mesh44
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_reference_lu_known_factorization () =
  (* [[4;3];[6;3]] = L [[1;0];[1.5;1]] * U [[4;3];[0;-1.5]] *)
  let m = Exec.Distributed_lu.reference_lu [| [| 4.; 3. |]; [| 6.; 3. |] |] in
  Alcotest.(check (float 1e-12)) "l21" 1.5 m.(1).(0);
  Alcotest.(check (float 1e-12)) "u22" (-1.5) m.(1).(1);
  Alcotest.(check (float 1e-12)) "u11" 4. m.(0).(0)

let test_reference_lu_rejects_singular () =
  Alcotest.check_raises "zero pivot"
    (Failure "Distributed_lu.reference_lu: zero pivot") (fun () ->
      ignore
        (Exec.Distributed_lu.reference_lu [| [| 0.; 1. |]; [| 1.; 0. |] |]))

let test_random_matrix_deterministic_and_dominant () =
  let a = Exec.Distributed_lu.random_matrix ~seed:3 8 in
  let b = Exec.Distributed_lu.random_matrix ~seed:3 8 in
  check_bool "deterministic" true (a = b);
  Array.iteri
    (fun i row ->
      let off =
        Array.fold_left ( +. ) 0. row -. row.(i)
      in
      check_bool "diagonally dominant" true (row.(i) > off /. 2.))
    a

let run_with algo n =
  let matrix = Exec.Distributed_lu.random_matrix ~seed:42 n in
  let trace = Workloads.Lu.trace ~n mesh in
  let schedule = Sched.Scheduler.run algo mesh trace in
  Exec.Distributed_lu.run mesh ~matrix schedule

let test_factors_match_reference_under_every_schedule () =
  List.iter
    (fun algo ->
      let r = run_with algo 8 in
      check_bool
        (Sched.Scheduler.name algo ^ ": numerically exact")
        true
        (r.Exec.Distributed_lu.max_error < 1e-9))
    Sched.Scheduler.[ Row_wise; Scds; Lomcds; Gomcds; Lomcds_grouped ]

let test_measured_traffic_equals_analytic () =
  List.iter
    (fun algo ->
      let r = run_with algo 8 in
      check_int
        (Sched.Scheduler.name algo ^ ": traffic = analytic cost")
        r.Exec.Distributed_lu.analytic r.Exec.Distributed_lu.traffic)
    Sched.Scheduler.[ Row_wise; Scds; Lomcds; Gomcds ]

let test_better_schedules_move_less_data () =
  let sf = run_with Sched.Scheduler.Row_wise 12 in
  let g = run_with Sched.Scheduler.Gomcds 12 in
  check_bool "gomcds execution is cheaper" true
    (g.Exec.Distributed_lu.traffic < sf.Exec.Distributed_lu.traffic)

let test_shape_mismatch_rejected () =
  let matrix = Exec.Distributed_lu.random_matrix ~seed:1 8 in
  let wrong =
    Sched.Scheduler.run Sched.Scheduler.Scds mesh (Workloads.Lu.trace ~n:6 mesh)
  in
  Alcotest.check_raises "mismatch"
    (Invalid_argument
       "Distributed_lu.run: schedule does not match the LU trace shape")
    (fun () -> ignore (Exec.Distributed_lu.run mesh ~matrix wrong))

let prop_random_matrices_factor_exactly =
  QCheck.Test.make ~name:"distributed = sequential LU on random instances"
    ~count:25
    QCheck.(pair (int_range 2 10) (int_range 1 10_000))
    (fun (n, seed) ->
      let matrix = Exec.Distributed_lu.random_matrix ~seed n in
      let trace = Workloads.Lu.trace ~n mesh in
      let schedule = Sched.Gomcds.schedule (Sched.Problem.create mesh trace) in
      let r = Exec.Distributed_lu.run mesh ~matrix schedule in
      r.Exec.Distributed_lu.max_error < 1e-9
      && r.Exec.Distributed_lu.traffic = r.Exec.Distributed_lu.analytic)

let suite =
  [
    Gen.case "reference LU known factorization" test_reference_lu_known_factorization;
    Gen.case "reference LU rejects singular" test_reference_lu_rejects_singular;
    Gen.case "random matrix deterministic" test_random_matrix_deterministic_and_dominant;
    Gen.case "factors match under every schedule" test_factors_match_reference_under_every_schedule;
    Gen.case "traffic equals analytic" test_measured_traffic_equals_analytic;
    Gen.case "better schedules move less" test_better_schedules_move_less_data;
    Gen.case "shape mismatch rejected" test_shape_mismatch_rejected;
    Gen.to_alcotest prop_random_matrices_factor_exactly;
  ]
