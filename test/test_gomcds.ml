let check_int = Alcotest.(check int)
let mesh = Gen.mesh44

let test_stays_when_moving_is_dearer () =
  (* weak pull far away in window 1: cheaper to serve remotely than to
     migrate there and back *)
  let t =
    Gen.trace mesh ~n_data:1 [ [ (0, 0, 5) ]; [ (0, 15, 1) ]; [ (0, 0, 5) ] ]
  in
  let s = Sched.Gomcds.schedule (Sched.Problem.create mesh t) in
  Alcotest.(check (list int))
    "stays home" [ 0; 0; 0 ]
    (Array.to_list (Sched.Schedule.centers_of_data s ~data:0))

let test_moves_when_pull_is_strong () =
  let t =
    Gen.trace mesh ~n_data:1 [ [ (0, 0, 1) ]; [ (0, 15, 9) ] ]
  in
  let s = Sched.Gomcds.schedule (Sched.Problem.create mesh t) in
  check_int "migrates" 15 (Sched.Schedule.center s ~window:1 ~data:0)

let test_optimal_centers_cost_matches_schedule () =
  let t =
    Gen.trace mesh ~n_data:1 [ [ (0, 3, 2) ]; [ (0, 12, 4) ]; [ (0, 7, 1) ] ]
  in
  let cost, centers = Sched.Gomcds.optimal_centers mesh t ~data:0 in
  let pairs =
    List.mapi
      (fun w window -> (window, centers.(w)))
      (Reftrace.Trace.windows t)
  in
  check_int "DP cost = evaluated path cost" cost
    (Sched.Cost.path_cost mesh pairs ~data:0)

let test_example_beats_lomcds_and_scds () =
  let scds = Sched.Example.scds ()
  and lomcds = Sched.Example.lomcds ()
  and gomcds = Sched.Example.gomcds () in
  Alcotest.(check bool)
    "gomcds <= lomcds" true
    (gomcds.Sched.Example.total <= lomcds.Sched.Example.total);
  Alcotest.(check bool)
    "gomcds <= scds" true
    (gomcds.Sched.Example.total <= scds.Sched.Example.total)

let test_capacity_infeasible_rejected () =
  let t = Gen.trace mesh ~n_data:33 [ [ (0, 0, 1) ] ] in
  Alcotest.check_raises "too small"
    (Invalid_argument
       "Gomcds.schedule: 33 data cannot fit in 16 processors of capacity 2")
    (fun () -> ignore (Sched.Gomcds.schedule (Sched.Problem.of_capacity ~capacity:2 mesh t)))

let prop_matches_brute_force =
  let arb =
    Gen.trace_arbitrary ~mesh:Gen.mesh22 ~max_data:3 ~max_windows:4
      ~max_count:4 ()
  in
  QCheck.Test.make ~name:"GOMCDS = brute-force optimum (2x2 mesh)" ~count:100
    arb (fun t ->
      let n = Reftrace.Data_space.size (Reftrace.Trace.space t) in
      let ok = ref true in
      for data = 0 to n - 1 do
        let dp_cost, _ = Sched.Gomcds.optimal_centers Gen.mesh22 t ~data in
        let bf_cost, _ = Sched.Brute_force.optimal_cost Gen.mesh22 t ~data in
        if dp_cost <> bf_cost then ok := false
      done;
      !ok)

let prop_dominates_lomcds_and_scds =
  let arb = Gen.trace_arbitrary ~max_data:5 ~max_windows:5 ~max_count:4 () in
  QCheck.Test.make
    ~name:"unbounded GOMCDS <= LOMCDS and SCDS total cost" ~count:100 arb
    (fun t ->
      let total algo = Sched.Schedule.total_cost (algo mesh t) t in
      let g = total (fun m t -> Sched.Gomcds.schedule (Sched.Problem.create m t)) in
      g <= total (fun m t -> Sched.Lomcds.schedule (Sched.Problem.create m t))
      && g <= total (fun m t -> Sched.Scds.schedule (Sched.Problem.create m t)))

let prop_dp_equals_explicit_cost_graph =
  let arb = Gen.trace_arbitrary ~max_data:2 ~max_windows:4 ~max_count:4 () in
  QCheck.Test.make
    ~name:"GOMCDS DP = shortest path on the paper's explicit cost-graph"
    ~count:50 arb (fun t ->
      let n = Reftrace.Data_space.size (Reftrace.Trace.space t) in
      let ok = ref true in
      for data = 0 to n - 1 do
        let dp_cost, _ = Sched.Gomcds.optimal_centers mesh t ~data in
        let g, source, sink, _ = Sched.Gomcds.cost_graph mesh t ~data in
        let r = Pathgraph.Shortest_path.dag g ~source in
        if Pathgraph.Shortest_path.distance r ~target:sink <> Some dp_cost
        then ok := false
      done;
      !ok)

let prop_capacity_never_violated =
  let arb = Gen.trace_arbitrary ~max_data:16 ~max_windows:5 ~max_count:4 () in
  QCheck.Test.make ~name:"GOMCDS respects capacity" ~count:100 arb (fun t ->
      let n = Reftrace.Data_space.size (Reftrace.Trace.space t) in
      let capacity = Pim.Memory.capacity_for ~data_count:n ~mesh ~headroom:2 in
      let s = Sched.Gomcds.schedule (Sched.Problem.of_capacity ~capacity mesh t) in
      Option.is_none (Sched.Schedule.check_capacity s ~capacity))

let suite =
  [
    Gen.case "stays when moving is dearer" test_stays_when_moving_is_dearer;
    Gen.case "moves when pull is strong" test_moves_when_pull_is_strong;
    Gen.case "DP cost matches evaluated cost"
      test_optimal_centers_cost_matches_schedule;
    Gen.case "worked example dominance" test_example_beats_lomcds_and_scds;
    Gen.case "capacity infeasible rejected" test_capacity_infeasible_rejected;
    Gen.to_alcotest prop_matches_brute_force;
    Gen.to_alcotest prop_dominates_lomcds_and_scds;
    Gen.to_alcotest prop_dp_equals_explicit_cost_graph;
    Gen.to_alcotest prop_capacity_never_violated;
  ]
