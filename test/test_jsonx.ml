(* The strict Jsonx parser: unit goldens, typed-error offsets, and QCheck
   roundtrips against the Jsonx printer. *)

let json =
  Alcotest.testable
    (fun ppf v -> Format.pp_print_string ppf (Obs.Json.to_string v))
    ( = )

let parse_ok name src expected =
  match Obs.Json.parse src with
  | Ok v -> Alcotest.check json name expected v
  | Error e ->
      Alcotest.failf "%s: parse failed: %s" name
        (Obs.Json.error_to_string e)

let parse_err name src expected_offset =
  match Obs.Json.parse src with
  | Ok v ->
      Alcotest.failf "%s: expected failure, parsed %s" name
        (Obs.Json.to_string v)
  | Error e ->
      Alcotest.(check int) (name ^ ": error offset") expected_offset e.offset

let test_scalars () =
  let open Obs.Json in
  parse_ok "null" "null" Null;
  parse_ok "true" "true" (Bool true);
  parse_ok "false" "false" (Bool false);
  parse_ok "int" "42" (Int 42);
  parse_ok "negative int" "-7" (Int (-7));
  parse_ok "zero" "0" (Int 0);
  parse_ok "float" "1.5" (Float 1.5);
  parse_ok "exponent" "2e3" (Float 2000.);
  parse_ok "negative exponent" "25e-1" (Float 2.5);
  parse_ok "string" {|"hello"|} (String "hello");
  parse_ok "surrounding whitespace" "  17 \n" (Int 17)

let test_containers () =
  let open Obs.Json in
  parse_ok "empty list" "[]" (List []);
  parse_ok "empty obj" "{}" (Obj []);
  parse_ok "list" "[1,2,3]" (List [ Int 1; Int 2; Int 3 ]);
  parse_ok "nested" {|{"a":[true,null],"b":{"c":-1}}|}
    (Obj
       [
         ("a", List [ Bool true; Null ]);
         ("b", Obj [ ("c", Int (-1)) ]);
       ]);
  parse_ok "whitespace everywhere" "{ \"a\" : [ 1 , 2 ] }"
    (Obj [ ("a", List [ Int 1; Int 2 ]) ])

let test_string_escapes () =
  let open Obs.Json in
  parse_ok "escapes" {|"a\"b\\c\/d\ne\tf"|} (String "a\"b\\c/d\ne\tf");
  parse_ok "unicode escape" {|"A"|} (String "A");
  parse_ok "two-byte utf8" {|"é"|} (String "\xc3\xa9");
  parse_ok "three-byte utf8" {|"€"|} (String "\xe2\x82\xac");
  parse_ok "surrogate pair" {|"😀"|} (String "\xf0\x9f\x98\x80")

let test_errors () =
  parse_err "empty input" "" 0;
  parse_err "bare word" "nope" 0;
  parse_err "trailing garbage" "1 x" 2;
  parse_err "trailing comma in list" "[1,]" 3;
  parse_err "trailing comma in obj" {|{"a":1,}|} 7;
  parse_err "unquoted key" "{a:1}" 1;
  parse_err "missing colon" {|{"a" 1}|} 5;
  parse_err "unterminated string" {|"abc|} 4;
  parse_err "control char in string" "\"a\nb\"" 2;
  parse_err "leading plus" "+1" 0;
  parse_err "lone dot" "1." 2;
  parse_err "bad escape" {|"\q"|} 2;
  parse_err "unpaired high surrogate" {|"\ud83d"|} 7;
  parse_err "nan is not json" "nan" 0

let test_int_overflow_becomes_float () =
  (* 19 nines does not fit a 63-bit int; the parser keeps the value *)
  match Obs.Json.parse "9999999999999999999" with
  | Ok (Obs.Json.Float f) ->
      Alcotest.(check bool) "close" true (Float.abs (f -. 1e19) < 1e5)
  | Ok v -> Alcotest.failf "expected Float, got %s" (Obs.Json.to_string v)
  | Error e -> Alcotest.failf "parse failed: %s" (Obs.Json.error_to_string e)

(* Generator for trees the printer emits losslessly: no floats (printing
   [Float 3.] yields ["3"], which correctly reparses as [Int 3]) and no
   bytes >= 0x80 in strings (the printer passes raw bytes through; escape
   decoding only produces valid UTF-8, so arbitrary bytes are out of
   scope for exact equality). *)
let exact_tree_gen =
  let open QCheck.Gen in
  let key = string_size ~gen:(char_range 'a' 'z') (int_range 0 6) in
  let str = string_size ~gen:(char_range '\000' '\127') (int_range 0 12) in
  let scalar =
    oneof
      [
        return Obs.Json.Null;
        map (fun b -> Obs.Json.Bool b) bool;
        map (fun i -> Obs.Json.Int i) small_signed_int;
        map (fun s -> Obs.Json.String s) str;
      ]
  in
  fix
    (fun self depth ->
      if depth = 0 then scalar
      else
        frequency
          [
            (3, scalar);
            ( 1,
              map
                (fun l -> Obs.Json.List l)
                (list_size (int_range 0 4) (self (depth - 1))) );
            ( 1,
              map
                (fun fields -> Obs.Json.Obj fields)
                (list_size (int_range 0 4)
                   (pair key (self (depth - 1)))) );
          ])
    3

let tree_print v = Obs.Json.to_string v

(* Emitted floats can lose precision ("0.0000001" prints as "0.000000",
   which re-parses as zero and re-prints as "0"), so print ∘ parse is not
   the identity on raw printer output — but it must converge: after one
   parse/print normalization round, another round is byte-stable. *)
let float_tree_gen =
  let open QCheck.Gen in
  let anyfloat =
    oneof [ float; return Float.nan; return Float.infinity; return 3.0 ]
  in
  map2
    (fun f rest -> Obs.Json.List (Obs.Json.Float f :: rest))
    anyfloat
    (list_size (int_range 0 3) (map (fun f -> Obs.Json.Float f) float))

let roundtrip_exact =
  QCheck.Test.make ~name:"parse (to_string v) = v (float-free trees)"
    ~count:500
    (QCheck.make ~print:tree_print exact_tree_gen)
    (fun v ->
      match Obs.Json.parse (Obs.Json.to_string v) with
      | Ok v' -> v' = v
      | Error _ -> false)

let roundtrip_print_stable =
  QCheck.Test.make
    ~name:"print/parse converges in one round (float trees)" ~count:500
    (QCheck.make ~print:tree_print float_tree_gen)
    (fun v ->
      match Obs.Json.parse (Obs.Json.to_string v) with
      | Error _ -> false
      | Ok v1 -> (
          let s1 = Obs.Json.to_string v1 in
          match Obs.Json.parse s1 with
          | Error _ -> false
          | Ok v2 -> Obs.Json.to_string v2 = s1))

let suite =
  [
    Gen.case "scalars" test_scalars;
    Gen.case "containers" test_containers;
    Gen.case "string escapes" test_string_escapes;
    Gen.case "typed errors with offsets" test_errors;
    Gen.case "int overflow becomes float" test_int_overflow_becomes_float;
    Gen.to_alcotest roundtrip_exact;
    Gen.to_alcotest roundtrip_print_stable;
  ]
