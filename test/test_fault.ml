(* Fault model, fault-aware routing/costs and reschedule-on-failure.

   Four pillars:
   - the BFS oracle is pinned to the closed-form mesh geometry on healthy
     arrays and to hand-checked detours on degraded ones, with
     disconnection surfacing as the typed [Fault.Unreachable];
   - simulator-vs-analytic identity on faulty meshes AND tori: the
     measured rerouted cost of every message equals volume times the
     fault-aware BFS distance;
   - zero overhead: every scheduler under [Fault.none] is byte-identical
     to the fault-oblivious path, serial and at jobs = 4, mesh and torus
     (the suite honours PIMSCHED_TEST_KERNEL=naive, so CI covers both
     cost kernels);
   - degradation: dead processors never host data, rescheduling never
     loses to riding out the repaired plan, and the paid cost collapses
     to the analytic cost on healthy runs. *)

let kernel =
  match Sys.getenv_opt "PIMSCHED_TEST_KERNEL" with
  | Some "naive" -> `Naive
  | _ -> `Separable

let mesh44 = Gen.mesh44
let torus35 = Pim.Mesh.torus ~rows:3 ~cols:5
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Fault.t construction and seeded injection                           *)
(* ------------------------------------------------------------------ *)

let test_create_normalizes () =
  let f =
    Pim.Fault.create ~dead_nodes:[ 3; 1; 3 ]
      ~dead_links:[ (5, 4); (4, 5); (1, 2) ]
      ()
  in
  Alcotest.(check (list int)) "nodes sorted, deduped" [ 1; 3 ]
    (Pim.Fault.dead_nodes f);
  Alcotest.(check (list (pair int int)))
    "links canonical (lo, hi), deduped"
    [ (1, 2); (4, 5) ]
    (Pim.Fault.dead_links f);
  check_bool "none is none" true Pim.Fault.(is_none none);
  check_bool "non-empty is not none" false (Pim.Fault.is_none f)

let test_inject_deterministic () =
  let f1 = Pim.Fault.inject ~seed:7 ~node_rate:0.3 ~link_rate:0.2 mesh44 in
  let f2 = Pim.Fault.inject ~seed:7 ~node_rate:0.3 ~link_rate:0.2 mesh44 in
  Alcotest.(check (list int))
    "same seed, same nodes" (Pim.Fault.dead_nodes f1)
    (Pim.Fault.dead_nodes f2);
  Alcotest.(check (list (pair int int)))
    "same seed, same links" (Pim.Fault.dead_links f1)
    (Pim.Fault.dead_links f2)

let subset xs ys = List.for_all (fun x -> List.mem x ys) xs

let prop_inject_monotone =
  QCheck.Test.make ~name:"inject: dead sets grow monotonically with rate"
    ~count:50
    QCheck.(triple small_nat (float_range 0. 1.) (float_range 0. 1.))
    (fun (seed, r1, r2) ->
      let lo = Float.min r1 r2 and hi = Float.max r1 r2 in
      let f_lo = Pim.Fault.inject ~seed ~node_rate:lo ~link_rate:lo mesh44 in
      let f_hi = Pim.Fault.inject ~seed ~node_rate:hi ~link_rate:hi mesh44 in
      subset (Pim.Fault.dead_nodes f_lo) (Pim.Fault.dead_nodes f_hi)
      && subset (Pim.Fault.dead_links f_lo) (Pim.Fault.dead_links f_hi))

let test_inject_never_kills_all () =
  let f = Pim.Fault.inject ~seed:3 ~node_rate:1.0 ~link_rate:0.0 mesh44 in
  check_int "one survivor at rate 1" 1 (Pim.Fault.alive_count f mesh44)

let test_inject_validates_rates () =
  List.iter
    (fun (node_rate, link_rate) ->
      check_bool "bad rate rejected" true
        (try
           ignore (Pim.Fault.inject ~seed:0 ~node_rate ~link_rate mesh44);
           false
         with Invalid_argument _ -> true))
    [ (-0.1, 0.0); (1.5, 0.0); (0.0, -1.0); (0.0, 2.0) ]

let test_validate_rejects_foreign () =
  let bad_node = Pim.Fault.create ~dead_nodes:[ 16 ] () in
  let bad_link = Pim.Fault.create ~dead_links:[ (0, 5) ] () in
  check_bool "rank outside mesh" true
    (try
       Pim.Fault.validate bad_node mesh44;
       false
     with Invalid_argument _ -> true);
  check_bool "non-adjacent link" true
    (try
       Pim.Fault.validate bad_link mesh44;
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* BFS oracle: healthy identity, detours, disconnection                *)
(* ------------------------------------------------------------------ *)

let test_oracle_healthy_identity () =
  List.iter
    (fun mesh ->
      let o = Pim.Fault.Oracle.create mesh Pim.Fault.none in
      let m = Pim.Mesh.size mesh in
      for src = 0 to m - 1 do
        for dst = 0 to m - 1 do
          check_int "distance = Mesh.distance"
            (Pim.Mesh.distance mesh src dst)
            (Pim.Fault.Oracle.distance_exn o ~src ~dst);
          Alcotest.(check (list int))
            "route = xy route"
            (Pim.Mesh.xy_route mesh ~src ~dst)
            (Option.get (Pim.Fault.Oracle.route o ~src ~dst))
        done
      done)
    [ mesh44; torus35 ]

let test_oracle_detour () =
  (* 2x2 mesh: ranks 0 1 / 2 3. Killing link 0-1 forces 0 -> 2 -> 3 -> 1. *)
  let mesh = Pim.Mesh.square 2 in
  let f = Pim.Fault.create ~dead_links:[ (0, 1) ] () in
  let o = Pim.Fault.Oracle.create mesh f in
  check_int "detour distance" 3 (Pim.Fault.Oracle.distance_exn o ~src:0 ~dst:1);
  Alcotest.(check (list int))
    "detour route" [ 0; 2; 3; 1 ]
    (Option.get (Pim.Fault.Oracle.route o ~src:0 ~dst:1));
  (* the unaffected pair keeps its healthy geometry *)
  check_int "other pairs untouched" 1
    (Pim.Fault.Oracle.distance_exn o ~src:2 ~dst:3)

let isolated_corner_fault = Pim.Fault.create ~dead_links:[ (0, 1); (0, 2) ] ()

let test_oracle_disconnected () =
  (* cutting both of rank 0's links on a 2x2 mesh isolates it *)
  let mesh = Pim.Mesh.square 2 in
  let o = Pim.Fault.Oracle.create mesh isolated_corner_fault in
  Alcotest.(check (option int))
    "no path" None
    (Pim.Fault.Oracle.distance o ~src:3 ~dst:0);
  Alcotest.check_raises "typed error, not a hang"
    (Pim.Fault.Unreachable (3, 0)) (fun () ->
      ignore (Pim.Fault.Oracle.distance_exn o ~src:3 ~dst:0))

let test_simulator_disconnected_is_typed_error () =
  let mesh = Pim.Mesh.square 2 in
  let rounds =
    [
      {
        Pim.Simulator.migrations = [];
        references = [ Pim.Router.message ~src:3 ~dst:0 ~volume:2 ];
      };
    ]
  in
  Alcotest.check_raises "simulator surfaces Unreachable"
    (Pim.Fault.Unreachable (3, 0)) (fun () ->
      ignore (Pim.Simulator.run ~fault:isolated_corner_fault mesh rounds))

(* ------------------------------------------------------------------ *)
(* Simulator-vs-analytic identity on faulty arrays                     *)
(* ------------------------------------------------------------------ *)

(* Connected degradations: a dead node (router survives) plus dead links
   that reroute but never disconnect. *)
let faulty_cases =
  [
    ("mesh", mesh44, Pim.Fault.create ~dead_nodes:[ 10 ] ~dead_links:[ (0, 1); (5, 6) ] ());
    ("torus", torus35, Pim.Fault.create ~dead_nodes:[ 7 ] ~dead_links:[ (0, 1); (0, 5); (11, 12) ] ());
  ]

let analytic_cost mesh fault rounds =
  let o = Pim.Fault.Oracle.create mesh fault in
  List.fold_left
    (fun acc { Pim.Simulator.migrations; references } ->
      List.fold_left
        (fun acc { Pim.Router.src; dst; volume } ->
          acc + (volume * Pim.Fault.Oracle.distance_exn o ~src ~dst))
        acc
        (migrations @ references))
    0 rounds

let prop_simulator_matches_analytic (label, mesh, fault) =
  let arb = Gen.trace_arbitrary ~mesh ~max_data:6 ~max_windows:4 ~max_count:3 () in
  QCheck.Test.make
    ~name:("simulator cost = volume · BFS distance, faulty " ^ label)
    ~count:30 arb
    (fun trace ->
      let problem = Sched.Problem.create ~kernel ~fault mesh trace in
      let schedule = Sched.Scheduler.solve problem Sched.Scheduler.Gomcds in
      let rounds = Sched.Schedule.to_rounds schedule trace in
      let report = Pim.Simulator.run ~fault mesh rounds in
      report.Pim.Simulator.total_cost = analytic_cost mesh fault rounds)

(* On those same degraded arrays the scheduler's own analytic total (the
   arena is downgraded to BFS distances) must equal the simulator's
   measured cost: plan and execution agree about the degraded geometry. *)
let prop_problem_cost_matches_simulator (label, mesh, fault) =
  let arb = Gen.trace_arbitrary ~mesh ~max_data:5 ~max_windows:3 ~max_count:3 () in
  QCheck.Test.make
    ~name:("analytic schedule cost = measured cost, faulty " ^ label)
    ~count:20 arb
    (fun trace ->
      let problem = Sched.Problem.create ~kernel ~fault mesh trace in
      let schedule = Sched.Scheduler.solve problem Sched.Scheduler.Gomcds in
      let space = Reftrace.Trace.space trace in
      let analytic = ref 0 in
      for d = 0 to Sched.Schedule.n_data schedule - 1 do
        analytic :=
          !analytic
          + Reftrace.Data_space.volume_of space d
            * Sched.Problem.trajectory_cost problem ~data:d
                (Sched.Schedule.centers_of_data schedule ~data:d)
      done;
      let report =
        Pim.Simulator.run ~fault mesh (Sched.Schedule.to_rounds schedule trace)
      in
      report.Pim.Simulator.total_cost = !analytic)

(* ------------------------------------------------------------------ *)
(* Zero overhead: Fault.none is byte-identical, all schedulers         *)
(* ------------------------------------------------------------------ *)

let all_algorithms =
  Sched.Scheduler.all @ [ Sched.Scheduler.Annealing 123; Sched.Scheduler.Online 0.5 ]

let prop_fault_none_zero_overhead (label, mesh) =
  let arb = Gen.trace_arbitrary ~mesh ~max_data:5 ~max_windows:3 ~max_count:3 () in
  QCheck.Test.make
    ~name:("Fault.none schedules byte-identical, " ^ label)
    ~count:15 arb
    (fun trace ->
      List.for_all
        (fun jobs ->
          let plain = Sched.Problem.create ~jobs ~kernel mesh trace in
          let with_none =
            Sched.Problem.create ~jobs ~kernel ~fault:Pim.Fault.none mesh trace
          in
          List.for_all
            (fun algorithm ->
              Sched.Schedule.equal
                (Sched.Scheduler.solve plain algorithm)
                (Sched.Scheduler.solve with_none algorithm))
            all_algorithms)
        [ 1; 4 ])

let test_simulator_fault_none_identical () =
  let trace =
    Gen.trace mesh44 ~n_data:4
      [ [ (0, 3, 2); (1, 7, 1) ]; [ (2, 9, 3); (3, 0, 1); (0, 15, 2) ] ]
  in
  let problem = Sched.Problem.create ~kernel mesh44 trace in
  let schedule = Sched.Scheduler.solve problem Sched.Scheduler.Gomcds in
  let rounds = Sched.Schedule.to_rounds schedule trace in
  let plain = Pim.Simulator.run mesh44 rounds in
  let with_none = Pim.Simulator.run ~fault:Pim.Fault.none mesh44 rounds in
  check_int "same measured total" plain.Pim.Simulator.total_cost
    with_none.Pim.Simulator.total_cost;
  check_int "same message count"
    (List.length plain.Pim.Simulator.rounds)
    (List.length with_none.Pim.Simulator.rounds)

(* ------------------------------------------------------------------ *)
(* Dead processors never host data                                     *)
(* ------------------------------------------------------------------ *)

(* The paper algorithms and their refinements; static baselines are
   fault-oblivious by design (fixed decompositions), and Annealing only
   guarantees it never *moves* data onto a dead rank. *)
let center_choosing =
  Sched.Scheduler.
    [ Scds; Lomcds; Gomcds; Lomcds_grouped; Gomcds_grouped; Gomcds_refined; Best_refined ]

let prop_dead_nodes_excluded =
  let arb = Gen.trace_arbitrary ~mesh:mesh44 ~max_data:5 ~max_windows:3 ~max_count:3 () in
  QCheck.Test.make ~name:"no schedule places data on a dead rank" ~count:20
    arb
    (fun trace ->
      let fault = Pim.Fault.create ~dead_nodes:[ 0; 6; 11 ] () in
      let problem = Sched.Problem.create ~kernel ~fault mesh44 trace in
      List.for_all
        (fun algorithm ->
          let s = Sched.Scheduler.solve problem algorithm in
          let ok = ref true in
          for w = 0 to Sched.Schedule.n_windows s - 1 do
            for d = 0 to Sched.Schedule.n_data s - 1 do
              if not (Sched.Problem.rank_alive problem (Sched.Schedule.center s ~window:w ~data:d))
              then ok := false
            done
          done;
          !ok)
        center_choosing)

let test_candidates_exclude_dead () =
  let trace = Gen.trace mesh44 ~n_data:1 [ [ (0, 6, 4); (0, 5, 1) ] ] in
  let fault = Pim.Fault.create ~dead_nodes:[ 6 ] () in
  let problem = Sched.Problem.create ~kernel ~fault mesh44 trace in
  check_bool "optimal center alive" true
    (Sched.Problem.rank_alive problem
       (Sched.Problem.optimal_center problem ~window:0 ~data:0));
  check_bool "candidate list alive" true
    (List.for_all
       (Sched.Problem.rank_alive problem)
       (Sched.Problem.candidates problem ~window:0 ~data:0));
  check_bool "killing every rank is rejected" true
    (try
       ignore
         (Sched.Problem.create ~kernel
            ~fault:(Pim.Fault.create ~dead_nodes:(List.init 16 Fun.id) ())
            mesh44 trace);
       false
     with Invalid_argument _ -> true)

let test_link_fault_downgrades_distance () =
  let trace = Gen.trace mesh44 ~n_data:2 [ [ (0, 1, 2); (1, 14, 1) ] ] in
  let fault = Pim.Fault.create ~dead_links:[ (0, 1) ] () in
  let problem = Sched.Problem.create ~kernel ~fault mesh44 trace in
  let o = Pim.Fault.Oracle.create mesh44 fault in
  for src = 0 to 15 do
    for dst = 0 to 15 do
      check_int "Problem.distance = BFS distance"
        (Pim.Fault.Oracle.distance_exn o ~src ~dst)
        (Sched.Problem.distance problem src dst)
    done
  done

(* ------------------------------------------------------------------ *)
(* Reschedule-on-failure                                               *)
(* ------------------------------------------------------------------ *)

let test_resilience_healthy_identity () =
  let trace =
    Gen.trace mesh44 ~n_data:4
      [ [ (0, 3, 2); (1, 7, 1) ]; [ (2, 9, 3); (0, 12, 2) ]; [ (3, 1, 1) ] ]
  in
  let problem = Sched.Problem.create ~kernel mesh44 trace in
  let r = Sched.Resilience.run problem Sched.Scheduler.Gomcds in
  check_int "paid = planned on a healthy run" r.Sched.Resilience.planned_cost
    r.Sched.Resilience.paid_cost;
  check_int "nothing evicted" 0 r.Sched.Resilience.evicted;
  check_int "nothing undeliverable" 0 r.Sched.Resilience.undeliverable

let prop_reschedule_never_loses =
  let arb = Gen.trace_arbitrary ~mesh:mesh44 ~max_data:6 ~max_windows:4 ~max_count:3 () in
  QCheck.Test.make
    ~name:"rescheduling never loses to riding out the repaired plan"
    ~count:25
    QCheck.(pair arb (int_range 0 1000))
    (fun (trace, seed) ->
      let problem = Sched.Problem.create ~kernel mesh44 trace in
      let fault =
        Pim.Fault.inject ~seed ~node_rate:0.25 ~link_rate:0.1 mesh44
      in
      let window = Reftrace.Trace.n_windows trace / 2 in
      let events = [ { Sched.Resilience.window; fault } ] in
      let re =
        Sched.Resilience.run ~reschedule:true ~events problem
          Sched.Scheduler.Gomcds
      in
      let keep =
        Sched.Resilience.run ~reschedule:false ~events problem
          Sched.Scheduler.Gomcds
      in
      (* "Never loses" is a theorem about the merge's pricing metric,
         which charges unreachable traffic [Problem.unreachable_cost];
         [paid_cost] charges undeliverable messages nothing, and a
         stranded datum stays put in execution while pricing assumes it
         moved. When neither run strands anything the two walks coincide
         and the executed costs inherit the per-datum merge guarantee;
         when traffic is stranded the paid costs are not comparable (a
         re-solve that delivers strictly more pays for those extra
         deliveries), so only the shared plan is asserted. *)
      re.Sched.Resilience.planned_cost = keep.Sched.Resilience.planned_cost
      && (re.Sched.Resilience.undeliverable > 0
         || keep.Sched.Resilience.undeliverable > 0
         || re.Sched.Resilience.paid_cost <= keep.Sched.Resilience.paid_cost))

let test_resilience_eviction_charged () =
  (* datum 0 lives at its sole referencer, rank 5; killing 5 after window
     0 must evict it and pay for the move *)
  let trace =
    Gen.trace mesh44 ~n_data:1 [ [ (0, 5, 3) ]; [ (0, 5, 2) ] ]
  in
  let problem = Sched.Problem.create ~kernel mesh44 trace in
  let events =
    [ { Sched.Resilience.window = 1; fault = Pim.Fault.create ~dead_nodes:[ 5 ] () } ]
  in
  let r = Sched.Resilience.run ~events problem Sched.Scheduler.Gomcds in
  check_int "one eviction" 1 r.Sched.Resilience.evicted;
  check_bool "eviction cost charged" true (r.Sched.Resilience.evicted_cost > 0);
  check_bool "failure costs something" true
    (r.Sched.Resilience.paid_cost > r.Sched.Resilience.planned_cost);
  check_bool "window-1 references remapped" true
    (r.Sched.Resilience.remapped_refs > 0)

let test_resilience_validates_events () =
  let trace = Gen.trace mesh44 ~n_data:1 [ [ (0, 0, 1) ] ] in
  let problem = Sched.Problem.create ~kernel mesh44 trace in
  check_bool "out-of-range window rejected" true
    (try
       ignore
         (Sched.Resilience.run
            ~events:[ { Sched.Resilience.window = 9; fault = Pim.Fault.none } ]
            problem Sched.Scheduler.Gomcds);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Fault-aware Link_stats                                              *)
(* ------------------------------------------------------------------ *)

let test_link_stats_rejects_dead_link () =
  let fault = Pim.Fault.create ~dead_links:[ (0, 1) ] () in
  let stats = Pim.Link_stats.create ~fault mesh44 in
  Alcotest.check_raises "dead link refuses traffic"
    (Invalid_argument "Link_stats.record: link 0 -> 1 is dead") (fun () ->
      Pim.Link_stats.record stats ~src:0 ~dst:1 ~volume:1);
  (* healthy links still record *)
  Pim.Link_stats.record stats ~src:1 ~dst:2 ~volume:3

let suite =
  [
    Gen.case "create normalizes" test_create_normalizes;
    Gen.case "inject is deterministic" test_inject_deterministic;
    Gen.to_alcotest prop_inject_monotone;
    Gen.case "inject never kills all" test_inject_never_kills_all;
    Gen.case "inject validates rates" test_inject_validates_rates;
    Gen.case "validate rejects foreign faults" test_validate_rejects_foreign;
    Gen.case "oracle healthy identity" test_oracle_healthy_identity;
    Gen.case "oracle detours around dead links" test_oracle_detour;
    Gen.case "oracle reports disconnection" test_oracle_disconnected;
    Gen.case "simulator raises typed Unreachable"
      test_simulator_disconnected_is_typed_error;
    Gen.to_alcotest (prop_simulator_matches_analytic (List.nth faulty_cases 0));
    Gen.to_alcotest (prop_simulator_matches_analytic (List.nth faulty_cases 1));
    Gen.to_alcotest
      (prop_problem_cost_matches_simulator (List.nth faulty_cases 0));
    Gen.to_alcotest
      (prop_problem_cost_matches_simulator (List.nth faulty_cases 1));
    Gen.to_alcotest (prop_fault_none_zero_overhead ("mesh", mesh44));
    Gen.to_alcotest (prop_fault_none_zero_overhead ("torus", torus35));
    Gen.case "simulator Fault.none identical" test_simulator_fault_none_identical;
    Gen.to_alcotest prop_dead_nodes_excluded;
    Gen.case "candidates exclude dead ranks" test_candidates_exclude_dead;
    Gen.case "link faults downgrade distances" test_link_fault_downgrades_distance;
    Gen.case "resilience healthy identity" test_resilience_healthy_identity;
    Gen.to_alcotest prop_reschedule_never_loses;
    Gen.case "eviction is charged" test_resilience_eviction_charged;
    Gen.case "resilience validates events" test_resilience_validates_events;
    Gen.case "link stats reject dead links" test_link_stats_rejects_dead_link;
  ]
