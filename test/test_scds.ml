let check_int = Alcotest.(check int)
let mesh = Gen.mesh44

let test_static () =
  let t = Gen.trace mesh ~n_data:2 [ [ (0, 5, 1) ]; [ (0, 9, 1) ] ] in
  let s = Sched.Scds.schedule (Sched.Problem.create mesh t) in
  check_int "never moves" 0 (Sched.Schedule.moves s)

let test_picks_merged_optimum () =
  (* datum 0: rank 5 three times in w0, rank 6 once in w1 -> rank 5 wins
     overall *)
  let t = Gen.trace mesh ~n_data:1 [ [ (0, 5, 3) ]; [ (0, 6, 1) ] ] in
  check_int "merged center" 5 (Sched.Scds.center_of (Sched.Problem.create mesh t) ~data:0)

let test_capacity_spills_to_next_best () =
  (* two data both want rank 5; capacity 1 forces the lighter one away *)
  let t = Gen.trace mesh ~n_data:2 [ [ (0, 5, 3); (1, 5, 2) ] ] in
  let s = Sched.Scds.schedule (Sched.Problem.of_capacity ~capacity:1 mesh t) in
  check_int "heavy datum keeps the center" 5
    (Sched.Schedule.center s ~window:0 ~data:0);
  let spilled = Sched.Schedule.center s ~window:0 ~data:1 in
  Alcotest.(check bool) "lighter datum adjacent" true
    (Pim.Mesh.distance mesh 5 spilled = 1);
  Alcotest.(check (option (triple int int int)))
    "capacity respected" None
    (Sched.Schedule.check_capacity s ~capacity:1)

let test_infeasible_capacity_rejected () =
  let t = Gen.trace mesh ~n_data:20 [ [ (0, 0, 1) ] ] in
  Alcotest.check_raises "too small"
    (Invalid_argument
       "Scds.schedule: 20 data cannot fit in 16 processors of capacity 1")
    (fun () -> ignore (Sched.Scds.schedule (Sched.Problem.of_capacity ~capacity:1 mesh t)))

let test_example_matches_paper_structure () =
  (* On the worked example, SCDS picks the overall hot spot (1,0). *)
  let o = Sched.Example.scds () in
  Alcotest.(check bool)
    "static at (1,0)" true
    (Array.for_all
       (fun c -> Pim.Coord.equal c (Pim.Coord.make ~x:1 ~y:0))
       o.Sched.Example.centers)

let prop_unconstrained_scds_is_best_static =
  let arb = Gen.trace_arbitrary ~max_data:4 ~max_windows:4 ~max_count:4 () in
  QCheck.Test.make ~name:"SCDS matches brute-force best static placement"
    ~count:100 arb (fun t ->
      let s = Sched.Scds.schedule (Sched.Problem.create mesh t) in
      let n = Reftrace.Data_space.size (Reftrace.Trace.space t) in
      let ok = ref true in
      for data = 0 to n - 1 do
        let best, _ = Sched.Brute_force.optimal_static_cost mesh t ~data in
        let windows = Reftrace.Trace.windows t in
        let center = Sched.Schedule.center s ~window:0 ~data in
        let actual =
          Sched.Cost.path_cost mesh
            (List.map (fun w -> (w, center)) windows)
            ~data
        in
        if actual <> best then ok := false
      done;
      !ok)

let prop_capacity_never_violated =
  let arb = Gen.trace_arbitrary ~max_data:16 ~max_windows:4 ~max_count:4 () in
  QCheck.Test.make ~name:"SCDS respects capacity" ~count:100 arb (fun t ->
      let n = Reftrace.Data_space.size (Reftrace.Trace.space t) in
      let capacity = Pim.Memory.capacity_for ~data_count:n ~mesh ~headroom:2 in
      let s = Sched.Scds.schedule (Sched.Problem.of_capacity ~capacity mesh t) in
      Option.is_none (Sched.Schedule.check_capacity s ~capacity))

let suite =
  [
    Gen.case "static" test_static;
    Gen.case "picks merged optimum" test_picks_merged_optimum;
    Gen.case "capacity spills to next best" test_capacity_spills_to_next_best;
    Gen.case "infeasible capacity rejected" test_infeasible_capacity_rejected;
    Gen.case "worked example" test_example_matches_paper_structure;
    Gen.to_alcotest prop_unconstrained_scds_is_best_static;
    Gen.to_alcotest prop_capacity_never_violated;
  ]
