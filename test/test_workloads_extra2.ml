(* Tests for the Cholesky and histogram-reduction workloads. *)

let mesh = Gen.mesh44
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* -- Cholesky -------------------------------------------------------------- *)

let test_cholesky_shape () =
  let n = 8 in
  let t = Workloads.Cholesky.trace ~n mesh in
  check_int "n-1 windows" (n - 1) (Reftrace.Trace.n_windows t);
  (* per step k: 2(n-1-k) scaling refs + 3 * T(n-1-k) updates where
     T(r) = r(r+1)/2 *)
  let expected = ref 0 in
  for k = 0 to n - 2 do
    let r = n - 1 - k in
    expected := !expected + (2 * r) + (3 * r * (r + 1) / 2)
  done;
  check_int "reference count" !expected (Reftrace.Trace.total_references t)

let test_cholesky_upper_triangle_cold () =
  let n = 8 in
  let t = Workloads.Cholesky.trace ~n mesh in
  let space = Reftrace.Trace.space t in
  let merged = Reftrace.Trace.merged t in
  let a r c = Reftrace.Data_space.id space ~array_name:"A" ~row:r ~col:c in
  check_int "strictly upper never touched" 0
    (Reftrace.Window.references merged (a 0 7));
  check_bool "lower is hot" true
    (Reftrace.Window.references merged (a 7 0) > 0)

let test_cholesky_writes_marked () =
  let t = Workloads.Cholesky.trace ~n:6 mesh in
  let space = Reftrace.Trace.space t in
  let a r c = Reftrace.Data_space.id space ~array_name:"A" ~row:r ~col:c in
  let w0 = Reftrace.Trace.window t 0 in
  check_bool "a(i,0) written in step 0" true
    (Reftrace.Window.writes w0 (a 3 0) > 0);
  check_int "pivot only read" 0 (Reftrace.Window.writes w0 (a 0 0))

let test_cholesky_cheaper_than_lu () =
  (* half the flops, so roughly half the communication *)
  let n = 12 in
  let lu = Workloads.Lu.trace ~n mesh in
  let ch = Workloads.Cholesky.trace ~n mesh in
  let cost t = Sched.Schedule.total_cost (Sched.Gomcds.schedule (Sched.Problem.create mesh t)) t in
  check_bool "triangular is cheaper" true (cost ch < cost lu)

(* -- Reduction -------------------------------------------------------------- *)

let test_reduction_shape () =
  let t = Workloads.Reduction.trace ~n:8 ~bins:4 mesh in
  check_int "one window per mesh row" 4 (Reftrace.Trace.n_windows t);
  check_int "X plus H" (64 + 4)
    (Reftrace.Data_space.size (Reftrace.Trace.space t));
  (* every element: one read of X plus one write to H *)
  check_int "2 refs per element" (2 * 64) (Reftrace.Trace.total_references t)

let test_reduction_bins_are_write_hot () =
  let t = Workloads.Reduction.trace ~n:16 ~bins:4 mesh in
  let space = Reftrace.Trace.space t in
  let h = Reftrace.Data_space.id space ~array_name:"H" ~row:0 ~col:0 in
  let merged = Reftrace.Trace.merged t in
  check_bool "bin written from many places" true
    (List.length (Reftrace.Window.write_profile merged h) > 4);
  check_int "bins never read" 0
    (List.length (Reftrace.Window.read_profile merged h))

let test_reduction_x_reads_local () =
  (* X is only read, and only by its owner: GOMCDS serves every X element
     locally, so the whole cost comes from the shared histogram *)
  let t = Workloads.Reduction.trace ~n:16 ~bins:4 mesh in
  let s = Sched.Gomcds.schedule (Sched.Problem.create mesh t) in
  let space = Reftrace.Trace.space t in
  let free = ref true in
  for row = 0 to 15 do
    for col = 0 to 15 do
      let data = Reftrace.Data_space.id space ~array_name:"X" ~row ~col in
      List.iteri
        (fun w window ->
          let center = Sched.Schedule.center s ~window:w ~data in
          if Sched.Cost.reference_cost mesh window ~data ~center <> 0 then
            free := false)
        (Reftrace.Trace.windows t)
    done
  done;
  check_bool "every X access is local" true !free

let test_reduction_replication_useless () =
  (* every histogram access is a write: write-invalidate pins each bin *)
  let t = Workloads.Reduction.trace ~n:16 ~bins:4 mesh in
  let single = Sched.Schedule.total_cost (Sched.Gomcds.schedule (Sched.Problem.create mesh t)) t in
  let r = Sched.Replicated.run ~max_copies:8 mesh t in
  check_int "no replication win" single
    (Sched.Replicated.cost r mesh t).Sched.Replicated.total

let test_reduction_deterministic () =
  let a = Workloads.Reduction.trace ~n:8 ~bins:4 mesh in
  let b = Workloads.Reduction.trace ~n:8 ~bins:4 mesh in
  check_bool "same seed same trace" true
    (List.for_all2 Reftrace.Window.equal (Reftrace.Trace.windows a)
       (Reftrace.Trace.windows b))

let test_reduction_movement_follows_writers () =
  (* the active band sweeps down the array; bins should migrate with it *)
  let t = Workloads.Reduction.trace ~n:32 ~bins:2 mesh in
  let s = Sched.Gomcds.schedule (Sched.Problem.create mesh t) in
  let space = Reftrace.Trace.space t in
  let h = Reftrace.Data_space.id space ~array_name:"H" ~row:0 ~col:0 in
  check_bool "bin migrates" false (Sched.Schedule.is_static s ~data:h)

(* -- Wavefront --------------------------------------------------------------- *)

let test_wavefront_shape () =
  let t = Workloads.Wavefront.trace ~n:10 ~diags_per_window:3 mesh in
  (* interior anti-diagonals: d = 2 .. 16, banded by 3 -> 5 windows *)
  check_int "windows" 5 (Reftrace.Trace.n_windows t);
  (* every interior cell appears exactly once as a write *)
  let merged = Reftrace.Trace.merged t in
  let space = Reftrace.Trace.space t in
  let u r c = Reftrace.Data_space.id space ~array_name:"U" ~row:r ~col:c in
  check_int "one write per cell" 1
    (List.fold_left (fun acc (_, c) -> acc + c)
       0
       (Reftrace.Window.write_profile merged (u 4 4)))

let test_wavefront_front_moves () =
  let t = Workloads.Wavefront.trace ~n:16 mesh in
  let p = Reftrace.Stats.profile mesh t in
  check_bool "drifting front" true (p.Reftrace.Stats.drift > 0.2)

let test_wavefront_validates () =
  Alcotest.check_raises "n too small"
    (Invalid_argument "Wavefront.trace: n must be at least 3") (fun () ->
      ignore (Workloads.Wavefront.trace ~n:2 mesh));
  Alcotest.check_raises "bad band"
    (Invalid_argument "Wavefront.trace: diags_per_window must be positive")
    (fun () ->
      ignore (Workloads.Wavefront.trace ~n:8 ~diags_per_window:0 mesh))

let test_wavefront_movement_helps () =
  let t = Workloads.Wavefront.trace ~n:16 ~diags_per_window:4 mesh in
  let static = Sched.Schedule.total_cost (Sched.Scds.schedule (Sched.Problem.create mesh t)) t in
  let dynamic = Sched.Schedule.total_cost (Sched.Gomcds.schedule (Sched.Problem.create mesh t)) t in
  check_bool "front-following wins" true (dynamic <= static)

let suite =
  [
    Gen.case "wavefront shape" test_wavefront_shape;
    Gen.case "wavefront front moves" test_wavefront_front_moves;
    Gen.case "wavefront validates" test_wavefront_validates;
    Gen.case "wavefront movement helps" test_wavefront_movement_helps;
    Gen.case "cholesky shape" test_cholesky_shape;
    Gen.case "cholesky upper triangle cold" test_cholesky_upper_triangle_cold;
    Gen.case "cholesky writes marked" test_cholesky_writes_marked;
    Gen.case "cholesky cheaper than LU" test_cholesky_cheaper_than_lu;
    Gen.case "reduction shape" test_reduction_shape;
    Gen.case "reduction bins write-hot" test_reduction_bins_are_write_hot;
    Gen.case "reduction X reads local" test_reduction_x_reads_local;
    Gen.case "reduction replication useless" test_reduction_replication_useless;
    Gen.case "reduction deterministic" test_reduction_deterministic;
    Gen.case "reduction movement follows writers" test_reduction_movement_follows_writers;
  ]
