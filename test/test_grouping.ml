let check_int = Alcotest.(check int)
let mesh = Gen.mesh44

let group_t =
  Alcotest.testable
    (fun fmt (g : Sched.Grouping.group) ->
      Format.fprintf fmt "[%d..%d]@%d" g.Sched.Grouping.first
        g.Sched.Grouping.last g.Sched.Grouping.center)
    ( = )

let test_identical_windows_merge () =
  (* same profile every window: one big group, no movement *)
  let spec = [ (0, 6, 2); (0, 9, 1) ] in
  let t = Gen.trace mesh ~n_data:1 [ spec; spec; spec; spec ] in
  let groups = Sched.Grouping.groups (Sched.Problem.create mesh t) ~data:0 ~centers:`Local in
  check_int "single group" 1 (List.length groups);
  let g = List.hd groups in
  check_int "covers all" 0 g.Sched.Grouping.first;
  check_int "to the end" 3 g.Sched.Grouping.last

let test_opposed_windows_stay_apart () =
  (* strong opposite pulls: grouping would force one bad center *)
  let t =
    Gen.trace mesh ~n_data:1 [ [ (0, 0, 9) ]; [ (0, 15, 9) ] ]
  in
  let groups = Sched.Grouping.groups (Sched.Problem.create mesh t) ~data:0 ~centers:`Local in
  check_int "two groups" 2 (List.length groups);
  Alcotest.(check (list group_t))
    "each window its own center"
    [
      { Sched.Grouping.first = 0; last = 0; center = 0 };
      { Sched.Grouping.first = 1; last = 1; center = 15 };
    ]
    groups

let test_unreferenced_datum_empty_partition () =
  let t = Gen.trace mesh ~n_data:2 [ [ (0, 3, 1) ] ] in
  Alcotest.(check (list group_t))
    "empty" []
    (Sched.Grouping.groups (Sched.Problem.create mesh t) ~data:1 ~centers:`Local)

let test_gap_windows_excluded_from_groups () =
  let t =
    Gen.trace mesh ~n_data:2
      [ [ (0, 4, 2) ]; [ (1, 0, 1) ]; [ (0, 4, 2) ] ]
  in
  let groups = Sched.Grouping.groups (Sched.Problem.create mesh t) ~data:0 ~centers:`Local in
  (* identical profiles with a gap: still groupable into one *)
  check_int "one group" 1 (List.length groups);
  let g = List.hd groups in
  check_int "spans the gap" 2 g.Sched.Grouping.last;
  check_int "center" 4 g.Sched.Grouping.center

let test_schedule_keeps_datum_during_gap () =
  let t =
    Gen.trace mesh ~n_data:2
      [ [ (0, 4, 2) ]; [ (1, 0, 1) ]; [ (0, 4, 2) ] ]
  in
  let s = Sched.Grouping.schedule (Sched.Problem.create mesh t) in
  Alcotest.(check (list int))
    "no movement" [ 4; 4; 4 ]
    (Array.to_list (Sched.Schedule.centers_of_data s ~data:0))

let prop_never_worse_than_lomcds =
  let arb = Gen.trace_arbitrary ~max_data:4 ~max_windows:6 ~max_count:4 () in
  QCheck.Test.make
    ~name:"grouping (unbounded) never costs more than ungrouped LOMCDS"
    ~count:100 arb (fun t ->
      let grouped = Sched.Grouping.schedule (Sched.Problem.create mesh t) in
      let plain = Sched.Lomcds.schedule (Sched.Problem.create mesh t) in
      Sched.Schedule.total_cost grouped t <= Sched.Schedule.total_cost plain t)

let prop_global_centers_never_worse_than_local =
  let arb = Gen.trace_arbitrary ~max_data:4 ~max_windows:6 ~max_count:4 () in
  QCheck.Test.make
    ~name:"grouping with global centers <= grouping with local centers"
    ~count:100 arb (fun t ->
      let local = Sched.Grouping.schedule ~centers:`Local (Sched.Problem.create mesh t) in
      let global = Sched.Grouping.schedule ~centers:`Global (Sched.Problem.create mesh t) in
      Sched.Schedule.total_cost global t <= Sched.Schedule.total_cost local t)

let prop_groups_partition_referenced_windows =
  let arb = Gen.trace_arbitrary ~max_data:4 ~max_windows:6 ~max_count:4 () in
  QCheck.Test.make
    ~name:"groups are ordered, disjoint, and bounded by referenced windows"
    ~count:100 arb (fun t ->
      let n = Reftrace.Data_space.size (Reftrace.Trace.space t) in
      let ok = ref true in
      for data = 0 to n - 1 do
        let groups = Sched.Grouping.groups (Sched.Problem.create mesh t) ~data ~centers:`Local in
        let rec check prev = function
          | [] -> ()
          | g :: rest ->
              if g.Sched.Grouping.first <= prev then ok := false;
              if g.Sched.Grouping.last < g.Sched.Grouping.first then
                ok := false;
              check g.Sched.Grouping.last rest
        in
        check (-1) groups;
        (* first and last window of every group must reference the datum *)
        List.iter
          (fun g ->
            let refs w =
              Reftrace.Window.references (Reftrace.Trace.window t w) data
            in
            if refs g.Sched.Grouping.first = 0 || refs g.Sched.Grouping.last = 0
            then ok := false)
          groups
      done;
      !ok)

let prop_capacity_never_violated =
  let arb = Gen.trace_arbitrary ~max_data:16 ~max_windows:5 ~max_count:4 () in
  QCheck.Test.make ~name:"grouping respects capacity" ~count:100 arb (fun t ->
      let n = Reftrace.Data_space.size (Reftrace.Trace.space t) in
      let capacity = Pim.Memory.capacity_for ~data_count:n ~mesh ~headroom:2 in
      let s = Sched.Grouping.schedule (Sched.Problem.of_capacity ~capacity mesh t) in
      Option.is_none (Sched.Schedule.check_capacity s ~capacity))

let suite =
  [
    Gen.case "identical windows merge" test_identical_windows_merge;
    Gen.case "opposed windows stay apart" test_opposed_windows_stay_apart;
    Gen.case "unreferenced datum empty" test_unreferenced_datum_empty_partition;
    Gen.case "gap windows excluded" test_gap_windows_excluded_from_groups;
    Gen.case "datum parked during gap" test_schedule_keeps_datum_during_gap;
    Gen.to_alcotest prop_never_worse_than_lomcds;
    Gen.to_alcotest prop_global_centers_never_worse_than_local;
    Gen.to_alcotest prop_groups_partition_referenced_windows;
    Gen.to_alcotest prop_capacity_never_violated;
  ]
