let mesh = Gen.mesh44

let test_lower_bound_equals_unconstrained_gomcds () =
  let t = Workloads.Code_kernel.trace ~n:8 mesh in
  Alcotest.(check int)
    "bound = unbounded GOMCDS total"
    (Sched.Schedule.total_cost (Sched.Gomcds.schedule (Sched.Problem.create mesh t)) t)
    (Sched.Bounds.lower_bound_in (Sched.Problem.create mesh t))

let test_static_bound_equals_unconstrained_scds () =
  let t = Workloads.Code_kernel.trace ~n:8 mesh in
  Alcotest.(check int)
    "static bound = unbounded SCDS total"
    (Sched.Schedule.total_cost (Sched.Scds.schedule (Sched.Problem.create mesh t)) t)
    (Sched.Bounds.static_lower_bound_in (Sched.Problem.create mesh t))

let test_dynamic_bound_not_above_static () =
  let t = Workloads.Lu.trace ~n:8 mesh in
  Alcotest.(check bool)
    "dynamic <= static" true
    (Sched.Bounds.lower_bound_in (Sched.Problem.create mesh t) <= Sched.Bounds.static_lower_bound_in (Sched.Problem.create mesh t))

let test_gap () =
  Alcotest.(check (float 1e-9)) "25%" 25. (Sched.Bounds.gap ~bound:100 ~cost:125);
  Alcotest.(check (float 1e-9)) "exact" 0. (Sched.Bounds.gap ~bound:100 ~cost:100);
  Alcotest.(check (float 1e-9)) "zero bound" 0. (Sched.Bounds.gap ~bound:0 ~cost:7)

let prop_bound_below_every_schedule =
  let arb = Gen.trace_arbitrary ~max_data:8 ~max_windows:5 ~max_count:4 () in
  QCheck.Test.make
    ~name:"lower bound <= every scheduler, bounded or not" ~count:60 arb
    (fun t ->
      let bound = Sched.Bounds.lower_bound_in (Sched.Problem.create mesh t) in
      let n = Reftrace.Data_space.size (Reftrace.Trace.space t) in
      let capacity = Pim.Memory.capacity_for ~data_count:n ~mesh ~headroom:2 in
      List.for_all
        (fun a ->
          bound
          <= Sched.Schedule.total_cost (Sched.Scheduler.run ~capacity a mesh t) t
          && bound <= Sched.Schedule.total_cost (Sched.Scheduler.run a mesh t) t)
        Sched.Scheduler.[ Row_wise; Scds; Lomcds; Gomcds; Best_refined ])

let suite =
  [
    Gen.case "bound = unconstrained gomcds" test_lower_bound_equals_unconstrained_gomcds;
    Gen.case "static bound = unconstrained scds" test_static_bound_equals_unconstrained_scds;
    Gen.case "dynamic <= static" test_dynamic_bound_not_above_static;
    Gen.case "gap" test_gap;
    Gen.to_alcotest prop_bound_below_every_schedule;
  ]
