let mesh = Gen.mesh44

let capacity_for t =
  let n = Reftrace.Data_space.size (Reftrace.Trace.space t) in
  Pim.Memory.capacity_for ~data_count:n ~mesh ~headroom:2

let test_noop_on_unconstrained_gomcds () =
  let t = Workloads.Code_kernel.trace ~n:8 mesh in
  let g = Sched.Gomcds.schedule (Sched.Problem.create mesh t) in
  let refined, stats = Sched.Refine.refine (Sched.Problem.create mesh t) g in
  Alcotest.(check int) "no improvement possible" 0 stats.Sched.Refine.improved;
  Alcotest.(check bool) "schedule unchanged" true
    (Sched.Schedule.equal g refined)

let test_input_not_mutated () =
  let t = Workloads.Lu.trace ~n:8 mesh in
  let capacity = capacity_for t in
  let seed = Sched.Grouping.schedule (Sched.Problem.of_capacity ~capacity mesh t) in
  let before = Sched.Schedule.total_cost seed t in
  let _refined, _ = Sched.Refine.refine (Sched.Problem.of_capacity ~capacity mesh t) seed in
  Alcotest.(check int) "seed untouched" before
    (Sched.Schedule.total_cost seed t)

let test_improves_grouped_lu () =
  let t = Workloads.Lu.trace ~n:16 mesh in
  let capacity = capacity_for t in
  let seed = Sched.Grouping.schedule (Sched.Problem.of_capacity ~capacity mesh t) in
  let refined, stats = Sched.Refine.refine (Sched.Problem.of_capacity ~capacity mesh t) seed in
  Alcotest.(check bool) "strictly better" true
    (Sched.Schedule.total_cost refined t < Sched.Schedule.total_cost seed t);
  Alcotest.(check bool) "stats recorded" true (stats.Sched.Refine.saved > 0);
  Alcotest.(check (option (triple int int int)))
    "capacity kept" None
    (Sched.Schedule.check_capacity refined ~capacity)

let test_saved_matches_cost_delta () =
  let t = Workloads.Lu.trace ~n:8 mesh in
  let capacity = capacity_for t in
  let seed = Sched.Grouping.schedule (Sched.Problem.of_capacity ~capacity mesh t) in
  let refined, stats = Sched.Refine.refine (Sched.Problem.of_capacity ~capacity mesh t) seed in
  Alcotest.(check int)
    "saved = before - after" stats.Sched.Refine.saved
    (Sched.Schedule.total_cost seed t - Sched.Schedule.total_cost refined t)

let test_rejects_infeasible_input () =
  let t = Gen.trace mesh ~n_data:3 [ [ (0, 0, 1) ] ] in
  let bad = Sched.Schedule.constant mesh ~n_windows:1 [| 0; 0; 0 |] in
  Alcotest.check_raises "violating seed"
    (Invalid_argument
       "Refine.refine: input schedule already violates capacity (window 0, \
        rank 0, load 3 > 1)") (fun () ->
      ignore (Sched.Refine.refine (Sched.Problem.of_capacity ~capacity:1 mesh t) bad))

let test_fixed_point_is_idempotent () =
  let t = Workloads.Lu.trace ~n:8 mesh in
  let capacity = capacity_for t in
  let refined = Sched.Refine.best_schedule (Sched.Problem.of_capacity ~capacity mesh t) in
  let again, stats = Sched.Refine.refine (Sched.Problem.of_capacity ~capacity mesh t) refined in
  Alcotest.(check int) "no further gain" 0 stats.Sched.Refine.improved;
  Alcotest.(check bool) "stable" true (Sched.Schedule.equal refined again)

let prop_never_worse_and_feasible =
  let arb = Gen.trace_arbitrary ~max_data:16 ~max_windows:5 ~max_count:4 () in
  QCheck.Test.make ~name:"refinement never worsens and stays feasible"
    ~count:60 arb (fun t ->
      let capacity = capacity_for t in
      List.for_all
        (fun seed_algo ->
          let seed = Sched.Scheduler.run ~capacity seed_algo mesh t in
          let refined, _ = Sched.Refine.refine (Sched.Problem.of_capacity ~capacity mesh t) seed in
          Sched.Schedule.total_cost refined t
          <= Sched.Schedule.total_cost seed t
          && Option.is_none (Sched.Schedule.check_capacity refined ~capacity))
        Sched.Scheduler.[ Scds; Lomcds; Gomcds; Lomcds_grouped ])

let prop_best_refined_dominates_components =
  let arb = Gen.trace_arbitrary ~max_data:10 ~max_windows:4 ~max_count:4 () in
  QCheck.Test.make
    ~name:"best-refined <= every constructive scheduler (same capacity)"
    ~count:50 arb (fun t ->
      let capacity = capacity_for t in
      let best =
        Sched.Schedule.total_cost (Sched.Refine.best_schedule (Sched.Problem.of_capacity ~capacity mesh t)) t
      in
      List.for_all
        (fun a ->
          best
          <= Sched.Schedule.total_cost (Sched.Scheduler.run ~capacity a mesh t) t)
        Sched.Scheduler.[ Scds; Lomcds; Gomcds; Lomcds_grouped; Gomcds_grouped ])

let prop_refined_respects_lower_bound =
  let arb = Gen.trace_arbitrary ~max_data:8 ~max_windows:4 ~max_count:4 () in
  QCheck.Test.make ~name:"refined cost >= per-datum lower bound" ~count:50 arb
    (fun t ->
      let capacity = capacity_for t in
      let best = Sched.Refine.best_schedule (Sched.Problem.of_capacity ~capacity mesh t) in
      Sched.Schedule.total_cost best t >= Sched.Bounds.lower_bound_in (Sched.Problem.create mesh t))

let suite =
  [
    Gen.case "noop on unconstrained gomcds" test_noop_on_unconstrained_gomcds;
    Gen.case "input not mutated" test_input_not_mutated;
    Gen.case "improves grouped LU" test_improves_grouped_lu;
    Gen.case "saved matches cost delta" test_saved_matches_cost_delta;
    Gen.case "rejects infeasible input" test_rejects_infeasible_input;
    Gen.case "fixed point idempotent" test_fixed_point_is_idempotent;
    Gen.to_alcotest prop_never_worse_and_feasible;
    Gen.to_alcotest prop_best_refined_dominates_components;
    Gen.to_alcotest prop_refined_respects_lower_bound;
  ]
