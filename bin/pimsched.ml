(* pimsched — command-line front-end for the PIM data-scheduling library.

   Subcommands:
     schedule      run one algorithm on one workload instance
     compare       run every algorithm on one instance (plus lower bound)
     table         regenerate the paper's Table 1 or Table 2
     example       print the Section 3.3 worked example (Figure 1)
     show          ASCII heatmaps of a window and a schedule
     faults        degradation ablation under seeded node/link faults
     export-trace  serialize a workload's reference trace to a file *)

open Cmdliner

(* ---------------------------------------------------------------- *)
(* Argument converters                                               *)
(* ---------------------------------------------------------------- *)

let mesh_conv =
  let parse s =
    match String.split_on_char 'x' s with
    | [ r; c ] -> (
        match (int_of_string_opt r, int_of_string_opt c) with
        | Some rows, Some cols when rows > 0 && cols > 0 ->
            Ok (rows, cols)
        | _ -> Error (`Msg (Printf.sprintf "invalid mesh %S" s)))
    | _ -> Error (`Msg (Printf.sprintf "invalid mesh %S (expected RxC)" s))
  in
  let print fmt (rows, cols) = Format.fprintf fmt "%dx%d" rows cols in
  Arg.conv (parse, print)

(* Workloads: the paper's benchmarks 1-5 plus the extension kernels. *)
type workload =
  | Paper of Workloads.Benchmarks.t
  | Stencil
  | Transitive_closure
  | Fft
  | Cholesky
  | Reduction

let workload_of_string = function
  | "stencil" -> Ok Stencil
  | "tc" | "transitive-closure" -> Ok Transitive_closure
  | "fft" -> Ok Fft
  | "cholesky" -> Ok Cholesky
  | "reduction" -> Ok Reduction
  | s -> (
      try Ok (Paper (Workloads.Benchmarks.of_label s))
      with Invalid_argument _ ->
        Error
          (`Msg
            (Printf.sprintf
               "unknown workload %S (expected 1..5, stencil, tc, fft, \
                cholesky or reduction)"
               s)))

let workload_to_string = function
  | Paper b -> Workloads.Benchmarks.label b
  | Stencil -> "stencil"
  | Transitive_closure -> "tc"
  | Fft -> "fft"
  | Cholesky -> "cholesky"
  | Reduction -> "reduction"

let workload_conv =
  Arg.conv
    ( workload_of_string,
      fun fmt w -> Format.pp_print_string fmt (workload_to_string w) )

let algorithm_conv =
  let parse s =
    try Ok (Sched.Scheduler.of_name s)
    with Invalid_argument m -> Error (`Msg m)
  in
  let print fmt a = Format.pp_print_string fmt (Sched.Scheduler.name a) in
  Arg.conv (parse, print)

let partition_conv =
  let parse = function
    | "block-2d" -> Ok Workloads.Iteration_space.Block_2d
    | "row-blocks" -> Ok Workloads.Iteration_space.Row_blocks
    | "col-blocks" -> Ok Workloads.Iteration_space.Col_blocks
    | "cyclic-2d" -> Ok Workloads.Iteration_space.Cyclic_2d
    | s -> Error (`Msg (Printf.sprintf "unknown partition %S" s))
  in
  let print fmt p =
    Format.pp_print_string fmt (Workloads.Iteration_space.name p)
  in
  Arg.conv (parse, print)

(* ---------------------------------------------------------------- *)
(* Common arguments                                                  *)
(* ---------------------------------------------------------------- *)

let mesh_arg =
  Arg.(
    value & opt mesh_conv (4, 4)
    & info [ "mesh" ] ~docv:"RxC" ~doc:"Processor array shape.")

let torus_arg =
  Arg.(
    value & flag
    & info [ "torus" ] ~doc:"Use wrap-around (torus) links instead of a mesh.")

let workload_arg =
  Arg.(
    value
    & opt workload_conv (Paper Workloads.Benchmarks.B1)
    & info [ "benchmark"; "b" ] ~docv:"W"
        ~doc:
          "Workload: paper benchmark 1..5, or extension kernels $(b,stencil), \
           $(b,tc) (transitive closure), $(b,fft), $(b,cholesky), \
           $(b,reduction).")

let size_arg =
  Arg.(
    value & opt int 8
    & info [ "size"; "n" ] ~docv:"N" ~doc:"Data array is N x N.")

let partition_arg =
  Arg.(
    value
    & opt partition_conv Workloads.Iteration_space.Block_2d
    & info [ "partition" ] ~docv:"NAME" ~doc:"Iteration partition.")

let unbounded_arg =
  Arg.(
    value & flag
    & info [ "unbounded" ]
        ~doc:"Ignore processor memory capacity (paper default is 2x minimum).")

let trace_file_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "trace-file" ] ~docv:"PATH"
        ~doc:
          "Load a serialized reference trace instead of generating a \
           workload (see export-trace).")

let jobs_arg =
  let pos_int =
    let parse s =
      match Cmdliner.Arg.conv_parser Arg.int s with
      | Ok n when n >= 1 -> Ok n
      | Ok n -> Error (`Msg (Printf.sprintf "expected N >= 1, got %d" n))
      | Error _ as e -> e
    in
    Arg.conv (parse, Cmdliner.Arg.conv_printer Arg.int)
  in
  Arg.(
    value
    & opt pos_int (Sched.Engine.default_jobs ())
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Domains used for per-datum work (cost vectors, per-datum DPs). \
           Schedules are identical at any setting; the default fits the \
           machine.")

let kernel_arg =
  let kernel_conv =
    let parse = function
      | "separable" -> Ok `Separable
      | "naive" -> Ok `Naive
      | s ->
          Error
            (`Msg
              (Printf.sprintf
                 "unknown kernel %S (expected separable or naive)" s))
    in
    let print fmt k =
      Format.pp_print_string fmt
        (match k with `Separable -> "separable" | `Naive -> "naive")
    in
    Arg.conv (parse, print)
  in
  Arg.(
    value
    & opt kernel_conv `Separable
    & info [ "kernel" ] ~docv:"NAME"
        ~doc:
          "Cost kernel filling the flat cost arena: $(b,separable) (per-axis \
           marginals + prefix sums, the default; optimal centers come \
           straight from the marginals without building vectors) or \
           $(b,naive) (direct walk over a private distance table, the \
           cross-check oracle). Both produce identical schedules.")

let arrays_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "arrays" ] ~docv:"SPEC"
        ~doc:
          "Schedule on a group of PIM arrays instead of one mesh: \
           $(b,RxCofAxB) tiles RxC identical AxB arrays on a grid \
           interconnect (e.g. $(b,2x2of8x8)), or a comma list \
           $(b,AxB,CxD,...) joins heterogeneous arrays on a line. \
           $(b,--mesh) is ignored; $(b,--torus) wraps the member arrays.")

let inter_cost_arg =
  let pos_cost =
    let parse s =
      match Cmdliner.Arg.conv_parser Arg.int s with
      | Ok k when k >= 1 -> Ok k
      | Ok k -> Error (`Msg (Printf.sprintf "expected K >= 1, got %d" k))
      | Error _ as e -> e
    in
    Arg.conv (parse, Cmdliner.Arg.conv_printer Arg.int)
  in
  Arg.(
    value & opt pos_cost 10
    & info [ "inter-cost" ] ~docv:"K"
        ~doc:
          "Per-hop cost multiplier of the inter-array interconnect (group \
           instances only; default 10).")

let simulate_arg =
  Arg.(
    value & flag
    & info [ "simulate" ]
        ~doc:
          "Also execute the schedule on the message-level simulator and \
           report measured traffic.")

let metrics_json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-json" ] ~docv:"PATH"
        ~doc:
          "Enable the observability layer and write a JSON metrics snapshot \
           here when the command finishes.")

(* ---------------------------------------------------------------- *)
(* Observability plumbing                                            *)
(* ---------------------------------------------------------------- *)

(* Flip the switch before any Problem is built so cache fills count. *)
let obs_begin metrics_json =
  if metrics_json <> None then begin
    Obs.enabled := true;
    Obs.reset ()
  end

(* [to_stderr] keeps the confirmation off stdout for commands whose
   stdout is a wire protocol (serve). *)
let obs_finish ?(to_stderr = false) ~command ~jobs metrics_json =
  match metrics_json with
  | None -> ()
  | Some path ->
      Obs.Json.write_file path
        (Obs.Export.metrics_json
           ~extra:
             [
               ("command", Obs.Json.String command);
               ("jobs", Obs.Json.Int jobs);
             ]
           (Obs.Metrics.snapshot ()));
      (if to_stderr then Printf.eprintf else Printf.printf)
        "metrics written to %s\n" path

(* ---------------------------------------------------------------- *)
(* Instance construction                                             *)
(* ---------------------------------------------------------------- *)

let build_mesh (rows, cols) torus =
  if torus then Pim.Mesh.torus ~rows ~cols else Pim.Mesh.create ~rows ~cols

let build_trace workload size partition mesh trace_file =
  match trace_file with
  | Some path ->
      let t = Reftrace.Serial.load path in
      Reftrace.Trace.validate t mesh;
      t
  | None -> (
      match workload with
      | Paper b -> Workloads.Benchmarks.trace ~partition b ~n:size mesh
      | Stencil -> Workloads.Stencil.trace ~partition ~n:size ~sweeps:8 mesh
      | Transitive_closure ->
          Workloads.Transitive_closure.trace ~partition ~n:size mesh
      | Fft -> Workloads.Fft_transpose.trace ~partition ~n:size mesh
      | Cholesky -> Workloads.Cholesky.trace ~partition ~n:size mesh
      | Reduction ->
          Workloads.Reduction.trace ~partition ~n:size
            ~bins:(Pim.Mesh.size mesh) mesh)

let capacity_of trace mesh unbounded =
  if unbounded then None
  else
    Some
      (Pim.Memory.capacity_for
         ~data_count:(Reftrace.Data_space.size (Reftrace.Trace.space trace))
         ~mesh ~headroom:2)

let describe_instance ?trace_file workload mesh trace capacity =
  Printf.printf "workload %s: %s on %s%s\n"
    (match trace_file with
    | Some path -> Printf.sprintf "from %s" path
    | None -> workload_to_string workload)
    (Format.asprintf "%a" Reftrace.Trace.pp trace)
    (Format.asprintf "%a" Pim.Mesh.pp mesh)
    (match capacity with
    | None -> ", unbounded memory"
    | Some c -> Printf.sprintf ", capacity %d" c)

(* ---------------------------------------------------------------- *)
(* Multi-array (group) instances                                     *)
(* ---------------------------------------------------------------- *)

let build_group spec inter_cost torus =
  try Multi.Array_group.of_spec ~inter_cost ~torus spec
  with Invalid_argument m -> failwith m

(* Generated workloads are laid out on the group's virtual mesh (members
   tiled onto the interconnect) and remapped to global ranks; loaded
   traces already reference global ranks. *)
let build_group_trace workload size partition group trace_file =
  match trace_file with
  | Some path ->
      let t = Reftrace.Serial.load path in
      Multi.Array_group.validate_trace group t;
      t
  | None ->
      let vm = Multi.Array_group.virtual_mesh group in
      Multi.Array_group.remap_virtual_trace group
        (build_trace workload size partition vm None)

(* The paper's headroom-2 rule over the group's aggregate size. *)
let group_capacity_of trace group unbounded =
  if unbounded then None
  else
    Some
      (Pim.Memory.capacity_for
         ~data_count:(Reftrace.Data_space.size (Reftrace.Trace.space trace))
         ~mesh:(Pim.Mesh.create ~rows:1 ~cols:(Multi.Array_group.size group))
         ~headroom:2)

let group_policy_of = function
  | None -> Sched.Problem.Unbounded
  | Some c -> Sched.Problem.Bounded c

let describe_group_instance ?trace_file workload group trace capacity =
  Printf.printf "workload %s: %s on %s%s\n"
    (match trace_file with
    | Some path -> Printf.sprintf "from %s" path
    | None -> workload_to_string workload)
    (Format.asprintf "%a" Reftrace.Trace.pp trace)
    (Format.asprintf "%a" Multi.Array_group.pp group)
    (match capacity with
    | None -> ", unbounded memory"
    | Some c -> Printf.sprintf ", capacity %d" c)

(* ---------------------------------------------------------------- *)
(* Subcommand implementations                                        *)
(* ---------------------------------------------------------------- *)

let run_schedule_group spec inter_cost workload size torus partition
    unbounded trace_file algorithm jobs kernel simulate plan_out =
  if simulate then
    failwith "--simulate is not supported with --arrays (no group simulator)";
  let group = build_group spec inter_cost torus in
  let trace = build_group_trace workload size partition group trace_file in
  let capacity = group_capacity_of trace group unbounded in
  describe_group_instance ?trace_file workload group trace capacity;
  let gp =
    Multi.Group_problem.create
      ~policy:(group_policy_of capacity)
      ~jobs ~kernel group trace
  in
  let plan, breakdown = Multi.Group_solver.evaluate gp algorithm in
  (match plan_out with
  | Some path ->
      Multi.Group_serial.save plan path;
      Printf.printf "plan written to %s\n" path
  | None -> ());
  Printf.printf
    "%-16s total=%6d  reference=%6d  movement=%6d  moves=%d  array-moves=%d\n"
    (Sched.Scheduler.name algorithm)
    breakdown.Multi.Group_schedule.total
    breakdown.Multi.Group_schedule.reference
    breakdown.Multi.Group_schedule.movement
    (Multi.Group_schedule.moves plan)
    (Multi.Group_schedule.array_moves plan)

let run_schedule workload size mesh_shape torus partition unbounded
    trace_file algorithm jobs kernel simulate plan_out metrics_json arrays
    inter_cost =
  obs_begin metrics_json;
  (match arrays with
  | Some spec ->
      run_schedule_group spec inter_cost workload size torus partition
        unbounded trace_file algorithm jobs kernel simulate plan_out
  | None ->
      let mesh = build_mesh mesh_shape torus in
      let trace = build_trace workload size partition mesh trace_file in
      let capacity = capacity_of trace mesh unbounded in
      describe_instance ?trace_file workload mesh trace capacity;
      let problem =
        Sched.Problem.of_capacity ?capacity ~jobs ~kernel mesh trace
      in
      let schedule = Sched.Scheduler.solve problem algorithm in
      (match plan_out with
      | Some path ->
          Sched.Schedule_serial.save schedule path;
          Printf.printf "plan written to %s\n" path
      | None -> ());
      let breakdown = Sched.Schedule.cost schedule trace in
      Printf.printf "%-16s total=%6d  reference=%6d  movement=%6d  moves=%d\n"
        (Sched.Scheduler.name algorithm)
        breakdown.Sched.Schedule.total breakdown.Sched.Schedule.reference
        breakdown.Sched.Schedule.movement
        (Sched.Schedule.moves schedule);
      if simulate then begin
        let report =
          Pim.Simulator.run mesh (Sched.Schedule.to_rounds schedule trace)
        in
        Format.printf "%a@." Pim.Simulator.pp_report report
      end);
  obs_finish ~command:"schedule" ~jobs metrics_json

let run_compare_group spec inter_cost workload size torus partition unbounded
    trace_file jobs kernel =
  let group = build_group spec inter_cost torus in
  let trace = build_group_trace workload size partition group trace_file in
  let capacity = group_capacity_of trace group unbounded in
  describe_group_instance ?trace_file workload group trace capacity;
  (* one group problem: member sessions and weight tables are shared by
     every algorithm *)
  let gp =
    Multi.Group_problem.create
      ~policy:(group_policy_of capacity)
      ~jobs ~kernel group trace
  in
  let bound = Multi.Group_solver.lower_bound gp in
  let baseline =
    Multi.Group_schedule.total_cost
      (Multi.Group_solver.solve gp Sched.Scheduler.Row_wise)
      trace
  in
  List.iter
    (fun algorithm ->
      let _, breakdown = Multi.Group_solver.evaluate gp algorithm in
      let total = breakdown.Multi.Group_schedule.total in
      match bound with
      | Some bound ->
          Printf.printf
            "%-16s total=%6d  improvement=%5.1f%%  gap-to-bound=%5.1f%%\n"
            (Sched.Scheduler.name algorithm)
            total
            (Sched.Scheduler.improvement ~baseline ~cost:total)
            (Sched.Bounds.gap ~bound ~cost:total)
      | None ->
          Printf.printf "%-16s total=%6d  improvement=%5.1f%%\n"
            (Sched.Scheduler.name algorithm)
            total
            (Sched.Scheduler.improvement ~baseline ~cost:total))
    Sched.Scheduler.all;
  match bound with
  | Some bound ->
      Printf.printf
        "%-16s total=%6d  (sum of per-datum optima, group metric)\n"
        "lower-bound" bound
  | None -> ()

(* ---------------------------------------------------------------- *)
(* Cycle-honest ranking: hop·volume rank vs simulated-cycle rank     *)
(* ---------------------------------------------------------------- *)

(* Competition ranking: 1 + number of strictly better values, so ties
   share a rank and the comparison is insensitive to within-tie order. *)
let competition_ranks values =
  List.map
    (fun v -> 1 + List.length (List.filter (fun w -> w < v) values))
    values

(* Run every portfolio algorithm on [problem], price it both ways — the
   paper's hop·volume scalar and the timed backend's cycles under
   [model] — and flag every algorithm whose rank differs between the two
   metrics. Returns the JSON rows plus the disagreement count. *)
let cycles_table ?(model = Pim.Link_model.degenerate) problem mesh trace =
  let measured =
    List.map
      (fun algorithm ->
        let schedule = Sched.Scheduler.solve problem algorithm in
        let hopvol = Sched.Schedule.total_cost schedule trace in
        let report =
          Pim.Timed_simulator.run ~model mesh
            (Sched.Schedule.to_rounds schedule trace)
        in
        (algorithm, hopvol, report))
      Sched.Scheduler.all
  in
  let hop_ranks = competition_ranks (List.map (fun (_, h, _) -> h) measured) in
  let cycle_ranks =
    competition_ranks
      (List.map
         (fun (_, _, r) -> r.Pim.Timed_simulator.total_cycles)
         measured)
  in
  Format.printf "link model: %a@." Pim.Link_model.pp model;
  Printf.printf "%-16s %9s %4s %9s %4s %6s %7s %9s\n" "algorithm" "hop-vol"
    "rank" "cycles" "rank" "util" "stalls" "energy";
  let disagreements = ref 0 in
  let rows =
    List.map2
      (fun ((algorithm, hopvol, report), hop_rank) cycle_rank ->
        let disagree = hop_rank <> cycle_rank in
        if disagree then incr disagreements;
        Printf.printf "%-16s %9d %4d %9d %4d %6.2f %7d %9.0f%s\n"
          (Sched.Scheduler.name algorithm)
          hopvol hop_rank report.Pim.Timed_simulator.total_cycles cycle_rank
          report.Pim.Timed_simulator.link_utilization
          report.Pim.Timed_simulator.queue_stall_cycles
          report.Pim.Timed_simulator.energy
          (if disagree then "  *" else "");
        Obs.Json.Obj
          [
            ("algorithm", Obs.Json.String (Sched.Scheduler.name algorithm));
            ("hop_volume", Obs.Json.Int hopvol);
            ("hop_rank", Obs.Json.Int hop_rank);
            ("cycles", Obs.Json.Int report.Pim.Timed_simulator.total_cycles);
            ("cycle_rank", Obs.Json.Int cycle_rank);
            ("disagree", Obs.Json.Bool disagree);
            ( "link_utilization",
              Obs.Json.Float report.Pim.Timed_simulator.link_utilization );
            ( "queue_stall_cycles",
              Obs.Json.Int report.Pim.Timed_simulator.queue_stall_cycles );
            ( "compute_idle",
              Obs.Json.Int report.Pim.Timed_simulator.compute_idle );
            ("energy", Obs.Json.Float report.Pim.Timed_simulator.energy);
          ])
      (List.combine measured hop_ranks)
      cycle_ranks
  in
  Printf.printf
    "%d/%d schedulers ranked differently by cycles than by hop-volume (*)\n"
    !disagreements (List.length measured);
  (rows, !disagreements)

let run_compare workload size mesh_shape torus partition unbounded trace_file
    jobs kernel timed metrics_json arrays inter_cost =
  obs_begin metrics_json;
  (match arrays with
  | Some spec ->
      if timed then
        failwith "--timed is not supported with --arrays (no group simulator)";
      run_compare_group spec inter_cost workload size torus partition
        unbounded trace_file jobs kernel
  | None ->
      let mesh = build_mesh mesh_shape torus in
      let trace = build_trace workload size partition mesh trace_file in
      let capacity = capacity_of trace mesh unbounded in
      describe_instance ?trace_file workload mesh trace capacity;
      (* one context: the bound and all twelve algorithms share its caches *)
      let problem =
        Sched.Problem.of_capacity ?capacity ~jobs ~kernel mesh trace
      in
      let bound = Sched.Bounds.lower_bound_in problem in
      let baseline =
        Sched.Schedule.total_cost
          (Sched.Scheduler.solve problem Sched.Scheduler.Row_wise)
          trace
      in
      List.iter
        (fun algorithm ->
          let schedule = Sched.Scheduler.solve problem algorithm in
          let total = Sched.Schedule.total_cost schedule trace in
          Printf.printf
            "%-16s total=%6d  improvement=%5.1f%%  gap-to-bound=%5.1f%%\n"
            (Sched.Scheduler.name algorithm)
            total
            (Sched.Scheduler.improvement ~baseline ~cost:total)
            (Sched.Bounds.gap ~bound ~cost:total))
        Sched.Scheduler.all;
      Printf.printf "%-16s total=%6d  (sum of per-datum optima)\n"
        "lower-bound" bound;
      if timed then ignore (cycles_table problem mesh trace));
  obs_finish ~command:"compare" ~jobs metrics_json

let run_cycles workload size mesh_shape torus partition unbounded trace_file
    jobs kernel bandwidth flit wormhole queue_depth compute_cycles json_out
    metrics_json =
  obs_begin metrics_json;
  let model =
    try
      Pim.Link_model.create ~bandwidth ~flit ~wormhole ?queue_depth
        ~compute_cycles ()
    with Invalid_argument m -> failwith m
  in
  let mesh = build_mesh mesh_shape torus in
  let trace = build_trace workload size partition mesh trace_file in
  let capacity = capacity_of trace mesh unbounded in
  describe_instance ?trace_file workload mesh trace capacity;
  let problem = Sched.Problem.of_capacity ?capacity ~jobs ~kernel mesh trace in
  let rows, disagreements = cycles_table ~model problem mesh trace in
  (match json_out with
  | Some path ->
      Obs.Json.write_file path
        (Obs.Json.Obj
           [
             ("schema", Obs.Json.String "pim-sched-cycles/1");
             ("workload", Obs.Json.String (workload_to_string workload));
             ( "mesh",
               Obs.Json.String (Format.asprintf "%a" Pim.Mesh.pp mesh) );
             ( "model",
               Obs.Json.String
                 (Format.asprintf "%a" Pim.Link_model.pp model) );
             ("disagreements", Obs.Json.Int disagreements);
             ("rows", Obs.Json.List rows);
           ]);
      Printf.printf "cycle table written to %s\n" path
  | None -> ());
  obs_finish ~command:"cycles" ~jobs metrics_json

let run_table which mesh_shape sizes jobs =
  let mesh = build_mesh mesh_shape false in
  let grouped = which = 2 in
  let algos =
    if grouped then Sched.Scheduler.[ Scds; Lomcds_grouped; Gomcds_grouped ]
    else Sched.Scheduler.[ Scds; Lomcds; Gomcds ]
  in
  let rows =
    List.concat_map
      (fun bench ->
        List.map
          (fun n ->
            let trace = Workloads.Benchmarks.trace bench ~n mesh in
            let capacity = Workloads.Benchmarks.capacity bench ~n mesh in
            let problem =
              Sched.Problem.create
                ~policy:(Sched.Problem.Bounded capacity) ~jobs mesh trace
            in
            let cost algorithm =
              Sched.Schedule.total_cost
                (Sched.Scheduler.solve problem algorithm)
                trace
            in
            let baseline = cost Sched.Scheduler.Row_wise in
            {
              Sched.Report.benchmark = Workloads.Benchmarks.label bench;
              size = Printf.sprintf "%dx%d" n n;
              baseline;
              entries =
                List.map (fun a -> Sched.Report.entry ~baseline (cost a)) algos;
            })
          sizes)
      Workloads.Benchmarks.all
  in
  let title =
    Printf.sprintf
      "Table %d: total communication cost %s grouping (processor array = \
       %dx%d)"
      which
      (if grouped then "after" else "before")
      (Pim.Mesh.rows mesh) (Pim.Mesh.cols mesh)
  in
  print_string
    (Sched.Report.render ~title ~columns:[ "SCDS"; "LOMCDS"; "GOMCDS" ] rows)

let run_example () =
  print_endline "Worked example (paper Section 3.3 / Figure 1):";
  Format.printf "%a@." Reftrace.Trace.pp Sched.Example.trace;
  List.iteri
    (fun i window ->
      Printf.printf "\nwindow %d references of D:\n" i;
      print_string (Sched.Viz.window_heatmap Sched.Example.mesh window ~data:0))
    (Reftrace.Trace.windows Sched.Example.trace);
  print_newline ();
  List.iter
    (fun o -> Format.printf "%a@." Sched.Example.pp_outcome o)
    (Sched.Example.all ())

let run_show workload size mesh_shape torus partition unbounded trace_file
    algorithm window data =
  let mesh = build_mesh mesh_shape torus in
  let trace = build_trace workload size partition mesh trace_file in
  let capacity = capacity_of trace mesh unbounded in
  describe_instance ?trace_file workload mesh trace capacity;
  if window < 0 || window >= Reftrace.Trace.n_windows trace then
    failwith
      (Printf.sprintf "window %d out of range (trace has %d)" window
         (Reftrace.Trace.n_windows trace));
  let w = Reftrace.Trace.window trace window in
  Printf.printf "\ntotal references in window %d:\n" window;
  print_string (Sched.Viz.total_heatmap mesh w);
  (match data with
  | Some d ->
      Printf.printf "\nreferences to datum %d (%s) in window %d:\n" d
        (Reftrace.Data_space.describe (Reftrace.Trace.space trace) d)
        window;
      print_string (Sched.Viz.window_heatmap mesh w ~data:d)
  | None -> ());
  let schedule = Sched.Scheduler.run ?capacity algorithm mesh trace in
  Printf.printf "\n%s data placement (load per processor) in window %d:\n"
    (Sched.Scheduler.name algorithm)
    window;
  print_string (Sched.Viz.load_map mesh schedule ~window);
  match data with
  | Some d ->
      Printf.printf "\ntrajectory of datum %d: %s\n" d
        (Sched.Viz.trajectory mesh schedule ~data:d)
  | None -> ()

let run_profile algorithm workload size mesh_shape torus partition unbounded
    trace_file jobs kernel simulate chrome_out metrics_json =
  Obs.enabled := true;
  Obs.reset ();
  let mesh = build_mesh mesh_shape torus in
  let trace = build_trace workload size partition mesh trace_file in
  let capacity = capacity_of trace mesh unbounded in
  describe_instance ?trace_file workload mesh trace capacity;
  let t0 = Obs.now_us () in
  let problem =
    Sched.Problem.of_capacity ?capacity ~jobs ~kernel mesh trace
  in
  let schedule = Sched.Scheduler.solve problem algorithm in
  let breakdown = Sched.Schedule.cost schedule trace in
  if simulate then begin
    let rounds = Sched.Schedule.to_rounds schedule trace in
    ignore (Pim.Simulator.run mesh rounds);
    ignore (Pim.Timed_simulator.run mesh rounds)
  end;
  let wall_us = Obs.now_us () -. t0 in
  Printf.printf "%-16s total=%6d  reference=%6d  movement=%6d  moves=%d\n"
    (Sched.Scheduler.name algorithm)
    breakdown.Sched.Schedule.total breakdown.Sched.Schedule.reference
    breakdown.Sched.Schedule.movement
    (Sched.Schedule.moves schedule);
  Printf.printf "\nspan tree (wall %.1f ms, jobs=%d):\n" (wall_us /. 1e3) jobs;
  print_string (Obs.Export.flame_summary (Obs.Span.spans ()));
  print_newline ();
  print_string (Obs.Export.metrics_table (Obs.Metrics.snapshot ()));
  (match chrome_out with
  | Some path ->
      Obs.Json.write_file path (Obs.Export.chrome_trace (Obs.Span.spans ()));
      Printf.printf "chrome trace written to %s (load in chrome://tracing)\n"
        path
  | None -> ());
  match metrics_json with
  | Some path ->
      Obs.Json.write_file path
        (Obs.Export.metrics_json
           ~extra:
             [
               ("command", Obs.Json.String "profile");
               ("workload", Obs.Json.String (workload_to_string workload));
               ( "algorithm",
                 Obs.Json.String (Sched.Scheduler.name algorithm) );
               ("jobs", Obs.Json.Int jobs);
               ("wall_ms", Obs.Json.Float (wall_us /. 1e3));
             ]
           (Obs.Metrics.snapshot ()));
      Printf.printf "metrics written to %s\n" path
  | None -> ()

let run_faults_group spec inter_cost array_rate algorithm workload size torus
    partition unbounded trace_file jobs kernel seed rates link_rate at
    json_out =
  let group = build_group spec inter_cost torus in
  let trace = build_group_trace workload size partition group trace_file in
  let capacity = group_capacity_of trace group unbounded in
  describe_group_instance ?trace_file workload group trace capacity;
  let gp =
    Multi.Group_problem.create
      ~policy:(group_policy_of capacity)
      ~jobs ~kernel group trace
  in
  let n_windows = Reftrace.Trace.n_windows trace in
  let at =
    match at with
    | Some w -> w
    | None -> if n_windows <= 1 then 0 else max 1 (n_windows / 2)
  in
  Printf.printf
    "group degradation ablation: %s, faults arrive before window %d (seed \
     %d, array-rate %.3f, link-rate %.3f)\n"
    (Sched.Scheduler.name algorithm)
    at seed array_rate link_rate;
  Printf.printf "%-6s %-6s %-5s %-5s %8s %10s %12s %7s %7s\n" "rate"
    "arrays" "dead" "links" "planned" "rescheduled" "no-resched" "evict"
    "resched";
  let rows =
    List.map
      (fun node_rate ->
        let fault =
          Multi.Group_fault.inject ~seed ~array_rate ~node_rate ~link_rate
            group
        in
        let events = [ { Multi.Group_resilience.window = at; fault } ] in
        let re =
          Multi.Group_resilience.run ~reschedule:true ~events gp algorithm
        and keep =
          Multi.Group_resilience.run ~reschedule:false ~events gp algorithm
        in
        Printf.printf "%-6.3f %-6d %-5d %-5d %8d %10d %12d %7d %7d\n"
          node_rate
          (Multi.Group_fault.n_dead_arrays fault)
          (List.length
             (Pim.Fault.dead_nodes (Multi.Group_fault.node_fault fault)))
          (List.length
             (Pim.Fault.dead_links (Multi.Group_fault.node_fault fault)))
          re.Multi.Group_resilience.planned_cost
          re.Multi.Group_resilience.paid_cost
          keep.Multi.Group_resilience.paid_cost
          re.Multi.Group_resilience.evicted
          re.Multi.Group_resilience.reschedules;
        Obs.Json.Obj
          [
            ("node_rate", Obs.Json.Float node_rate);
            ("array_rate", Obs.Json.Float array_rate);
            ("link_rate", Obs.Json.Float link_rate);
            ( "dead_arrays",
              Obs.Json.Int (Multi.Group_fault.n_dead_arrays fault) );
            ( "dead_nodes",
              Obs.Json.Int
                (List.length
                   (Pim.Fault.dead_nodes (Multi.Group_fault.node_fault fault)))
            );
            ( "planned_cost",
              Obs.Json.Int re.Multi.Group_resilience.planned_cost );
            ( "paid_rescheduled",
              Obs.Json.Int re.Multi.Group_resilience.paid_cost );
            ( "paid_no_reschedule",
              Obs.Json.Int keep.Multi.Group_resilience.paid_cost );
            ("evicted", Obs.Json.Int re.Multi.Group_resilience.evicted);
            ( "evicted_cost",
              Obs.Json.Int re.Multi.Group_resilience.evicted_cost );
            ( "reschedules",
              Obs.Json.Int re.Multi.Group_resilience.reschedules );
          ])
      rates
  in
  match json_out with
  | Some path ->
      Obs.Json.write_file path
        (Obs.Json.Obj
           [
             ("schema", Obs.Json.String "pim-sched-group-faults/1");
             ("algorithm", Obs.Json.String (Sched.Scheduler.name algorithm));
             ("workload", Obs.Json.String (workload_to_string workload));
             ("arrays", Obs.Json.String spec);
             ("inter_cost", Obs.Json.Int inter_cost);
             ("seed", Obs.Json.Int seed);
             ("event_window", Obs.Json.Int at);
             ("rows", Obs.Json.List rows);
           ]);
      Printf.printf "ablation written to %s\n" path
  | None -> ()

let run_faults algorithm workload size mesh_shape torus partition unbounded
    trace_file jobs kernel seed rates link_rate at json_out metrics_json
    arrays inter_cost array_rate =
  obs_begin metrics_json;
  match arrays with
  | Some spec ->
      run_faults_group spec inter_cost array_rate algorithm workload size
        torus partition unbounded trace_file jobs kernel seed rates link_rate
        at json_out;
      obs_finish ~command:"faults" ~jobs metrics_json
  | None ->
  if array_rate <> 0. then failwith "--array-rate requires --arrays";
  let mesh = build_mesh mesh_shape torus in
  let trace = build_trace workload size partition mesh trace_file in
  let capacity = capacity_of trace mesh unbounded in
  describe_instance ?trace_file workload mesh trace capacity;
  let problem =
    Sched.Problem.of_capacity ?capacity ~jobs ~kernel mesh trace
  in
  let n_windows = Reftrace.Trace.n_windows trace in
  let at =
    match at with
    | Some w -> w
    | None -> if n_windows <= 1 then 0 else max 1 (n_windows / 2)
  in
  Printf.printf
    "degradation ablation: %s, faults arrive before window %d (seed %d, \
     link-rate %.3f)\n"
    (Sched.Scheduler.name algorithm)
    at seed link_rate;
  Printf.printf "%-6s %-5s %-5s %8s %10s %12s %7s %8s %7s %7s\n" "rate"
    "dead" "links" "planned" "rescheduled" "no-resched" "evict" "reroute"
    "undeliv" "remap";
  let rows =
    List.map
      (fun node_rate ->
        let fault =
          Pim.Fault.inject ~seed ~node_rate ~link_rate mesh
        in
        let events = [ { Sched.Resilience.window = at; fault } ] in
        let re = Sched.Resilience.run ~reschedule:true ~events problem
            algorithm
        and keep = Sched.Resilience.run ~reschedule:false ~events problem
            algorithm
        in
        Printf.printf "%-6.3f %-5d %-5d %8d %10d %12d %7d %8d %7d %7d\n"
          node_rate
          (Pim.Fault.n_dead_nodes fault)
          (Pim.Fault.n_dead_links fault)
          re.Sched.Resilience.planned_cost re.Sched.Resilience.paid_cost
          keep.Sched.Resilience.paid_cost re.Sched.Resilience.evicted
          re.Sched.Resilience.reroute_hops re.Sched.Resilience.undeliverable
          re.Sched.Resilience.remapped_refs;
        Obs.Json.Obj
          [
            ("node_rate", Obs.Json.Float node_rate);
            ("link_rate", Obs.Json.Float link_rate);
            ("dead_nodes", Obs.Json.Int (Pim.Fault.n_dead_nodes fault));
            ("dead_links", Obs.Json.Int (Pim.Fault.n_dead_links fault));
            ("planned_cost", Obs.Json.Int re.Sched.Resilience.planned_cost);
            ("paid_rescheduled", Obs.Json.Int re.Sched.Resilience.paid_cost);
            ( "paid_no_reschedule",
              Obs.Json.Int keep.Sched.Resilience.paid_cost );
            ("evicted", Obs.Json.Int re.Sched.Resilience.evicted);
            ("evicted_cost", Obs.Json.Int re.Sched.Resilience.evicted_cost);
            ("reroute_hops", Obs.Json.Int re.Sched.Resilience.reroute_hops);
            ("remapped_refs", Obs.Json.Int re.Sched.Resilience.remapped_refs);
            ( "undeliverable",
              Obs.Json.Int re.Sched.Resilience.undeliverable );
            ("reschedules", Obs.Json.Int re.Sched.Resilience.reschedules);
          ])
      rates
  in
  (match json_out with
  | Some path ->
      Obs.Json.write_file path
        (Obs.Json.Obj
           [
             ("schema", Obs.Json.String "pim-sched-faults/1");
             ("algorithm", Obs.Json.String (Sched.Scheduler.name algorithm));
             ("workload", Obs.Json.String (workload_to_string workload));
             ("seed", Obs.Json.Int seed);
             ("event_window", Obs.Json.Int at);
             ("rows", Obs.Json.List rows);
           ]);
      Printf.printf "ablation written to %s\n" path
  | None -> ());
  obs_finish ~command:"faults" ~jobs metrics_json

let run_export workload size mesh_shape torus partition output =
  let mesh = build_mesh mesh_shape torus in
  let trace = build_trace workload size partition mesh None in
  Reftrace.Serial.save trace output;
  Printf.printf "wrote %s (%d windows, %d references) to %s\n"
    (workload_to_string workload)
    (Reftrace.Trace.n_windows trace)
    (Reftrace.Trace.total_references trace)
    output

(* ---------------------------------------------------------------- *)
(* Command definitions                                               *)
(* ---------------------------------------------------------------- *)

let algorithm_arg =
  Arg.(
    value
    & opt algorithm_conv Sched.Scheduler.Gomcds
    & info [ "algorithm"; "a" ] ~docv:"NAME"
        ~doc:
          "One of: row-wise, column-wise, block-2d, cyclic, random, scds, \
           lomcds, gomcds, lomcds-grouped, gomcds-grouped, gomcds-refined, \
           best-refined.")

let schedule_cmd =
  let plan_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "plan-out" ] ~docv:"PATH"
          ~doc:"Serialize the computed schedule to a plan file.")
  in
  Cmd.v
    (Cmd.info "schedule" ~doc:"Run one scheduling algorithm")
    Term.(
      const run_schedule $ workload_arg $ size_arg $ mesh_arg $ torus_arg
      $ partition_arg $ unbounded_arg $ trace_file_arg $ algorithm_arg
      $ jobs_arg $ kernel_arg $ simulate_arg $ plan_out_arg
      $ metrics_json_arg $ arrays_arg $ inter_cost_arg)

let timed_arg =
  Arg.(
    value & flag
    & info [ "timed" ]
        ~doc:
          "Also re-run the comparison on the cycle-honest simulator \
           (degenerate link model) and flag schedulers whose cycle rank \
           disagrees with their hop-volume rank.")

let compare_cmd =
  Cmd.v
    (Cmd.info "compare" ~doc:"Run every algorithm on one instance")
    Term.(
      const run_compare $ workload_arg $ size_arg $ mesh_arg $ torus_arg
      $ partition_arg $ unbounded_arg $ trace_file_arg $ jobs_arg
      $ kernel_arg $ timed_arg $ metrics_json_arg $ arrays_arg
      $ inter_cost_arg)

let cycles_cmd =
  let pos_int_conv =
    let parse s =
      match Cmdliner.Arg.conv_parser Arg.int s with
      | Ok n when n >= 1 -> Ok n
      | Ok n -> Error (`Msg (Printf.sprintf "expected N >= 1, got %d" n))
      | Error _ as e -> e
    in
    Arg.conv (parse, Cmdliner.Arg.conv_printer Arg.int)
  in
  let bandwidth_arg =
    Arg.(
      value & opt pos_int_conv 1
      & info [ "bandwidth" ] ~docv:"N"
          ~doc:"Volume units per link per cycle.")
  in
  let flit_arg =
    Arg.(
      value & opt pos_int_conv 1
      & info [ "flit" ] ~docv:"N"
          ~doc:"Fragment size for wormhole pipelining (with --wormhole).")
  in
  let wormhole_arg =
    Arg.(
      value & flag
      & info [ "wormhole" ]
          ~doc:
            "Pipeline messages as flit-sized fragments instead of \
             store-and-forward whole packets.")
  in
  let queue_depth_arg =
    Arg.(
      value
      & opt (some pos_int_conv) None
      & info [ "queue-depth" ] ~docv:"N"
          ~doc:
            "Bound router input queues at N waiting packets; a full \
             downstream queue stalls the upstream link (default: \
             unbounded).")
  in
  let compute_cycles_arg =
    Arg.(
      value & opt int 0
      & info [ "compute-cycles" ] ~docv:"N"
          ~doc:
            "Node occupancy per reference volume unit executed: a busy rank \
             cannot inject until done (default 0, compute is free).")
  in
  let json_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json-out" ] ~docv:"PATH"
          ~doc:"Write the ranking table as JSON here.")
  in
  Cmd.v
    (Cmd.info "cycles"
       ~doc:
         "Re-run the scheduler comparison on simulated cycles: hop-volume \
          rank vs cycle rank under a configurable link model, disagreements \
          flagged")
    Term.(
      const run_cycles $ workload_arg $ size_arg $ mesh_arg $ torus_arg
      $ partition_arg $ unbounded_arg $ trace_file_arg $ jobs_arg
      $ kernel_arg $ bandwidth_arg $ flit_arg $ wormhole_arg
      $ queue_depth_arg $ compute_cycles_arg $ json_out_arg
      $ metrics_json_arg)

let profile_cmd =
  let algorithm_pos_arg =
    Arg.(
      value
      & pos 0 algorithm_conv Sched.Scheduler.Gomcds
      & info [] ~docv:"ALGORITHM"
          ~doc:"Scheduler to profile (same names as --algorithm).")
  in
  let chrome_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "chrome-out" ] ~docv:"PATH"
          ~doc:
            "Write the span log as Chrome trace_event JSON (load in \
             chrome://tracing or Perfetto).")
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Run one scheduler with the observability layer on; print the \
          span tree and metrics table")
    Term.(
      const run_profile $ algorithm_pos_arg $ workload_arg $ size_arg
      $ mesh_arg $ torus_arg $ partition_arg $ unbounded_arg $ trace_file_arg
      $ jobs_arg $ kernel_arg $ simulate_arg $ chrome_out_arg
      $ metrics_json_arg)

let table_cmd =
  let which_arg =
    Arg.(
      value & opt int 1
      & info [ "which" ] ~docv:"1|2" ~doc:"Which paper table to regenerate.")
  in
  let sizes_arg =
    Arg.(
      value
      & opt (list int) [ 8; 16; 32 ]
      & info [ "sizes" ] ~docv:"N,N,..." ~doc:"Data sizes to sweep.")
  in
  Cmd.v
    (Cmd.info "table" ~doc:"Regenerate paper Table 1 or 2")
    Term.(const run_table $ which_arg $ mesh_arg $ sizes_arg $ jobs_arg)

let example_cmd =
  Cmd.v
    (Cmd.info "example" ~doc:"Print the Section 3.3 worked example")
    Term.(const run_example $ const ())

let show_cmd =
  let window_arg =
    Arg.(
      value & opt int 0
      & info [ "window"; "w" ] ~docv:"I" ~doc:"Execution window to render.")
  in
  let data_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "data"; "d" ] ~docv:"ID" ~doc:"Datum to render in detail.")
  in
  Cmd.v
    (Cmd.info "show" ~doc:"Render heatmaps of a window and a schedule")
    Term.(
      const run_show $ workload_arg $ size_arg $ mesh_arg $ torus_arg
      $ partition_arg $ unbounded_arg $ trace_file_arg $ algorithm_arg
      $ window_arg $ data_arg)

let run_replicate workload size mesh_shape torus partition unbounded
    trace_file max_copies =
  let mesh = build_mesh mesh_shape torus in
  let trace = build_trace workload size partition mesh trace_file in
  let capacity = capacity_of trace mesh unbounded in
  describe_instance ?trace_file workload mesh trace capacity;
  Printf.printf "single-copy lower bound: %d\n"
    (Sched.Bounds.lower_bound_in (Sched.Problem.create mesh trace));
  List.iter
    (fun k ->
      let r = Sched.Replicated.run ?capacity ~max_copies:k mesh trace in
      let c = Sched.Replicated.cost r mesh trace in
      Printf.printf
        "max_copies=%-2d total=%6d (reads %6d + creation %5d + movement %5d)\n"
        k c.Sched.Replicated.total c.Sched.Replicated.reads
        c.Sched.Replicated.creation c.Sched.Replicated.primary_movement)
    (List.sort_uniq Int.compare [ 1; max_copies ])

let replicate_cmd =
  let copies_arg =
    Arg.(
      value & opt int 4
      & info [ "copies"; "k" ] ~docv:"K" ~doc:"Maximum live copies per datum.")
  in
  Cmd.v
    (Cmd.info "replicate"
       ~doc:"Schedule with read replication (write-invalidate coherence)")
    Term.(
      const run_replicate $ workload_arg $ size_arg $ mesh_arg $ torus_arg
      $ partition_arg $ unbounded_arg $ trace_file_arg $ copies_arg)

let faults_cmd =
  let algorithm_pos_arg =
    Arg.(
      value
      & pos 0 algorithm_conv Sched.Scheduler.Gomcds
      & info [] ~docv:"ALGORITHM"
          ~doc:"Scheduler to degrade (same names as --algorithm).")
  in
  let seed_arg =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~docv:"S"
          ~doc:"Fault-injection seed (same seed, same fault sets).")
  in
  let rates_arg =
    Arg.(
      value
      & opt (list float) [ 0.0; 0.05; 0.1; 0.2 ]
      & info [ "rates" ] ~docv:"R,R,..."
          ~doc:"Node fault rates to sweep (fraction of processors killed).")
  in
  let link_rate_arg =
    Arg.(
      value & opt float 0.0
      & info [ "link-rate" ] ~docv:"R"
          ~doc:
            "Link fault rate applied at every sweep point (dead links force \
             detours and downgrade the separable kernel).")
  in
  let at_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "at" ] ~docv:"W"
          ~doc:
            "Window before which the faults strike (default: mid-run, \
             $(b,n_windows / 2)).")
  in
  let json_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json-out" ] ~docv:"PATH"
          ~doc:"Write the ablation table as JSON here.")
  in
  let array_rate_arg =
    Arg.(
      value & opt float 0.0
      & info [ "array-rate" ] ~docv:"R"
          ~doc:
            "Whole-array fault rate applied at every sweep point (requires \
             $(b,--arrays); a dead array's processors stop hosting data but \
             its routers and fabric port stay alive).")
  in
  Cmd.v
    (Cmd.info "faults"
       ~doc:
         "Degradation ablation: inject seeded node/link faults mid-run and \
          compare reschedule-on-failure against riding out the original \
          plan")
    Term.(
      const run_faults $ algorithm_pos_arg $ workload_arg $ size_arg
      $ mesh_arg $ torus_arg $ partition_arg $ unbounded_arg $ trace_file_arg
      $ jobs_arg $ kernel_arg $ seed_arg $ rates_arg $ link_rate_arg $ at_arg
      $ json_out_arg $ metrics_json_arg $ arrays_arg $ inter_cost_arg
      $ array_rate_arg)

let export_cmd =
  let output_arg =
    Arg.(
      value
      & opt string "trace.out"
      & info [ "output"; "o" ] ~docv:"PATH" ~doc:"Destination file.")
  in
  Cmd.v
    (Cmd.info "export-trace" ~doc:"Serialize a workload's reference trace")
    Term.(
      const run_export $ workload_arg $ size_arg $ mesh_arg $ torus_arg
      $ partition_arg $ output_arg)

let run_stats workload size mesh_shape torus partition trace_file =
  let mesh = build_mesh mesh_shape torus in
  let trace = build_trace workload size partition mesh trace_file in
  describe_instance ?trace_file workload mesh trace None;
  let p = Reftrace.Stats.profile mesh trace in
  Format.printf "%a@." Reftrace.Stats.pp_profile p;
  Printf.printf
    "drift > 0 means the hot spots move between windows (multi-center\n\
     scheduling has headroom); reuse is the fraction of per-window datum\n\
     uses that amortize an earlier placement decision.\n"

let stats_cmd =
  Cmd.v
    (Cmd.info "stats" ~doc:"Characterize a workload's reference pattern")
    Term.(
      const run_stats $ workload_arg $ size_arg $ mesh_arg $ torus_arg
      $ partition_arg $ trace_file_arg)

let run_sweep sizes mesh_shape torus output headroom jobs metrics_json =
  obs_begin metrics_json;
  let mesh = build_mesh mesh_shape torus in
  let instances =
    List.concat_map
      (fun bench ->
        List.map
          (fun n ->
            ( Printf.sprintf "b%s-%dx%d" (Workloads.Benchmarks.label bench) n n,
              Workloads.Benchmarks.trace bench ~n mesh ))
          sizes)
      Workloads.Benchmarks.all
  in
  let rows = Sched.Sweep.run ~headroom ~jobs mesh instances Sched.Scheduler.all in
  let csv = Sched.Sweep.to_csv rows in
  (match output with
  | Some path ->
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_string oc csv);
      Printf.printf "wrote %d rows to %s\n" (List.length rows) path
  | None -> print_string csv);
  obs_finish ~command:"sweep" ~jobs metrics_json

let sweep_cmd =
  let sizes_arg =
    Arg.(
      value
      & opt (list int) [ 8; 16 ]
      & info [ "sizes" ] ~docv:"N,N,..." ~doc:"Data sizes to sweep.")
  in
  let output_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "output"; "o" ] ~docv:"PATH"
          ~doc:"Write CSV here instead of stdout.")
  in
  let headroom_arg =
    Arg.(
      value & opt int 2
      & info [ "headroom" ] ~docv:"H"
          ~doc:"Capacity = H x minimum; 0 = unbounded.")
  in
  Cmd.v
    (Cmd.info "sweep" ~doc:"Run all algorithms over the benchmarks, emit CSV")
    Term.(
      const run_sweep $ sizes_arg $ mesh_arg $ torus_arg $ output_arg
      $ headroom_arg $ jobs_arg $ metrics_json_arg)

(* The --failpoints flag wins over the PIMSCHED_FAILPOINTS environment
   variable; either arms the registry before the daemon starts. *)
let arm_failpoints spec_flag =
  let spec =
    match spec_flag with
    | Some s -> Some s
    | None -> Sys.getenv_opt "PIMSCHED_FAILPOINTS"
  in
  match spec with
  | None -> ()
  | Some s -> (
      match Obs.Failpoint.configure s with
      | () -> ()
      | exception Invalid_argument m ->
          prerr_endline ("pimsched: " ^ m);
          exit 2)

let run_serve jobs batch max_arena_mb no_memo max_cache_mb max_line_bytes
    max_queue write_timeout_ms failpoints metrics_json =
  obs_begin metrics_json;
  arm_failpoints failpoints;
  let default = Serve.Server.default_config () in
  let config =
    {
      Serve.Server.jobs;
      batch;
      max_arena_bytes = Option.map (fun mb -> mb * 1024 * 1024) max_arena_mb;
      memo = not no_memo;
      max_cache_bytes =
        (match max_cache_mb with
        | None -> default.Serve.Server.max_cache_bytes
        | Some mb -> mb * 1024 * 1024);
      max_line_bytes =
        Option.value max_line_bytes
          ~default:default.Serve.Server.max_line_bytes;
      max_queue = Option.value max_queue ~default:default.Serve.Server.max_queue;
      write_timeout_ms =
        Option.value write_timeout_ms
          ~default:default.Serve.Server.write_timeout_ms;
    }
  in
  let server = Serve.Server.create ~config () in
  Serve.Server.run server ~input:Unix.stdin ~output:Unix.stdout;
  obs_finish ~to_stderr:true ~command:"serve" ~jobs metrics_json

let serve_cmd =
  let batch_arg =
    Arg.(
      value & opt int 16
      & info [ "batch" ] ~docv:"N"
          ~doc:"Maximum requests answered per wave of the domain pool.")
  in
  let max_arena_mb_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-arena-mb" ] ~docv:"MB"
          ~doc:
            "Reject requests whose cost arenas would exceed this budget \
             (admission control); unlimited when absent.")
  in
  let no_memo_arg =
    Arg.(
      value & flag
      & info [ "no-memo" ]
          ~doc:"Disable the response memo keyed by raw request line.")
  in
  let max_cache_mb_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-cache-mb" ] ~docv:"MB"
          ~doc:
            "Byte budget shared by the context, memo and warm-session \
             caches (default 256); 0 disables caching.")
  in
  let max_line_bytes_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-line-bytes" ] ~docv:"BYTES"
          ~doc:
            "Reject request lines longer than this with a typed \
             parse-error (default 4 MiB).")
  in
  let max_queue_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-queue" ] ~docv:"N"
          ~doc:
            "Shed buffered backlog beyond N request lines with typed \
             overloaded responses (default 1024).")
  in
  let write_timeout_ms_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "write-timeout-ms" ] ~docv:"MS"
          ~doc:
            "Per-response write budget before a slow-reading client is \
             dropped (default 5000).")
  in
  let failpoints_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "failpoints" ] ~docv:"SPEC"
          ~doc:
            "Arm deterministic failpoints, e.g. \
             'serve.solve=raise,n=1;serve.read=short_read'. Overrides \
             \\$(b,PIMSCHED_FAILPOINTS).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run a long-lived scheduling daemon over stdin/stdout \
          (line-delimited JSON, protocol pim-sched-serve/1)")
    Term.(
      const run_serve $ jobs_arg $ batch_arg $ max_arena_mb_arg $ no_memo_arg
      $ max_cache_mb_arg $ max_line_bytes_arg $ max_queue_arg
      $ write_timeout_ms_arg $ failpoints_arg $ metrics_json_arg)

let run_chaos seed jobs requests script_file json_out =
  let script =
    Option.map
      (fun path ->
        let ic = open_in path in
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () ->
            let rec go acc =
              match input_line ic with
              | line -> go (if String.trim line = "" then acc else line :: acc)
              | exception End_of_file -> List.rev acc
            in
            go []))
      script_file
  in
  let pass, report = Serve.Chaos.run ~seed ~jobs ~requests ?script () in
  (match json_out with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () ->
          output_string oc (Obs.Json.to_string report);
          output_char oc '\n'));
  (match report with
  | Obs.Json.Obj fields -> (
      match List.assoc_opt "episodes" fields with
      | Some (Obs.Json.List eps) ->
          List.iter
            (fun ep ->
              match ep with
              | Obs.Json.Obj f ->
                  let str k =
                    match List.assoc_opt k f with
                    | Some (Obs.Json.String s) -> s
                    | _ -> "?"
                  in
                  let int k =
                    match List.assoc_opt k f with
                    | Some (Obs.Json.Int i) -> i
                    | _ -> 0
                  in
                  let ok =
                    match List.assoc_opt "pass" f with
                    | Some (Obs.Json.Bool true) -> "ok  "
                    | _ -> "FAIL"
                  in
                  Printf.printf "%s %-13s %3d req  %3d ok\n" ok
                    (str "episode") (int "requests") (int "ok");
                  (match List.assoc_opt "failures" f with
                  | Some (Obs.Json.List ms) ->
                      List.iter
                        (function
                          | Obs.Json.String m ->
                              Printf.printf "       - %s\n" m
                          | _ -> ())
                        ms
                  | _ -> ())
              | _ -> ())
            eps
      | _ -> ())
  | _ -> ());
  Printf.printf "chaos %s (seed %d)\n" (if pass then "PASS" else "FAIL") seed;
  if not pass then exit 1

let chaos_cmd =
  let seed_arg =
    Arg.(
      value & opt int 0
      & info [ "seed" ] ~docv:"S"
          ~doc:"Seed for the probabilistic failpoint schedules.")
  in
  let requests_arg =
    Arg.(
      value & opt int 20
      & info [ "requests" ] ~docv:"N"
          ~doc:"Length of the generated default script.")
  in
  let script_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "script" ] ~docv:"PATH"
          ~doc:
            "Replay this file of request lines (one JSON request per \
             line) instead of the generated LU 16x16 script.")
  in
  let json_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json-out" ] ~docv:"PATH"
          ~doc:"Write the chaos report (chaos.json) here.")
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Replay a request script through the serve daemon under a \
          seeded failpoint schedule and check its hardening invariants")
    Term.(
      const run_chaos $ seed_arg $ jobs_arg $ requests_arg $ script_arg
      $ json_out_arg)

let main =
  Cmd.group
    (Cmd.info "pimsched" ~version:"1.0.0"
       ~doc:"Data scheduling on Processor-In-Memory arrays (IPPS 1998)")
    [
      schedule_cmd;
      compare_cmd;
      cycles_cmd;
      profile_cmd;
      table_cmd;
      example_cmd;
      show_cmd;
      replicate_cmd;
      faults_cmd;
      export_cmd;
      sweep_cmd;
      stats_cmd;
      serve_cmd;
      chaos_cmd;
    ]

let () = exit (Cmd.eval main)
