(** Iterative schedule refinement under memory capacity (our extension).

    Capacity forces every constructive scheduler into greedy commitments:
    GOMCDS routes whole per-datum trajectories heaviest-first, so a late
    datum can find its best (window, processor) slots taken by data that
    needed them less. This pass repairs such artifacts: repeatedly pick a
    datum, lift its trajectory out of the occupancy tables, re-route it with
    the capacity-filtered shortest-path DP against the remaining data, and
    keep the result if strictly cheaper. Each accepted move strictly lowers
    the schedule cost, so the loop terminates; a full sweep with no
    improvement is a fixed point.

    With an unbounded policy the pass is still valid (it just re-runs the
    unconstrained DP per datum) and leaves any GOMCDS schedule unchanged. *)

type stats = {
  sweeps : int;  (** full passes over the data performed *)
  improved : int;  (** trajectories replaced *)
  saved : int;  (** total cost removed *)
}

(** [refine ?max_sweeps problem schedule] refines a copy of [schedule] (the
    input is not mutated) against [problem]'s capacity policy and reports
    what changed. Every sweep re-reads the context's cached cost vectors,
    so refining several seeds on one context prices each vector once.
    [max_sweeps] defaults to 8 — in practice a fixed point is reached in
    2–3.
    @raise Invalid_argument if [schedule] violates the capacity policy to
    begin with, or if shapes disagree with the trace. *)
val refine :
  ?max_sweeps:int -> Problem.t -> Schedule.t -> Schedule.t * stats

(** [refined problem] is GOMCDS followed by {!refine} to a fixed point. *)
val refined : Problem.t -> Schedule.t

(** [best_schedule problem] is the portfolio flagship: it refines each of
    GOMCDS, LOMCDS and both grouping variants to a fixed point and returns
    the cheapest result. Under capacity the four constructions fall into
    different local optima (each is per-datum optimal given the others'
    placements), so refining several seeds is markedly stronger than
    refining any single one — see bench ablation A4. All four seeds share
    the context's cost-vector cache. *)
val best_schedule : Problem.t -> Schedule.t

