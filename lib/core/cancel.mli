(** Cooperative cancellation for request-scoped solves.

    A [Cancel.t] is a deadline on the monotonic clock plus an explicit
    abort flag, threaded into a {!Problem} session
    ({!Problem.set_cancel}) so the per-datum fill and solve loops can
    poll it: an expired or cancelled token makes the next poll raise
    {!Expired}, which unwinds the solve and frees the domain instead of
    letting an abandoned request occupy it to completion. Polls are
    cheap — a float compare against the {!none} token, one
    monotonic-clock read (tens of nanoseconds) against an armed one —
    and sit at per-datum granularity, so a solve overruns its deadline
    by at most one datum's work.

    A session whose solve raised {!Expired} has internally consistent
    but partially filled caches; discard it (the serve path drops the
    warm-pool entry) rather than reusing it under a fresh token. *)

type t

exception Expired
(** Raised by {!check} once the deadline has passed or {!cancel} was
    called. *)

(** [none] never expires — the token every session starts with. *)
val none : t

(** [after ~budget_ms] is a token expiring [budget_ms] milliseconds
    from now on the monotonic clock ({!Obs.Clock}); a non-positive
    budget is already expired. *)
val after : budget_ms:float -> t

(** [cancel t] aborts [t] explicitly: every subsequent {!check} raises,
    every {!expired} is [true]. [cancel none] is forbidden.
    @raise Invalid_argument on [none]. *)
val cancel : t -> unit

(** [expired t] is [true] once the deadline passed or [cancel] ran. *)
val expired : t -> bool

(** [check t] raises {!Expired} iff [expired t]. The poll the solve
    loops call. *)
val check : t -> unit
