(** The paper's "processor list" device for bounded memories.

    Each datum gets the list of all processors sorted by ascending
    communication cost (Algorithm 1, lines 5–7); when the optimal center is
    full, the datum goes to the first processor in the list with a free
    slot. Ties break on the smaller rank so schedules are deterministic. *)

(** [of_costs ~n cost] sorts ranks [0 .. n-1] by [(cost rank, rank)]
    ascending. The callback form lets {!Sched.Problem} build lists straight
    off an arena row without copying the vector out first. Dense cost
    ranges (≤ 4n + 1024) take a stable counting pass instead of a
    comparison sort; both orders are identical, including ties. *)
val of_costs : n:int -> (int -> int) -> int list

(** [of_cost_vector v] is [of_costs] over an explicit vector. *)
val of_cost_vector : int array -> int list

(** [for_data mesh window ~data] is the candidate list for [data] under
    [window]'s reference string. *)
val for_data : Pim.Mesh.t -> Reftrace.Window.t -> data:int -> int list

(** [first_available memory list] is the first rank in [list] with a free
    slot — without allocating. [None] if every listed rank is full. *)
val first_available : Pim.Memory.t -> int list -> int option

(** [assign memory list] allocates a slot at the first available rank and
    returns it. @raise Failure if every rank in [list] is full (cannot
    happen when total data ≤ capacity × processors and the list is
    complete). *)
val assign : Pim.Memory.t -> int list -> int
