let lower_bound_in problem =
  let space = Problem.space problem in
  (* one independent DP per datum: fan out, merge by index *)
  let costs =
    Engine.map
      ~jobs:(Problem.jobs problem)
      (Problem.n_data problem)
      (fun data ->
        Reftrace.Data_space.volume_of space data
        * fst (Option.get (Problem.solve_datum problem ~data)))
  in
  Array.fold_left ( + ) 0 costs

let static_lower_bound_in problem =
  let space = Problem.space problem in
  let costs =
    Engine.map
      ~jobs:(Problem.jobs problem)
      (Problem.n_data problem)
      (fun data ->
        let v = Problem.merged_vector problem ~data in
        Reftrace.Data_space.volume_of space data
        * Array.fold_left min max_int v)
  in
  Array.fold_left ( + ) 0 costs

let gap ~bound ~cost =
  if bound = 0 then 0.
  else float_of_int (cost - bound) /. float_of_int bound *. 100.
