(** Single-Center Data Scheduling (paper Algorithm 1).

    All execution windows are merged into one; each datum is placed at the
    processor minimizing its total communication cost over the whole
    execution and never moves. With bounded memory, the per-datum processor
    list supplies the first available fallback. *)

(** [schedule problem] computes the SCDS schedule on a shared {!Problem.t}
    context. Candidate processor lists are filled on the context's domain
    pool; the capacity-respecting allocation itself runs serially, heaviest
    datum first, so the result is identical at every [jobs] setting.
    @raise Invalid_argument if the capacity policy is infeasible
    ([capacity * size mesh < n_data]). *)
val schedule : Problem.t -> Schedule.t

(** [placement problem] is the underlying static placement array
    ([placement.(data) = rank]). *)
val placement : Problem.t -> int array

(** [center_of problem ~data] is just the chosen center of one datum —
    rank of the first processor in its (capacity-respecting) processor
    list. Exposed for the worked example and tests. *)
val center_of : Problem.t -> data:int -> int
