let of_costs ~n cost =
  let ranks = List.init n Fun.id in
  List.sort
    (fun a b ->
      let c = Int.compare (cost a) (cost b) in
      if c <> 0 then c else Int.compare a b)
    ranks

let of_cost_vector v = of_costs ~n:(Array.length v) (Array.get v)

let for_data mesh window ~data =
  of_cost_vector (Cost.cost_vector mesh window ~data)

let first_available memory list =
  List.find_opt (fun rank -> not (Pim.Memory.is_full memory rank)) list

let assign memory list =
  match first_available memory list with
  | Some rank ->
      let ok = Pim.Memory.allocate memory rank in
      assert ok;
      rank
  | None -> failwith "Processor_list.assign: all candidate processors full"
