(* Costs are dense small ints in practice (distance-weighted reference
   sums over a bounded mesh), so a stable counting pass replaces the
   comparison sort on the hot path: two O(n + range) scans, no closure
   calls or cons churn inside the sort. Filling in ascending rank order
   preserves the (cost, rank) tie order the comparison sort pins. Wide
   ranges (e.g. rows holding the unreachable sentinel) fall back to the
   comparison sort. *)
let of_costs ~n cost =
  if n = 0 then []
  else begin
    let costs = Array.init n cost in
    let lo = ref costs.(0) and hi = ref costs.(0) in
    for r = 1 to n - 1 do
      let c = costs.(r) in
      if c < !lo then lo := c;
      if c > !hi then hi := c
    done;
    let range = !hi - !lo + 1 in
    if range <= (4 * n) + 1024 then begin
      let start = Array.make (range + 1) 0 in
      for r = 0 to n - 1 do
        let c = costs.(r) - !lo in
        start.(c + 1) <- start.(c + 1) + 1
      done;
      for c = 1 to range do
        start.(c) <- start.(c) + start.(c - 1)
      done;
      let out = Array.make n 0 in
      for r = 0 to n - 1 do
        let c = costs.(r) - !lo in
        out.(start.(c)) <- r;
        start.(c) <- start.(c) + 1
      done;
      Array.to_list out
    end
    else
      List.sort
        (fun a b ->
          let c = Int.compare costs.(a) costs.(b) in
          if c <> 0 then c else Int.compare a b)
        (List.init n Fun.id)
  end

let of_cost_vector v = of_costs ~n:(Array.length v) (Array.get v)

let for_data mesh window ~data =
  of_cost_vector (Cost.cost_vector mesh window ~data)

let first_available memory list =
  List.find_opt (fun rank -> not (Pim.Memory.is_full memory rank)) list

let assign memory list =
  match first_available memory list with
  | Some rank ->
      let ok = Pim.Memory.allocate memory rank in
      assert ok;
      rank
  | None -> failwith "Processor_list.assign: all candidate processors full"
