(** Execution-window grouping (paper Algorithm 3).

    Per datum, consecutive execution windows are greedily merged into larger
    windows as long as the total communication cost (reference + movement)
    does not increase; the datum then sits at the merged window's center for
    the group's whole span. Grouping is computed over the subsequence of
    windows that actually reference the datum — windows that don't cannot
    change its cost and never force movement.

    Reference cost is linear in reference profiles, so a group's cost vector
    is the sum of its members' cost vectors; each greedy extension is O(m).

    Two center policies:
    - [`Local] — the merged window's local optimal center (the paper's
      Table 2 configuration, "Algorithm 3 assuming using LOMCDS to compute
      centers");
    - [`Global] — after the partition is fixed, centers are re-optimized by
      the GOMCDS shortest-path DP over the merged windows (our extension,
      benchmarked as an ablation). *)

type center_policy = [ `Local | `Global ]

type group = {
  first : int;  (** first original window index of the group *)
  last : int;  (** last original window index (inclusive) *)
  center : int;  (** processor holding the datum for the group's span *)
}

(** [groups problem ~data ~centers] runs the greedy Algorithm 3 for one
    datum on a shared {!Problem.t} (cost vectors cached, distances from the
    table) and returns its groups in execution order; the empty list when
    the datum is never referenced. *)
val groups :
  Problem.t -> data:int -> centers:center_policy -> group list

(** [schedule ?centers problem] builds the full schedule; per-datum
    partitions fan out across the context's domain pool, gaps keep data in
    place, and a bounded policy is repaired by a serial per-window
    processor-list pass that keeps each datum as close to its desired
    center as possible — identical output at every [jobs] setting.
    [centers] defaults to [`Local].
    @raise Invalid_argument if the capacity policy is infeasible. *)
val schedule : ?centers:center_policy -> Problem.t -> Schedule.t

(** [optimal_groups problem ~data] replaces the paper's greedy with an
    exact dynamic program: over all ways to cut the datum's referenced
    windows into consecutive groups {e and} all choices of one center per
    group, it minimizes Σ group reference cost + movement between
    consecutive group centers. State = (windows covered, last group's
    center); O(w² · m²) per datum thanks to the linearity of cost vectors.
    The paper remarks that "exhaustively finding all possible choices of
    grouping may be costly" — this shows polynomial suffices. It also makes
    a structural fact testable: a group of [k] windows at center [c] is the
    same trajectory as staying at [c] for [k] windows, so optimal grouping
    attains {e exactly} the per-datum GOMCDS optimum (the all-singleton
    partition with free centers is in its search space, and no partition
    can beat a free trajectory). Grouping's practical value is therefore as
    a cheap repair of LOMCDS's center-chasing — which is how the paper's
    Table 2 uses it. Returns groups like {!groups}. *)
val optimal_groups : Problem.t -> data:int -> group list

(** [optimal_schedule problem] builds the schedule from {!optimal_groups}
    for every datum (capacity handled like {!schedule}). *)
val optimal_schedule : Problem.t -> Schedule.t

