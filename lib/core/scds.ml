let placement problem =
  Problem.check_feasible problem ~who:"Scds.schedule";
  match Problem.policy problem with
  | Problem.Unbounded ->
      (* Vector-free fast path: with unbounded memories [assign] always
         takes the head of the processor list, which is exactly the
         lowest-rank cost argmin — so each datum's center is
         [merged_optimal_center] (O(cols + rows) from marginals under the
         separable kernel), no vector or candidate list needed. Per-datum
         and order-free, so it fans out across the pool. *)
      Engine.map ~jobs:(Problem.jobs problem) (Problem.n_data problem)
        (fun data -> Problem.merged_optimal_center problem ~data)
  | Problem.Bounded _ ->
      (* parallel phase: merged-window processor lists, one row per datum *)
      Problem.prefetch_merged problem;
      (* serial phase: heaviest-first allocation, identical at any jobs
         count *)
      let memory = Problem.fresh_memory problem in
      let result = Array.make (Problem.n_data problem) 0 in
      List.iter
        (fun data ->
          result.(data) <-
            Processor_list.assign memory
              (Problem.merged_candidates problem ~data))
        (Problem.by_total_references problem);
      result

let schedule problem =
  Schedule.constant (Problem.mesh problem)
    ~n_windows:(Problem.n_windows problem)
    (placement problem)

let center_of problem ~data = (placement problem).(data)
