let validate_initial mesh ~n_data initial =
  if Array.length initial <> n_data then
    invalid_arg
      (Printf.sprintf "Adapt: initial placement has %d entries for %d data"
         (Array.length initial) n_data);
  Array.iteri
    (fun d rank ->
      if rank < 0 || rank >= Pim.Mesh.size mesh then
        invalid_arg
          (Printf.sprintf "Adapt: datum %d starts at invalid rank %d" d rank))
    initial

(* The GOMCDS problem with the entry cost augmented by the migration from
   the imposed location into the window-0 center. *)
let problem_from mesh trace ~data ~start =
  let p = Gomcds.cost_problem mesh trace ~data in
  {
    p with
    Pathgraph.Layered.enter_cost =
      (fun j -> Pim.Mesh.distance mesh start j + p.Pathgraph.Layered.enter_cost j);
  }

let run ?capacity ~initial mesh trace =
  let n_data = Reftrace.Data_space.size (Reftrace.Trace.space trace) in
  let n_windows = Reftrace.Trace.n_windows trace in
  validate_initial mesh ~n_data initial;
  let schedule = Schedule.create mesh ~n_windows ~n_data in
  let memories =
    match capacity with
    | None -> None
    | Some c ->
        if c * Pim.Mesh.size mesh < n_data then
          invalid_arg
            (Printf.sprintf
               "Adapt.run: %d data cannot fit in %d processors of capacity %d"
               n_data (Pim.Mesh.size mesh) c);
        Some
          (Array.init n_windows (fun _ -> Pim.Memory.create mesh ~capacity:c))
  in
  List.iter
    (fun data ->
      let p = problem_from mesh trace ~data ~start:initial.(data) in
      let centers =
        match memories with
        | None -> snd (Pathgraph.Layered.solve p)
        | Some mems ->
            let allowed ~layer j = not (Pim.Memory.is_full mems.(layer) j) in
            let result = Pathgraph.Layered.solve_filtered p ~allowed in
            let _, centers = Option.get result in
            Array.iteri
              (fun layer rank ->
                let ok = Pim.Memory.allocate mems.(layer) rank in
                assert ok)
              centers;
            centers
      in
      Array.iteri
        (fun w rank -> Schedule.set_center schedule ~window:w ~data rank)
        centers)
    (Ordering.by_total_references trace);
  schedule

let from_row_wise ?capacity mesh trace =
  let initial = Baseline.row_wise mesh (Reftrace.Trace.space trace) in
  run ?capacity ~initial mesh trace

type recovery = {
  imposed_static : int;
  adaptive : int;
  free_optimal : int;
  recovered : float;
}

(* Cost of never moving: the imposed placement run statically, PLUS no
   initial migration (the data are already there). *)
let static_cost mesh trace initial =
  let space = Reftrace.Trace.space trace in
  let total = ref 0 in
  List.iter
    (fun window ->
      List.iter
        (fun data ->
          total :=
            !total
            + Reftrace.Data_space.volume_of space data
              * Cost.reference_cost mesh window ~data ~center:initial.(data))
        (Reftrace.Window.referenced_data window))
    (Reftrace.Trace.windows trace);
  !total

let adaptive_cost mesh trace initial schedule =
  (* total schedule cost plus the charged migration out of the imposed
     placement into window 0 *)
  let space = Reftrace.Trace.space trace in
  let base = Schedule.total_cost schedule trace in
  let entry = ref 0 in
  for data = 0 to Schedule.n_data schedule - 1 do
    entry :=
      !entry
      + Reftrace.Data_space.volume_of space data
        * Pim.Mesh.distance mesh initial.(data)
            (Schedule.center schedule ~window:0 ~data)
  done;
  base + !entry

let recovery ?capacity ~initial mesh trace =
  let n_data = Reftrace.Data_space.size (Reftrace.Trace.space trace) in
  validate_initial mesh ~n_data initial;
  let imposed_static = static_cost mesh trace initial in
  let schedule = run ?capacity ~initial mesh trace in
  let adaptive = adaptive_cost mesh trace initial schedule in
  let free_optimal = Bounds.lower_bound_in (Problem.create mesh trace) in
  let recovered =
    let headroom = imposed_static - free_optimal in
    if headroom <= 0 then 1.
    else float_of_int (imposed_static - adaptive) /. float_of_int headroom
  in
  { imposed_static; adaptive; free_optimal; recovered }
