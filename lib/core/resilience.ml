type event = { window : int; fault : Pim.Fault.t }

type report = {
  algorithm : Scheduler.algorithm;
  reschedule : bool;
  planned_cost : int;
  reference_cost : int;
  movement_cost : int;
  paid_cost : int;
  evicted : int;
  evicted_cost : int;
  reroute_hops : int;
  remapped_refs : int;
  undeliverable : int;
  reschedules : int;
}

let hit name n = if !Obs.enabled then Obs.Metrics.add name n

(* Nearest alive rank by (healthy grid distance, rank) — routers outlive
   compute, so grid closeness is the right repair metric even when the
   rank itself is dead. *)
let repair_map mesh fault =
  let size = Pim.Mesh.size mesh in
  let alive = Array.make size true in
  List.iter (fun r -> alive.(r) <- false) (Pim.Fault.dead_nodes fault);
  Array.init size (fun r ->
      if alive.(r) then r
      else begin
        let best = ref (-1) in
        for c = 0 to size - 1 do
          if alive.(c) then
            match !best with
            | -1 -> best := c
            | b ->
                let db = Pim.Mesh.distance mesh r b
                and dc = Pim.Mesh.distance mesh r c in
                if dc < db then best := c
        done;
        !best
      end)

let plan_of schedule =
  Array.init (Schedule.n_windows schedule) (fun w ->
      Array.init (Schedule.n_data schedule) (fun d ->
          Schedule.center schedule ~window:w ~data:d))

(* Price datum [d]'s continuation [first..n-1] of [plan] from [from_pos]
   on the degraded array — the exact accounting the executor below
   charges, with unreachable messages priced at the sentinel so
   trajectories that strand data lose the comparison. The continuation
   price is separable across data (no cross-datum terms), so
   adopt-vs-keep can be decided per datum. *)
let price_datum problem ~oracle ~repair ~windows ~volume ~plan ~from_pos
    ~first d =
  let n_windows = Array.length plan in
  let dist src dst =
    match oracle with
    | None -> Problem.distance problem src dst
    | Some o -> (
        match Pim.Fault.Oracle.distance o ~src ~dst with
        | Some dd -> dd
        | None -> Problem.unreachable_cost)
  in
  let total = ref 0 in
  (* before the very first window data have no position: placement free *)
  let pos = ref (Option.map (fun p -> p.(d)) from_pos) in
  for w = first to n_windows - 1 do
    let c = plan.(w).(d) in
    (match !pos with
    | Some p when p <> c -> total := !total + (volume.(d) * dist p c)
    | Some _ | None -> ());
    pos := Some c;
    List.iter
      (fun (proc, count) ->
        let proc = repair.(proc) in
        if proc <> c then total := !total + (volume.(d) * count * dist c proc))
      (Reftrace.Window.profile windows.(w) d)
  done;
  !total

let run ?(reschedule = true) ?(events = []) problem algorithm =
  Obs.Span.with_ ~name:"resilience.run" @@ fun () ->
  let mesh = Problem.mesh problem in
  let trace = Problem.trace problem in
  let n_windows = Problem.n_windows problem in
  let n_data = Problem.n_data problem in
  let space = Problem.space problem in
  let volume = Array.init n_data (Reftrace.Data_space.volume_of space) in
  let windows = Array.of_list (Reftrace.Trace.windows trace) in
  List.iter
    (fun { window; fault } ->
      if window < 0 || window >= n_windows then
        invalid_arg
          (Printf.sprintf "Resilience.run: event window %d out of [0, %d)"
             window n_windows);
      Pim.Fault.validate fault mesh)
    events;
  let initial = Scheduler.solve problem algorithm in
  let planned_cost = Schedule.total_cost initial trace in
  let plan = plan_of initial in
  (* mutable execution state *)
  let cur_fault = ref (Problem.fault problem) in
  let cur_problem = ref problem in
  let oracle = ref None in
  let repair = ref (Array.init (Pim.Mesh.size mesh) Fun.id) in
  let pos = ref None in
  let reference_cost = ref 0
  and movement_cost = ref 0
  and evicted = ref 0
  and evicted_cost = ref 0
  and reroute_hops = ref 0
  and remapped_refs = ref 0
  and undeliverable = ref 0
  and reschedules = ref 0 in
  let healthy_dist = Pim.Mesh.distance mesh in
  let fault_dist src dst =
    match !oracle with
    | None -> Some (healthy_dist src dst)
    | Some o -> Pim.Fault.Oracle.distance o ~src ~dst
  in
  for w = 0 to n_windows - 1 do
    (* 1. activate this window's failures *)
    let arrived =
      List.filter_map
        (fun e -> if e.window = w then Some e.fault else None)
        events
    in
    if arrived <> [] then begin
      let f = List.fold_left Pim.Fault.union !cur_fault arrived in
      cur_fault := f;
      (* patch the running session instead of opening a cold one: faults
         only accumulate here, so only rows the new fault actually
         repriced are refilled — a pure node-fault event reuses every
         slab row of the previous session *)
      cur_problem := Problem.with_fault_patch !cur_problem f;
      oracle :=
        (if Pim.Fault.is_none f then None
         else Some (Pim.Fault.Oracle.create mesh f));
      repair := repair_map mesh f;
      (* 2. evict data physically sitting on freshly dead ranks *)
      (match !pos with
      | None -> ()
      | Some pos ->
          for d = 0 to n_data - 1 do
            let p = pos.(d) in
            if not (Pim.Fault.node_dead f p) then ()
            else begin
              let dst = !repair.(p) in
              let c =
                match fault_dist p dst with
                | Some dist -> volume.(d) * dist
                | None -> 0 (* memory lost with its partition *)
              in
              incr evicted;
              evicted_cost := !evicted_cost + c;
              movement_cost := !movement_cost + c;
              pos.(d) <- dst
            end
          done);
      (* 3. repair the remaining plan: no planned center may be dead *)
      for w' = w to n_windows - 1 do
        for d = 0 to n_data - 1 do
          plan.(w').(d) <- !repair.(plan.(w').(d))
        done
      done;
      (* 4. reschedule-on-failure: re-solve the degraded problem, then
         merge per datum — each datum keeps whichever continuation
         (re-solved or repaired) prices cheaper. The price is separable
         across data, so the merge is never worse than riding out the
         repaired plan and wins whenever the re-solve improves any single
         datum. *)
      if reschedule then begin
        let candidate = plan_of (Scheduler.solve !cur_problem algorithm) in
        let price p d =
          price_datum !cur_problem ~oracle:!oracle ~repair:!repair ~windows
            ~volume ~plan:p ~from_pos:!pos ~first:w d
        in
        let adopted = ref 0 in
        for d = 0 to n_data - 1 do
          if price candidate d < price plan d then begin
            incr adopted;
            for w' = w to n_windows - 1 do
              plan.(w').(d) <- candidate.(w').(d)
            done
          end
        done;
        if !adopted > 0 then incr reschedules
      end
    end;
    (* 5. migrate into this window's centers (initial placement is free) *)
    (match !pos with
    | None -> pos := Some (Array.copy plan.(w))
    | Some pos ->
        for d = 0 to n_data - 1 do
          let src = pos.(d) and dst = plan.(w).(d) in
          if src <> dst then begin
            match fault_dist src dst with
            | Some dist ->
                movement_cost := !movement_cost + (volume.(d) * dist);
                reroute_hops := !reroute_hops + (dist - healthy_dist src dst);
                pos.(d) <- dst
            | None -> incr undeliverable (* stranded: datum stays put *)
          end
        done);
    let pos = Option.get !pos in
    (* 6. serve this window's references from wherever data actually are *)
    List.iter
      (fun d ->
        let c = pos.(d) in
        List.iter
          (fun (proc, count) ->
            let dst = !repair.(proc) in
            if dst <> proc then remapped_refs := !remapped_refs + count;
            if dst <> c then begin
              match fault_dist c dst with
              | Some dist ->
                  reference_cost :=
                    !reference_cost + (volume.(d) * count * dist);
                  reroute_hops :=
                    !reroute_hops + (count * (dist - healthy_dist c dst))
              | None -> undeliverable := !undeliverable + count
            end)
          (Reftrace.Window.profile windows.(w) d))
      (Reftrace.Window.referenced_data windows.(w))
  done;
  hit "resilience.evictions" !evicted;
  hit "resilience.reschedules" !reschedules;
  hit "resilience.undeliverable" !undeliverable;
  hit "resilience.reroute_hops" !reroute_hops;
  {
    algorithm;
    reschedule;
    planned_cost;
    reference_cost = !reference_cost;
    movement_cost = !movement_cost;
    paid_cost = !reference_cost + !movement_cost;
    evicted = !evicted;
    evicted_cost = !evicted_cost;
    reroute_hops = !reroute_hops;
    remapped_refs = !remapped_refs;
    undeliverable = !undeliverable;
    reschedules = !reschedules;
  }

let pp_report fmt r =
  Format.fprintf fmt
    "resilience(%s%s: planned=%d paid=%d (ref=%d, move=%d) evicted=%d/%d \
     reroute=%d remapped=%d undeliverable=%d reschedules=%d)"
    (Scheduler.name r.algorithm)
    (if r.reschedule then "" else ", no-reschedule")
    r.planned_cost r.paid_cost r.reference_cost r.movement_cost r.evicted
    r.evicted_cost r.reroute_hops r.remapped_refs r.undeliverable
    r.reschedules
