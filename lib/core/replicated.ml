type t = {
  copies : int list array array; (* copies.(w).(d), primary first *)
  creations : (int * int) list array array;
      (* creations.(w).(d): charged copy-creation transfers (src, dst) *)
}

let n_windows t = Array.length t.copies
let n_data t = Array.length t.copies.(0)

let copies t ~window ~data =
  if window < 0 || window >= n_windows t then
    invalid_arg "Replicated.copies: window out of range";
  if data < 0 || data >= n_data t then
    invalid_arg "Replicated.copies: data out of range";
  t.copies.(window).(data)

(* Nearest member of [set] to [proc]: minimal distance, lowest rank on
   ties. Sets are tiny (<= max_copies). *)
let nearest mesh set proc =
  match set with
  | [] -> invalid_arg "Replicated.nearest: empty copy set"
  | first :: rest ->
      List.fold_left
        (fun best r ->
          let db = Pim.Mesh.distance mesh best proc
          and dr = Pim.Mesh.distance mesh r proc in
          if dr < db || (dr = db && r < best) then r else best)
        first rest

(* Nearest-copy read cost of a kind's profile, folded straight off the
   window (iteration order does not matter for a sum). *)
let kind_cost mesh set ~kind window data =
  let acc = ref 0 in
  Reftrace.Window.iter_kind_profile ~kind window data (fun ~proc ~count ->
      acc := !acc + (count * Pim.Mesh.distance mesh (nearest mesh set proc) proc));
  !acc

let run ?capacity ?(max_copies = 2) mesh trace =
  if max_copies < 1 then
    invalid_arg "Replicated.run: max_copies must be at least 1";
  let n_data = Reftrace.Data_space.size (Reftrace.Trace.space trace) in
  let n_windows = Reftrace.Trace.n_windows trace in
  let m = Pim.Mesh.size mesh in
  let windows = Array.of_list (Reftrace.Trace.windows trace) in
  (* per-axis distance tables: candidate pricing decomposes every
     copy-to-reader distance into two table reads *)
  let xd = Pim.Mesh.x_distance_table mesh
  and yd = Pim.Mesh.y_distance_table mesh in
  let cols = Pim.Mesh.cols mesh in
  (* the primary copy follows the exact GOMCDS trajectory *)
  let primary = Gomcds.schedule (Problem.of_capacity ?capacity mesh trace) in
  let loads = Array.make_matrix n_windows m 0 in
  for w = 0 to n_windows - 1 do
    for d = 0 to n_data - 1 do
      let r = Schedule.center primary ~window:w ~data:d in
      loads.(w).(r) <- loads.(w).(r) + 1
    done
  done;
  let has_room w r =
    match capacity with None -> true | Some c -> loads.(w).(r) < c
  in
  let copies = Array.make_matrix n_windows n_data [] in
  let creations = Array.make_matrix n_windows n_data [] in
  List.iter
    (fun data ->
      let prev_set = ref [] in
      for w = 0 to n_windows - 1 do
        let home = Schedule.center primary ~window:w ~data in
        let set = ref [ home ] in
        let made = ref [] in
        (* write-invalidate: a written datum stays single-copy this window *)
        let written = Reftrace.Window.writes windows.(w) data > 0 in
        let profile = Reftrace.Window.read_profile windows.(w) data in
        if profile <> [] && not written then begin
          (* Snapshot the read profile into parallel arrays once per
             (window, datum): the greedy prices every candidate rank
             against it, and per-axis decomposition turns each reader
             distance into two table reads instead of a profile re-walk. *)
          let np = List.length profile in
          let counts = Array.make np 0 in
          let px = Array.make np 0
          and py = Array.make np 0 in
          List.iteri
            (fun i (p, c) ->
              counts.(i) <- c;
              px.(i) <- p mod cols;
              py.(i) <- p / cols)
            profile;
          let dist_to r i = xd.(r mod cols).(px.(i)) + yd.(r / cols).(py.(i)) in
          let base = Array.make np 0 in
          (* greedy secondary placement: best strict improvement first *)
          let continue = ref true in
          while !continue && List.length !set < max_copies do
            (* distance to the nearest current copy, once per reader per
               greedy round; a candidate's gain is then
               Σ count · max(0, base − d(candidate, reader)) — the same
               integer the old [read_cost] re-walk produced *)
            for i = 0 to np - 1 do
              base.(i) <-
                List.fold_left
                  (fun acc s -> min acc (dist_to s i))
                  max_int !set
            done;
            let sources = !set @ !prev_set in
            let best = ref None in
            for r = 0 to m - 1 do
              if (not (List.mem r !set)) && has_room w r then begin
                let creation =
                  if List.mem r !prev_set then 0
                  else Pim.Mesh.distance mesh (nearest mesh sources r) r
                in
                let gain = ref 0 in
                for i = 0 to np - 1 do
                  let d = dist_to r i in
                  if d < base.(i) then
                    gain := !gain + (counts.(i) * (base.(i) - d))
                done;
                let net = !gain - creation in
                (* first positive-net rank seeds; later ranks must strictly
                   beat it, so ties resolve to the lowest rank *)
                let better =
                  match !best with
                  | None -> net > 0
                  | Some (_, _, best_net) -> net > best_net
                in
                if better then best := Some (r, creation, net)
              end
            done;
            match !best with
            | Some (r, creation, net) when net > 0 ->
                if creation > 0 then
                  made := (nearest mesh sources r, r) :: !made;
                set := !set @ [ r ];
                loads.(w).(r) <- loads.(w).(r) + 1
            | Some _ | None -> continue := false
          done
        end;
        copies.(w).(data) <- !set;
        creations.(w).(data) <- List.rev !made;
        prev_set := !set
      done)
    (Ordering.by_total_references trace);
  { copies; creations }

type cost_breakdown = {
  reads : int;
  primary_movement : int;
  creation : int;
  total : int;
}

let primary_of t ~window ~data = List.hd t.copies.(window).(data)

let cost t mesh trace =
  let space = Reftrace.Trace.space trace in
  let volume data = Reftrace.Data_space.volume_of space data in
  let reads = ref 0 and movement = ref 0 and creation = ref 0 in
  List.iteri
    (fun w window ->
      List.iter
        (fun data ->
          reads :=
            !reads
            + volume data
              * kind_cost mesh t.copies.(w).(data) ~kind:Reftrace.Window.Read
                  window data
            + volume data
              * kind_cost mesh
                  [ primary_of t ~window:w ~data ]
                  ~kind:Reftrace.Window.Write window data)
        (Reftrace.Window.referenced_data window);
      for data = 0 to n_data t - 1 do
        if w > 0 then
          movement :=
            !movement
            + volume data
              * Pim.Mesh.distance mesh
                  (primary_of t ~window:(w - 1) ~data)
                  (primary_of t ~window:w ~data);
        List.iter
          (fun (src, dst) ->
            creation :=
              !creation + (volume data * Pim.Mesh.distance mesh src dst))
          t.creations.(w).(data)
      done)
    (Reftrace.Trace.windows trace);
  {
    reads = !reads;
    primary_movement = !movement;
    creation = !creation;
    total = !reads + !movement + !creation;
  }

let to_rounds t mesh trace =
  let space = Reftrace.Trace.space trace in
  let volume data = Reftrace.Data_space.volume_of space data in
  List.mapi
    (fun w window ->
      let migrations = ref [] in
      for data = n_data t - 1 downto 0 do
        List.iter
          (fun (src, dst) ->
            if src <> dst then
              migrations :=
                Pim.Router.message ~src ~dst ~volume:(volume data)
                :: !migrations)
          (List.rev t.creations.(w).(data));
        if w > 0 then begin
          let src = primary_of t ~window:(w - 1) ~data
          and dst = primary_of t ~window:w ~data in
          if src <> dst then
            migrations :=
              Pim.Router.message ~src ~dst ~volume:(volume data)
              :: !migrations
        end
      done;
      let references =
        List.concat_map
          (fun data ->
            let set = t.copies.(w).(data) in
            let reads =
              List.filter_map
                (fun (proc, count) ->
                  let src = nearest mesh set proc in
                  if src = proc then None
                  else
                    Some
                      (Pim.Router.message ~src ~dst:proc
                         ~volume:(count * volume data)))
                (Reftrace.Window.read_profile window data)
            in
            (* writes flow from the writer to the primary copy *)
            let home = primary_of t ~window:w ~data in
            let writes =
              List.filter_map
                (fun (proc, count) ->
                  if proc = home then None
                  else
                    Some
                      (Pim.Router.message ~src:proc ~dst:home
                         ~volume:(count * volume data)))
                (Reftrace.Window.write_profile window data)
            in
            reads @ writes)
          (Reftrace.Window.referenced_data window)
      in
      { Pim.Simulator.migrations = !migrations; references })
    (Reftrace.Trace.windows trace)

let max_live_copies t ~data =
  let mx = ref 0 in
  for w = 0 to n_windows t - 1 do
    mx := max !mx (List.length t.copies.(w).(data))
  done;
  !mx

let check_capacity t ~capacity =
  let violation = ref None in
  (try
     for w = 0 to n_windows t - 1 do
       let load = Hashtbl.create 16 in
       for d = 0 to n_data t - 1 do
         List.iter
           (fun r ->
             let c =
               match Hashtbl.find_opt load r with Some c -> c + 1 | None -> 1
             in
             Hashtbl.replace load r c;
             if c > capacity then begin
               violation := Some (w, r, c);
               raise Exit
             end)
           t.copies.(w).(d)
       done
     done
   with Exit -> ());
  !violation
