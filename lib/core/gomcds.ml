let problem mesh trace ~data =
  let windows = Array.of_list (Reftrace.Trace.windows trace) in
  let vectors =
    Array.map (fun w -> Cost.cost_vector mesh w ~data) windows
  in
  {
    Pathgraph.Layered.n_layers = Array.length windows;
    width = Pim.Mesh.size mesh;
    enter_cost = (fun j -> vectors.(0).(j));
    step_cost =
      (fun ~layer j k -> Pim.Mesh.distance mesh j k + vectors.(layer).(k));
  }

let cost_problem = problem

let optimal_centers mesh trace ~data =
  Pathgraph.Layered.solve (problem mesh trace ~data)

let cost_graph mesh trace ~data =
  Pathgraph.Layered.to_digraph (problem mesh trace ~data)

let schedule problem =
  Problem.check_feasible problem ~who:"Gomcds.schedule";
  let n_data = Problem.n_data problem in
  let n_windows = Problem.n_windows problem in
  let schedule =
    Schedule.create (Problem.mesh problem) ~n_windows ~n_data
  in
  (match Problem.policy problem with
  | Problem.Unbounded ->
      (* Every datum's DP is independent: fan the whole solve out across
         the domain pool and merge by datum index. The axis-table DP reads
         each datum's arena slab in place — no full distance matrix, no
         per-window vector rows. Problem.solve_datum folds the fault in
         (alive mask, BFS distances). *)
      let centers =
        Engine.map ~jobs:(Problem.jobs problem) n_data (fun data ->
            snd (Option.get (Problem.solve_datum problem ~data)))
      in
      Array.iteri
        (fun data cs ->
          Array.iteri
            (fun w rank -> Schedule.set_center schedule ~window:w ~data rank)
            cs)
        centers
  | Problem.Bounded _ ->
      (* Occupancy evolves datum by datum, so routing is serial — but the
         cost vectors it reads are filled in parallel first. *)
      Problem.prefetch_all problem;
      Obs.Span.with_ ~name:"gomcds.place" @@ fun () ->
      let mems =
        Array.init n_windows (fun _ -> Problem.fresh_memory problem)
      in
      List.iter
        (fun data ->
          let allowed ~layer j = not (Pim.Memory.is_full mems.(layer) j) in
          (* Placing data one at a time into capacity c with
             n_data <= c * alive processors means every layer always
             retains a free slot, so a feasible path exists. *)
          let result = Problem.solve_datum problem ~allowed ~data in
          let _, centers = Option.get result in
          Array.iteri
            (fun layer rank ->
              let ok = Pim.Memory.allocate mems.(layer) rank in
              assert ok;
              Schedule.set_center schedule ~window:layer ~data rank)
            centers)
        (Problem.by_total_references problem));
  schedule

