type capacity_policy = Context.capacity_policy = Unbounded | Bounded of int
type kernel = Context.kernel

(* Cost charged for serving across a disconnected rank pair (link faults
   can split the mesh). Large enough that any connected alternative wins,
   small enough that profile-weighted sums stay far from overflow. *)
let unreachable_cost = 1 lsl 40

(* A [Problem.t] is one request-scoped session over an immutable shared
   [Context.t]: the context carries the mesh, trace, windows and per-axis
   tables (never written after creation, so any number of sessions may
   share it from any domain); the session carries the fault overlay and
   every mutable cache — the cost arenas, marginals, centers, candidate
   lists. [policy] and [jobs] are per-session so [with_policy]/[with_jobs]
   can override the context defaults while still sharing cache rows. *)
type t = {
  ctx : Context.t;
  policy : capacity_policy;
  jobs : int;
  fault : Pim.Fault.t;
  alive : bool array; (* alive.(rank) — dense mask of fault's dead nodes *)
  n_alive : int;
  (* Fault-aware full distance table, present iff the fault kills links
     (node faults keep routers, so distances only change under link
     faults). Built eagerly per session via the BFS oracle; disconnected
     pairs hold [unreachable_cost]. Its presence is the kernel-downgrade
     trigger: arena rows fill from this table instead of the separable
     marginals. *)
  fault_dist : int array array option;
  (* Caches below are rows-per-datum so parallel fills have one writer per
     row (see the .mli thread-safety contract). *)
  margs : (int array * int array) option array array; (* margs.(data).(window) *)
  merged_margs : (int array * int array) option array;
  (* Cost arena: one flat compact buffer per datum. Slot 0 (the first
     [size] entries) is a reserved all-zero row; every window that
     references the datum gets its own slot, assigned in window order, and
     every window that does not points at slot 0 — both kernels produce
     the all-zero vector for such a row, so it is never written and is
     shared rather than materialized per window. The slab is a bigarray
     so it can be allocated uninitialized: only the zero row is filled at
     creation, and each referencing slot is written in full on its first
     [fill_row] (reads are gated by [filled]). [row_off.(data).(window)]
     maps a window to its row's start offset (0 for the shared zero row);
     it is [| |] until the slab exists. [filled.(data)] flags which rows
     hold valid entries. *)
  arena : Pathgraph.Layered.buffer option array; (* arena.(data) *)
  row_off : int array array; (* row_off.(data).(window), 0 = zero row *)
  (* Per-row fill state, one byte per window:
       '\000'  clean, never filled
       '\001'  filled, valid
       '\002'  dirty (invalidated), never filled under the old model
       '\003'  dirty (invalidated), holds stale bytes from the old model
     Dirty states only appear through [invalidate] / [with_fault_patch];
     [fill_row] collapses any state back to '\001'. The two dirty states
     are distinguished so a copy-on-write session knows whether a fill is
     a first fill or a refill ([problem.rows_refilled]) — and, crucially,
     so it privatizes a shared slab before writing values the base
     session would disagree with (see [privatize]). *)
  filled : Bytes.t array; (* filled.(data), one byte per window *)
  (* shared.(data): the slab behind [arena.(data)] is aliased from a base
     session ([with_fault_patch]); it may be read freely and written only
     with values the base would also produce (clean rows). Writing a
     dirty row first copies the slab ([privatize]). *)
  shared : bool array;
  (* Cached per-axis optimal centers; -1 = not computed yet. *)
  opts : int array array; (* opts.(data).(window) *)
  merged_opts : int array;
  cands : int list option array array; (* cands.(data).(window) *)
  merged_vectors : int array option array;
  merged_cands : int list option array;
  near : int list option array; (* near.(target): serial phases only *)
  mutable order : int list option; (* serial phases only *)
  (* Cooperative cancellation: polled at the fill/solve funnels below.
     [Cancel.none] (the default) makes every poll a pointer compare; an
     armed token adds one monotonic-clock read per datum-or-row of work.
     Written only from the serial admission path ([set_cancel]) before
     the solve starts; parallel tasks just read it. *)
  mutable cancel : Cancel.t;
}

let build_fault_dist mesh size fault =
  if not (Pim.Fault.has_link_faults fault) then None
  else begin
    if !Obs.enabled then Obs.Metrics.incr "cost.fault_tables";
    let oracle = Pim.Fault.Oracle.create mesh fault in
    Some
      (Array.init size (fun src ->
           Array.init size (fun dst ->
               match Pim.Fault.Oracle.distance oracle ~src ~dst with
               | Some d -> d
               | None -> unreachable_cost)))
  end

let of_context ?policy ?jobs ?(fault = Pim.Fault.none) ctx =
  let policy = match policy with Some p -> p | None -> ctx.Context.policy in
  let jobs = match jobs with Some j -> j | None -> ctx.Context.jobs in
  (match policy with
  | Bounded c when c < 0 ->
      invalid_arg "Problem.of_context: negative capacity"
  | Bounded _ | Unbounded -> ());
  if jobs < 1 then invalid_arg "Problem.of_context: jobs must be >= 1";
  let mesh = ctx.Context.mesh in
  Pim.Fault.validate fault mesh;
  let size = ctx.Context.size in
  let alive = Array.make size true in
  List.iter (fun r -> alive.(r) <- false) (Pim.Fault.dead_nodes fault);
  let n_alive = Pim.Fault.alive_count fault mesh in
  if n_alive = 0 then
    invalid_arg "Problem.create: every processor is dead";
  let fault_dist = build_fault_dist mesh size fault in
  let n_data = Context.n_data ctx in
  let n_windows = Array.length ctx.Context.windows in
  {
    ctx;
    policy;
    jobs;
    fault;
    alive;
    n_alive;
    fault_dist;
    margs = Array.init n_data (fun _ -> Array.make n_windows None);
    merged_margs = Array.make n_data None;
    arena = Array.make n_data None;
    row_off = Array.make n_data [||];
    filled = Array.init n_data (fun _ -> Bytes.make n_windows '\000');
    shared = Array.make n_data false;
    opts = Array.init n_data (fun _ -> Array.make n_windows (-1));
    merged_opts = Array.make n_data (-1);
    cands = Array.init n_data (fun _ -> Array.make n_windows None);
    merged_vectors = Array.make n_data None;
    merged_cands = Array.make n_data None;
    near = Array.make size None;
    order = None;
    cancel = Cancel.none;
  }

let create ?(policy = Unbounded) ?(jobs = 1) ?(kernel = `Separable)
    ?(fault = Pim.Fault.none) mesh trace =
  (match policy with
  | Bounded c when c < 0 ->
      invalid_arg "Problem.create: negative capacity"
  | Bounded _ | Unbounded -> ());
  if jobs < 1 then invalid_arg "Problem.create: jobs must be >= 1";
  of_context ~fault (Context.create ~policy ~jobs ~kernel mesh trace)

let of_capacity ?capacity ?jobs ?kernel mesh trace =
  let policy =
    match capacity with None -> Unbounded | Some c -> Bounded c
  in
  create ~policy ?jobs ?kernel mesh trace

let context t = t.ctx
let mesh t = t.ctx.Context.mesh
let trace t = t.ctx.Context.trace
let policy t = t.policy
let capacity t = match t.policy with Unbounded -> None | Bounded c -> Some c
let jobs t = t.jobs
let kernel t = t.ctx.Context.kernel
let fault t = t.fault
let rank_alive t rank = t.alive.(rank)
let alive_count t = t.n_alive
let max_arena_bytes t = t.ctx.Context.max_arena_bytes

let with_jobs t jobs =
  if jobs < 1 then invalid_arg "Problem.with_jobs: jobs must be >= 1";
  { t with jobs }

let with_policy t policy =
  (match policy with
  | Bounded c when c < 0 ->
      invalid_arg "Problem.with_policy: negative capacity"
  | Bounded _ | Unbounded -> ());
  { t with policy }

let with_kernel t kernel =
  if kernel = t.ctx.Context.kernel then t
  else
    of_context ~policy:t.policy ~jobs:t.jobs ~fault:t.fault
      (Context.create ~policy:t.policy ~jobs:t.jobs ~kernel
         t.ctx.Context.mesh t.ctx.Context.trace)

let with_fault t fault =
  if Pim.Fault.is_none fault && Pim.Fault.is_none t.fault then t
  else
    (* fresh session (cost entries, candidate orders and distances all
       depend on the fault) over the *same* shared context — the axis
       tables, windows and merged window carry over untouched *)
    of_context ~policy:t.policy ~jobs:t.jobs ~fault t.ctx

let space t = Context.space t.ctx
let n_data t = Context.n_data t.ctx
let n_windows t = Array.length t.ctx.Context.windows

let window t i =
  let windows = t.ctx.Context.windows in
  if i < 0 || i >= Array.length windows then
    invalid_arg (Printf.sprintf "Problem.window: index %d out of range" i);
  windows.(i)

let merged t = t.ctx.Context.merged

let distance t a b =
  match t.fault_dist with
  | Some d -> d.(a).(b)
  | None -> Context.distance t.ctx a b

let axis_tables t = (t.ctx.Context.xdist, t.ctx.Context.ydist)

let set_cancel t c = t.cancel <- c
let cancel_token t = t.cancel

(* The cooperative poll: free against [Cancel.none] (one physical-equality
   branch inside [Cancel.expired] short-circuits to the float compare),
   one clock read against an armed token. Sits at the per-row / per-datum
   funnels so an expired solve unwinds within one row's work. *)
let poll t = Cancel.check t.cancel

(* Cache accounting (merged-window lookups fold into the same names):
   totals are per-(datum, window) and each row has a single writer, so
   hit/miss sums do not depend on the [jobs] setting. *)
let hit name = if !Obs.enabled then Obs.Metrics.incr name

let compute_marginals t w ~data =
  Reftrace.Window.marginals w ~data
    ~cols:(Pim.Mesh.cols t.ctx.Context.mesh)
    ~rows:(Pim.Mesh.rows t.ctx.Context.mesh)

let marginals t ~window ~data =
  match t.margs.(data).(window) with
  | Some m ->
      hit "problem.marginals_hit";
      m
  | None ->
      hit "problem.marginals_miss";
      let m = compute_marginals t t.ctx.Context.windows.(window) ~data in
      t.margs.(data).(window) <- Some m;
      m

let merged_marginals t ~data =
  match t.merged_margs.(data) with
  | Some m ->
      hit "problem.marginals_hit";
      m
  | None ->
      hit "problem.marginals_miss";
      let m = compute_marginals t t.ctx.Context.merged ~data in
      t.merged_margs.(data) <- Some m;
      m

let ensure_arena t ~data =
  match t.arena.(data) with
  | Some a -> a
  | None ->
      let windows = t.ctx.Context.windows in
      let size = t.ctx.Context.size in
      let n_windows = Array.length windows in
      let off = Array.make n_windows 0 in
      let slots = ref 1 in
      for w = 0 to n_windows - 1 do
        if Reftrace.Window.references windows.(w) data > 0 then begin
          off.(w) <- !slots * size;
          incr slots
        end
      done;
      let len = !slots * size in
      let a = Bigarray.Array1.create Bigarray.Int Bigarray.C_layout len in
      Bigarray.Array1.fill (Bigarray.Array1.sub a 0 size) 0;
      t.row_off.(data) <- off;
      t.arena.(data) <- Some a;
      if !Obs.enabled then
        Obs.Metrics.add "problem.arena_bytes" (8 * len);
      a

(* Same integers as [Cost.Naive.cost_vector], with distances read off a
   full table and the profile walked once per center; [set] targets either
   an arena slab or a plain array. *)
let table_entries t dist w ~data ~set =
  let profile = Reftrace.Window.profile w data in
  for center = 0 to t.ctx.Context.size - 1 do
    let row = dist.(center) in
    set center
      (List.fold_left
         (fun acc (proc, count) -> acc + (count * row.(proc)))
         0 profile)
  done

(* Only reachable under [`Naive], whose context materialized the table at
   creation. *)
let naive_entries t w ~data ~set =
  hit "cost.naive_builds";
  let dist =
    match t.ctx.Context.naive_dist with Some d -> d | None -> assert false
  in
  table_entries t dist w ~data ~set

(* Link faults break separability, so both kernels downgrade to the BFS
   distance table — the Obs counter records every row built this way. *)
let fault_entries t w ~data ~set =
  hit "cost.fault_downgrades";
  let dist =
    match t.fault_dist with Some d -> d | None -> assert false
  in
  table_entries t dist w ~data ~set

let fill_separable t ~window ~data ~dst ~off =
  hit "cost.separable_builds";
  let mesh = t.ctx.Context.mesh in
  Cost.fill_slab_of_marginals
    ~wrap:(Pim.Mesh.wraps mesh)
    ~cols:(Pim.Mesh.cols mesh)
    ~rows:(Pim.Mesh.rows mesh)
    (marginals t ~window ~data)
    ~dst ~off

(* Copy-on-write: a patched session aliases its base's slabs until it has
   to write a row whose bytes the base would disagree with (any dirty
   state, even never-filled — the base may later fill that row with
   old-model values, which must not leak into this session, nor the
   reverse). Clean rows may be filled in place even while shared: both
   sessions would write identical bytes there. *)
let privatize t ~data =
  (match t.arena.(data) with
  | None -> ()
  | Some a ->
      let len = Bigarray.Array1.dim a in
      let copy = Bigarray.Array1.create Bigarray.Int Bigarray.C_layout len in
      Bigarray.Array1.blit a copy;
      t.arena.(data) <- Some copy;
      if !Obs.enabled then Obs.Metrics.add "problem.arena_bytes" (8 * len));
  t.shared.(data) <- false

let datum_has_dirty t ~data =
  let b = t.filled.(data) in
  let n = Bytes.length b in
  let found = ref false in
  for w = 0 to n - 1 do
    if Bytes.get b w >= '\002' then found := true
  done;
  !found

let fill_row t ~window ~data =
  poll t;
  (match Bytes.get t.filled.(data) window with
  | '\000' | '\001' -> ()
  | st ->
      if st = '\003' then hit "problem.rows_refilled";
      if t.shared.(data) then privatize t ~data);
  let a = ensure_arena t ~data in
  (* zero-reference rows resolve to the shared zero slot — both kernels
     produce the all-zero vector for them, so no build is charged *)
  let off = t.row_off.(data).(window) in
  if off > 0 then begin
    if t.fault_dist <> None then
      fault_entries t t.ctx.Context.windows.(window) ~data ~set:(fun center v ->
          a.{off + center} <- v)
    else
      match t.ctx.Context.kernel with
      | `Separable -> fill_separable t ~window ~data ~dst:a ~off
      | `Naive ->
          naive_entries t t.ctx.Context.windows.(window) ~data
            ~set:(fun center v -> a.{off + center} <- v)
  end;
  Bytes.set t.filled.(data) window '\001';
  a

let arena_row t ~window ~data =
  if Bytes.get t.filled.(data) window <> '\001' then begin
    hit "problem.vector_miss";
    let a = fill_row t ~window ~data in
    (a, t.row_off.(data).(window))
  end
  else begin
    hit "problem.vector_hit";
    ((match t.arena.(data) with Some a -> a | None -> assert false),
     t.row_off.(data).(window))
  end

let cost_entry t ~window ~data center =
  let a, off = arena_row t ~window ~data in
  a.{off + center}

let cost_vector t ~window ~data =
  let a, off = arena_row t ~window ~data in
  Array.init t.ctx.Context.size (fun i -> a.{off + i})

let vector_from_marginals t m =
  hit "cost.separable_builds";
  let mesh = t.ctx.Context.mesh in
  Cost.vector_of_marginals
    ~wrap:(Pim.Mesh.wraps mesh)
    ~cols:(Pim.Mesh.cols mesh)
    ~rows:(Pim.Mesh.rows mesh)
    m

let merged_vector t ~data =
  match t.merged_vectors.(data) with
  | Some v ->
      hit "problem.vector_hit";
      v
  | None ->
      hit "problem.vector_miss";
      poll t;
      let size = t.ctx.Context.size in
      let v =
        if Reftrace.Window.references t.ctx.Context.merged data = 0 then
          Array.make size 0
        else if t.fault_dist <> None then begin
          let v = Array.make size 0 in
          fault_entries t t.ctx.Context.merged ~data ~set:(fun center c ->
              v.(center) <- c);
          v
        end
        else
          match t.ctx.Context.kernel with
          | `Separable ->
              vector_from_marginals t (merged_marginals t ~data)
          | `Naive ->
              let v = Array.make size 0 in
              naive_entries t t.ctx.Context.merged ~data ~set:(fun center c ->
                  v.(center) <- c);
              v
      in
      t.merged_vectors.(data) <- Some v;
      v

(* Ascending argmin over alive ranks only — the placement rule once a
   fault kills nodes (ties still break to the lowest alive rank). *)
let masked_argmin t get =
  hit "cost.argmin_masked";
  let best = ref (-1) in
  for i = 0 to t.ctx.Context.size - 1 do
    if t.alive.(i) && (!best < 0 || get i < get !best) then best := i
  done;
  !best

let faulty t = not (Pim.Fault.is_none t.fault)

(* Vector-free fast path (Definition 4): per-axis argmin straight from the
   marginals under [`Separable]; ascending arena-row scan under [`Naive].
   Both orders agree with the full-vector ascending argmin, so unbounded
   schedulers can take this without changing a single placement. Any fault
   forces the masked arena scan instead: dead ranks cannot host a center,
   and under link faults the marginals no longer price the row at all. *)
let optimal_center t ~window ~data =
  let cached = t.opts.(data).(window) in
  if cached >= 0 then cached
  else begin
    poll t;
    let mesh = t.ctx.Context.mesh in
    let c =
      if faulty t then begin
        let a, off = arena_row t ~window ~data in
        masked_argmin t (fun i -> a.{off + i})
      end
      else
        match t.ctx.Context.kernel with
        | `Separable ->
            hit "cost.argmin_fast";
            fst
              (Cost.argmin_of_marginals
                 ~wrap:(Pim.Mesh.wraps mesh)
                 ~cols:(Pim.Mesh.cols mesh)
                 ~rows:(Pim.Mesh.rows mesh)
                 (marginals t ~window ~data))
        | `Naive ->
            hit "cost.argmin_fallback";
            let a, off = arena_row t ~window ~data in
            let best = ref 0 in
            for i = 1 to t.ctx.Context.size - 1 do
              if a.{off + i} < a.{off + !best} then best := i
            done;
            !best
    in
    t.opts.(data).(window) <- c;
    c
  end

let merged_optimal_center t ~data =
  let cached = t.merged_opts.(data) in
  if cached >= 0 then cached
  else begin
    let mesh = t.ctx.Context.mesh in
    let c =
      if faulty t then begin
        let v = merged_vector t ~data in
        masked_argmin t (fun i -> v.(i))
      end
      else
        match t.ctx.Context.kernel with
        | `Separable ->
            hit "cost.argmin_fast";
            fst
              (Cost.argmin_of_marginals
                 ~wrap:(Pim.Mesh.wraps mesh)
                 ~cols:(Pim.Mesh.cols mesh)
                 ~rows:(Pim.Mesh.rows mesh)
                 (merged_marginals t ~data))
        | `Naive ->
            hit "cost.argmin_fallback";
            let v = merged_vector t ~data in
            let best = ref 0 in
            for i = 1 to t.ctx.Context.size - 1 do
              if v.(i) < v.(!best) then best := i
            done;
            !best
    in
    t.merged_opts.(data) <- c;
    c
  end

(* Dead ranks are cut out of every candidate list — the same fallback
   machinery that skips full memories then never proposes them. *)
let alive_only t l =
  if Pim.Fault.has_node_faults t.fault then
    List.filter (fun r -> t.alive.(r)) l
  else l

let candidates t ~window ~data =
  match t.cands.(data).(window) with
  | Some l ->
      hit "problem.candidates_hit";
      l
  | None ->
      hit "problem.candidates_miss";
      poll t;
      let size = t.ctx.Context.size in
      let l =
        if Bytes.get t.filled.(data) window = '\001' then begin
          (* row already materialized: sort straight off the slab *)
          let a, off = arena_row t ~window ~data in
          alive_only t
            (Processor_list.of_costs ~n:size (fun i -> a.{off + i}))
        end
        else if t.fault_dist = None && t.ctx.Context.kernel = `Separable
        then
          (* fill-skip: the candidate order is a pure function of the axis
             costs, so bounded schedulers that only consume lists
             ([Scds]/[Lomcds]) never force a slab row. Same values, hence
             the same (cost, rank) order, as the materialized row. *)
          if
            Reftrace.Window.references t.ctx.Context.windows.(window) data
            = 0
          then alive_only t (Processor_list.of_costs ~n:size (fun _ -> 0))
          else begin
            hit "cost.separable_builds";
            let mesh = t.ctx.Context.mesh in
            let wrap = Pim.Mesh.wraps mesh in
            let cols = Pim.Mesh.cols mesh in
            let mx, my = marginals t ~window ~data in
            let cx = Cost.axis_cost ~wrap mx
            and cy = Cost.axis_cost ~wrap my in
            alive_only t
              (Processor_list.of_costs ~n:size (fun i ->
                   cx.(i mod cols) + cy.(i / cols)))
          end
        else begin
          let a, off = arena_row t ~window ~data in
          alive_only t
            (Processor_list.of_costs ~n:size (fun i -> a.{off + i}))
        end
      in
      t.cands.(data).(window) <- Some l;
      l

let merged_candidates t ~data =
  match t.merged_cands.(data) with
  | Some l ->
      hit "problem.candidates_hit";
      l
  | None ->
      hit "problem.candidates_miss";
      let l = alive_only t (Processor_list.of_cost_vector (merged_vector t ~data)) in
      t.merged_cands.(data) <- Some l;
      l

let ranks_near t ~target =
  match t.near.(target) with
  | Some l -> l
  | None ->
      let l =
        List.init t.ctx.Context.size Fun.id
        |> alive_only t
        |> List.sort (fun a b ->
               let c =
                 Int.compare (distance t target a) (distance t target b)
               in
               if c <> 0 then c else Int.compare a b)
      in
      t.near.(target) <- Some l;
      l

let by_total_references t =
  match t.order with
  | Some l -> l
  | None ->
      (* Ordering.by_total_references against the cached merged window *)
      let sp = space t in
      let merged = t.ctx.Context.merged in
      let l =
        List.init (n_data t) Fun.id
        |> List.sort (fun a b ->
               let weight d =
                 Reftrace.Data_space.volume_of sp d
                 * Reftrace.Window.references merged d
               in
               let c = Int.compare (weight b) (weight a) in
               if c <> 0 then c else Int.compare a b)
      in
      t.order <- Some l;
      l

let path_cost t ~data pairs =
  if pairs = [] then invalid_arg "Problem.path_cost: empty window list";
  let rec go prev acc = function
    | [] -> acc
    | (w, center) :: rest ->
        let refc = cost_entry t ~window:w ~data center in
        let move =
          match prev with None -> 0 | Some p -> distance t p center
        in
        go (Some center) (acc + refc + move) rest
  in
  go None 0 pairs

let trajectory_cost t ~data centers =
  let n = n_windows t in
  if Array.length centers <> n then
    invalid_arg
      (Printf.sprintf
         "Problem.trajectory_cost: %d centers for %d windows"
         (Array.length centers) n);
  let cost = ref (cost_entry t ~window:0 ~data centers.(0)) in
  for w = 1 to n - 1 do
    cost :=
      !cost
      + distance t centers.(w - 1) centers.(w)
      + cost_entry t ~window:w ~data centers.(w)
  done;
  !cost

let prefetch_data t ~data =
  for w = 0 to n_windows t - 1 do
    ignore (arena_row t ~window:w ~data)
  done

let layer_slab t ~data =
  prefetch_data t ~data;
  (ensure_arena t ~data, t.row_off.(data))

(* One window's worth of rows, batched: every referencing datum whose row
   is not yet valid goes through one [Cost.fill_window_batch] pass on the
   healthy separable path (axis and prefix-sum scratch shared across the
   whole window), and through the per-row table fills otherwise.
   Zero-reference rows flip straight to valid. When run from the parallel
   fan-out in [prefetch_all], the serial pre-pass there has already
   created every arena and privatized every shared slab holding dirty
   rows, so this task only writes its own window's column (slab row,
   filled byte, margs cell per datum) — one writer per cell. *)
let fill_window_rows t ~window =
  poll t;
  let nd = n_data t in
  let mesh = t.ctx.Context.mesh in
  let batch = ref [] in
  for data = nd - 1 downto 0 do
    let st = Bytes.get t.filled.(data) window in
    if st = '\001' then hit "problem.vector_hit"
    else begin
      hit "problem.vector_miss";
      if st = '\003' then hit "problem.rows_refilled";
      if st >= '\002' && t.shared.(data) then privatize t ~data;
      let a = ensure_arena t ~data in
      let off = t.row_off.(data).(window) in
      if off = 0 then Bytes.set t.filled.(data) window '\001'
      else if t.fault_dist <> None then begin
        fault_entries t t.ctx.Context.windows.(window) ~data
          ~set:(fun center v -> a.{off + center} <- v);
        Bytes.set t.filled.(data) window '\001'
      end
      else
        match t.ctx.Context.kernel with
        | `Naive ->
            naive_entries t t.ctx.Context.windows.(window) ~data
              ~set:(fun center v -> a.{off + center} <- v);
            Bytes.set t.filled.(data) window '\001'
        | `Separable ->
            batch := (data, (marginals t ~window ~data, (a, off))) :: !batch
    end
  done;
  match !batch with
  | [] -> ()
  | rows ->
      Cost.fill_window_batch
        ~wrap:(Pim.Mesh.wraps mesh)
        ~cols:(Pim.Mesh.cols mesh)
        ~rows:(Pim.Mesh.rows mesh)
        (List.map snd rows);
      List.iter
        (fun (data, _) -> Bytes.set t.filled.(data) window '\001')
        rows

let prefetch_all t =
  Obs.Span.with_ ~name:"problem.prefetch_all" @@ fun () ->
  (* serial pre-pass: every arena exists and no shared slab still holds
     dirty rows before the window tasks fan out — a task must never swap
     a datum-level slab another task is writing into *)
  let nd = n_data t in
  for data = 0 to nd - 1 do
    ignore (ensure_arena t ~data);
    if t.shared.(data) && datum_has_dirty t ~data then privatize t ~data
  done;
  Engine.iter ~jobs:t.jobs (n_windows t) (fun w ->
      fill_window_rows t ~window:w)

(* Window-major view: the slab row of every datum for [window], forced
   valid. [Online] and [Annealing] batch their per-probe delta reads
   through this view instead of paying a [cost_entry] dispatch per probe:
   the entry for (data, rank) is [slabs.(data).{offs.(data) + rank}]. *)
let window_rows t ~window =
  fill_window_rows t ~window;
  let slabs =
    Array.init (n_data t) (fun data ->
        match t.arena.(data) with Some a -> a | None -> assert false)
  in
  let offs =
    Array.init (n_data t) (fun data -> t.row_off.(data).(window))
  in
  (slabs, offs)

(* ------------------------------------------------------------------ *)
(* Incremental invalidation and copy-on-write fault patching           *)
(* ------------------------------------------------------------------ *)

let invalidate t ~window =
  let nw = n_windows t in
  if window < 0 || window >= nw then
    invalid_arg
      (Printf.sprintf "Problem.invalidate: window %d out of range" window);
  let w = t.ctx.Context.windows.(window) in
  let nd = n_data t in
  for data = 0 to nd - 1 do
    (* [Reftrace.Window.add] only ever adds references, so a datum with
       zero references now was untouched by the edit and keeps its whole
       column *)
    if Reftrace.Window.references w data > 0 then begin
      if t.row_off.(data) <> [||] && t.row_off.(data).(window) = 0 then begin
        (* the datum gained its first reference in this window after the
           slab layout was fixed: drop the slab so [ensure_arena] re-maps
           windows to rows (the other windows refill identically) *)
        t.arena.(data) <- None;
        t.row_off.(data) <- [||];
        t.shared.(data) <- false;
        Bytes.fill t.filled.(data) 0 nw '\000'
      end;
      t.margs.(data).(window) <- None;
      t.opts.(data).(window) <- -1;
      t.cands.(data).(window) <- None;
      match Bytes.get t.filled.(data) window with
      | '\000' ->
          Bytes.set t.filled.(data) window '\002';
          hit "problem.rows_invalidated"
      | '\001' ->
          Bytes.set t.filled.(data) window '\003';
          hit "problem.rows_invalidated"
      | _ -> ()
    end
  done

(* monotone growth: every element of ascending [a] appears in ascending
   [b] — the condition under which cached argmins and candidate orders
   survive a fault change (dead ranks only accumulate). *)
let rec subset_asc a b =
  match (a, b) with
  | [], _ -> true
  | _, [] -> false
  | x :: a', y :: b' ->
      if x = y then subset_asc a' b'
      else if y < x then subset_asc a b'
      else false

(* [dead_nodes]/[dead_links] are canonical (ascending), so structural
   equality decides fault equality. *)
let same_fault a b =
  Pim.Fault.dead_nodes a = Pim.Fault.dead_nodes b
  && Pim.Fault.dead_links a = Pim.Fault.dead_links b

let with_fault_patch t fault =
  if same_fault fault t.fault then t
  else begin
    let mesh = t.ctx.Context.mesh in
    Pim.Fault.validate fault mesh;
    let size = t.ctx.Context.size in
    let alive = Array.make size true in
    List.iter (fun r -> alive.(r) <- false) (Pim.Fault.dead_nodes fault);
    let n_alive = Pim.Fault.alive_count fault mesh in
    if n_alive = 0 then
      invalid_arg "Problem.with_fault_patch: every processor is dead";
    let fault_dist =
      if Pim.Fault.dead_links fault = Pim.Fault.dead_links t.fault then
        t.fault_dist (* same dead-link set: identical BFS distances *)
      else build_fault_dist mesh size fault
    in
    (* Dirty processors: ranks whose distance column changed between the
       two models. Node faults keep routers, so when the dead-link set is
       unchanged the tables are physically shared and nothing is dirty —
       a pure node-fault patch reuses every slab row. *)
    let dirty =
      if fault_dist == t.fault_dist then None
      else begin
        let old_d =
          match t.fault_dist with
          | Some d -> fun c p -> d.(c).(p)
          | None -> fun c p -> Context.distance t.ctx c p
        in
        let new_d =
          match fault_dist with
          | Some d -> fun c p -> d.(c).(p)
          | None -> fun c p -> Context.distance t.ctx c p
        in
        let d = Array.make size false in
        let any = ref false in
        for p = 0 to size - 1 do
          let c = ref 0 in
          while !c < size && not d.(p) do
            if old_d !c p <> new_d !c p then begin
              d.(p) <- true;
              any := true
            end;
            incr c
          done
        done;
        if !any then Some d else None
      end
    in
    (* a row is dirty iff the window's profile of the datum touches a
       dirty rank — only those rows' cost entries can differ *)
    let row_dirty w data =
      match dirty with
      | None -> false
      | Some d ->
          let f = ref false in
          Reftrace.Window.iter_profile w data (fun ~proc ~count:_ ->
              if d.(proc) then f := true);
          !f
    in
    let monotone =
      subset_asc (Pim.Fault.dead_nodes t.fault) (Pim.Fault.dead_nodes fault)
    in
    let filter_alive l =
      if Pim.Fault.has_node_faults fault then
        List.filter (fun r -> alive.(r)) l
      else l
    in
    let nd = n_data t in
    let windows = t.ctx.Context.windows in
    let nw = Array.length windows in
    let filled = Array.init nd (fun d -> Bytes.copy t.filled.(d)) in
    let opts = Array.init nd (fun d -> Array.copy t.opts.(d)) in
    let cands = Array.init nd (fun _ -> Array.make nw None) in
    for data = 0 to nd - 1 do
      for w = 0 to nw - 1 do
        if row_dirty windows.(w) data then begin
          (match Bytes.get filled.(data) w with
          | '\000' ->
              Bytes.set filled.(data) w '\002';
              hit "problem.rows_invalidated"
          | '\001' ->
              Bytes.set filled.(data) w '\003';
              hit "problem.rows_invalidated"
          | _ -> ());
          opts.(data).(w) <- -1
        end
        else begin
          (* clean row: the cached argmin survives iff dead ranks only
             grew (subset argmin, lowest-rank ties preserved) and the
             center itself is still alive; a candidate order survives a
             monotone fault filtered down to the new alive set *)
          let o = opts.(data).(w) in
          if o >= 0 && not (monotone && alive.(o)) then
            opts.(data).(w) <- -1;
          if monotone then
            cands.(data).(w) <-
              (match t.cands.(data).(w) with
              | Some l -> Some (filter_alive l)
              | None -> None)
        end
      done
    done;
    let merged = t.ctx.Context.merged in
    let merged_vectors = Array.make nd None in
    let merged_opts = Array.make nd (-1) in
    let merged_cands = Array.make nd None in
    for data = 0 to nd - 1 do
      if not (row_dirty merged data) then begin
        merged_vectors.(data) <- t.merged_vectors.(data);
        let o = t.merged_opts.(data) in
        if o >= 0 && monotone && alive.(o) then merged_opts.(data) <- o;
        if monotone then
          merged_cands.(data) <-
            (match t.merged_cands.(data) with
            | Some l -> Some (filter_alive l)
            | None -> None)
      end
    done;
    let arena = Array.copy t.arena in
    let shared = Array.map (function Some _ -> true | None -> false) arena in
    {
      t with
      fault;
      alive;
      n_alive;
      fault_dist;
      arena;
      row_off = Array.copy t.row_off;
      filled;
      shared;
      opts;
      cands;
      merged_vectors;
      merged_opts;
      merged_cands;
      near = Array.make size None;
    }
  end

let prefetch_referenced t =
  Obs.Span.with_ ~name:"problem.prefetch_referenced" @@ fun () ->
  Engine.iter ~jobs:t.jobs (n_data t) (fun data ->
      let referenced = ref false in
      Array.iteri
        (fun w window ->
          if Reftrace.Window.references window data > 0 then begin
            referenced := true;
            ignore (candidates t ~window:w ~data)
          end)
        t.ctx.Context.windows;
      if not !referenced then ignore (merged_candidates t ~data))

let prefetch_centers t =
  Obs.Span.with_ ~name:"problem.prefetch_centers" @@ fun () ->
  Engine.iter ~jobs:t.jobs (n_data t) (fun data ->
      let referenced = ref false in
      Array.iteri
        (fun w window ->
          if Reftrace.Window.references window data > 0 then begin
            referenced := true;
            ignore (optimal_center t ~window:w ~data)
          end)
        t.ctx.Context.windows;
      if not !referenced then ignore (merged_optimal_center t ~data))

let prefetch_merged t =
  Obs.Span.with_ ~name:"problem.prefetch_merged" @@ fun () ->
  Engine.iter ~jobs:t.jobs (n_data t) (fun data ->
      ignore (merged_candidates t ~data))

let check_feasible t ~who =
  match t.policy with
  | Unbounded -> ()
  | Bounded c ->
      let n = n_data t in
      (* on a healthy array n_alive = size, so the message is unchanged *)
      if c * t.n_alive < n then
        invalid_arg
          (Printf.sprintf
             "%s: %d data cannot fit in %d processors of capacity %d" who n
             t.n_alive c)

let fresh_memory t =
  let m =
    match t.policy with
    | Unbounded -> Pim.Memory.unbounded t.ctx.Context.mesh
    | Bounded c -> Pim.Memory.create t.ctx.Context.mesh ~capacity:c
  in
  if Pim.Fault.has_node_faults t.fault then
    List.iter (Pim.Memory.ban m) (Pim.Fault.dead_nodes t.fault);
  m

let layer_vectors t ~data =
  let slab, offs = layer_slab t ~data in
  Array.init (n_windows t) (fun w ->
      Array.init t.ctx.Context.size (fun i -> slab.{offs.(w) + i}))

let layered t ~data =
  let slab, offs = layer_slab t ~data in
  let cols = Pim.Mesh.cols t.ctx.Context.mesh in
  let width = t.ctx.Context.size in
  let step_cost =
    match t.fault_dist with
    | Some fd ->
        fun ~layer j k -> fd.(j).(k) + slab.{offs.(layer) + k}
    | None ->
        let xd = t.ctx.Context.xdist and yd = t.ctx.Context.ydist in
        fun ~layer j k ->
          xd.(j mod cols).(k mod cols)
          + yd.(j / cols).(k / cols)
          + slab.{offs.(layer) + k}
  in
  {
    Pathgraph.Layered.n_layers = n_windows t;
    width;
    enter_cost = (fun j -> slab.{offs.(0) + j});
    step_cost;
  }

let solve_datum ?allowed t ~data =
  poll t;
  (* Compose the caller's filter with the alive mask; no closure is built
     on the healthy unfiltered path. *)
  let combined =
    match (allowed, Pim.Fault.has_node_faults t.fault) with
    | None, false -> None
    | None, true -> Some (fun ~layer:_ j -> t.alive.(j))
    | (Some _ as f), false -> f
    | Some f, true -> Some (fun ~layer j -> t.alive.(j) && f ~layer j)
  in
  match t.fault_dist with
  | None -> (
      let vectors, offsets = layer_slab t ~data in
      let xdist = t.ctx.Context.xdist and ydist = t.ctx.Context.ydist in
      let width = t.ctx.Context.size and n_layers = n_windows t in
      match combined with
      | None ->
          Some
            (Pathgraph.Layered.solve_axes ~offsets ~xdist ~ydist ~vectors
               ~width ~n_layers ())
      | Some allowed ->
          Pathgraph.Layered.solve_axes_filtered ~offsets ~xdist ~ydist
            ~vectors ~width ~n_layers ~allowed ())
  | Some _ -> (
      (* link faults: the axis tables no longer factor the distances, so
         the DP runs on the callback problem over the BFS table *)
      let p = layered t ~data in
      match combined with
      | None -> Some (Pathgraph.Layered.solve p)
      | Some allowed -> Pathgraph.Layered.solve_filtered p ~allowed)
