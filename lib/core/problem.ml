type capacity_policy = Unbounded | Bounded of int
type kernel = [ `Separable | `Naive ]

type t = {
  mesh : Pim.Mesh.t;
  trace : Reftrace.Trace.t;
  policy : capacity_policy;
  jobs : int;
  kernel : kernel;
  windows : Reftrace.Window.t array;
  merged : Reftrace.Window.t;
  (* Per-axis distance tables: x-y routing distance is separable, so two
     O(cols² + rows²) tables answer every probe the old O(size²) matrix
     did. The full matrix is only materialized on demand (serial phases) —
     except under the [`Naive] kernel, whose vector builds read it inside
     parallel prefetches, so it is built eagerly at [create]. *)
  xdist : int array array;
  ydist : int array array;
  mutable full_dist : int array array option;
  (* Caches below are rows-per-datum so parallel fills have one writer per
     row (see the .mli thread-safety contract). *)
  margs : (int array * int array) option array array; (* margs.(data).(window) *)
  merged_margs : (int array * int array) option array;
  vectors : int array option array array; (* vectors.(data).(window) *)
  cands : int list option array array; (* cands.(data).(window) *)
  merged_vectors : int array option array;
  merged_cands : int list option array;
  near : int list option array; (* near.(target): serial phases only *)
  mutable order : int list option; (* serial phases only *)
}

let create ?(policy = Unbounded) ?(jobs = 1) ?(kernel = `Separable) mesh trace
    =
  (match policy with
  | Bounded c when c < 0 ->
      invalid_arg "Problem.create: negative capacity"
  | Bounded _ | Unbounded -> ());
  if jobs < 1 then invalid_arg "Problem.create: jobs must be >= 1";
  let windows = Array.of_list (Reftrace.Trace.windows trace) in
  let n_data = Reftrace.Data_space.size (Reftrace.Trace.space trace) in
  let n_windows = Array.length windows in
  {
    mesh;
    trace;
    policy;
    jobs;
    kernel;
    windows;
    merged = Reftrace.Trace.merged trace;
    xdist = Pim.Mesh.x_distance_table mesh;
    ydist = Pim.Mesh.y_distance_table mesh;
    full_dist =
      (match kernel with
      | `Naive -> Some (Pim.Mesh.distance_table mesh)
      | `Separable -> None);
    margs = Array.init n_data (fun _ -> Array.make n_windows None);
    merged_margs = Array.make n_data None;
    vectors = Array.init n_data (fun _ -> Array.make n_windows None);
    cands = Array.init n_data (fun _ -> Array.make n_windows None);
    merged_vectors = Array.make n_data None;
    merged_cands = Array.make n_data None;
    near = Array.make (Pim.Mesh.size mesh) None;
    order = None;
  }

let of_capacity ?capacity ?jobs ?kernel mesh trace =
  let policy =
    match capacity with None -> Unbounded | Some c -> Bounded c
  in
  create ~policy ?jobs ?kernel mesh trace

let mesh t = t.mesh
let trace t = t.trace
let policy t = t.policy
let capacity t = match t.policy with Unbounded -> None | Bounded c -> Some c
let jobs t = t.jobs
let kernel t = t.kernel

let with_jobs t jobs =
  if jobs < 1 then invalid_arg "Problem.with_jobs: jobs must be >= 1";
  { t with jobs }

let with_policy t policy =
  (match policy with
  | Bounded c when c < 0 ->
      invalid_arg "Problem.with_policy: negative capacity"
  | Bounded _ | Unbounded -> ());
  { t with policy }

let with_kernel t kernel =
  if kernel = t.kernel then t
  else create ~policy:t.policy ~jobs:t.jobs ~kernel t.mesh t.trace

let space t = Reftrace.Trace.space t.trace
let n_data t = Reftrace.Data_space.size (space t)
let n_windows t = Array.length t.windows

let window t i =
  if i < 0 || i >= Array.length t.windows then
    invalid_arg (Printf.sprintf "Problem.window: index %d out of range" i);
  t.windows.(i)

let merged t = t.merged

let distance t a b =
  let c = Pim.Mesh.cols t.mesh in
  t.xdist.(a mod c).(b mod c) + t.ydist.(a / c).(b / c)

let distance_table t =
  match t.full_dist with
  | Some d -> d
  | None ->
      let d = Pim.Mesh.distance_table t.mesh in
      t.full_dist <- Some d;
      d

(* Cache accounting (merged-window lookups fold into the same names):
   totals are per-(datum, window) and each row has a single writer, so
   hit/miss sums do not depend on the [jobs] setting. *)
let hit name = if !Obs.enabled then Obs.Metrics.incr name

let compute_marginals t w ~data =
  Reftrace.Window.marginals w ~data ~cols:(Pim.Mesh.cols t.mesh)
    ~rows:(Pim.Mesh.rows t.mesh)

let marginals t ~window ~data =
  match t.margs.(data).(window) with
  | Some m ->
      hit "problem.marginals_hit";
      m
  | None ->
      hit "problem.marginals_miss";
      let m = compute_marginals t t.windows.(window) ~data in
      t.margs.(data).(window) <- Some m;
      m

let merged_marginals t ~data =
  match t.merged_margs.(data) with
  | Some m ->
      hit "problem.marginals_hit";
      m
  | None ->
      hit "problem.marginals_miss";
      let m = compute_marginals t t.merged ~data in
      t.merged_margs.(data) <- Some m;
      m

(* Same integers as [Cost.Naive.cost_vector], with distances read off the
   full table and the profile walked once per center. Only reachable under
   [`Naive], which materialized the table at [create]. *)
let compute_vector_naive t w ~data =
  hit "cost.naive_builds";
  let dist =
    match t.full_dist with Some d -> d | None -> assert false
  in
  let m = Array.length dist in
  let v = Array.make m 0 in
  let profile = Reftrace.Window.profile w data in
  for center = 0 to m - 1 do
    let row = dist.(center) in
    v.(center) <-
      List.fold_left
        (fun acc (proc, count) -> acc + (count * row.(proc)))
        0 profile
  done;
  v

let vector_from_marginals t m =
  hit "cost.separable_builds";
  Cost.vector_of_marginals
    ~wrap:(Pim.Mesh.wraps t.mesh)
    ~cols:(Pim.Mesh.cols t.mesh)
    ~rows:(Pim.Mesh.rows t.mesh)
    m

let cost_vector t ~window ~data =
  match t.vectors.(data).(window) with
  | Some v ->
      hit "problem.vector_hit";
      v
  | None ->
      hit "problem.vector_miss";
      let v =
        match t.kernel with
        | `Separable -> vector_from_marginals t (marginals t ~window ~data)
        | `Naive -> compute_vector_naive t t.windows.(window) ~data
      in
      t.vectors.(data).(window) <- Some v;
      v

let merged_vector t ~data =
  match t.merged_vectors.(data) with
  | Some v ->
      hit "problem.vector_hit";
      v
  | None ->
      hit "problem.vector_miss";
      let v =
        match t.kernel with
        | `Separable -> vector_from_marginals t (merged_marginals t ~data)
        | `Naive -> compute_vector_naive t t.merged ~data
      in
      t.merged_vectors.(data) <- Some v;
      v

let candidates t ~window ~data =
  match t.cands.(data).(window) with
  | Some l ->
      hit "problem.candidates_hit";
      l
  | None ->
      hit "problem.candidates_miss";
      let l = Processor_list.of_cost_vector (cost_vector t ~window ~data) in
      t.cands.(data).(window) <- Some l;
      l

let merged_candidates t ~data =
  match t.merged_cands.(data) with
  | Some l ->
      hit "problem.candidates_hit";
      l
  | None ->
      hit "problem.candidates_miss";
      let l = Processor_list.of_cost_vector (merged_vector t ~data) in
      t.merged_cands.(data) <- Some l;
      l

let ranks_near t ~target =
  match t.near.(target) with
  | Some l -> l
  | None ->
      let l =
        List.init (Pim.Mesh.size t.mesh) Fun.id
        |> List.sort (fun a b ->
               let c =
                 Int.compare (distance t target a) (distance t target b)
               in
               if c <> 0 then c else Int.compare a b)
      in
      t.near.(target) <- Some l;
      l

let by_total_references t =
  match t.order with
  | Some l -> l
  | None ->
      (* Ordering.by_total_references against the cached merged window *)
      let sp = space t in
      let l =
        List.init (n_data t) Fun.id
        |> List.sort (fun a b ->
               let weight d =
                 Reftrace.Data_space.volume_of sp d
                 * Reftrace.Window.references t.merged d
               in
               let c = Int.compare (weight b) (weight a) in
               if c <> 0 then c else Int.compare a b)
      in
      t.order <- Some l;
      l

let path_cost t ~data pairs =
  if pairs = [] then invalid_arg "Problem.path_cost: empty window list";
  let rec go prev acc = function
    | [] -> acc
    | (w, center) :: rest ->
        let refc = (cost_vector t ~window:w ~data).(center) in
        let move =
          match prev with None -> 0 | Some p -> distance t p center
        in
        go (Some center) (acc + refc + move) rest
  in
  go None 0 pairs

let trajectory_cost t ~data centers =
  let n = n_windows t in
  if Array.length centers <> n then
    invalid_arg
      (Printf.sprintf
         "Problem.trajectory_cost: %d centers for %d windows"
         (Array.length centers) n);
  let cost = ref (cost_vector t ~window:0 ~data).(centers.(0)) in
  for w = 1 to n - 1 do
    cost :=
      !cost
      + distance t centers.(w - 1) centers.(w)
      + (cost_vector t ~window:w ~data).(centers.(w))
  done;
  !cost

let prefetch_data t ~data =
  for w = 0 to n_windows t - 1 do
    ignore (cost_vector t ~window:w ~data)
  done

let prefetch_all t =
  Obs.Span.with_ ~name:"problem.prefetch_all" @@ fun () ->
  Engine.iter ~jobs:t.jobs (n_data t) (fun data -> prefetch_data t ~data)

let prefetch_referenced t =
  Obs.Span.with_ ~name:"problem.prefetch_referenced" @@ fun () ->
  Engine.iter ~jobs:t.jobs (n_data t) (fun data ->
      let referenced = ref false in
      Array.iteri
        (fun w window ->
          if Reftrace.Window.references window data > 0 then begin
            referenced := true;
            ignore (candidates t ~window:w ~data)
          end)
        t.windows;
      if not !referenced then ignore (merged_candidates t ~data))

let prefetch_merged t =
  Obs.Span.with_ ~name:"problem.prefetch_merged" @@ fun () ->
  Engine.iter ~jobs:t.jobs (n_data t) (fun data ->
      ignore (merged_candidates t ~data))

let check_feasible t ~who =
  match t.policy with
  | Unbounded -> ()
  | Bounded c ->
      let n = n_data t in
      if c * Pim.Mesh.size t.mesh < n then
        invalid_arg
          (Printf.sprintf
             "%s: %d data cannot fit in %d processors of capacity %d" who n
             (Pim.Mesh.size t.mesh) c)

let fresh_memory t =
  match t.policy with
  | Unbounded -> Pim.Memory.unbounded t.mesh
  | Bounded c -> Pim.Memory.create t.mesh ~capacity:c

let layer_vectors t ~data =
  Array.init (n_windows t) (fun w -> cost_vector t ~window:w ~data)

let layered t ~data =
  let vectors = layer_vectors t ~data in
  let cols = Pim.Mesh.cols t.mesh in
  let xd = t.xdist and yd = t.ydist in
  {
    Pathgraph.Layered.n_layers = Array.length vectors;
    width = Pim.Mesh.size t.mesh;
    enter_cost = (fun j -> vectors.(0).(j));
    step_cost =
      (fun ~layer j k ->
        xd.(j mod cols).(k mod cols)
        + yd.(j / cols).(k / cols)
        + vectors.(layer).(k));
  }
