let default_jobs () = Domain.recommended_domain_count ()

(* Chaos hook at the task boundary: [Injected] surfaces exactly like a
   body exception (recorded first-wins on the parallel path, immediate on
   the serial one), exercising the submitter's re-raise plumbing without
   touching any real body. Disabled it costs one ref read per index. *)
let fp_task = Obs.Failpoint.site "engine.task"

(* Persistent domain pool.

   Helper domains are spawned once, on first demand, and kept for the
   lifetime of the process (joined from an [at_exit] hook): publishing a
   job to sleeping workers costs a mutex round-trip instead of a domain
   spawn, so fanning many small batches out — the cache-fill pattern of
   [Problem] — stays cheap.

   A job is a shared chunk counter: the submitting domain and up to
   [jobs - 1] helpers race to claim chunks of consecutive indices, so the
   submitter alone makes progress even if every helper is busy or the
   machine has one core. Claiming by chunk instead of by single index
   amortizes the atomic round-trip (and its cache-line bounce) over
   [chunk] bodies — at fine grains (a 16×16 window-row fill is a few µs)
   per-index claiming made jobs=4 no faster than jobs=1. The chunk size
   targets ~8 chunks per worker so tail imbalance stays bounded while
   claim traffic drops by the chunk factor. [slots] bounds helper
   participation to the job's own [jobs] budget no matter how large the
   pool has grown. Body exceptions are recorded (first one wins, the
   remaining indices still run) and re-raised by the submitter once every
   index has completed, so no work is left in flight when [run_pool]
   returns. *)

type job = {
  n : int;
  chunk : int; (* indices per claim *)
  body : int -> unit;
  next : int Atomic.t; (* next chunk to claim *)
  completed : int Atomic.t; (* indices whose body has returned *)
  slots : int Atomic.t; (* remaining helper seats *)
  failed : exn option Atomic.t;
}

let pool_mutex = Mutex.create ()
let pool_cond = Condition.create ()

(* All three protected by [pool_mutex]; [pool_gen] bumps on every publish
   so a worker can tell a fresh job from the one it just finished. *)
let pool_job : job option ref = ref None
let pool_gen = ref 0
let pool_handles : unit Domain.t list ref = ref []
let pool_stop = ref false

let run_job job =
  (* Instrumentation is read once per job: the per-claim loop pays one
     local increment, timing only when the switch is on. Claim counts
     and timings are inherently jobs-dependent (queue imbalance lives
     here), unlike the algorithmic counters recorded by the bodies. *)
  let instrument = !Obs.enabled in
  let claimed = ref 0 in
  let t_begin = if instrument then Obs.now_us () else 0. in
  let rec go () =
    let lo = Atomic.fetch_and_add job.next 1 * job.chunk in
    if lo < job.n then begin
      let hi = min job.n (lo + job.chunk) in
      claimed := !claimed + (hi - lo);
      for i = lo to hi - 1 do
        let t0 = if instrument then Obs.now_us () else 0. in
        (try
           Obs.Failpoint.hit fp_task;
           job.body i
         with e -> ignore (Atomic.compare_and_set job.failed None (Some e)));
        if instrument then
          Obs.Metrics.observe "engine.task_us"
            (int_of_float (Obs.now_us () -. t0))
      done;
      ignore (Atomic.fetch_and_add job.completed (hi - lo));
      go ()
    end
  in
  go ();
  if instrument then begin
    Obs.Metrics.add "engine.tasks_claimed" !claimed;
    Obs.Metrics.observe "engine.tasks_per_worker" !claimed;
    Obs.Metrics.add "engine.worker_busy_us"
      (int_of_float (Obs.now_us () -. t_begin))
  end

let worker () =
  let rec loop seen =
    Mutex.lock pool_mutex;
    while (not !pool_stop) && !pool_gen = seen do
      Condition.wait pool_cond pool_mutex
    done;
    let stop = !pool_stop in
    let gen = !pool_gen in
    let job = !pool_job in
    Mutex.unlock pool_mutex;
    if not stop then begin
      (match job with
      | Some j when Atomic.fetch_and_add j.slots (-1) > 0 -> run_job j
      | Some _ | None -> ());
      loop gen
    end
  in
  loop 0

let shutdown () =
  Mutex.lock pool_mutex;
  pool_stop := true;
  Condition.broadcast pool_cond;
  let handles = !pool_handles in
  pool_handles := [];
  Mutex.unlock pool_mutex;
  List.iter Domain.join handles

let () = at_exit shutdown

(* Grow the pool to [helpers] domains (it never shrinks). *)
let ensure_helpers helpers =
  Mutex.lock pool_mutex;
  let missing = helpers - List.length !pool_handles in
  for _ = 1 to missing do
    pool_handles := Domain.spawn worker :: !pool_handles
  done;
  Mutex.unlock pool_mutex

let run_pool ~jobs n body =
  (* more domains than cores never helps and on small machines actively
     hurts (context-switch churn), so the budget is capped at the
     machine's recommended count; results do not depend on the cap *)
  let k = min (min jobs n) (default_jobs ()) in
  if k <= 1 then
    for i = 0 to n - 1 do
      Obs.Failpoint.hit fp_task;
      body i
    done
  else begin
    (* ~8 chunks per worker: coarse enough to amortize the claim, fine
       enough that a straggler chunk costs at most ~1/8 of a worker's
       share *)
    let chunk = max 1 (n / (k * 8)) in
    if !Obs.enabled then begin
      Obs.Metrics.incr "engine.batches";
      Obs.Metrics.add "engine.tasks" n;
      Obs.Metrics.observe "engine.chunk_size" chunk
    end;
    let job =
      {
        n;
        chunk;
        body;
        next = Atomic.make 0;
        completed = Atomic.make 0;
        slots = Atomic.make (k - 1);
        failed = Atomic.make None;
      }
    in
    ensure_helpers (k - 1);
    Mutex.lock pool_mutex;
    pool_job := Some job;
    incr pool_gen;
    Condition.broadcast pool_cond;
    Mutex.unlock pool_mutex;
    run_job job;
    (* the counter is exhausted; wait out helpers still inside a body *)
    while Atomic.get job.completed < n do
      Domain.cpu_relax ()
    done;
    match Atomic.get job.failed with Some e -> raise e | None -> ()
  end

let iter ~jobs n f =
  if n < 0 then invalid_arg "Engine.iter: negative count";
  run_pool ~jobs n f

let map ~jobs n f =
  if n < 0 then invalid_arg "Engine.map: negative count";
  if n = 0 then [||]
  else if min jobs n <= 1 then Array.init n f
  else begin
    let results = Array.make n None in
    run_pool ~jobs n (fun i -> results.(i) <- Some (f i));
    Array.map (function Some v -> v | None -> assert false) results
  end
