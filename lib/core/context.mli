(** The immutable half of a scheduling instance, shared across requests.

    A [Context.t] is everything about an instance that does not change
    once built and carries no per-request mutable state: the mesh and its
    per-axis distance tables, the trace with its window array and merged
    window forced eagerly, the default capacity policy / domain-pool size
    / cost kernel, and (under the [`Naive] kernel only) the private full
    distance table its oracle-role vector builds read.

    {!Problem.t} layers the {e request-scoped} half on top: cost arenas,
    marginal/center/candidate caches and the fault overlay. Any number of
    concurrent sessions ({!Problem.of_context}) may share one context from
    different domains — nothing here is written after {!create}, so there
    is nothing to race on. This split is what lets a long-lived scheduler
    service ({!Serve}) keep axis tables and trace preprocessing hot across
    thousands of requests while every request still gets private slabs. *)

(** How much data each processor's local memory holds (the historical
    [?capacity:int] optional, made total). *)
type capacity_policy = Unbounded | Bounded of int

(** Which cost kernel fills a session's arena rows — see {!Problem.kernel}. *)
type kernel = [ `Separable | `Naive ]

type t = private {
  mesh : Pim.Mesh.t;
  trace : Reftrace.Trace.t;
  policy : capacity_policy;  (** default for sessions; overridable per request *)
  jobs : int;  (** default domain-pool budget for sessions *)
  kernel : kernel;
  windows : Reftrace.Window.t array;  (** treat as read-only *)
  merged : Reftrace.Window.t;  (** forced at build time (thread-safe reads) *)
  size : int;  (** [Pim.Mesh.size mesh] *)
  xdist : int array array;  (** per-axis distance tables; read-only *)
  ydist : int array array;
  naive_dist : int array array option;
      (** full rank-to-rank table, present iff [kernel = `Naive] *)
  max_arena_bytes : int;
      (** bytes a session's cost arena occupies when {e every} row is
          forced: one [size]-entry row of boxed-free 8-byte ints per
          (datum, referencing window) pair plus the shared zero row per
          datum. The admission-control currency of {!Serve}. *)
}
(** Exposed for allocation-free field reads; never mutate, and build only
    through {!create}. *)

(** [create ?policy ?jobs ?kernel mesh trace] builds the shared context.
    Defaults match {!Problem.create}: [Unbounded], [jobs = 1],
    [`Separable].
    @raise Invalid_argument if [Bounded c] with [c < 0] or [jobs < 1]. *)
val create :
  ?policy:capacity_policy ->
  ?jobs:int ->
  ?kernel:kernel ->
  Pim.Mesh.t ->
  Reftrace.Trace.t ->
  t

val mesh : t -> Pim.Mesh.t
val trace : t -> Reftrace.Trace.t
val policy : t -> capacity_policy
val jobs : t -> int
val kernel : t -> kernel
val space : t -> Reftrace.Data_space.t
val n_data : t -> int
val n_windows : t -> int

(** [distance t a b] is the healthy per-axis routing distance (two table
    reads; fault overlays live on the session, not here). *)
val distance : t -> int -> int -> int
