let schedule ?(theta = 2.) ?initial problem =
  if theta <= 0. then invalid_arg "Online.run: theta must be positive";
  let mesh = Problem.mesh problem in
  let space = Problem.space problem in
  let n_data = Problem.n_data problem in
  let n_windows = Problem.n_windows problem in
  let initial =
    match initial with
    | Some p ->
        if Array.length p <> n_data then
          invalid_arg "Online.run: initial placement has the wrong length";
        Array.iteri
          (fun d rank ->
            if rank < 0 || rank >= Pim.Mesh.size mesh then
              invalid_arg
                (Printf.sprintf "Online.run: datum %d at invalid rank %d" d
                   rank))
          p;
        Array.copy p
    | None -> Baseline.row_wise mesh space
  in
  Problem.check_feasible problem ~who:"Online.run";
  (match Problem.capacity problem with
  | Some c ->
      (* the imposed layout itself must fit *)
      let load = Array.make (Pim.Mesh.size mesh) 0 in
      Array.iter (fun r -> load.(r) <- load.(r) + 1) initial;
      Array.iteri
        (fun rank l ->
          if l > c then
            invalid_arg
              (Printf.sprintf
                 "Online.run: initial placement packs %d > %d data at rank %d"
                 l c rank))
        load
  | None -> ());
  let unbounded = Problem.policy problem = Problem.Unbounded in
  let schedule = Schedule.create mesh ~n_windows ~n_data in
  let current = Array.copy initial in
  for w = 0 to n_windows - 1 do
    let window = Problem.window problem w in
    if w > 0 then begin
      (* window-major view: the stay/go probes for every datum of this
         window read one batched row set instead of paying a cost_entry
         dispatch (arena lookup + fill check) per probe *)
      let slabs, offs = Problem.window_rows problem ~window:w in
      let entry data rank = slabs.(data).{offs.(data) + rank} in
      (* one fresh memory per window, pre-filled with the carried data *)
      let memory = Problem.fresh_memory problem in
      Array.iter
        (fun rank ->
          let ok = Pim.Memory.allocate memory rank in
          assert ok)
        current;
      List.iter
        (fun data ->
          let here = current.(data) in
          let stay = entry data here in
          Pim.Memory.release memory here;
          let best =
            if unbounded then
              (* vector-free fast path: with a free slot everywhere the
                 first available candidate is the list head, i.e. the
                 lowest-rank cost argmin *)
              Problem.optimal_center problem ~window:w ~data
            else
              let candidates = Problem.candidates problem ~window:w ~data in
              match Processor_list.first_available memory candidates with
              | Some rank -> rank
              | None -> here
          in
          let go = entry data best in
          let move = Problem.distance problem here best in
          let chosen =
            if
              best <> here
              && float_of_int (stay - go) *. theta > float_of_int move
            then best
            else here
          in
          let ok = Pim.Memory.allocate memory chosen in
          assert ok;
          current.(data) <- chosen)
        (Ordering.by_window_references window)
    end;
    Array.iteri
      (fun data rank -> Schedule.set_center schedule ~window:w ~data rank)
      current
  done;
  schedule

let run ?capacity ?theta ?initial mesh trace =
  schedule ?theta ?initial (Problem.of_capacity ?capacity mesh trace)
