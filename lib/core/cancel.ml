exception Expired

(* [deadline_us] on the Obs.Clock monotonic scale; [infinity] = never.
   [aborted] is the explicit flag — an atomic so any domain can cancel a
   solve running on another. The [none] token is a shared constant whose
   flag must never be set (checked in [cancel]), so polling it costs one
   float compare and one atomic load. *)
type t = { deadline_us : float; aborted : bool Atomic.t }

let none = { deadline_us = infinity; aborted = Atomic.make false }

let after ~budget_ms =
  { deadline_us = Obs.Clock.now_us () +. (budget_ms *. 1000.);
    aborted = Atomic.make false }

let cancel t =
  if t == none then invalid_arg "Cancel.cancel: the none token";
  Atomic.set t.aborted true

let expired t =
  Atomic.get t.aborted
  || (t.deadline_us < infinity && Obs.Clock.now_us () > t.deadline_us)

let check t = if expired t then raise Expired
