(** Lower bounds on total communication cost.

    With unbounded memory the data are independent, so the sum of per-datum
    shortest-path optima (GOMCDS's DP) is a true lower bound on {e any}
    schedule of the instance — capacity-constrained or not. Benches report
    each scheduler's gap to this bound, which turns "A beats B" comparisons
    into absolute statements about remaining headroom. *)

(** [lower_bound_in problem] is Σ over data of the unconstrained optimal
    per-datum cost, one DP per datum run concurrently on the context's
    domain pool. The per-datum cost vectors stay cached on the context, so
    a later scheduler run on the same instance rereads them for free. *)
val lower_bound_in : Problem.t -> int

(** [static_lower_bound_in problem] is the same bound restricted to
    movement-free schedules — the best cost SCDS could possibly achieve. *)
val static_lower_bound_in : Problem.t -> int

(** [gap ~bound ~cost] is [(cost - bound) / bound * 100.]; [0.] when the
    bound is zero. *)
val gap : bound:int -> cost:int -> float
