let mesh = Pim.Mesh.square 4
let data = 0

(* Reference counts per window, as (x, y, count) triples. The hot region
   sits around (1,0) in windows 0 and 2, feints towards (1,3) in window 1,
   and settles near (1,1) in window 3 — the drift pattern of Figure 1. *)
let window_specs =
  [
    [ (1, 0, 4); (0, 0, 2); (2, 1, 1) ];
    [ (1, 3, 2); (1, 0, 1) ];
    [ (1, 0, 4); (0, 1, 1) ];
    [ (1, 1, 3); (2, 1, 2) ];
  ]

let trace =
  let space = Reftrace.Data_space.matrix "D" 1 in
  let windows =
    List.map
      (fun spec ->
        let w = Reftrace.Window.create ~n_data:1 in
        List.iter
          (fun (x, y, count) ->
            let proc = Pim.Mesh.rank_of_coord mesh (Pim.Coord.make ~x ~y) in
            Reftrace.Window.add w ~data ~proc ~count)
          spec;
        w)
      window_specs
  in
  Reftrace.Trace.create space windows

type outcome = {
  algorithm : string;
  centers : Pim.Coord.t array;
  reference : int;
  movement : int;
  total : int;
}

let outcome_of_schedule name schedule =
  let breakdown = Schedule.cost schedule trace in
  {
    algorithm = name;
    centers =
      Array.map
        (Pim.Mesh.coord_of_rank mesh)
        (Schedule.centers_of_data schedule ~data);
    reference = breakdown.Schedule.reference;
    movement = breakdown.Schedule.movement;
    total = breakdown.Schedule.total;
  }

let scds () = outcome_of_schedule "SCDS" (Scds.schedule (Problem.create mesh trace))
let lomcds () = outcome_of_schedule "LOMCDS" (Lomcds.schedule (Problem.create mesh trace))
let gomcds () = outcome_of_schedule "GOMCDS" (Gomcds.schedule (Problem.create mesh trace))
let all () = [ scds (); lomcds (); gomcds () ]

let pp_outcome fmt o =
  Format.fprintf fmt "%-7s centers:" o.algorithm;
  Array.iter (fun c -> Format.fprintf fmt " %a" Pim.Coord.pp c) o.centers;
  Format.fprintf fmt "  cost = %d (ref %d + move %d)" o.total o.reference
    o.movement
