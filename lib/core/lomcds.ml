let local_centers mesh trace ~data =
  Reftrace.Trace.windows trace
  |> List.map (fun window ->
         if Reftrace.Window.references window data > 0 then
           Some (Cost.local_optimal_center mesh window ~data)
         else None)
  |> Array.of_list

(* First window in which each datum is referenced; [n_windows] if never. *)
let first_reference_window problem =
  let n_data = Problem.n_data problem in
  let n_windows = Problem.n_windows problem in
  let first = Array.make n_data n_windows in
  for w = 0 to n_windows - 1 do
    List.iter
      (fun data -> if first.(data) > w then first.(data) <- w)
      (Reftrace.Window.referenced_data (Problem.window problem w))
  done;
  first

(* Vector-free unbounded walk: with infinite memories [assign] always
   takes the head of the processor list — the lowest-rank cost argmin —
   so every placement is an [optimal_center] probe and no cost vector or
   candidate list is ever materialized. Placements are byte-identical to
   the candidate-list walk below (the argmin tie order matches the list
   head; pinned by test/test_fastpath.ml). *)
let schedule_unbounded problem schedule first =
  let n_data = Problem.n_data problem in
  let n_windows = Problem.n_windows problem in
  (* parallel phase: every optimal center the serial walk reads *)
  Problem.prefetch_centers problem;
  let current =
    Array.init n_data (fun data ->
        if first.(data) >= n_windows then
          Problem.merged_optimal_center problem ~data
        else Problem.optimal_center problem ~window:first.(data) ~data)
  in
  for w = 0 to n_windows - 1 do
    List.iter
      (fun data ->
        current.(data) <- Problem.optimal_center problem ~window:w ~data)
      (Reftrace.Window.referenced_data (Problem.window problem w));
    Array.iteri
      (fun data rank -> Schedule.set_center schedule ~window:w ~data rank)
      current
  done;
  schedule

let schedule_bounded problem schedule first =
  let n_data = Problem.n_data problem in
  let n_windows = Problem.n_windows problem in
  (* parallel phase: every processor list the serial walk below reads *)
  Problem.prefetch_referenced problem;
  (* Initial placement: each datum goes where its first referencing window
     wants it; data never referenced fall back to the merged profile (all
     zeros -> lowest ranks, spread by capacity). Assignment order: earlier
     first window, then heavier in that window. *)
  let initial = Array.make n_data 0 in
  let init_memory = Problem.fresh_memory problem in
  let merged = Problem.merged problem in
  let init_order =
    List.init n_data Fun.id
    |> List.sort (fun a b ->
           let c = Int.compare first.(a) first.(b) in
           if c <> 0 then c
           else
             let window w d =
               if w >= n_windows then Reftrace.Window.references merged d
               else Reftrace.Window.references (Problem.window problem w) d
             in
             let c = Int.compare (window first.(b) b) (window first.(a) a) in
             if c <> 0 then c else Int.compare a b)
  in
  List.iter
    (fun data ->
      let candidates =
        if first.(data) >= n_windows then
          Problem.merged_candidates problem ~data
        else Problem.candidates problem ~window:first.(data) ~data
      in
      initial.(data) <- Processor_list.assign init_memory candidates)
    init_order;
  (* Walk the windows. [current.(d)] is where datum [d] sits entering the
     window; referenced data are reassigned to (as close as possible to)
     their local optimal center. *)
  let current = Array.copy initial in
  for w = 0 to n_windows - 1 do
    let window = Problem.window problem w in
    let memory = Problem.fresh_memory problem in
    Array.iter
      (fun rank ->
        let ok = Pim.Memory.allocate memory rank in
        assert ok)
      current;
    List.iter
      (fun data ->
        Pim.Memory.release memory current.(data);
        let candidates = Problem.candidates problem ~window:w ~data in
        current.(data) <- Processor_list.assign memory candidates)
      (Ordering.by_window_references window);
    Array.iteri
      (fun data rank -> Schedule.set_center schedule ~window:w ~data rank)
      current
  done;
  schedule

let schedule problem =
  Problem.check_feasible problem ~who:"Lomcds.schedule";
  let sched =
    Schedule.create (Problem.mesh problem)
      ~n_windows:(Problem.n_windows problem)
      ~n_data:(Problem.n_data problem)
  in
  let first = first_reference_window problem in
  match Problem.policy problem with
  | Problem.Unbounded -> schedule_unbounded problem sched first
  | Problem.Bounded _ -> schedule_bounded problem sched first

