(** Reschedule-on-failure: execute a schedule on an array that degrades
    mid-run.

    The schedulers plan against a fixed fault model; this module answers
    what happens when the model changes {e between execution windows} — a
    processor or link dying after window [w - 1] completes and before
    window [w] starts. Execution walks the windows charging the same
    accounting as {!Schedule.cost} (volume · distance references, volume ·
    distance migrations, initial placement free), with distances served by
    the fault-aware BFS oracle once links die.

    When a failure arrives:

    + data physically sitting on a freshly dead rank are {e evicted} to the
      nearest alive rank ([evicted_cost] — the price of the failure
      itself);
    + every remaining planned center on a dead rank is repaired to the
      nearest alive rank (a schedule may never host data on a dead
      processor);
    + with [~reschedule:true], the surviving windows are re-solved on the
      degraded {!Problem.t} ({!Problem.with_fault}) and merged {e per
      datum}: each datum keeps whichever continuation — re-solved or
      repaired original — prices cheaper under the same routine that
      charges execution. The continuation price is separable across data,
      so rescheduling never loses to not rescheduling, and wins whenever
      the re-solve improves any single datum;
    + references issued by dead processors are reissued by their repair
      rank ([remapped_refs]); messages whose destination has no surviving
      path are counted ([undeliverable] — retry accounting) and charged
      nothing.

    On a healthy run ([events = []] on a fault-free problem) the paid cost
    equals {!Schedule.total_cost} of the planned schedule exactly. *)

(** [fault] becomes active immediately {e before} window [window]
    executes; faults accumulate ({!Pim.Fault.union}) across events. *)
type event = { window : int; fault : Pim.Fault.t }

type report = {
  algorithm : Scheduler.algorithm;
  reschedule : bool;  (** was reschedule-on-failure enabled *)
  planned_cost : int;
      (** analytic cost of the initial plan on the un-degraded problem *)
  reference_cost : int;  (** paid: volume·distance over delivered fetches *)
  movement_cost : int;  (** paid: migrations, including evictions *)
  paid_cost : int;  (** [reference_cost + movement_cost] *)
  evicted : int;  (** data forced off freshly dead ranks *)
  evicted_cost : int;  (** portion of [movement_cost] those evictions cost *)
  reroute_hops : int;
      (** extra hops actually traveled beyond healthy x-y distances *)
  remapped_refs : int;  (** references reissued for dead processors *)
  undeliverable : int;
      (** messages with no surviving path — counted for retry, charged 0 *)
  reschedules : int;
      (** fault events at which the re-solve improved at least one datum's
          continuation (≤ number of fault events) *)
}

(** [run ?reschedule ?events problem algorithm] plans with [algorithm] on
    [problem], then executes window by window under the accumulating
    [events]. [reschedule] (default [true]) re-solves surviving windows at
    each fault event and keeps the cheaper continuation.
    @raise Invalid_argument if an event window is out of range, an event
    fault does not fit the mesh, or the accumulated fault kills every
    processor. *)
val run :
  ?reschedule:bool ->
  ?events:event list ->
  Problem.t ->
  Scheduler.algorithm ->
  report

val pp_report : Format.formatter -> report -> unit
