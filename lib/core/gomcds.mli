(** Global-Optimal Multiple-Center Data Scheduling (paper Algorithm 2).

    For each datum a layered cost-graph is built: node (i, j) is "the datum
    sits at processor j during window i"; entering a node costs that
    window's reference cost from j, and the edge from (i, j) to (i+1, k)
    additionally costs the j→k migration. The shortest source→sink path
    gives the provably cheapest center sequence for the datum — with
    unbounded memory, GOMCDS is optimal per datum (the test suite checks it
    against brute-force enumeration and the LOMCDS/SCDS upper bounds).

    With bounded memory, data are scheduled heaviest-first and each datum's
    shortest path is restricted to (window, processor) nodes with free
    slots, the precise form of the paper's processor-list remark. *)

(** [schedule problem] computes the GOMCDS schedule on a shared
    {!Problem.t}. With an unbounded policy the per-datum shortest paths are
    solved concurrently on the context's domain pool (they share no state);
    with [Bounded _] the cost vectors are filled in parallel and the
    occupancy-aware routing runs serially, heaviest datum first. Either
    way the schedule is identical at every [jobs] setting.
    @raise Invalid_argument if the capacity policy is infeasible. *)
val schedule : Problem.t -> Schedule.t

(** [optimal_centers mesh trace ~data] is the unconstrained per-window
    center sequence and its total (reference + movement) cost for one
    datum. *)
val optimal_centers :
  Pim.Mesh.t -> Reftrace.Trace.t -> data:int -> int * int array

(** [cost_problem mesh trace ~data] is the layered shortest-path problem for
    one datum (reference cost on nodes, migration on edges) — the object
    both {!schedule} and {!Refine} solve. {!Problem.layered} is the cached
    equivalent; this one recomputes its vectors each call. *)
val cost_problem :
  Pim.Mesh.t -> Reftrace.Trace.t -> data:int -> Pathgraph.Layered.problem

(** [cost_graph mesh trace ~data] materializes the paper's cost-graph as an
    explicit DAG and returns [(graph, source, sink, node_id)]; exposed so
    tests can cross-check the DP against {!Pathgraph.Shortest_path} on the
    explicit graph. *)
val cost_graph :
  Pim.Mesh.t ->
  Reftrace.Trace.t ->
  data:int ->
  Pathgraph.Digraph.t * int * int * (layer:int -> int -> int)
