(** Unified front-end over every scheduling algorithm in the library.

    The preferred entry point is {!solve}: build one {!Problem.t} for the
    instance (mesh + trace + capacity policy + domain-pool size) and
    dispatch any number of algorithms against it — they share the context's
    cost-vector cache and distance table, and their per-datum work fans out
    across the pool. The [mesh]-and-[trace] signatures remain as thin
    shims. *)

type algorithm =
  | Row_wise  (** the paper's straight-forward baseline *)
  | Column_wise
  | Block_2d
  | Cyclic
  | Random of int  (** seeded random static placement *)
  | Scds
  | Lomcds
  | Gomcds
  | Lomcds_grouped  (** Algorithm 3 with local centers — Table 2 *)
  | Gomcds_grouped  (** Algorithm 3 followed by shortest-path centers *)
  | Gomcds_refined
      (** GOMCDS followed by the {!Refine} fixed-point pass — repairs
          greedy capacity commitments (our extension) *)
  | Best_refined
      (** portfolio: refine GOMCDS, LOMCDS and both grouping variants to a
          fixed point and keep the cheapest (our extension) *)
  | Annealing of int
      (** {!Annealing.anneal} on the shared context at the given seed —
          the structure-blind comparator (our extension) *)
  | Online of float
      (** {!Online.schedule} on the shared context at the given hysteresis
          theta (our extension) *)

(** Every algorithm in the paper's presentation order — the portfolio
    {e compare} sweeps. [Annealing]/[Online] are dispatchable by name but
    excluded here: one is orders of magnitude slower than the rest, the
    other answers a different (no-lookahead) question. *)
val all : algorithm list

val name : algorithm -> string

(** Every {!name}, in presentation order — the CLI spellings. *)
val valid_names : string list

(** [of_name s] parses the CLI spelling produced by {!name}.
    Case-insensitive; surrounding whitespace is ignored.
    @raise Invalid_argument on unknown names, listing the valid ones. *)
val of_name : string -> algorithm

(** [solve problem algorithm] dispatches to the implementation. Static
    baselines ignore the capacity policy (their placements respect the
    paper's 2× headroom rule by construction; see {!Baseline.max_load}).
    Every algorithm is deterministic in the instance alone: any [jobs]
    setting yields the identical schedule. *)
val solve : Problem.t -> algorithm -> Schedule.t

(** [evaluate_in problem algorithm] runs and prices the schedule. *)
val evaluate_in : Problem.t -> algorithm -> Schedule.t * Schedule.cost_breakdown

(** [run ?capacity ?jobs algorithm mesh trace] is {!solve} on a one-shot
    context — kept for existing call sites; [jobs] defaults to serial. *)
val run :
  ?capacity:int ->
  ?jobs:int ->
  algorithm ->
  Pim.Mesh.t ->
  Reftrace.Trace.t ->
  Schedule.t

(** [evaluate ?capacity ?jobs algorithm mesh trace] runs and prices the
    schedule on a one-shot context. *)
val evaluate :
  ?capacity:int ->
  ?jobs:int ->
  algorithm ->
  Pim.Mesh.t ->
  Reftrace.Trace.t ->
  Schedule.t * Schedule.cost_breakdown

(** [improvement ~baseline ~cost] is the paper's "%" column:
    [(baseline - cost) / baseline * 100.]; [0.] when [baseline] is 0. *)
val improvement : baseline:int -> cost:int -> float
