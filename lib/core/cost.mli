(** The paper's communication cost model.

    The cost of a processor's reference to a datum stored at [center] is the
    x-y routing distance between them; the total communication cost of a
    datum in a window is Σ count(p) · dist(center, p) over the window's
    processor reference string. Moving a datum between two consecutive
    windows' centers costs their distance (unit data volume — the paper
    keeps one copy of each datum and charges one time unit per hop).

    Two interchangeable kernels answer the model. The top-level functions
    are the {e separable} kernel: x-y routing distance decomposes per axis,
    so a whole cost vector follows from the window's per-axis weight
    marginals ({!Reftrace.Window.marginals}) in O(P + refs) via prefix sums
    (circular prefix sums on a torus). {!Naive} retains the direct
    O(P · refs) per-vector evaluation as the executable specification; the
    two agree byte-for-byte, including argmin tie order — enforced by the
    property suite in [test/test_kernel.ml]. *)

(** [reference_cost mesh window ~data ~center] is the total cost of serving
    every reference to [data] in [window] from [center]. *)
val reference_cost :
  Pim.Mesh.t -> Reftrace.Window.t -> data:int -> center:int -> int

(** [cost_vector mesh window ~data] tabulates {!reference_cost} for every
    candidate center; index = processor rank. Built separably from axis
    marginals in O(P + refs). *)
val cost_vector : Pim.Mesh.t -> Reftrace.Window.t -> data:int -> int array

(** [local_optimal_center mesh window ~data] is the paper's Definition 4:
    the minimum-cost center for [data] in [window] (smallest rank on ties,
    for determinism). For a datum with no references every processor costs 0
    and rank 0 is returned. *)
val local_optimal_center :
  Pim.Mesh.t -> Reftrace.Window.t -> data:int -> int

(** [movement_cost mesh ~from_ ~to_] is the cost of migrating one datum. *)
val movement_cost : Pim.Mesh.t -> from_:int -> to_:int -> int

(** [path_cost mesh window_profiles centers] is the full per-datum schedule
    cost: reference cost of each window (paired with its center) plus
    movement between consecutive centers. [window_profiles] and [centers]
    must have equal length. Used by grouping and the brute-force optimum.
    @raise Invalid_argument on length mismatch or empty input. *)
val path_cost :
  Pim.Mesh.t -> (Reftrace.Window.t * int) list -> data:int -> int

(** [axis_cost ~wrap m] maps an axis weight marginal [m] (length [E]) to
    the per-position axis cost array: [c.(i) = Σ_j m.(j) · d(i, j)] with
    [d] the wrap-aware 1-D distance. O(E) via (circular) prefix sums. *)
val axis_cost : wrap:bool -> int array -> int array

(** [vector_of_marginals ~wrap ~cols ~rows (mx, my)] assembles a full cost
    vector from per-axis marginals: [v.(y·cols + x) = cx.(x) + cy.(y)]. The
    entry point for callers that already hold marginals (e.g. merged-window
    pricing in {!Sched.Grouping}) and want to skip re-projection. *)
val vector_of_marginals :
  wrap:bool -> cols:int -> rows:int -> int array * int array -> int array

(** [fill_of_marginals ~wrap ~cols ~rows m ~dst ~off] is
    {!vector_of_marginals} written into [dst.(off) ..
    dst.(off + cols·rows - 1)] instead of a fresh array — the arena-backed
    fill {!Sched.Problem} batches one flat buffer per datum with. *)
val fill_of_marginals :
  wrap:bool ->
  cols:int ->
  rows:int ->
  int array * int array ->
  dst:int array ->
  off:int ->
  unit

(** [fill_slab_of_marginals] is {!fill_of_marginals} targeting a bigarray
    arena slab ({!Pathgraph.Layered.buffer}). Every entry of the
    [cols·rows] row is written, which is what lets {!Sched.Problem}
    allocate slabs uninitialized. *)
val fill_slab_of_marginals :
  wrap:bool ->
  cols:int ->
  rows:int ->
  int array * int array ->
  dst:Pathgraph.Layered.buffer ->
  off:int ->
  unit

(** [fill_window_batch ~wrap ~cols ~rows items] assembles one slab row per
    [(marginals, (slab, offset))] pair, sharing the axis-cost and
    prefix-sum scratch across the whole batch — the per-window fill
    {!Sched.Problem.prefetch_all} batches all of a window's referenced
    data through. Counts one separable build per row (same accounting as
    {!fill_slab_of_marginals}) and one [cost.batch_fills] metric per
    non-empty batch. *)
val fill_window_batch :
  wrap:bool ->
  cols:int ->
  rows:int ->
  ((int array * int array) * (Pathgraph.Layered.buffer * int)) list ->
  unit

(** [argmin_of_marginals ~wrap ~cols ~rows m] is the vector-free fast path
    of Definition 4: the minimum-cost center and its cost, computed
    directly from the axis marginals in O(cols + rows) without assembling
    the cols·rows cost vector. Tie order (lowest index per axis, hence
    lowest row-major rank) is identical to an ascending full-vector argmin
    — the property suite in [test/test_fastpath.ml] pins this on meshes
    and tori. *)
val argmin_of_marginals :
  wrap:bool -> cols:int -> rows:int -> int array * int array -> int * int

(** The direct O(P · refs) evaluation of the same model — the oracle the
    separable kernel is cross-checked against, and the implementation
    behind [~kernel:`Naive] in {!Sched.Problem}. Semantics (including tie
    order and error behaviour) are identical to the top-level functions. *)
module Naive : sig
  val reference_cost :
    Pim.Mesh.t -> Reftrace.Window.t -> data:int -> center:int -> int

  val cost_vector : Pim.Mesh.t -> Reftrace.Window.t -> data:int -> int array

  val local_optimal_center :
    Pim.Mesh.t -> Reftrace.Window.t -> data:int -> int

  val movement_cost : Pim.Mesh.t -> from_:int -> to_:int -> int

  val path_cost :
    Pim.Mesh.t -> (Reftrace.Window.t * int) list -> data:int -> int
end
