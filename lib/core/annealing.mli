(** Simulated-annealing scheduler — a generic metaheuristic comparator.

    The paper's algorithms exploit the problem's structure (per-datum
    independence, layered DAG). A natural question for any such design is
    whether a structure-blind search does as well given comparable effort;
    this module answers it. State = full center matrix; move = relocate one
    (window, datum) pair to a random processor with a free slot; objective =
    the exact weighted total cost, evaluated incrementally in O(profile)
    per move; geometric cooling with a private xorshift generator, so runs
    are reproducible per seed.

    Benches show annealing beats the row-wise baseline easily but stays
    well behind GOMCDS at a large multiple of its runtime — evidence the
    shortest-path structure is doing real work. *)

type stats = {
  iterations : int;
  accepted : int;  (** moves accepted (including uphill ones) *)
  initial_cost : int;
  final_cost : int;
}

(** [anneal ?seed ?iterations ?initial problem] anneals from [initial]
    (default: the row-wise static schedule) on a shared {!Problem.t}: the
    whole cost arena is prefetched on the context's domain pool once, and
    every move's reference-cost delta is then two {!Problem.cost_entry}
    reads — so annealing shares (and warms) the same caches as every
    other scheduler run on the context. [iterations] defaults to
    [50_000], [seed] to [0xBEEF]. Results are byte-identical to the old
    standalone [run] at equal seeds (pinned by [test/test_fastpath.ml]).
    @raise Invalid_argument if [initial] has the wrong shape, violates
    the context's capacity, or [iterations < 0]. *)
val anneal :
  ?seed:int ->
  ?iterations:int ->
  ?initial:Schedule.t ->
  Problem.t ->
  Schedule.t * stats

(** [run ?capacity ?seed ?iterations ?initial mesh trace] is {!anneal} on
    a throwaway context — the historical entry point. *)
val run :
  ?capacity:int ->
  ?seed:int ->
  ?iterations:int ->
  ?initial:Schedule.t ->
  Pim.Mesh.t ->
  Reftrace.Trace.t ->
  Schedule.t * stats
