type stats = { sweeps : int; improved : int; saved : int }

let refine ?(max_sweeps = 8) problem schedule =
  let n_data = Problem.n_data problem in
  let n_windows = Problem.n_windows problem in
  let trace = Problem.trace problem in
  if
    Schedule.n_data schedule <> n_data
    || Schedule.n_windows schedule <> n_windows
  then invalid_arg "Refine.refine: schedule and trace shapes disagree";
  let capacity = Problem.capacity problem in
  (match capacity with
  | Some c -> (
      match Schedule.check_capacity schedule ~capacity:c with
      | Some (w, rank, load) ->
          invalid_arg
            (Printf.sprintf
               "Refine.refine: input schedule already violates capacity \
                (window %d, rank %d, load %d > %d)"
               w rank load c)
      | None -> ())
  | None -> ());
  (* every sweep re-reads the same per-datum cost vectors: fill them on the
     pool once, up front *)
  Problem.prefetch_all problem;
  let sched = Schedule.copy schedule in
  let m = Pim.Mesh.size (Problem.mesh problem) in
  let loads = Array.make_matrix n_windows m 0 in
  for w = 0 to n_windows - 1 do
    for d = 0 to n_data - 1 do
      let r = Schedule.center sched ~window:w ~data:d in
      loads.(w).(r) <- loads.(w).(r) + 1
    done
  done;
  let allowed =
    match capacity with
    | None -> fun ~layer:_ _ -> true
    | Some c -> fun ~layer j -> loads.(layer).(j) < c
  in
  let sweeps = ref 0 and improved = ref 0 and saved = ref 0 in
  let space = Reftrace.Trace.space trace in
  let order = Problem.by_total_references problem in
  let progress = ref true in
  while !progress && !sweeps < max_sweeps do
    incr sweeps;
    progress := false;
    List.iter
      (fun data ->
        let traj = Schedule.centers_of_data sched ~data in
        Array.iteri
          (fun w r -> loads.(w).(r) <- loads.(w).(r) - 1)
          traj;
        let current = Problem.trajectory_cost problem ~data traj in
        let adopted =
          match Problem.solve_datum problem ~allowed ~data with
          | Some (cost, centers) when cost < current ->
              Array.iteri
                (fun w rank ->
                  Schedule.set_center sched ~window:w ~data rank;
                  loads.(w).(rank) <- loads.(w).(rank) + 1)
                centers;
              saved :=
                !saved
                + (Reftrace.Data_space.volume_of space data
                  * (current - cost));
              incr improved;
              progress := true;
              true
          | Some _ | None -> false
        in
        if not adopted then
          Array.iteri (fun w r -> loads.(w).(r) <- loads.(w).(r) + 1) traj)
      order
  done;
  (sched, { sweeps = !sweeps; improved = !improved; saved = !saved })

let refined problem = fst (refine problem (Gomcds.schedule problem))

let best_schedule problem =
  (* all four seeds and their refinements share the context's cost-vector
     cache — the vectors are computed exactly once for the whole portfolio *)
  let trace = Problem.trace problem in
  let seeds =
    [
      Gomcds.schedule problem;
      Lomcds.schedule problem;
      Grouping.schedule ~centers:`Local problem;
      Grouping.schedule ~centers:`Global problem;
    ]
  in
  let refined = List.map (fun s -> fst (refine problem s)) seeds in
  match refined with
  | [] -> assert false
  | first :: rest ->
      List.fold_left
        (fun acc s ->
          if Schedule.total_cost s trace < Schedule.total_cost acc trace then
            s
          else acc)
        first rest

