type capacity_policy = Unbounded | Bounded of int
type kernel = [ `Separable | `Naive ]

type t = {
  mesh : Pim.Mesh.t;
  trace : Reftrace.Trace.t;
  policy : capacity_policy;
  jobs : int;
  kernel : kernel;
  windows : Reftrace.Window.t array;
  merged : Reftrace.Window.t;
  size : int;
  xdist : int array array;
  ydist : int array array;
  naive_dist : int array array option;
  max_arena_bytes : int;
}

let create ?(policy = Unbounded) ?(jobs = 1) ?(kernel = `Separable) mesh
    trace =
  (match policy with
  | Bounded c when c < 0 -> invalid_arg "Context.create: negative capacity"
  | Bounded _ | Unbounded -> ());
  if jobs < 1 then invalid_arg "Context.create: jobs must be >= 1";
  let size = Pim.Mesh.size mesh in
  let windows = Array.of_list (Reftrace.Trace.windows trace) in
  let n_data = Reftrace.Data_space.size (Reftrace.Trace.space trace) in
  (* Full-fill arena footprint: per datum, one row per referencing window
     plus the shared zero row — exactly what [Problem.ensure_arena]
     allocates (8-byte entries). Computed here, once, so a service can
     admission-control a request before any slab exists. *)
  let slots = ref 0 in
  for data = 0 to n_data - 1 do
    incr slots;
    Array.iter
      (fun w -> if Reftrace.Window.references w data > 0 then incr slots)
      windows
  done;
  {
    mesh;
    trace;
    policy;
    jobs;
    kernel;
    windows;
    merged = Reftrace.Trace.merged trace;
    size;
    xdist = Pim.Mesh.x_distance_table mesh;
    ydist = Pim.Mesh.y_distance_table mesh;
    naive_dist =
      (match kernel with
      | `Naive -> Some (Pim.Mesh.distance_table mesh)
      | `Separable -> None);
    max_arena_bytes = 8 * size * !slots;
  }

let mesh t = t.mesh
let trace t = t.trace
let policy t = t.policy
let jobs t = t.jobs
let kernel t = t.kernel
let space t = Reftrace.Trace.space t.trace
let n_data t = Reftrace.Data_space.size (space t)
let n_windows t = Array.length t.windows

let distance t a b =
  let c = Pim.Mesh.cols t.mesh in
  t.xdist.(a mod c).(b mod c) + t.ydist.(a / c).(b / c)
