(* The paper's cost model, answered two ways.

   [Naive] walks the full profile once per candidate center — O(P · refs)
   per cost vector — and is kept as the executable specification every
   kernel change is cross-checked against (test/test_kernel.ml).

   The top-level functions are the separable kernel: x-y routing distance
   decomposes per axis, dist(c, p) = dx(cx, px) + dy(cy, py), so

     cost(c) = Σ_p w(p)·dist(c, p)
             = Σ_x mx(x)·dx(cx, x) + Σ_y my(y)·dy(cy, y)

   where mx / my are the window's per-axis weight marginals
   ({!Reftrace.Window.marginals}). Each axis cost array is built in O(E)
   from prefix sums (circular prefix sums on a torus), so a whole cost
   vector costs O(P + refs) instead of O(P · refs), and the minimum —
   the paper's Definition 4 — splits into two independent axis minima. *)

let build_counter = function
  | `Separable -> "cost.separable_builds"
  | `Naive -> "cost.naive_builds"

let count_build kernel = if !Obs.enabled then Obs.Metrics.incr (build_counter kernel)

module Naive = struct
  let reference_cost mesh window ~data ~center =
    List.fold_left
      (fun acc (proc, count) ->
        acc + (count * Pim.Mesh.distance mesh center proc))
      0
      (Reftrace.Window.profile window data)

  let cost_vector mesh window ~data =
    count_build `Naive;
    let m = Pim.Mesh.size mesh in
    let v = Array.make m 0 in
    let profile = Reftrace.Window.profile window data in
    for center = 0 to m - 1 do
      v.(center) <-
        List.fold_left
          (fun acc (proc, count) ->
            acc + (count * Pim.Mesh.distance mesh center proc))
          0 profile
    done;
    v

  let local_optimal_center mesh window ~data =
    let v = cost_vector mesh window ~data in
    let best = ref 0 in
    for center = 1 to Array.length v - 1 do
      if v.(center) < v.(!best) then best := center
    done;
    !best

  let movement_cost mesh ~from_ ~to_ = Pim.Mesh.distance mesh from_ to_

  let path_cost mesh pairs ~data =
    if pairs = [] then invalid_arg "Cost.path_cost: empty window list";
    let rec go prev acc = function
      | [] -> acc
      | (window, center) :: rest ->
          let refc = reference_cost mesh window ~data ~center in
          let move =
            match prev with
            | None -> 0
            | Some p -> movement_cost mesh ~from_:p ~to_:center
          in
          go (Some center) (acc + refc + move) rest
    in
    go None 0 pairs
end

(* ------------------------------------------------------------------ *)
(* Separable kernel                                                    *)
(* ------------------------------------------------------------------ *)

let axis_dist ~wrap ~extent a b =
  let direct = abs (a - b) in
  if wrap then min direct (extent - direct) else direct

(* Linear axis: cost(0) = Σ j·m(j); stepping the center right by one adds
   one hop for every unit of weight at or left of the old center and
   removes one for every unit strictly right of it. Writes every entry of
   [dst] (length = extent), so callers may hand it stale scratch. *)
let axis_cost_line_into m ~dst =
  let e = Array.length m in
  let total = ref 0 and c0 = ref 0 in
  for j = 0 to e - 1 do
    total := !total + m.(j);
    c0 := !c0 + (j * m.(j))
  done;
  dst.(0) <- !c0;
  let left = ref 0 in
  for c = 0 to e - 2 do
    left := !left + m.(c);
    dst.(c + 1) <- dst.(c) + (2 * !left) - !total
  done

(* Circular axis: every point sits either on the forward arc (offsets
   1 .. ⌊E/2⌋ from the center) or the backward arc (offsets
   1 .. ⌈E/2⌉-1); an antipodal point on an even ring is charged once, on
   the forward side, matching min(o, E-o). Prefix sums over the doubled
   ring make both arc sums O(1) per center:
     forward(c)  = Σ_{i=c+1..c+hf} (i-c)·m(i mod E)
     backward(c) = Σ_{i=c+E-hb..c+E-1} (c+E-i)·m(i mod E)
   [p] and [q] are prefix-sum scratch of length ≥ 2·extent + 1 whose
   index 0 must be 0 — the loop rewrites entries 1 .. 2·extent and never
   touches index 0, so zero-initialized scratch stays reusable. *)
let axis_cost_circle_into m ~p ~q ~dst =
  let e = Array.length m in
  if e = 1 then dst.(0) <- 0
  else begin
    let hf = e / 2 and hb = (e - 1) / 2 in
    for i = 0 to (2 * e) - 1 do
      let w = m.(if i < e then i else i - e) in
      p.(i + 1) <- p.(i) + w;
      q.(i + 1) <- q.(i) + (i * w)
    done;
    for c = 0 to e - 1 do
      let fwd =
        q.(c + hf + 1) - q.(c + 1) - (c * (p.(c + hf + 1) - p.(c + 1)))
      in
      let bwd =
        ((c + e) * (p.(c + e) - p.(c + e - hb)))
        - (q.(c + e) - q.(c + e - hb))
      in
      dst.(c) <- fwd + bwd
    done
  end

let axis_cost_circle m =
  let e = Array.length m in
  let dst = Array.make e 0 in
  let p = Array.make ((2 * e) + 1) 0 and q = Array.make ((2 * e) + 1) 0 in
  axis_cost_circle_into m ~p ~q ~dst;
  dst

let axis_cost_line m =
  let dst = Array.make (Array.length m) 0 in
  axis_cost_line_into m ~dst;
  dst

let axis_cost ~wrap m = if wrap then axis_cost_circle m else axis_cost_line m

(* Shared assembly loop: writes the cols*rows cost entries into [dst]
   starting at [off]. [vector_of_marginals] allocates a fresh array;
   [fill_of_marginals] targets a caller-owned arena row, so a prefetch
   batch reuses one flat buffer instead of one heap array per vector. *)
let fill_of_marginals ~wrap ~cols ~rows (mx, my) ~dst ~off =
  let cx = axis_cost ~wrap mx and cy = axis_cost ~wrap my in
  for y = 0 to rows - 1 do
    let base = cy.(y) and r = off + (y * cols) in
    for x = 0 to cols - 1 do
      dst.(r + x) <- base + cx.(x)
    done
  done

(* Same assembly into a bigarray arena slab ({!Pathgraph.Layered.buffer});
   every entry of the row is written, so the slab never needs the
   zero-initialization an [int array] allocation would pay. *)
let fill_slab_of_marginals ~wrap ~cols ~rows (mx, my)
    ~(dst : Pathgraph.Layered.buffer) ~off =
  let cx = axis_cost ~wrap mx and cy = axis_cost ~wrap my in
  for y = 0 to rows - 1 do
    let base = cy.(y) and r = off + (y * cols) in
    for x = 0 to cols - 1 do
      dst.{r + x} <- base + cx.(x)
    done
  done

(* One marginals pass per window: every (marginals, slab row) pair of the
   batch is assembled through the same axis-cost and prefix-sum scratch,
   so a window's worth of rows costs one set of allocations instead of
   four short-lived arrays per row. Counts one [`Separable] build per row
   — the per-row accounting is what the pinned counter tests and the
   marginals cache both key on — plus one [cost.batch_fills] per
   non-empty batch. *)
let fill_window_batch ~wrap ~cols ~rows items =
  match items with
  | [] -> ()
  | _ :: _ ->
      if !Obs.enabled then Obs.Metrics.incr "cost.batch_fills";
      let cx = Array.make cols 0 and cy = Array.make rows 0 in
      let px, qx, py, qy =
        if wrap then
          ( Array.make ((2 * cols) + 1) 0,
            Array.make ((2 * cols) + 1) 0,
            Array.make ((2 * rows) + 1) 0,
            Array.make ((2 * rows) + 1) 0 )
        else ([||], [||], [||], [||])
      in
      List.iter
        (fun ((mx, my), ((dst : Pathgraph.Layered.buffer), off)) ->
          count_build `Separable;
          if wrap then begin
            axis_cost_circle_into mx ~p:px ~q:qx ~dst:cx;
            axis_cost_circle_into my ~p:py ~q:qy ~dst:cy
          end
          else begin
            axis_cost_line_into mx ~dst:cx;
            axis_cost_line_into my ~dst:cy
          end;
          for y = 0 to rows - 1 do
            let base = cy.(y) and r = off + (y * cols) in
            for x = 0 to cols - 1 do
              dst.{r + x} <- base + cx.(x)
            done
          done)
        items

let vector_of_marginals ~wrap ~cols ~rows m =
  let v = Array.make (cols * rows) 0 in
  fill_of_marginals ~wrap ~cols ~rows m ~dst:v ~off:0;
  v

let marginals_of mesh window ~data =
  Reftrace.Window.marginals window ~data ~cols:(Pim.Mesh.cols mesh)
    ~rows:(Pim.Mesh.rows mesh)

(* O(refs), allocation-free: one axis decomposition per referencing
   processor instead of a materialized profile list. *)
let reference_cost mesh window ~data ~center =
  let cols = Pim.Mesh.cols mesh and rows = Pim.Mesh.rows mesh in
  let wrap = Pim.Mesh.wraps mesh in
  let cx = Pim.Mesh.x_of_rank mesh center
  and cy = Pim.Mesh.y_of_rank mesh center in
  let acc = ref 0 in
  Reftrace.Window.iter_profile window data (fun ~proc ~count ->
      let px = Pim.Mesh.x_of_rank mesh proc
      and py = Pim.Mesh.y_of_rank mesh proc in
      acc :=
        !acc
        + count
          * (axis_dist ~wrap ~extent:cols cx px
            + axis_dist ~wrap ~extent:rows cy py));
  !acc

let cost_vector mesh window ~data =
  count_build `Separable;
  vector_of_marginals ~wrap:(Pim.Mesh.wraps mesh) ~cols:(Pim.Mesh.cols mesh)
    ~rows:(Pim.Mesh.rows mesh)
    (marginals_of mesh window ~data)

let argmin_axis a =
  let best = ref 0 in
  for i = 1 to Array.length a - 1 do
    if a.(i) < a.(!best) then best := i
  done;
  !best

(* The minimizers of cx(x) + cy(y) are exactly (argmin cx) × (argmin cy);
   taking the lowest index on each axis picks the lowest row-major rank,
   the same tie order as [Naive]'s ascending scan (and as the full-vector
   ascending argmin every scheduler fallback uses). *)
let argmin_of_marginals ~wrap ~cols ~rows:_ (mx, my) =
  let cx = axis_cost ~wrap mx and cy = axis_cost ~wrap my in
  let bx = argmin_axis cx and by = argmin_axis cy in
  ((by * cols) + bx, cx.(bx) + cy.(by))

let local_optimal_center mesh window ~data =
  let wrap = Pim.Mesh.wraps mesh
  and cols = Pim.Mesh.cols mesh
  and rows = Pim.Mesh.rows mesh in
  fst
    (argmin_of_marginals ~wrap ~cols ~rows (marginals_of mesh window ~data))

let movement_cost mesh ~from_ ~to_ = Pim.Mesh.distance mesh from_ to_

let path_cost mesh pairs ~data =
  if pairs = [] then invalid_arg "Cost.path_cost: empty window list";
  let rec go prev acc = function
    | [] -> acc
    | (window, center) :: rest ->
        let refc = reference_cost mesh window ~data ~center in
        let move =
          match prev with
          | None -> 0
          | Some p -> movement_cost mesh ~from_:p ~to_:center
        in
        go (Some center) (acc + refc + move) rest
  in
  go None 0 pairs
