(** Local-Optimal Multiple-Center Data Scheduling (paper §3.2.1).

    Each datum is placed, window by window, at that window's local optimal
    center (Algorithm 1 applied per window); the datum migrates between
    windows. Movement cost is {e not} considered when choosing centers —
    that is precisely the weakness GOMCDS fixes — but is of course charged
    in the resulting schedule's cost.

    Windows in which a datum is not referenced leave it where it was. A
    datum's initial placement is the local optimal center of the first
    window that references it (placing it there from the start is free,
    since initial distribution is not charged to any method). *)

(** [schedule problem] computes the LOMCDS schedule on a shared
    {!Problem.t}. The per-(datum, window) processor lists are filled on the
    context's domain pool; the window walk and its bounded-memory
    fallbacks run serially (heavier data first), so the result is
    identical at every [jobs] setting.
    @raise Invalid_argument if the capacity policy is infeasible. *)
val schedule : Problem.t -> Schedule.t

(** [local_centers mesh trace ~data] is, per window, [Some rank] (the
    unconstrained local optimal center) when the datum is referenced and
    [None] otherwise. Exposed for the worked example and tests. *)
val local_centers :
  Pim.Mesh.t -> Reftrace.Trace.t -> data:int -> int option array
