(** Fixed-size domain pool for per-datum fan-out.

    Every multiple-center scheduler in this library decomposes into
    independent per-datum subproblems (paper §3): cost vectors, shortest
    paths and window partitions for datum [d] read only the trace and the
    mesh, never another datum's state. This module exploits that with a
    deterministic fork/join: [map ~jobs n f] computes [f i] for every
    [i < n] on up to [jobs] OCaml 5 domains and returns the results
    {e indexed by [i]} — so the output is byte-identical whatever the
    interleaving, and callers that merge results serially (capacity
    allocation, tie-breaking ranks) see exactly the serial order.

    Work is distributed by an atomic counter claiming {e chunks} of
    consecutive indices (sized for ~8 chunks per worker), so uneven
    per-index cost (data referenced in many vs few windows) balances
    automatically while fine-grained bodies — a single window-row fill is
    a few µs at 16×16 — do not drown in per-index claim traffic. Helper
    domains are spawned once and reused across calls (the pool lives
    until process exit), so fanning out many small batches — the
    {!Problem} cache-fill pattern — does not pay a spawn per call.

    [f] must not mutate state shared between indices. Writing to
    per-index slots (array cell [i], a cache row owned by datum [i]) is
    safe; anything else is a data race. *)

(** [default_jobs ()] is [Domain.recommended_domain_count ()] — the pool
    size used by the CLI when [--jobs] is not given. *)
val default_jobs : unit -> int

(** [map ~jobs n f] is [Array.init n f], computed on up to [jobs] domains
    ([jobs <= 1] runs serially in the calling domain, touching no pool).
    The effective domain count is additionally capped at
    {!default_jobs} — oversubscribing cores never helps — without any
    effect on the results. An exception raised by [f] is re-raised in the
    calling domain after every index has completed.
    @raise Invalid_argument if [n < 0]. *)
val map : jobs:int -> int -> (int -> 'a) -> 'a array

(** [iter ~jobs n f] is [map] for side-effecting [f] (per-index cache
    fills); results are discarded. *)
val iter : jobs:int -> int -> (int -> unit) -> unit
