let grid mesh value_of =
  let rows = Pim.Mesh.rows mesh and cols = Pim.Mesh.cols mesh in
  let cells =
    Array.init rows (fun y ->
        Array.init cols (fun x ->
            let rank = Pim.Mesh.rank_of_coord mesh (Pim.Coord.make ~x ~y) in
            string_of_int (value_of rank)))
  in
  let width =
    Array.fold_left
      (fun acc row ->
        Array.fold_left (fun acc s -> max acc (String.length s)) acc row)
      1 cells
  in
  let buf = Buffer.create 256 in
  let rule () =
    Buffer.add_char buf '+';
    for _ = 1 to cols do
      Buffer.add_string buf (String.make (width + 2) '-');
      Buffer.add_char buf '+'
    done;
    Buffer.add_char buf '\n'
  in
  rule ();
  Array.iter
    (fun row ->
      Buffer.add_char buf '|';
      Array.iter
        (fun s -> Buffer.add_string buf (Printf.sprintf " %*s |" width s))
        row;
      Buffer.add_char buf '\n';
      rule ())
    cells;
  Buffer.contents buf

let window_heatmap mesh window ~data =
  let profile = Reftrace.Window.profile window data in
  grid mesh (fun rank ->
      match List.assoc_opt rank profile with Some c -> c | None -> 0)

let total_heatmap mesh window =
  let totals = Array.make (Pim.Mesh.size mesh) 0 in
  List.iter
    (fun data ->
      Reftrace.Window.iter_profile window data (fun ~proc ~count ->
          if proc < Array.length totals then
            totals.(proc) <- totals.(proc) + count))
    (Reftrace.Window.referenced_data window);
  grid mesh (fun rank -> totals.(rank))

let load_map mesh schedule ~window =
  let load = Array.make (Pim.Mesh.size mesh) 0 in
  for data = 0 to Schedule.n_data schedule - 1 do
    let r = Schedule.center schedule ~window ~data in
    load.(r) <- load.(r) + 1
  done;
  grid mesh (fun rank -> load.(rank))

let trajectory mesh schedule ~data =
  Schedule.centers_of_data schedule ~data
  |> Array.to_list
  |> List.map (fun r -> Pim.Coord.to_string (Pim.Mesh.coord_of_rank mesh r))
  |> String.concat " -> "
