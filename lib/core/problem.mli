(** The scheduling problem context shared by every algorithm.

    A [Problem.t] bundles what used to be threaded through every signature
    separately — the mesh, the trace and a [?capacity:int] optional — and
    adds the shared state that makes running several schedulers on one
    instance cheap:

    - per-axis mesh distance tables ({!Pim.Mesh.x_distance_table}), so
      distance probes are two array reads; the full O(size²) matrix is
      only materialized for consumers that index it directly;
    - per-(datum, window) axis marginals, cost vectors and
      capacity-fallback candidate lists, filled lazily and kept for every
      later algorithm, sweep or refinement pass on the same instance;
    - a [jobs] knob sizing the {!Engine} domain pool used to fill those
      caches and to fan independent per-datum work out across cores.

    Results are deterministic by construction: parallel phases only compute
    pure per-datum values merged by index, and every capacity-allocation
    loop still runs serially in the algorithm's documented order — a
    [Problem.t] at [jobs = 8] yields byte-identical schedules to [jobs = 1].

    Thread-safety contract for the caches: a cache row belongs to one datum.
    Parallel phases must partition data across domains (as {!Engine.map}
    does) so each row has a single writer; {!distance_table} (a lazy,
    whole-context cell) must only be forced from serial phases — under the
    [`Naive] kernel, whose parallel vector builds read it, it is built
    eagerly at {!create}. Everything else in [t] is immutable after
    {!create}. *)

(** How much data each processor's local memory holds. [Unbounded] models
    infinite memories; [Bounded c] gives every processor [c] slots (the
    paper's experiments use twice the minimum — see
    {!Pim.Memory.capacity_for}). *)
type capacity_policy = Unbounded | Bounded of int

(** Which cost-kernel fills the vector caches. [`Separable] (the default)
    builds each vector in O(P + refs) from axis marginals via prefix sums
    ({!Cost}); [`Naive] is the direct O(P · refs) table walk
    ({!Cost.Naive}), kept as the cross-check oracle and benchmark
    baseline. Both produce byte-identical vectors. *)
type kernel = [ `Separable | `Naive ]

type t

(** [create ?policy ?jobs ?kernel mesh trace] builds the context. [policy]
    defaults to [Unbounded]; [jobs] (default [1]) sizes the domain pool,
    and {!Engine.default_jobs} picks a machine-fitted value; [kernel]
    defaults to [`Separable].
    @raise Invalid_argument if [Bounded c] with [c < 0], or [jobs < 1]. *)
val create :
  ?policy:capacity_policy ->
  ?jobs:int ->
  ?kernel:kernel ->
  Pim.Mesh.t ->
  Reftrace.Trace.t ->
  t

(** [of_capacity ?capacity ?jobs ?kernel mesh trace] is the bridge from the
    old optional-argument convention: [None] ↦ [Unbounded], [Some c] ↦
    [Bounded c]. Deprecated shims go through this. *)
val of_capacity :
  ?capacity:int ->
  ?jobs:int ->
  ?kernel:kernel ->
  Pim.Mesh.t ->
  Reftrace.Trace.t ->
  t

val mesh : t -> Pim.Mesh.t
val trace : t -> Reftrace.Trace.t
val policy : t -> capacity_policy

(** [capacity t] is [Some c] iff the policy is [Bounded c]. *)
val capacity : t -> int option

val jobs : t -> int
val kernel : t -> kernel

(** [with_jobs t jobs] / [with_policy t policy] are [t] with one field
    replaced; all caches are shared with [t] (cost vectors do not depend on
    either field). *)
val with_jobs : t -> int -> t

val with_policy : t -> capacity_policy -> t

(** [with_kernel t kernel] is [t] itself when the kernel is unchanged, and
    otherwise a {e fresh} context (empty caches) over the same mesh, trace,
    policy and jobs — the kernels produce identical vectors, but sharing
    filled caches across kernels would defeat the point of switching
    (benchmarking, cross-checking). *)
val with_kernel : t -> kernel -> t

val space : t -> Reftrace.Data_space.t
val n_data : t -> int
val n_windows : t -> int

(** [window t i] is the [i]-th execution window (array-backed, O(1)). *)
val window : t -> int -> Reftrace.Window.t

(** [merged t] is the whole-execution window, computed once per context. *)
val merged : t -> Reftrace.Window.t

(** [distance t a b] is [Pim.Mesh.distance] served from the cached per-axis
    tables (two reads — safe in parallel phases). *)
val distance : t -> int -> int -> int

(** [distance_table t] materializes (lazily, once) the full rank-to-rank
    matrix for inner loops that index it directly. Serial phases only —
    force it before fanning work out (as {!Gomcds.schedule} does). *)
val distance_table : t -> int array array

(** [marginals t ~window ~data] is {!Reftrace.Window.marginals} for the
    pair, cached — the separable kernel's input, also summed directly by
    {!Grouping} to price candidate merges without materializing merged
    windows. The returned arrays are shared: treat them as read-only. *)
val marginals : t -> window:int -> data:int -> int array * int array

(** [merged_marginals t ~data] is the marginal pair against {!merged}. *)
val merged_marginals : t -> data:int -> int array * int array

(** [cost_vector t ~window ~data] is {!Cost.cost_vector} for the pair,
    cached: the first call computes (via the context's {!kernel}), every
    later one — from any algorithm run on this context — is an array
    read. *)
val cost_vector : t -> window:int -> data:int -> int array

(** [merged_vector t ~data] is the cost vector against {!merged}. *)
val merged_vector : t -> data:int -> int array

(** [candidates t ~window ~data] is the paper's processor list for the
    pair: ranks sorted by cost vector entry, ties by rank ({!Processor_list.of_cost_vector}), cached. *)
val candidates : t -> window:int -> data:int -> int list

(** [merged_candidates t ~data] is the processor list against {!merged}. *)
val merged_candidates : t -> data:int -> int list

(** [ranks_near t ~target] is every rank sorted by distance from [target]
    (ties by rank), cached — the grouping repair's fallback order. Serial
    phases only: the cache row is not per-datum. *)
val ranks_near : t -> target:int -> int list

(** [by_total_references t] is {!Ordering.by_total_references} served from
    the cached merged window — the canonical heaviest-first assignment
    order. Serial phases only. *)
val by_total_references : t -> int list

(** [path_cost t ~data pairs] is {!Cost.path_cost} with window {e indices}
    instead of window values, reading cached cost vectors and the distance
    tables: Σ vector.(center) over the [(window, center)] pairs plus
    movement between consecutive centers. The cheap way to reconstruct or
    audit a per-datum schedule cost on a context that has already priced
    the datum.
    @raise Invalid_argument on the empty list. *)
val path_cost : t -> data:int -> (int * int) list -> int

(** [trajectory_cost t ~data centers] is {!path_cost} over {e all} windows
    in order: [centers.(w)] is the datum's center in window [w]. The form
    {!Refine}'s sweeps evaluate.
    @raise Invalid_argument unless [Array.length centers = n_windows t]. *)
val trajectory_cost : t -> data:int -> int array -> int

(** [layer_vectors t ~data] is the datum's cost vector for every window,
    one row per window — the dense form {!Pathgraph.Layered.solve_dense}
    consumes. Forces (and caches) the datum's full vector row. *)
val layer_vectors : t -> data:int -> int array array

(** [layered t ~data] is the GOMCDS cost-graph DP for one datum
    ({!Gomcds.cost_problem}) reading cached cost vectors and the per-axis
    distance tables. Forces the datum's full vector row. *)
val layered : t -> data:int -> Pathgraph.Layered.problem

(** [prefetch_data t ~data] forces every window's cost vector for one
    datum — the unit of work a pool domain claims. *)
val prefetch_data : t -> data:int -> unit

(** [prefetch_all t] fills every (datum, window) cost vector on the domain
    pool. Bounded-memory algorithms call this so their serial allocation
    loop only reads. *)
val prefetch_all : t -> unit

(** [prefetch_referenced t] fills, in parallel, cost vectors {e and}
    candidate lists for every (datum, window) pair where the window
    references the datum, plus the merged row for data never referenced —
    exactly what LOMCDS's serial loop reads. *)
val prefetch_referenced : t -> unit

(** [prefetch_merged t] fills every datum's merged vector and candidate
    list on the pool (SCDS's working set). *)
val prefetch_merged : t -> unit

(** [check_feasible t ~who] raises the algorithms' historical
    [Invalid_argument] ("[who]: %d data cannot fit in %d processors of
    capacity %d") when a bounded policy cannot hold the data space. *)
val check_feasible : t -> who:string -> unit

(** [fresh_memory t] is a new occupancy tracker matching the policy
    (unbounded or [Bounded c]); feasibility is {e not} checked here. *)
val fresh_memory : t -> Pim.Memory.t
