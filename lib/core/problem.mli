(** The scheduling problem context shared by every algorithm.

    A [Problem.t] bundles what used to be threaded through every signature
    separately — the mesh, the trace and a [?capacity:int] optional — and
    adds the shared state that makes running several schedulers on one
    instance cheap:

    - per-axis mesh distance tables ({!Pim.Mesh.x_distance_table}), so
      distance probes are two array reads; no O(size²) rank-to-rank matrix
      exists in the context (the [`Naive] kernel keeps a private one for
      its oracle-role vector builds only);
    - a flat compact {e cost arena} per datum: one bigarray slab holding a
      row per referencing window plus one shared all-zero row that every
      non-referencing window points at, filled lazily per (datum, window)
      row. The slab is allocated uninitialized — no memory traffic is
      spent zeroing rows that are either written in full or never
      materialized. Consumers read through {!cost_entry}/{!layer_slab}
      (allocation-free) or {!cost_vector} (a copy);
    - per-(datum, window) axis marginals, optimal centers and
      capacity-fallback candidate lists, filled lazily and kept for every
      later algorithm, sweep or refinement pass on the same instance;
    - a [jobs] knob sizing the {!Engine} domain pool used to fill those
      caches and to fan independent per-datum work out across cores.

    Results are deterministic by construction: parallel phases only compute
    pure per-datum values merged by index, and every capacity-allocation
    loop still runs serially in the algorithm's documented order — a
    [Problem.t] at [jobs = 8] yields byte-identical schedules to [jobs = 1].

    Thread-safety contract for the caches: every cache cell is owned by a
    single (datum, window) pair — an arena row and its filled byte, a
    marginal/center/candidate cell. Parallel phases must partition the
    cells across domains so each has one writer; both partitions in use
    are safe: per-datum tasks ({!prefetch_referenced}, {!prefetch_centers}
    — a task owns a datum's whole row of cells) and per-window tasks
    ({!prefetch_all}'s batched window-major fill — a task owns one
    window's column, after a serial pre-pass has created every arena so
    no task swaps a datum-level slab). Everything else in [t] is immutable
    after {!create}. *)

(** How much data each processor's local memory holds. [Unbounded] models
    infinite memories; [Bounded c] gives every processor [c] slots (the
    paper's experiments use twice the minimum — see
    {!Pim.Memory.capacity_for}). Equal to {!Context.capacity_policy}. *)
type capacity_policy = Context.capacity_policy = Unbounded | Bounded of int

(** Which cost-kernel fills the arena. [`Separable] (the default) builds
    each vector row in O(P + refs) from axis marginals via prefix sums
    ({!Cost}); [`Naive] is the direct O(P · refs) table walk
    ({!Cost.Naive}), kept as the cross-check oracle and benchmark
    baseline. Both produce byte-identical entries. Equal to
    {!Context.kernel}. *)
type kernel = Context.kernel

type t

(** Cost entry recorded for a (center, referencing rank) pair that link
    faults have disconnected — large enough that any connected placement
    wins, small enough that profile-weighted sums never overflow. *)
val unreachable_cost : int

(** [create ?policy ?jobs ?kernel ?fault mesh trace] builds the context.
    [policy] defaults to [Unbounded]; [jobs] (default [1]) sizes the domain
    pool, and {!Engine.default_jobs} picks a machine-fitted value; [kernel]
    defaults to [`Separable]; [fault] (default {!Pim.Fault.none}) degrades
    the array — dead processors leave every candidate list, memory tracker
    and argmin (their routers stay alive, so distances are unchanged), and
    dead links rebuild all distances by BFS over the surviving topology,
    which downgrades the cost kernel off the separable fast path (counters
    [cost.fault_tables] / [cost.fault_downgrades]). With [Fault.none] every
    code path is byte-identical to a fault-oblivious context.
    @raise Invalid_argument if [Bounded c] with [c < 0], [jobs < 1], the
    fault does not fit the mesh, or the fault kills every processor. *)
val create :
  ?policy:capacity_policy ->
  ?jobs:int ->
  ?kernel:kernel ->
  ?fault:Pim.Fault.t ->
  Pim.Mesh.t ->
  Reftrace.Trace.t ->
  t

(** [of_capacity ?capacity ?jobs ?kernel mesh trace] is the bridge from the
    old optional-argument convention: [None] ↦ [Unbounded], [Some c] ↦
    [Bounded c]. Deprecated shims go through this. *)
val of_capacity :
  ?capacity:int ->
  ?jobs:int ->
  ?kernel:kernel ->
  Pim.Mesh.t ->
  Reftrace.Trace.t ->
  t

(** [of_context ?policy ?jobs ?fault ctx] opens a {e request-scoped
    session} over a shared immutable {!Context.t}: fresh empty caches and
    arenas, the fault overlay built here, and [policy]/[jobs] defaulting
    to the context's values. The mesh, trace, windows, merged window and
    axis tables are shared with [ctx] — and with every other session on
    it, from any domain: the context is never written after creation.
    This is the entry point a long-lived service uses so per-request
    state stays private while instance preprocessing stays hot.
    @raise Invalid_argument under the same conditions as {!create}. *)
val of_context :
  ?policy:capacity_policy -> ?jobs:int -> ?fault:Pim.Fault.t -> Context.t -> t

(** [context t] is the shared immutable half the session was opened over. *)
val context : t -> Context.t

(** [max_arena_bytes t] is {!Context.t.max_arena_bytes}: the session's
    cost-arena footprint with every row forced — the admission-control
    currency of the serve path. *)
val max_arena_bytes : t -> int

val mesh : t -> Pim.Mesh.t
val trace : t -> Reftrace.Trace.t
val policy : t -> capacity_policy

(** [capacity t] is [Some c] iff the policy is [Bounded c]. *)
val capacity : t -> int option

val jobs : t -> int
val kernel : t -> kernel

(** [fault t] is the fault model the context was built over
    ({!Pim.Fault.none} for a healthy array). *)
val fault : t -> Pim.Fault.t

(** [set_cancel t c] arms cooperative cancellation for the session:
    every fill/solve funnel — {!solve_datum}, the arena row fills behind
    {!cost_entry}/{!layer_slab}/{!prefetch_all}, the {!candidates} and
    {!optimal_center} miss paths — polls [c] and raises
    {!Cancel.Expired} once it expires (deadline passed on the monotonic
    clock, or {!Cancel.cancel} called from any domain). Polls sit at
    per-row / per-datum granularity, so a solve overruns its budget by
    at most one row's work; against the default {!Cancel.none} a poll
    costs a pointer compare. Call from the serial admission path before
    the solve starts — parallel phases only read the token. A session
    whose solve raised [Expired] has internally consistent but partial
    caches; re-arm it with a fresh token (or {!Cancel.none}) before
    reusing it, or discard it. *)
val set_cancel : t -> Cancel.t -> unit

(** [cancel_token t] is the token the session polls ({!Cancel.none}
    until {!set_cancel}). *)
val cancel_token : t -> Cancel.t

(** [rank_alive t rank] is [false] iff the fault killed [rank]'s
    compute/memory (O(1) mask read — safe in parallel phases). *)
val rank_alive : t -> int -> bool

(** [alive_count t] is the number of ranks that can host data. *)
val alive_count : t -> int

(** [with_jobs t jobs] / [with_policy t policy] are [t] with one field
    replaced; all caches are shared with [t] (cost vectors do not depend on
    either field). *)
val with_jobs : t -> int -> t

val with_policy : t -> capacity_policy -> t

(** [with_kernel t kernel] is [t] itself when the kernel is unchanged, and
    otherwise a {e fresh} context (empty caches) over the same mesh, trace,
    policy and jobs — the kernels produce identical vectors, but sharing
    filled caches across kernels would defeat the point of switching
    (benchmarking, cross-checking). *)
val with_kernel : t -> kernel -> t

(** [with_fault t fault] is a {e fresh session} (empty caches) with the
    fault replaced — cost entries, candidate orders and distances all
    depend on the fault — over the {e same} shared {!Context.t}, so the
    axis tables and trace preprocessing carry over untouched. [t] itself
    when both the old and new fault are {!Pim.Fault.none}. How the
    reschedule-on-failure path degrades a problem mid-run — see
    {!with_fault_patch} for the incremental variant that carries clean
    cache rows over. *)
val with_fault : t -> Pim.Fault.t -> t

(** [with_fault_patch t fault] is {!with_fault} with {e dirty-row
    invalidation} instead of a cold start: the new session shares [t]'s
    marginal caches and aliases its arena slabs copy-on-write, and only
    the rows whose cost entries can actually differ under the new fault
    are marked dirty (counter [problem.rows_invalidated]) for refill on
    next touch (counter [problem.rows_refilled]).

    Node faults keep routers, so a pure node-fault change dirties {e no}
    row — every slab byte carries over; only the alive mask, argmins and
    candidate orders adjust (cached argmins survive when the dead set only
    grew and the cached center is still alive; candidate lists survive a
    monotone change filtered to the new alive set). A link-fault change
    rebuilds the BFS distance table (reusing [t]'s when the dead-link set
    is unchanged) and dirties exactly the rows whose window profile
    touches a rank with a changed distance column.

    [t] is never written through: a dirty row is refilled only after the
    datum's slab has been privatized, so [t] and the patched session stay
    independently correct — answers from the patched session are
    byte-identical to a fresh [of_context ~fault] session (pinned by
    [test/test_incremental.ml]). Returns [t] itself when [fault] equals
    [t]'s fault.
    @raise Invalid_argument under the same conditions as {!with_fault}. *)
val with_fault_patch : t -> Pim.Fault.t -> t

(** [invalidate t ~window] tells the session that the contents of window
    [window] were edited in place (references {e added} via
    {!Reftrace.Window.add} after the context was built): every cached
    value derived from that window — marginals, arena row, argmin,
    candidate list — is dropped or marked dirty for every datum the
    window now references, so subsequent reads refill from the edited
    profile and agree byte-for-byte with a freshly built session over the
    same context. A datum whose first reference in [window] appeared
    after its slab layout was fixed has its whole arena dropped so the
    window→row map is recomputed. The memoized {e merged} window is not
    recomputed (it is fixed at {!Context.create} time for every session,
    cold or warm, so all sessions stay consistent).
    @raise Invalid_argument when [window] is out of range. *)
val invalidate : t -> window:int -> unit

val space : t -> Reftrace.Data_space.t
val n_data : t -> int
val n_windows : t -> int

(** [window t i] is the [i]-th execution window (array-backed, O(1)). *)
val window : t -> int -> Reftrace.Window.t

(** [merged t] is the whole-execution window, computed once per context. *)
val merged : t -> Reftrace.Window.t

(** [distance t a b] is [Pim.Mesh.distance] served from the cached per-axis
    tables (two reads — safe in parallel phases). *)
val distance : t -> int -> int -> int

(** [axis_tables t] is the cached [(x_distance_table, y_distance_table)]
    pair — the inputs {!Pathgraph.Layered.solve_axes} consumes, so the
    layered DP never needs a full rank-to-rank matrix. Read-only. *)
val axis_tables : t -> int array array * int array array

(** [marginals t ~window ~data] is {!Reftrace.Window.marginals} for the
    pair, cached — the separable kernel's input, also summed directly by
    {!Grouping} to price candidate merges without materializing merged
    windows. The returned arrays are shared: treat them as read-only. *)
val marginals : t -> window:int -> data:int -> int array * int array

(** [merged_marginals t ~data] is the marginal pair against {!merged}. *)
val merged_marginals : t -> data:int -> int array * int array

(** [cost_entry t ~window ~data center] is the datum's communication cost
    served from [center] in the window — one arena read after the row's
    first touch, no allocation. The workhorse accessor for incremental
    evaluators (annealing deltas, trajectory sums). *)
val cost_entry : t -> window:int -> data:int -> int -> int

(** [cost_vector t ~window ~data] is {!Cost.cost_vector} for the pair as a
    {e fresh copy} of the arena row — callers may mutate it freely. Prefer
    {!cost_entry}/{!layer_slab} on hot paths. *)
val cost_vector : t -> window:int -> data:int -> int array

(** [merged_vector t ~data] is the cost vector against {!merged}, cached
    (shared array — treat as read-only). *)
val merged_vector : t -> data:int -> int array

(** [optimal_center t ~window ~data] is the paper's Definition 4 for the
    pair — the minimum-cost center, lowest rank on ties — cached, and
    computed {e without} touching the cost vector under [`Separable]:
    {!Cost.argmin_of_marginals} reads the two axis marginals in
    O(cols + rows) (counter [cost.argmin_fast]). Under [`Naive] it falls
    back to an ascending scan of the arena row (counter
    [cost.argmin_fallback]); both orders equal the full-vector ascending
    argmin, so unbounded schedulers taking this fast path place every
    datum exactly where the vector route did. *)
val optimal_center : t -> window:int -> data:int -> int

(** [merged_optimal_center t ~data] is {!optimal_center} against
    {!merged}. *)
val merged_optimal_center : t -> data:int -> int

(** [candidates t ~window ~data] is the paper's processor list for the
    pair: ranks sorted by cost entry, ties by rank
    ({!Processor_list.of_costs}), cached. On the healthy separable path
    the order is computed straight from the axis costs without forcing
    the arena row ({e fill-skip}) — bounded [Scds]/[Lomcds] runs that
    only consume candidate lists never materialize a slab. The order is
    identical either way (same cost values). *)
val candidates : t -> window:int -> data:int -> int list

(** [merged_candidates t ~data] is the processor list against {!merged}. *)
val merged_candidates : t -> data:int -> int list

(** [ranks_near t ~target] is every rank sorted by distance from [target]
    (ties by rank), cached — the grouping repair's fallback order. Serial
    phases only: the cache row is not per-datum. *)
val ranks_near : t -> target:int -> int list

(** [by_total_references t] is {!Ordering.by_total_references} served from
    the cached merged window — the canonical heaviest-first assignment
    order. Serial phases only. *)
val by_total_references : t -> int list

(** [path_cost t ~data pairs] is {!Cost.path_cost} with window {e indices}
    instead of window values, reading arena entries and the distance
    tables: Σ entry(center) over the [(window, center)] pairs plus
    movement between consecutive centers. The cheap way to reconstruct or
    audit a per-datum schedule cost on a context that has already priced
    the datum.
    @raise Invalid_argument on the empty list. *)
val path_cost : t -> data:int -> (int * int) list -> int

(** [trajectory_cost t ~data centers] is {!path_cost} over {e all} windows
    in order: [centers.(w)] is the datum's center in window [w]. The form
    {!Refine}'s sweeps evaluate.
    @raise Invalid_argument unless [Array.length centers = n_windows t]. *)
val trajectory_cost : t -> data:int -> int array -> int

(** [layer_slab t ~data] forces every window row of the datum's arena
    buffer and returns [(slab, offsets)]: window [w]'s vector occupies
    [slab.{offsets.(w)} .. slab.{offsets.(w) + P - 1}] with
    [P = Pim.Mesh.size]. The slab is compact — windows that never
    reference the datum all share the reserved zero row at offset 0, so
    the buffer holds one row per {e referencing} window plus one — and is
    a bigarray allocated uninitialized (each referencing row is written in
    full before it is readable; only the zero row is cleared eagerly).
    Exactly the form {!Pathgraph.Layered.solve_axes} consumes via its
    [offsets] argument; treat both as read-only. *)
val layer_slab : t -> data:int -> Pathgraph.Layered.buffer * int array

(** [layer_vectors t ~data] is the datum's cost vector for every window as
    fresh row copies (the dense {!Pathgraph.Layered.solve_dense} shape —
    now only the cross-check oracle's input). Forces the arena row. *)
val layer_vectors : t -> data:int -> int array array

(** [layered t ~data] is the GOMCDS cost-graph DP for one datum
    ({!Gomcds.cost_problem}) reading the arena slab and, under link faults,
    the BFS distance table in place of the per-axis pair. Forces the
    datum's arena rows. *)
val layered : t -> data:int -> Pathgraph.Layered.problem

(** [solve_datum ?allowed t ~data] runs the per-datum layered DP with the
    fault folded in: on a healthy context it is exactly
    {!Pathgraph.Layered.solve_axes}[(_filtered)] over the arena slab; node
    faults intersect [allowed] with the alive mask; link faults run the
    callback DP over the BFS distance table. Returns [None] when [allowed]
    leaves some layer empty (never on an unfiltered healthy or node-fault
    context — at least one rank is always alive). The one entry point
    GOMCDS, {!Refine} and {!Bounds} all price trajectories through. *)
val solve_datum :
  ?allowed:(layer:int -> int -> bool) ->
  t ->
  data:int ->
  (int * int array) option

(** [prefetch_data t ~data] forces every window row of one datum's arena
    buffer — the unit of work a pool domain claims. *)
val prefetch_data : t -> data:int -> unit

(** [prefetch_all t] fills every (datum, window) arena row on the domain
    pool, window-major: after a serial pre-pass that creates every arena
    (and privatizes shared slabs still holding dirty rows), each pool
    task fills one window's rows across all data in a single batched
    marginals pass ({!Cost.fill_window_batch} — one axis/prefix-sum
    scratch set per window). Bounded-memory algorithms and window-major
    sweeps ({!Refine}, {!Grouping}) call this so their serial loops only
    read. *)
val prefetch_all : t -> unit

(** [window_rows t ~window] forces every datum's arena row for [window]
    (batched, as one {!prefetch_all} task would) and returns
    [(slabs, offs)] with the entry for (data, rank) at
    [slabs.(data).{offs.(data) + rank}] — the window-major view
    {!Online}'s walk and {!Annealing}'s delta evaluator batch their
    probes through instead of a {!cost_entry} dispatch per probe. Treat
    both arrays as read-only; they stay valid until the row is
    invalidated ({!invalidate} / {!with_fault_patch}). *)
val window_rows :
  t -> window:int -> Pathgraph.Layered.buffer array * int array

(** [prefetch_referenced t] fills, in parallel, arena rows {e and}
    candidate lists for every (datum, window) pair where the window
    references the datum, plus the merged row for data never referenced —
    exactly what LOMCDS's bounded serial loop reads. *)
val prefetch_referenced : t -> unit

(** [prefetch_centers t] fills, in parallel, the {!optimal_center} cache
    for every referencing (datum, window) pair plus
    {!merged_optimal_center} for data never referenced — the vector-free
    working set of the unbounded LOMCDS fast path. *)
val prefetch_centers : t -> unit

(** [prefetch_merged t] fills every datum's merged vector and candidate
    list on the pool (SCDS's working set). *)
val prefetch_merged : t -> unit

(** [check_feasible t ~who] raises the algorithms' historical
    [Invalid_argument] ("[who]: %d data cannot fit in %d processors of
    capacity %d") when a bounded policy cannot hold the data space. *)
val check_feasible : t -> who:string -> unit

(** [fresh_memory t] is a new occupancy tracker matching the policy
    (unbounded or [Bounded c]); feasibility is {e not} checked here. *)
val fresh_memory : t -> Pim.Memory.t
