type algorithm =
  | Row_wise
  | Column_wise
  | Block_2d
  | Cyclic
  | Random of int
  | Scds
  | Lomcds
  | Gomcds
  | Lomcds_grouped
  | Gomcds_grouped
  | Gomcds_refined
  | Best_refined
  | Annealing of int
  | Online of float

let all =
  [
    Row_wise;
    Column_wise;
    Block_2d;
    Cyclic;
    Random 42;
    Scds;
    Lomcds;
    Gomcds;
    Lomcds_grouped;
    Gomcds_grouped;
    Gomcds_refined;
    Best_refined;
  ]

let name = function
  | Row_wise -> "row-wise"
  | Column_wise -> "column-wise"
  | Block_2d -> "block-2d"
  | Cyclic -> "cyclic"
  | Random _ -> "random"
  | Scds -> "scds"
  | Lomcds -> "lomcds"
  | Gomcds -> "gomcds"
  | Lomcds_grouped -> "lomcds-grouped"
  | Gomcds_grouped -> "gomcds-grouped"
  | Gomcds_refined -> "gomcds-refined"
  | Best_refined -> "best-refined"
  | Annealing _ -> "annealing"
  | Online _ -> "online"

let valid_names = List.map name all @ [ "annealing"; "online" ]

let of_name s =
  match String.lowercase_ascii (String.trim s) with
  | "row-wise" -> Row_wise
  | "column-wise" -> Column_wise
  | "block-2d" -> Block_2d
  | "cyclic" -> Cyclic
  | "random" -> Random 42
  | "scds" -> Scds
  | "lomcds" -> Lomcds
  | "gomcds" -> Gomcds
  | "lomcds-grouped" -> Lomcds_grouped
  | "gomcds-grouped" -> Gomcds_grouped
  | "gomcds-refined" -> Gomcds_refined
  | "best-refined" -> Best_refined
  | "annealing" -> Annealing 0xBEEF
  | "online" -> Online 2.
  | _ ->
      invalid_arg
        (Printf.sprintf "Scheduler.of_name: unknown %S (expected one of: %s)"
           s
           (String.concat ", " valid_names))

let solve problem algorithm =
  Obs.Span.with_ ~name:("scheduler." ^ name algorithm) @@ fun () ->
  let mesh = Problem.mesh problem in
  let trace = Problem.trace problem in
  let space = Problem.space problem in
  let static placement = Baseline.schedule placement mesh trace in
  match algorithm with
  | Row_wise -> static (Baseline.row_wise mesh space)
  | Column_wise -> static (Baseline.column_wise mesh space)
  | Block_2d -> static (Baseline.block_2d mesh space)
  | Cyclic -> static (Baseline.cyclic mesh space)
  | Random seed -> static (Baseline.random ~seed mesh space)
  | Scds -> Scds.schedule problem
  | Lomcds -> Lomcds.schedule problem
  | Gomcds -> Gomcds.schedule problem
  | Lomcds_grouped -> Grouping.schedule ~centers:`Local problem
  | Gomcds_grouped -> Grouping.schedule ~centers:`Global problem
  | Gomcds_refined -> Refine.refined problem
  | Best_refined -> Refine.best_schedule problem
  | Annealing seed -> fst (Annealing.anneal ~seed problem)
  | Online theta -> Online.schedule ~theta problem

let evaluate_in problem algorithm =
  let schedule = solve problem algorithm in
  (schedule, Schedule.cost schedule (Problem.trace problem))

let run ?capacity ?jobs algorithm mesh trace =
  solve (Problem.of_capacity ?capacity ?jobs mesh trace) algorithm

let evaluate ?capacity ?jobs algorithm mesh trace =
  evaluate_in (Problem.of_capacity ?capacity ?jobs mesh trace) algorithm

let improvement ~baseline ~cost =
  if baseline = 0 then 0.
  else float_of_int (baseline - cost) /. float_of_int baseline *. 100.
