(** Parameter-sweep driver with CSV output.

    Runs a set of algorithms over a set of workload instances and collects
    one row per (instance, algorithm) with the metrics the benches report —
    total/reference/movement cost, migrations, improvement over the
    row-wise baseline, and gap to the per-datum lower bound — formatted as
    CSV so results can be plotted or regression-tracked outside OCaml. The
    CLI's [sweep] command wraps this. *)

type row = {
  workload : string;
  algorithm : string;
  total : int;
  reference : int;
  movement : int;
  moves : int;
  improvement : float;  (** % over the row-wise baseline, same capacity *)
  gap : float;  (** % over the per-datum lower bound *)
}

(** [run ?headroom ?jobs mesh instances algorithms] evaluates every pair.
    [headroom] (default [2], the paper's rule) sets capacity to
    [headroom × minimum]; [0] means unbounded. One {!Problem.t} is built
    per instance, so the lower bound, the baseline and every algorithm
    share its cost-vector cache; [jobs] (default serial) sizes its domain
    pool. *)
val run :
  ?headroom:int ->
  ?jobs:int ->
  Pim.Mesh.t ->
  (string * Reftrace.Trace.t) list ->
  Scheduler.algorithm list ->
  row list

(** [to_csv rows] renders with a header line; fields are comma-separated,
    floats printed with one decimal. *)
val to_csv : row list -> string
