type center_policy = [ `Local | `Global ]
type group = { first : int; last : int; center : int }

let argmin v =
  let best = ref 0 in
  for i = 1 to Array.length v - 1 do
    if v.(i) < v.(!best) then best := i
  done;
  !best

(* The greedy is generic in how a group's running cost state is represented:
   full cost vectors (the [`Naive] kernel's currency) or per-axis marginal
   pairs (the separable kernel's — summing two O(cols + rows) histograms
   prices a candidate merge without materializing the merged window's
   O(cols · rows) vector). [best] must return the {e lowest-rank} minimum
   center so both representations make identical greedy decisions. *)
type 'vec ops = {
  copy : 'vec -> 'vec;
  join : 'vec -> 'vec -> 'vec;  (* fresh sum; arguments untouched *)
  best : 'vec -> int * int;  (* (lowest-rank argmin center, its cost) *)
}

let vector_ops =
  {
    copy = Array.copy;
    join = (fun a b -> Array.init (Array.length a) (fun i -> a.(i) + b.(i)));
    best =
      (fun v ->
        let c = argmin v in
        (c, v.(c)));
  }

(* Vector ops whose [best] skips dead ranks (ties still break to the
   lowest alive rank) — the degraded-context currency: arena vectors are
   already fault-priced, only center choice needs the mask. *)
let masked_vector_ops alive =
  {
    vector_ops with
    best =
      (fun v ->
        let best = ref (-1) in
        for i = 0 to Array.length v - 1 do
          if alive i && (!best < 0 || v.(i) < v.(!best)) then best := i
        done;
        (!best, v.(!best)));
  }

(* The minimizers of cx(x) + cy(y) form a product set, so the lowest
   row-major rank among them is (lowest argmin cy, lowest argmin cx) —
   the same tie order as [vector_ops.best]'s ascending scan. *)
let marginal_ops ~wrap ~cols =
  let sum a b = Array.init (Array.length a) (fun i -> a.(i) + b.(i)) in
  {
    copy = (fun (mx, my) -> (Array.copy mx, Array.copy my));
    join = (fun (ax, ay) (bx, by) -> (sum ax bx, sum ay by));
    best =
      (fun (mx, my) ->
        let cx = Cost.axis_cost ~wrap mx and cy = Cost.axis_cost ~wrap my in
        let x = argmin cx and y = argmin cy in
        ((y * cols) + x, cx.(x) + cy.(y)));
  }

(* Greedy partition of the referenced-window subsequence, following
   Algorithm 3: keep extending the current group while the total cost of the
   whole partition does not increase. Costs are evaluated with local-optimal
   centers, exploiting linearity of the cost model in reference profiles.

   Returns the partition as index ranges into the subsequence plus the
   summed cost state of each group. *)
let greedy_ranges ~ops ~dist ~items ~n =
  let bests = Array.map ops.best items in
  let centers = Array.map fst bests in
  let refcosts = Array.map snd bests in
  (* tail.(i) = cost of running windows i..n-1 as singletons, excluding the
     link into window i. *)
  let tail = Array.make (n + 1) 0 in
  for i = n - 1 downto 0 do
    let link = if i + 1 < n then dist centers.(i) centers.(i + 1) else 0 in
    tail.(i) <- refcosts.(i) + link + tail.(i + 1)
  done;
  let finalized = ref [] in
  let fin_cost = ref 0 in
  let last_center = ref None in
  let link_from_last c =
    match !last_center with None -> 0 | Some p -> dist p c
  in
  let start = ref 0 in
  let sumvec = ref (ops.copy items.(0)) in
  let finalize stop =
    let c, cost = ops.best !sumvec in
    fin_cost := !fin_cost + link_from_last c + cost;
    last_center := Some c;
    finalized := (!start, stop, ops.copy !sumvec, c) :: !finalized
  in
  let accepted = ref 0 in
  for j = 1 to n - 1 do
    let cur_center, cur_ref = ops.best !sumvec in
    let prev_total =
      !fin_cost + link_from_last cur_center + cur_ref
      + dist cur_center centers.(j)
      + tail.(j)
    in
    let candidate = ops.join !sumvec items.(j) in
    let cand_center, cand_ref = ops.best candidate in
    let next_link =
      if j + 1 < n then dist cand_center centers.(j + 1) + tail.(j + 1)
      else 0
    in
    let new_total =
      !fin_cost + link_from_last cand_center + cand_ref + next_link
    in
    if new_total <= prev_total then begin
      incr accepted;
      sumvec := candidate
    end
    else begin
      finalize (j - 1);
      start := j;
      sumvec := ops.copy items.(j)
    end
  done;
  finalize (n - 1);
  if !Obs.enabled then begin
    (* every window past the first is one attempted merge into the
       running group (Algorithm 3's extension test) *)
    Obs.Metrics.add "grouping.merge_attempts" (n - 1);
    Obs.Metrics.add "grouping.merges_accepted" !accepted
  end;
  List.rev !finalized

(* Re-optimize group centers with the shortest-path DP (GOMCDS over merged
   windows). *)
let refine_centers ?alive ~dist ~to_vector groups =
  match groups with
  | [] -> []
  | _ ->
      let vecs =
        Array.of_list (List.map (fun (_, _, v, _) -> to_vector v) groups)
      in
      let problem =
        {
          Pathgraph.Layered.n_layers = Array.length vecs;
          width = Array.length vecs.(0);
          enter_cost = (fun j -> vecs.(0).(j));
          step_cost = (fun ~layer j k -> dist j k + vecs.(layer).(k));
        }
      in
      let _, centers =
        match alive with
        | None -> Pathgraph.Layered.solve problem
        | Some ok ->
            Option.get
              (Pathgraph.Layered.solve_filtered problem
                 ~allowed:(fun ~layer:_ j -> ok j))
      in
      List.mapi
        (fun i (lo, hi, v, _) -> (lo, hi, v, centers.(i)))
        groups

(* Referenced-window subsequence of one datum: window indices plus their
   (cached) cost vectors. *)
let referenced_vectors problem ~data =
  let indices = ref [] in
  for w = Problem.n_windows problem - 1 downto 0 do
    if Reftrace.Window.references (Problem.window problem w) data > 0 then
      indices := w :: !indices
  done;
  let indices = Array.of_list !indices in
  let vectors =
    Array.map (fun w -> Problem.cost_vector problem ~window:w ~data) indices
  in
  (indices, vectors)

(* Referenced-window subsequence as (cached) marginal pairs — the separable
   kernel's pricing inputs. *)
let referenced_marginals problem ~data =
  let indices = ref [] in
  for w = Problem.n_windows problem - 1 downto 0 do
    if Reftrace.Window.references (Problem.window problem w) data > 0 then
      indices := w :: !indices
  done;
  let indices = Array.of_list !indices in
  let margs =
    Array.map (fun w -> Problem.marginals problem ~window:w ~data) indices
  in
  (indices, margs)

let to_groups indices ranges =
  List.map
    (fun (lo, hi, _, center) ->
      { first = indices.(lo); last = indices.(hi); center })
    ranges

let groups problem ~data ~centers =
  let dist = Problem.distance problem in
  if not (Pim.Fault.is_none (Problem.fault problem)) then begin
    (* Degraded context: always run the vector path — the arena vectors
       carry the fault-aware prices under either kernel (marginal pricing
       would ignore dead links), and the masked ops keep centers off dead
       ranks. *)
    let alive = Problem.rank_alive problem in
    let indices, vectors = referenced_vectors problem ~data in
    match Array.length vectors with
    | 0 -> []
    | n ->
        let ops = masked_vector_ops alive in
        let ranges = greedy_ranges ~ops ~dist ~items:vectors ~n in
        let ranges =
          match centers with
          | `Local -> ranges
          | `Global -> refine_centers ~alive ~dist ~to_vector:Fun.id ranges
        in
        to_groups indices ranges
  end
  else
  match Problem.kernel problem with
  | `Naive -> (
      let indices, vectors = referenced_vectors problem ~data in
      match Array.length vectors with
      | 0 -> []
      | n ->
          let ranges =
            greedy_ranges ~ops:vector_ops ~dist ~items:vectors ~n
          in
          let ranges =
            match centers with
            | `Local -> ranges
            | `Global -> refine_centers ~dist ~to_vector:Fun.id ranges
          in
          to_groups indices ranges)
  | `Separable -> (
      let mesh = Problem.mesh problem in
      let wrap = Pim.Mesh.wraps mesh
      and cols = Pim.Mesh.cols mesh
      and rows = Pim.Mesh.rows mesh in
      let indices, margs = referenced_marginals problem ~data in
      match Array.length margs with
      | 0 -> []
      | n ->
          let ranges =
            greedy_ranges ~ops:(marginal_ops ~wrap ~cols) ~dist ~items:margs
              ~n
          in
          let ranges =
            match centers with
            | `Local -> ranges
            | `Global ->
                refine_centers ~dist
                  ~to_vector:(Cost.vector_of_marginals ~wrap ~cols ~rows)
                  ranges
          in
          to_groups indices ranges)

(* Exact DP over all (partition, centers) choices for one datum.
   dp.(i).(c) = cheapest cost of covering referenced windows 0..i with the
   last group ending at i and centered at c. Prefix-summed cost vectors make
   any group's vector O(m) to read off. *)
let optimal_ranges ?(ok = fun _ -> true) ~dist ~vectors ~n () =
  let m = Array.length vectors.(0) in
  let prefix = Array.make_matrix (n + 1) m 0 in
  for i = 0 to n - 1 do
    for c = 0 to m - 1 do
      prefix.(i + 1).(c) <- prefix.(i).(c) + vectors.(i).(c)
    done
  done;
  let group_ref j i c = prefix.(i + 1).(c) - prefix.(j).(c) in
  let inf = max_int / 2 in
  let dp = Array.make_matrix n m inf in
  let parent = Array.make_matrix n m (-1) in
  (* best_in.(j).(c) = min over c' of dp.(j).(c') + dist c' c *)
  let best_in = Array.make_matrix n m inf in
  for i = 0 to n - 1 do
    for c = 0 to m - 1 do
      (* dead centers keep dp = inf, so they never host a group and the
         best_in minimization skips them for free *)
      if ok c then
        (* last group = (j..i) for some j *)
        for j = 0 to i do
          let base =
            if j = 0 then 0
            else best_in.(j - 1).(c)
          in
          if base < inf then begin
            let cost = base + group_ref j i c in
            if cost < dp.(i).(c) then begin
              dp.(i).(c) <- cost;
              parent.(i).(c) <- j
            end
          end
        done
    done;
    for c = 0 to m - 1 do
      let best = ref inf in
      for c' = 0 to m - 1 do
        if dp.(i).(c') < inf then
          best := min !best (dp.(i).(c') + dist c' c)
      done;
      best_in.(i).(c) <- !best
    done
  done;
  (* reconstruction: the feeding center of a group starting at [j] with
     center [c] is the argmin the best_in minimization used — recomputed
     with the same deterministic iteration order *)
  let feeding j c =
    let best = ref inf and arg = ref (-1) in
    for c' = 0 to m - 1 do
      if dp.(j).(c') < inf then begin
        let v = dp.(j).(c') + dist c' c in
        if v < !best then begin
          best := v;
          arg := c'
        end
      end
    done;
    !arg
  in
  let final_center = ref 0 in
  for c = 1 to m - 1 do
    if dp.(n - 1).(c) < dp.(n - 1).(!final_center) then final_center := c
  done;
  let rec rebuild i c acc =
    let j = parent.(i).(c) in
    let group = (j, i, [||], c) in
    if j = 0 then group :: acc
    else
      let c' = feeding (j - 1) c in
      rebuild (j - 1) c' (group :: acc)
  in
  (dp.(n - 1).(!final_center), rebuild (n - 1) !final_center [])

let optimal_groups problem ~data =
  let indices, vectors = referenced_vectors problem ~data in
  match Array.length vectors with
  | 0 -> []
  | n ->
      let dist = Problem.distance problem in
      let ok =
        if Pim.Fault.has_node_faults (Problem.fault problem) then
          Some (Problem.rank_alive problem)
        else None
      in
      let _, ranges = optimal_ranges ?ok ~dist ~vectors ~n () in
      List.map
        (fun (lo, hi, _, center) ->
          { first = indices.(lo); last = indices.(hi); center })
        ranges

(* Desired (capacity-oblivious) trajectory: before the first group the datum
   already sits at that group's center (initial placement is free); inside a
   group and in the gap after it the datum stays at the group's center. *)
let desired_trajectory ~n_windows groups =
  match groups with
  | [] -> None
  | { center = c0; _ } :: _ ->
      (* Each group claims the suffix starting at its first window; later
         groups overwrite, so the datum stays at a group's center through
         the gap that follows it. *)
      let traj = Array.make n_windows c0 in
      List.iter
        (fun { first; center; _ } ->
          for w = first to n_windows - 1 do
            traj.(w) <- center
          done)
        groups;
      Some traj

let run_with_partitions problem ~partition_of =
  let n_data = Problem.n_data problem in
  let n_windows = Problem.n_windows problem in
  (* The vector-pricing paths (degraded context, [`Naive] kernel) read
     whole arena rows per datum; fill them window-major on the pool up
     front so the per-datum partition tasks below only read. The healthy
     separable path prices from marginals alone and never fills a row. *)
  if
    (not (Pim.Fault.is_none (Problem.fault problem)))
    || Problem.kernel problem = `Naive
  then Problem.prefetch_all problem;
  (* parallel phase: each datum's partition (and the cost vectors it pulls
     in) is independent of every other datum's *)
  let desired =
    Obs.Span.with_ ~name:"grouping.partitions" @@ fun () ->
    (* parking spot for never-referenced data: rank 0, or the lowest
       alive rank once faults kill it *)
    let home =
      let r = ref 0 in
      while not (Problem.rank_alive problem !r) do incr r done;
      !r
    in
    Engine.map ~jobs:(Problem.jobs problem) n_data (fun data ->
        match desired_trajectory ~n_windows (partition_of ~data) with
        | Some traj -> traj
        | None -> Array.make n_windows home)
  in
  let schedule =
    Schedule.create (Problem.mesh problem) ~n_windows ~n_data
  in
  match Problem.policy problem with
  | Problem.Unbounded ->
      Array.iteri
        (fun data traj ->
          Array.iteri
            (fun w rank -> Schedule.set_center schedule ~window:w ~data rank)
            traj)
        desired;
      schedule
  | Problem.Bounded _ ->
      Problem.check_feasible problem ~who:"Grouping.schedule";
      (* Per-window repair: place each datum as close as possible to its
         desired center, heavier data first — serial, like every
         capacity-allocation loop. *)
      let current = Array.make n_data (-1) in
      for w = 0 to n_windows - 1 do
        let window = Problem.window problem w in
        let memory = Problem.fresh_memory problem in
        let order =
          List.init n_data Fun.id
          |> List.sort (fun a b ->
                 let r d = Reftrace.Window.references window d in
                 let cmp = Int.compare (r b) (r a) in
                 if cmp <> 0 then cmp else Int.compare a b)
        in
        List.iter
          (fun data ->
            let target = desired.(data).(w) in
            let rank =
              Processor_list.assign memory
                (Problem.ranks_near problem ~target)
            in
            current.(data) <- rank)
          order;
        Array.iteri
          (fun data rank ->
            Schedule.set_center schedule ~window:w ~data rank)
          current
      done;
      schedule

let schedule ?(centers = `Local) problem =
  run_with_partitions problem ~partition_of:(fun ~data ->
      groups problem ~data ~centers)

let optimal_schedule problem =
  (* the exact DP prices from full cost vectors under every kernel *)
  Problem.prefetch_all problem;
  run_with_partitions problem ~partition_of:(fun ~data ->
      optimal_groups problem ~data)

