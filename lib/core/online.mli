(** Online data scheduling with hysteresis (our extension).

    The paper's schedulers are offline: they see every execution window
    before placing anything. A runtime system often cannot — it discovers
    each window's reference string as it executes. This scheduler processes
    windows strictly left to right with no lookahead: data start at an
    imposed placement (default row-wise, the host's layout), and when a
    referenced datum's current home is worse than the window's local
    optimal center, it migrates only if

    [(current cost − best cost) × theta > migration distance]

    — [theta] is the hysteresis horizon, the number of windows the current
    pattern is assumed to persist. [theta = 1] is conservative (every
    migration is immediately profitable within its own window); large
    [theta] recovers LOMCDS's always-chase behaviour; [theta → 0] never
    moves at all and equals the static initial placement (a property
    test). No online policy can match the offline optimum in general —
    this is a metrical-task-system-style problem — but the offline
    {!Adapt} schedule from the same initial placement is always a lower
    bound (property-tested), and bench ablation A9 measures the empirical
    competitive ratio across [theta]. *)

(** [schedule ?theta ?initial problem] computes the online schedule on a
    shared {!Problem.t}: stay/go probes are {!Problem.cost_entry} arena
    reads, candidate lists come from the context's caches, and under an
    unbounded policy the go-target is the vector-free
    {!Problem.optimal_center} (the list head it replaces — byte-identical
    schedules, pinned by [test/test_fastpath.ml]). [theta] defaults to
    [2.]; [initial] to the row-wise placement. Window 0 always serves from
    the initial placement (the data are already there when execution
    starts).
    @raise Invalid_argument if [theta <= 0.], [initial] is malformed, or
    the context's capacity is infeasible. *)
val schedule :
  ?theta:float -> ?initial:int array -> Problem.t -> Schedule.t

(** [run ?capacity ?theta ?initial mesh trace] is {!schedule} on a
    throwaway context — the historical entry point. *)
val run :
  ?capacity:int ->
  ?theta:float ->
  ?initial:int array ->
  Pim.Mesh.t ->
  Reftrace.Trace.t ->
  Schedule.t
