type stats = {
  iterations : int;
  accepted : int;
  initial_cost : int;
  final_cost : int;
}

(* Private xorshift so the global Random state is untouched. *)
let make_rng seed =
  let state = ref (if seed = 0 then 0xBEEF else seed) in
  fun bound ->
    let x = !state in
    let x = x lxor (x lsl 13) in
    let x = x lxor (x lsr 7) in
    let x = x lxor (x lsl 17) in
    state := x land max_int;
    !state mod bound

let anneal ?(seed = 0xBEEF) ?(iterations = 50_000) ?initial problem =
  if iterations < 0 then
    invalid_arg "Annealing.run: iterations must be non-negative";
  let mesh = Problem.mesh problem in
  let trace = Problem.trace problem in
  let space = Problem.space problem in
  let n_data = Problem.n_data problem in
  let n_windows = Problem.n_windows problem in
  let m = Pim.Mesh.size mesh in
  let sched =
    match initial with
    | Some s ->
        if Schedule.n_data s <> n_data || Schedule.n_windows s <> n_windows
        then invalid_arg "Annealing.run: initial schedule shape mismatch";
        Schedule.copy s
    | None ->
        Baseline.schedule (Baseline.row_wise mesh space) mesh trace
  in
  let capacity = Problem.capacity problem in
  (match capacity with
  | Some c -> (
      match Schedule.check_capacity sched ~capacity:c with
      | Some _ ->
          invalid_arg "Annealing.run: initial schedule violates capacity"
      | None -> ())
  | None -> ());
  (* every move probes two arena entries: fill the whole arena on the pool
     once, then the search loop only reads *)
  Problem.prefetch_all problem;
  (* window-major slab views over the freshly filled arena: the delta
     evaluator's two reads per probe become direct bigarray loads with no
     per-probe fill check or arena dispatch *)
  let views =
    Array.init n_windows (fun w -> Problem.window_rows problem ~window:w)
  in
  let entry w d rank =
    let slabs, offs = views.(w) in
    slabs.(d).{offs.(d) + rank}
  in
  let volume = Array.init n_data (Reftrace.Data_space.volume_of space) in
  let loads = Array.make_matrix n_windows m 0 in
  for w = 0 to n_windows - 1 do
    for d = 0 to n_data - 1 do
      let r = Schedule.center sched ~window:w ~data:d in
      loads.(w).(r) <- loads.(w).(r) + 1
    done
  done;
  let rng = make_rng seed in
  let dist = Problem.distance problem in
  (* weighted delta of relocating datum d in window w from r to r' —
     reference-cost diffs are two arena reads ([Problem.cost_entry]
     equals [Cost.reference_cost] entry-for-entry) *)
  let delta w d r r' =
    let refs = entry w d r' - entry w d r in
    let edge w' =
      let other = Schedule.center sched ~window:w' ~data:d in
      dist r' other - dist r other
    in
    let moves =
      (if w > 0 then edge (w - 1) else 0)
      + if w < n_windows - 1 then edge (w + 1) else 0
    in
    volume.(d) * (refs + moves)
  in
  (* Fault-aware pricing: on a degraded context the healthy
     Schedule.total_cost no longer matches the arena entries the deltas
     read, so total from the context instead (identical when healthy, but
     the healthy path keeps the exact historical call). *)
  let total_now () =
    if Pim.Fault.is_none (Problem.fault problem) then
      Schedule.total_cost sched trace
    else begin
      let sum = ref 0 in
      for d = 0 to n_data - 1 do
        sum :=
          !sum
          + volume.(d)
            * Problem.trajectory_cost problem ~data:d
                (Schedule.centers_of_data sched ~data:d)
      done;
      !sum
    end
  in
  let initial_cost = total_now () in
  let current = ref initial_cost in
  let accepted = ref 0 in
  (* geometric cooling from a temperature comparable to typical deltas *)
  let temp = ref (float_of_int (max 1 (initial_cost / max 1 (n_data * 4)))) in
  let cooling =
    if iterations = 0 then 1. else Float.exp (Float.log 0.001 /. float_of_int iterations)
  in
  for _ = 1 to iterations do
    let w = rng n_windows and d = rng n_data and r' = rng m in
    let r = Schedule.center sched ~window:w ~data:d in
    let room =
      match capacity with None -> true | Some c -> loads.(w).(r') < c
    in
    (* dead ranks are never proposed; the rng draw count is unchanged, so
       Fault.none runs replay the exact historical trajectory *)
    if r' <> r && room && Problem.rank_alive problem r' then begin
      let dl = delta w d r r' in
      let accept =
        dl <= 0
        ||
        let u = float_of_int (1 + rng 1_000_000) /. 1_000_000. in
        u < Float.exp (-.float_of_int dl /. !temp)
      in
      if accept then begin
        Schedule.set_center sched ~window:w ~data:d r';
        loads.(w).(r) <- loads.(w).(r) - 1;
        loads.(w).(r') <- loads.(w).(r') + 1;
        current := !current + dl;
        incr accepted
      end
    end;
    temp := Float.max 1e-6 (!temp *. cooling)
  done;
  assert (!current = total_now ());
  ( sched,
    {
      iterations;
      accepted = !accepted;
      initial_cost;
      final_cost = !current;
    } )

let run ?capacity ?seed ?iterations ?initial mesh trace =
  anneal ?seed ?iterations ?initial (Problem.of_capacity ?capacity mesh trace)
