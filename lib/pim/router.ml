type message = { src : int; dst : int; volume : int }

let message ~src ~dst ~volume =
  if volume < 0 then invalid_arg "Router.message: negative volume";
  { src; dst; volume }

let cost mesh { src; dst; volume } = volume * Mesh.distance mesh src dst

let route mesh stats msg =
  let path = Mesh.xy_route mesh ~src:msg.src ~dst:msg.dst in
  let rec walk hops = function
    | a :: (b :: _ as rest) ->
        Link_stats.record stats ~src:a ~dst:b ~volume:msg.volume;
        walk (hops + 1) rest
    | [ _ ] | [] -> hops
  in
  let hops = walk 0 path in
  if !Obs.enabled then begin
    Obs.Metrics.incr "router.messages";
    Obs.Metrics.observe "router.hops" hops;
    Obs.Metrics.add "router.volume_hops" (hops * msg.volume)
  end;
  hops * msg.volume

let route_all mesh stats msgs =
  List.fold_left (fun acc m -> acc + route mesh stats m) 0 msgs

let pp_message fmt { src; dst; volume } =
  Format.fprintf fmt "%d->%d x%d" src dst volume
