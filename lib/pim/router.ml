type message = { src : int; dst : int; volume : int }

let message ~src ~dst ~volume =
  if volume < 0 then invalid_arg "Router.message: negative volume";
  { src; dst; volume }

(* Ranks are validated at routing time (a message does not know its mesh):
   an out-of-range endpoint used to walk off the grid or crash deep in
   Mesh; now it is a typed error at the routing entry points. *)
let check_ranks who mesh { src; dst; _ } =
  let size = Mesh.size mesh in
  if src < 0 || src >= size then
    invalid_arg
      (Printf.sprintf "Router.%s: src rank %d out of [0, %d)" who src size);
  if dst < 0 || dst >= size then
    invalid_arg
      (Printf.sprintf "Router.%s: dst rank %d out of [0, %d)" who dst size)

let cost ?oracle mesh ({ src; dst; volume } as msg) =
  check_ranks "cost" mesh msg;
  match oracle with
  | None -> volume * Mesh.distance mesh src dst
  | Some o -> volume * Fault.Oracle.distance_exn o ~src ~dst

let path_of ?oracle mesh msg =
  match oracle with
  | None -> Mesh.xy_route mesh ~src:msg.src ~dst:msg.dst
  | Some o -> (
      match Fault.Oracle.route o ~src:msg.src ~dst:msg.dst with
      | Some path -> path
      | None -> raise (Fault.Unreachable (msg.src, msg.dst)))

let route ?oracle mesh stats msg =
  check_ranks "route" mesh msg;
  let path = path_of ?oracle mesh msg in
  let rec walk hops = function
    | a :: (b :: _ as rest) ->
        Link_stats.record stats ~src:a ~dst:b ~volume:msg.volume;
        walk (hops + 1) rest
    | [ _ ] | [] -> hops
  in
  let hops = walk 0 path in
  if !Obs.enabled then begin
    Obs.Metrics.incr "router.messages";
    Obs.Metrics.observe "router.hops" hops;
    Obs.Metrics.add "router.volume_hops" (hops * msg.volume);
    if oracle <> None then begin
      let detour = hops - Mesh.distance mesh msg.src msg.dst in
      if detour > 0 then begin
        Obs.Metrics.incr "router.reroutes";
        Obs.Metrics.add "router.reroute_hops" detour
      end
    end
  end;
  hops * msg.volume

let route_all ?oracle mesh stats msgs =
  List.fold_left (fun acc m -> acc + route ?oracle mesh stats m) 0 msgs

let pp_message fmt { src; dst; volume } =
  Format.fprintf fmt "%d->%d x%d" src dst volume
