(** Message-level execution of a data schedule.

    The schedulers compute analytic costs; this simulator independently
    {e executes} the communication implied by a schedule — round by round,
    message by message, hop by hop — and measures what it cost. A round is
    one execution window's worth of traffic: first the migration messages
    that move data to this window's centers, then one message per data
    reference. The measured total must equal the analytic total; the test
    suite enforces this identity.

    Beyond the paper's scalar cost, each round also reports a
    bandwidth-limited latency lower bound (max per-link load vs. max hop
    distance), which the congestion ablation uses. *)

type round_report = {
  round : int;  (** window index *)
  migration_cost : int;  (** hop·volume units spent moving data *)
  reference_cost : int;  (** hop·volume units spent fetching data *)
  messages : int;  (** number of non-local messages routed *)
  latency_bound : int;
      (** max(max hop distance of any message, max per-link volume) for this
          round — a lower bound on the round's completion time under
          unit-bandwidth links *)
}

type report = {
  rounds : round_report list;  (** in execution order *)
  total_migration : int;
  total_reference : int;
  total_cost : int;  (** [total_migration + total_reference] *)
  link_stats : Link_stats.t;  (** cumulative over all rounds *)
}

(** One round's traffic: data migrations then reference messages. *)
type round = {
  migrations : Router.message list;
  references : Router.message list;
}

(** [run ?fault mesh rounds] routes every message of every round in order
    and returns the measured report. With a [fault], messages detour around
    dead links (priced at the fault-aware BFS distance) and no traffic is
    ever charged to a dead link; [fault] defaulting to {!Fault.none} runs
    the original code path unchanged.
    @raise Fault.Unreachable if a message's destination has no surviving
    path — a typed error, never a hang. *)
val run : ?fault:Fault.t -> Mesh.t -> round list -> report

val pp_report : Format.formatter -> report -> unit
