(** Contention-aware timing of a schedule's traffic.

    {!Simulator} verifies the paper's scalar cost (hop·volume units);
    this module answers the follow-on question the paper leaves open: how
    long does a window's traffic actually {e take} when links have finite
    bandwidth and messages queue behind each other?

    The engine is a cycle-accurate packet simulation parameterized by a
    {!Link_model.t}: per-link bandwidth, optional wormhole (flit-
    fragmented) pipelining vs store-and-forward, bounded router input
    queues with backpressure, and per-node compute occupancy. A message
    follows its x-y route hop by hop; a link moves up to [bandwidth]
    volume units per cycle and serves waiting packets in FIFO order (ties
    broken by injection order, so runs are deterministic); under
    store-and-forward a packet occupies a link for [ceil (volume /
    bandwidth)] consecutive cycles and only then queues at the next link,
    while under wormhole each flit-sized fragment does so independently,
    pipelining the message across its route. With a bounded [queue_depth]
    a packet that finishes its hop but finds the downstream queue full
    {e blocks in place}, holding its current link idle — the backpressure
    propagates upstream one blocked link at a time. With
    [compute_cycles > 0] a rank that sinks reference traffic is busy
    executing at round start and cannot inject its own packets until
    done. Migration packets of a round are injected before reference
    packets, all at cycle 0. The round's {e makespan} is the cycle at
    which its last packet is delivered (and, under the compute model,
    every rank has finished executing).

    The default model is {!Link_model.degenerate} — bandwidth 1,
    store-and-forward, unbounded queues, free compute — under which the
    engine is pinned {e byte-identical} (cycles, messages, volume-hops
    and the utilization float) to the retained pre-model engine
    ({!Reference}) by the differential suite in [test_timed_model.ml],
    across schedulers, topologies, faults and both cost kernels.

    Two easy lower bounds hold and are property-tested: a round's
    makespan is at least [ceil (volume / bandwidth)] of the most loaded
    link, and at least the longest single-packet serialized path (for a
    lone store-and-forward message, [hops × ceil (volume / bandwidth)]). *)

(** Raised by the watchdog when a cycle passes with packets in flight but
    no units transmitted, no grants and no advances once every rank is
    done computing — the state can never change again. Only reachable
    with bounded queues when blocked packets form a cyclic link
    dependency (e.g. fault detours that defeat x-y order); the fault ×
    queue-depth suite pins that detoured bottlenecks stall but never
    deadlock. *)
exception Deadlock of { cycle : int; in_flight : int }

type round_report = {
  round : int;
  cycles : int;  (** makespan of the round; 0 for an all-local round *)
  messages : int;  (** messages actually injected (non-local, volume > 0) *)
  volume_hops : int;  (** Σ volume·hops — equals the analytic cost *)
  utilization : float;
      (** Legacy aggregate kept for the pre-model reports:
          [volume_hops / (live links × cycles)] where {e live links} is
          the count of links {e ever} active this round — the denominator
          charges every such link for the full makespan, not for the
          cycles it was actually live, so a lone message over [h] hops
          scores [1/h], and only the single-{e hop} message scores [1.0]
          (both pinned by regression tests). For a per-cycle-honest
          figure read {!round_report.link_utilization}. *)
  flits : int;
      (** packets physically injected: fragments under wormhole,
          [= messages] under store-and-forward *)
  link_utilization : float;
      (** busy link-cycles / live link-cycles, where a link is {e live}
          from grant interest to last transmission (busy transmitting,
          holding a blocked packet, or queueing an ineligible head) — a
          lone message scores [1.0] over any route length *)
  bandwidth_idle : int;
      (** idle link-cycles over the round: [live links × cycles − busy
          link-cycles] — capacity the makespan paid for but never used *)
  queue_stall_cycles : int;
      (** Σ packet-cycles spent blocked in place by a full downstream
          queue; [0] with unbounded queues *)
  compute_idle : int;
      (** Σ rank-cycles waiting on the round after finishing local
          execution; [0] when compute is free ([compute_cycles = 0]) *)
}

type report = {
  rounds : round_report list;
  total_cycles : int;  (** Σ round makespans — rounds are barriers *)
  total_volume_hops : int;
  link_utilization : float;  (** busy / live link-cycles over all rounds *)
  bandwidth_idle : int;  (** Σ per-round bandwidth_idle *)
  queue_stall_cycles : int;  (** Σ per-round queue_stall_cycles *)
  compute_idle : int;  (** Σ per-round compute_idle *)
  energy_transport : float;
      (** [energy.per_hop · total_volume_hops] ({!Energy}'s transport
          term, priced with the model's parameters) *)
  energy_leakage : float;
      (** [energy.leak · processors · total_cycles] *)
  energy : float;
      (** [energy_transport + energy_leakage]; equals
          [Energy.of_report mesh report] bit for bit under the default
          parameters (pinned) *)
}

(** [run ?fault ?model mesh rounds] simulates every round to completion
    under [model] (default {!Link_model.degenerate}). With a [fault],
    packets follow the fault-aware BFS detours around dead links. Under
    the compute model a rank's occupancy is [compute_cycles] per
    reference volume unit it sinks in the round (local references
    included — the operations still execute).
    @raise Fault.Unreachable if a packet's destination has no surviving
    path.
    @raise Deadlock if backpressure wedges (see {!Deadlock}). *)
val run :
  ?fault:Fault.t -> ?model:Link_model.t -> Mesh.t -> Simulator.round list ->
  report

(** [round_makespan ?fault ?model mesh messages] times one batch of
    messages (cycle at which the last one is delivered). For compute
    occupancy every message of the batch counts as reference work at its
    destination. *)
val round_makespan :
  ?fault:Fault.t -> ?model:Link_model.t -> Mesh.t -> Router.message list ->
  int

(** [round_stats ?fault ?model mesh messages] is the full report of one
    batch simulated as a standalone round (same conventions as
    {!round_makespan}). *)
val round_stats :
  ?fault:Fault.t -> ?model:Link_model.t -> Mesh.t -> Router.message list ->
  round_report

val pp_report : Format.formatter -> report -> unit

(** The pre-model engine, retained verbatim as the pinned oracle of the
    differential suite: bandwidth-1 store-and-forward with unbounded
    queues and free compute. [run ~model:Link_model.degenerate] must
    reproduce these reports byte-identically — field by field, including
    the legacy utilization float. Oracle-only: it still carries the O(n²)
    [List.mem] activation scan the live engine replaced with a hash-set,
    so don't call it on a hot path. *)
module Reference : sig
  type round_report = {
    round : int;
    cycles : int;
    messages : int;
    volume_hops : int;
    utilization : float;
  }

  type report = {
    rounds : round_report list;
    total_cycles : int;
    total_volume_hops : int;
  }

  val run : ?fault:Fault.t -> Mesh.t -> Simulator.round list -> report
  val round_makespan : ?fault:Fault.t -> Mesh.t -> Router.message list -> int
end
