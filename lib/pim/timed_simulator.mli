(** Contention-aware timing of a schedule's traffic.

    {!Simulator} verifies the paper's scalar cost (hop·volume units);
    this module answers the follow-on question the paper leaves open: how
    long does a window's traffic actually {e take} when links have unit
    bandwidth and messages queue behind each other?

    The model is store-and-forward packet switching: a message follows its
    x-y route hop by hop; a link transmits one volume unit per cycle and
    serves waiting packets in FIFO order (ties broken by injection order,
    so runs are deterministic); a packet occupies a link for [volume]
    consecutive cycles and only then queues at the next link. Migration
    packets of a round are injected before reference packets, all at cycle
    0. The round's {e makespan} is the cycle at which its last packet is
    delivered.

    Two easy lower bounds hold and are property-tested: a round's makespan
    is at least the largest [volume × hops] of any of its messages, and at
    least the highest per-link volume. *)

type round_report = {
  round : int;
  cycles : int;  (** makespan of the round; 0 for an all-local round *)
  messages : int;  (** packets actually injected (non-local, volume > 0) *)
  volume_hops : int;  (** Σ volume·hops — equals the analytic cost *)
  utilization : float;
      (** [volume_hops / (live links × cycles)]: mean fraction of link
          bandwidth in use while the round ran; [0.] for an empty round *)
}

type report = {
  rounds : round_report list;
  total_cycles : int;  (** Σ round makespans — rounds are barriers *)
  total_volume_hops : int;
}

(** [run ?fault mesh rounds] simulates every round to completion. With a
    [fault], packets follow the fault-aware BFS detours around dead links.
    @raise Fault.Unreachable if a packet's destination has no surviving
    path. *)
val run : ?fault:Fault.t -> Mesh.t -> Simulator.round list -> report

(** [round_makespan ?fault mesh messages] times one batch of messages
    (cycle at which the last one is delivered). *)
val round_makespan : ?fault:Fault.t -> Mesh.t -> Router.message list -> int

val pp_report : Format.formatter -> report -> unit
