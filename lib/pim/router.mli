(** X-y message routing over the mesh, with traffic accounting.

    [route] charges every hop of the dimension-ordered path to a
    {!Link_stats.t}, so the accumulated {!Link_stats.total} of a batch of
    messages equals the analytic Σ volume·distance cost the schedulers
    compute — the identity the simulator's integration tests rely on.

    Every entry point takes an optional fault {!Fault.Oracle.t}: with one,
    messages follow (and are priced by) shortest surviving routes around
    dead links, and a destination with no surviving path raises the typed
    {!Fault.Unreachable} instead of hanging. Without one the original x-y
    code path runs unchanged. *)

type message = {
  src : int;  (** rank holding the data *)
  dst : int;  (** rank that needs it (or receives the migrating datum) *)
  volume : int;  (** data volume in unit elements *)
}

(** [message ~src ~dst ~volume] builds a message. Ranks are validated
    against the mesh at routing time ({!cost} / {!route}), since a message
    does not carry its mesh.
    @raise Invalid_argument if [volume < 0]. *)
val message : src:int -> dst:int -> volume:int -> message

(** [cost ?oracle mesh msg] is the analytic cost [volume * distance], where
    distance is fault-aware when [oracle] is given.
    @raise Invalid_argument if either rank is outside [0, size).
    @raise Fault.Unreachable if [oracle] reports no surviving path. *)
val cost : ?oracle:Fault.Oracle.t -> Mesh.t -> message -> int

(** [route ?oracle mesh stats msg] walks the route of [msg] (x-y, or the
    oracle's shortest surviving detour), recording [volume] units on every
    traversed link into [stats], and returns the hop·volume cost (equal to
    [cost ?oracle mesh msg]). A self-message costs [0].
    @raise Invalid_argument if either rank is outside [0, size).
    @raise Fault.Unreachable if [oracle] reports no surviving path. *)
val route : ?oracle:Fault.Oracle.t -> Mesh.t -> Link_stats.t -> message -> int

(** [route_all ?oracle mesh stats msgs] routes a batch and returns the
    summed cost. *)
val route_all :
  ?oracle:Fault.Oracle.t -> Mesh.t -> Link_stats.t -> message list -> int

val pp_message : Format.formatter -> message -> unit
