type t = {
  mesh : Mesh.t;
  capacity : int option;
  used : int array; (* occupied slot count per rank *)
  dead : bool array; (* banned ranks hold nothing, even unbounded *)
}

let create mesh ~capacity =
  if capacity < 0 then
    invalid_arg (Printf.sprintf "Memory.create: negative capacity %d" capacity);
  {
    mesh;
    capacity = Some capacity;
    used = Array.make (Mesh.size mesh) 0;
    dead = Array.make (Mesh.size mesh) false;
  }

let unbounded mesh =
  {
    mesh;
    capacity = None;
    used = Array.make (Mesh.size mesh) 0;
    dead = Array.make (Mesh.size mesh) false;
  }

let capacity_for ~data_count ~mesh ~headroom =
  if data_count <= 0 then
    invalid_arg "Memory.capacity_for: data_count must be positive";
  if headroom <= 0 then
    invalid_arg "Memory.capacity_for: headroom must be positive";
  let p = Mesh.size mesh in
  headroom * ((data_count + p - 1) / p)

let mesh t = t.mesh
let capacity t = t.capacity

let check_rank t rank =
  if rank < 0 || rank >= Array.length t.used then
    invalid_arg (Printf.sprintf "Memory: rank %d out of bounds" rank)

let used t rank =
  check_rank t rank;
  t.used.(rank)

let ban t rank =
  check_rank t rank;
  t.dead.(rank) <- true

let banned t rank =
  check_rank t rank;
  t.dead.(rank)

let free t rank =
  check_rank t rank;
  if t.dead.(rank) then 0
  else
    match t.capacity with
    | None -> max_int
    | Some c -> c - t.used.(rank)

let is_full t rank = free t rank <= 0

let allocate t rank =
  check_rank t rank;
  if is_full t rank then false
  else begin
    t.used.(rank) <- t.used.(rank) + 1;
    true
  end

let release t rank =
  check_rank t rank;
  if t.used.(rank) = 0 then
    invalid_arg (Printf.sprintf "Memory.release: rank %d already empty" rank);
  t.used.(rank) <- t.used.(rank) - 1

let reset t = Array.fill t.used 0 (Array.length t.used) 0
let copy t = { t with used = Array.copy t.used; dead = Array.copy t.dead }
let total_used t = Array.fold_left ( + ) 0 t.used

let pp fmt t =
  let cap =
    match t.capacity with None -> "inf" | Some c -> string_of_int c
  in
  Format.fprintf fmt "memory(%a, cap=%s, used=%d)" Mesh.pp t.mesh cap
    (total_used t)
