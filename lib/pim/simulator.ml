type round_report = {
  round : int;
  migration_cost : int;
  reference_cost : int;
  messages : int;
  latency_bound : int;
}

type report = {
  rounds : round_report list;
  total_migration : int;
  total_reference : int;
  total_cost : int;
  link_stats : Link_stats.t;
}

type round = {
  migrations : Router.message list;
  references : Router.message list;
}

let non_local msgs =
  List.filter (fun (m : Router.message) -> m.src <> m.dst && m.volume > 0) msgs

let run ?(fault = Fault.none) mesh rounds =
  Obs.Span.with_ ~name:"sim.run" @@ fun () ->
  let oracle =
    if Fault.is_none fault then None else Some (Fault.Oracle.create mesh fault)
  in
  let cumulative = Link_stats.create ~fault mesh in
  let run_round idx { migrations; references } =
    let per_round = Link_stats.create ~fault mesh in
    let route_batch msgs =
      List.fold_left
        (fun acc m ->
          let c = Router.route ?oracle mesh per_round m in
          let c' = Router.route ?oracle mesh cumulative m in
          assert (c = c');
          acc + c)
        0 msgs
    in
    let migration_cost = route_batch migrations in
    let reference_cost = route_batch references in
    let live = non_local (migrations @ references) in
    let max_distance =
      List.fold_left
        (fun acc (m : Router.message) ->
          max acc
            (match oracle with
            | None -> Mesh.distance mesh m.src m.dst
            | Some o -> Fault.Oracle.distance_exn o ~src:m.src ~dst:m.dst))
        0 live
    in
    let max_link =
      match Link_stats.max_link per_round with
      | None -> 0
      | Some (_, _, v) -> v
    in
    {
      round = idx;
      migration_cost;
      reference_cost;
      messages = List.length live;
      latency_bound = max max_distance max_link;
    }
  in
  let reports = List.mapi run_round rounds in
  let total_migration =
    List.fold_left (fun acc r -> acc + r.migration_cost) 0 reports
  in
  let total_reference =
    List.fold_left (fun acc r -> acc + r.reference_cost) 0 reports
  in
  {
    rounds = reports;
    total_migration;
    total_reference;
    total_cost = total_migration + total_reference;
    link_stats = cumulative;
  }

let pp_report fmt r =
  Format.fprintf fmt
    "@[<v>simulated: total=%d (migration=%d, reference=%d) over %d rounds;@ %a@]"
    r.total_cost r.total_migration r.total_reference (List.length r.rounds)
    Link_stats.pp r.link_stats
