type t = { rows : int; cols : int; wrap : bool }

let make ~wrap ~rows ~cols =
  if rows <= 0 || cols <= 0 then
    invalid_arg
      (Printf.sprintf "Mesh.create: dimensions must be positive (%dx%d)" rows
         cols);
  { rows; cols; wrap }

let create ~rows ~cols = make ~wrap:false ~rows ~cols
let torus ~rows ~cols = make ~wrap:true ~rows ~cols
let square ?(wrap = false) n = make ~wrap ~rows:n ~cols:n
let rows m = m.rows
let cols m = m.cols
let wraps m = m.wrap
let size m = m.rows * m.cols

let in_bounds m (c : Coord.t) =
  c.x >= 0 && c.x < m.cols && c.y >= 0 && c.y < m.rows

let rank_of_coord m c =
  if not (in_bounds m c) then
    invalid_arg
      (Printf.sprintf "Mesh.rank_of_coord: %s out of bounds for %dx%d mesh"
         (Coord.to_string c) m.rows m.cols);
  (c.y * m.cols) + c.x

let coord_of_rank m r =
  if r < 0 || r >= size m then
    invalid_arg
      (Printf.sprintf "Mesh.coord_of_rank: rank %d out of bounds for %dx%d"
         r m.rows m.cols);
  Coord.make ~x:(r mod m.cols) ~y:(r / m.cols)

let x_of_rank m r =
  if r < 0 || r >= size m then
    invalid_arg
      (Printf.sprintf "Mesh.x_of_rank: rank %d out of bounds for %dx%d" r
         m.rows m.cols);
  r mod m.cols

let y_of_rank m r =
  if r < 0 || r >= size m then
    invalid_arg
      (Printf.sprintf "Mesh.y_of_rank: rank %d out of bounds for %dx%d" r
         m.rows m.cols);
  r / m.cols

let axis_distance ~wrap ~extent a b =
  let direct = abs (a - b) in
  if wrap then min direct (extent - direct) else direct

let axis_table ~wrap ~extent =
  Array.init extent (fun a ->
      Array.init extent (fun b -> axis_distance ~wrap ~extent a b))

let x_distance_table m = axis_table ~wrap:m.wrap ~extent:m.cols
let y_distance_table m = axis_table ~wrap:m.wrap ~extent:m.rows

let distance m a b =
  let ca = coord_of_rank m a and cb = coord_of_rank m b in
  axis_distance ~wrap:m.wrap ~extent:m.cols ca.Coord.x cb.Coord.x
  + axis_distance ~wrap:m.wrap ~extent:m.rows ca.Coord.y cb.Coord.y

let distance_table m =
  let n = size m in
  (* coordinates decoded once per rank instead of once per pair *)
  let coords = Array.init n (coord_of_rank m) in
  Array.init n (fun a ->
      let ca = coords.(a) in
      Array.init n (fun b ->
          let cb = coords.(b) in
          axis_distance ~wrap:m.wrap ~extent:m.cols ca.Coord.x cb.Coord.x
          + axis_distance ~wrap:m.wrap ~extent:m.rows ca.Coord.y cb.Coord.y))

(* Per-axis step towards [target]: +1/-1 on a plain mesh; on a torus, the
   direction of the shorter way round (non-wrapping on ties), applied
   modulo the extent. *)
let axis_step ~wrap ~extent v target =
  let direct = target - v in
  if not wrap then if direct > 0 then v + 1 else v - 1
  else begin
    let forward = (direct + extent) mod extent in
    let backward = extent - forward in
    let shorter_is_forward =
      if forward = backward then direct > 0 else forward < backward
    in
    if shorter_is_forward then (v + 1) mod extent
    else (v - 1 + extent) mod extent
  end

(* Dimension-ordered routing: correct x first, then y, as in the paper's
   x-y routing assumption. *)
let xy_route m ~src ~dst =
  let s = coord_of_rank m src and d = coord_of_rank m dst in
  let rec go (c : Coord.t) acc =
    if c.x <> d.x then
      let x = axis_step ~wrap:m.wrap ~extent:m.cols c.x d.x in
      let c' = Coord.make ~x ~y:c.y in
      go c' (rank_of_coord m c' :: acc)
    else if c.y <> d.y then
      let y = axis_step ~wrap:m.wrap ~extent:m.rows c.y d.y in
      let c' = Coord.make ~x:c.x ~y in
      go c' (rank_of_coord m c' :: acc)
    else List.rev acc
  in
  go s [ src ]

let neighbours m r =
  let c = coord_of_rank m r in
  let wrap_coord (cand : Coord.t) =
    if m.wrap then
      Some
        (Coord.make
           ~x:((cand.x + m.cols) mod m.cols)
           ~y:((cand.y + m.rows) mod m.rows))
    else if in_bounds m cand then Some cand
    else None
  in
  let candidates =
    [
      Coord.make ~x:(c.x - 1) ~y:c.y;
      Coord.make ~x:(c.x + 1) ~y:c.y;
      Coord.make ~x:c.x ~y:(c.y - 1);
      Coord.make ~x:c.x ~y:(c.y + 1);
    ]
  in
  List.filter_map
    (fun cand ->
      match wrap_coord cand with
      | Some c' when not (Coord.equal c' c) -> Some (rank_of_coord m c')
      | Some _ | None -> None)
    candidates
  |> List.sort_uniq Int.compare

let links m =
  let acc = ref [] in
  for r = size m - 1 downto 0 do
    List.iter (fun n -> acc := (r, n) :: !acc) (List.rev (neighbours m r))
  done;
  !acc

let iter_ranks m f =
  for r = 0 to size m - 1 do
    f r
  done

let fold_ranks m ~init ~f =
  let acc = ref init in
  iter_ranks m (fun r -> acc := f !acc r);
  !acc

let ranks m = List.init (size m) Fun.id

let pp fmt m =
  Format.fprintf fmt "%dx%d %s" m.rows m.cols
    (if m.wrap then "torus" else "mesh")
