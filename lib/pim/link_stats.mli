(** Per-link traffic accounting for the PIM mesh.

    The analytic cost model in the paper counts hop·volume units; this module
    records where those hops actually land so we can study congestion (an
    ablation the paper motivates but does not evaluate). *)

type t

(** [create ?fault mesh] makes an empty accounting table. With a [fault],
    {!record} additionally rejects traffic on dead links — the simulator's
    guard that rerouted traffic really avoids them.
    @raise Invalid_argument if [fault] does not fit [mesh]. *)
val create : ?fault:Fault.t -> Mesh.t -> t

(** [record t ~src ~dst ~volume] charges [volume] units to the directed link
    [src -> dst]. @raise Invalid_argument unless [src] and [dst] are
    grid-adjacent and the link is alive. *)
val record : t -> src:int -> dst:int -> volume:int -> unit

(** [traffic t ~src ~dst] is the accumulated volume on the link. *)
val traffic : t -> src:int -> dst:int -> int

(** [total t] is the grand total of hop·volume units — by construction equal
    to the analytic communication cost of whatever was routed. *)
val total : t -> int

(** [max_link t] is [(src, dst, volume)] for the most loaded link, or [None]
    if nothing was recorded. *)
val max_link : t -> (int * int * int) option

(** [nonzero_links t] lists loaded links as [(src, dst, volume)], heaviest
    first. *)
val nonzero_links : t -> (int * int * int) list

(** [imbalance t] is [max link load / mean nonzero link load]; [0.] when no
    traffic was recorded. A perfectly balanced schedule gives [1.]. *)
val imbalance : t -> float

val reset : t -> unit
val pp : Format.formatter -> t -> unit
