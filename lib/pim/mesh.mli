(** Mesh topology of the PIM processor array.

    A mesh is a [rows] × [cols] grid of processors. Processors are addressed
    either by {!Coord.t} or by a dense integer {e rank} in row-major order:
    [rank = y * cols + x]. All scheduling algorithms work on ranks for speed;
    coordinates are for routing and presentation. *)

type t

(** [create ~rows ~cols] builds a plain (non-wrapping) mesh.
    @raise Invalid_argument if either dimension is [<= 0]. *)
val create : rows:int -> cols:int -> t

(** [torus ~rows ~cols] builds a torus: wrap-around links in both
    dimensions, the other topology the PetaFlop PIM designs considered.
    Distances, routes, neighbours and links all honour the wrap.
    @raise Invalid_argument if either dimension is [<= 0]. *)
val torus : rows:int -> cols:int -> t

(** [square ?wrap n] is an [n] × [n] mesh, or torus when [wrap] is
    [true]. *)
val square : ?wrap:bool -> int -> t

val rows : t -> int
val cols : t -> int

(** [wraps m] is [true] iff [m] is a torus. *)
val wraps : t -> bool

(** [size m] is the number of processors, [rows * cols]. *)
val size : t -> int

(** [in_bounds m c] is [true] iff coordinate [c] names a processor of [m]. *)
val in_bounds : t -> Coord.t -> bool

(** [rank_of_coord m c] converts a coordinate to its row-major rank.
    @raise Invalid_argument if [c] is out of bounds. *)
val rank_of_coord : t -> Coord.t -> int

(** [coord_of_rank m r] converts a rank back to a coordinate.
    @raise Invalid_argument if [r] is outside [0 .. size m - 1]. *)
val coord_of_rank : t -> int -> Coord.t

(** [x_of_rank m r] / [y_of_rank m r] decode one axis of a rank's
    coordinate without allocating a {!Coord.t}: [x = r mod cols],
    [y = r / cols]. The separable cost kernel leans on these.
    @raise Invalid_argument if [r] is outside [0 .. size m - 1]. *)
val x_of_rank : t -> int -> int

val y_of_rank : t -> int -> int

(** [distance m a b] is the x-y routing distance (Manhattan) between
    processors of rank [a] and [b]. *)
val distance : t -> int -> int -> int

(** [x_distance_table m] / [y_distance_table m] are the per-axis distance
    tables: [cols]×[cols] (resp. [rows]×[rows]) matrices with
    [(x_distance_table m).(a).(b)] the wrap-aware distance between columns
    [a] and [b]. Because x-y routing distance is separable,
    [distance m a b = xd.(xa).(xb) + yd.(ya).(yb)] — two tiny tables
    (O(cols² + rows²) words) replace the O(size²) full matrix for
    distance probes. *)
val x_distance_table : t -> int array array

val y_distance_table : t -> int array array

(** [distance_table m] materializes the full rank-to-rank distance matrix:
    [(distance_table m).(a).(b) = distance m a b]. {b Oracle-only}: since
    the flat-arena rewrite no scheduling path consumes this — distance
    probes read the two per-axis tables above and the layered DP runs on
    them directly ({!Pathgraph.Layered.solve_axes}); the only remaining
    consumer is the [`Naive] cost kernel's private table
    ({!Sched.Cost.Naive}), kept as the cross-check oracle. Costs
    [size m]² words — don't call it on a hot path. *)
val distance_table : t -> int array array

(** [xy_route m ~src ~dst] is the dimension-ordered (x first, then y) route
    from [src] to [dst] as the list of ranks visited, {e including} both
    endpoints. Its length is [distance m src dst + 1]; a route from a
    processor to itself is the singleton list. On a torus each axis goes
    the short way round (the non-wrapping direction on ties). *)
val xy_route : t -> src:int -> dst:int -> int list

(** [links m] enumerates the directed mesh links as [(from, to)] rank pairs;
    every pair of grid-adjacent processors contributes two links. *)
val links : t -> (int * int) list

(** [neighbours m r] is the list of ranks grid-adjacent to [r]. *)
val neighbours : t -> int -> int list

(** [iter_ranks m f] applies [f] to every rank in ascending order. *)
val iter_ranks : t -> (int -> unit) -> unit

(** [fold_ranks m init f] folds [f] over ranks in ascending order. *)
val fold_ranks : t -> init:'a -> f:('a -> int -> 'a) -> 'a

(** [ranks m] is [[0; 1; ...; size m - 1]]. *)
val ranks : t -> int list

val pp : Format.formatter -> t -> unit
