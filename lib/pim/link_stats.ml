type t = {
  mesh : Mesh.t;
  fault : Fault.t;
  table : (int * int, int ref) Hashtbl.t;
  mutable total : int;
}

let create ?(fault = Fault.none) mesh =
  Fault.validate fault mesh;
  { mesh; fault; table = Hashtbl.create 64; total = 0 }

let adjacent mesh src dst = List.mem dst (Mesh.neighbours mesh src)

let record t ~src ~dst ~volume =
  if volume < 0 then invalid_arg "Link_stats.record: negative volume";
  if not (adjacent t.mesh src dst) then
    invalid_arg
      (Printf.sprintf "Link_stats.record: %d -> %d is not a mesh link" src dst);
  if Fault.link_dead t.fault ~src ~dst then
    invalid_arg
      (Printf.sprintf "Link_stats.record: link %d -> %d is dead" src dst);
  begin
    match Hashtbl.find_opt t.table (src, dst) with
    | Some r -> r := !r + volume
    | None -> Hashtbl.add t.table (src, dst) (ref volume)
  end;
  (* flit-level view of the same traffic, folded into the registry so
     simulator runs show up next to the scheduler counters *)
  if !Obs.enabled then begin
    Obs.Metrics.add "link.flits" volume;
    Obs.Metrics.incr "link.records"
  end;
  t.total <- t.total + volume

let traffic t ~src ~dst =
  match Hashtbl.find_opt t.table (src, dst) with Some r -> !r | None -> 0

let total t = t.total

let nonzero_links t =
  Hashtbl.fold
    (fun (s, d) r acc -> if !r > 0 then (s, d, !r) :: acc else acc)
    t.table []
  |> List.sort (fun (_, _, a) (_, _, b) -> Int.compare b a)

let max_link t =
  match nonzero_links t with [] -> None | hd :: _ -> Some hd

let imbalance t =
  match nonzero_links t with
  | [] -> 0.
  | links ->
      let loads = List.map (fun (_, _, v) -> v) links in
      let mx = List.fold_left max 0 loads in
      let sum = List.fold_left ( + ) 0 loads in
      let mean = float_of_int sum /. float_of_int (List.length loads) in
      float_of_int mx /. mean

let reset t =
  Hashtbl.reset t.table;
  t.total <- 0

let pp fmt t =
  Format.fprintf fmt "links(total=%d, imbalance=%.2f)" t.total (imbalance t)
