(** Fault model for partially-available PIM arrays.

    The paper's schedulers assume every processor can host a center and
    every x-y route exists. This module describes the ways a real array
    degrades — {e node faults} (a processor's compute/memory dies, so it
    can no longer host data) and {e link faults} (a mesh link dies, so x-y
    routes must detour) — and provides the shortest-path oracle the rest of
    the stack routes and prices against on the degraded topology.

    Failure semantics: a dead {e node} keeps its router alive (the
    compute/memory macro fails, the network switch does not — the common
    PIM failure mode), so node faults never change distances; they only
    remove the rank from the set of legal data centers. A dead {e link} is
    bidirectional and removes both directed edges, which is what forces
    detours and makes distances non-separable.

    A [Fault.t] is independent of any mesh: it is a set of dead ranks and
    dead links, validated against a mesh when an {!Oracle.t} (or a
    [Sched.Problem.t]) is built over it. Values are immutable. *)

type t

(** [Unreachable (src, dst)] — a message was routed between two ranks with
    no surviving path. Raised by fault-aware routing ({!Oracle.route} never
    raises; {!Router.route} translates its [None]); catch it to implement
    retry accounting instead of hanging. *)
exception Unreachable of int * int

(** The healthy array: no dead nodes, no dead links. The guaranteed
    zero-overhead value — every fault-aware entry point checks {!is_none}
    and falls back to the exact pre-fault code path. *)
val none : t

val is_none : t -> bool

(** [create ?dead_nodes ?dead_links ()] builds a static fault set. Links
    are undirected: listing either direction kills both. Duplicates are
    ignored. Ranks/links are validated lazily against the mesh they are
    used with (see {!validate}). *)
val create : ?dead_nodes:int list -> ?dead_links:(int * int) list -> unit -> t

(** [inject ~seed ~node_rate ~link_rate mesh] is the deterministic seeded
    injection: every rank dies independently with probability [node_rate],
    every undirected mesh link with probability [link_rate]. The same seed
    always draws the same per-rank and per-link randoms {e regardless of
    the rates}, so the dead set at a higher rate is a superset of the dead
    set at a lower rate (monotone degradation sweeps). At least one node
    always survives: if every rank would die, the rank with the luckiest
    draw is resurrected.
    @raise Invalid_argument unless both rates are in [0, 1]. *)
val inject :
  seed:int -> node_rate:float -> link_rate:float -> Mesh.t -> t

(** [kill_node t rank] / [kill_link t ~src ~dst] are [t] plus one more
    failure (persistent — [t] is unchanged). Killing an already-dead
    element is a no-op. *)
val kill_node : t -> int -> t

(** [kill_nodes t ranks] kills a whole rank set at once — how a
    {e whole-array} failure in a multi-array group ({!Multi.Group_fault})
    lowers onto this model: an array is just a set of dead ranks.
    Duplicates and already-dead ranks are ignored. *)
val kill_nodes : t -> int list -> t

val kill_link : t -> src:int -> dst:int -> t

(** [union a b] fails everything failed in either. *)
val union : t -> t -> t

(** [node_dead t rank] is [true] iff [rank]'s compute/memory is dead. *)
val node_dead : t -> int -> bool

(** [link_dead t ~src ~dst] is [true] iff the (undirected) link is dead. *)
val link_dead : t -> src:int -> dst:int -> bool

(** [dead_nodes t] / [dead_links t] enumerate the failures, ascending
    (links as [(lo, hi)] canonical pairs). *)
val dead_nodes : t -> int list

val dead_links : t -> (int * int) list

val n_dead_nodes : t -> int
val n_dead_links : t -> int

(** [has_node_faults t] / [has_link_faults t] — the two downgrade triggers:
    node faults shrink the candidate-center set, link faults force the cost
    kernel off the separable fast path. *)
val has_node_faults : t -> bool

val has_link_faults : t -> bool

(** [alive_count t mesh] is the number of ranks of [mesh] that can still
    host data. *)
val alive_count : t -> Mesh.t -> int

(** [validate t mesh] checks every dead rank is a rank of [mesh] and every
    dead link is a mesh link.
    @raise Invalid_argument otherwise. *)
val validate : t -> Mesh.t -> unit

val pp : Format.formatter -> t -> unit

(** Cached BFS shortest-path oracle over the degraded topology.

    Distances and routes are computed by breadth-first search over the
    mesh graph minus dead links (dead nodes keep routing — see the model
    note above), one source at a time, cached for the oracle's lifetime.
    On {!none} the oracle answers straight from the closed-form
    {!Mesh.distance} / {!Mesh.xy_route} without running any BFS, so a
    healthy oracle is free and byte-identical to the fault-oblivious
    paths. *)
module Oracle : sig
  type fault := t

  type t

  (** [create mesh fault] validates [fault] against [mesh] and returns an
      empty-cached oracle. @raise Invalid_argument on a fault naming
      ranks or links outside [mesh]. *)
  val create : Mesh.t -> fault -> t

  val mesh : t -> Mesh.t
  val fault : t -> fault

  (** [distance t ~src ~dst] is the hop count of a shortest surviving
      route, [None] when [dst] is unreachable from [src]. Equals
      {!Mesh.distance} whenever the fault has no link faults.
      @raise Invalid_argument on out-of-range ranks. *)
  val distance : t -> src:int -> dst:int -> int option

  (** [route t ~src ~dst] is a shortest surviving route as the list of
      ranks visited including both endpoints (deterministic: BFS expands
      neighbours in ascending-rank order), or [None] when unreachable. On
      a fault with no link faults this is exactly {!Mesh.xy_route}.
      @raise Invalid_argument on out-of-range ranks. *)
  val route : t -> src:int -> dst:int -> int list option

  (** [distance_exn t ~src ~dst] is {!distance}, raising
      {!Unreachable}. *)
  val distance_exn : t -> src:int -> dst:int -> int
end
