exception Unreachable of int * int

(* A fault set is mesh-independent data: sorted dead ranks and sorted
   canonical (lo, hi) dead links. Sets are tiny (a few percent of the
   array), so sorted lists keep the representation simple; hot consumers
   (Problem, the oracle) precompute dense masks once. *)
type t = { nodes : int list; links : (int * int) list }

let none = { nodes = []; links = [] }
let is_none t = t.nodes = [] && t.links = []

let canon (a, b) = if a <= b then (a, b) else (b, a)

let create ?(dead_nodes = []) ?(dead_links = []) () =
  {
    nodes = List.sort_uniq Int.compare dead_nodes;
    links = List.sort_uniq compare (List.map canon dead_links);
  }

let node_dead t rank = List.mem rank t.nodes
let link_dead t ~src ~dst = List.mem (canon (src, dst)) t.links
let dead_nodes t = t.nodes
let dead_links t = t.links
let n_dead_nodes t = List.length t.nodes
let n_dead_links t = List.length t.links
let has_node_faults t = t.nodes <> []
let has_link_faults t = t.links <> []

let kill_node t rank =
  if node_dead t rank then t
  else { t with nodes = List.sort Int.compare (rank :: t.nodes) }

let kill_nodes t ranks =
  match List.filter (fun r -> not (node_dead t r)) ranks with
  | [] -> t
  | fresh -> { t with nodes = List.sort_uniq Int.compare (fresh @ t.nodes) }

let kill_link t ~src ~dst =
  if link_dead t ~src ~dst then t
  else { t with links = List.sort compare (canon (src, dst) :: t.links) }

let union a b =
  {
    nodes = List.sort_uniq Int.compare (a.nodes @ b.nodes);
    links = List.sort_uniq compare (a.links @ b.links);
  }

let alive_count t mesh = Mesh.size mesh - List.length t.nodes

let validate t mesh =
  let size = Mesh.size mesh in
  List.iter
    (fun r ->
      if r < 0 || r >= size then
        invalid_arg
          (Printf.sprintf "Fault: dead rank %d out of bounds for %s" r
             (Format.asprintf "%a" Mesh.pp mesh)))
    t.nodes;
  List.iter
    (fun (a, b) ->
      if a < 0 || a >= size || b < 0 || b >= size
         || not (List.mem b (Mesh.neighbours mesh a))
      then
        invalid_arg
          (Printf.sprintf "Fault: dead link %d-%d is not a link of %s" a b
             (Format.asprintf "%a" Mesh.pp mesh)))
    t.links

(* Undirected mesh links in canonical ascending order: the draw order
   [inject] commits to, independent of the rates. *)
let canonical_links mesh =
  List.filter (fun (a, b) -> a < b) (Mesh.links mesh)

let inject ~seed ~node_rate ~link_rate mesh =
  if node_rate < 0. || node_rate > 1. then
    invalid_arg "Fault.inject: node_rate must be in [0, 1]";
  if link_rate < 0. || link_rate > 1. then
    invalid_arg "Fault.inject: link_rate must be in [0, 1]";
  let st = Random.State.make [| seed |] in
  let size = Mesh.size mesh in
  (* one draw per rank, then one per link, always in the same order: the
     dead set at a higher rate is a superset of the set at a lower rate *)
  let node_draws = Array.init size (fun _ -> Random.State.float st 1.) in
  let links = canonical_links mesh in
  let link_draws =
    List.map (fun l -> (l, Random.State.float st 1.)) links
  in
  let dead = Array.map (fun d -> d < node_rate) node_draws in
  (* never kill the whole array: resurrect the luckiest rank *)
  if Array.for_all Fun.id dead then begin
    let best = ref 0 in
    Array.iteri (fun r d -> if d > node_draws.(!best) then best := r) node_draws;
    dead.(!best) <- false
  end;
  let nodes = ref [] in
  for r = size - 1 downto 0 do
    if dead.(r) then nodes := r :: !nodes
  done;
  let links =
    List.filter_map
      (fun (l, d) -> if d < link_rate then Some l else None)
      link_draws
  in
  { nodes = !nodes; links }

let pp fmt t =
  Format.fprintf fmt "faults(%d dead nodes%s, %d dead links%s)"
    (List.length t.nodes)
    (match t.nodes with
    | [] -> ""
    | l ->
        Printf.sprintf " [%s]"
          (String.concat ";" (List.map string_of_int l)))
    (List.length t.links)
    (match t.links with
    | [] -> ""
    | l ->
        Printf.sprintf " [%s]"
          (String.concat ";"
             (List.map (fun (a, b) -> Printf.sprintf "%d-%d" a b) l)))

module Oracle = struct
  type fault = t

  type t = {
    mesh : Mesh.t;
    fault : fault;
    healthy : bool; (* no link faults: closed-form answers, no BFS *)
    adjacency : int list array; (* surviving neighbour lists, lazily built *)
    mutable adjacency_ready : bool;
    dist : int array option array; (* dist.(src).(dst); -1 = unreachable *)
    prev : int array option array; (* BFS parent towards src; -1 = none *)
  }

  let create mesh fault =
    validate fault mesh;
    let size = Mesh.size mesh in
    {
      mesh;
      fault;
      healthy = not (has_link_faults fault);
      adjacency = Array.make size [];
      adjacency_ready = false;
      dist = Array.make size None;
      prev = Array.make size None;
    }

  let mesh t = t.mesh
  let fault t = t.fault

  let check t who rank =
    if rank < 0 || rank >= Mesh.size t.mesh then
      invalid_arg
        (Printf.sprintf "Fault.Oracle.%s: rank %d out of bounds for %s" who
           rank
           (Format.asprintf "%a" Mesh.pp t.mesh))

  let adjacency t =
    if not t.adjacency_ready then begin
      Mesh.iter_ranks t.mesh (fun r ->
          t.adjacency.(r) <-
            List.filter
              (fun n -> not (link_dead t.fault ~src:r ~dst:n))
              (Mesh.neighbours t.mesh r));
      t.adjacency_ready <- true
    end;
    t.adjacency

  (* One BFS per source, cached. Neighbours expand in ascending-rank order
     (Mesh.neighbours is sorted), so parents — and hence routes — are
     deterministic. *)
  let bfs t src =
    match t.dist.(src) with
    | Some d -> (d, Option.get t.prev.(src))
    | None ->
        if !Obs.enabled then Obs.Metrics.incr "fault.bfs_sources";
        let size = Mesh.size t.mesh in
        let adjacency = adjacency t in
        let dist = Array.make size (-1) in
        let prev = Array.make size (-1) in
        let queue = Queue.create () in
        dist.(src) <- 0;
        Queue.add src queue;
        while not (Queue.is_empty queue) do
          let u = Queue.pop queue in
          List.iter
            (fun v ->
              if dist.(v) < 0 then begin
                dist.(v) <- dist.(u) + 1;
                prev.(v) <- u;
                Queue.add v queue
              end)
            adjacency.(u)
        done;
        t.dist.(src) <- Some dist;
        t.prev.(src) <- Some prev;
        (dist, prev)

  let distance t ~src ~dst =
    check t "distance" src;
    check t "distance" dst;
    if t.healthy then Some (Mesh.distance t.mesh src dst)
    else
      let dist, _ = bfs t src in
      if dist.(dst) < 0 then None else Some dist.(dst)

  let distance_exn t ~src ~dst =
    match distance t ~src ~dst with
    | Some d -> d
    | None -> raise (Unreachable (src, dst))

  let route t ~src ~dst =
    check t "route" src;
    check t "route" dst;
    if t.healthy then Some (Mesh.xy_route t.mesh ~src ~dst)
    else
      let dist, prev = bfs t src in
      if dist.(dst) < 0 then None
      else begin
        let rec walk acc v =
          if v = src then src :: acc else walk (v :: acc) prev.(v)
        in
        Some (walk [] dst)
      end
end
